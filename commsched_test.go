package commsched

import (
	"os"
	"strings"
	"testing"
)

func TestCompileSourceEndToEnd(t *testing.T) {
	src := `
kernel saxpy {
  stream x @ 0;
  stream y @ 64;
  stream out @ 128;
  loop i = 0 .. 16 {
    out[i] = x[i] * 3 + y[i];
  }
}`
	for _, m := range Architectures() {
		s, err := CompileSource(src, m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if err := Verify(s); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		mem := map[int64]int64{}
		for i := int64(0); i < 16; i++ {
			mem[i] = i
			mem[64+i] = 100 + i
		}
		res, err := Simulate(s, SimConfig{InitMem: mem})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for i := int64(0); i < 16; i++ {
			if got, want := res.Mem[128+i], i*3+100+i; got != want {
				t.Errorf("%s: out[%d] = %d, want %d", m.Name, i, got, want)
			}
		}
	}
}

func TestCompileSourceErrors(t *testing.T) {
	if _, err := CompileSource("kernel", Central(), Options{}); err == nil {
		t.Error("accepted truncated source")
	}
	if _, err := ParseKernel("kernel k { undeclared[0] = 1; loop i = 0 .. 2 {} }"); err == nil {
		t.Error("accepted unknown stream")
	}
}

func TestArchitectureCatalog(t *testing.T) {
	ms := Architectures()
	if len(ms) != 4 {
		t.Fatalf("catalog has %d machines, want 4", len(ms))
	}
	names := []string{"central", "clustered2", "clustered4", "distributed"}
	for i, m := range ms {
		if m.Name != names[i] {
			t.Errorf("machine %d = %s, want %s", i, m.Name, names[i])
		}
	}
	if Fig5Machine().Name != "fig5" {
		t.Error("Fig5Machine misnamed")
	}
}

func TestKernelCatalog(t *testing.T) {
	if len(Kernels()) != 10 {
		t.Fatalf("kernel catalog has %d entries, want 10", len(Kernels()))
	}
	if KernelByName("Sort") == nil || KernelByName("bogus") != nil {
		t.Error("KernelByName misbehaves")
	}
}

func TestCostReportFacade(t *testing.T) {
	out := CostReport(Architectures())
	for _, want := range []string{"central", "distributed", "1.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("cost report missing %q:\n%s", want, out)
		}
	}
}

func TestMachineFileRoundTrip(t *testing.T) {
	// The shipped sample machine description parses, schedules a Table 1
	// kernel, and survives export → re-import.
	src, err := os.ReadFile("examples/explore/lowcost.machine")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseMachine(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "lowcost6" {
		t.Errorf("machine name = %q", m.Name)
	}
	spec := KernelByName("FFT")
	k, err := spec.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Compile(k, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(s); err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(s, SimConfig{InitMem: spec.Init()})
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Check(res.Mem); err != nil {
		t.Fatal(err)
	}
	m2, err := ParseMachine(FormatMachine(m))
	if err != nil {
		t.Fatalf("re-import: %v", err)
	}
	s2, err := Compile(k, m2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.II != s.II {
		t.Errorf("re-imported machine schedules differently: II %d vs %d", s2.II, s.II)
	}
}

func TestCustomMachineThroughFacade(t *testing.T) {
	// A three-adder shared-bus machine built via the public builder
	// schedules a kernel end to end.
	b := NewMachineBuilder("tiny")
	buses := []BusID{b.AddBus("g0", true), b.AddBus("g1", true)}
	for i := 0; i < 3; i++ {
		fu := b.AddFU("add", Adder, -1, 2)
		b.SetCanCopy(fu, true)
		for slot := 0; slot < 2; slot++ {
			rf := b.AddRF("rf", -1, 16)
			b.DedicatedRead(rf, fu, slot)
			wp := b.AddWritePort(rf, "w")
			for _, bus := range buses {
				b.ConnectBusWP(bus, wp)
			}
		}
		for _, bus := range buses {
			b.ConnectOutBus(fu, bus)
		}
	}
	// One load/store unit so kernels can touch memory.
	ls := b.AddFU("ls", LoadStore, -1, 2)
	b.SetCanCopy(ls, true)
	for slot := 0; slot < 2; slot++ {
		rf := b.AddRF("lsrf", -1, 16)
		b.DedicatedRead(rf, ls, slot)
		wp := b.AddWritePort(rf, "w")
		for _, bus := range buses {
			b.ConnectBusWP(bus, wp)
		}
	}
	for _, bus := range buses {
		b.ConnectOutBus(ls, bus)
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := CompileSource(`
kernel t {
  stream x @ 0;
  stream out @ 32;
  loop i = 0 .. 8 {
    out[i] = x[i] + x[i] * 1 + 5;
  }
}`, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mem := map[int64]int64{}
	for i := int64(0); i < 8; i++ {
		mem[i] = i * 2
	}
	res, err := Simulate(s, SimConfig{InitMem: mem})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		if got, want := res.Mem[32+i], i*2+i*2+5; got != want {
			t.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}
}
