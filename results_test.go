package commsched

import (
	"math"
	"strings"
	"testing"
)

// These tests check the paper's §5 and §8 claims in band form: the
// substrate differs from the authors' testbed, so shape — who wins, by
// roughly what factor — is asserted rather than exact values.

// evalSuite runs the full evaluation once per test binary.
var suiteCache *SuiteResult

func evalSuite(t *testing.T) *SuiteResult {
	t.Helper()
	if testing.Short() {
		t.Skip("full-suite evaluation is slow; run without -short")
	}
	if suiteCache != nil {
		return suiteCache
	}
	res, err := Evaluate(EvalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	suiteCache = res
	return res
}

// TestFigure29Shape checks the overall speedups of Fig. 29: central
// 1.00, clustered ~0.82, distributed ~0.98, and the §1 headline that
// the distributed machine delivers ~120% of the clustered machine's
// performance.
func TestFigure29Shape(t *testing.T) {
	res := evalSuite(t)
	central := res.Overall("central")
	if math.Abs(central-1.0) > 1e-9 {
		t.Errorf("central overall = %.3f, want exactly 1.0 (normalization)", central)
	}
	dist := res.Overall("distributed")
	cl2 := res.Overall("clustered2")
	cl4 := res.Overall("clustered4")
	t.Logf("overall speedups: central=1.00 clustered2=%.2f clustered4=%.2f distributed=%.2f "+
		"(paper: 0.82 / 0.82 / 0.98)", cl2, cl4, dist)
	if dist < 0.85 {
		t.Errorf("distributed overall = %.2f, want >= 0.85 (paper 0.98)", dist)
	}
	for _, cl := range []struct {
		name string
		v    float64
	}{{"clustered2", cl2}, {"clustered4", cl4}} {
		if cl.v < 0.55 || cl.v > 0.95 {
			t.Errorf("%s overall = %.2f, want in [0.55, 0.95] (paper 0.82)", cl.name, cl.v)
		}
	}
	if ratio := dist / cl4; ratio < 1.05 {
		t.Errorf("distributed/clustered4 = %.2f, want >= 1.05 (paper 1.20)", ratio)
	}
}

// TestFigure28Bands checks the per-kernel bands of Fig. 28: the
// distributed machine stays close to central on every kernel (paper
// minimum 0.91) while the clustered machines fall much further on
// their worst kernel (paper minimum 0.56).
func TestFigure28Bands(t *testing.T) {
	res := evalSuite(t)
	minD, kD := res.MinSpeedup("distributed")
	t.Logf("min distributed speedup: %.2f (%s); paper 0.91", minD, kD)
	if minD < 0.70 {
		t.Errorf("min distributed speedup = %.2f (%s), want >= 0.70", minD, kD)
	}
	minC, kC := res.MinSpeedup("clustered4")
	t.Logf("min clustered4 speedup: %.2f (%s); paper 0.56", minC, kC)
	if minC > 0.90 {
		t.Errorf("min clustered speedup = %.2f (%s): clustering should hurt some kernel", minC, kC)
	}
	for _, k := range res.Kernels {
		for _, a := range res.Archs {
			s := res.Speedup(k, a)
			if s > 1.0+1e-9 {
				t.Errorf("%s on %s: speedup %.2f > 1: the central file is the upper bound (§5)", k, a, s)
			}
		}
	}
}

// TestNoBacktrackingOnDistributed checks §4.5's claim:
// "Communication scheduling does not require backtracking to schedule
// any of the evaluation kernels on the distributed register file
// architecture."
func TestNoBacktrackingOnDistributed(t *testing.T) {
	res := evalSuite(t)
	if n := res.TotalBacktracks("distributed"); n != 0 {
		t.Errorf("distributed backtracking events = %d, want 0 (paper §4.5)", n)
	}
}

// TestCostHeadlines checks the §1/§8 cost claims of the register-file
// model within tolerance bands.
func TestCostHeadlines(t *testing.T) {
	p := DefaultCostParams()
	c := AnalyzeCost(Central(), p)
	d := AnalyzeCost(Distributed(), p)
	c4 := AnalyzeCost(Clustered4(), p)
	band := func(name string, got, want, tol float64) {
		if got < want/tol || got > want*tol {
			t.Errorf("%s = %.3f, want within %.1fx of %.3f (paper)", name, got, tol, want)
		}
	}
	band("distributed/central area", d.Area/c.Area, 0.09, 2.0)
	band("distributed/central power", d.Power/c.Power, 0.06, 2.0)
	band("distributed/central delay", d.Delay/c.Delay, 0.37, 1.6)
	band("distributed/clustered4 area", d.Area/c4.Area, 0.56, 1.8)
	band("distributed/clustered4 power", d.Power/c4.Power, 0.50, 1.8)

	// §8 scaling: the distributed advantage grows with unit count.
	cl48 := AnalyzeCost(ScaledClustered(48, 4), p)
	d48 := AnalyzeCost(ScaledDistributed(48), p)
	r16 := d.Area / c4.Area
	r48 := d48.Area / cl48.Area
	t.Logf("distributed/clustered4 area: 16 units %.2f, 48 units %.2f (paper 0.56 -> 0.12)", r16, r48)
	if r48 >= r16 {
		t.Errorf("area advantage does not grow with scale: %.2f at 16 units, %.2f at 48", r16, r48)
	}
}

// TestMotivatingExampleViaFacade reproduces §2 through the public API:
// the Fig. 5 machine needs a copy operation, the schedule simulates
// correctly, and the computation part fits in three cycles (Fig. 7).
func TestMotivatingExampleViaFacade(t *testing.T) {
	k := MotivatingKernel()
	s, err := Compile(k, Fig5Machine(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(s); err != nil {
		t.Fatal(err)
	}
	if copies := len(s.Ops) - len(k.Ops); copies < 1 {
		t.Errorf("no copy inserted; Fig. 7 requires one")
	}
	// Ops 1-5 (the paper's fragment) complete within 3 cycles; stores
	// trail on the single load/store unit.
	for i := 0; i < 5; i++ {
		if c := s.Assignments[i].Cycle; c > 2 {
			t.Errorf("op %d at cycle %d; the Fig. 7 fragment fits cycles 0-2", i, c)
		}
	}
	res, err := Simulate(s, SimConfig{InitMem: map[int64]int64{100: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem[200] != 43 || res.Mem[201] != 47 {
		t.Errorf("simulated results %d, %d; want 43, 47", res.Mem[200], res.Mem[201])
	}
}

// TestEvaluateWithSimulation runs the Simulate path of the harness on a
// reduced configuration: every schedule executes on the cycle-accurate
// model and must match its reference implementation.
func TestEvaluateWithSimulation(t *testing.T) {
	res, err := Evaluate(EvalConfig{
		Archs:    []*Machine{Central(), Distributed()},
		Kernels:  []*KernelSpec{KernelByName("DCT"), KernelByName("Block Warp")},
		Simulate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range res.Kernels {
		for _, a := range res.Archs {
			kr := res.Result(k, a)
			if !kr.Simulated || kr.CheckErr != nil {
				t.Errorf("%s on %s: simulated=%v err=%v", k, a, kr.Simulated, kr.CheckErr)
			}
		}
	}
}

// TestEvaluateFormatting exercises the report renderers on a reduced
// configuration.
func TestEvaluateFormatting(t *testing.T) {
	res, err := Evaluate(EvalConfig{
		Archs:   []*Machine{Central(), Distributed()},
		Kernels: []*KernelSpec{KernelByName("FFT"), KernelByName("Block Warp")},
	})
	if err != nil {
		t.Fatal(err)
	}
	f28 := res.FormatFigure28()
	f29 := res.FormatFigure29()
	for _, want := range []string{"FFT", "Block Warp", "distributed"} {
		if !strings.Contains(f28, want) {
			t.Errorf("Figure 28 output missing %q:\n%s", want, f28)
		}
	}
	if !strings.Contains(f29, "Overall") {
		t.Errorf("Figure 29 output malformed:\n%s", f29)
	}
	if res.Overall("central") != 1.0 {
		t.Errorf("baseline not 1.0")
	}
	if !strings.Contains(res.FormatDetail(), "II") {
		t.Errorf("detail output malformed")
	}
}

// TestAblationCycleOrder checks the §4.6 design rationale: scheduling
// in operation order along the critical path should not lose to the
// cycle-order alternative on the distributed machine.
func TestAblationCycleOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation evaluation is slow; run without -short")
	}
	kernels := []*KernelSpec{KernelByName("FFT"), KernelByName("Block Warp"), KernelByName("DCT")}
	archs := []*Machine{Central(), Distributed()}
	base, err := Evaluate(EvalConfig{Archs: archs, Kernels: kernels})
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := Evaluate(EvalConfig{Archs: archs, Kernels: kernels, Options: Options{CycleOrder: true}})
	if err != nil {
		t.Fatal(err)
	}
	b, c := base.Overall("distributed"), cyc.Overall("distributed")
	t.Logf("distributed overall: operation order %.2f vs cycle order %.2f", b, c)
	if b < c-0.15 {
		t.Errorf("operation order (%.2f) much worse than cycle order (%.2f)", b, c)
	}
}
