package commsched

import (
	"fmt"

	"math"
	"repro/internal/regalloc"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the evaluation harness behind §5's results: it schedules
// the Table 1 kernel suite on the four register-file architectures,
// computes the paper's speedup metric ("speedup was calculated as the
// inverse of the schedule length of that loop normalized to the
// schedule length for the central register file architecture"), and
// renders Figs. 28 and 29 plus the section's headline claims.

// KernelResult is one (kernel, architecture) measurement.
type KernelResult struct {
	Kernel      string
	Arch        string
	II          int // loop schedule length — the performance metric
	Copies      int // copy operations inserted
	PreambleLen int
	Backtracks  int
	Attempts    int
	SchedTime   time.Duration
	Simulated   bool
	CheckErr    error
}

// SuiteResult holds the full evaluation matrix.
type SuiteResult struct {
	Kernels []string
	Archs   []string
	results map[string]map[string]*KernelResult // kernel → arch → result
}

// EvalConfig controls an evaluation run.
type EvalConfig struct {
	// Archs to evaluate; nil means the paper's four.
	Archs []*Machine
	// Kernels to evaluate; nil means the Table 1 suite.
	Kernels []*KernelSpec
	// Simulate additionally runs every schedule on the cycle-accurate
	// simulator and validates against the reference implementations.
	Simulate bool
	// Options passed to the scheduler.
	Options Options
}

// Evaluate runs the configured suite.
func Evaluate(cfg EvalConfig) (*SuiteResult, error) {
	archs := cfg.Archs
	if archs == nil {
		archs = Architectures()
	}
	specs := cfg.Kernels
	if specs == nil {
		specs = Kernels()
	}
	res := &SuiteResult{results: make(map[string]map[string]*KernelResult)}
	for _, m := range archs {
		res.Archs = append(res.Archs, m.Name)
	}
	for _, spec := range specs {
		res.Kernels = append(res.Kernels, spec.Name)
		res.results[spec.Name] = make(map[string]*KernelResult)
	}
	// Every (kernel, architecture) measurement is independent; run them
	// concurrently. Kernels and machines are immutable after
	// construction, and each compilation owns all of its mutable state.
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for _, spec := range specs {
		k, err := spec.Kernel()
		if err != nil {
			return nil, fmt.Errorf("commsched: %s: %w", spec.Name, err)
		}
		for _, m := range archs {
			spec, k, m := spec, k, m
			wg.Add(1)
			go func() {
				defer wg.Done()
				start := time.Now()
				s, err := Compile(k, m, cfg.Options)
				if err != nil {
					fail(fmt.Errorf("commsched: %s on %s: %w", spec.Name, m.Name, err))
					return
				}
				if err := Verify(s); err != nil {
					fail(fmt.Errorf("commsched: %s on %s: %w", spec.Name, m.Name, err))
					return
				}
				kr := &KernelResult{
					Kernel:      spec.Name,
					Arch:        m.Name,
					II:          s.II,
					Copies:      len(s.Ops) - len(k.Ops),
					PreambleLen: s.PreambleLen,
					Backtracks:  s.Stats.Backtracks,
					Attempts:    s.Stats.Attempts,
					SchedTime:   time.Since(start),
				}
				if cfg.Simulate {
					sim, err := Simulate(s, SimConfig{InitMem: spec.Init()})
					if err != nil {
						fail(fmt.Errorf("commsched: simulate %s on %s: %w", spec.Name, m.Name, err))
						return
					}
					kr.Simulated = true
					kr.CheckErr = spec.Check(sim.Mem)
					if kr.CheckErr != nil {
						fail(fmt.Errorf("commsched: check %s on %s: %w", spec.Name, m.Name, kr.CheckErr))
						return
					}
				}
				mu.Lock()
				res.results[spec.Name][m.Name] = kr
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// Result returns the measurement for (kernel, arch), or nil.
func (r *SuiteResult) Result(kernel, arch string) *KernelResult {
	if m := r.results[kernel]; m != nil {
		return m[arch]
	}
	return nil
}

// Speedup returns the paper's metric for (kernel, arch): the central
// architecture's loop schedule length divided by this architecture's.
func (r *SuiteResult) Speedup(kernel, arch string) float64 {
	base := r.Result(kernel, r.Archs[0])
	kr := r.Result(kernel, arch)
	if base == nil || kr == nil || kr.II == 0 {
		return math.NaN()
	}
	return float64(base.II) / float64(kr.II)
}

// Overall returns the Fig. 29 overall speedup for an architecture: the
// geometric mean of the kernel speedups.
func (r *SuiteResult) Overall(arch string) float64 {
	logSum, n := 0.0, 0
	for _, k := range r.Kernels {
		s := r.Speedup(k, arch)
		if math.IsNaN(s) || s <= 0 {
			return math.NaN()
		}
		logSum += math.Log(s)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(logSum / float64(n))
}

// MinSpeedup returns the worst kernel speedup on an architecture and
// the kernel achieving it.
func (r *SuiteResult) MinSpeedup(arch string) (float64, string) {
	best, name := math.Inf(1), ""
	for _, k := range r.Kernels {
		if s := r.Speedup(k, arch); s < best {
			best, name = s, k
		}
	}
	return best, name
}

// ParityCount returns how many kernels run within tol of the central
// architecture's performance on arch ("Seven out of the ten kernels
// evaluated have the same performance on a distributed register file
// architecture as on a central register file architecture", §5).
func (r *SuiteResult) ParityCount(arch string, tol float64) int {
	n := 0
	for _, k := range r.Kernels {
		if r.Speedup(k, arch) >= 1-tol {
			n++
		}
	}
	return n
}

// TotalBacktracks sums §4.5 backtracking events across the suite on an
// architecture.
func (r *SuiteResult) TotalBacktracks(arch string) int {
	n := 0
	for _, k := range r.Kernels {
		if kr := r.Result(k, arch); kr != nil {
			n += kr.Backtracks
		}
	}
	return n
}

// FormatFigure28 renders the per-kernel speedup table of Fig. 28.
func (r *SuiteResult) FormatFigure28() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 28: Kernel Speedup vs. Register File Architecture\n")
	fmt.Fprintf(&b, "%-20s", "kernel")
	for _, a := range r.Archs {
		fmt.Fprintf(&b, "%14s", a)
	}
	b.WriteByte('\n')
	for _, k := range r.Kernels {
		fmt.Fprintf(&b, "%-20s", k)
		for _, a := range r.Archs {
			fmt.Fprintf(&b, "%14.2f", r.Speedup(k, a))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatFigure29 renders the overall speedup row of Fig. 29.
func (r *SuiteResult) FormatFigure29() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 29: Overall Speedup vs. Register File Architecture\n")
	fmt.Fprintf(&b, "%-20s", "overall (geomean)")
	for _, a := range r.Archs {
		fmt.Fprintf(&b, "%14.2f", r.Overall(a))
	}
	b.WriteByte('\n')
	return b.String()
}

// FormatDetail renders the raw measurement matrix (IIs and copies).
func (r *SuiteResult) FormatDetail() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-14s %6s %7s %9s %11s\n", "kernel", "arch", "II", "copies", "preamble", "backtracks")
	kernels := append([]string(nil), r.Kernels...)
	sort.Strings(kernels)
	for _, k := range r.Kernels {
		for _, a := range r.Archs {
			kr := r.Result(k, a)
			fmt.Fprintf(&b, "%-20s %-14s %6d %7d %9d %11d\n",
				k, a, kr.II, kr.Copies, kr.PreambleLen, kr.Backtracks)
		}
	}
	_ = kernels
	return b.String()
}

// WorstOverflow returns the schedule's largest per-register-file
// capacity overflow in registers (0 = the schedule fits), via the §7
// post-pass analysis.
func WorstOverflow(s *Schedule) int {
	worst := 0
	for _, r := range regalloc.Analyze(s) {
		if over := r.Demand - r.Capacity; over > worst {
			worst = over
		}
	}
	return worst
}
