// Command benchjson converts `go test -bench` text output into the
// machine-readable BENCH_sched.json the benchmark CI job uploads: per
// benchmark, the median ns/op, B/op, allocs/op, any custom metrics
// (II, compiles/s, …), and — when a baseline file is given — the
// wall-clock speedup and allocation ratio against it.
//
// Usage:
//
//	go test -run - -bench . -benchmem -count 5 . > head.txt
//	benchjson -head head.txt -base base.txt -o BENCH_sched.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// sample is one parsed benchmark line.
type sample struct {
	nsPerOp  float64
	bPerOp   float64
	allocsOp float64
	metrics  map[string]float64
}

// Metrics summarizes one benchmark's samples by the median of each
// quantity, the robust choice for small -count runs on shared machines.
type Metrics struct {
	Runs           int                `json:"runs"`
	NsPerOp        float64            `json:"ns_per_op"`
	BytesPerOp     float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp    float64            `json:"allocs_per_op,omitempty"`
	CompilesPerSec float64            `json:"compiles_per_sec"`
	Extra          map[string]float64 `json:"extra,omitempty"`
}

// Entry is one benchmark's row in the output.
type Entry struct {
	Name string   `json:"name"`
	Head Metrics  `json:"head"`
	Base *Metrics `json:"base,omitempty"`
	// Speedup is base wall time over head wall time (>1 is faster).
	Speedup float64 `json:"speedup,omitempty"`
	// AllocsRatio is head allocs/op over base allocs/op (<1 allocates
	// less).
	AllocsRatio float64 `json:"allocs_ratio,omitempty"`
}

// benchLine matches one result line: name, iteration count, then
// value/unit pairs. The trailing -N on the name is the GOMAXPROCS
// suffix, not part of the benchmark's identity.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parseFile(path string) (map[string][]sample, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return parse(f)
}

func parse(r io.Reader) (map[string][]sample, []string, error) {
	out := make(map[string][]sample)
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		mm := benchLine.FindStringSubmatch(sc.Text())
		if mm == nil {
			continue
		}
		name := strings.TrimPrefix(mm[1], "Benchmark")
		s := sample{metrics: make(map[string]float64)}
		fields := strings.Fields(mm[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				s.nsPerOp = v
			case "B/op":
				s.bPerOp = v
			case "allocs/op":
				s.allocsOp = v
			default:
				s.metrics[unit] = v
			}
		}
		if s.nsPerOp == 0 {
			continue
		}
		if _, seen := out[name]; !seen {
			order = append(order, name)
		}
		out[name] = append(out[name], s)
	}
	return out, order, sc.Err()
}

func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	if n := len(vs); n%2 == 1 {
		return vs[n/2]
	} else {
		return (vs[n/2-1] + vs[n/2]) / 2
	}
}

func summarize(samples []sample) Metrics {
	pick := func(get func(sample) float64) float64 {
		vs := make([]float64, len(samples))
		for i, s := range samples {
			vs[i] = get(s)
		}
		return median(vs)
	}
	m := Metrics{
		Runs:        len(samples),
		NsPerOp:     pick(func(s sample) float64 { return s.nsPerOp }),
		BytesPerOp:  pick(func(s sample) float64 { return s.bPerOp }),
		AllocsPerOp: pick(func(s sample) float64 { return s.allocsOp }),
	}
	if m.NsPerOp > 0 {
		m.CompilesPerSec = round3(1e9 / m.NsPerOp)
	}
	keys := make(map[string]bool)
	for _, s := range samples {
		for k := range s.metrics {
			keys[k] = true
		}
	}
	for k := range keys {
		if m.Extra == nil {
			m.Extra = make(map[string]float64)
		}
		m.Extra[k] = pick(func(s sample) float64 { return s.metrics[k] })
	}
	return m
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

func main() {
	head := flag.String("head", "", "benchmark text output of the code under test (required)")
	base := flag.String("base", "", "benchmark text output of the baseline to compare against")
	out := flag.String("o", "BENCH_sched.json", `output path ("-" for stdout)`)
	flag.Parse()
	if *head == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -head FILE is required")
		os.Exit(2)
	}
	headRuns, order, err := parseFile(*head)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(headRuns) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in", *head)
		os.Exit(1)
	}
	var baseRuns map[string][]sample
	if *base != "" {
		if baseRuns, _, err = parseFile(*base); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
	doc := struct {
		Suite      string  `json:"suite"`
		Benchmarks []Entry `json:"benchmarks"`
	}{Suite: "communication-scheduling"}
	for _, name := range order {
		e := Entry{Name: name, Head: summarize(headRuns[name])}
		if bs, ok := baseRuns[name]; ok && len(bs) > 0 {
			bm := summarize(bs)
			e.Base = &bm
			if e.Head.NsPerOp > 0 {
				e.Speedup = round3(bm.NsPerOp / e.Head.NsPerOp)
			}
			if bm.AllocsPerOp > 0 {
				e.AllocsRatio = round3(e.Head.AllocsPerOp / bm.AllocsPerOp)
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, e)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
