// Command archinfo describes a register-file architecture: its units,
// files, ports, buses, connectivity, copy graph, VLSI cost, and —
// given a kernel — the schedule's reservation table and utilization.
//
// Usage:
//
//	archinfo -arch distributed
//	archinfo -arch clustered4 -kernel DCT
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	commsched "repro"
)

func main() {
	arch := flag.String("arch", "distributed", "architecture: central, clustered2, clustered4, distributed, paired, fig5")
	kernelName := flag.String("kernel", "", "also schedule a Table 1 kernel and show occupancy")
	machineFile := flag.String("machine", "", "text machine description file (overrides -arch)")
	export := flag.Bool("export", false, "print the machine's text description and exit")
	flag.Parse()

	var m *commsched.Machine
	if *machineFile != "" {
		src, err := os.ReadFile(*machineFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "archinfo:", err)
			os.Exit(1)
		}
		m, err = commsched.ParseMachine(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "archinfo:", err)
			os.Exit(1)
		}
	} else if m = commsched.MachineByName(*arch); m == nil {
		fmt.Fprintf(os.Stderr, "archinfo: unknown architecture %q\n", *arch)
		os.Exit(2)
	}

	if *export {
		fmt.Print(commsched.FormatMachine(m))
		return
	}

	fmt.Println(m.Summary())
	fmt.Println()
	fmt.Println("functional units:")
	for _, fu := range m.FUs {
		extra := ""
		if fu.CanCopy {
			extra += " +copy"
		}
		if fu.IssueInterval > 1 {
			extra += fmt.Sprintf(" issue-interval=%d", fu.IssueInterval)
		}
		cluster := ""
		if fu.Cluster >= 0 {
			cluster = fmt.Sprintf(" cluster=%d", fu.Cluster)
		}
		fmt.Printf("  %-6s %-4s inputs=%d writable-files=%d%s%s\n",
			fu.Name, fu.Kind, fu.NumInputs, len(m.WritableRFs(fu.ID)), cluster, extra)
	}

	fmt.Println()
	fmt.Println("register files:")
	for _, rf := range m.RegFiles {
		fmt.Printf("  %-10s %3d registers, %d write port(s)\n",
			rf.Name, rf.NumRegs, m.NumWritePorts(rf.ID))
	}

	globals := 0
	for _, bus := range m.Buses {
		if bus.Global {
			globals++
		}
	}
	fmt.Printf("\nbuses: %d total, %d shared/global\n", len(m.Buses), globals)

	if err := m.CopyConnected(); err != nil {
		fmt.Printf("copy-connected: NO (%v)\n", err)
	} else {
		fmt.Println("copy-connected: yes (Appendix A property holds)")
	}
	if warns := m.Lint(); len(warns) > 0 {
		fmt.Println("lint:")
		for _, w := range warns {
			fmt.Println("  -", w)
		}
	}

	p := commsched.DefaultCostParams()
	c := commsched.AnalyzeCost(m, p)
	base := commsched.AnalyzeCost(commsched.Central(), p)
	fmt.Printf("\ncost vs central: area %.3f, power %.3f, delay %.3f\n",
		c.Area/base.Area, c.Power/base.Power, c.Delay/base.Delay)

	if *kernelName == "" {
		return
	}
	spec := commsched.KernelByName(*kernelName)
	if spec == nil {
		fmt.Fprintf(os.Stderr, "archinfo: unknown kernel %q\n", *kernelName)
		os.Exit(2)
	}
	k, err := spec.Kernel()
	if err != nil {
		fmt.Fprintln(os.Stderr, "archinfo:", err)
		os.Exit(1)
	}
	s, err := commsched.Compile(k, m, commsched.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "archinfo:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(s.ReservationTable())
	fmt.Println()
	fmt.Println("utilization over the loop:")
	util := s.Utilization()
	keys := make([]string, 0, len(util))
	for k := range util {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		fmt.Printf("  %-12s %5.1f%%\n", key, util[key]*100)
	}
}
