// Command csched compiles a kernel for one of the paper's register-file
// architectures using communication scheduling and prints the schedule,
// route allocation, and statistics. It optionally runs the result on
// the cycle-accurate simulator.
//
// Usage:
//
//	csched -arch distributed -kernel FIR-FP -sim
//	csched -arch clustered4 path/to/kernel.kasm
//	csched -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	commsched "repro"
)

func main() {
	arch := flag.String("arch", "distributed", "target architecture: central, clustered2, clustered4, distributed, paired, fig5")
	machineFile := flag.String("machine", "", "text machine description file (overrides -arch)")
	kernelName := flag.String("kernel", "", "built-in Table 1 kernel name (e.g. DCT, FIR-FP)")
	list := flag.Bool("list", false, "list built-in kernels and exit")
	sim := flag.Bool("sim", false, "simulate the schedule and validate (built-in kernels only)")
	trace := flag.Bool("trace", false, "with -sim: print the per-cycle execution trace")
	dump := flag.Bool("dump", true, "print the full schedule")
	asm := flag.Bool("asm", false, "print VLIW instruction words (per-cycle assembly)")
	timeline := flag.Int("timeline", 0, "print the expanded (pipelined) schedule for N loop iterations")
	cycleOrder := flag.Bool("cycle-order", false, "ablation: schedule in cycle order instead of operation order")
	noCost := flag.Bool("no-cost-heuristic", false, "ablation: disable the equation-1 unit-ordering heuristic")
	portfolio := flag.Int("portfolio", 0, "race the ablation portfolio over N workers (0 disables, -1 means GOMAXPROCS); the result is deterministic for any N")
	flag.Parse()

	if *list {
		for _, s := range commsched.Kernels() {
			fmt.Printf("%-20s %s\n", s.Name, s.Desc)
		}
		return
	}

	var m *commsched.Machine
	if *machineFile != "" {
		src, err := os.ReadFile(*machineFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csched:", err)
			os.Exit(1)
		}
		m, err = commsched.ParseMachine(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "csched:", err)
			os.Exit(1)
		}
	} else if m = commsched.MachineByName(*arch); m == nil {
		fmt.Fprintf(os.Stderr, "csched: unknown architecture %q\n", *arch)
		os.Exit(2)
	}

	opts := commsched.Options{CycleOrder: *cycleOrder, NoCostHeuristic: *noCost}

	var (
		k    *commsched.Kernel
		spec *commsched.KernelSpec
		err  error
	)
	switch {
	case *kernelName != "":
		spec = commsched.KernelByName(*kernelName)
		if spec == nil {
			fmt.Fprintf(os.Stderr, "csched: unknown kernel %q (try -list)\n", *kernelName)
			os.Exit(2)
		}
		k, err = spec.Kernel()
	case flag.NArg() == 1:
		var src []byte
		src, err = os.ReadFile(flag.Arg(0))
		if err == nil {
			k, err = commsched.ParseKernel(string(src))
		}
	default:
		fmt.Fprintln(os.Stderr, "csched: need -kernel NAME or a kernel source file (or -list)")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "csched:", err)
		os.Exit(1)
	}

	var (
		s       *commsched.Schedule
		pfStats *commsched.PortfolioStats
	)
	if *portfolio != 0 {
		s, pfStats, err = commsched.CompilePortfolio(context.Background(), k, m, opts, *portfolio)
	} else {
		s, err = commsched.Compile(k, m, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "csched:", err)
		os.Exit(1)
	}
	if err := commsched.Verify(s); err != nil {
		fmt.Fprintln(os.Stderr, "csched: verification failed:", err)
		os.Exit(1)
	}

	fmt.Printf("kernel %s on %s: II=%d, preamble=%d cycles, %d copies inserted\n",
		k.Name, m.Name, s.II, s.PreambleLen, len(s.Ops)-len(k.Ops))
	fmt.Printf("scheduler: %d attempts (%d rejected), %d permutation steps, %d backtracks\n",
		s.Stats.Attempts, s.Stats.AttemptFailures, s.Stats.PermSteps, s.Stats.Backtracks)
	if pfStats != nil {
		fmt.Println(pfStats)
	}
	if *dump {
		fmt.Println()
		fmt.Print(s.Dump())
	}
	if *asm {
		fmt.Println()
		fmt.Print(s.Assembly())
	}
	if *timeline > 0 {
		fmt.Println()
		fmt.Print(s.FormatTimeline(*timeline))
	}

	if *sim {
		if spec == nil {
			fmt.Fprintln(os.Stderr, "csched: -sim needs a built-in kernel (reference inputs)")
			os.Exit(2)
		}
		cfg := commsched.SimConfig{InitMem: spec.Init()}
		if *trace {
			cfg.Trace = os.Stdout
		}
		res, err := commsched.Simulate(s, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "csched: simulation failed:", err)
			os.Exit(1)
		}
		if err := spec.Check(res.Mem); err != nil {
			fmt.Fprintln(os.Stderr, "csched: output check failed:", err)
			os.Exit(1)
		}
		fmt.Printf("\nsimulated %d iterations in %d cycles: outputs match the reference "+
			"(%d operand reads, %d register writes, %d bus transfers)\n",
			res.IterationsRun, res.Cycles, res.Reads, res.Writes, res.BusTransfers)
	}
}
