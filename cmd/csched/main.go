// Command csched compiles a kernel for one of the paper's register-file
// architectures using communication scheduling and prints the schedule,
// route allocation, and statistics. It optionally runs the result on
// the cycle-accurate simulator.
//
// Usage:
//
//	csched -arch distributed -kernel FIR-FP -sim
//	csched -arch clustered4 path/to/kernel.kasm
//	csched -kernel DCT -passes
//	csched -kernel DCT -trace dct.json -util -stats-json -
//	csched -list
//
// Observability flags: -trace FILE exports the compilation (and, with
// -sim, the simulation) as Chrome trace-event JSON for Perfetto;
// -simtrace prints the simulator's per-cycle text log; -util prints the
// per-resource interconnect-occupancy heatmap; -stats-json FILE ("-"
// for stdout) dumps machine-readable statistics; -cpuprofile FILE and
// -memprofile FILE write pprof CPU and allocation profiles, with every
// sample labeled by the pipeline pass it fell in (pprof -tagfocus
// pass=place, etc.).
//
// Robustness flags: -timeout D bounds the whole compilation (Ctrl-C
// cancels it cooperatively too); -degrade retries a failed search down
// the graceful-degradation ladder, reporting which rung won; -faults
// SPEC arms the deterministic fault-injection plane (testing only).
//
// -speculate N races up to N rungs of the initiation-interval ladder
// on spare hardware threads (-1 means GOMAXPROCS); the schedule is
// bit-identical to the sequential search for every N.
//
// When compilation fails, csched exits non-zero and prints the pass
// pipeline's structured diagnostic: the failure kind (schedule,
// invalid-input, cancelled, deadline-exceeded, internal), the kernel,
// machine, failing pass, reason, and — for op-specific failures — the
// operation and kernel source line. Exit codes distinguish the
// failure: 1 schedule/other, 2 usage, 3 cancelled or deadline
// exceeded, 4 internal error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	commsched "repro"
	"repro/internal/daemon"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// printCompileError renders a pass-pipeline failure as a structured
// diagnostic instead of a bare error string.
func printCompileError(w io.Writer, ce *commsched.CompileError) {
	fmt.Fprintln(w, "csched: compilation failed")
	fmt.Fprintf(w, "  kind:    %s\n", ce.Kind)
	fmt.Fprintf(w, "  kernel:  %s\n", ce.Kernel)
	fmt.Fprintf(w, "  machine: %s\n", ce.Machine)
	fmt.Fprintf(w, "  pass:    %s\n", ce.Pass)
	fmt.Fprintf(w, "  reason:  %s\n", ce.Reason)
	if ce.II > 0 {
		fmt.Fprintf(w, "  II:      %d\n", ce.II)
	}
	if ce.Op != commsched.NoOp {
		fmt.Fprintf(w, "  op:      %d\n", ce.Op)
	}
	if ce.Line > 0 {
		fmt.Fprintf(w, "  line:    %d\n", ce.Line)
	}
	for _, d := range ce.Diags {
		fmt.Fprintf(w, "  note:    %s\n", d)
	}
}

// exitCode maps a compilation failure to the documented exit code. The
// mapping table lives in internal/daemon (errmap.go), shared with the
// HTTP server, so the CLI's exit codes and the daemon's statuses for
// the same failure can never drift apart.
func exitCode(err error) int { return daemon.ExitCode(err) }

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("csched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	arch := fs.String("arch", "distributed", "target architecture: central, clustered2, clustered4, distributed, paired, fig5")
	machineFile := fs.String("machine", "", "text machine description file (overrides -arch)")
	kernelName := fs.String("kernel", "", "built-in Table 1 kernel name (e.g. DCT, FIR-FP)")
	list := fs.Bool("list", false, "list built-in kernels and exit")
	sim := fs.Bool("sim", false, "simulate the schedule and validate (built-in kernels only)")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON of the compilation (and simulation with -sim) to FILE")
	simTrace := fs.Bool("simtrace", false, "with -sim: print the per-cycle execution trace")
	util := fs.Bool("util", false, "print the per-resource interconnect utilization heatmap")
	statsJSON := fs.String("stats-json", "", "write machine-readable schedule statistics to FILE (\"-\" for stdout)")
	dump := fs.Bool("dump", true, "print the full schedule")
	asm := fs.Bool("asm", false, "print VLIW instruction words (per-cycle assembly)")
	timeline := fs.Int("timeline", 0, "print the expanded (pipelined) schedule for N loop iterations")
	passes := fs.Bool("passes", false, "print per-pass timing, work, and backtrack counters")
	cycleOrder := fs.Bool("cycle-order", false, "ablation: schedule in cycle order instead of operation order")
	noCost := fs.Bool("no-cost-heuristic", false, "ablation: disable the equation-1 unit-ordering heuristic")
	portfolio := fs.Int("portfolio", 0, "race the ablation portfolio over N workers (0 disables, -1 means GOMAXPROCS); the result is deterministic for any N")
	speculate := fs.Int("speculate", 0, "race up to N rungs of the interval ladder speculatively (0/1 sequential, -1 means GOMAXPROCS); the schedule is bit-identical for any N")
	timeout := fs.Duration("timeout", 0, "bound the whole compilation; on expiry csched exits 3 with a structured deadline-exceeded report")
	degrade := fs.Bool("degrade", false, "on schedule-search failure, retry down the graceful-degradation ladder (cheaper budgets, relaxed interval cap, greedy pipeline)")
	faults := fs.String("faults", "", "arm the deterministic fault-injection plane (testing), e.g. \"seed=7;site=pass,label=place,action=panic\"")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to FILE (samples carry a \"pass\" label)")
	memprofile := fs.String("memprofile", "", "write a pprof allocation profile to FILE on exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "csched:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "csched:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			if err := writeMemProfile(*memprofile); err != nil {
				fmt.Fprintln(stderr, "csched:", err)
			}
		}()
	}

	if *list {
		for _, s := range commsched.Kernels() {
			fmt.Fprintf(stdout, "%-20s %s\n", s.Name, s.Desc)
		}
		return 0
	}

	var m *commsched.Machine
	if *machineFile != "" {
		src, err := os.ReadFile(*machineFile)
		if err != nil {
			fmt.Fprintln(stderr, "csched:", err)
			return 1
		}
		m, err = commsched.ParseMachine(string(src))
		if err != nil {
			fmt.Fprintln(stderr, "csched:", err)
			return 1
		}
	} else if m = commsched.MachineByName(*arch); m == nil {
		fmt.Fprintf(stderr, "csched: unknown architecture %q\n", *arch)
		return 2
	}

	opts := commsched.Options{CycleOrder: *cycleOrder, NoCostHeuristic: *noCost}
	if *speculate < 0 {
		*speculate = runtime.GOMAXPROCS(0)
	}
	opts.Speculate = *speculate
	var rec *commsched.TraceRecorder
	if *trace != "" {
		rec = commsched.NewTraceRecorder()
		opts.Tracer = rec
	}
	if *degrade {
		opts.Degrade = commsched.DefaultDegradeLadder()
	}
	if *faults != "" {
		plane, perr := commsched.ParseFaultSpec(*faults)
		if perr != nil {
			fmt.Fprintln(stderr, "csched: -faults:", perr)
			return 2
		}
		opts.Faults = plane
	}
	if *timeout > 0 {
		tctx, tcancel := context.WithTimeout(ctx, *timeout)
		defer tcancel()
		ctx = tctx
	}

	var (
		k    *commsched.Kernel
		spec *commsched.KernelSpec
		err  error
	)
	switch {
	case *kernelName == "fig4":
		// The §2 motivating example is not a Table 1 kernel but is the
		// canonical small trace: -kernel fig4 -arch fig5 reproduces Fig. 7.
		k = commsched.MotivatingKernel()
	case *kernelName != "":
		spec = commsched.KernelByName(*kernelName)
		if spec == nil {
			fmt.Fprintf(stderr, "csched: unknown kernel %q (try -list)\n", *kernelName)
			return 2
		}
		k, err = spec.Kernel()
	case fs.NArg() == 1:
		var src []byte
		src, err = os.ReadFile(fs.Arg(0))
		if err == nil {
			k, err = commsched.ParseKernel(string(src))
		}
	default:
		fmt.Fprintln(stderr, "csched: need -kernel NAME or a kernel source file (or -list)")
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "csched:", err)
		return 1
	}

	var (
		s       *commsched.Schedule
		pfStats *commsched.PortfolioStats
	)
	if *portfolio != 0 {
		s, pfStats, err = commsched.CompilePortfolio(ctx, k, m, opts, *portfolio)
	} else {
		s, err = commsched.CompileContext(ctx, k, m, opts)
	}
	if err != nil {
		var ce *commsched.CompileError
		if errors.As(err, &ce) {
			printCompileError(stderr, ce)
		} else {
			fmt.Fprintln(stderr, "csched:", err)
		}
		return exitCode(err)
	}
	if s.Degraded != "" {
		fmt.Fprintf(stdout, "degraded: schedule produced by fallback rung %q\n", s.Degraded)
	}
	if err := commsched.Verify(s); err != nil {
		fmt.Fprintln(stderr, "csched: verification failed:", err)
		return 1
	}

	fmt.Fprintf(stdout, "kernel %s on %s: II=%d, preamble=%d cycles, %d copies inserted\n",
		k.Name, m.Name, s.II, s.PreambleLen, len(s.Ops)-len(k.Ops))
	fmt.Fprintf(stdout, "scheduler: %d attempts (%d rejected), %d permutation steps, %d backtracks\n",
		s.Stats.Attempts, s.Stats.AttemptFailures, s.Stats.PermSteps, s.Stats.Backtracks)
	if pfStats != nil {
		fmt.Fprintln(stdout, pfStats)
	}
	if *passes {
		fmt.Fprintf(stdout, "pipeline: %s\n", opts.Pipeline())
		fmt.Fprintln(stdout, s.Passes)
		fmt.Fprintf(stdout, "search: %d intervals tried, %d backtracks\n",
			s.Stats.IIsTried, s.Stats.Backtracks)
		for _, d := range s.Diags {
			fmt.Fprintf(stdout, "note: %s\n", d)
		}
	}
	if *dump {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, s.Dump())
	}
	if *asm {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, s.Assembly())
	}
	if *timeline > 0 {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, s.FormatTimeline(*timeline))
	}
	if *util {
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, s.InterconnectUtilization())
	}

	if *sim {
		if spec == nil {
			fmt.Fprintln(stderr, "csched: -sim needs a built-in kernel (reference inputs)")
			return 2
		}
		cfg := commsched.SimConfig{InitMem: spec.Init()}
		if *simTrace {
			cfg.Trace = stdout
		}
		if rec != nil {
			// Simulation events land in the same recorder, after the
			// compilation's, so one exported trace covers both.
			cfg.Tracer = rec
		}
		res, err := commsched.Simulate(s, cfg)
		if err != nil {
			fmt.Fprintln(stderr, "csched: simulation failed:", err)
			return 1
		}
		if err := spec.Check(res.Mem); err != nil {
			fmt.Fprintln(stderr, "csched: output check failed:", err)
			return 1
		}
		fmt.Fprintf(stdout, "\nsimulated %d iterations in %d cycles: outputs match the reference "+
			"(%d operand reads, %d register writes, %d bus transfers)\n",
			res.IterationsRun, res.Cycles, res.Reads, res.Writes, res.BusTransfers)
	}

	if rec != nil {
		if err := writeTrace(*trace, rec); err != nil {
			fmt.Fprintln(stderr, "csched:", err)
			return 1
		}
		fmt.Fprintf(stdout, "\nwrote %d trace events to %s\n", rec.Len(), *trace)
	}
	if *statsJSON != "" {
		if err := writeStats(*statsJSON, stdout, k, s, pfStats); err != nil {
			fmt.Fprintln(stderr, "csched:", err)
			return 1
		}
	}
	return 0
}

// writeMemProfile dumps the allocation profile (after a GC, so the
// heap numbers reflect live objects, while alloc_space still covers
// everything allocated since start).
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace exports the recorded event stream as Chrome trace-event
// JSON.
func writeTrace(path string, rec *commsched.TraceRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := commsched.WriteChromeTrace(f, rec.Events()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeStats dumps machine-readable schedule statistics; path "-"
// means stdout.
func writeStats(path string, stdout io.Writer, k *commsched.Kernel, s *commsched.Schedule, pf *commsched.PortfolioStats) error {
	out := struct {
		Kernel      string                       `json:"kernel"`
		Machine     string                       `json:"machine"`
		II          int                          `json:"ii"`
		Preamble    int                          `json:"preamble"`
		LoopSpan    int                          `json:"loop_span"`
		Copies      int                          `json:"copies"`
		Degraded    string                       `json:"degraded,omitempty"`
		Scheduler   commsched.SchedulerStats     `json:"scheduler"`
		Passes      commsched.PassStats          `json:"passes"`
		Utilization *commsched.UtilizationReport `json:"utilization"`
		Portfolio   *commsched.PortfolioStats    `json:"portfolio,omitempty"`
	}{
		Kernel:      k.Name,
		Machine:     s.Machine.Name,
		II:          s.II,
		Preamble:    s.PreambleLen,
		LoopSpan:    s.LoopSpan,
		Copies:      len(s.Ops) - len(k.Ops),
		Degraded:    s.Degraded,
		Scheduler:   s.Stats,
		Passes:      s.Passes,
		Utilization: s.InterconnectUtilization(),
		Portfolio:   pf,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
