package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI drives run() with captured output.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestListExitsZero(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	if !strings.Contains(out, "DCT") {
		t.Fatalf("-list output missing kernels:\n%s", out)
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{},                           // no kernel at all
		{"-arch", "nonexistent"},     // unknown architecture
		{"-kernel", "NoSuchKernel"},  // unknown kernel
		{"-kernel", "DCT", "-badfl"}, // unknown flag
	} {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("args %v exited %d, want 2", args, code)
		}
	}
}

func TestCompileSuccessWithPasses(t *testing.T) {
	src := `kernel tiny {
  stream out @ 512;
  loop i = 0 .. 8 {
    out[i] = i * 3;
  }
}
`
	path := filepath.Join(t.TempDir(), "tiny.kasm")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errw := runCLI(t, "-arch", "central", "-passes", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errw)
	}
	for _, want := range []string{
		"II=", "pipeline: prioritize(priority)",
		"lower", "prioritize", "place", "regalloc", "verify",
		"intervals tried", "backtracks",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCompileFailureStructuredDiagnostic pins the satellite contract:
// a failing compilation exits non-zero and reports kernel, machine,
// pass, and reason as a structured diagnostic, with the kernel source
// line of the failing operation when one is known.
func TestCompileFailureStructuredDiagnostic(t *testing.T) {
	// A multiply has no unit on the fig5 machine (adders and a
	// load/store unit only), so the lower pass rejects the kernel.
	src := `kernel nomul {
  stream a @ 0;
  stream out @ 512;
  loop i = 0 .. 8 {
    out[i] = a[i] * 3;
  }
}
`
	path := filepath.Join(t.TempDir(), "nomul.kasm")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errw := runCLI(t, "-arch", "fig5", path)
	if code == 0 {
		t.Fatal("compilation unexpectedly succeeded")
	}
	for _, want := range []string{
		"compilation failed",
		"kernel:  nomul",
		"machine: fig5",
		"pass:    lower",
		"reason:  no unit",
		"line:",
	} {
		if !strings.Contains(errw, want) {
			t.Errorf("stderr missing %q:\n%s", want, errw)
		}
	}
}

// TestDoesNotScheduleDiagnostic covers the place-pass failure shape:
// an impossibly low interval cap turns into a structured
// does-not-schedule report.
func TestDoesNotScheduleDiagnostic(t *testing.T) {
	code, _, errw := runCLI(t, "-arch", "fig5", "-kernel", "DCT")
	if code == 0 {
		t.Skip("DCT unexpectedly schedules on fig5")
	}
	if !strings.Contains(errw, "compilation failed") || !strings.Contains(errw, "pass:") {
		t.Errorf("stderr not structured:\n%s", errw)
	}
}
