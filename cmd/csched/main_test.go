package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	commsched "repro"
	"repro/internal/daemon"
)

// TestExitCodeTable pins the error mapping csched shares with the
// daemon (internal/daemon/errmap.go): every CompileError kind maps to
// one documented exit code AND one HTTP status, and the status maps
// back to the same exit code — so a script driving compiles through
// either surface classifies failures identically.
func TestExitCodeTable(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		exit   int
		status int
	}{
		{"invalid-input", &commsched.CompileError{Kind: commsched.ErrInvalidInput}, 1, 400},
		{"schedule", &commsched.CompileError{Kind: commsched.ErrSchedule}, 1, 422},
		{"cancelled", &commsched.CompileError{Kind: commsched.ErrCancelled}, 3, 499},
		{"deadline-exceeded", &commsched.CompileError{Kind: commsched.ErrDeadlineExceeded}, 3, 504},
		{"internal", &commsched.CompileError{Kind: commsched.ErrInternal}, 4, 500},
		{"wrapped internal", fmt.Errorf("outer: %w", &commsched.CompileError{Kind: commsched.ErrInternal}), 4, 500},
		{"plain error", errors.New("not a compile error"), 1, 500},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := exitCode(tc.err); got != tc.exit {
				t.Errorf("exitCode = %d, want %d", got, tc.exit)
			}
			if got := daemon.ExitCode(tc.err); got != tc.exit {
				t.Errorf("daemon.ExitCode = %d, want %d", got, tc.exit)
			}
			if got := daemon.HTTPStatus(tc.err); got != tc.status {
				t.Errorf("daemon.HTTPStatus = %d, want %d", got, tc.status)
			}
		})
	}

	// The HTTP → exit bridge: 499 and 504 are exit 3, 500 is exit 4,
	// success is 0, every other failure status is exit 1.
	for status, exit := range map[int]int{
		200: 0, 400: 1, 422: 1, 429: 1, 499: 3, 503: 1, 504: 3, 500: 4,
	} {
		if got := daemon.ExitCodeForStatus(status); got != exit {
			t.Errorf("ExitCodeForStatus(%d) = %d, want %d", status, got, exit)
		}
	}
}

// runCLI drives run() with captured output.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	return runCLIContext(t, context.Background(), args...)
}

// runCLIContext is runCLI under a caller-controlled context.
func runCLIContext(t *testing.T, ctx context.Context, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(ctx, args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestListExitsZero(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	if !strings.Contains(out, "DCT") {
		t.Fatalf("-list output missing kernels:\n%s", out)
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	for _, args := range [][]string{
		{},                           // no kernel at all
		{"-arch", "nonexistent"},     // unknown architecture
		{"-kernel", "NoSuchKernel"},  // unknown kernel
		{"-kernel", "DCT", "-badfl"}, // unknown flag
	} {
		if code, _, _ := runCLI(t, args...); code != 2 {
			t.Errorf("args %v exited %d, want 2", args, code)
		}
	}
}

func TestCompileSuccessWithPasses(t *testing.T) {
	src := `kernel tiny {
  stream out @ 512;
  loop i = 0 .. 8 {
    out[i] = i * 3;
  }
}
`
	path := filepath.Join(t.TempDir(), "tiny.kasm")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errw := runCLI(t, "-arch", "central", "-passes", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errw)
	}
	for _, want := range []string{
		"II=", "pipeline: prioritize(priority)",
		"lower", "prioritize", "place", "regalloc", "verify",
		"intervals tried", "backtracks",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCompileFailureStructuredDiagnostic pins the satellite contract:
// a failing compilation exits non-zero and reports kernel, machine,
// pass, and reason as a structured diagnostic, with the kernel source
// line of the failing operation when one is known.
func TestCompileFailureStructuredDiagnostic(t *testing.T) {
	// A multiply has no unit on the fig5 machine (adders and a
	// load/store unit only), so the lower pass rejects the kernel.
	src := `kernel nomul {
  stream a @ 0;
  stream out @ 512;
  loop i = 0 .. 8 {
    out[i] = a[i] * 3;
  }
}
`
	path := filepath.Join(t.TempDir(), "nomul.kasm")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errw := runCLI(t, "-arch", "fig5", path)
	if code == 0 {
		t.Fatal("compilation unexpectedly succeeded")
	}
	for _, want := range []string{
		"compilation failed",
		"kernel:  nomul",
		"machine: fig5",
		"pass:    lower",
		"reason:  no unit",
		"op:      3",
		"line:    5",
	} {
		if !strings.Contains(errw, want) {
			t.Errorf("stderr missing %q:\n%s", want, errw)
		}
	}
}

// TestTraceFlagWritesValidJSON pins the -trace flag: the exported file
// is schema-valid Chrome trace-event JSON and is byte-identical across
// runs.
func TestTraceFlagWritesValidJSON(t *testing.T) {
	dir := t.TempDir()
	export := func(name string) []byte {
		t.Helper()
		path := filepath.Join(dir, name)
		code, out, errw := runCLI(t,
			"-arch", "distributed", "-kernel", "FIR-INT", "-dump=false", "-sim", "-trace", path)
		if code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, errw)
		}
		if !strings.Contains(out, "wrote") || !strings.Contains(out, "trace events") {
			t.Errorf("stdout missing trace confirmation:\n%s", out)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := export("a.json")
	if err := commsched.ValidateChromeTrace(a); err != nil {
		t.Fatalf("-trace output fails schema validation: %v", err)
	}
	// The stream covers both compilation and simulation events.
	for _, want := range []string{"perm-attempt", "sim-issue", "sim-writeback"} {
		if !strings.Contains(string(a), want) {
			t.Errorf("trace missing %q events", want)
		}
	}
	if b := export("b.json"); !bytes.Equal(a, b) {
		t.Error("trace differs across identical runs")
	}
}

// TestFig4KernelCompiles pins the -kernel fig4 shortcut: the §2
// motivating example schedules on the fig5 machine without a source
// file.
func TestFig4KernelCompiles(t *testing.T) {
	code, out, errw := runCLI(t, "-arch", "fig5", "-kernel", "fig4", "-dump=false")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errw)
	}
	if !strings.Contains(out, "kernel fig4 on fig5") {
		t.Errorf("stdout missing fig4 header:\n%s", out)
	}
}

// TestUtilFlag pins the -util heatmap output.
func TestUtilFlag(t *testing.T) {
	code, out, errw := runCLI(t, "-arch", "distributed", "-kernel", "FIR-INT", "-dump=false", "-util")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errw)
	}
	for _, want := range []string{"utilization fir_int on distributed", "fu", "bus", "read-port", "write-port"} {
		if !strings.Contains(out, want) {
			t.Errorf("-util output missing %q:\n%s", want, out)
		}
	}
}

// TestStatsJSONFlag pins -stats-json: parseable JSON on stdout with
// the schedule, scheduler, pass, and utilization sections populated.
func TestStatsJSONFlag(t *testing.T) {
	code, out, errw := runCLI(t, "-arch", "distributed", "-kernel", "FIR-INT", "-dump=false", "-stats-json", "-")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errw)
	}
	start := strings.Index(out, "{")
	if start < 0 {
		t.Fatalf("no JSON on stdout:\n%s", out)
	}
	var stats struct {
		Kernel      string `json:"kernel"`
		Machine     string `json:"machine"`
		II          int    `json:"ii"`
		Scheduler   struct{ Attempts int }
		Passes      []struct{ Name string }
		Utilization struct {
			Resources []struct {
				Kind string `json:"kind"`
			} `json:"resources"`
		} `json:"utilization"`
	}
	if err := json.Unmarshal([]byte(out[start:]), &stats); err != nil {
		t.Fatalf("stats not parseable: %v\n%s", err, out[start:])
	}
	if stats.Kernel != "fir_int" || stats.Machine != "distributed" || stats.II <= 0 {
		t.Errorf("stats header wrong: %+v", stats)
	}
	if stats.Scheduler.Attempts == 0 || len(stats.Passes) == 0 || len(stats.Utilization.Resources) == 0 {
		t.Errorf("stats sections empty: %+v", stats)
	}
}

// TestProfileFlags pins -cpuprofile/-memprofile: both files exist and
// carry the gzip magic of the pprof proto encoding.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code, _, errw := runCLI(t, "-arch", "central", "-kernel", "DCT", "-dump=false",
		"-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errw)
	}
	for _, path := range []string{cpu, mem} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			t.Errorf("%s is not a gzipped pprof profile (%d bytes)", path, len(data))
		}
	}
}

// TestCancelledContextExitsThree pins the cancellation exit path: a
// pre-cancelled context makes compilation unwind cooperatively and
// report a structured cancelled error with exit code 3.
func TestCancelledContextExitsThree(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	code, _, errw := runCLIContext(t, ctx, "-arch", "distributed", "-kernel", "DCT", "-dump=false")
	if code != daemon.ExitCancelled {
		t.Fatalf("exit %d, want %d; stderr:\n%s", code, daemon.ExitCancelled, errw)
	}
	for _, want := range []string{"compilation failed", "kind:    cancelled"} {
		if !strings.Contains(errw, want) {
			t.Errorf("stderr missing %q:\n%s", want, errw)
		}
	}
}

// TestTimeoutExitsThree pins the -timeout flag: an unmeetable deadline
// reports a structured deadline-exceeded error with exit code 3.
func TestTimeoutExitsThree(t *testing.T) {
	code, _, errw := runCLI(t, "-arch", "distributed", "-kernel", "DCT", "-dump=false", "-timeout", "1ns")
	if code != daemon.ExitCancelled {
		t.Fatalf("exit %d, want %d; stderr:\n%s", code, daemon.ExitCancelled, errw)
	}
	for _, want := range []string{"compilation failed", "kind:    deadline-exceeded"} {
		if !strings.Contains(errw, want) {
			t.Errorf("stderr missing %q:\n%s", want, errw)
		}
	}
}

// TestInjectedPanicExitsFour pins the internal-error exit path: a
// fault-plane panic in the place pass is recovered into a structured
// internal error — pass name, reason, stackless rendering — with exit
// code 4, never a process crash.
func TestInjectedPanicExitsFour(t *testing.T) {
	code, _, errw := runCLI(t, "-arch", "distributed", "-kernel", "FIR-INT", "-dump=false",
		"-faults", "seed=7;site=pass,label=place,action=panic,nth=1")
	if code != daemon.ExitInternal {
		t.Fatalf("exit %d, want %d; stderr:\n%s", code, daemon.ExitInternal, errw)
	}
	for _, want := range []string{"compilation failed", "kind:    internal", "pass:    place", "injected panic"} {
		if !strings.Contains(errw, want) {
			t.Errorf("stderr missing %q:\n%s", want, errw)
		}
	}
}

// TestBadFaultSpecExitsTwo pins -faults validation as a usage error.
func TestBadFaultSpecExitsTwo(t *testing.T) {
	if code, _, _ := runCLI(t, "-kernel", "DCT", "-faults", "site=bogus,action=panic"); code != 2 {
		t.Fatalf("bad -faults spec exited %d, want 2", code)
	}
}

// TestDegradeFlagWiring pins -degrade on the happy path: arming the
// ladder must not change the outcome of a kernel that schedules fine
// (no "degraded" banner, exit 0). The forced-exhaustion path where a
// fallback rung actually wins is pinned in internal/core's fault
// tests, which can control budgets precisely.
func TestDegradeFlagWiring(t *testing.T) {
	code, out, errw := runCLI(t, "-arch", "distributed", "-kernel", "FIR-INT", "-dump=false", "-degrade")
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errw)
	}
	if strings.Contains(out, "degraded:") {
		t.Errorf("unexpected degradation banner on a schedulable kernel:\n%s", out)
	}
}

// TestDoesNotScheduleDiagnostic covers the place-pass failure shape:
// an impossibly low interval cap turns into a structured
// does-not-schedule report.
func TestDoesNotScheduleDiagnostic(t *testing.T) {
	code, _, errw := runCLI(t, "-arch", "fig5", "-kernel", "DCT")
	if code == 0 {
		t.Skip("DCT unexpectedly schedules on fig5")
	}
	if !strings.Contains(errw, "compilation failed") || !strings.Contains(errw, "pass:") {
		t.Errorf("stderr not structured:\n%s", errw)
	}
}
