// Command paperfigs regenerates every table and figure of the paper's
// evaluation as text:
//
//	paperfigs -table 1        Table 1 (kernel suite)
//	paperfigs -fig 25         central register file cost bars (Fig. 25)
//	paperfigs -fig 26         clustered register file cost bars (Fig. 26)
//	paperfigs -fig 27         distributed register file cost bars (Fig. 27)
//	paperfigs -fig 28         per-kernel speedups (Fig. 28)
//	paperfigs -fig 29         overall speedups (Fig. 29)
//	paperfigs -claims         §5/§8 headline claims, paper vs. measured
//	paperfigs -scaling        §8 48-unit cost projection
//	paperfigs -ablation       §4.6 design-choice + §6 two-phase ablations
//	paperfigs -regalloc       §7 register pressure, default vs register-aware
//	paperfigs -explore        §8 exploration: the paired organization
//	paperfigs -all            everything
//
// Fig. 28/29 schedule the whole suite on all four architectures
// (roughly a minute); add -sim to also run every schedule on the
// cycle-accurate simulator and validate against the references.
package main

import (
	"flag"
	"fmt"
	"os"

	commsched "repro"
)

func main() {
	table := flag.Int("table", 0, "regenerate a table (1)")
	fig := flag.Int("fig", 0, "regenerate a figure (25, 26, 27, 28, 29)")
	claims := flag.Bool("claims", false, "report the headline claims, paper vs. measured")
	regrep := flag.Bool("regalloc", false, "report §7 register pressure: default vs register-aware routing")
	explore := flag.Bool("explore", false, "report the §8 exploration: the paired organization vs the paper's four")
	scaling := flag.Bool("scaling", false, "report the 48-unit cost projection (§8)")
	ablation := flag.Bool("ablation", false, "report the §4.6 scheduler ablations")
	all := flag.Bool("all", false, "regenerate everything")
	sim := flag.Bool("sim", false, "also simulate every schedule and check outputs")
	flag.Parse()

	did := false
	run := func(want bool, f func()) {
		if want || *all {
			f()
			did = true
			fmt.Println()
		}
	}

	run(*table == 1, printTable1)
	run(*fig == 25 || *fig == 26 || *fig == 27, func() { printCostFigs(*fig) })
	run(*fig == 28 || *fig == 29, func() { printSpeedups(*fig, *sim) })
	run(*claims, func() { printClaims(*sim) })
	run(*scaling, printScaling)
	run(*ablation, printAblation)
	run(*regrep, printRegalloc)
	run(*explore, printExplore)

	if !did {
		flag.Usage()
		os.Exit(2)
	}
}

func printTable1() {
	fmt.Println("Table 1: Evaluation kernels")
	for _, s := range commsched.Kernels() {
		k, err := s.Kernel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			os.Exit(1)
		}
		fmt.Printf("  %-20s %s\n", s.Name, s.Desc)
		fmt.Printf("  %-20s (%d loop operations, %d simulated iterations)\n",
			"", len(k.Loop), k.TripCount)
	}
}

func printCostFigs(which int) {
	fmt.Printf("Figures 25-27: register file architectures, normalized area/power/delay\n")
	fmt.Print(commsched.CostReport([]*commsched.Machine{
		commsched.Central(), commsched.Clustered2(), commsched.Clustered4(), commsched.Distributed(),
	}))
	fmt.Printf("(paper: distributed = 9%% area, 6%% power, 37%% delay of central)\n")
	_ = which
}

func evaluate(sim bool, opts commsched.Options) *commsched.SuiteResult {
	res, err := commsched.Evaluate(commsched.EvalConfig{Simulate: sim, Options: opts})
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
	return res
}

func printSpeedups(which int, sim bool) {
	res := evaluate(sim, commsched.Options{})
	if which == 28 {
		fmt.Print(res.FormatFigure28())
		fmt.Println("\n(paper Fig. 28: distributed 0.91-1.00 per kernel; clustered down to 0.56)")
	} else {
		fmt.Print(res.FormatFigure29())
		fmt.Println("\n(paper Fig. 29: central 1.00, clustered(2) 0.82, clustered(4) 0.82, distributed 0.98)")
	}
	fmt.Println()
	fmt.Print(res.FormatDetail())
}

func printClaims(sim bool) {
	res := evaluate(sim, commsched.Options{})
	fmt.Println("§5/§8 headline claims, paper vs. measured:")

	dist := res.Overall("distributed")
	cl4 := res.Overall("clustered4")
	cl2 := res.Overall("clustered2")
	fmt.Printf("  overall speedup, distributed:   paper 0.98   measured %.2f\n", dist)
	fmt.Printf("  overall speedup, clustered(4):  paper 0.82   measured %.2f\n", cl4)
	fmt.Printf("  overall speedup, clustered(2):  paper 0.82   measured %.2f\n", cl2)
	fmt.Printf("  distributed vs clustered(4):    paper 1.20   measured %.2f\n", dist/cl4)

	minD, kD := res.MinSpeedup("distributed")
	minC, kC := res.MinSpeedup("clustered4")
	fmt.Printf("  min kernel speedup, distributed: paper 0.91  measured %.2f (%s)\n", minD, kD)
	fmt.Printf("  min kernel speedup, clustered:   paper 0.56  measured %.2f (%s)\n", minC, kC)
	fmt.Printf("  kernels at parity on distributed: paper 7/10  measured %d/10\n",
		res.ParityCount("distributed", 0.005))
	fmt.Printf("  backtracking events on distributed: paper 0   measured %d\n",
		res.TotalBacktracks("distributed"))

	p := commsched.DefaultCostParams()
	c := commsched.AnalyzeCost(commsched.Central(), p)
	d := commsched.AnalyzeCost(commsched.Distributed(), p)
	c4 := commsched.AnalyzeCost(commsched.Clustered4(), p)
	fmt.Printf("  distributed area vs central:   paper 0.09   measured %.3f\n", d.Area/c.Area)
	fmt.Printf("  distributed power vs central:  paper 0.06   measured %.3f\n", d.Power/c.Power)
	fmt.Printf("  distributed delay vs central:  paper 0.37   measured %.3f\n", d.Delay/c.Delay)
	fmt.Printf("  distributed area vs clustered: paper 0.56   measured %.3f\n", d.Area/c4.Area)
	fmt.Printf("  distributed power vs clustered:paper 0.50   measured %.3f\n", d.Power/c4.Power)
}

func printScaling() {
	fmt.Println("§8 scaling projection: distributed vs clustered(4) cost")
	p := commsched.DefaultCostParams()
	for _, units := range []int{16, 32, 48, 64} {
		cl := commsched.AnalyzeCost(commsched.ScaledClustered(units, 4), p)
		d := commsched.AnalyzeCost(commsched.ScaledDistributed(units), p)
		fmt.Printf("  %2d units: area %.2f, power %.2f\n", units, d.Area/cl.Area, d.Power/cl.Power)
	}
	fmt.Println("(paper: 16 units -> 56% area / 50% power; 48 units -> 12% area / 9% power)")
}

func printAblation() {
	fmt.Println("§4.6 scheduler ablations (overall speedup on each architecture):")
	evalOpts := func(opts commsched.Options) *commsched.SuiteResult {
		res, err := commsched.Evaluate(commsched.EvalConfig{Options: opts})
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			os.Exit(1)
		}
		return res
	}
	fmt.Printf("  %-34s %12s %12s %12s\n", "configuration", "clustered4", "distributed", "central")
	row := func(name string, r *commsched.SuiteResult) {
		fmt.Printf("  %-34s %12.2f %12.2f %12.2f\n", name,
			r.Overall("clustered4"), r.Overall("distributed"), r.Overall("central"))
	}
	row("operation order + cost heuristic", evalOpts(commsched.Options{}))
	row("cycle order (ablated)", evalOpts(commsched.Options{CycleOrder: true}))
	row("no communication-cost heuristic", evalOpts(commsched.Options{NoCostHeuristic: true}))

	// The §6 multi-phase baseline binds units before cycles. It cannot
	// schedule the whole suite on the shared-interconnect machines
	// (several kernels exhaust every initiation interval once units are
	// fixed), so the comparison uses the kernels it can handle.
	fmt.Println()
	fmt.Println("  two-phase unit assignment (§6 baseline), per kernel on distributed:")
	for _, spec := range commsched.Kernels() {
		k, err := spec.Kernel()
		if err != nil {
			continue
		}
		m := commsched.Distributed()
		base, err := commsched.Compile(k, m, commsched.Options{})
		if err != nil {
			continue
		}
		two, err := commsched.Compile(k, m, commsched.Options{TwoPhase: true, MaxII: 8 * base.II})
		if err != nil {
			fmt.Printf("    %-20s unified II=%-4d two-phase: fails to schedule\n", spec.Name, base.II)
			continue
		}
		fmt.Printf("    %-20s unified II=%-4d two-phase II=%-4d (%.2fx slower)\n",
			spec.Name, base.II, two.II, float64(two.II)/float64(base.II))
	}
}

func printRegalloc() {
	fmt.Println("§7 register pressure on the distributed machine: worst per-file")
	fmt.Println("overflow with default routing vs register-aware routing (the §7")
	fmt.Println("'improved form'), plus the spill post-pass verdict:")
	fmt.Printf("  %-20s %10s %16s %10s %16s\n",
		"kernel", "II", "overflow (dflt)", "II (aware)", "overflow (aware)")
	for _, spec := range commsched.Kernels() {
		k, err := spec.Kernel()
		if err != nil {
			continue
		}
		m := commsched.Distributed()
		base, err := commsched.Compile(k, m, commsched.Options{})
		if err != nil {
			continue
		}
		aware, err := commsched.Compile(k, m, commsched.Options{
			RegisterAware: true,
			MaxII:         2 * base.II,
		})
		if err != nil {
			// Sorting networks keep every element live across the whole
			// block: their demand exceeds the machine's total register
			// capacity, so capacity-respecting routing rightly refuses.
			fmt.Printf("  %-20s %10d %16d %10s %16s\n",
				spec.Name, base.II, commsched.WorstOverflow(base), "refused", "over capacity")
			continue
		}
		fmt.Printf("  %-20s %10d %16d %10d %16d\n",
			spec.Name, base.II, commsched.WorstOverflow(base),
			aware.II, commsched.WorstOverflow(aware))
	}
}

func printExplore() {
	fmt.Println("§8 exploration: a fifth organization scheduled by the same compiler.")
	fmt.Println("'Paired' shares one 2-read/2-write-port file between the same inputs")
	fmt.Println("of adjacent units (16 files instead of 32):")
	archs := []*commsched.Machine{
		commsched.Central(), commsched.Clustered4(), commsched.Distributed(), commsched.Paired(),
	}
	res, err := commsched.Evaluate(commsched.EvalConfig{Archs: archs})
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
	p := commsched.DefaultCostParams()
	base := commsched.AnalyzeCost(commsched.Central(), p)
	fmt.Printf("  %-14s %10s %12s %10s %10s %10s\n",
		"architecture", "overall", "min kernel", "area", "power", "delay")
	for _, m := range archs {
		c := commsched.AnalyzeCost(m, p)
		min, _ := res.MinSpeedup(m.Name)
		fmt.Printf("  %-14s %10.2f %12.2f %10.3f %10.3f %10.3f\n",
			m.Name, res.Overall(m.Name), min, c.Area/base.Area, c.Power/base.Power, c.Delay/base.Delay)
	}
	fmt.Println("\n(the paired organization approaches central parity while keeping")
	fmt.Println("the distributed machine's order-of-magnitude cost advantage)")
}
