package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// runDaemon starts run in a goroutine on port 0, waits for the bound
// address via the onListen hook, and returns the base URL plus a stop
// function that triggers the drain and returns the exit code.
func runDaemon(t *testing.T, args ...string) (string, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	t.Cleanup(func() { onListen = nil })

	var stdout, stderr bytes.Buffer
	code := make(chan int, 1)
	go func() {
		code <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &stdout, &stderr)
	}()

	var addr net.Addr
	select {
	case addr = <-addrCh:
	case <-time.After(5 * time.Second):
		cancel()
		t.Fatalf("daemon did not listen\nstdout: %s\nstderr: %s", &stdout, &stderr)
	}
	stop := func() int {
		cancel()
		select {
		case c := <-code:
			if t.Failed() {
				t.Logf("stdout: %s\nstderr: %s", &stdout, &stderr)
			}
			return c
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon did not exit after cancel\nstdout: %s\nstderr: %s", &stdout, &stderr)
			return -1
		}
	}
	return "http://" + addr.String(), stop
}

// TestLifecycle boots the daemon, serves real HTTP traffic over a TCP
// socket, then delivers the shutdown signal (via context cancellation,
// the same path as SIGTERM) and requires a clean drain, exit 0, and a
// valid JSON metrics snapshot on disk.
func TestLifecycle(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "metrics.json")
	base, stop := runDaemon(t, "-workers", "2", "-drain-grace", "5s", "-metrics-snapshot", snap)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := strings.NewReader(`{"kernel": "fig4", "machine": "fig5"}`)
	resp, err = http.Post(base+"/v1/compile", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var cr struct {
		II  int    `json:"ii"`
		Key string `json:"key"`
	}
	err = json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || cr.II != 1 || len(cr.Key) != 64 {
		t.Fatalf("compile: status %d err %v response %+v", resp.StatusCode, err, cr)
	}

	if code := stop(); code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}

	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatalf("metrics snapshot not written: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("snapshot is not JSON: %v\n%s", err, data)
	}
	for _, key := range []string{"cschedd_requests_total", "cschedd_compilations_total"} {
		v, ok := m[key].(float64)
		if !ok || v < 1 {
			t.Errorf("snapshot %s = %v, want >= 1", key, m[key])
		}
	}
}

// TestFaultsFlagArmsPlane boots with a -faults spec whose exhaust rule
// kills every solver window, and requires the armed plane to actually
// shape compilations (422 schedule failure instead of II=1).
func TestFaultsFlagArmsPlane(t *testing.T) {
	base, stop := runDaemon(t, "-faults", "seed=1;site=solver,action=exhaust,nth=1,every=1")
	defer stop()

	body := strings.NewReader(`{"kernel": "fig4", "machine": "fig5"}`)
	resp, err := http.Post(base+"/v1/compile", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("exhausted compile: %d, want 422", resp.StatusCode)
	}
}

// TestUsageErrors pins the exit-2 contract for unusable invocations.
func TestUsageErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown flag":    {"-no-such-flag"},
		"positional args": {"stray"},
		"bad faults spec": {"-faults", "site=nowhere,action=panic"},
		"empty faults":    {"-faults", "seed=7"},
	} {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(context.Background(), args, &stdout, &stderr); code != 2 {
				t.Errorf("exit %d, want 2\nstderr: %s", code, &stderr)
			}
		})
	}
}

// TestListenFailure occupies the port first; the daemon must report the
// bind error and exit 1.
func TestListenFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-addr", ln.Addr().String()}, &stdout, &stderr)
	if code != 1 {
		t.Errorf("exit %d, want 1\nstderr: %s", code, &stderr)
	}
	if !strings.Contains(stderr.String(), "cschedd:") {
		t.Errorf("no diagnostic on stderr: %q", &stderr)
	}
}

// TestSnapshotWriteFailure exits 1 when the final snapshot cannot be
// written (directory path), after draining cleanly.
func TestSnapshotWriteFailure(t *testing.T) {
	_, stop := runDaemon(t, "-metrics-snapshot", t.TempDir())
	if code := stop(); code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
}
