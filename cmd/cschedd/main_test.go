package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// runDaemon starts run in a goroutine on port 0, waits for the bound
// address via the onListen hook, and returns the base URL plus a stop
// function that triggers the drain and returns the exit code.
func runDaemon(t *testing.T, args ...string) (string, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	t.Cleanup(func() { onListen = nil })

	var stdout, stderr bytes.Buffer
	code := make(chan int, 1)
	go func() {
		code <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &stdout, &stderr)
	}()

	var addr net.Addr
	select {
	case addr = <-addrCh:
	case <-time.After(5 * time.Second):
		cancel()
		t.Fatalf("daemon did not listen\nstdout: %s\nstderr: %s", &stdout, &stderr)
	}
	stop := func() int {
		cancel()
		select {
		case c := <-code:
			if t.Failed() {
				t.Logf("stdout: %s\nstderr: %s", &stdout, &stderr)
			}
			return c
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon did not exit after cancel\nstdout: %s\nstderr: %s", &stdout, &stderr)
			return -1
		}
	}
	return "http://" + addr.String(), stop
}

// TestLifecycle boots the daemon, serves real HTTP traffic over a TCP
// socket, then delivers the shutdown signal (via context cancellation,
// the same path as SIGTERM) and requires a clean drain, exit 0, and a
// valid JSON metrics snapshot on disk.
func TestLifecycle(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "metrics.json")
	base, stop := runDaemon(t, "-workers", "2", "-drain-grace", "5s", "-metrics-snapshot", snap)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := strings.NewReader(`{"kernel": "fig4", "machine": "fig5"}`)
	resp, err = http.Post(base+"/v1/compile", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var cr struct {
		II  int    `json:"ii"`
		Key string `json:"key"`
	}
	err = json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || cr.II != 1 || len(cr.Key) != 64 {
		t.Fatalf("compile: status %d err %v response %+v", resp.StatusCode, err, cr)
	}

	if code := stop(); code != 0 {
		t.Fatalf("exit code %d, want 0", code)
	}

	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatalf("metrics snapshot not written: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("snapshot is not JSON: %v\n%s", err, data)
	}
	for _, key := range []string{"cschedd_requests_total", "cschedd_compilations_total"} {
		v, ok := m[key].(float64)
		if !ok || v < 1 {
			t.Errorf("snapshot %s = %v, want >= 1", key, m[key])
		}
	}
}

// TestFaultsFlagArmsPlane boots with a -faults spec whose exhaust rule
// kills every solver window, and requires the armed plane to actually
// shape compilations (422 schedule failure instead of II=1).
func TestFaultsFlagArmsPlane(t *testing.T) {
	base, stop := runDaemon(t, "-faults", "seed=1;site=solver,action=exhaust,nth=1,every=1")
	defer stop()

	body := strings.NewReader(`{"kernel": "fig4", "machine": "fig5"}`)
	resp, err := http.Post(base+"/v1/compile", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("exhausted compile: %d, want 422", resp.StatusCode)
	}
}

// TestUsageErrors pins the exit-2 contract for unusable invocations.
func TestUsageErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown flag":    {"-no-such-flag"},
		"positional args": {"stray"},
		"bad faults spec": {"-faults", "site=nowhere,action=panic"},
		"empty faults":    {"-faults", "seed=7"},
		"bad log level":   {"-log-level", "loud"},
		"bad fsync":       {"-cache-dir", os.TempDir(), "-cache-fsync", "sometimes"},
	} {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(context.Background(), args, &stdout, &stderr); code != 2 {
				t.Errorf("exit %d, want 2\nstderr: %s", code, &stderr)
			}
		})
	}
}

// TestDebugAddr boots with the observability plane armed — debug side
// server, flight recorder, always-on slow-trace capture — and requires
// the side address to serve pprof and the /debug/requests mirror,
// including a captured Chrome trace for the compile it just served.
func TestDebugAddr(t *testing.T) {
	debugCh := make(chan net.Addr, 1)
	onDebugListen = func(a net.Addr) { debugCh <- a }
	t.Cleanup(func() { onDebugListen = nil })

	base, stop := runDaemon(t, "-debug-addr", "127.0.0.1:0", "-trace-slow", "1ns")
	defer stop()
	var debugBase string
	select {
	case a := <-debugCh:
		debugBase = "http://" + a.String()
	case <-time.After(5 * time.Second):
		t.Fatal("debug server did not listen")
	}

	resp, err := http.Post(base+"/v1/compile", "application/json",
		strings.NewReader(`{"kernel": "fig4", "machine": "fig5"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Cschedd-Request-Id")
	if id == "" {
		t.Fatal("compile response carries no X-Cschedd-Request-Id")
	}

	resp, err = http.Get(debugBase + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var ring struct {
		Requests []struct {
			ID    string `json:"id"`
			Trace bool   `json:"trace"`
		} `json:"requests"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ring)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || len(ring.Requests) == 0 {
		t.Fatalf("/debug/requests: status %d err %v %+v", resp.StatusCode, err, ring)
	}
	if ring.Requests[0].ID != id || !ring.Requests[0].Trace {
		t.Fatalf("newest record %+v, want id %s with trace", ring.Requests[0], id)
	}

	resp, err = http.Get(debugBase + "/debug/requests/" + id)
	if err != nil {
		t.Fatal(err)
	}
	trace, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(trace, []byte("traceEvents")) {
		t.Fatalf("/debug/requests/%s: status %d body %.120s", id, resp.StatusCode, trace)
	}

	resp, err = http.Get(debugBase + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: %d", resp.StatusCode)
	}
}

// TestDebugAddrBindFailure occupies the debug port first; the daemon
// must report the bind error and exit 1.
func TestDebugAddrBindFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	t.Cleanup(func() { onListen = nil })
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-addr", "127.0.0.1:0", "-debug-addr", ln.Addr().String()}, &stdout, &stderr)
	if code != 1 {
		t.Errorf("exit %d, want 1\nstderr: %s", code, &stderr)
	}
	if !strings.Contains(stderr.String(), "-debug-addr") {
		t.Errorf("no -debug-addr diagnostic on stderr: %q", &stderr)
	}
}

// TestAccessLogFlag boots with -log-level info and requires a JSON log
// line on stderr whose request ID matches the response header.
func TestAccessLogFlag(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	t.Cleanup(func() { onListen = nil })

	var stdout, stderr syncBuffer
	code := make(chan int, 1)
	go func() {
		code <- run(ctx, []string{"-addr", "127.0.0.1:0", "-log-level", "info"}, &stdout, &stderr)
	}()
	var addr net.Addr
	select {
	case addr = <-addrCh:
	case <-time.After(5 * time.Second):
		t.Fatalf("daemon did not listen\nstderr: %s", stderr.String())
	}

	resp, err := http.Post("http://"+addr.String()+"/v1/compile", "application/json",
		strings.NewReader(`{"kernel": "fig4", "machine": "fig5"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Cschedd-Request-Id")

	cancel()
	<-code

	var logged bool
	for _, line := range strings.Split(stderr.String(), "\n") {
		if line == "" {
			continue
		}
		var entry struct {
			Msg    string `json:"msg"`
			ID     string `json:"id"`
			Status int    `json:"status"`
			Cache  string `json:"cache"`
		}
		if json.Unmarshal([]byte(line), &entry) != nil {
			t.Errorf("stderr line is not JSON: %q", line)
			continue
		}
		if entry.Msg == "request" && entry.ID == id {
			logged = true
			if entry.Status != 200 || entry.Cache != "miss" {
				t.Errorf("log entry %+v, want status 200 cache miss", entry)
			}
		}
	}
	if !logged {
		t.Fatalf("no access-log line for request %s\nstderr: %s", id, stderr.String())
	}
}

// syncBuffer is a bytes.Buffer safe for the daemon goroutine to write
// while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRestartRecovery is the persistence walkthrough as an operator
// sees it: boot with -cache-dir, warm a key, shut down, boot a second
// daemon over the same directory, and get the schedule back from disk —
// X-Cschedd-Cache: disk, byte-identical body, no recompilation.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	reqBody := `{"kernel": "fig4", "machine": "fig5"}`
	compile := func(base string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(base+"/v1/compile", "application/json", strings.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile: %d\n%s", resp.StatusCode, body)
		}
		return resp, body
	}

	base, stop := runDaemon(t, "-cache-dir", dir)
	resp, cold := compile(base)
	if cs := resp.Header.Get("X-Cschedd-Cache"); cs != "miss" {
		t.Fatalf("cold compile cache state %q, want miss", cs)
	}
	if code := stop(); code != 0 {
		t.Fatalf("first daemon exit %d", code)
	}

	base, stop = runDaemon(t, "-cache-dir", dir)
	resp, warm := compile(base)
	if cs := resp.Header.Get("X-Cschedd-Cache"); cs != "disk" {
		t.Fatalf("restart cache state %q, want disk", cs)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("disk-recovered body differs\ncold: %s\nwarm: %s", cold, warm)
	}

	// The status snapshot agrees: one disk hit, zero compilations.
	sresp, err := http.Get(base + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Compilations int64 `json:"compilations"`
		DiskHits     int64 `json:"disk_hits"`
	}
	err = json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if err != nil || st.DiskHits != 1 || st.Compilations != 0 {
		t.Fatalf("restart status: err %v, %+v (want 1 disk hit, 0 compilations)", err, st)
	}
	if code := stop(); code != 0 {
		t.Fatalf("second daemon exit %d", code)
	}
}

// TestListenFailure occupies the port first; the daemon must report the
// bind error and exit 1.
func TestListenFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{"-addr", ln.Addr().String()}, &stdout, &stderr)
	if code != 1 {
		t.Errorf("exit %d, want 1\nstderr: %s", code, &stderr)
	}
	if !strings.Contains(stderr.String(), "cschedd:") {
		t.Errorf("no diagnostic on stderr: %q", &stderr)
	}
}

// TestSnapshotWriteFailure exits 1 when the final snapshot cannot be
// written (directory path), after draining cleanly.
func TestSnapshotWriteFailure(t *testing.T) {
	_, stop := runDaemon(t, "-metrics-snapshot", t.TempDir())
	if code := stop(); code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
}
