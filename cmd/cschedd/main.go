// Command cschedd is the communication-scheduling compilation daemon:
// a long-running HTTP/JSON server that schedules kernels onto machines
// and serves repeat requests from a content-addressed schedule cache
// (see internal/daemon for the serving pipeline).
//
// Usage:
//
//	cschedd -addr 127.0.0.1:8736 -workers 8 -cache-bytes 67108864
//
// Endpoints:
//
//	POST /v1/compile         compile a kernel (see the README "Serving" walkthrough)
//	GET  /v1/status          operational snapshot (JSON)
//	GET  /metrics            Prometheus text exposition
//	GET  /healthz            liveness (503 while draining)
//	GET  /debug/requests     flight-recorder ring: recent requests, newest first
//	GET  /debug/requests/ID  captured Chrome-trace JSON for one request
//
// With -cache-dir the schedule cache gains a persistent disk tier:
// compiled response bodies are written as checksummed frames via
// temp-file + atomic rename (fsynced under -cache-fsync always), so a
// restarted daemon serves warm keys with X-Cschedd-Cache: disk instead
// of recompiling; torn or corrupt entries are quarantined as .bad files
// and recompiled, never served.
//
// With -log-level the daemon emits one JSON access-log line per request
// to stderr; -debug-addr serves net/http/pprof and a /debug/requests
// mirror on a private side address; -trace-slow and -trace-errors arm
// automatic full-trace capture into the flight recorder.
//
// On SIGTERM or SIGINT the daemon drains: it stops admitting compile
// requests, gives in-flight compilations -drain-grace to finish, then
// cancels the stragglers cooperatively, and — with -metrics-snapshot —
// flushes a final JSON metrics snapshot before exiting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/daemon"
	"repro/internal/faultinject"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// onListen and onDebugListen, when set (tests), observe the bound
// serving and debug addresses before the servers start accepting.
var (
	onListen      func(net.Addr)
	onDebugListen func(net.Addr)
)

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cschedd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8736", "listen address (host:port; port 0 picks a free one)")
	workers := fs.Int("workers", 0, "bounded compile worker pool (0 means GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission queue depth beyond the workers (0 means 2x workers, negative means none)")
	cacheBytes := fs.Int64("cache-bytes", 0, "schedule cache LRU byte budget (0 means 64 MiB)")
	cacheDir := fs.String("cache-dir", "", "persistent disk cache directory: compiled schedules survive restarts (empty disables)")
	cacheDiskBudget := fs.Int64("cache-disk-budget", 0, "disk cache byte budget (0 means 256 MiB)")
	cacheFsync := fs.String("cache-fsync", "always", "disk cache durability: always (fsync every entry) or none (leave flushing to the OS)")
	timeout := fs.Duration("timeout", 0, "default per-compilation deadline for requests naming none (0 means unbounded)")
	degrade := fs.Bool("degrade", false, "arm the default graceful-degradation ladder for requests that do not choose one")
	faults := fs.String("faults", "", "arm the deterministic fault-injection plane (testing), e.g. \"seed=7;site=pass,label=place,action=panic\" or \"seed=7;site=cache-read,action=torn,nth=1,every=3\"")
	grace := fs.Duration("drain-grace", 10*time.Second, "how long in-flight compilations get to finish on shutdown before cooperative cancellation")
	snapshot := fs.String("metrics-snapshot", "", "write a final JSON metrics snapshot to FILE after draining")
	logLevel := fs.String("log-level", "", "emit one JSON access-log line per request to stderr at this level or above: debug, info, warn, error (empty disables)")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof and a /debug/requests mirror on this side address (empty disables)")
	flightRec := fs.Int("flight-recorder", 0, "flight-recorder ring size in requests (0 means 512, negative disables)")
	traceSlow := fs.Duration("trace-slow", 0, "capture a full compiler trace for backing compilations at least this slow (0 disables)")
	traceErrors := fs.Bool("trace-errors", false, "capture a full compiler trace for backing compilations that fail")
	traceKeep := fs.Int("trace-keep", 0, "captured traces kept resident for /debug/requests/{id} (0 means 8)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "cschedd: unexpected arguments:", fs.Args())
		return 2
	}

	var logger *slog.Logger
	if *logLevel != "" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
			fmt.Fprintln(stderr, "cschedd: -log-level:", err)
			return 2
		}
		logger = slog.New(slog.NewJSONHandler(stderr, &slog.HandlerOptions{Level: lvl}))
	}

	cfg := daemon.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheBytes:      *cacheBytes,
		CacheDir:        *cacheDir,
		CacheDiskBudget: *cacheDiskBudget,
		CacheFsync:      *cacheFsync,
		DefaultTimeout:  *timeout,
		Degrade:         *degrade,
		Logger:          logger,
		RecorderEntries: *flightRec,
		TraceKeep:       *traceKeep,
		TraceSlow:       *traceSlow,
		TraceErrors:     *traceErrors,
	}
	if *faults != "" {
		plane, err := faultinject.ParseSpec(*faults)
		if err != nil {
			fmt.Fprintln(stderr, "cschedd: -faults:", err)
			return 2
		}
		cfg.Faults = plane
	}
	srv, err := daemon.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "cschedd:", err)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "cschedd:", err)
		return 1
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	fmt.Fprintf(stdout, "cschedd: listening on %s\n", ln.Addr())

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(stderr, "cschedd: -debug-addr:", err)
			return 1
		}
		debugSrv := &http.Server{Handler: debugMux(srv)}
		go debugSrv.Serve(dln)
		defer debugSrv.Close()
		if onDebugListen != nil {
			onDebugListen(dln.Addr())
		}
		fmt.Fprintf(stdout, "cschedd: debug endpoints on %s\n", dln.Addr())
	}

	httpSrv := &http.Server{Handler: srv}
	served := make(chan error, 1)
	go func() { served <- httpSrv.Serve(ln) }()

	select {
	case err := <-served:
		fmt.Fprintln(stderr, "cschedd:", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "cschedd: draining (grace %s)\n", *grace)
	graceCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	srv.Drain(graceCtx)
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		fmt.Fprintln(stderr, "cschedd: shutdown:", err)
	}
	<-served

	if *snapshot != "" {
		if err := writeSnapshot(*snapshot, srv); err != nil {
			fmt.Fprintln(stderr, "cschedd:", err)
			return 1
		}
		fmt.Fprintf(stdout, "cschedd: wrote metrics snapshot to %s\n", *snapshot)
	}
	fmt.Fprintln(stdout, "cschedd: drained")
	return 0
}

// debugMux builds the -debug-addr side server: the pprof family,
// registered explicitly rather than through net/http/pprof's
// DefaultServeMux side effects, plus a mirror of the daemon's
// flight-recorder endpoints. The side address is meant to stay private
// (localhost or an operations network) — pprof exposes heap and
// execution internals that don't belong on the serving address.
func debugMux(srv *daemon.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/requests", srv)
	mux.Handle("/debug/requests/", srv)
	return mux
}

// writeSnapshot flushes the final metrics state as JSON.
func writeSnapshot(path string, srv *daemon.Server) error {
	data, err := json.MarshalIndent(srv.Metrics().Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
