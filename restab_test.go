package commsched

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ir"
)

var updateRestab = flag.Bool("update-restab", false, "rewrite the reservation-table goldens")

// loopedFig4 wraps the paper's Fig. 4 dataflow in a loop over an input
// stream, so scheduling it on the Fig. 5 machine produces a real modulo
// reservation table (the straight-line MotivatingKernel itself has no
// loop and exercises the "(no loop)" rendering path instead).
func loopedFig4(t *testing.T) *Kernel {
	t.Helper()
	b := ir.NewBuilder("fig4loop")
	b.Loop()
	iv, _ := b.InductionVar("i", 0, 1)
	a := b.Emit(ir.Load, "a", iv, b.Const(100))
	bb := b.Emit(ir.Add, "b", iv, b.Const(2))
	c := b.Emit(ir.Add, "c", iv, b.Const(4))
	d := b.Emit(ir.Add, "d", b.Val(a), b.Val(bb))
	e := b.Emit(ir.Add, "e", b.Val(a), b.Val(c))
	b.Emit(ir.Store, "", b.Val(d), iv, b.Const(200))
	b.Emit(ir.Store, "", b.Val(e), iv, b.Const(300))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateRestab {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update-restab): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestReservationTableGolden pins the ReservationTable rendering on the
// fig4/fig5 pair: the looped Fig. 4 kernel's modulo table on the Fig. 5
// machine, and the straight-line Fig. 4 kernel's "(no loop)" path.
func TestReservationTableGolden(t *testing.T) {
	m := Fig5Machine()

	s, err := Compile(loopedFig4(t), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "restab_fig4loop_fig5.golden", s.ReservationTable())

	s, err = Compile(MotivatingKernel(), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ReservationTable(); got != "(no loop)\n" {
		t.Errorf("straight-line kernel table = %q, want \"(no loop)\\n\"", got)
	}
}

// TestReservationTableEmptyLoop covers the other arm of the no-loop
// guard: a kernel whose loop block exists but is empty after lowering
// (preamble-only work) still renders "(no loop)".
func TestReservationTableEmptyLoop(t *testing.T) {
	b := ir.NewBuilder("pre-only")
	v := b.Emit(ir.Add, "v", b.Const(1), b.Const(2))
	b.Emit(ir.Store, "", b.Val(v), b.Const(50), b.Const(0))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Compile(k, Central(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ReservationTable(); got != "(no loop)\n" {
		t.Errorf("empty-loop table = %q, want \"(no loop)\\n\"", got)
	}
}
