#!/usr/bin/env bash
# bench_sched.sh — run the scheduler benchmark suite and write
# BENCH_sched.json (compilations/sec, allocs/op, and — when a baseline
# text file is passed — speedup and allocation ratios).
#
# Usage:
#   scripts/bench_sched.sh                # head-only numbers
#   scripts/bench_sched.sh base.txt       # compare against a baseline run
#
# Environment:
#   BENCH_COUNT (default 5)  -count passed to go test
#   BENCH_TIME  (default 3x) -benchtime passed to go test
#   BENCH_OUT   (default /tmp/bench_sched_head.txt) raw text output
set -euo pipefail
cd "$(dirname "$0")/.."

count=${BENCH_COUNT:-5}
btime=${BENCH_TIME:-3x}
out=${BENCH_OUT:-/tmp/bench_sched_head.txt}

go test -run '^$' -bench 'BenchmarkScheduler$|BenchmarkSchedulerThroughput$|BenchmarkTable1_KernelLowering$' \
  -benchmem -count "$count" -benchtime "$btime" . | tee "$out"
go test -run '^$' -bench 'BenchmarkSched' \
  -benchmem -count "$count" -benchtime "$btime" ./internal/kernels | tee -a "$out"

if [ $# -ge 1 ]; then
  go run ./cmd/benchjson -head "$out" -base "$1" -o BENCH_sched.json
else
  go run ./cmd/benchjson -head "$out" -o BENCH_sched.json
fi
echo "wrote BENCH_sched.json"
