// Package commsched is a reproduction of "Communication Scheduling"
// (Mattson, Dally, Rixner, Kapasi, Owens — ASPLOS 2000): a VLIW
// scheduler for shared-interconnect register-file architectures, the
// four register-file organizations the paper evaluates, the ten media
// kernels of its Table 1, a cycle-accurate simulator that validates
// scheduled code end to end, and the VLSI cost model behind its
// area/power/delay comparisons.
//
// The quickest path from source to schedule:
//
//	m := commsched.Distributed()
//	sched, err := commsched.CompileSource(src, m, commsched.Options{})
//	fmt.Println(sched.Dump())
//
// where src is a kernel in the package's small C-like kernel language
// (see internal/kasm). Schedules can be executed on the cycle-accurate
// machine model with Simulate, and the paper's experiments regenerated
// with Evaluate / CostReport (or the cmd/paperfigs tool).
package commsched

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/ir"
	"repro/internal/kasm"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/vliwsim"
	"repro/internal/vlsi"
)

// Re-exported core types. The scheduler's behavior is tuned through
// Options; the result is a Schedule carrying placements, routes, and
// instrumentation.
type (
	// Machine is a datapath description: functional units, register
	// files, ports, and buses with explicit connectivity.
	Machine = machine.Machine
	// MachineBuilder assembles custom machines for architecture
	// exploration ("communication scheduling ... can be used to explore
	// novel register file architectures without implementing a custom
	// compiler for each architecture", §8).
	MachineBuilder = machine.Builder
	// Options tunes the scheduler (II bounds, permutation budget,
	// ablation switches).
	Options = core.Options
	// Schedule is a finished schedule with all interconnect allocated.
	Schedule = core.Schedule
	// PortfolioOptions configures CompilePortfolio's worker pool and
	// racing lineup.
	PortfolioOptions = core.PortfolioOptions
	// PortfolioStats instruments a portfolio run: per-variant wall
	// times, attempt and cancellation counts, and the winner.
	PortfolioStats = core.PortfolioStats
	// Variant is one racing configuration of a portfolio.
	Variant = core.Variant
	// PipelineConfig names a pass-pipeline shape (ordering, preassign
	// phase, place-stage heuristics); Options.Pipeline and
	// PipelineConfig.Apply convert between it and Options.
	PipelineConfig = core.PipelineConfig
	// PassStat and PassStats instrument the compiler's passes: runs,
	// work items, failures, and self wall time per named pass.
	PassStat  = core.PassStat
	PassStats = core.PassStats
	// SchedulerStats counts the scheduler's work on one compilation
	// (Schedule.Stats): placements tried, permutation steps, copies,
	// backtracks, intervals attempted.
	SchedulerStats = core.Stats
	// CompileError is the structured failure report of the pass
	// pipeline: kernel, machine, failing pass, reason, and — for
	// op-specific failures — the operation and source line. Its Kind
	// classifies the failure (see ErrorKind).
	CompileError = core.CompileError
	// ErrorKind classifies a CompileError: schedule-search failure,
	// invalid input, cancellation, deadline, or recovered internal
	// panic (DESIGN.md §4.10).
	ErrorKind = core.ErrorKind
	// DegradeLadder and DegradeRung configure the graceful-degradation
	// ladder CompileContext walks after a schedule-search failure.
	DegradeLadder = core.DegradeLadder
	DegradeRung   = core.DegradeRung
	// FaultPlane is the deterministic fault-injection plane
	// (internal/faultinject) armed through Options.Faults for
	// robustness testing; FaultRule is one injection rule.
	FaultPlane = faultinject.Plane
	FaultRule  = faultinject.Rule
	// Diag is one structured diagnostic emitted by a compiler pass.
	Diag = core.Diag
	// Kernel is the scheduler's input program form.
	Kernel = ir.Kernel
	// KernelSpec is one of the built-in Table 1 evaluation kernels.
	KernelSpec = kernels.Spec
	// SimConfig configures cycle-accurate simulation.
	SimConfig = vliwsim.Config
	// SimResult is the outcome of a simulation.
	SimResult = vliwsim.Result
	// CostParams are the VLSI model constants.
	CostParams = vlsi.Params
	// Cost is an area/power/delay estimate for one machine.
	Cost = vlsi.Cost
)

// Observability surface: the scheduler, portfolio racer, and simulator
// emit structured events (internal/obs) at every decision point when
// Options.Tracer / SimConfig.Tracer is set; a nil tracer — the default
// — costs nothing. Streams are stamped with a logical clock, so traces
// are bit-identical across runs and worker counts.
type (
	// Tracer consumes structured compilation/simulation events.
	Tracer = obs.Tracer
	// TraceEvent is one structured event.
	TraceEvent = obs.Event
	// TraceEventKind enumerates the event taxonomy (see DESIGN.md).
	TraceEventKind = obs.Kind
	// TraceRecorder is an in-memory Tracer stamping events with a
	// deterministic logical clock.
	TraceRecorder = obs.Recorder
	// UtilizationReport is a schedule's per-resource interconnect
	// occupancy (Schedule.InterconnectUtilization).
	UtilizationReport = core.UtilizationReport
	// ResourceUtil is one resource row of a UtilizationReport.
	ResourceUtil = core.ResourceUtil
)

// NewTraceRecorder returns an empty trace recorder to pass as
// Options.Tracer or SimConfig.Tracer.
func NewTraceRecorder() *TraceRecorder { return obs.NewRecorder() }

// MultiTracer fans events out to several tracers; nils are dropped and
// the result is nil when none remain.
func MultiTracer(tracers ...Tracer) Tracer { return obs.Multi(tracers...) }

// WriteChromeTrace exports a recorded event stream in the Chrome
// trace-event JSON format (load in Perfetto / chrome://tracing).
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return obs.WriteChromeTrace(w, events)
}

// ValidateChromeTrace checks that data is a well-formed Chrome
// trace-event JSON document with balanced spans and monotone
// timestamps.
func ValidateChromeTrace(data []byte) error { return obs.ValidateChromeTrace(data) }

// Machine-description vocabulary for custom architectures.
type (
	// FUKind is a functional unit's hardware flavor.
	FUKind = machine.FUKind
	// FUID, RFID, BusID, RPID, and WPID identify machine resources.
	FUID  = machine.FUID
	RFID  = machine.RFID
	BusID = machine.BusID
	RPID  = machine.RPID
	WPID  = machine.WPID
)

// NoOp marks a diagnostic not tied to a particular operation.
const NoOp = core.NoOp

// CompileError kinds.
const (
	ErrSchedule         = core.KindSchedule
	ErrInvalidInput     = core.KindInvalidInput
	ErrCancelled        = core.KindCancelled
	ErrDeadlineExceeded = core.KindDeadlineExceeded
	ErrInternal         = core.KindInternal
)

// Fault-injection sites and actions for FaultRule.
const (
	FaultSitePass      = faultinject.SitePass
	FaultSiteSolver    = faultinject.SiteSolver
	FaultSitePortfolio = faultinject.SitePortfolio
	FaultActionPanic   = faultinject.Panic
	FaultActionExhaust = faultinject.Exhaust
	FaultActionDelay   = faultinject.Delay
)

// Prioritize-pass orderings for PipelineConfig.Order.
const (
	OrderPriority = core.OrderPriority
	OrderCycle    = core.OrderCycle
)

// Functional-unit kinds.
const (
	Adder      = machine.Adder
	Multiplier = machine.Multiplier
	Divider    = machine.Divider
	PermUnit   = machine.PermUnit
	Scratchpad = machine.Scratchpad
	LoadStore  = machine.LoadStore
	CopyUnit   = machine.CopyUnit
)

// Central builds the paper's central register file architecture
// (Fig. 1/25): one file, dedicated ports and buses per unit.
func Central() *Machine { return machine.Central() }

// Clustered2 builds the two-cluster architecture of Fig. 2/26.
func Clustered2() *Machine { return machine.Clustered(2) }

// Clustered4 builds the four-cluster architecture of Fig. 2/26.
func Clustered4() *Machine { return machine.Clustered(4) }

// ClusteredMachine is Clustered2/Clustered4 for a dynamic cluster
// count, returning an error instead of panicking on unsupported counts
// — the form to call with untrusted input.
func ClusteredMachine(k int) (*Machine, error) { return machine.ClusteredChecked(k) }

// Distributed builds the distributed register file architecture of
// Fig. 3/27: per-input files with single shared write ports fed by ten
// global buses.
func Distributed() *Machine { return machine.Distributed() }

// Fig5Machine builds the §2 motivating-example machine.
func Fig5Machine() *Machine { return machine.MotivatingExample() }

// Paired is a register-file organization beyond the paper's four (the
// §8 exploration): adjacent unit pairs share two-read-port,
// two-write-port input files, halving the distributed machine's file
// count. On the Table 1 suite it reaches central parity on eight of
// ten kernels.
func Paired() *Machine { return machine.Paired() }

// NewMachineBuilder starts a custom machine description.
func NewMachineBuilder(name string) *MachineBuilder { return machine.NewBuilder(name) }

// ParseMachine builds a machine from its text description (see
// internal/machine's text format: fu/rf/bus/rport/wport/connect
// directives), letting novel architectures be explored without Go code.
func ParseMachine(src string) (*Machine, error) { return machine.ParseText(src) }

// FormatMachine renders a machine in the text description format;
// ParseMachine reconstructs an equivalent machine from it.
func FormatMachine(m *Machine) string { return m.FormatText() }

// Scaled machines for the §8 cost-scaling projection ("For an
// architecture with forty-eight functional units, a distributed
// register file architecture would require 12% as much area and 9% as
// much power as a clustered register file architecture with four
// clusters").
func ScaledCentral(units int) *Machine { return machine.ScaledCentral(units) }

// ScaledClustered builds a k-cluster machine with the given unit count
// for cost scaling studies.
func ScaledClustered(units, k int) *Machine { return machine.ScaledClustered(units, k) }

// ScaledDistributed builds a distributed machine with the given unit
// count for cost scaling studies.
func ScaledDistributed(units int) *Machine { return machine.ScaledDistributed(units) }

// Architectures returns the paper's four machines in evaluation order.
func Architectures() []*Machine {
	return []*Machine{Central(), Clustered2(), Clustered4(), Distributed()}
}

// MachineByName returns a catalog machine by name — the paper's four,
// the Fig. 5 motivating-example machine ("fig5"), or the §8 "paired"
// exploration — or nil for unknown names.
func MachineByName(name string) *Machine { return machine.ByName(name) }

// ParseKernel compiles kernel-language source to the IR without
// scheduling it.
func ParseKernel(src string) (*Kernel, error) { return kasm.Compile(src) }

// Compile schedules a kernel onto a machine using communication
// scheduling: the loop is software pipelined at the smallest feasible
// initiation interval with every communication assigned a route.
func Compile(k *Kernel, m *Machine, opts Options) (*Schedule, error) {
	return core.Compile(k, m, opts)
}

// CompileContext is Compile observing a context: cancellation and
// deadlines propagate into the scheduler's hot loops and surface as a
// structured CompileError of kind ErrCancelled or ErrDeadlineExceeded
// (errors.Is-compatible with context.Canceled/DeadlineExceeded). When
// Options.Degrade is set, a schedule-search failure walks the
// graceful-degradation ladder; a schedule won by a fallback rung names
// it in Schedule.Degraded.
func CompileContext(ctx context.Context, k *Kernel, m *Machine, opts Options) (*Schedule, error) {
	return core.CompileContext(ctx, k, m, opts)
}

// DefaultDegradeLadder returns the stock three-rung degradation ladder
// (shrunk search budgets, a relaxed interval cap, then the cheapest
// greedy pipeline) to set as Options.Degrade.
func DefaultDegradeLadder() *DegradeLadder { return core.DefaultDegradeLadder() }

// NewFaultPlane builds a deterministic fault-injection plane from
// seed-derived rules, to arm through Options.Faults in robustness
// tests.
func NewFaultPlane(seed int64, rules ...FaultRule) *FaultPlane {
	return faultinject.New(seed, rules...)
}

// ParseFaultSpec parses the textual fault-plane format used by
// csched -faults (e.g. "seed=7;site=pass,label=place,action=panic").
func ParseFaultSpec(spec string) (*FaultPlane, error) { return faultinject.ParseSpec(spec) }

// CompilePortfolio schedules a kernel by racing a portfolio of
// scheduler configurations (the §4.6 ablation variants) across a
// bounded pool of workers, splitting the initiation-interval search
// among them and cancelling attempts that can no longer win. The
// result is deterministic — best II, then fewest copies, then lowest
// variant index — so parallel runs are repeatable regardless of worker
// count; only the returned PortfolioStats timings vary. workers ≤ 0
// means GOMAXPROCS.
func CompilePortfolio(ctx context.Context, k *Kernel, m *Machine, opts Options, workers int) (*Schedule, *PortfolioStats, error) {
	return core.CompilePortfolio(ctx, k, m, opts, core.PortfolioOptions{Workers: workers})
}

// DefaultVariants returns the standard portfolio lineup derived from a
// base configuration: the base plus its four ablation flips.
func DefaultVariants(base Options) []Variant { return core.DefaultVariants(base) }

// CompileSource parses kernel-language source and schedules it.
func CompileSource(src string, m *Machine, opts Options) (*Schedule, error) {
	k, err := kasm.Compile(src)
	if err != nil {
		return nil, err
	}
	return core.Compile(k, m, opts)
}

// Verify re-checks a schedule's structural invariants (placements,
// dependences, routes, §4.2 conflict rules) with bookkeeping
// independent of the scheduler.
func Verify(s *Schedule) error { return core.VerifySchedule(s) }

// Simulate executes a schedule cycle by cycle on the machine model,
// checking every port, bus, and unit constraint dynamically and
// computing real values.
func Simulate(s *Schedule, cfg SimConfig) (*SimResult, error) { return vliwsim.Run(s, cfg) }

// Kernels returns the ten Table 1 evaluation kernels.
func Kernels() []*KernelSpec { return kernels.All() }

// KernelByName returns a Table 1 kernel by name, or nil.
func KernelByName(name string) *KernelSpec { return kernels.ByName(name) }

// MotivatingKernel returns the paper's Fig. 4 code fragment as IR: a
// load and two adds feeding two dependent adds (plus stores so the
// simulator can validate results). Scheduling it on Fig5Machine
// reproduces the shared-interconnect contention of §2 and the
// copy-completed schedule of Fig. 7.
func MotivatingKernel() *Kernel { return kernels.Motivating() }

// AnalyzeCost evaluates the register-file VLSI model for a machine.
func AnalyzeCost(m *Machine, p CostParams) Cost { return vlsi.Analyze(m, p) }

// DefaultCostParams returns the calibrated model constants.
func DefaultCostParams() CostParams { return vlsi.DefaultParams() }

// CostReport renders the Figs. 25–27 normalized area/power/delay bars
// for the given machines (first entry = 1.0 baseline).
func CostReport(ms []*Machine) string { return vlsi.Report(ms) }
