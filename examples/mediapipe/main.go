// Mediapipe: compile and run a media kernel across the paper's four
// register-file architectures (§5), then compose it into a full 2-D
// DCT application.
//
// Part 1 schedules the DCT kernel (Table 1) on the central, clustered,
// and distributed machines; each schedule executes on the
// cycle-accurate simulator and its outputs are validated against the
// reference implementation.
//
// Part 2 runs the application a stream processor would: the scheduled
// row-DCT kernel is invoked twice — rows, host-side transpose, rows
// again — producing the full two-dimensional 8×8 DCT of an image
// block, validated against a pure-Go 2-D reference.
//
// Run with: go run ./examples/mediapipe
package main

import (
	"fmt"
	"log"

	commsched "repro"
	"repro/internal/kernels"
)

func main() {
	spec := commsched.KernelByName("DCT")
	k, err := spec.Kernel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel %s: %s\n", spec.Name, spec.Desc)
	fmt.Printf("loop: %d operations per iteration\n\n", len(k.Loop))

	machines := commsched.Architectures()
	baseII := 0
	fmt.Printf("%-14s %4s %8s %8s %10s %10s\n", "architecture", "II", "speedup", "copies", "cycles", "checked")
	for _, m := range machines {
		sched, err := commsched.Compile(k, m, commsched.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if err := commsched.Verify(sched); err != nil {
			log.Fatal(err)
		}
		if baseII == 0 {
			baseII = sched.II
		}
		res, err := commsched.Simulate(sched, commsched.SimConfig{InitMem: spec.Init()})
		if err != nil {
			log.Fatal(err)
		}
		if err := spec.Check(res.Mem); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %4d %8.2f %8d %10d %10s\n",
			m.Name, sched.II, float64(baseII)/float64(sched.II),
			len(sched.Ops)-len(k.Ops), res.Cycles, "ok")
	}

	fmt.Println("\nregister-file cost (normalized to central):")
	fmt.Print(commsched.CostReport(machines))
	fmt.Println("The distributed machine keeps most of the central file's")
	fmt.Println("performance at a small fraction of its area and power — the")
	fmt.Println("paper's headline result.")

	twoDimensionalDCT(k)
}

// twoDimensionalDCT composes the scheduled row kernel into the full
// 2-D transform on the distributed machine.
func twoDimensionalDCT(k *commsched.Kernel) {
	fmt.Println("\n--- 2-D DCT application (distributed machine) ---")
	sched, err := commsched.Compile(k, commsched.Distributed(), commsched.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// An 8×8 image block with a gradient plus texture.
	var block [8][8]int64
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			block[r][c] = int64(16*r + 4*c + (r*c)%7)
		}
	}

	// rowPass runs the scheduled kernel over the rows of m (the kernel
	// transforms several blocks per launch; the first 8 rows carry our
	// data, the rest are zero).
	rowPass := func(m [8][8]int64) [8][8]int64 {
		mem := map[int64]int64{}
		for r := 0; r < 8; r++ {
			for c := 0; c < 8; c++ {
				mem[kernels.DCTIn+int64(r*8+c)] = m[r][c]
			}
		}
		res, err := commsched.Simulate(sched, commsched.SimConfig{InitMem: mem})
		if err != nil {
			log.Fatal(err)
		}
		var out [8][8]int64
		for r := 0; r < 8; r++ {
			for c := 0; c < 8; c++ {
				out[r][c] = res.Mem[kernels.DCTOut+int64(r*8+c)]
			}
		}
		return out
	}
	transpose := func(m [8][8]int64) [8][8]int64 {
		var t [8][8]int64
		for r := 0; r < 8; r++ {
			for c := 0; c < 8; c++ {
				t[c][r] = m[r][c]
			}
		}
		return t
	}

	got := transpose(rowPass(transpose(rowPass(block))))

	// Reference: the same row transform applied host-side.
	ref := block
	for r := 0; r < 8; r++ {
		ref[r] = kernels.DCTRow(ref[r])
	}
	ref = transpose(ref)
	for r := 0; r < 8; r++ {
		ref[r] = kernels.DCTRow(ref[r])
	}
	ref = transpose(ref)

	mismatch := 0
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if got[r][c] != ref[r][c] {
				mismatch++
			}
		}
	}
	fmt.Printf("2-D DCT coefficients (DC = %d):\n", got[0][0])
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			fmt.Printf("%7d", got[r][c])
		}
		fmt.Println()
	}
	if mismatch == 0 {
		fmt.Println("all 64 coefficients match the host reference — the scheduled")
		fmt.Println("kernel is a drop-in compute stage for the application.")
	} else {
		log.Fatalf("%d coefficients differ from the reference", mismatch)
	}
}
