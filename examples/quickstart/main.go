// Quickstart: schedule the paper's motivating example (§2).
//
// The Fig. 5 machine has two adders and a load/store unit whose outputs
// share writeback buses, and a center register file with a single
// shared write port. A conventional scheduler cannot produce a correct
// schedule for the Fig. 4 code fragment on it (Fig. 6); communication
// scheduling allocates the buses and ports explicitly, inserting one
// copy operation, and reaches the Fig. 7 schedule.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	commsched "repro"
)

func main() {
	m := commsched.Fig5Machine()
	k := commsched.MotivatingKernel()

	fmt.Println("machine:", m.Summary())
	fmt.Println("kernel:")
	fmt.Print(k.Dump())

	sched, err := commsched.Compile(k, m, commsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := commsched.Verify(sched); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(sched.Dump())
	fmt.Printf("\ncopies inserted: %d (the paper's Fig. 7 schedule needs one)\n",
		len(sched.Ops)-len(k.Ops))

	// Execute the schedule cycle by cycle: with mem[100] = 40 the two
	// stored results must be 40+3 and 40+7.
	res, err := commsched.Simulate(sched, commsched.SimConfig{
		InitMem: map[int64]int64{100: 40},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated in %d cycles: out[200]=%d out[201]=%d (want 43, 47)\n",
		res.Cycles, res.Mem[200], res.Mem[201])
}
