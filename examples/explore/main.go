// Explore: use communication scheduling to explore novel register-file
// architectures without writing a custom compiler for each (§8:
// "Communication scheduling is not architecture specific. It can be
// used to explore novel register files architectures...").
//
// The example sweeps the distributed architecture's global bus count
// and schedules the FIR-INT kernel on each variant, showing the
// performance/cost knee: below the kernel's writeback bandwidth the
// initiation interval climbs; above it, extra buses only cost area.
//
// Run with: go run ./examples/explore
package main

import (
	"fmt"
	"log"

	commsched "repro"
)

// buildDistributed constructs a distributed register-file machine with
// the given number of shared writeback buses, using the public machine
// builder — the same description language the four paper architectures
// are built from.
func buildDistributed(buses int) *commsched.Machine {
	b := commsched.NewMachineBuilder(fmt.Sprintf("distributed-%dbus", buses))
	busList := make([]commsched.BusID, buses)
	for i := range busList {
		busList[i] = b.AddBus(fmt.Sprintf("gbus%d", i), true)
	}
	add := func(name string, kind commsched.FUKind, canCopy bool) {
		fu := b.AddFU(name, kind, -1, 2)
		for slot := 0; slot < 2; slot++ {
			rf := b.AddRF(fmt.Sprintf("%s.rf%d", name, slot), -1, 8)
			b.DedicatedRead(rf, fu, slot)
			wp := b.AddWritePort(rf, fmt.Sprintf("%s.rf%d.w", name, slot))
			for _, bus := range busList {
				b.ConnectBusWP(bus, wp)
			}
		}
		for _, bus := range busList {
			b.ConnectOutBus(fu, bus)
		}
		b.SetCanCopy(fu, canCopy)
	}
	// The paper's 16-unit mix.
	for i := 0; i < 6; i++ {
		add(fmt.Sprintf("add%d", i), commsched.Adder, true)
	}
	for i := 0; i < 3; i++ {
		add(fmt.Sprintf("mul%d", i), commsched.Multiplier, true)
	}
	add("div0", commsched.Divider, true)
	add("pu0", commsched.PermUnit, true)
	add("sp0", commsched.Scratchpad, false)
	for i := 0; i < 4; i++ {
		add(fmt.Sprintf("ls%d", i), commsched.LoadStore, true)
	}
	m, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	spec := commsched.KernelByName("FIR-INT")
	k, err := spec.Kernel()
	if err != nil {
		log.Fatal(err)
	}
	central, err := commsched.Compile(k, commsched.Central(), commsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FIR-INT on the central register file: II=%d\n\n", central.II)
	fmt.Printf("%-20s %4s %8s %7s %12s %12s\n",
		"architecture", "II", "speedup", "copies", "rel. area", "rel. power")

	p := commsched.DefaultCostParams()
	base := commsched.AnalyzeCost(commsched.Central(), p)
	for _, buses := range []int{4, 6, 8, 10, 12} {
		m := buildDistributed(buses)
		sched, err := commsched.Compile(k, m, commsched.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if err := commsched.Verify(sched); err != nil {
			log.Fatal(err)
		}
		// Validate the most constrained variant end to end.
		if buses == 4 {
			res, err := commsched.Simulate(sched, commsched.SimConfig{InitMem: spec.Init()})
			if err != nil {
				log.Fatal(err)
			}
			if err := spec.Check(res.Mem); err != nil {
				log.Fatal(err)
			}
		}
		c := commsched.AnalyzeCost(m, p)
		fmt.Printf("%-20s %4d %8.2f %7d %12.3f %12.3f\n",
			m.Name, sched.II, float64(central.II)/float64(sched.II),
			len(sched.Ops)-len(k.Ops), c.Area/base.Area, c.Power/base.Power)
	}
	fmt.Println("\nEvery variant was scheduled by the same compiler — no per-")
	fmt.Println("architecture retargeting beyond the machine description.")
}
