package machine

import "repro/internal/ir"

// LatencyTable maps opcodes to result latency in cycles: an operation
// issued on cycle c reads its operands on cycle c and completes — its
// write stub is allocated — on cycle c+latency-1, so a dependent
// operation can issue on cycle c+latency. The motivating example's unit
// latency corresponds to latency 1.
type LatencyTable map[ir.Opcode]int

// DefaultLatencies returns the latency table used for all four paper
// architectures. The paper holds "the mix of functional units and
// operation latency (including register file access time) ... the same
// for all architectures" (§5); the values here are modeled on the
// Imagine Stream Processor's arithmetic pipelines.
func DefaultLatencies() LatencyTable {
	t := LatencyTable{}
	// Integer ALU operations.
	for _, op := range []ir.Opcode{
		ir.MovI, ir.Add, ir.Sub, ir.Neg, ir.And, ir.Or, ir.Xor, ir.Not,
		ir.Shl, ir.Shr, ir.Asr, ir.Min, ir.Max, ir.Abs,
		ir.CmpLT, ir.CmpLE, ir.CmpEQ, ir.CmpNE, ir.Select,
	} {
		t[op] = 1
	}
	// Floating-point adder operations.
	for _, op := range []ir.Opcode{
		ir.FAdd, ir.FSub, ir.FNeg, ir.FMin, ir.FMax, ir.FCmpLT, ir.FAbs,
		ir.ItoF, ir.FtoI,
	} {
		t[op] = 2
	}
	t[ir.Mul] = 2
	t[ir.MulHi] = 2
	t[ir.MulQ] = 2
	t[ir.FMul] = 3
	t[ir.Div] = 6
	t[ir.Rem] = 6
	t[ir.FDiv] = 9
	t[ir.FSqrt] = 9
	t[ir.Load] = 3
	t[ir.Store] = 1
	t[ir.SPRead] = 2
	t[ir.SPWrite] = 1
	t[ir.Perm] = 1
	t[ir.Shuffle] = 1
	t[ir.Copy] = 1
	return t
}

// UnitLatencies returns a table in which every opcode has latency 1, as
// in the paper's motivating example ("For illustrative purposes, all
// operations have unit latency", §2).
func UnitLatencies() LatencyTable {
	t := DefaultLatencies()
	for op := range t {
		t[op] = 1
	}
	return t
}

// Latency returns the result latency of op, defaulting to 1 for opcodes
// absent from the table.
func (m *Machine) Latency(op ir.Opcode) int {
	if l, ok := m.Latencies[op]; ok && l > 0 {
		return l
	}
	return 1
}
