package machine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file defines a line-oriented text format for machine
// descriptions, so novel register-file organizations can be explored
// from the command line without writing Go — completing §8's "it can be
// used to explore novel register files architectures without
// implementing a custom compiler for each architecture" at the tool
// level.
//
// Grammar (# starts a comment; one directive per line):
//
//	machine NAME
//	unitlatency                       # use the unit-latency table (§2)
//	fu NAME KIND inputs=N [cancopy] [interval=N] [cluster=N]
//	rf NAME [regs=N] [cluster=N]
//	bus NAME [global]
//	rport RF NAME                     # read port NAME on file RF
//	wport RF NAME                     # write port NAME on file RF
//	connect FU.out -> BUS             # output drives bus
//	connect BUS -> WPORT              # bus feeds write port
//	connect RPORT -> BUS              # read port drives bus
//	connect BUS -> FU.inK             # bus feeds input K
//	read RF -> FU.inK                 # sugar: dedicated read path
//	write FU -> RF                    # sugar: dedicated write path
//
// KIND is one of add, mul, div, pu, sp, ls, cp. Port names are global
// (qualify them, e.g. "crf.w3", if you like — the format does not
// interpret dots in port names).

// ParseText builds a machine from its text description.
func ParseText(src string) (*Machine, error) {
	p := &textParser{
		fus:    make(map[string]FUID),
		rfs:    make(map[string]RFID),
		buses:  make(map[string]BusID),
		rports: make(map[string]RPID),
		wports: make(map[string]WPID),
	}
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := p.directive(fields); err != nil {
			return nil, fmt.Errorf("machine text:%d: %w", i+1, err)
		}
	}
	if p.b == nil {
		return nil, fmt.Errorf("machine text: missing 'machine NAME' header")
	}
	return p.b.Build()
}

type textParser struct {
	b      *Builder
	fus    map[string]FUID
	rfs    map[string]RFID
	buses  map[string]BusID
	rports map[string]RPID
	wports map[string]WPID
}

func (p *textParser) directive(f []string) error {
	if f[0] != "machine" && p.b == nil {
		return fmt.Errorf("first directive must be 'machine NAME'")
	}
	switch f[0] {
	case "machine":
		if len(f) != 2 {
			return fmt.Errorf("usage: machine NAME")
		}
		p.b = NewBuilder(f[1])
		return nil
	case "unitlatency":
		p.b.SetLatencies(UnitLatencies())
		return nil
	case "fu":
		return p.fuDirective(f)
	case "rf":
		return p.rfDirective(f)
	case "bus":
		if len(f) < 2 || len(f) > 3 {
			return fmt.Errorf("usage: bus NAME [global]")
		}
		global := len(f) == 3 && f[2] == "global"
		if len(f) == 3 && !global {
			return fmt.Errorf("unknown bus attribute %q", f[2])
		}
		if _, dup := p.buses[f[1]]; dup {
			return fmt.Errorf("bus %s redeclared", f[1])
		}
		p.buses[f[1]] = p.b.AddBus(f[1], global)
		return nil
	case "rport", "wport":
		if len(f) != 3 {
			return fmt.Errorf("usage: %s RF NAME", f[0])
		}
		rf, ok := p.rfs[f[1]]
		if !ok {
			return fmt.Errorf("unknown register file %q", f[1])
		}
		if f[0] == "rport" {
			if _, dup := p.rports[f[2]]; dup {
				return fmt.Errorf("read port %s redeclared", f[2])
			}
			p.rports[f[2]] = p.b.AddReadPort(rf, f[2])
		} else {
			if _, dup := p.wports[f[2]]; dup {
				return fmt.Errorf("write port %s redeclared", f[2])
			}
			p.wports[f[2]] = p.b.AddWritePort(rf, f[2])
		}
		return nil
	case "connect":
		if len(f) != 4 || f[2] != "->" {
			return fmt.Errorf("usage: connect A -> B")
		}
		return p.connect(f[1], f[3])
	case "read":
		if len(f) != 4 || f[2] != "->" {
			return fmt.Errorf("usage: read RF -> FU.inK")
		}
		rf, ok := p.rfs[f[1]]
		if !ok {
			return fmt.Errorf("unknown register file %q", f[1])
		}
		fu, slot, err := p.input(f[3])
		if err != nil {
			return err
		}
		p.b.DedicatedRead(rf, fu, slot)
		return nil
	case "write":
		if len(f) != 4 || f[2] != "->" {
			return fmt.Errorf("usage: write FU -> RF")
		}
		fu, ok := p.fus[f[1]]
		if !ok {
			return fmt.Errorf("unknown unit %q", f[1])
		}
		rf, ok := p.rfs[f[3]]
		if !ok {
			return fmt.Errorf("unknown register file %q", f[3])
		}
		p.b.DedicatedWrite(fu, rf)
		return nil
	}
	return fmt.Errorf("unknown directive %q", f[0])
}

var kindNames = map[string]FUKind{
	"add": Adder, "mul": Multiplier, "div": Divider,
	"pu": PermUnit, "sp": Scratchpad, "ls": LoadStore, "cp": CopyUnit,
}

func (p *textParser) fuDirective(f []string) error {
	if len(f) < 3 {
		return fmt.Errorf("usage: fu NAME KIND inputs=N [cancopy] [interval=N] [cluster=N]")
	}
	kind, ok := kindNames[f[2]]
	if !ok {
		return fmt.Errorf("unknown unit kind %q", f[2])
	}
	inputs, cluster, interval := 2, -1, 1
	canCopy := false
	for _, attr := range f[3:] {
		switch {
		case attr == "cancopy":
			canCopy = true
		case strings.HasPrefix(attr, "inputs="):
			n, err := strconv.Atoi(attr[len("inputs="):])
			if err != nil {
				return fmt.Errorf("bad inputs: %v", err)
			}
			inputs = n
		case strings.HasPrefix(attr, "interval="):
			n, err := strconv.Atoi(attr[len("interval="):])
			if err != nil {
				return fmt.Errorf("bad interval: %v", err)
			}
			interval = n
		case strings.HasPrefix(attr, "cluster="):
			n, err := strconv.Atoi(attr[len("cluster="):])
			if err != nil {
				return fmt.Errorf("bad cluster: %v", err)
			}
			cluster = n
		default:
			return fmt.Errorf("unknown unit attribute %q", attr)
		}
	}
	if _, dup := p.fus[f[1]]; dup {
		return fmt.Errorf("unit %s redeclared", f[1])
	}
	fu := p.b.AddFU(f[1], kind, cluster, inputs)
	p.b.SetCanCopy(fu, canCopy)
	if interval != 1 {
		p.b.SetIssueInterval(fu, interval)
	}
	p.fus[f[1]] = fu
	return nil
}

func (p *textParser) rfDirective(f []string) error {
	if len(f) < 2 {
		return fmt.Errorf("usage: rf NAME [regs=N] [cluster=N]")
	}
	regs, cluster := 16, -1
	for _, attr := range f[2:] {
		switch {
		case strings.HasPrefix(attr, "regs="):
			n, err := strconv.Atoi(attr[len("regs="):])
			if err != nil {
				return fmt.Errorf("bad regs: %v", err)
			}
			regs = n
		case strings.HasPrefix(attr, "cluster="):
			n, err := strconv.Atoi(attr[len("cluster="):])
			if err != nil {
				return fmt.Errorf("bad cluster: %v", err)
			}
			cluster = n
		default:
			return fmt.Errorf("unknown file attribute %q", attr)
		}
	}
	if _, dup := p.rfs[f[1]]; dup {
		return fmt.Errorf("register file %s redeclared", f[1])
	}
	p.rfs[f[1]] = p.b.AddRF(f[1], cluster, regs)
	return nil
}

// input parses "FU.inK".
func (p *textParser) input(s string) (FUID, int, error) {
	dot := strings.LastIndex(s, ".in")
	if dot < 0 {
		return NoFU, 0, fmt.Errorf("expected FU.inK, got %q", s)
	}
	fu, ok := p.fus[s[:dot]]
	if !ok {
		return NoFU, 0, fmt.Errorf("unknown unit %q", s[:dot])
	}
	slot, err := strconv.Atoi(s[dot+3:])
	if err != nil {
		return NoFU, 0, fmt.Errorf("bad input slot in %q", s)
	}
	return fu, slot, nil
}

// connect dispatches on the endpoint kinds.
func (p *textParser) connect(a, bEnd string) error {
	// FU.out -> BUS
	if strings.HasSuffix(a, ".out") {
		fu, ok := p.fus[strings.TrimSuffix(a, ".out")]
		if !ok {
			return fmt.Errorf("unknown unit %q", strings.TrimSuffix(a, ".out"))
		}
		bus, ok := p.buses[bEnd]
		if !ok {
			return fmt.Errorf("unknown bus %q", bEnd)
		}
		p.b.ConnectOutBus(fu, bus)
		return nil
	}
	if bus, ok := p.buses[a]; ok {
		// BUS -> WPORT or BUS -> FU.inK
		if wp, ok := p.wports[bEnd]; ok {
			p.b.ConnectBusWP(bus, wp)
			return nil
		}
		if fu, slot, err := p.input(bEnd); err == nil {
			p.b.ConnectBusIn(bus, fu, slot)
			return nil
		}
		return fmt.Errorf("unknown bus sink %q", bEnd)
	}
	if rp, ok := p.rports[a]; ok {
		bus, ok := p.buses[bEnd]
		if !ok {
			return fmt.Errorf("unknown bus %q", bEnd)
		}
		p.b.ConnectRPBus(rp, bus)
		return nil
	}
	return fmt.Errorf("unknown connection source %q", a)
}

// FormatText renders a machine in the text format; ParseText of the
// result reconstructs an equivalent machine (same stub tables).
func (m *Machine) FormatText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine %s\n", m.Name)
	for _, fu := range m.FUs {
		kind := ""
		for name, k := range kindNames {
			if k == fu.Kind {
				kind = name
			}
		}
		fmt.Fprintf(&b, "fu %s %s inputs=%d", fu.Name, kind, fu.NumInputs)
		if fu.CanCopy {
			b.WriteString(" cancopy")
		}
		if fu.IssueInterval != 1 {
			fmt.Fprintf(&b, " interval=%d", fu.IssueInterval)
		}
		if fu.Cluster >= 0 {
			fmt.Fprintf(&b, " cluster=%d", fu.Cluster)
		}
		b.WriteByte('\n')
	}
	for _, rf := range m.RegFiles {
		fmt.Fprintf(&b, "rf %s regs=%d", rf.Name, rf.NumRegs)
		if rf.Cluster >= 0 {
			fmt.Fprintf(&b, " cluster=%d", rf.Cluster)
		}
		b.WriteByte('\n')
	}
	for _, bus := range m.Buses {
		fmt.Fprintf(&b, "bus %s", bus.Name)
		if bus.Global {
			b.WriteString(" global")
		}
		b.WriteByte('\n')
	}
	// Port names must reparse to the same topology: qualify them so they
	// cannot shadow a bus (connect resolves bus sources first) and cannot
	// be mistaken for the FU.out / FU.inK endpoint syntax. The renaming
	// is idempotent, so a format→parse→format cycle is a fixed point.
	used := make(map[string]bool)
	for _, fu := range m.FUs {
		used[fu.Name] = true
	}
	for _, rf := range m.RegFiles {
		used[rf.Name] = true
	}
	for _, bus := range m.Buses {
		used[bus.Name] = true
	}
	rpNames := make([]string, len(m.ReadPorts))
	for _, rp := range m.ReadPorts {
		rpNames[rp.ID] = portName("rp", int(rp.ID), rp.Name, used)
	}
	wpNames := make([]string, len(m.WritePorts))
	for _, wp := range m.WritePorts {
		wpNames[wp.ID] = portName("wp", int(wp.ID), wp.Name, used)
	}
	for _, rp := range m.ReadPorts {
		fmt.Fprintf(&b, "rport %s %s\n", m.RegFiles[rp.RF].Name, rpNames[rp.ID])
	}
	for _, wp := range m.WritePorts {
		fmt.Fprintf(&b, "wport %s %s\n", m.RegFiles[wp.RF].Name, wpNames[wp.ID])
	}
	var lines []string
	for fu, buses := range m.OutToBus {
		for _, bus := range buses {
			lines = append(lines, fmt.Sprintf("connect %s.out -> %s", m.FUs[fu].Name, m.Buses[bus].Name))
		}
	}
	for bus, wps := range m.BusToWP {
		for _, wp := range wps {
			lines = append(lines, fmt.Sprintf("connect %s -> %s",
				m.Buses[bus].Name, wpNames[wp]))
		}
	}
	for rp, buses := range m.RPToBus {
		for _, bus := range buses {
			lines = append(lines, fmt.Sprintf("connect %s -> %s",
				rpNames[rp], m.Buses[bus].Name))
		}
	}
	for bus, ins := range m.BusToIn {
		for _, in := range ins {
			lines = append(lines, fmt.Sprintf("connect %s -> %s.in%d",
				m.Buses[bus].Name, m.FUs[in.FU].Name, in.Slot))
		}
	}
	sort.Strings(lines)
	b.WriteString(strings.Join(lines, "\n"))
	b.WriteByte('\n')
	return b.String()
}

// portName disambiguates port names: the builder's generated names can
// collide across files, so the export qualifies them with their index.
// Dots are rewritten so the name cannot collide with the FU.out / FU.inK
// endpoint syntax, names already carrying this port's qualifier are left
// alone (keeping FormatText a fixed point under reparse), and anything
// still shadowing another machine entity grows underscores until unique.
func portName(prefix string, id int, name string, used map[string]bool) string {
	clean := strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '.', '#':
			return '_'
		}
		return r
	}, name)
	if q := fmt.Sprintf("%s%d_", prefix, id); !strings.HasPrefix(clean, q) {
		clean = q + clean
	}
	for used[clean] {
		clean += "_"
	}
	used[clean] = true
	return clean
}
