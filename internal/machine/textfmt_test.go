package machine

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

const tinyMachineSrc = `
# A two-adder shared-bus machine.
machine tiny
unitlatency
fu a0 add inputs=2 cancopy
fu a1 add inputs=2 cancopy
fu ls0 ls inputs=2 cancopy
rf r0 regs=16
rf r1 regs=16
bus g0 global
bus g1 global

read r0 -> a0.in0
read r0 -> a0.in1
read r1 -> a1.in0
read r1 -> a1.in1
read r0 -> ls0.in0
read r0 -> ls0.in1

wport r0 w0
wport r1 w1
connect a0.out -> g0
connect a1.out -> g1
connect ls0.out -> g0
connect ls0.out -> g1
connect g0 -> w0
connect g0 -> w1
connect g1 -> w0
connect g1 -> w1
`

func TestParseTextBuildsMachine(t *testing.T) {
	m, err := ParseText(tinyMachineSrc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "tiny" || len(m.FUs) != 3 || len(m.RegFiles) != 2 {
		t.Fatalf("shape: %s", m.Summary())
	}
	if err := m.CopyConnected(); err != nil {
		t.Fatalf("not copy-connected: %v", err)
	}
	if m.Latency(ir.Mul) != 1 {
		t.Error("unitlatency directive ignored")
	}
	// a0's output reaches both files (one bus to two write ports).
	if got := len(m.WritableRFs(0)); got != 2 {
		t.Errorf("a0 writable files = %d, want 2", got)
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"fu a add inputs=2", "machine NAME"},
		{"machine m\nfu a nosuch inputs=2", "unknown unit kind"},
		{"machine m\nfu a add inputs=2\nfu a add inputs=2", "redeclared"},
		{"machine m\nbus b\nbus b", "redeclared"},
		{"machine m\nconnect x -> y", "unknown connection source"},
		{"machine m\nread r -> a.in0", "unknown register file"},
		{"machine m\nrf r\nread r -> a.in0", "unknown unit"},
		{"machine m\nrf r\nfu a add inputs=2\nread r -> a.inX", "bad input slot"},
		{"machine m\nfrobnicate", "unknown directive"},
		{"machine m\nfu a add inputs=2 wat=1", "unknown unit attribute"},
		{"machine m\nrf r bogus=2", "unknown file attribute"},
		{"machine m", "no functional units"},
	}
	for _, c := range cases {
		_, err := ParseText(c.src)
		if err == nil {
			t.Errorf("accepted %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error for %q = %v, want substring %q", c.src, err, c.want)
		}
	}
}

// TestRoundTripPaperMachines exports each catalog machine and re-parses
// it; the reconstruction must expose identical stub tables and copy
// distances.
func TestRoundTripPaperMachines(t *testing.T) {
	for _, m := range []*Machine{
		Central(), Clustered(2), Clustered(4), Distributed(), Paired(), MotivatingExample(),
	} {
		t.Run(m.Name, func(t *testing.T) {
			m2, err := ParseText(m.FormatText())
			if err != nil {
				t.Fatalf("reparse: %v", err)
			}
			if len(m2.FUs) != len(m.FUs) || len(m2.RegFiles) != len(m.RegFiles) ||
				len(m2.Buses) != len(m.Buses) ||
				len(m2.ReadPorts) != len(m.ReadPorts) || len(m2.WritePorts) != len(m.WritePorts) {
				t.Fatalf("shape mismatch: %s vs %s", m.Summary(), m2.Summary())
			}
			for _, fu := range m.FUs {
				for slot := 0; slot < fu.NumInputs; slot++ {
					a, b := m.ReadStubs(fu.ID, slot), m2.ReadStubs(fu.ID, slot)
					if len(a) != len(b) {
						t.Fatalf("%s.in%d stub count %d vs %d", fu.Name, slot, len(a), len(b))
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("%s.in%d stub %d: %v vs %v", fu.Name, slot, i, a[i], b[i])
						}
					}
				}
				a, b := m.WriteStubs(fu.ID), m2.WriteStubs(fu.ID)
				if len(a) != len(b) {
					t.Fatalf("%s write stubs %d vs %d", fu.Name, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("%s write stub %d: %v vs %v", fu.Name, i, a[i], b[i])
					}
				}
			}
			for a := range m.RegFiles {
				for bb := range m.RegFiles {
					if m.CopyDistance(RFID(a), RFID(bb)) != m2.CopyDistance(RFID(a), RFID(bb)) {
						t.Fatalf("copy distance rf%d->rf%d differs", a, bb)
					}
				}
			}
		})
	}
}

func TestLintCleanOnCatalog(t *testing.T) {
	for _, m := range []*Machine{Central(), Clustered(2), Clustered(4), Paired(), MotivatingExample()} {
		if warns := m.Lint(); len(warns) != 0 {
			t.Errorf("%s: unexpected lint warnings: %v", m.Name, warns)
		}
	}
	// The distributed machine's scratchpad input files are sinks by
	// design: exactly two warnings.
	warns := Distributed().Lint()
	if len(warns) != 2 {
		t.Errorf("distributed lint = %v, want the two scratchpad sink notes", warns)
	}
	for _, w := range warns {
		if !strings.Contains(w, "sink") || !strings.Contains(w, "sp0") {
			t.Errorf("unexpected warning %q", w)
		}
	}
}

func TestLintFindsProblems(t *testing.T) {
	b := NewBuilder("lintbait")
	rf := b.AddRF("r0", -1, 16)
	dead := b.AddRF("deadrf", -1, 0)
	_ = dead
	fu := b.AddFU("a0", Adder, -1, 2)
	b.DedicatedRead(rf, fu, 0)
	b.DedicatedRead(rf, fu, 1)
	b.DedicatedWrite(fu, rf)
	b.AddBus("floating", true)            // disconnected bus
	ghost := b.AddBus("driverless", true) // sinks but no driver
	wp := b.AddWritePort(rf, "gw")
	b.ConnectBusWP(ghost, wp)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	warns := m.Lint()
	wantSubs := []string{"disconnected", "no driver", "deadrf", "no registers"}
	for _, want := range wantSubs {
		found := false
		for _, w := range warns {
			if strings.Contains(w, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("lint missing a warning about %q: %v", want, warns)
		}
	}
}
