package machine

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Builder assembles a Machine incrementally. All Add/Connect methods
// record the first error and become no-ops afterwards; Build returns it.
type Builder struct {
	m   *Machine
	err error
}

// NewBuilder returns a builder for a machine with the given name, using
// the default latency table.
func NewBuilder(name string) *Builder {
	return &Builder{m: &Machine{
		Name:      name,
		Latencies: DefaultLatencies(),
	}}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("machine build %s: %s", b.m.Name, fmt.Sprintf(format, args...))
	}
}

// SetLatencies replaces the latency table.
func (b *Builder) SetLatencies(t LatencyTable) *Builder {
	b.m.Latencies = t
	return b
}

// AddFU adds a functional unit and returns its id.
func (b *Builder) AddFU(name string, kind FUKind, cluster, numInputs int) FUID {
	if b.err != nil {
		return NoFU
	}
	if numInputs < 1 || numInputs > 4 {
		b.fail("fu %s: bad input count %d", name, numInputs)
		return NoFU
	}
	id := FUID(len(b.m.FUs))
	b.m.FUs = append(b.m.FUs, &FU{
		ID: id, Name: name, Kind: kind, Cluster: cluster,
		NumInputs: numInputs, IssueInterval: 1,
	})
	b.m.OutToBus = append(b.m.OutToBus, nil)
	return id
}

// SetCanCopy marks a unit as implementing the copy operation.
func (b *Builder) SetCanCopy(fu FUID, can bool) *Builder {
	if b.err == nil {
		b.m.FUs[fu].CanCopy = can
	}
	return b
}

// SetIssueInterval sets the minimum cycles between issues to fu.
func (b *Builder) SetIssueInterval(fu FUID, ii int) *Builder {
	if b.err == nil {
		if ii < 1 {
			b.fail("fu %s: bad issue interval %d", b.m.FUs[fu].Name, ii)
		} else {
			b.m.FUs[fu].IssueInterval = ii
		}
	}
	return b
}

// AddRF adds a register file and returns its id.
func (b *Builder) AddRF(name string, cluster, numRegs int) RFID {
	if b.err != nil {
		return NoRF
	}
	id := RFID(len(b.m.RegFiles))
	b.m.RegFiles = append(b.m.RegFiles, &RegFile{ID: id, Name: name, Cluster: cluster, NumRegs: numRegs})
	return id
}

// AddBus adds a bus and returns its id.
func (b *Builder) AddBus(name string, global bool) BusID {
	if b.err != nil {
		return NoBus
	}
	id := BusID(len(b.m.Buses))
	b.m.Buses = append(b.m.Buses, &Bus{ID: id, Name: name, Global: global})
	b.m.BusToWP = append(b.m.BusToWP, nil)
	b.m.BusToIn = append(b.m.BusToIn, nil)
	return id
}

// AddReadPort adds a read port to rf and returns its id.
func (b *Builder) AddReadPort(rf RFID, name string) RPID {
	if b.err != nil {
		return NoRP
	}
	if int(rf) >= len(b.m.RegFiles) {
		b.fail("read port %s: bad rf %d", name, rf)
		return NoRP
	}
	id := RPID(len(b.m.ReadPorts))
	b.m.ReadPorts = append(b.m.ReadPorts, &ReadPort{ID: id, RF: rf, Name: name})
	b.m.RPToBus = append(b.m.RPToBus, nil)
	return id
}

// AddWritePort adds a write port to rf and returns its id.
func (b *Builder) AddWritePort(rf RFID, name string) WPID {
	if b.err != nil {
		return NoWP
	}
	if int(rf) >= len(b.m.RegFiles) {
		b.fail("write port %s: bad rf %d", name, rf)
		return NoWP
	}
	id := WPID(len(b.m.WritePorts))
	b.m.WritePorts = append(b.m.WritePorts, &WritePort{ID: id, RF: rf, Name: name})
	return id
}

// ConnectOutBus lets fu's output drive bus.
func (b *Builder) ConnectOutBus(fu FUID, bus BusID) *Builder {
	if b.err != nil {
		return b
	}
	b.m.OutToBus[fu] = appendUniqueBus(b.m.OutToBus[fu], bus)
	return b
}

// ConnectBusWP lets bus feed write port wp.
func (b *Builder) ConnectBusWP(bus BusID, wp WPID) *Builder {
	if b.err != nil {
		return b
	}
	b.m.BusToWP[bus] = appendUniqueWP(b.m.BusToWP[bus], wp)
	return b
}

// ConnectRPBus lets read port rp drive bus.
func (b *Builder) ConnectRPBus(rp RPID, bus BusID) *Builder {
	if b.err != nil {
		return b
	}
	b.m.RPToBus[rp] = appendUniqueBus(b.m.RPToBus[rp], bus)
	return b
}

// ConnectBusIn lets bus feed operand slot of fu.
func (b *Builder) ConnectBusIn(bus BusID, fu FUID, slot int) *Builder {
	if b.err != nil {
		return b
	}
	if slot >= b.m.FUs[fu].NumInputs {
		b.fail("bus %d -> fu %s slot %d: unit has %d inputs",
			bus, b.m.FUs[fu].Name, slot, b.m.FUs[fu].NumInputs)
		return b
	}
	ins := b.m.BusToIn[bus]
	for _, in := range ins {
		if in.FU == fu && in.Slot == slot {
			return b
		}
	}
	b.m.BusToIn[bus] = append(ins, InputRef{FU: fu, Slot: slot})
	return b
}

// DedicatedRead wires a dedicated read path: a fresh read port on rf, a
// fresh private bus, connected to operand slot of fu. This is the
// "dedicated bus and dedicated register file port" topology of the
// central and clustered architectures (Figs. 1–2).
func (b *Builder) DedicatedRead(rf RFID, fu FUID, slot int) *Builder {
	if b.err != nil {
		return b
	}
	name := fmt.Sprintf("%s.r%d", b.m.FUs[fu].Name, slot)
	rp := b.AddReadPort(rf, name)
	bus := b.AddBus("rb."+name, false)
	return b.ConnectRPBus(rp, bus).ConnectBusIn(bus, fu, slot)
}

// DedicatedWrite wires a dedicated write path: fu's output over a fresh
// private bus into a fresh write port on rf.
func (b *Builder) DedicatedWrite(fu FUID, rf RFID) *Builder {
	if b.err != nil {
		return b
	}
	name := fmt.Sprintf("%s.w", b.m.FUs[fu].Name)
	bus := b.AddBus("wb."+name, false)
	wp := b.AddWritePort(rf, name)
	return b.ConnectOutBus(fu, bus).ConnectBusWP(bus, wp)
}

// Build validates the description, computes the derived stub and copy
// tables, and returns the finished machine.
func (b *Builder) Build() (*Machine, error) {
	if b.err != nil {
		return nil, b.err
	}
	m := b.m
	if err := m.validate(); err != nil {
		return nil, err
	}
	m.computeStubs()
	m.computeClassUnits()
	m.computeCopyGraph()
	m.computeMinCopies()
	m.computeDistances()
	if err := m.checkSchedulable(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustBuild is Build for statically known-good machines; it panics on
// error.
func (b *Builder) MustBuild() *Machine {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}

func appendUniqueBus(s []BusID, v BusID) []BusID {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func appendUniqueWP(s []WPID, v WPID) []WPID {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// validate checks structural sanity of the raw description.
func (m *Machine) validate() error {
	if len(m.FUs) == 0 {
		return fmt.Errorf("machine %s: no functional units", m.Name)
	}
	if len(m.RegFiles) == 0 {
		return fmt.Errorf("machine %s: no register files", m.Name)
	}
	for fu, buses := range m.OutToBus {
		for _, bus := range buses {
			if int(bus) >= len(m.Buses) {
				return fmt.Errorf("machine %s: fu %d drives unknown bus %d", m.Name, fu, bus)
			}
		}
	}
	for bus, wps := range m.BusToWP {
		for _, wp := range wps {
			if int(wp) >= len(m.WritePorts) {
				return fmt.Errorf("machine %s: bus %d feeds unknown write port %d", m.Name, bus, wp)
			}
		}
	}
	for rp, buses := range m.RPToBus {
		for _, bus := range buses {
			if int(bus) >= len(m.Buses) {
				return fmt.Errorf("machine %s: read port %d drives unknown bus %d", m.Name, rp, bus)
			}
		}
	}
	for bus, ins := range m.BusToIn {
		for _, in := range ins {
			if int(in.FU) >= len(m.FUs) || in.Slot >= m.FUs[in.FU].NumInputs {
				return fmt.Errorf("machine %s: bus %d feeds unknown input fu%d.%d", m.Name, bus, in.FU, in.Slot)
			}
		}
	}
	return nil
}

// computeStubs enumerates the valid read and write stubs per unit.
func (m *Machine) computeStubs() {
	// Invert bus→input and bus→wp edges.
	inBuses := make(map[InputRef][]BusID)
	for bus, ins := range m.BusToIn {
		for _, in := range ins {
			inBuses[in] = append(inBuses[in], BusID(bus))
		}
	}
	busRPs := make([][]RPID, len(m.Buses))
	for rp, buses := range m.RPToBus {
		for _, bus := range buses {
			busRPs[bus] = append(busRPs[bus], RPID(rp))
		}
	}
	m.readStubs = make([][][]ReadStub, len(m.FUs))
	for _, fu := range m.FUs {
		m.readStubs[fu.ID] = make([][]ReadStub, fu.NumInputs)
		for slot := 0; slot < fu.NumInputs; slot++ {
			var stubs []ReadStub
			for _, bus := range inBuses[InputRef{FU: fu.ID, Slot: slot}] {
				for _, rp := range busRPs[bus] {
					stubs = append(stubs, ReadStub{
						RF: m.ReadPorts[rp].RF, Port: rp, Bus: bus, FU: fu.ID, Slot: slot,
					})
				}
			}
			sort.Slice(stubs, func(i, j int) bool {
				if stubs[i].RF != stubs[j].RF {
					return stubs[i].RF < stubs[j].RF
				}
				if stubs[i].Bus != stubs[j].Bus {
					return stubs[i].Bus < stubs[j].Bus
				}
				return stubs[i].Port < stubs[j].Port
			})
			m.readStubs[fu.ID][slot] = stubs
		}
	}
	m.writeStubs = make([][]WriteStub, len(m.FUs))
	for _, fu := range m.FUs {
		var stubs []WriteStub
		for _, bus := range m.OutToBus[fu.ID] {
			for _, wp := range m.BusToWP[bus] {
				stubs = append(stubs, WriteStub{
					FU: fu.ID, Bus: bus, Port: wp, RF: m.WritePorts[wp].RF,
				})
			}
		}
		sort.Slice(stubs, func(i, j int) bool {
			if stubs[i].RF != stubs[j].RF {
				return stubs[i].RF < stubs[j].RF
			}
			if stubs[i].Bus != stubs[j].Bus {
				return stubs[i].Bus < stubs[j].Bus
			}
			return stubs[i].Port < stubs[j].Port
		})
		m.writeStubs[fu.ID] = stubs
	}
}

func (m *Machine) computeClassUnits() {
	m.classUnits = make(map[ir.Class][]FUID)
	for c := ir.Class(0); c < ir.NumClasses; c++ {
		for _, fu := range m.FUs {
			if fu.Executes(c) {
				m.classUnits[c] = append(m.classUnits[c], fu.ID)
			}
		}
	}
}

// computeCopyGraph builds the register-file copy reachability tables:
// which single copies are possible, and the minimum copy count between
// every pair of register files.
func (m *Machine) computeCopyGraph() {
	n := len(m.RegFiles)
	m.CopySteps = make([][]CopyStep, n)
	for _, fu := range m.FUs {
		if !fu.Executes(ir.ClsCopy) {
			continue
		}
		// A copy on fu reads its operand at any input slot and writes
		// through its output.
		for slot := 0; slot < fu.NumInputs; slot++ {
			for _, rs := range m.readStubs[fu.ID][slot] {
				for _, ws := range m.writeStubs[fu.ID] {
					if rs.RF == ws.RF {
						continue // not a move
					}
					dup := false
					for _, st := range m.CopySteps[rs.RF] {
						if st.FU == fu.ID && st.Slot == slot && st.To == ws.RF {
							dup = true
							break
						}
					}
					if !dup {
						m.CopySteps[rs.RF] = append(m.CopySteps[rs.RF],
							CopyStep{FU: fu.ID, Slot: slot, From: rs.RF, To: ws.RF})
					}
				}
			}
		}
	}
	// BFS from every register file.
	m.copyDist = make([][]int, n)
	for src := 0; src < n; src++ {
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, st := range m.CopySteps[cur] {
				if dist[st.To] == -1 {
					dist[st.To] = dist[cur] + 1
					queue = append(queue, int(st.To))
				}
			}
		}
		m.copyDist[src] = dist
	}
}

// computeDistances fills the output→file, file→input, and writable-set
// tables the scheduler's candidate scoring reads in its hot path.
func (m *Machine) computeDistances() {
	nRF := len(m.RegFiles)
	m.distFUToRF = make([][]int, len(m.FUs))
	m.writableRFs = make([][]RFID, len(m.FUs))
	for _, fu := range m.FUs {
		row := make([]int, nRF)
		for rf := range row {
			best := -1
			for _, ws := range m.writeStubs[fu.ID] {
				if d := m.copyDist[ws.RF][rf]; d >= 0 && (best < 0 || d < best) {
					best = d
				}
			}
			row[rf] = best
		}
		m.distFUToRF[fu.ID] = row
		seen := make(map[RFID]bool)
		for _, ws := range m.writeStubs[fu.ID] {
			if !seen[ws.RF] {
				seen[ws.RF] = true
				m.writableRFs[fu.ID] = append(m.writableRFs[fu.ID], ws.RF)
			}
		}
	}
	m.wpCount = make([]int, nRF)
	for _, wp := range m.WritePorts {
		m.wpCount[wp.RF]++
	}
	m.distRFToIn = make([][][]int, nRF)
	for rf := 0; rf < nRF; rf++ {
		m.distRFToIn[rf] = make([][]int, len(m.FUs))
		for _, fu := range m.FUs {
			row := make([]int, fu.NumInputs)
			for slot := range row {
				best := -1
				for _, rs := range m.readStubs[fu.ID][slot] {
					if d := m.copyDist[rf][rs.RF]; d >= 0 && (best < 0 || d < best) {
						best = d
					}
				}
				row[slot] = best
			}
			m.distRFToIn[rf][fu.ID] = row
		}
	}
}

// computeMinCopies fills the per-(output, input) minimum-copy table
// from the register-file copy distances.
func (m *Machine) computeMinCopies() {
	m.minCopies = make([][][]int, len(m.FUs))
	for _, from := range m.FUs {
		m.minCopies[from.ID] = make([][]int, len(m.FUs))
		for _, to := range m.FUs {
			row := make([]int, to.NumInputs)
			for slot := range row {
				best := -1
				for _, ws := range m.writeStubs[from.ID] {
					for _, rs := range m.readStubs[to.ID][slot] {
						if d := m.copyDist[ws.RF][rs.RF]; d >= 0 && (best < 0 || d < best) {
							best = d
						}
					}
				}
				row[slot] = best
			}
			m.minCopies[from.ID][to.ID] = row
		}
	}
}

// checkSchedulable verifies that every unit that can execute some class
// has at least one write stub (if its class produces results) and read
// stubs for every operand slot. Without this, an operation assigned to
// the unit could never communicate.
func (m *Machine) checkSchedulable() error {
	for _, fu := range m.FUs {
		if len(m.writeStubs[fu.ID]) == 0 {
			return fmt.Errorf("machine %s: fu %s has no write stubs", m.Name, fu.Name)
		}
		for slot := 0; slot < fu.NumInputs; slot++ {
			if len(m.readStubs[fu.ID][slot]) == 0 {
				return fmt.Errorf("machine %s: fu %s input %d has no read stubs", m.Name, fu.Name, slot)
			}
		}
	}
	return nil
}

// CopyConnected checks the Appendix A property: for every pair of
// classes (c1 producing a value, c2 consuming it at some slot), every
// unit executing c1 can deposit the value in some register file from
// which zero or more copies reach a register file readable by every
// unit executing c2 at that slot. Communication scheduling is complete
// only on machines with this property.
func (m *Machine) CopyConnected() error {
	for c1 := ir.Class(1); c1 < ir.NumClasses; c1++ {
		for _, f1 := range m.classUnits[c1] {
			for c2 := ir.Class(1); c2 < ir.NumClasses; c2++ {
				for _, f2 := range m.classUnits[c2] {
					fu2 := m.FUs[f2]
					for slot := 0; slot < fu2.NumInputs; slot++ {
						if !m.copyCompletable(f1, f2, slot) {
							return fmt.Errorf(
								"machine %s: no copy path from %s output to %s input %d",
								m.Name, m.FUs[f1].Name, fu2.Name, slot)
						}
					}
				}
			}
		}
	}
	return nil
}

// copyCompletable reports whether a value produced on f1 can reach
// operand slot of f2 through zero or more copies.
func (m *Machine) copyCompletable(f1, f2 FUID, slot int) bool {
	for _, ws := range m.writeStubs[f1] {
		for _, rs := range m.readStubs[f2][slot] {
			if d := m.copyDist[ws.RF][rs.RF]; d >= 0 {
				return true
			}
		}
	}
	return false
}
