package machine

import (
	"fmt"

	"repro/internal/ir"
)

// Lint reports structural oddities in a machine description that Build
// accepts but that usually indicate mistakes in hand-written
// descriptions: dead buses, write-only or read-only register files,
// files no value can ever reach, and sink files that trap staged
// values. The machine remains usable; these are warnings, not errors.
func (m *Machine) Lint() []string {
	var warns []string

	// Bus connectivity.
	drivers := make([]int, len(m.Buses))
	sinks := make([]int, len(m.Buses))
	for _, buses := range m.OutToBus {
		for _, b := range buses {
			drivers[b]++
		}
	}
	for _, buses := range m.RPToBus {
		for _, b := range buses {
			drivers[b]++
		}
	}
	for b, wps := range m.BusToWP {
		sinks[b] += len(wps)
	}
	for b, ins := range m.BusToIn {
		sinks[b] += len(ins)
	}
	for b, bus := range m.Buses {
		switch {
		case drivers[b] == 0 && sinks[b] == 0:
			warns = append(warns, fmt.Sprintf("bus %s is disconnected", bus.Name))
		case drivers[b] == 0:
			warns = append(warns, fmt.Sprintf("bus %s has sinks but no driver", bus.Name))
		case sinks[b] == 0:
			warns = append(warns, fmt.Sprintf("bus %s has drivers but no sink", bus.Name))
		}
	}

	// Register file reachability and usefulness.
	readable := make([]bool, len(m.RegFiles))
	writable := make([]bool, len(m.RegFiles))
	for _, rp := range m.ReadPorts {
		// A read port only matters if some input can be fed from it.
		for _, bus := range m.RPToBus[rp.ID] {
			if len(m.BusToIn[bus]) > 0 {
				readable[rp.RF] = true
			}
		}
	}
	for _, fu := range m.FUs {
		for _, ws := range m.WriteStubs(fu.ID) {
			writable[ws.RF] = true
		}
	}
	for i, rf := range m.RegFiles {
		switch {
		case !readable[i] && !writable[i]:
			warns = append(warns, fmt.Sprintf("register file %s is neither readable nor writable", rf.Name))
		case !readable[i]:
			warns = append(warns, fmt.Sprintf("register file %s is write-only (no input can read it)", rf.Name))
		case !writable[i]:
			warns = append(warns, fmt.Sprintf("register file %s is read-only (no output can reach it)", rf.Name))
		}
		if rf.NumRegs <= 0 {
			warns = append(warns, fmt.Sprintf("register file %s has no registers", rf.Name))
		}
	}

	// Sink files: readable only by units that cannot copy, so a value
	// staged there for a different consumer is stuck. Informational —
	// the distributed machine's scratchpad files are like this by
	// design — but worth knowing when hand-building machines.
	if len(m.RegFiles) > 1 {
		for i, rf := range m.RegFiles {
			if !readable[i] || !writable[i] {
				continue
			}
			if len(m.CopySteps[i]) == 0 {
				warns = append(warns, fmt.Sprintf(
					"register file %s is a sink: values staged there cannot be copied out", rf.Name))
			}
		}
	}

	// Copy capability.
	if len(m.UnitsFor(ir.ClsCopy)) == 0 && len(m.RegFiles) > 1 {
		if err := m.CopyConnected(); err != nil {
			warns = append(warns, "no unit implements the copy operation and the machine is not copy-connected")
		}
	}
	return warns
}
