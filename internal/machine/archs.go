package machine

import "fmt"

// The evaluated unit mix (§5): "four load/store (l/s) units and twelve
// functional units: six adders, three multipliers, a divider, a
// permutation unit (pu), and a scratchpad (sp)".
const (
	NumAdders      = 6
	NumMultipliers = 3
	NumDividers    = 1
	NumPermUnits   = 1
	NumScratchpads = 1
	NumLoadStores  = 4
	NumUnits       = NumAdders + NumMultipliers + NumDividers + NumPermUnits + NumScratchpads + NumLoadStores
)

// NumGlobalBuses is the distributed architecture's shared bus count:
// "each functional unit output can drive any one of ten global buses"
// (§5).
const NumGlobalBuses = 10

// unitSpec describes one unit of the standard mix.
type unitSpec struct {
	name string
	kind FUKind
}

// standardMix returns the 16-unit mix in a fixed order.
func standardMix() []unitSpec {
	var specs []unitSpec
	for i := 0; i < NumAdders; i++ {
		specs = append(specs, unitSpec{fmt.Sprintf("add%d", i), Adder})
	}
	for i := 0; i < NumMultipliers; i++ {
		specs = append(specs, unitSpec{fmt.Sprintf("mul%d", i), Multiplier})
	}
	specs = append(specs, unitSpec{"div0", Divider})
	specs = append(specs, unitSpec{"pu0", PermUnit})
	specs = append(specs, unitSpec{"sp0", Scratchpad})
	for i := 0; i < NumLoadStores; i++ {
		specs = append(specs, unitSpec{fmt.Sprintf("ls%d", i), LoadStore})
	}
	return specs
}

// clusterAssignment4 distributes the standard mix over four clusters so
// that each cluster holds a load/store unit and a balanced arithmetic
// mix, following Fig. 26.
var clusterAssignment4 = map[string]int{
	"add0": 0, "add1": 0, "mul0": 0, "ls0": 0,
	"add2": 1, "mul1": 1, "div0": 1, "ls1": 1,
	"add3": 2, "add4": 2, "mul2": 2, "ls2": 2,
	"add5": 3, "pu0": 3, "sp0": 3, "ls3": 3,
}

// clusterOf returns the cluster of a standard-mix unit for a k-cluster
// machine. The two-cluster machine merges clusters {0,1} and {2,3}
// ("two cluster division", Fig. 26).
func clusterOf(name string, k int) int {
	c4 := clusterAssignment4[name]
	if k == 4 {
		return c4
	}
	if k == 2 {
		return c4 / 2
	}
	panic(fmt.Sprintf("unsupported cluster count %d", k))
}

// Central builds the central register file architecture of Fig. 1 /
// Fig. 25: every functional-unit input and output has a dedicated bus
// and a dedicated port on one register file. Communication scheduling
// is trivial here — every stub is forced and every route forms without
// copies — so the machine serves as the performance baseline.
func Central() *Machine {
	b := NewBuilder("central")
	rf := b.AddRF("crf", -1, 256)
	for _, spec := range standardMix() {
		fu := b.AddFU(spec.name, spec.kind, -1, 2)
		b.DedicatedRead(rf, fu, 0)
		b.DedicatedRead(rf, fu, 1)
		b.DedicatedWrite(fu, rf)
		if spec.kind == Divider {
			b.SetIssueInterval(fu, 2)
		}
	}
	return b.MustBuild()
}

// Clustered builds the clustered register file architecture of Fig. 2 /
// Fig. 26 with k clusters (k = 2 or 4). Each cluster has its own
// register file with dedicated ports and buses for its units. "For
// consistency, the clustered architecture is modeled with special
// 'copy units' driving the global buses between register files" (§5):
// each cluster has one copy unit whose output can drive any of the k
// shared global buses, and each cluster register file has one shared
// write port that any global bus can feed — the shared-bus topology of
// Fig. 2.
func Clustered(k int) *Machine {
	m, err := ClusteredChecked(k)
	if err != nil {
		panic(err)
	}
	return m
}

// ClusteredChecked is Clustered returning an error instead of
// panicking on an unsupported cluster count — the form servers and
// other untrusted-input paths should call.
func ClusteredChecked(k int) (*Machine, error) {
	if k != 2 && k != 4 {
		return nil, fmt.Errorf("machine.Clustered: unsupported cluster count %d (the Fig. 26 divisions are 2 and 4)", k)
	}
	b := NewBuilder(fmt.Sprintf("clustered%d", k))
	regsPer := 256 / k
	rfs := make([]RFID, k)
	for c := 0; c < k; c++ {
		rfs[c] = b.AddRF(fmt.Sprintf("rf%d", c), c, regsPer)
	}
	for _, spec := range standardMix() {
		c := clusterOf(spec.name, k)
		fu := b.AddFU(spec.name, spec.kind, c, 2)
		b.DedicatedRead(rfs[c], fu, 0)
		b.DedicatedRead(rfs[c], fu, 1)
		b.DedicatedWrite(fu, rfs[c])
		if spec.kind == Divider {
			b.SetIssueInterval(fu, 2)
		}
	}
	// Global buses and the copy units that drive them.
	buses := make([]BusID, k)
	for i := 0; i < k; i++ {
		buses[i] = b.AddBus(fmt.Sprintf("gbus%d", i), true)
	}
	for c := 0; c < k; c++ {
		cp := b.AddFU(fmt.Sprintf("cp%d", c), CopyUnit, c, 1)
		b.DedicatedRead(rfs[c], cp, 0)
		for _, bus := range buses {
			b.ConnectOutBus(cp, bus)
		}
	}
	for c := 0; c < k; c++ {
		wp := b.AddWritePort(rfs[c], fmt.Sprintf("rf%d.gw", c))
		for _, bus := range buses {
			b.ConnectBusWP(bus, wp)
		}
	}
	return b.Build()
}

// Distributed builds the distributed register file architecture of
// Fig. 3 / Fig. 27: "each functional unit input is connected to the
// single read port of a dedicated register file and all functional unit
// outputs are connected by shared buses to the single shared write port
// of each register file" (§1). Each output can drive any one of the ten
// global buses and each register file's write port can be driven by any
// of those buses (§5). All units except the scratchpad implement the
// copy operation.
func Distributed() *Machine {
	b := NewBuilder("distributed")
	buses := make([]BusID, NumGlobalBuses)
	for i := range buses {
		buses[i] = b.AddBus(fmt.Sprintf("gbus%d", i), true)
	}
	for _, spec := range standardMix() {
		fu := b.AddFU(spec.name, spec.kind, -1, 2)
		for slot := 0; slot < 2; slot++ {
			rf := b.AddRF(fmt.Sprintf("%s.rf%d", spec.name, slot), -1, 8)
			b.DedicatedRead(rf, fu, slot)
			wp := b.AddWritePort(rf, fmt.Sprintf("%s.rf%d.w", spec.name, slot))
			for _, bus := range buses {
				b.ConnectBusWP(bus, wp)
			}
		}
		for _, bus := range buses {
			b.ConnectOutBus(fu, bus)
		}
		if spec.kind != Scratchpad {
			b.SetCanCopy(fu, true)
		}
		if spec.kind == Divider {
			b.SetIssueInterval(fu, 2)
		}
	}
	return b.MustBuild()
}

// ScaledCentral builds a central-file machine with the given number of
// arithmetic units, used by the cost model's scaling studies ("For an
// architecture with forty-eight functional units...", §8). Register
// count scales with the unit count as in [15].
func ScaledCentral(units int) *Machine {
	b := NewBuilder(fmt.Sprintf("central%d", units))
	rf := b.AddRF("crf", -1, 16*units)
	for i := 0; i < units; i++ {
		fu := b.AddFU(fmt.Sprintf("u%d", i), Adder, -1, 2)
		b.DedicatedRead(rf, fu, 0)
		b.DedicatedRead(rf, fu, 1)
		b.DedicatedWrite(fu, rf)
	}
	return b.MustBuild()
}

// ScaledClustered builds a k-cluster machine with the given unit count
// for cost scaling studies.
func ScaledClustered(units, k int) *Machine {
	m, err := ScaledClusteredChecked(units, k)
	if err != nil {
		panic(err)
	}
	return m
}

// ScaledClusteredChecked is ScaledClustered returning an error instead
// of panicking (or, historically, dividing by zero on k = 0) for
// counts that make no machine.
func ScaledClusteredChecked(units, k int) (*Machine, error) {
	if units < 1 {
		return nil, fmt.Errorf("machine.ScaledClustered: unit count %d is not positive", units)
	}
	if k < 1 || k > units {
		return nil, fmt.Errorf("machine.ScaledClustered: cluster count %d outside [1, %d units]", k, units)
	}
	b := NewBuilder(fmt.Sprintf("clustered%d_%d", k, units))
	rfs := make([]RFID, k)
	for c := 0; c < k; c++ {
		rfs[c] = b.AddRF(fmt.Sprintf("rf%d", c), c, 16*units/k)
	}
	for i := 0; i < units; i++ {
		c := i % k
		fu := b.AddFU(fmt.Sprintf("u%d", i), Adder, c, 2)
		b.DedicatedRead(rfs[c], fu, 0)
		b.DedicatedRead(rfs[c], fu, 1)
		b.DedicatedWrite(fu, rfs[c])
	}
	buses := make([]BusID, k)
	for i := range buses {
		buses[i] = b.AddBus(fmt.Sprintf("gbus%d", i), true)
	}
	for c := 0; c < k; c++ {
		cp := b.AddFU(fmt.Sprintf("cp%d", c), CopyUnit, c, 1)
		b.DedicatedRead(rfs[c], cp, 0)
		for _, bus := range buses {
			b.ConnectOutBus(cp, bus)
		}
		wp := b.AddWritePort(rfs[c], fmt.Sprintf("rf%d.gw", c))
		for _, bus := range buses {
			b.ConnectBusWP(bus, wp)
		}
	}
	return b.Build()
}

// ScaledDistributed builds a distributed machine with the given unit
// count for cost scaling studies. The global bus count scales with the
// units as in the paper's configuration (10 buses for 16 units).
func ScaledDistributed(units int) *Machine {
	b := NewBuilder(fmt.Sprintf("distributed%d", units))
	nbus := (10*units + 15) / 16
	buses := make([]BusID, nbus)
	for i := range buses {
		buses[i] = b.AddBus(fmt.Sprintf("gbus%d", i), true)
	}
	for i := 0; i < units; i++ {
		fu := b.AddFU(fmt.Sprintf("u%d", i), Adder, -1, 2)
		b.SetCanCopy(fu, true)
		for slot := 0; slot < 2; slot++ {
			rf := b.AddRF(fmt.Sprintf("u%d.rf%d", i, slot), -1, 8)
			b.DedicatedRead(rf, fu, slot)
			wp := b.AddWritePort(rf, fmt.Sprintf("u%d.rf%d.w", i, slot))
			for _, bus := range buses {
				b.ConnectBusWP(bus, wp)
			}
		}
		for _, bus := range buses {
			b.ConnectOutBus(fu, bus)
		}
	}
	return b.MustBuild()
}

// Paired builds a register-file organization beyond the paper's four —
// the kind of exploration §8 calls for ("other architectures may yield
// even better results"). It halves the distributed machine's file
// count: each register file serves the same-numbered inputs of two
// adjacent units through two dedicated read ports, and takes writes
// through two shared-bus write ports. Files are larger but fewer, and
// each value deposit becomes readable by two units at once, reducing
// both copy pressure and per-file port thrash.
func Paired() *Machine {
	b := NewBuilder("paired")
	buses := make([]BusID, NumGlobalBuses)
	for i := range buses {
		buses[i] = b.AddBus(fmt.Sprintf("gbus%d", i), true)
	}
	specs := standardMix()
	fus := make([]FUID, len(specs))
	for i, spec := range specs {
		fus[i] = b.AddFU(spec.name, spec.kind, -1, 2)
		for _, bus := range buses {
			b.ConnectOutBus(fus[i], bus)
		}
		if spec.kind != Scratchpad {
			b.SetCanCopy(fus[i], true)
		}
		if spec.kind == Divider {
			b.SetIssueInterval(fus[i], 2)
		}
	}
	// Pair units (0,1), (2,3), ... sharing one file per input slot.
	for p := 0; p+1 < len(fus); p += 2 {
		for slot := 0; slot < 2; slot++ {
			rf := b.AddRF(fmt.Sprintf("p%d.rf%d", p/2, slot), -1, 16)
			b.DedicatedRead(rf, fus[p], slot)
			b.DedicatedRead(rf, fus[p+1], slot)
			for w := 0; w < 2; w++ {
				wp := b.AddWritePort(rf, fmt.Sprintf("p%d.rf%d.w%d", p/2, slot, w))
				for _, bus := range buses {
					b.ConnectBusWP(bus, wp)
				}
			}
		}
	}
	return b.MustBuild()
}

// MotivatingExample builds the small machine of Fig. 5: two adders and
// a load/store unit, three register files, two shared writeback buses,
// and a shared write port on the center register file. ADD0 reads the
// left register file, the load/store unit reads the center one, ADD1
// reads the right one. Bus A is shared by ADD0 and the load/store
// output and feeds the left and center files; bus B is shared by ADD1
// and the load/store output and feeds the right and center files;
// either bus can drive the center file's single shared write port. All
// three units implement the copy operation, which keeps the machine
// copy-connected (Appendix A). Operations run with unit latency, as in
// §2.
func MotivatingExample() *Machine {
	b := NewBuilder("fig5")
	b.SetLatencies(UnitLatencies())
	rfL := b.AddRF("rfL", -1, 16)
	rfC := b.AddRF("rfC", -1, 16)
	rfR := b.AddRF("rfR", -1, 16)

	add0 := b.AddFU("add0", Adder, -1, 2)
	ls := b.AddFU("ls", LoadStore, -1, 2)
	add1 := b.AddFU("add1", Adder, -1, 2)
	for _, fu := range []FUID{add0, ls, add1} {
		b.SetCanCopy(fu, true)
	}

	b.DedicatedRead(rfL, add0, 0)
	b.DedicatedRead(rfL, add0, 1)
	b.DedicatedRead(rfC, ls, 0)
	b.DedicatedRead(rfC, ls, 1)
	b.DedicatedRead(rfR, add1, 0)
	b.DedicatedRead(rfR, add1, 1)

	busA := b.AddBus("busA", true)
	busB := b.AddBus("busB", true)
	b.ConnectOutBus(add0, busA)
	b.ConnectOutBus(ls, busA)
	b.ConnectOutBus(ls, busB)
	b.ConnectOutBus(add1, busB)

	wpL := b.AddWritePort(rfL, "rfL.w")
	wpC := b.AddWritePort(rfC, "rfC.w") // the shared write port
	wpR := b.AddWritePort(rfR, "rfR.w")
	b.ConnectBusWP(busA, wpL)
	b.ConnectBusWP(busA, wpC)
	b.ConnectBusWP(busB, wpC)
	b.ConnectBusWP(busB, wpR)

	return b.MustBuild()
}

// ByName returns a catalog machine by name — the paper's four
// architectures, the Fig. 5 motivating-example machine ("fig5"), or
// the §8 "paired" exploration — or nil for unknown names. It is the
// single name catalog behind the commsched facade and the compilation
// daemon's machine resolution.
func ByName(name string) *Machine {
	switch name {
	case "central":
		return Central()
	case "clustered2":
		return Clustered(2)
	case "clustered4":
		return Clustered(4)
	case "distributed":
		return Distributed()
	case "fig5":
		return MotivatingExample()
	case "paired":
		return Paired()
	}
	return nil
}
