package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func TestScaledConstructors(t *testing.T) {
	c := ScaledCentral(48)
	if len(c.FUs) != 48 || len(c.RegFiles) != 1 {
		t.Errorf("scaled central shape: %s", c.Summary())
	}
	cl := ScaledClustered(48, 4)
	if len(cl.FUs) != 48+4 || len(cl.RegFiles) != 4 {
		t.Errorf("scaled clustered shape: %s", cl.Summary())
	}
	if err := cl.CopyConnected(); err != nil {
		t.Errorf("scaled clustered not copy-connected: %v", err)
	}
	d := ScaledDistributed(48)
	if len(d.FUs) != 48 || len(d.RegFiles) != 96 {
		t.Errorf("scaled distributed shape: %s", d.Summary())
	}
	globals := 0
	for _, bus := range d.Buses {
		if bus.Global {
			globals++
		}
	}
	if globals != 30 {
		t.Errorf("scaled distributed has %d global buses, want 30 (10 per 16 units)", globals)
	}
}

// TestDistanceTablesConsistent cross-checks the precomputed distance
// tables against direct stub/copy-graph computation on random resource
// pairs.
func TestDistanceTablesConsistent(t *testing.T) {
	for _, m := range []*Machine{Central(), Clustered(4), Distributed()} {
		m := m
		f := func(fuRaw, rfRaw uint8, slotRaw uint8) bool {
			fu := FUID(int(fuRaw) % len(m.FUs))
			rf := RFID(int(rfRaw) % len(m.RegFiles))
			slot := int(slotRaw) % m.FUs[fu].NumInputs

			// DistFUToRF == min over write stubs of CopyDistance.
			best := -1
			for _, ws := range m.WriteStubs(fu) {
				if d := m.CopyDistance(ws.RF, rf); d >= 0 && (best < 0 || d < best) {
					best = d
				}
			}
			if m.DistFUToRF(fu, rf) != best {
				return false
			}
			// DistRFToInput == min over read stubs of CopyDistance.
			best = -1
			for _, rs := range m.ReadStubs(fu, slot) {
				if d := m.CopyDistance(rf, rs.RF); d >= 0 && (best < 0 || d < best) {
					best = d
				}
			}
			return m.DistRFToInput(rf, fu, slot) == best
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

// TestMinCopiesMatchesDistances: MinCopies is the min over write stubs
// of DistRFToInput.
func TestMinCopiesMatchesDistances(t *testing.T) {
	m := Distributed()
	for _, from := range m.FUs {
		for _, to := range m.FUs {
			for slot := 0; slot < to.NumInputs; slot++ {
				best := -1
				for _, ws := range m.WriteStubs(from.ID) {
					if d := m.DistRFToInput(ws.RF, to.ID, slot); d >= 0 && (best < 0 || d < best) {
						best = d
					}
				}
				if got := m.MinCopies(from.ID, to.ID, slot); got != best {
					t.Fatalf("MinCopies(%s,%s,%d) = %d, want %d",
						from.Name, to.Name, slot, got, best)
				}
			}
		}
	}
}

func TestNumWritePorts(t *testing.T) {
	c := Central()
	if got := c.NumWritePorts(0); got != NumUnits {
		t.Errorf("central write ports = %d, want %d", got, NumUnits)
	}
	d := Distributed()
	for rf := range d.RegFiles {
		if got := d.NumWritePorts(RFID(rf)); got != 1 {
			t.Errorf("distributed rf%d write ports = %d, want 1", rf, got)
		}
	}
	cl := Clustered(4)
	// Per cluster: one dedicated port per unit (4 units) + the shared
	// global port.
	for rf := range cl.RegFiles {
		if got := cl.NumWritePorts(RFID(rf)); got != 5 {
			t.Errorf("clustered rf%d write ports = %d, want 5", rf, got)
		}
	}
}

func TestWritableRFs(t *testing.T) {
	d := Distributed()
	for _, fu := range d.FUs {
		if got := len(d.WritableRFs(fu.ID)); got != 2*NumUnits {
			t.Errorf("%s writable files = %d, want %d", fu.Name, got, 2*NumUnits)
		}
	}
	c := Central()
	for _, fu := range c.FUs {
		if got := len(c.WritableRFs(fu.ID)); got != 1 {
			t.Errorf("central %s writable files = %d, want 1", fu.Name, got)
		}
	}
}

func TestUnitLatenciesTable(t *testing.T) {
	t1 := UnitLatencies()
	for op, l := range t1 {
		if l != 1 {
			t.Errorf("unit latency table has %v=%d", op, l)
		}
	}
}

func TestExecutesCopy(t *testing.T) {
	cl := Clustered(4)
	copyUnits := 0
	for _, fu := range cl.FUs {
		if fu.Executes(ir.ClsCopy) {
			copyUnits++
			if fu.Kind != CopyUnit {
				t.Errorf("%s executes copies but is not a copy unit", fu.Name)
			}
		}
	}
	if copyUnits != 4 {
		t.Errorf("clustered4 copy-capable units = %d, want 4", copyUnits)
	}
}

func TestSummaryString(t *testing.T) {
	s := Central().Summary()
	if s == "" || len(s) < 10 {
		t.Errorf("summary too short: %q", s)
	}
}
