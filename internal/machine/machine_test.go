package machine

import (
	"testing"

	"repro/internal/ir"
)

func TestCentralShape(t *testing.T) {
	m := Central()
	if got := len(m.FUs); got != NumUnits {
		t.Fatalf("central has %d FUs, want %d", got, NumUnits)
	}
	if len(m.RegFiles) != 1 {
		t.Fatalf("central has %d RFs, want 1", len(m.RegFiles))
	}
	// 2 read ports + 1 write port per unit, all on the one file.
	if got, want := len(m.ReadPorts), 2*NumUnits; got != want {
		t.Errorf("read ports = %d, want %d", got, want)
	}
	if got, want := len(m.WritePorts), NumUnits; got != want {
		t.Errorf("write ports = %d, want %d", got, want)
	}
	// Every stub is forced: exactly one per input / output.
	for _, fu := range m.FUs {
		for slot := 0; slot < fu.NumInputs; slot++ {
			if got := len(m.ReadStubs(fu.ID, slot)); got != 1 {
				t.Errorf("central %s.in%d has %d read stubs, want 1", fu.Name, slot, got)
			}
		}
		if got := len(m.WriteStubs(fu.ID)); got != 1 {
			t.Errorf("central %s has %d write stubs, want 1", fu.Name, got)
		}
	}
	if err := m.CopyConnected(); err != nil {
		t.Errorf("central not copy-connected: %v", err)
	}
}

func TestClusteredShape(t *testing.T) {
	for _, k := range []int{2, 4} {
		m := Clustered(k)
		if got, want := len(m.FUs), NumUnits+k; got != want {
			t.Errorf("clustered%d has %d FUs, want %d (incl. copy units)", k, got, want)
		}
		if got := len(m.RegFiles); got != k {
			t.Errorf("clustered%d has %d RFs, want %d", k, got, k)
		}
		copyUnits := m.UnitsFor(ir.ClsCopy)
		if len(copyUnits) != k {
			t.Errorf("clustered%d has %d copy-capable units, want %d", k, len(copyUnits), k)
		}
		// A copy unit can reach every other cluster's file in one copy.
		for a := range m.RegFiles {
			for b := range m.RegFiles {
				want := 0
				if a != b {
					want = 1
				}
				if got := m.CopyDistance(RFID(a), RFID(b)); got != want {
					t.Errorf("clustered%d copy distance rf%d->rf%d = %d, want %d", k, a, b, got, want)
				}
			}
		}
		if err := m.CopyConnected(); err != nil {
			t.Errorf("clustered%d not copy-connected: %v", k, err)
		}
		// Standard units have dedicated (forced) stubs.
		for _, fu := range m.FUs {
			if fu.Kind == CopyUnit {
				if got := len(m.WriteStubs(fu.ID)); got != k*k {
					// k global buses × k shared write ports.
					t.Errorf("clustered%d copy unit has %d write stubs, want %d", k, got, k*k)
				}
				continue
			}
			if got := len(m.WriteStubs(fu.ID)); got != 1 {
				t.Errorf("clustered%d %s has %d write stubs, want 1", k, fu.Name, got)
			}
		}
	}
}

func TestDistributedShape(t *testing.T) {
	m := Distributed()
	if got := len(m.FUs); got != NumUnits {
		t.Fatalf("distributed has %d FUs, want %d", got, NumUnits)
	}
	if got, want := len(m.RegFiles), 2*NumUnits; got != want {
		t.Fatalf("distributed has %d RFs, want %d", got, want)
	}
	globals := 0
	for _, bus := range m.Buses {
		if bus.Global {
			globals++
		}
	}
	if globals != NumGlobalBuses {
		t.Errorf("distributed has %d global buses, want %d", globals, NumGlobalBuses)
	}
	for _, fu := range m.FUs {
		// Read stubs are forced: the single read port of the input's
		// dedicated register file.
		for slot := 0; slot < fu.NumInputs; slot++ {
			if got := len(m.ReadStubs(fu.ID, slot)); got != 1 {
				t.Errorf("distributed %s.in%d has %d read stubs, want 1", fu.Name, slot, got)
			}
		}
		// Write stubs: any of 10 buses into any of 32 write ports.
		if got, want := len(m.WriteStubs(fu.ID)), NumGlobalBuses*2*NumUnits; got != want {
			t.Errorf("distributed %s has %d write stubs, want %d", fu.Name, got, want)
		}
		wantCopy := fu.Kind != Scratchpad
		if fu.CanCopy != wantCopy {
			t.Errorf("distributed %s CanCopy = %v, want %v", fu.Name, fu.CanCopy, wantCopy)
		}
	}
	if err := m.CopyConnected(); err != nil {
		t.Errorf("distributed not copy-connected: %v", err)
	}
	// Any register file attached to a copy-capable unit reaches any
	// other file in exactly one copy (the owning unit reads it and can
	// write any file). The scratchpad cannot copy, so its two dedicated
	// files are sinks: values staged there cannot move out, and
	// communication scheduling must never stage a value there for a
	// different consumer.
	for a, rfa := range m.RegFiles {
		owner := ownerOf(m, RFID(a))
		for b := range m.RegFiles {
			d := m.CopyDistance(RFID(a), RFID(b))
			switch {
			case a == b:
				if d != 0 {
					t.Errorf("distributed copy distance rf%d->rf%d = %d, want 0", a, b, d)
				}
			case owner.CanCopy:
				if d != 1 {
					t.Errorf("distributed copy distance %s->rf%d = %d, want 1", rfa.Name, b, d)
				}
			default:
				if d != -1 {
					t.Errorf("distributed copy distance out of sink %s = %d, want -1", rfa.Name, d)
				}
			}
		}
	}
}

// ownerOf returns the unit whose input reads rf on the distributed
// machine (each file has exactly one reader there).
func ownerOf(m *Machine, rf RFID) *FU {
	for _, fu := range m.FUs {
		for slot := 0; slot < fu.NumInputs; slot++ {
			for _, rs := range m.ReadStubs(fu.ID, slot) {
				if rs.RF == rf {
					return fu
				}
			}
		}
	}
	return nil
}

func TestMotivatingExampleShape(t *testing.T) {
	m := MotivatingExample()
	if len(m.FUs) != 3 || len(m.RegFiles) != 3 {
		t.Fatalf("fig5 has %d FUs / %d RFs, want 3/3", len(m.FUs), len(m.RegFiles))
	}
	if err := m.CopyConnected(); err != nil {
		t.Errorf("fig5 not copy-connected: %v", err)
	}
	// Unit latency table, per §2.
	if got := m.Latency(ir.Mul); got != 1 {
		t.Errorf("fig5 mul latency = %d, want 1", got)
	}
	// The load/store unit can write both shared buses; each adder only
	// its own side.
	var ls, add0 *FU
	for _, fu := range m.FUs {
		switch fu.Name {
		case "ls":
			ls = fu
		case "add0":
			add0 = fu
		}
	}
	lsBuses := map[BusID]bool{}
	for _, ws := range m.WriteStubs(ls.ID) {
		if m.Buses[ws.Bus].Global {
			lsBuses[ws.Bus] = true
		}
	}
	if len(lsBuses) != 2 {
		t.Errorf("ls drives %d shared buses, want 2", len(lsBuses))
	}
	a0Buses := map[BusID]bool{}
	for _, ws := range m.WriteStubs(add0.ID) {
		a0Buses[ws.Bus] = true
	}
	if len(a0Buses) != 1 {
		t.Errorf("add0 drives %d buses, want 1", len(a0Buses))
	}
}

func TestUnitsForClasses(t *testing.T) {
	m := Central()
	cases := []struct {
		class ir.Class
		want  int
	}{
		{ir.ClsAdd, NumAdders},
		{ir.ClsMul, NumMultipliers},
		{ir.ClsDiv, NumDividers},
		{ir.ClsPerm, NumPermUnits},
		{ir.ClsSP, NumScratchpads},
		{ir.ClsMem, NumLoadStores},
		{ir.ClsCopy, 0},
	}
	for _, c := range cases {
		if got := len(m.UnitsFor(c.class)); got != c.want {
			t.Errorf("central units for %v = %d, want %d", c.class, got, c.want)
		}
	}
	d := Distributed()
	if got, want := len(d.UnitsFor(ir.ClsCopy)), NumUnits-NumScratchpads; got != want {
		t.Errorf("distributed copy units = %d, want %d", got, want)
	}
}

func TestLatencyDefaults(t *testing.T) {
	m := Central()
	cases := []struct {
		op   ir.Opcode
		want int
	}{
		{ir.Add, 1}, {ir.FAdd, 2}, {ir.Mul, 2}, {ir.FMul, 3},
		{ir.Div, 6}, {ir.FDiv, 9}, {ir.Load, 3}, {ir.Copy, 1},
	}
	for _, c := range cases {
		if got := m.Latency(c.op); got != c.want {
			t.Errorf("latency(%v) = %d, want %d", c.op, got, c.want)
		}
	}
	// Unknown opcodes default to 1.
	if got := m.Latency(ir.Nop); got != 1 {
		t.Errorf("latency(nop) = %d, want 1", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad")
	fu := b.AddFU("f", Adder, -1, 2)
	b.ConnectBusIn(0, fu, 5) // no such bus/slot
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted bad connection")
	}

	b2 := NewBuilder("no-rf")
	b2.AddFU("f", Adder, -1, 2)
	if _, err := b2.Build(); err == nil {
		t.Fatal("Build accepted machine without register files")
	}

	b3 := NewBuilder("no-stubs")
	b3.AddRF("rf", -1, 16)
	b3.AddFU("f", Adder, -1, 2)
	if _, err := b3.Build(); err == nil {
		t.Fatal("Build accepted unit without stubs")
	}
}

func TestCopyStepFUs(t *testing.T) {
	m := Clustered(4)
	// Moving from rf0 to rf1 takes one copy, on cluster 0's copy unit.
	choices := m.CopyStepFUs(0, 1)
	if len(choices) == 0 {
		t.Fatal("no copy choices rf0->rf1")
	}
	for _, c := range choices {
		if m.FUs[c.FU].Kind != CopyUnit || m.FUs[c.FU].Cluster != 0 {
			t.Errorf("unexpected copy choice %+v", c)
		}
		if c.To != 1 || c.Remaining != 0 {
			t.Errorf("copy choice lands at rf%d remaining %d", c.To, c.Remaining)
		}
	}
	// Same file: no copies needed, no choices.
	if got := m.CopyStepFUs(2, 2); got != nil {
		t.Errorf("CopyStepFUs(2,2) = %v, want nil", got)
	}
}

func TestNotCopyConnected(t *testing.T) {
	// Two isolated clusters without copy units: values cannot move.
	b := NewBuilder("island")
	rf0 := b.AddRF("rf0", 0, 16)
	rf1 := b.AddRF("rf1", 1, 16)
	f0 := b.AddFU("a0", Adder, 0, 2)
	f1 := b.AddFU("a1", Adder, 1, 2)
	b.DedicatedRead(rf0, f0, 0)
	b.DedicatedRead(rf0, f0, 1)
	b.DedicatedWrite(f0, rf0)
	b.DedicatedRead(rf1, f1, 0)
	b.DedicatedRead(rf1, f1, 1)
	b.DedicatedWrite(f1, rf1)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CopyConnected(); err == nil {
		t.Fatal("island machine reported copy-connected")
	}
}
