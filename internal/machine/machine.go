// Package machine models shared-interconnect VLIW datapaths: functional
// units, register files, register-file ports, and buses, with explicit
// connectivity between them.
//
// The model follows §1–§2 of the paper. Every functional-unit input or
// output reaches register files only through buses and ports, and any of
// those resources may be shared. A write stub is a (functional-unit
// output, bus, register-file write port) path; a read stub is a
// (register-file read port, bus, functional-unit input) path (§4.2,
// Fig. 12). The package enumerates the valid stubs for every functional
// unit and operand slot, validates machine descriptions, and checks the
// copy-connectedness property of Appendix A that communication
// scheduling requires.
//
// The four architectures evaluated in the paper — central register file
// (Fig. 25), clustered register files with two and four clusters
// (Fig. 26), and the distributed register file architecture (Fig. 27) —
// are provided as constructors, along with the small motivating-example
// machine of Fig. 5. A Builder supports exploring novel register-file
// organizations, which §8 calls out as a use of the technique.
package machine

import (
	"fmt"
	"sync"

	"repro/internal/ir"
)

// Identifier types for the machine's resources. All identifiers are
// dense indices into the corresponding Machine slices.
type (
	// FUID identifies a functional unit.
	FUID int
	// RFID identifies a register file.
	RFID int
	// BusID identifies a bus.
	BusID int
	// RPID identifies a register-file read port.
	RPID int
	// WPID identifies a register-file write port.
	WPID int
)

// Invalid resource sentinels.
const (
	NoFU  FUID  = -1
	NoRF  RFID  = -1
	NoBus BusID = -1
	NoRP  RPID  = -1
	NoWP  WPID  = -1
)

// FUKind is the hardware flavor of a functional unit. It determines
// which operation classes the unit executes.
type FUKind int

// The unit kinds of the evaluated machine: "six adders, three
// multipliers, a divider, a permutation unit (pu), and a scratchpad
// (sp)" plus "four load/store (l/s) units" (§5), and the special copy
// units the clustered architecture is modeled with.
const (
	Adder FUKind = iota
	Multiplier
	Divider
	PermUnit
	Scratchpad
	LoadStore
	CopyUnit

	numFUKinds
)

// String returns the kind mnemonic used in schedule dumps.
func (k FUKind) String() string {
	switch k {
	case Adder:
		return "add"
	case Multiplier:
		return "mul"
	case Divider:
		return "div"
	case PermUnit:
		return "pu"
	case Scratchpad:
		return "sp"
	case LoadStore:
		return "ls"
	case CopyUnit:
		return "cp"
	}
	return fmt.Sprintf("FUKind(%d)", int(k))
}

// classOf maps a unit kind to the operation class it natively executes.
func (k FUKind) class() ir.Class {
	switch k {
	case Adder:
		return ir.ClsAdd
	case Multiplier:
		return ir.ClsMul
	case Divider:
		return ir.ClsDiv
	case PermUnit:
		return ir.ClsPerm
	case Scratchpad:
		return ir.ClsSP
	case LoadStore:
		return ir.ClsMem
	case CopyUnit:
		return ir.ClsCopy
	}
	return ir.ClsNone
}

// FU is one functional unit. Every unit has NumInputs operand inputs and
// a single result output.
type FU struct {
	ID        FUID
	Name      string
	Kind      FUKind
	Cluster   int // cluster index; -1 when the machine is not clustered
	NumInputs int
	// CanCopy marks units that implement the copy operation in addition
	// to their native class ("All functional units in the distributed
	// register file architecture except the scratchpad unit implement
	// the copy operation", §5).
	CanCopy bool
	// IssueInterval is the minimum number of cycles between successive
	// issues to this unit (1 = fully pipelined).
	IssueInterval int
}

// Executes reports whether the unit can perform operations of class c.
func (f *FU) Executes(c ir.Class) bool {
	if c == ir.ClsCopy {
		return f.CanCopy || f.Kind == CopyUnit
	}
	return f.Kind.class() == c
}

// RegFile is one register file.
type RegFile struct {
	ID      RFID
	Name    string
	Cluster int
	// NumRegs is the storage capacity, consumed by the register spill
	// post-pass and the VLSI cost model.
	NumRegs int
}

// Bus is one interconnect bus. A bus carries a single value per cycle —
// it has at most one driver — but may fan out to several sinks.
type Bus struct {
	ID   BusID
	Name string
	// Global marks inter-register-file buses, reported separately by the
	// cost model (their wires span the whole datapath).
	Global bool
}

// ReadPort is one register-file read port. A read port reads a single
// value per cycle.
type ReadPort struct {
	ID   RPID
	RF   RFID
	Name string
}

// WritePort is one register-file write port. A write port writes a
// single value per cycle.
type WritePort struct {
	ID   WPID
	RF   RFID
	Name string
}

// InputRef names one operand input of one functional unit.
type InputRef struct {
	FU   FUID
	Slot int
}

// ReadStub is a complete read path: register file → read port → bus →
// functional-unit input (§4.2). The cycle a stub occupies is not part of
// the stub; allocation is the scheduler's job.
type ReadStub struct {
	RF   RFID
	Port RPID
	Bus  BusID
	FU   FUID
	Slot int
}

// WriteStub is a complete write path: functional-unit output → bus →
// write port → register file (§4.2).
type WriteStub struct {
	FU   FUID
	Bus  BusID
	Port WPID
	RF   RFID
}

// String renders the stub for diagnostics.
func (s ReadStub) String() string {
	return fmt.Sprintf("rf%d.rp%d->bus%d->fu%d.in%d", s.RF, s.Port, s.Bus, s.FU, s.Slot)
}

// String renders the stub for diagnostics.
func (s WriteStub) String() string {
	return fmt.Sprintf("fu%d->bus%d->rf%d.wp%d", s.FU, s.Bus, s.RF, s.Port)
}

// Machine is a complete datapath description. Machines are immutable
// after Build; the scheduler treats them as read-only.
type Machine struct {
	Name string

	FUs        []*FU
	RegFiles   []*RegFile
	Buses      []*Bus
	ReadPorts  []*ReadPort
	WritePorts []*WritePort

	// Connectivity edge sets.
	OutToBus [][]BusID    // per FU: buses its output can drive
	BusToWP  [][]WPID     // per bus: write ports it can feed
	RPToBus  [][]BusID    // per read port: buses it can drive
	BusToIn  [][]InputRef // per bus: functional-unit inputs it can feed

	// Latencies configures per-opcode result latency.
	Latencies LatencyTable

	// Derived tables, computed by Build.
	readStubs  [][][]ReadStub // [fu][slot]
	writeStubs [][]WriteStub  // [fu]
	classUnits map[ir.Class][]FUID
	CopySteps  [][]CopyStep // [rf]: single-copy moves out of rf
	copyDist   [][]int      // [rfFrom][rfTo]: min copies; -1 unreachable
	minCopies  [][][]int    // [fuFrom][fuTo][slot]: min copies output->input

	distFUToRF  [][]int   // [fu][rf]: min copies from fu's output into rf
	distRFToIn  [][][]int // [rf][fu][slot]: min copies from rf to the input
	writableRFs [][]RFID  // [fu]: distinct register files fu's output reaches directly
	wpCount     []int     // [rf]: write ports on the file

	// routeIdx is the interned routing index (route.go), built lazily on
	// first use and shared across compilations and portfolio variants.
	routeOnce sync.Once
	routeIdx  *RouteIndex
}

// NumWritePorts returns how many write ports register file rf has.
func (m *Machine) NumWritePorts(rf RFID) int { return m.wpCount[rf] }

// CopyStep records that a copy executed on FU (reading RF From at Slot)
// can deposit the value in RF To.
type CopyStep struct {
	FU   FUID
	Slot int
	From RFID
	To   RFID
}

// NumFUs returns the functional-unit count.
func (m *Machine) NumFUs() int { return len(m.FUs) }

// FU returns the unit with the given id.
func (m *Machine) FU(id FUID) *FU { return m.FUs[id] }

// UnitsFor returns the functional units able to execute class c, in id
// order. The returned slice is shared; callers must not modify it.
func (m *Machine) UnitsFor(c ir.Class) []FUID { return m.classUnits[c] }

// ReadStubs returns the valid read stubs for operand slot of fu. The
// returned slice is shared; callers must not modify it.
func (m *Machine) ReadStubs(fu FUID, slot int) []ReadStub {
	if slot >= len(m.readStubs[fu]) {
		return nil
	}
	return m.readStubs[fu][slot]
}

// WriteStubs returns the valid write stubs for the output of fu. The
// returned slice is shared; callers must not modify it.
func (m *Machine) WriteStubs(fu FUID) []WriteStub { return m.writeStubs[fu] }

// CopyDistance returns the minimum number of copy operations needed to
// move a value from register file a to register file b, or -1 when no
// copy path exists. Zero means the files are the same.
func (m *Machine) CopyDistance(a, b RFID) int { return m.copyDist[a][b] }

// CopyStepsFrom returns the single-copy moves available out of rf. The
// returned slice is shared; callers must not modify it.
func (m *Machine) CopyStepsFrom(rf RFID) []CopyStep { return m.CopySteps[rf] }

// CopyStepFUs returns, for each copy step out of rf that lands in a
// register file strictly closer to target, the candidate (fu, slot, to)
// triples, nearest-first. It is the primitive copy insertion uses to
// pick the unit performing a copy.
func (m *Machine) CopyStepFUs(rf, target RFID) []CopyChoice {
	var out []CopyChoice
	cur := m.copyDist[rf][target]
	if cur <= 0 {
		return nil
	}
	for _, st := range m.CopySteps[rf] {
		d := m.copyDist[st.To][target]
		if d >= 0 && d < cur {
			out = append(out, CopyChoice{FU: st.FU, Slot: st.Slot, To: st.To, Remaining: d})
		}
	}
	// Nearest-first, then deterministic by unit id.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].Remaining < out[j-1].Remaining ||
			(out[j].Remaining == out[j-1].Remaining && out[j].FU < out[j-1].FU)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// MinCopies returns the minimum number of copy operations needed to
// communicate a value from the output of fuFrom to operand slot of
// fuTo, over all stub choices, or -1 when no route exists. Zero means a
// direct route (shared register file) is possible. The communication-
// cost heuristic of §4.6 uses this as its requiredCopies estimate.
func (m *Machine) MinCopies(fuFrom, fuTo FUID, slot int) int {
	if slot >= len(m.minCopies[fuFrom][fuTo]) {
		return -1
	}
	return m.minCopies[fuFrom][fuTo][slot]
}

// DistFUToRF returns the minimum copies needed to move a value from
// fu's output into rf (0 = a direct write stub exists; -1 =
// unreachable). Precomputed at Build.
func (m *Machine) DistFUToRF(fu FUID, rf RFID) int { return m.distFUToRF[fu][rf] }

// DistRFToInput returns the minimum copies needed to move a value
// staged in rf to operand slot of fu (0 = a direct read stub exists;
// -1 = unreachable). Precomputed at Build.
func (m *Machine) DistRFToInput(rf RFID, fu FUID, slot int) int {
	row := m.distRFToIn[rf][fu]
	if slot >= len(row) {
		return -1
	}
	return row[slot]
}

// WritableRFs returns the distinct register files fu's output writes
// directly, in id order. The returned slice is shared; callers must not
// modify it.
func (m *Machine) WritableRFs(fu FUID) []RFID { return m.writableRFs[fu] }

// CopyChoice is one way to advance a value one copy closer to a target
// register file.
type CopyChoice struct {
	FU        FUID
	Slot      int
	To        RFID
	Remaining int // copies still needed after this one
}

// Summary returns a one-line description used by the reporting tools.
func (m *Machine) Summary() string {
	return fmt.Sprintf("%s: %d FUs, %d RFs, %d buses, %d read ports, %d write ports",
		m.Name, len(m.FUs), len(m.RegFiles), len(m.Buses), len(m.ReadPorts), len(m.WritePorts))
}
