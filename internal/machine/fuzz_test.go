package machine_test

import (
	"os"
	"testing"

	"repro/internal/machine"
)

// FuzzParseMachine drives the machine text-format parser with arbitrary
// descriptions. ParseText must never panic, and any machine it accepts
// must round-trip: FormatText renders a description that reparses and
// reformats to a fixed point. Seeds are the whole architecture catalog
// plus the example machine description shipped in examples/.
func FuzzParseMachine(f *testing.F) {
	for _, m := range []*machine.Machine{
		machine.Central(),
		machine.Clustered(2),
		machine.Clustered(4),
		machine.Distributed(),
		machine.MotivatingExample(),
		machine.Paired(),
		machine.ScaledCentral(8),
	} {
		f.Add(m.FormatText())
	}
	if src, err := os.ReadFile("../../examples/explore/lowcost.machine"); err == nil {
		f.Add(string(src))
	}
	for _, seed := range []string{
		"",
		"machine m\n",
		"machine m\nfu add0 adder\n",
		"machine m\nrf r0 16\nfu a adder\nbus b shared\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := machine.ParseText(src)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("ParseText returned nil machine without error")
		}
		text := m.FormatText()
		m2, err := machine.ParseText(text)
		if err != nil {
			t.Fatalf("accepted machine does not reparse: %v\nformatted:\n%s\noriginal:\n%s", err, text, src)
		}
		if text2 := m2.FormatText(); text2 != text {
			t.Fatalf("FormatText not a fixed point\nfirst:\n%s\nsecond:\n%s", text, text2)
		}
	})
}
