package machine

import (
	"sort"

	"repro/internal/ir"
)

// RouteIndex is the interned routing table of one machine: every
// candidate stub list the §4.3 step-1 enumeration can produce, scored
// and ordered once, shared by every compilation (and every portfolio
// variant) targeting the machine. The scheduler used to rebuild these
// lists per attempt — scoring each stub against the communication's
// other endpoint and stable-sorting by copy distance. All of that
// scoring depends only on static machine structure plus a small, finite
// description of the other endpoint:
//
//   - a write stub's score is the copy distance from its register file
//     to the read side, which is either a pinned register file, a placed
//     unit input (one slot or any slot), or an operation class;
//   - a read stub's score against a single producing communication is
//     the copy distance from the write side, which is either a pinned
//     register file, a placed unit's output, or an operation class.
//
// The index enumerates every such (unit, endpoint) pair up front.
// Multi-source (phi) operands score against a dynamic set of producers
// and remain the scheduler's job.
//
// Ordering is determinism-critical: the solver commits to the first
// conflict-free stub, so candidate order decides the emitted schedule.
// Each list reproduces the legacy enumeration exactly — base stubs in
// Machine enumeration order, invalid (unreachable) stubs dropped,
// stable-sorted by copy distance — and the differential goldens pin the
// result. Lists hold int32 indices into the base stub slices rather
// than stub copies, keeping the whole index a few megabytes even for
// the distributed machine.
//
// The read-side tables are keyed by a slot selector: 0..NumInputs-1
// means the operand is fixed to that physical input, NumInputs means
// any input may deliver it (single-value and commutative operands).
type RouteIndex struct {
	m *Machine

	// Write-stub orders, indexed into Machine.WriteStubs(fu).
	wToRF    [][][]int32   // [fu][rf]
	wToSlot  [][][][]int32 // [fu][useFU][slot]
	wToAny   [][][]int32   // [fu][useFU]
	wToClass [][][]int32   // [fu][class]

	// Read-stub base lists per (fu, slot selector): the single-slot
	// lists alias Machine.ReadStubs; the any-slot list concatenates the
	// slots in slot order, matching the legacy enumeration.
	rAll [][][]ReadStub // [fu][sel]

	// Read-stub orders, indexed into rAll[fu][sel].
	rFromRF    [][][][]int32 // [fu][sel][rf]
	rFromFU    [][][][]int32 // [fu][sel][defFU]
	rFromClass [][][][]int32 // [fu][sel][class]

	// readable[fu][sel][rf] reports whether any stub in rAll[fu][sel]
	// reads register file rf — the direct-route membership test.
	readable [][][]bool

	// identity is 0..n-1, sliced as the zero-producer read order (no
	// communication constrains the operand, so every stub is valid at
	// score zero: enumeration order).
	identity []int32

	// distClassToRF[class][rf] is the min copies from any unit of the
	// class into rf; distRFToClass[rf][class] the min copies from rf to
	// any input of any unit of the class. -1 = unreachable or no units.
	distClassToRF [][]int
	distRFToClass [][]int
}

// Routes returns the machine's routing index, built lazily on first use
// and shared by every caller: CompilePortfolio races goroutines over
// one *Machine, so construction is guarded by a sync.Once.
func (m *Machine) Routes() *RouteIndex {
	m.routeOnce.Do(func() { m.routeIdx = buildRouteIndex(m) })
	return m.routeIdx
}

// CandidateFloor returns the smallest MaxCandidates cap that cannot
// truncate any statically ordered stub list: the longest write-stub
// list over all units, or the longest per-operand read-stub list. A cap
// below this can cut same-distance stubs from a candidate list, and in
// a crowded cycle the surviving prefix may cover only conflicting buses
// — breaking the §4.4 completeness requirement. Options.ValidateFor
// rejects such caps.
func (m *Machine) CandidateFloor() int {
	floor := 0
	for _, fu := range m.FUs {
		if n := len(m.writeStubs[fu.ID]); n > floor {
			floor = n
		}
		total := 0
		for slot := 0; slot < fu.NumInputs; slot++ {
			total += len(m.readStubs[fu.ID][slot])
		}
		if total > floor {
			floor = total
		}
	}
	return floor
}

// WriteToRF returns the ordered write-stub candidates of fu for a read
// side pinned to register file rf, as indices into WriteStubs(fu).
// The slice is shared; callers must not modify it.
func (x *RouteIndex) WriteToRF(fu FUID, rf RFID) []int32 { return x.wToRF[fu][rf] }

// WriteToInput returns the ordered write-stub candidates of fu for a
// read side placed on one physical input of useFU.
func (x *RouteIndex) WriteToInput(fu, useFU FUID, slot int) []int32 {
	row := x.wToSlot[fu][useFU]
	if slot >= len(row) {
		return nil
	}
	return row[slot]
}

// WriteToAnyInput returns the ordered write-stub candidates of fu for a
// read side placed on useFU with a free choice of input.
func (x *RouteIndex) WriteToAnyInput(fu, useFU FUID) []int32 { return x.wToAny[fu][useFU] }

// WriteToClass returns the ordered write-stub candidates of fu for an
// unplaced read side of the given operation class.
func (x *RouteIndex) WriteToClass(fu FUID, cls ir.Class) []int32 { return x.wToClass[fu][cls] }

// ReadBase returns the base read-stub list of (fu, slot selector): the
// slice every read-order index refers into. sel NumInputs means any
// input.
func (x *RouteIndex) ReadBase(fu FUID, sel int) []ReadStub {
	row := x.rAll[fu]
	if sel < 0 || sel >= len(row) {
		return nil
	}
	return row[sel]
}

// ReadUnconstrained returns the read order for an operand no
// communication constrains: every base stub, enumeration order.
func (x *RouteIndex) ReadUnconstrained(fu FUID, sel int) []int32 {
	return x.identity[:len(x.ReadBase(fu, sel))]
}

// ReadFromRF returns the ordered read-stub candidates for a producer
// pinned to write register file rf.
func (x *RouteIndex) ReadFromRF(fu FUID, sel int, rf RFID) []int32 { return x.rFromRF[fu][sel][rf] }

// ReadFromFU returns the ordered read-stub candidates for a producer
// placed on defFU.
func (x *RouteIndex) ReadFromFU(fu FUID, sel int, defFU FUID) []int32 {
	return x.rFromFU[fu][sel][defFU]
}

// ReadFromClass returns the ordered read-stub candidates for an
// unplaced producer of the given class.
func (x *RouteIndex) ReadFromClass(fu FUID, sel int, cls ir.Class) []int32 {
	return x.rFromClass[fu][sel][cls]
}

// Readable reports whether some read stub of (fu, sel) reads rf — the
// shared-register-file membership test direct routing uses.
func (x *RouteIndex) Readable(fu FUID, sel int, rf RFID) bool {
	row := x.readable[fu]
	if sel < 0 || sel >= len(row) {
		return false
	}
	return row[sel][rf]
}

// orderBy scores base list length n with score (negative = invalid,
// dropped) and returns the surviving indices stable-sorted by ascending
// score — exactly the legacy enumerate-filter-stable-sort shape.
func orderBy(n int, score func(i int) int) []int32 {
	type scored struct {
		idx  int32
		dist int
	}
	list := make([]scored, 0, n)
	for i := 0; i < n; i++ {
		if d := score(i); d >= 0 {
			list = append(list, scored{int32(i), d})
		}
	}
	sort.SliceStable(list, func(a, b int) bool { return list[a].dist < list[b].dist })
	out := make([]int32, len(list))
	for i, s := range list {
		out[i] = s.idx
	}
	return out
}

func buildRouteIndex(m *Machine) *RouteIndex {
	x := &RouteIndex{m: m}
	nFU := len(m.FUs)
	nRF := len(m.RegFiles)

	// Class distance tables: min over the class's units. A class with no
	// units is unreachable everywhere (-1), which empties its candidate
	// lists — the legacy scoring behaved identically.
	x.distClassToRF = make([][]int, ir.NumClasses)
	x.distRFToClass = make([][]int, nRF)
	for rf := 0; rf < nRF; rf++ {
		x.distRFToClass[rf] = make([]int, ir.NumClasses)
	}
	for cls := ir.Class(0); cls < ir.NumClasses; cls++ {
		row := make([]int, nRF)
		for rf := RFID(0); int(rf) < nRF; rf++ {
			best := -1
			for _, fu := range m.classUnits[cls] {
				if d := m.distFUToRF[fu][rf]; d >= 0 && (best < 0 || d < best) {
					best = d
				}
			}
			row[rf] = best

			best = -1
			for _, fu := range m.classUnits[cls] {
				f := m.FUs[fu]
				for slot := 0; slot < f.NumInputs; slot++ {
					if d := m.DistRFToInput(rf, fu, slot); d >= 0 && (best < 0 || d < best) {
						best = d
					}
				}
			}
			x.distRFToClass[rf][cls] = best
		}
		x.distClassToRF[cls] = row
	}

	// Write-stub orders.
	x.wToRF = make([][][]int32, nFU)
	x.wToSlot = make([][][][]int32, nFU)
	x.wToAny = make([][][]int32, nFU)
	x.wToClass = make([][][]int32, nFU)
	for _, fu := range m.FUs {
		base := m.writeStubs[fu.ID]
		n := len(base)

		toRF := make([][]int32, nRF)
		for rf := RFID(0); int(rf) < nRF; rf++ {
			toRF[rf] = orderBy(n, func(i int) int { return m.copyDist[base[i].RF][rf] })
		}
		x.wToRF[fu.ID] = toRF

		toSlot := make([][][]int32, nFU)
		toAny := make([][]int32, nFU)
		for _, use := range m.FUs {
			rows := make([][]int32, use.NumInputs)
			for slot := 0; slot < use.NumInputs; slot++ {
				rows[slot] = orderBy(n, func(i int) int {
					return m.DistRFToInput(base[i].RF, use.ID, slot)
				})
			}
			toSlot[use.ID] = rows
			toAny[use.ID] = orderBy(n, func(i int) int {
				best := -1
				for slot := 0; slot < use.NumInputs; slot++ {
					if d := m.DistRFToInput(base[i].RF, use.ID, slot); d >= 0 && (best < 0 || d < best) {
						best = d
					}
				}
				return best
			})
		}
		x.wToSlot[fu.ID] = toSlot
		x.wToAny[fu.ID] = toAny

		toClass := make([][]int32, ir.NumClasses)
		for cls := ir.Class(0); cls < ir.NumClasses; cls++ {
			toClass[cls] = orderBy(n, func(i int) int { return x.distRFToClass[base[i].RF][cls] })
		}
		x.wToClass[fu.ID] = toClass
	}

	// Read-stub base lists and orders.
	maxBase := 0
	x.rAll = make([][][]ReadStub, nFU)
	x.rFromRF = make([][][][]int32, nFU)
	x.rFromFU = make([][][][]int32, nFU)
	x.rFromClass = make([][][][]int32, nFU)
	x.readable = make([][][]bool, nFU)
	for _, fu := range m.FUs {
		nSel := fu.NumInputs + 1
		bases := make([][]ReadStub, nSel)
		for slot := 0; slot < fu.NumInputs; slot++ {
			bases[slot] = m.readStubs[fu.ID][slot]
		}
		var all []ReadStub
		for slot := 0; slot < fu.NumInputs; slot++ {
			all = append(all, m.readStubs[fu.ID][slot]...)
		}
		bases[fu.NumInputs] = all
		x.rAll[fu.ID] = bases

		fromRF := make([][][]int32, nSel)
		fromFU := make([][][]int32, nSel)
		fromClass := make([][][]int32, nSel)
		read := make([][]bool, nSel)
		for sel := 0; sel < nSel; sel++ {
			base := bases[sel]
			n := len(base)
			if n > maxBase {
				maxBase = n
			}

			rfRows := make([][]int32, nRF)
			for rf := RFID(0); int(rf) < nRF; rf++ {
				rfRows[rf] = orderBy(n, func(i int) int { return m.copyDist[rf][base[i].RF] })
			}
			fromRF[sel] = rfRows

			fuRows := make([][]int32, nFU)
			for _, def := range m.FUs {
				fuRows[def.ID] = orderBy(n, func(i int) int {
					return m.distFUToRF[def.ID][base[i].RF]
				})
			}
			fromFU[sel] = fuRows

			clsRows := make([][]int32, ir.NumClasses)
			for cls := ir.Class(0); cls < ir.NumClasses; cls++ {
				clsRows[cls] = orderBy(n, func(i int) int {
					return x.distClassToRF[cls][base[i].RF]
				})
			}
			fromClass[sel] = clsRows

			row := make([]bool, nRF)
			for _, rs := range base {
				row[rs.RF] = true
			}
			read[sel] = row
		}
		x.rFromRF[fu.ID] = fromRF
		x.rFromFU[fu.ID] = fromFU
		x.rFromClass[fu.ID] = fromClass
		x.readable[fu.ID] = read
	}

	for _, stubs := range m.writeStubs {
		if len(stubs) > maxBase {
			maxBase = len(stubs)
		}
	}
	x.identity = make([]int32, maxBase)
	for i := range x.identity {
		x.identity[i] = int32(i)
	}
	return x
}
