package machine

import (
	"sort"
	"testing"

	"repro/internal/ir"
)

// The routing index must reproduce the legacy per-attempt enumeration
// bit for bit: base stubs in Machine enumeration order, unreachable
// stubs dropped, stable-sorted by ascending copy distance. These tests
// re-derive that ordering from the public distance tables for every
// (unit, endpoint) pair of the four paper architectures and compare.

func routeTestMachines() []*Machine {
	return []*Machine{
		MotivatingExample(),
		Paired(),
		Central(),
		Clustered(2),
		Clustered(4),
		Distributed(),
	}
}

// legacyOrder reproduces the scheduler's original enumerate-filter-
// stable-sort over a base list of length n.
func legacyOrder(n int, score func(i int) int) []int32 {
	type scored struct {
		idx  int32
		dist int
	}
	var list []scored
	for i := 0; i < n; i++ {
		if d := score(i); d >= 0 {
			list = append(list, scored{int32(i), d})
		}
	}
	sort.SliceStable(list, func(a, b int) bool { return list[a].dist < list[b].dist })
	out := make([]int32, len(list))
	for i, s := range list {
		out[i] = s.idx
	}
	return out
}

func sameOrder(t *testing.T, ctx string, want, got []int32) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: length %d, want %d", ctx, len(got), len(want))
		return
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("%s: index %d = %d, want %d", ctx, i, got[i], want[i])
			return
		}
	}
}

func TestRouteIndexWriteOrders(t *testing.T) {
	for _, m := range routeTestMachines() {
		rt := m.Routes()
		for _, fu := range m.FUs {
			base := m.WriteStubs(fu.ID)
			n := len(base)

			// Pinned read file: distance is RF-to-RF copy distance.
			for rf := range m.RegFiles {
				rf := RFID(rf)
				want := legacyOrder(n, func(i int) int { return m.CopyDistance(base[i].RF, rf) })
				sameOrder(t, m.Name+"/wToRF", want, rt.WriteToRF(fu.ID, rf))
			}

			// Placed use: one fixed input, or any input.
			for _, use := range m.FUs {
				for slot := 0; slot < use.NumInputs; slot++ {
					want := legacyOrder(n, func(i int) int {
						return m.DistRFToInput(base[i].RF, use.ID, slot)
					})
					sameOrder(t, m.Name+"/wToSlot", want, rt.WriteToInput(fu.ID, use.ID, slot))
				}
				wantAny := legacyOrder(n, func(i int) int {
					best := -1
					for slot := 0; slot < use.NumInputs; slot++ {
						if d := m.DistRFToInput(base[i].RF, use.ID, slot); d >= 0 && (best < 0 || d < best) {
							best = d
						}
					}
					return best
				})
				sameOrder(t, m.Name+"/wToAny", wantAny, rt.WriteToAnyInput(fu.ID, use.ID))
			}

			// Unplaced use: min over every unit of the class.
			for cls := ir.Class(0); cls < ir.NumClasses; cls++ {
				want := legacyOrder(n, func(i int) int {
					best := -1
					for _, ufu := range m.UnitsFor(cls) {
						f := m.FU(ufu)
						for slot := 0; slot < f.NumInputs; slot++ {
							if d := m.DistRFToInput(base[i].RF, ufu, slot); d >= 0 && (best < 0 || d < best) {
								best = d
							}
						}
					}
					return best
				})
				sameOrder(t, m.Name+"/wToClass", want, rt.WriteToClass(fu.ID, cls))
			}
		}
	}
}

func TestRouteIndexReadOrders(t *testing.T) {
	for _, m := range routeTestMachines() {
		rt := m.Routes()
		for _, fu := range m.FUs {
			for sel := 0; sel <= fu.NumInputs; sel++ {
				// The base list: one slot's stubs, or every slot's in slot
				// order for the any-input selector.
				var base []ReadStub
				if sel < fu.NumInputs {
					base = m.ReadStubs(fu.ID, sel)
				} else {
					for slot := 0; slot < fu.NumInputs; slot++ {
						base = append(base, m.ReadStubs(fu.ID, slot)...)
					}
				}
				got := rt.ReadBase(fu.ID, sel)
				if len(got) != len(base) {
					t.Errorf("%s/%s sel %d: base length %d, want %d", m.Name, fu.Name, sel, len(got), len(base))
					continue
				}
				for i := range base {
					if got[i] != base[i] {
						t.Errorf("%s/%s sel %d: base[%d] = %v, want %v", m.Name, fu.Name, sel, i, got[i], base[i])
						break
					}
				}
				n := len(base)

				// Unconstrained: enumeration order.
				sameOrder(t, m.Name+"/rIdent", legacyOrder(n, func(int) int { return 0 }),
					rt.ReadUnconstrained(fu.ID, sel))

				// Pinned producer file.
				for rf := range m.RegFiles {
					rf := RFID(rf)
					want := legacyOrder(n, func(i int) int { return m.CopyDistance(rf, base[i].RF) })
					sameOrder(t, m.Name+"/rFromRF", want, rt.ReadFromRF(fu.ID, sel, rf))
				}

				// Placed producer unit.
				for _, def := range m.FUs {
					want := legacyOrder(n, func(i int) int { return m.DistFUToRF(def.ID, base[i].RF) })
					sameOrder(t, m.Name+"/rFromFU", want, rt.ReadFromFU(fu.ID, sel, def.ID))
				}

				// Unplaced producer class.
				for cls := ir.Class(0); cls < ir.NumClasses; cls++ {
					want := legacyOrder(n, func(i int) int {
						best := -1
						for _, dfu := range m.UnitsFor(cls) {
							if d := m.DistFUToRF(dfu, base[i].RF); d >= 0 && (best < 0 || d < best) {
								best = d
							}
						}
						return best
					})
					sameOrder(t, m.Name+"/rFromClass", want, rt.ReadFromClass(fu.ID, sel, cls))
				}

				// Readability bitmap.
				for rf := range m.RegFiles {
					rf := RFID(rf)
					want := false
					for _, rs := range base {
						if rs.RF == rf {
							want = true
							break
						}
					}
					if got := rt.Readable(fu.ID, sel, rf); got != want {
						t.Errorf("%s/%s sel %d rf %d: Readable = %v, want %v", m.Name, fu.Name, sel, rf, got, want)
					}
				}
			}
		}
	}
}

func TestCandidateFloor(t *testing.T) {
	for _, m := range routeTestMachines() {
		floor := m.CandidateFloor()
		if floor <= 0 {
			t.Errorf("%s: CandidateFloor = %d, want positive", m.Name, floor)
		}
		want := 0
		for _, fu := range m.FUs {
			if n := len(m.WriteStubs(fu.ID)); n > want {
				want = n
			}
			total := 0
			for slot := 0; slot < fu.NumInputs; slot++ {
				total += len(m.ReadStubs(fu.ID, slot))
			}
			if total > want {
				want = total
			}
		}
		if floor != want {
			t.Errorf("%s: CandidateFloor = %d, want %d", m.Name, floor, want)
		}
	}
}

func TestRoutesSharedAcrossCalls(t *testing.T) {
	m := Central()
	if m.Routes() != m.Routes() {
		t.Error("Routes() must intern one index per machine")
	}
}
