// Package faultinject is a deterministic, seed-driven fault plane for
// robustness testing of the compilation pipeline. Instrumented code
// probes named sites; rules armed on a Plane decide — purely from the
// per-rule match count, never from wall time or randomness at probe
// time — whether the probe passes through, panics, reports forced
// budget exhaustion, or stalls.
//
// The plane follows the nil-means-disabled convention of obs.Tracer:
// a nil *Plane is fully inert, every call site guards with a single
// pointer compare, and the disabled path allocates nothing (the
// internal/core AllocsPerRun test pins this through the solver's probe
// sites). Because firing is driven by deterministic counters, a fault
// schedule reproduces exactly in sequential code; under a concurrent
// portfolio only the interleaving of counter increments varies, never
// whether the configured number of faults fires.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Site enumerates the instrumented injection points.
type Site uint8

const (
	// SitePass fires in the pass pipeline's runPass, once per pass run;
	// the probe label is the pass name ("lower", "place", ...).
	SitePass Site = iota
	// SiteSolver fires on every §4.4 stub-permutation search step; the
	// probe label is empty.
	SiteSolver
	// SitePortfolio fires when a portfolio worker claims a grid cell;
	// the probe label is the variant name.
	SitePortfolio
	// SiteSpeculate fires when a speculative interval-ladder worker
	// picks up a rung; the probe label is the rung's initiation
	// interval in decimal. Inline (walk-goroutine) evaluations never
	// probe it, so rules here exercise exactly the speculative plumbing
	// — a Panic proves rung isolation, an Exhaust forces the walk to
	// recompute the rung inline.
	SiteSpeculate
	// SiteCacheRead fires when the daemon's disk cache tier reads an
	// entry; the probe label is the cache key. It is an IO site: probed
	// through ProbeIO, so Err/Torn/Corrupt rules apply.
	SiteCacheRead
	// SiteCacheWrite fires when the daemon's disk cache tier writes an
	// entry; the probe label is the cache key. An IO site, like
	// SiteCacheRead.
	SiteCacheWrite
)

var siteNames = [...]string{
	SitePass:       "pass",
	SiteSolver:     "solver",
	SitePortfolio:  "portfolio",
	SiteSpeculate:  "speculate",
	SiteCacheRead:  "cache-read",
	SiteCacheWrite: "cache-write",
}

// String names the site for specs and diagnostics.
func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return "unknown"
}

// SiteByName resolves a spec-file site name.
func SiteByName(name string) (Site, bool) {
	for i, n := range siteNames {
		if n == name {
			return Site(i), true
		}
	}
	return 0, false
}

// Action is what a firing rule does to the probing code.
type Action uint8

const (
	// Panic panics with an *Injected value; the pipeline's recovery
	// must convert it into a structured internal error.
	Panic Action = iota
	// Exhaust makes Probe return true: the site treats its budget as
	// spent (the solver zeroes its permutation budget, a pass fails).
	Exhaust
	// Delay sleeps Rule.Sleep before continuing — an artificial
	// slow-down for cancellation-latency stress tests.
	Delay
	// Err makes an IO probe (ProbeIO) report a failed operation: the
	// site behaves as if the read or write returned an error. Compile
	// sites (Probe) ignore it.
	Err
	// Torn makes an IO write probe leave a truncated frame at the final
	// path — the on-disk state of a crash mid-write — and an IO read
	// probe observe one. Compile sites ignore it.
	Torn
	// Corrupt makes an IO probe flip a payload byte after the checksum
	// was computed, so the entry decodes as checksum-mismatched.
	// Compile sites ignore it.
	Corrupt
)

var actionNames = [...]string{
	Panic: "panic", Exhaust: "exhaust", Delay: "delay",
	Err: "err", Torn: "torn", Corrupt: "corrupt",
}

// String names the action for specs and diagnostics.
func (a Action) String() string {
	if int(a) < len(actionNames) {
		return actionNames[a]
	}
	return "unknown"
}

// ActionByName resolves a spec-file action name.
func ActionByName(name string) (Action, bool) {
	for i, n := range actionNames {
		if n == name {
			return Action(i), true
		}
	}
	return 0, false
}

// Rule arms one fault. A rule matches a probe when the site matches
// and its Label is empty or equals the probe's label. Matching probes
// are counted per rule; the rule fires on match counts n with
//
//	n >= Nth, (n-Nth) divisible by Every (Every 0: only n == Nth),
//	and n <= Until (Until 0: no upper bound).
//
// Nth 0 derives a deterministic value from the plane's seed, so a
// seed sweep explores different fault positions without hand-picking
// counts.
type Rule struct {
	Site   Site
	Label  string
	Nth    uint64
	Every  uint64
	Until  uint64
	Action Action
	// Sleep is the Delay action's stall per firing.
	Sleep time.Duration
}

// seedWindow bounds seed-derived Nth values: small enough that a
// derived fault fires within any non-trivial compilation.
const seedWindow = 1024

// Injected is the panic value of the Panic action, carrying where the
// fault fired so recovery layers can surface it in structured errors.
type Injected struct {
	Site  Site
	Label string
	// N is the rule's match count at firing time.
	N uint64
}

func (i *Injected) Error() string {
	if i.Label != "" {
		return fmt.Sprintf("faultinject: injected panic at %s:%s (match %d)", i.Site, i.Label, i.N)
	}
	return fmt.Sprintf("faultinject: injected panic at %s (match %d)", i.Site, i.N)
}

// rule is an armed Rule plus its atomic match counter.
type rule struct {
	Rule
	count atomic.Uint64
}

// Plane is a set of armed rules. A nil plane is disabled.
type Plane struct {
	rules []rule
	seed  int64
}

// New arms a plane. Rules with Nth 0 get a deterministic count in
// [1, seedWindow] derived from the seed and the rule's index, so two
// planes built from the same seed and rules fire identically.
func New(seed int64, rules ...Rule) *Plane {
	p := &Plane{rules: make([]rule, len(rules)), seed: seed}
	for i := range rules {
		r := rules[i]
		if r.Nth == 0 {
			r.Nth = splitmix64(uint64(seed)+uint64(i)*0x9e3779b97f4a7c15)%seedWindow + 1
		}
		p.rules[i].Rule = r
	}
	return p
}

// splitmix64 is the SplitMix64 mixing function: a tiny, well-
// distributed deterministic hash for deriving per-rule counts.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fires reports whether a rule triggers at match count n.
func (r *Rule) fires(n uint64) bool {
	if n < r.Nth {
		return false
	}
	if r.Until > 0 && n > r.Until {
		return false
	}
	if r.Every == 0 {
		return n == r.Nth
	}
	return (n-r.Nth)%r.Every == 0
}

// Probe reports a probe of one site to the plane. It panics or sleeps
// when a matching Panic/Delay rule fires, and returns true when an
// Exhaust rule fires (the caller treats its budget as spent). The IO
// actions (Err, Torn, Corrupt) never fire here — they still advance
// their match counters, but shaping an IO operation needs ProbeIO. A
// nil plane does nothing and returns false.
func (p *Plane) Probe(site Site, label string) bool {
	if p == nil {
		return false
	}
	exhausted := false
	for i := range p.rules {
		r := &p.rules[i]
		if r.Site != site || (r.Label != "" && r.Label != label) {
			continue
		}
		n := r.count.Add(1)
		if !r.Rule.fires(n) {
			continue
		}
		switch r.Action {
		case Panic:
			panic(&Injected{Site: site, Label: label, N: n})
		case Exhaust:
			exhausted = true
		case Delay:
			time.Sleep(r.Sleep)
		}
	}
	return exhausted
}

// IOFault is what an IO probe (ProbeIO) tells its caller to simulate.
type IOFault uint8

const (
	// IONone passes the operation through untouched.
	IONone IOFault = iota
	// IOErr fails the operation as if the filesystem returned an error.
	IOErr
	// IOTorn truncates the payload mid-frame: a write persists only a
	// prefix, a read observes one.
	IOTorn
	// IOCorrupt flips a payload byte after checksumming, so the frame
	// decodes as checksum-mismatched.
	IOCorrupt
)

// ProbeIO reports an IO probe — a disk cache read or write — to the
// plane and returns the fault the caller must simulate. Delay rules
// sleep in place; Err/Torn/Corrupt return the matching IOFault (the
// first firing rule in arming order wins, later matching rules still
// advance their counters). Panic and Exhaust rules armed on an IO site
// degrade to IOErr: the serving plane must never crash or misattribute
// a budget, so the strongest honest translation is a failed operation.
// A nil plane returns IONone.
func (p *Plane) ProbeIO(site Site, label string) IOFault {
	if p == nil {
		return IONone
	}
	fault := IONone
	for i := range p.rules {
		r := &p.rules[i]
		if r.Site != site || (r.Label != "" && r.Label != label) {
			continue
		}
		n := r.count.Add(1)
		if !r.Rule.fires(n) {
			continue
		}
		switch r.Action {
		case Delay:
			time.Sleep(r.Sleep)
		case Torn:
			if fault == IONone {
				fault = IOTorn
			}
		case Corrupt:
			if fault == IONone {
				fault = IOCorrupt
			}
		default: // Err, and Panic/Exhaust degraded to a failed operation
			if fault == IONone {
				fault = IOErr
			}
		}
	}
	return fault
}

// Rules returns a copy of the armed rules with seed-derived counts
// resolved, for reports and tests.
func (p *Plane) Rules() []Rule {
	if p == nil {
		return nil
	}
	out := make([]Rule, len(p.rules))
	for i := range p.rules {
		out[i] = p.rules[i].Rule
	}
	return out
}

// ParseSpec builds a plane from a textual fault specification: rules
// separated by ';', each a comma-separated list of key=value fields:
//
//	site=pass|solver|portfolio|speculate|cache-read|cache-write  (required)
//	label=NAME                   (optional; pass/variant name or cache key)
//	action=panic|exhaust|delay|err|torn|corrupt                  (required)
//	nth=N                        (optional; 0 derives from seed)
//	every=N, until=N             (optional window, see Rule)
//	sleep=DURATION               (delay action)
//
// The err/torn/corrupt actions shape IO sites (cache-read,
// cache-write); compile sites ignore them.
//
// and an optional leading "seed=N" rule-position sets the seed, e.g.
//
//	seed=7;site=pass,label=place,action=panic,nth=1
func ParseSpec(spec string) (*Plane, error) {
	var seed int64
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "seed="); ok && !strings.Contains(part, ",") {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q: %v", v, err)
			}
			seed = n
			continue
		}
		var r Rule
		haveSite, haveAction := false, false
		for _, field := range strings.Split(part, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: field %q is not key=value", field)
			}
			switch key {
			case "site":
				s, ok := SiteByName(val)
				if !ok {
					return nil, fmt.Errorf("faultinject: unknown site %q", val)
				}
				r.Site, haveSite = s, true
			case "label":
				r.Label = val
			case "action":
				a, ok := ActionByName(val)
				if !ok {
					return nil, fmt.Errorf("faultinject: unknown action %q", val)
				}
				r.Action, haveAction = a, true
			case "nth", "every", "until":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("faultinject: bad %s %q: %v", key, val, err)
				}
				switch key {
				case "nth":
					r.Nth = n
				case "every":
					r.Every = n
				case "until":
					r.Until = n
				}
			case "sleep":
				d, err := time.ParseDuration(val)
				if err != nil {
					return nil, fmt.Errorf("faultinject: bad sleep %q: %v", val, err)
				}
				r.Sleep = d
			default:
				return nil, fmt.Errorf("faultinject: unknown field %q", key)
			}
		}
		if !haveSite || !haveAction {
			return nil, fmt.Errorf("faultinject: rule %q needs site= and action=", part)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultinject: spec %q arms no rules", spec)
	}
	return New(seed, rules...), nil
}
