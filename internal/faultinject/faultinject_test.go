package faultinject

import (
	"testing"
	"time"
)

// TestNilPlaneInert pins the nil-means-disabled contract every probe
// site relies on.
func TestNilPlaneInert(t *testing.T) {
	var p *Plane
	for i := 0; i < 100; i++ {
		if p.Probe(SiteSolver, "") {
			t.Fatal("nil plane reported exhaustion")
		}
	}
	if p.Rules() != nil {
		t.Fatal("nil plane has rules")
	}
}

// TestRuleWindow pins the (Nth, Every, Until) firing window.
func TestRuleWindow(t *testing.T) {
	cases := []struct {
		name  string
		rule  Rule
		fires []uint64
		max   uint64
	}{
		{"once", Rule{Nth: 3}, []uint64{3}, 10},
		{"every", Rule{Nth: 2, Every: 3}, []uint64{2, 5, 8}, 10},
		{"until", Rule{Nth: 1, Every: 1, Until: 4}, []uint64{1, 2, 3, 4}, 10},
		{"every-one", Rule{Nth: 4, Every: 1}, []uint64{4, 5, 6, 7, 8, 9, 10}, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := make(map[uint64]bool, len(tc.fires))
			for _, n := range tc.fires {
				want[n] = true
			}
			for n := uint64(1); n <= tc.max; n++ {
				if got := tc.rule.fires(n); got != want[n] {
					t.Errorf("fires(%d) = %v, want %v", n, got, want[n])
				}
			}
		})
	}
}

// TestExhaustCountsPerRule pins that Probe counts matches per rule and
// an Exhaust rule fires exactly on its window.
func TestExhaustCountsPerRule(t *testing.T) {
	p := New(0, Rule{Site: SiteSolver, Nth: 3, Action: Exhaust})
	var fired []int
	for i := 1; i <= 6; i++ {
		// A non-matching site must not advance the counter.
		p.Probe(SitePass, "place")
		if p.Probe(SiteSolver, "") {
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("exhaust fired at %v, want [3]", fired)
	}
}

// TestLabelMatching pins label filtering: an empty rule label matches
// every probe of its site, a set one only its own.
func TestLabelMatching(t *testing.T) {
	p := New(0,
		Rule{Site: SitePass, Label: "place", Nth: 1, Every: 1, Action: Exhaust},
	)
	if p.Probe(SitePass, "lower") {
		t.Fatal("labeled rule fired on a different pass")
	}
	if !p.Probe(SitePass, "place") {
		t.Fatal("labeled rule did not fire on its pass")
	}
}

// TestPanicCarriesContext pins the Panic action's *Injected payload.
func TestPanicCarriesContext(t *testing.T) {
	p := New(0, Rule{Site: SitePass, Label: "place", Nth: 1, Action: Panic})
	defer func() {
		r := recover()
		inj, ok := r.(*Injected)
		if !ok {
			t.Fatalf("panic value %T, want *Injected", r)
		}
		if inj.Site != SitePass || inj.Label != "place" || inj.N != 1 {
			t.Fatalf("injected context %+v", inj)
		}
	}()
	p.Probe(SitePass, "place")
	t.Fatal("panic rule did not fire")
}

// TestSeedDerivedNthDeterministic pins that Nth 0 derives the same
// in-window count for the same seed and a different one (almost
// always) for different seeds.
func TestSeedDerivedNthDeterministic(t *testing.T) {
	a := New(42, Rule{Site: SiteSolver, Action: Exhaust}).Rules()[0].Nth
	b := New(42, Rule{Site: SiteSolver, Action: Exhaust}).Rules()[0].Nth
	if a != b {
		t.Fatalf("same seed derived %d and %d", a, b)
	}
	if a < 1 || a > seedWindow {
		t.Fatalf("derived Nth %d outside [1, %d]", a, seedWindow)
	}
	// Two rules on one plane derive independent counts.
	rs := New(42, Rule{Site: SiteSolver, Action: Exhaust}, Rule{Site: SiteSolver, Action: Exhaust}).Rules()
	if rs[0].Nth == rs[1].Nth {
		t.Fatalf("rule positions derived the same Nth %d", rs[0].Nth)
	}
}

// TestParseSpec pins the textual format end to end.
func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("seed=7; site=pass,label=place,action=panic,nth=2 ; site=solver,action=exhaust,every=5,until=20,sleep=1ms")
	if err != nil {
		t.Fatal(err)
	}
	rs := p.Rules()
	if len(rs) != 2 {
		t.Fatalf("got %d rules, want 2", len(rs))
	}
	want0 := Rule{Site: SitePass, Label: "place", Nth: 2, Action: Panic}
	if rs[0] != want0 {
		t.Errorf("rule 0 = %+v, want %+v", rs[0], want0)
	}
	if rs[1].Site != SiteSolver || rs[1].Action != Exhaust || rs[1].Every != 5 || rs[1].Until != 20 || rs[1].Sleep != time.Millisecond {
		t.Errorf("rule 1 = %+v", rs[1])
	}
	if rs[1].Nth == 0 {
		t.Error("rule 1's Nth not seed-derived")
	}

	for _, bad := range []string{
		"",
		"seed=7",
		"site=bogus,action=panic",
		"site=pass,action=bogus",
		"site=pass",
		"action=panic",
		"site=pass,action=panic,nth=x",
		"site=pass,action=delay,sleep=x",
		"site=pass,action=panic,mystery=1",
		"garbage",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}
