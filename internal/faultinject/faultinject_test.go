package faultinject

import (
	"strings"
	"testing"
	"time"
)

// TestNilPlaneInert pins the nil-means-disabled contract every probe
// site relies on.
func TestNilPlaneInert(t *testing.T) {
	var p *Plane
	for i := 0; i < 100; i++ {
		if p.Probe(SiteSolver, "") {
			t.Fatal("nil plane reported exhaustion")
		}
	}
	if p.Rules() != nil {
		t.Fatal("nil plane has rules")
	}
}

// TestRuleWindow pins the (Nth, Every, Until) firing window.
func TestRuleWindow(t *testing.T) {
	cases := []struct {
		name  string
		rule  Rule
		fires []uint64
		max   uint64
	}{
		{"once", Rule{Nth: 3}, []uint64{3}, 10},
		{"every", Rule{Nth: 2, Every: 3}, []uint64{2, 5, 8}, 10},
		{"until", Rule{Nth: 1, Every: 1, Until: 4}, []uint64{1, 2, 3, 4}, 10},
		{"every-one", Rule{Nth: 4, Every: 1}, []uint64{4, 5, 6, 7, 8, 9, 10}, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := make(map[uint64]bool, len(tc.fires))
			for _, n := range tc.fires {
				want[n] = true
			}
			for n := uint64(1); n <= tc.max; n++ {
				if got := tc.rule.fires(n); got != want[n] {
					t.Errorf("fires(%d) = %v, want %v", n, got, want[n])
				}
			}
		})
	}
}

// TestExhaustCountsPerRule pins that Probe counts matches per rule and
// an Exhaust rule fires exactly on its window.
func TestExhaustCountsPerRule(t *testing.T) {
	p := New(0, Rule{Site: SiteSolver, Nth: 3, Action: Exhaust})
	var fired []int
	for i := 1; i <= 6; i++ {
		// A non-matching site must not advance the counter.
		p.Probe(SitePass, "place")
		if p.Probe(SiteSolver, "") {
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("exhaust fired at %v, want [3]", fired)
	}
}

// TestLabelMatching pins label filtering: an empty rule label matches
// every probe of its site, a set one only its own.
func TestLabelMatching(t *testing.T) {
	p := New(0,
		Rule{Site: SitePass, Label: "place", Nth: 1, Every: 1, Action: Exhaust},
	)
	if p.Probe(SitePass, "lower") {
		t.Fatal("labeled rule fired on a different pass")
	}
	if !p.Probe(SitePass, "place") {
		t.Fatal("labeled rule did not fire on its pass")
	}
}

// TestPanicCarriesContext pins the Panic action's *Injected payload.
func TestPanicCarriesContext(t *testing.T) {
	p := New(0, Rule{Site: SitePass, Label: "place", Nth: 1, Action: Panic})
	defer func() {
		r := recover()
		inj, ok := r.(*Injected)
		if !ok {
			t.Fatalf("panic value %T, want *Injected", r)
		}
		if inj.Site != SitePass || inj.Label != "place" || inj.N != 1 {
			t.Fatalf("injected context %+v", inj)
		}
	}()
	p.Probe(SitePass, "place")
	t.Fatal("panic rule did not fire")
}

// TestSeedDerivedNthDeterministic pins that Nth 0 derives the same
// in-window count for the same seed and a different one (almost
// always) for different seeds.
func TestSeedDerivedNthDeterministic(t *testing.T) {
	a := New(42, Rule{Site: SiteSolver, Action: Exhaust}).Rules()[0].Nth
	b := New(42, Rule{Site: SiteSolver, Action: Exhaust}).Rules()[0].Nth
	if a != b {
		t.Fatalf("same seed derived %d and %d", a, b)
	}
	if a < 1 || a > seedWindow {
		t.Fatalf("derived Nth %d outside [1, %d]", a, seedWindow)
	}
	// Two rules on one plane derive independent counts.
	rs := New(42, Rule{Site: SiteSolver, Action: Exhaust}, Rule{Site: SiteSolver, Action: Exhaust}).Rules()
	if rs[0].Nth == rs[1].Nth {
		t.Fatalf("rule positions derived the same Nth %d", rs[0].Nth)
	}
}

// TestParseSpec pins the textual format end to end.
func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("seed=7; site=pass,label=place,action=panic,nth=2 ; site=solver,action=exhaust,every=5,until=20,sleep=1ms")
	if err != nil {
		t.Fatal(err)
	}
	rs := p.Rules()
	if len(rs) != 2 {
		t.Fatalf("got %d rules, want 2", len(rs))
	}
	want0 := Rule{Site: SitePass, Label: "place", Nth: 2, Action: Panic}
	if rs[0] != want0 {
		t.Errorf("rule 0 = %+v, want %+v", rs[0], want0)
	}
	if rs[1].Site != SiteSolver || rs[1].Action != Exhaust || rs[1].Every != 5 || rs[1].Until != 20 || rs[1].Sleep != time.Millisecond {
		t.Errorf("rule 1 = %+v", rs[1])
	}
	if rs[1].Nth == 0 {
		t.Error("rule 1's Nth not seed-derived")
	}

	for _, bad := range []string{
		"",
		"seed=7",
		"site=bogus,action=panic",
		"site=pass,action=bogus",
		"site=pass",
		"action=panic",
		"site=pass,action=panic,nth=x",
		"site=pass,action=delay,sleep=x",
		"site=pass,action=panic,mystery=1",
		"garbage",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// TestParseSpecEmptyParts pins the tolerance for stray separators: a
// spec is split on ";" and blank parts are skipped, but a spec that
// nets zero rules — empty, whitespace, or seed-only — is an error, not
// a silently inert plane.
func TestParseSpecEmptyParts(t *testing.T) {
	p, err := ParseSpec(" ; site=pass,action=panic,nth=1 ;; ")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules()) != 1 {
		t.Fatalf("got %d rules, want 1", len(p.Rules()))
	}
	for _, empty := range []string{"", "   ", ";;;", " ; ; ", "seed=9", "seed=9;;"} {
		if _, err := ParseSpec(empty); err == nil {
			t.Errorf("spec %q armed no rules but parsed without error", empty)
		}
	}
	// seed= inside a rule (comma-joined) is not the seed directive; it
	// must be rejected as an unknown rule field, not misread as a seed.
	if _, err := ParseSpec("seed=9,site=pass,action=panic"); err == nil {
		t.Error("comma-joined seed= parsed as a rule field without error")
	}
}

// TestParseSpecSeedPosition pins that the seed directive applies to the
// whole plane regardless of where it appears in the spec.
func TestParseSpecSeedPosition(t *testing.T) {
	before, err := ParseSpec("seed=42;site=solver,action=exhaust")
	if err != nil {
		t.Fatal(err)
	}
	after, err := ParseSpec("site=solver,action=exhaust;seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if b, a := before.Rules()[0].Nth, after.Rules()[0].Nth; b != a {
		t.Errorf("seed position changed the derived Nth: %d vs %d", b, a)
	}
}

// TestOverlappingWindows pins multi-rule semantics when firing windows
// intersect: each rule counts matches independently, and in the overlap
// a probe answers for every rule that fires.
func TestOverlappingWindows(t *testing.T) {
	// Two exhaust windows on one site: [2,4] every probe, and [3,6]
	// every probe. The union [2,6] must exhaust, outside it must not.
	p := New(1,
		Rule{Site: SiteSolver, Nth: 2, Every: 1, Until: 4, Action: Exhaust},
		Rule{Site: SiteSolver, Nth: 3, Every: 1, Until: 6, Action: Exhaust},
	)
	want := map[uint64]bool{1: false, 2: true, 3: true, 4: true, 5: true, 6: true, 7: false, 8: false}
	for n := uint64(1); n <= 8; n++ {
		if got := p.Probe(SiteSolver, ""); got != want[n] {
			t.Errorf("probe %d: exhausted=%v, want %v", n, got, want[n])
		}
	}
}

// TestOverlappingPanicWins pins the precedence when a panic rule and an
// exhaust rule fire on the same probe: the panic propagates (the
// exhaust verdict is moot — the site unwinds).
func TestOverlappingPanicWins(t *testing.T) {
	p := New(1,
		Rule{Site: SitePass, Label: "place", Nth: 1, Action: Exhaust},
		Rule{Site: SitePass, Label: "place", Nth: 1, Action: Panic},
	)
	defer func() {
		inj, ok := recover().(*Injected)
		if !ok {
			t.Fatal("overlapping panic rule did not panic")
		}
		if inj.Site != SitePass || inj.Label != "place" {
			t.Errorf("panic carries %+v", inj)
		}
	}()
	p.Probe(SitePass, "place")
}

// TestInvertedWindowNeverFires pins until < nth: an empty window is
// legal to parse but can never fire.
func TestInvertedWindowNeverFires(t *testing.T) {
	p, err := ParseSpec("site=solver,action=exhaust,nth=5,until=3,every=1")
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 20; n++ {
		if p.Probe(SiteSolver, "") {
			t.Fatalf("inverted window fired at probe %d", n+1)
		}
	}
}

// TestParseSpecUnknownSiteMessage pins that the error for an unknown
// site names the offending value — the daemon and CLI surface it
// verbatim to the operator.
func TestParseSpecUnknownSiteMessage(t *testing.T) {
	_, err := ParseSpec("site=nowhere,action=panic")
	if err == nil || !strings.Contains(err.Error(), `"nowhere"`) {
		t.Errorf("unknown-site error does not name the site: %v", err)
	}
}

// TestProbeIOActions pins the IO-site fault vocabulary: each action maps
// to its IOFault, windows and labels filter as on compile sites, and a
// nil plane is inert.
func TestProbeIOActions(t *testing.T) {
	var nilPlane *Plane
	if nilPlane.ProbeIO(SiteCacheRead, "k") != IONone {
		t.Fatal("nil plane shaped an IO probe")
	}

	for _, tc := range []struct {
		action Action
		want   IOFault
	}{
		{Err, IOErr},
		{Torn, IOTorn},
		{Corrupt, IOCorrupt},
		// Panic and Exhaust on an IO site degrade to a failed operation:
		// the serving plane must not crash.
		{Panic, IOErr},
		{Exhaust, IOErr},
	} {
		p := New(0, Rule{Site: SiteCacheWrite, Nth: 2, Action: tc.action})
		if got := p.ProbeIO(SiteCacheWrite, "k"); got != IONone {
			t.Errorf("%s: probe 1 = %v, want IONone", tc.action, got)
		}
		if got := p.ProbeIO(SiteCacheWrite, "k"); got != tc.want {
			t.Errorf("%s: probe 2 = %v, want %v", tc.action, got, tc.want)
		}
		if got := p.ProbeIO(SiteCacheWrite, "k"); got != IONone {
			t.Errorf("%s: probe 3 = %v, want IONone", tc.action, got)
		}
	}
}

// TestProbeIOLabelAndPrecedence pins key-labeled IO rules and the
// first-armed-wins precedence when several IO rules fire on one probe.
func TestProbeIOLabelAndPrecedence(t *testing.T) {
	p := New(0, Rule{Site: SiteCacheRead, Label: "aaa", Nth: 1, Every: 1, Action: Corrupt})
	if got := p.ProbeIO(SiteCacheRead, "bbb"); got != IONone {
		t.Errorf("labeled rule fired on a different key: %v", got)
	}
	if got := p.ProbeIO(SiteCacheRead, "aaa"); got != IOCorrupt {
		t.Errorf("labeled rule did not fire on its key: %v", got)
	}

	both := New(0,
		Rule{Site: SiteCacheRead, Nth: 1, Every: 1, Action: Torn},
		Rule{Site: SiteCacheRead, Nth: 1, Every: 1, Action: Err},
	)
	if got := both.ProbeIO(SiteCacheRead, "k"); got != IOTorn {
		t.Errorf("overlapping IO rules: %v, want the first-armed IOTorn", got)
	}
	// The losing rule still advanced its counter: a Nth=2 window on it
	// would fire next probe (counters are per rule, independent).
	if got := both.ProbeIO(SiteCacheRead, "k"); got != IOTorn {
		t.Errorf("second probe: %v, want IOTorn again (every=1)", got)
	}
}

// TestCompileProbeIgnoresIOActions pins that the boolean Probe treats
// err/torn/corrupt rules as inert (while still counting matches): a
// compile site has no IO operation to shape.
func TestCompileProbeIgnoresIOActions(t *testing.T) {
	p := New(0, Rule{Site: SiteSolver, Nth: 1, Every: 1, Action: Corrupt})
	for i := 0; i < 4; i++ {
		if p.Probe(SiteSolver, "") {
			t.Fatal("corrupt rule exhausted a compile site")
		}
	}
}

// TestParseSpecIOSites pins the textual names of the serving-plane
// vocabulary.
func TestParseSpecIOSites(t *testing.T) {
	p, err := ParseSpec("seed=3;site=cache-read,action=corrupt,nth=2;site=cache-write,action=torn;site=cache-write,action=err,every=4")
	if err != nil {
		t.Fatal(err)
	}
	rs := p.Rules()
	if len(rs) != 3 {
		t.Fatalf("got %d rules, want 3", len(rs))
	}
	if rs[0].Site != SiteCacheRead || rs[0].Action != Corrupt || rs[0].Nth != 2 {
		t.Errorf("rule 0 = %+v", rs[0])
	}
	if rs[1].Site != SiteCacheWrite || rs[1].Action != Torn || rs[1].Nth == 0 {
		t.Errorf("rule 1 = %+v (nth should be seed-derived)", rs[1])
	}
	if rs[2].Site != SiteCacheWrite || rs[2].Action != Err || rs[2].Every != 4 {
		t.Errorf("rule 2 = %+v", rs[2])
	}
	// Round-trip the names through the String methods.
	for _, site := range []Site{SiteCacheRead, SiteCacheWrite} {
		got, ok := SiteByName(site.String())
		if !ok || got != site {
			t.Errorf("site %v does not round-trip through %q", site, site.String())
		}
	}
	for _, a := range []Action{Err, Torn, Corrupt} {
		got, ok := ActionByName(a.String())
		if !ok || got != a {
			t.Errorf("action %v does not round-trip through %q", a, a.String())
		}
	}
}
