// Package depgraph builds the data-dependence graph of a kernel and
// derives the quantities the scheduler needs from it: scheduling
// priorities (critical-path heights), earliest-cycle estimates, and the
// resource- and recurrence-constrained lower bounds on the initiation
// interval of the software-pipelined loop.
package depgraph

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
)

// EdgeKind distinguishes true data flow (which becomes a communication)
// from pure ordering constraints (memory aliasing), which constrain
// cycles but move no value.
type EdgeKind int

const (
	// Data edges carry a value from From's result to operand Slot of To.
	Data EdgeKind = iota
	// Order edges only sequence the endpoints.
	Order
)

// Edge is one dependence: To must issue no earlier than
// issue(From) + Latency - Distance·II.
type Edge struct {
	From     ir.OpID
	To       ir.OpID
	Kind     EdgeKind
	Slot     int // operand slot in To (Data only)
	SrcIndex int // index within the operand's source list (Data only)
	Latency  int // result latency of From (Order edges use latency 1)
	Distance int // loop-carried iteration distance
}

// Graph is the dependence graph of one kernel on one machine (latencies
// are machine-specific).
type Graph struct {
	Kernel *ir.Kernel
	Out    [][]Edge // per op: outgoing edges
	In     [][]Edge // per op: incoming edges

	height []int // critical-path height per op (distance-0 subgraph)
	asap   []int // earliest issue estimate per op (distance-0 subgraph)
}

// Build constructs the dependence graph. Data edges come from operand
// sources; order edges chain memory operations that share a non-zero
// alias tag, including the loop-carried back edge.
func Build(k *ir.Kernel, m *machine.Machine) *Graph {
	g := &Graph{
		Kernel: k,
		Out:    make([][]Edge, len(k.Ops)),
		In:     make([][]Edge, len(k.Ops)),
	}
	for _, op := range k.Ops {
		for slot, arg := range op.Args {
			if arg.Kind != ir.OperandValue {
				continue
			}
			for si, src := range arg.Srcs {
				def := k.Values[src.Value].Def
				g.add(Edge{
					From: def, To: op.ID, Kind: Data, Slot: slot, SrcIndex: si,
					Latency: m.Latency(k.Ops[def].Opcode), Distance: src.Distance,
				})
			}
		}
	}
	g.addMemoryOrder(k)
	g.computeHeights(m)
	return g
}

func (g *Graph) add(e Edge) {
	g.Out[e.From] = append(g.Out[e.From], e)
	g.In[e.To] = append(g.In[e.To], e)
}

// addMemoryOrder adds ordering edges between same-tag memory
// operations:
//
//   - store → later load (flow): latency 1 within the iteration, and
//     loop-carried with distance 1 so a load never overtakes last
//     iteration's store;
//   - load → later store (anti): latency 0 — the store may issue on the
//     load's cycle because reads observe start-of-cycle memory; and
//     loop-carried with distance 1;
//   - store → store (output) only for scratchpad accesses, which reuse
//     addresses; stream stores write distinct elements and stay
//     unordered.
func (g *Graph) addMemoryOrder(k *ir.Kernel) {
	for _, blockOps := range [][]ir.OpID{k.Preamble, k.Loop} {
		chains := make(map[int][]ir.OpID)
		for _, id := range blockOps {
			op := k.Ops[id]
			if op.MemTag == 0 || op.Opcode.Class() != ir.ClsMem && op.Opcode.Class() != ir.ClsSP {
				continue
			}
			chains[op.MemTag] = append(chains[op.MemTag], id)
		}
		for _, chain := range chains {
			inLoop := len(chain) > 0 && k.Ops[chain[0]].Block == ir.LoopBlock
			for i, a := range chain {
				for _, b := range chain[i+1:] {
					g.addOrderPair(k, a, b, 0)
				}
				if inLoop {
					for _, b := range chain {
						g.addOrderPair(k, a, b, 1)
					}
				}
			}
		}
	}
}

// addOrderPair adds the ordering edge from a to b (b observes a's
// effect distance iterations later) when the pair needs one.
func (g *Graph) addOrderPair(k *ir.Kernel, a, b ir.OpID, distance int) {
	wa, wb := isWrite(k.Ops[a].Opcode), isWrite(k.Ops[b].Opcode)
	switch {
	case wa && !wb: // flow: store → load
		g.add(Edge{From: a, To: b, Kind: Order, Latency: 1, Distance: distance})
	case !wa && wb: // anti: load → store
		g.add(Edge{From: a, To: b, Kind: Order, Latency: 0, Distance: distance})
	case wa && wb: // output: scratchpad only
		if k.Ops[a].Opcode == ir.SPWrite && k.Ops[b].Opcode == ir.SPWrite && (a != b || distance > 0) {
			g.add(Edge{From: a, To: b, Kind: Order, Latency: 1, Distance: distance})
		}
	}
}

func isWrite(op ir.Opcode) bool { return op == ir.Store || op == ir.SPWrite }

// computeHeights fills height (critical path to the bottom of the
// distance-0 subgraph) and asap (earliest issue assuming unlimited
// resources). Both drive scheduling priority: the scheduler places
// operations along the critical path first (§4.6).
func (g *Graph) computeHeights(m *machine.Machine) {
	n := len(g.Kernel.Ops)
	g.height = make([]int, n)
	g.asap = make([]int, n)
	order := g.topoOrder()
	// ASAP: forward pass.
	for _, id := range order {
		for _, e := range g.Out[id] {
			if e.Distance != 0 {
				continue
			}
			if t := g.asap[id] + e.Latency; t > g.asap[e.To] {
				g.asap[e.To] = t
			}
		}
	}
	// Height: backward pass.
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		h := 0
		for _, e := range g.Out[id] {
			if e.Distance != 0 {
				continue
			}
			if t := g.height[e.To] + e.Latency; t > h {
				h = t
			}
		}
		g.height[id] = h
	}
}

// topoOrder returns the ops topologically sorted over distance-0 edges.
// The IR verifier guarantees the distance-0 subgraph is acyclic and
// respects block program order, so sorting by (block, position) is a
// valid topological order.
func (g *Graph) topoOrder() []ir.OpID {
	var order []ir.OpID
	order = append(order, g.Kernel.Preamble...)
	order = append(order, g.Kernel.Loop...)
	return order
}

// Height returns the critical-path height of op.
func (g *Graph) Height(op ir.OpID) int { return g.height[op] }

// ASAP returns the earliest-issue estimate of op.
func (g *Graph) ASAP(op ir.OpID) int { return g.asap[op] }

// PriorityOrder returns the ops of the given block sorted for
// scheduling: descending critical-path height, ties broken by program
// order. This realizes the paper's "operations are scheduled in
// operation order" along the critical path (§4.6): the consumer of a
// critical value immediately follows its producer.
func (g *Graph) PriorityOrder(block ir.BlockKind) []ir.OpID {
	src := g.Kernel.BlockOps(block)
	order := make([]ir.OpID, len(src))
	copy(order, src)
	// Stable insertion sort by height descending keeps program order on
	// ties without importing sort for a custom stable comparator.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && g.height[order[j]] > g.height[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// ResMII returns the resource-constrained lower bound on the loop
// initiation interval: for every operation class, the class's issue
// demand divided by the number of units that execute it, and for every
// machine with shared write buses, the result count divided by the
// shared-bus capacity.
func ResMII(k *ir.Kernel, m *machine.Machine) (int, error) {
	demand := make(map[ir.Class]int)
	results := 0
	for _, id := range k.Loop {
		op := k.Ops[id]
		cls := op.Opcode.Class()
		units := m.UnitsFor(cls)
		if len(units) == 0 {
			return 0, fmt.Errorf("depgraph: no unit executes %v (op %d)", cls, id)
		}
		// Weight by the worst issue interval of the class's units; the
		// bound stays a lower bound because the best unit might be
		// faster, so use the best (minimum) interval.
		best := units[0]
		for _, u := range units {
			if m.FU(u).IssueInterval < m.FU(best).IssueInterval {
				best = u
			}
		}
		demand[cls] += m.FU(best).IssueInterval
		if op.Opcode.HasResult() {
			results++
		}
	}
	mii := 1
	for cls, d := range demand {
		units := len(m.UnitsFor(cls))
		if v := (d + units - 1) / units; v > mii {
			mii = v
		}
	}
	// Shared write buses bound the number of results per cycle when the
	// machine funnels all writebacks through them.
	if buses := sharedWriteBuses(m); buses > 0 && results > 0 {
		if v := (results + buses - 1) / buses; v > mii {
			mii = v
		}
	}
	return mii, nil
}

// sharedWriteBuses counts buses drivable by more than one output. When
// every write bus is dedicated (central, clustered standard units) the
// shared-bus bound does not apply and the count is reported as 0.
func sharedWriteBuses(m *machine.Machine) int {
	drivers := make(map[machine.BusID]int)
	for fu := range m.FUs {
		seen := make(map[machine.BusID]bool)
		for _, ws := range m.WriteStubs(machine.FUID(fu)) {
			if !seen[ws.Bus] {
				seen[ws.Bus] = true
				drivers[ws.Bus]++
			}
		}
	}
	shared, dedicated := 0, 0
	for _, n := range drivers {
		if n > 1 {
			shared++
		} else {
			dedicated++
		}
	}
	if shared == 0 || dedicated > 0 {
		// Mixed topologies (some dedicated writebacks) are not funneled;
		// the bound would not be sound as stated.
		return 0
	}
	return shared
}

// RecMIIFeasible reports whether the loop's recurrences admit the given
// initiation interval: no dependence cycle requires more than II·(sum
// of distances) cycles of latency. It runs a Bellman-Ford positive-
// cycle detection on the loop subgraph with edge weights
// latency - II·distance.
func (g *Graph) RecMIIFeasible(ii int) bool {
	loop := g.Kernel.Loop
	index := make(map[ir.OpID]int, len(loop))
	for i, id := range loop {
		index[id] = i
	}
	n := len(loop)
	if n == 0 {
		return true
	}
	// Longest-path relaxation from all nodes simultaneously.
	dist := make([]int, n)
	for iter := 0; iter < n; iter++ {
		changed := false
		for i, id := range loop {
			for _, e := range g.Out[id] {
				j, ok := index[e.To]
				if !ok {
					continue
				}
				w := e.Latency - ii*e.Distance
				if dist[i]+w > dist[j] {
					dist[j] = dist[i] + w
					changed = true
				}
			}
		}
		if !changed {
			return true
		}
	}
	return false
}

// RecMII returns the smallest initiation interval the loop recurrences
// admit, capped at maxII.
func (g *Graph) RecMII(maxII int) int {
	for ii := 1; ii <= maxII; ii++ {
		if g.RecMIIFeasible(ii) {
			return ii
		}
	}
	return maxII
}
