package depgraph

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

func chain(t *testing.T) *ir.Kernel {
	t.Helper()
	b := ir.NewBuilder("chain")
	x := b.Emit(ir.MovI, "x", b.Const(1))
	y := b.Emit(ir.Mul, "y", b.Val(x), b.Const(3)) // lat 2
	z := b.Emit(ir.Add, "z", b.Val(y), b.Const(1)) // lat 1
	b.Emit(ir.Store, "", b.Val(z), b.Const(0), b.Const(0))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestHeightsAndASAP(t *testing.T) {
	k := chain(t)
	g := Build(k, machine.Central())
	// ASAP: movi 0, mul 1, add 3, store 4.
	wantASAP := []int{0, 1, 3, 4}
	// Heights: store 0, add 1, mul 1+2=3, movi 3+1=4.
	wantH := []int{4, 3, 1, 0}
	for i := range wantASAP {
		if got := g.ASAP(ir.OpID(i)); got != wantASAP[i] {
			t.Errorf("asap(op%d) = %d, want %d", i, got, wantASAP[i])
		}
		if got := g.Height(ir.OpID(i)); got != wantH[i] {
			t.Errorf("height(op%d) = %d, want %d", i, got, wantH[i])
		}
	}
}

func TestPriorityOrderDescendsHeights(t *testing.T) {
	k := chain(t)
	g := Build(k, machine.Central())
	order := g.PriorityOrder(ir.PreambleBlock)
	for i := 1; i < len(order); i++ {
		if g.Height(order[i]) > g.Height(order[i-1]) {
			t.Fatalf("priority order not height-descending: %v", order)
		}
	}
}

func TestDataEdges(t *testing.T) {
	k := chain(t)
	g := Build(k, machine.Central())
	// The mul's incoming edge carries the movi's latency.
	var found bool
	for _, e := range g.In[1] {
		if e.From == 0 && e.Kind == Data {
			found = true
			if e.Latency != 1 {
				t.Errorf("edge latency = %d, want 1 (movi)", e.Latency)
			}
		}
	}
	if !found {
		t.Error("no data edge movi->mul")
	}
	// The add reads the 2-cycle multiply.
	for _, e := range g.In[2] {
		if e.From == 1 && e.Latency != 2 {
			t.Errorf("mul edge latency = %d, want 2", e.Latency)
		}
	}
}

func TestRecurrenceMII(t *testing.T) {
	b := ir.NewBuilder("rec")
	s0 := b.Emit(ir.MovI, "s0", b.Const(1))
	b.Loop()
	// s = s * 3: 2-cycle multiply feeding itself at distance 1 -> RecMII 2.
	b.Accumulator(ir.Mul, "s", s0, b.Const(3))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	g := Build(k, machine.Central())
	if g.RecMIIFeasible(1) {
		t.Error("II=1 reported feasible for a 2-cycle self-recurrence")
	}
	if !g.RecMIIFeasible(2) {
		t.Error("II=2 reported infeasible")
	}
	if got := g.RecMII(64); got != 2 {
		t.Errorf("RecMII = %d, want 2", got)
	}
}

func TestTwoOpRecurrence(t *testing.T) {
	// x = a(x_prev); a = mul(x)*...: a 2-op cycle with total latency
	// 1 (add) + 2 (mul) over distance 1 -> RecMII 3.
	b := ir.NewBuilder("rec2")
	x0 := b.Emit(ir.MovI, "x0", b.Const(1))
	b.Loop()
	mulID := b.NextValueID() + 1 // add emits first, then mul
	x := b.Emit(ir.Add, "x", ir.PhiOperand(x0, mulID, 1), b.Const(1))
	got := b.Emit(ir.Mul, "m", b.Val(x), b.Const(3))
	if got != mulID {
		t.Fatalf("id prediction wrong: %d vs %d", got, mulID)
	}
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	g := Build(k, machine.Central())
	if got := g.RecMII(64); got != 3 {
		t.Errorf("RecMII = %d, want 3 (1+2 latency over distance 1)", got)
	}
}

func TestResMIIClassBound(t *testing.T) {
	// 13 adds on 6 adders -> ceil(13/6) = 3.
	b := ir.NewBuilder("alu")
	b.Loop()
	for i := 0; i < 13; i++ {
		b.Emit(ir.Add, "t", b.Const(int64(i)), b.Const(1))
	}
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mii, err := ResMII(k, machine.Central())
	if err != nil {
		t.Fatal(err)
	}
	if mii != 3 {
		t.Errorf("ResMII = %d, want 3", mii)
	}
}

func TestResMIIBusBound(t *testing.T) {
	// 24 results per iteration on the distributed machine's 10 shared
	// writeback buses -> at least ceil(24/10) = 3; the class bound is
	// ceil(24/6) = 4, which dominates. Drop to 12 adds: class bound 2,
	// bus bound 2.
	build := func(n int) *ir.Kernel {
		b := ir.NewBuilder("bus")
		b.Loop()
		for i := 0; i < n; i++ {
			b.Emit(ir.Add, "t", b.Const(int64(i)), b.Const(1))
		}
		k, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	mii, err := ResMII(build(24), machine.Distributed())
	if err != nil {
		t.Fatal(err)
	}
	if mii != 4 {
		t.Errorf("ResMII(24 adds, distributed) = %d, want 4", mii)
	}
	// The central machine has dedicated writebacks: no bus bound.
	miiC, err := ResMII(build(24), machine.Central())
	if err != nil {
		t.Fatal(err)
	}
	if miiC != 4 {
		t.Errorf("ResMII(24 adds, central) = %d, want 4", miiC)
	}
	// 33 loads on 4 ls units vs 33 results on 10 buses: bus bound 4 >
	// hmm, mem bound ceil(33/4)=9 dominates; use stores (no results):
	// 33 stores -> mem bound 9, no bus pressure.
}

func TestResMIIUnknownClass(t *testing.T) {
	// A kernel using the divider cannot schedule on a machine without
	// one.
	b := ir.NewBuilder("div")
	b.Loop()
	b.Emit(ir.Div, "q", b.Const(10), b.Const(3))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResMII(k, machine.MotivatingExample()); err == nil {
		t.Error("ResMII accepted a divide on the divider-less Fig. 5 machine")
	}
}

func TestMemoryOrderEdges(t *testing.T) {
	b := ir.NewBuilder("mem")
	iv, _ := b.InductionVar("i", 0, 1)
	b.Loop()
	x := b.EmitMem(ir.Load, "x", 1, iv, b.Const(0))
	b.EmitMem(ir.Store, "", 1, b.Val(x), iv, b.Const(64))
	y := b.EmitMem(ir.Load, "y", 1, iv, b.Const(64))
	b.Emit(ir.Store, "", b.Val(y), iv, b.Const(128)) // tag 0: unordered
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	g := Build(k, machine.Central())
	loadX, store1, loadY := k.Loop[1], k.Loop[2], k.Loop[3]
	edge := func(from, to ir.OpID, distance int) *Edge {
		for i := range g.Out[from] {
			e := &g.Out[from][i]
			if e.To == to && e.Kind == Order && e.Distance == distance {
				return e
			}
		}
		return nil
	}
	if e := edge(loadX, store1, 0); e == nil || e.Latency != 0 {
		t.Errorf("missing/wrong anti edge load->store: %+v", e)
	}
	if e := edge(store1, loadY, 0); e == nil || e.Latency != 1 {
		t.Errorf("missing/wrong flow edge store->load: %+v", e)
	}
	// Loop-carried flow: the store must reach next iteration's loads.
	if edge(store1, loadX, 1) == nil {
		t.Error("missing carried flow edge store->load@1")
	}
	// Stream stores stay unordered among themselves (no store->store
	// edges for Load/Store tags).
	store2 := k.Loop[4]
	if edge(store1, store2, 0) != nil {
		t.Error("unexpected store->store edge between stream stores")
	}
}

func TestScratchpadOutputOrder(t *testing.T) {
	b := ir.NewBuilder("sp")
	iv, _ := b.InductionVar("i", 0, 1)
	b.Loop()
	b.EmitMem(ir.SPWrite, "", 2, iv, b.Const(0))
	b.EmitMem(ir.SPWrite, "", 2, iv, b.Const(1))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	g := Build(k, machine.Central())
	w1, w2 := k.Loop[1], k.Loop[2]
	found := false
	for _, e := range g.Out[w1] {
		if e.To == w2 && e.Kind == Order && e.Distance == 0 {
			found = true
		}
	}
	if !found {
		t.Error("missing output-order edge between scratchpad writes")
	}
}
