// Package daemon is the compilation-as-a-service layer: a long-running
// HTTP/JSON server (cmd/cschedd) that schedules kernels onto machines
// with the communication-scheduling compiler and serves repeat requests
// from a content-addressed schedule cache.
//
// The serving pipeline per POST /v1/compile request:
//
//  1. resolve the kernel (named Table 1 kernel, "fig4", or inline kasm
//     source) and the machine (named catalog topology or inline text
//     description), and validate the options — failures are 400s and
//     never reach a worker;
//  2. derive the content-addressed cache key: sha256 over the lowered
//     IR, the machine's canonical text form, and the canonicalized
//     scheduling configuration (see Key);
//  3. serve a cache hit directly (the cache stores final response
//     bodies, so a hit is byte-identical to the compile that filled
//     it); with -cache-dir armed, a memory miss probes a persistent
//     disk tier next — checksummed frames written via temp-file +
//     atomic rename, so entries survive restarts, torn or corrupt
//     frames are quarantined (renamed .bad, never served), and a disk
//     hit is promoted into memory and served as X-Cschedd-Cache: disk;
//  4. otherwise collapse concurrent identical requests into one backing
//     compilation (singleflight) — only the flight leader passes
//     admission control (bounded queue over a bounded worker pool;
//     overflow is 429 + Retry-After) and runs CompileContext under the
//     request deadline, with the PR 5 cancellation/degradation
//     machinery intact.
//
// The server exposes GET /v1/status (a JSON operational snapshot),
// GET /metrics (Prometheus text exposition from the internal/obs
// registry), and GET /healthz, and drains gracefully: Drain stops
// admission, lets in-flight compilations finish within a grace period,
// then cancels the stragglers cooperatively.
package daemon

import (
	"repro/internal/core"
)

// CompileRequest is the POST /v1/compile body. Exactly one of Kernel
// and Source names the program; exactly one of Machine and MachineText
// names the target (Machine defaults to "distributed" when both are
// empty).
type CompileRequest struct {
	// Kernel is a built-in kernel name: a Table 1 name (DCT, FIR-FP,
	// ...) or "fig4", the §2 motivating example.
	Kernel string `json:"kernel,omitempty"`
	// Source is inline kasm kernel-language source.
	Source string `json:"source,omitempty"`
	// Machine is a catalog machine name: central, clustered2,
	// clustered4, distributed, paired, fig5.
	Machine string `json:"machine,omitempty"`
	// MachineText is an inline text machine description (the
	// fu/rf/bus/rport/wport/connect format of internal/machine).
	MachineText string `json:"machine_text,omitempty"`
	// Options tunes the scheduler; nil means the paper's configuration.
	Options *OptionsSpec `json:"options,omitempty"`
	// TimeoutMS bounds this compilation; the deadline propagates into
	// CompileContext and expiry is a 504. Zero falls back to the
	// server's default timeout (if any).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Portfolio races the §4.6 ablation portfolio over the server's
	// worker budget instead of a single configuration. The portfolio
	// result is deterministic, but may differ from the sequential
	// compiler's, so the flag is part of the cache key.
	Portfolio bool `json:"portfolio,omitempty"`
	// Degrade arms the stock degradation ladder; Ladder, when non-empty,
	// arms a custom one instead (and wins over Degrade).
	Degrade bool       `json:"degrade,omitempty"`
	Ladder  []RungSpec `json:"ladder,omitempty"`
}

// OptionsSpec is the JSON form of the scheduler options a request may
// set. Zero fields mean the scheduler defaults, exactly as in
// core.Options; the cache key canonicalizes them (Options.Canonical),
// so spelling a default explicitly does not split the cache.
type OptionsSpec struct {
	MaxII           int  `json:"max_ii,omitempty"`
	PermBudget      int  `json:"perm_budget,omitempty"`
	MaxCandidates   int  `json:"max_candidates,omitempty"`
	ScanWindow      int  `json:"scan_window,omitempty"`
	AttemptBudget   int  `json:"attempt_budget,omitempty"`
	CycleOrder      bool `json:"cycle_order,omitempty"`
	NoCostHeuristic bool `json:"no_cost_heuristic,omitempty"`
	TwoPhase        bool `json:"two_phase,omitempty"`
	RegisterAware   bool `json:"register_aware,omitempty"`
	// Speculate (N>1) races up to N rungs of the initiation-interval
	// ladder over the server's worker pool. The schedule is
	// bit-identical to the sequential ladder's, so this field is a
	// latency knob, never part of the cache key; it is ignored for
	// portfolio requests (the portfolio racing is the parallelism).
	Speculate int `json:"speculate,omitempty"`
}

// options converts the spec to core.Options; a nil spec is the zero
// configuration.
func (s *OptionsSpec) options() core.Options {
	if s == nil {
		return core.Options{}
	}
	return core.Options{
		MaxII:           s.MaxII,
		PermBudget:      s.PermBudget,
		MaxCandidates:   s.MaxCandidates,
		ScanWindow:      s.ScanWindow,
		AttemptBudget:   s.AttemptBudget,
		CycleOrder:      s.CycleOrder,
		NoCostHeuristic: s.NoCostHeuristic,
		TwoPhase:        s.TwoPhase,
		RegisterAware:   s.RegisterAware,
		Speculate:       s.Speculate,
	}
}

// RungSpec is the JSON form of one degradation-ladder rung
// (core.DegradeRung). Greedy selects the cheap cycle-order pipeline
// without the cost heuristic.
type RungSpec struct {
	Name          string `json:"name"`
	MaxII         int    `json:"max_ii,omitempty"`
	MaxIIBoost    int    `json:"max_ii_boost,omitempty"`
	PermBudget    int    `json:"perm_budget,omitempty"`
	AttemptBudget int    `json:"attempt_budget,omitempty"`
	ScanWindow    int    `json:"scan_window,omitempty"`
	Greedy        bool   `json:"greedy,omitempty"`
}

// ladder converts rung specs to a core ladder; nil when specs is empty.
func ladder(specs []RungSpec) *core.DegradeLadder {
	if len(specs) == 0 {
		return nil
	}
	l := &core.DegradeLadder{Rungs: make([]core.DegradeRung, len(specs))}
	for i, s := range specs {
		r := core.DegradeRung{
			Name:          s.Name,
			MaxII:         s.MaxII,
			MaxIIBoost:    s.MaxIIBoost,
			PermBudget:    s.PermBudget,
			AttemptBudget: s.AttemptBudget,
			ScanWindow:    s.ScanWindow,
		}
		if s.Greedy {
			r.Pipeline = &core.PipelineConfig{Order: core.OrderCycle, Preassign: false, CostHeuristic: false}
		}
		l.Rungs[i] = r
	}
	return l
}

// PassStatBody is one pass row of a compile response: the deterministic
// counters of core.PassStat. Wall time is deliberately absent — the
// cache stores response bodies, and a cached hit must be byte-identical
// to the cold compile that filled it, so nothing nondeterministic may
// enter the body.
type PassStatBody struct {
	Name  string `json:"name"`
	Runs  int    `json:"runs"`
	Steps int    `json:"steps"`
	Fails int    `json:"fails"`
}

// passBodies projects the deterministic counters out of PassStats.
func passBodies(ps core.PassStats) []PassStatBody {
	out := make([]PassStatBody, len(ps))
	for i, st := range ps {
		out[i] = PassStatBody{Name: st.Name, Runs: st.Runs, Steps: st.Steps, Fails: st.Fails}
	}
	return out
}

// CompileResponse is the POST /v1/compile success body. Every field is
// deterministic for a given cache key; whether the response came from
// the cache is reported out of band in the X-Cschedd-Cache header
// (hit / miss), keeping hit and cold bodies byte-identical.
type CompileResponse struct {
	// Key is the content-addressed cache key (hex sha256).
	Key     string `json:"key"`
	Kernel  string `json:"kernel"`
	Machine string `json:"machine"`
	// II, Preamble, LoopSpan, and Copies summarize the schedule the way
	// csched's banner line does.
	II       int `json:"ii"`
	Preamble int `json:"preamble"`
	LoopSpan int `json:"loop_span"`
	Copies   int `json:"copies"`
	// Degraded names the degradation-ladder rung that produced the
	// schedule; empty when the primary configuration won.
	Degraded string `json:"degraded,omitempty"`
	// Fingerprint is the hex sha256 of Schedule.Fingerprint(): two
	// responses describe bit-identical schedules iff it matches.
	Fingerprint string `json:"fingerprint"`
	// Schedule is the Fig. 7-style cycle × unit dump plus routes.
	Schedule string `json:"schedule"`
	// Passes carries the deterministic per-pass counters.
	Passes []PassStatBody `json:"passes"`
	// Utilization is the per-resource interconnect occupancy report.
	Utilization *core.UtilizationReport `json:"utilization"`
}

// ErrorBody is the JSON error shape of every non-2xx response.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail mirrors core.CompileError for compilation failures;
// transport-level failures (bad JSON, overload, draining) fill only
// Status, Kind, and Reason.
type ErrorDetail struct {
	Status  int    `json:"status"`
	Kind    string `json:"kind"`
	Reason  string `json:"reason"`
	Pass    string `json:"pass,omitempty"`
	Kernel  string `json:"kernel,omitempty"`
	Machine string `json:"machine,omitempty"`
	II      int    `json:"ii,omitempty"`
	Op      int    `json:"op,omitempty"`
	Line    int    `json:"line,omitempty"`
	// RetryAfterS accompanies 429s: the Retry-After header in seconds.
	RetryAfterS int `json:"retry_after_s,omitempty"`
}

// StageSpan is one stage of a request's timeline as served by
// /debug/requests: offsets and durations in fractional milliseconds
// from the request's start.
type StageSpan struct {
	Name       string  `json:"name"`
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
}

// RequestRecord is one flight-recorder ring entry: the request-scoped
// observability record of a finished compile request. Unlike compile
// response bodies, records are diagnostic and carry wall-clock times.
type RequestRecord struct {
	// Seq orders records across the ring's lifetime (monotonic).
	Seq uint64 `json:"seq"`
	// ID is the request's X-Cschedd-Request-Id; LeaderID, set on
	// followers, names the request whose backing compilation this one
	// collapsed onto.
	ID       string `json:"id"`
	LeaderID string `json:"leader_id,omitempty"`
	Kernel   string `json:"kernel,omitempty"`
	Machine  string `json:"machine,omitempty"`
	// Key is the content-addressed cache key; empty when the request
	// failed before one was derived.
	Key    string `json:"key,omitempty"`
	Status int    `json:"status"`
	// Cache is the schedule-cache disposition: hit, disk, miss, or join.
	Cache     string `json:"cache,omitempty"`
	ErrorKind string `json:"error_kind,omitempty"`
	// Start is the request's arrival in RFC 3339 UTC; DurationMS the
	// end-to-end latency; Stages the per-stage breakdown.
	Start      string      `json:"start"`
	DurationMS float64     `json:"duration_ms"`
	Stages     []StageSpan `json:"stages,omitempty"`
	// MemoHits and SpecCancelled are the search-effort counters spliced
	// out of the backing compilation (zero on cache hits and joins).
	MemoHits      int `json:"memo_hits,omitempty"`
	SpecCancelled int `json:"spec_cancelled,omitempty"`
	// Trace reports whether a full event trace was captured for this
	// request: GET /debug/requests/{id} serves it as Chrome trace JSON.
	Trace bool `json:"trace"`
}

// RequestsResponse is the GET /debug/requests body, newest first.
type RequestsResponse struct {
	Requests []RequestRecord `json:"requests"`
}

// StatusResponse is the GET /v1/status body. The disk_* fields are
// present only when the persistent cache tier is armed (-cache-dir).
type StatusResponse struct {
	Draining     bool  `json:"draining"`
	Inflight     int64 `json:"inflight"`
	Queued       int64 `json:"queued"`
	Workers      int   `json:"workers"`
	QueueDepth   int   `json:"queue_depth"`
	Requests     int64 `json:"requests"`
	Compilations int64 `json:"compilations"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	Rejected     int64 `json:"rejected"`
	Errors       int64 `json:"errors"`
	CacheEntries int64 `json:"cache_entries"`
	CacheBytes   int64 `json:"cache_bytes"`
	CacheBudget  int64 `json:"cache_budget"`
	// Disk-tier snapshot (zero / absent when the tier is off).
	DiskDir       string `json:"disk_dir,omitempty"`
	DiskEntries   int64  `json:"disk_entries,omitempty"`
	DiskBytes     int64  `json:"disk_bytes,omitempty"`
	DiskBudget    int64  `json:"disk_budget,omitempty"`
	DiskHits      int64  `json:"disk_hits,omitempty"`
	DiskMisses    int64  `json:"disk_misses,omitempty"`
	DiskCorrupt   int64  `json:"disk_corrupt,omitempty"`
	DiskEvictions int64  `json:"disk_evictions,omitempty"`
}
