package daemon

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// diskStore is the persistent second tier under the in-memory schedule
// cache: one self-verifying file per entry (see diskentry.go), named
// <key>.sched in a flat directory, held under its own LRU byte budget.
//
// Durability rules:
//
//   - Writes are crash-safe: the frame lands in a <key>.<seq>.tmp file
//     first (fsynced under the "always" policy) and is renamed into
//     place atomically, so a reader — in this process or after a
//     restart — sees either no entry or a complete frame. Leftover
//     .tmp files are crash residue and are deleted by the startup scan.
//   - Reads are paranoid: a frame that fails the length or checksum
//     check is quarantined — renamed to <key>.sched.bad, counted in
//     cschedd_disk_corrupt_total, and reported as a miss so the caller
//     recompiles. A corrupt entry is never served and never silently
//     deleted (the .bad file is the operator's evidence).
//   - The startup scan rebuilds the index from the directory (warm
//     restart), ordering recency by mtime and evicting the oldest
//     entries until the byte budget holds. Entry bodies are verified
//     lazily on first read, not during the scan — a million-entry cache
//     must not stall boot on a full re-hash.
//
// The store serializes all operations behind one mutex: entries are a
// few kilobytes and the callers are the post-compile fill (async) and
// the cold-probe path, so lock hold times are dwarfed by compilation.
type diskStore struct {
	dir    string
	budget int64
	fsync  bool
	faults *faultinject.Plane

	mu     sync.Mutex
	ll     *list.List // front = most recently used
	byKey  map[string]*list.Element
	bytes  int64
	tmpSeq uint64

	hits, misses, corrupt, evictions, writeErrs *obs.Counter
	gEntries, gBytes                            *obs.Gauge
}

// dentry is one disk-resident entry in the recency list: the key plus
// the frame size charged against the budget.
type dentry struct {
	key  string
	size int64
}

// newDiskStore opens (or creates) the cache directory, removes crash
// residue, rebuilds the index, and evicts down to the byte budget.
func newDiskStore(dir string, budget int64, fsync bool, faults *faultinject.Plane, m *obs.Metrics) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk cache: %w", err)
	}
	d := &diskStore{
		dir:    dir,
		budget: budget,
		fsync:  fsync,
		faults: faults,
		ll:     list.New(),
		byKey:  make(map[string]*list.Element),

		hits:      m.Counter("cschedd_disk_hits_total", "compile requests served from the disk cache tier"),
		misses:    m.Counter("cschedd_disk_misses_total", "disk cache probes that found no servable entry"),
		corrupt:   m.Counter("cschedd_disk_corrupt_total", "disk cache entries quarantined for failing frame verification"),
		evictions: m.Counter("cschedd_disk_evictions_total", "disk cache entries evicted by the byte budget"),
		writeErrs: m.Counter("cschedd_disk_write_errors_total", "disk cache entry writes that failed (entry not persisted)"),
		gEntries:  m.Gauge("cschedd_disk_entries", "disk cache entries resident"),
		gBytes:    m.Gauge("cschedd_disk_bytes", "disk cache bytes resident"),
	}
	if err := d.scan(); err != nil {
		return nil, err
	}
	return d, nil
}

// path is the final resting place of one entry.
func (d *diskStore) path(key string) string {
	return filepath.Join(d.dir, key+diskEntrySuffix)
}

// validCacheKey accepts exactly the hex sha256 shape Key produces — the
// startup scan must not index stray files into the budget.
func validCacheKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// scan rebuilds the index from the directory: .tmp files (a crash
// between create and rename) are deleted, .bad files (quarantined
// evidence) are left but never indexed, and well-named entries are
// ordered by mtime and evicted oldest-first until the budget holds.
func (d *diskStore) scan() error {
	des, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("disk cache: %w", err)
	}
	type scanned struct {
		key   string
		size  int64
		mtime int64
	}
	var found []scanned
	for _, de := range des {
		name := de.Name()
		switch {
		case de.IsDir():
		case strings.HasSuffix(name, diskTempSuffix):
			// Crash residue: the rename never happened, so the entry was
			// never promised to anyone.
			os.Remove(filepath.Join(d.dir, name))
		case strings.HasSuffix(name, diskQuarantineExt):
		case strings.HasSuffix(name, diskEntrySuffix):
			key := strings.TrimSuffix(name, diskEntrySuffix)
			if !validCacheKey(key) {
				continue
			}
			info, err := de.Info()
			if err != nil {
				continue
			}
			found = append(found, scanned{key, info.Size(), info.ModTime().UnixNano()})
		}
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].mtime != found[j].mtime {
			return found[i].mtime < found[j].mtime
		}
		return found[i].key < found[j].key // total order for equal mtimes
	})
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, f := range found { // ascending mtime: the newest ends up at the front
		d.byKey[f.key] = d.ll.PushFront(&dentry{key: f.key, size: f.size})
		d.bytes += f.size
	}
	for d.bytes > d.budget && d.ll.Len() > 0 {
		d.evictBackLocked()
	}
	d.updateGaugesLocked()
	return nil
}

// get returns the verified body for key, refreshing recency. Any
// failure — injected or real, structural or filesystem — degrades to a
// miss; frames that fail verification are quarantined first.
func (d *diskStore) get(key string) ([]byte, bool) {
	fault := d.faults.ProbeIO(faultinject.SiteCacheRead, key)
	d.mu.Lock()
	defer d.mu.Unlock()
	el, ok := d.byKey[key]
	if !ok {
		d.misses.Inc()
		return nil, false
	}
	if fault == faultinject.IOErr {
		// A failed read is transient: the entry stays for the next probe.
		d.misses.Inc()
		return nil, false
	}
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		// The file vanished under the index (operator cleanup, disk
		// trouble): drop the entry and recompile.
		d.removeLocked(el)
		d.updateGaugesLocked()
		d.misses.Inc()
		return nil, false
	}
	switch fault {
	case faultinject.IOTorn:
		data = data[:len(data)/2]
	case faultinject.IOCorrupt:
		if len(data) > diskHeaderLen {
			data[len(data)-1] ^= 0x40
		}
	}
	body, derr := decodeDiskEntry(data)
	if derr != nil {
		d.quarantineLocked(el)
		d.updateGaugesLocked()
		d.misses.Inc()
		return nil, false
	}
	d.ll.MoveToFront(el)
	d.hits.Inc()
	return body, true
}

// put persists body under key: frame, temp file, optional fsync, atomic
// rename, then budget eviction. Write failures are counted and
// swallowed — the disk tier is an accelerator, never a correctness
// dependency, so a broken disk degrades the daemon to memory-only.
func (d *diskStore) put(key string, body []byte) {
	fault := d.faults.ProbeIO(faultinject.SiteCacheWrite, key)
	if fault == faultinject.IOErr {
		d.writeErrs.Inc()
		return
	}
	frame := encodeDiskEntry(body)
	switch fault {
	case faultinject.IOTorn:
		// The on-disk state of a crash mid-flush: a prefix of the frame
		// at the final path. The next read must quarantine it.
		frame = frame[:len(frame)/2]
	case faultinject.IOCorrupt:
		if len(frame) > diskHeaderLen {
			frame[len(frame)-1] ^= 0x40
		}
	}
	if int64(len(frame)) > d.budget {
		return // would evict the whole tier and then miss anyway
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	d.tmpSeq++
	tmp := filepath.Join(d.dir, fmt.Sprintf("%s.%d%s", key, d.tmpSeq, diskTempSuffix))
	if err := d.writeFile(tmp, frame); err != nil {
		d.writeErrs.Inc()
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, d.path(key)); err != nil {
		d.writeErrs.Inc()
		os.Remove(tmp)
		return
	}
	if d.fsync {
		// Make the rename itself durable: without the directory fsync a
		// power loss can forget the entry existed (safe — it was never
		// torn, just absent).
		if dirf, err := os.Open(d.dir); err == nil {
			dirf.Sync()
			dirf.Close()
		}
	}

	size := int64(len(frame))
	if el, ok := d.byKey[key]; ok {
		// Replacement: charge the size delta, no eviction counted — the
		// old frame was overwritten by the rename, not evicted.
		e := el.Value.(*dentry)
		d.bytes += size - e.size
		e.size = size
		d.ll.MoveToFront(el)
	} else {
		d.byKey[key] = d.ll.PushFront(&dentry{key: key, size: size})
		d.bytes += size
	}
	for d.bytes > d.budget && d.ll.Len() > 0 {
		d.evictBackLocked()
	}
	d.updateGaugesLocked()
}

// writeFile creates path exclusively, writes data, and fsyncs it under
// the "always" policy before closing.
func (d *diskStore) writeFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if d.fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// evictBackLocked removes the least-recently-used entry and its file.
func (d *diskStore) evictBackLocked() {
	el := d.ll.Back()
	e := el.Value.(*dentry)
	os.Remove(d.path(e.key))
	d.removeLocked(el)
	d.evictions.Inc()
}

// removeLocked drops an entry from the index without touching its file.
func (d *diskStore) removeLocked(el *list.Element) {
	e := el.Value.(*dentry)
	d.ll.Remove(el)
	delete(d.byKey, e.key)
	d.bytes -= e.size
}

// quarantineLocked renames a failed entry to its .bad sibling and drops
// it from the index. If even the rename fails the file is removed — a
// frame that does not verify must never be probed again.
func (d *diskStore) quarantineLocked(el *list.Element) {
	e := el.Value.(*dentry)
	path := d.path(e.key)
	if err := os.Rename(path, path+diskQuarantineExt); err != nil {
		os.Remove(path)
	}
	d.removeLocked(el)
	d.corrupt.Inc()
}

func (d *diskStore) updateGaugesLocked() {
	d.gEntries.Set(int64(d.ll.Len()))
	d.gBytes.Set(d.bytes)
}

// stats reports entry count and resident bytes for /v1/status.
func (d *diskStore) stats() (entries int, bytes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ll.Len(), d.bytes
}
