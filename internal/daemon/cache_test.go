package daemon

import (
	"bytes"
	"strings"
	"testing"
)

// TestCacheReplacementIsNotEviction is the satellite regression test:
// storing over a resident key adjusts the byte budget by the size
// delta and reports zero evictions — the key never left the cache.
func TestCacheReplacementIsNotEviction(t *testing.T) {
	key := testKey(1)
	small := []byte(strings.Repeat("a", 100))
	large := []byte(strings.Repeat("b", 300))
	c := newCache(entrySize(key, large) + 50)

	if evicted := c.put(key, small); evicted != 0 {
		t.Fatalf("first put evicted %d", evicted)
	}
	if _, bytes_ := c.stats(); bytes_ != entrySize(key, small) {
		t.Fatalf("bytes %d after first put, want %d", bytes_, entrySize(key, small))
	}

	// Growing the body in place: delta charged, nothing evicted, new
	// body served.
	if evicted := c.put(key, large); evicted != 0 {
		t.Fatalf("replacement evicted %d, want 0", evicted)
	}
	if entries, bytes_ := c.stats(); entries != 1 || bytes_ != entrySize(key, large) {
		t.Fatalf("after replacement: %d entries, %d bytes, want 1, %d", entries, bytes_, entrySize(key, large))
	}
	if got, ok := c.get(key); !ok || !bytes.Equal(got, large) {
		t.Fatalf("replacement did not take: ok=%v", ok)
	}

	// Shrinking credits the delta back.
	c.put(key, small)
	if _, bytes_ := c.stats(); bytes_ != entrySize(key, small) {
		t.Fatalf("bytes %d after shrink, want %d", bytes_, entrySize(key, small))
	}

	// Genuine budget pressure still evicts — and a replacement that
	// overflows the budget evicts colder keys, not the replaced one.
	other := testKey(2)
	c.put(other, small)
	c.get(key) // key is now the warmer of the two
	if evicted := c.put(key, large); evicted != 1 {
		t.Fatalf("overflowing replacement evicted %d, want 1 (the cold key)", evicted)
	}
	if _, ok := c.get(other); ok {
		t.Error("cold key survived the overflowing replacement")
	}
	if got, ok := c.get(key); !ok || !bytes.Equal(got, large) {
		t.Error("replaced key was evicted by its own replacement")
	}
}

// TestCacheEvictionMetricExcludesReplacement pins the server-level
// accounting: cachePut bumps cschedd_cache_evictions_total only for
// budget evictions, never for same-key replacement.
func TestCacheEvictionMetricExcludesReplacement(t *testing.T) {
	s := mustNew(t, Config{CacheBytes: 3 * entrySize(testKey(0), []byte(strings.Repeat("x", 100)))})
	body := []byte(strings.Repeat("x", 100))

	s.cachePut(testKey(0), body)
	s.cachePut(testKey(0), body) // replacement
	if got := s.mCacheEvict.Value(); got != 0 {
		t.Fatalf("eviction metric %d after replacement, want 0", got)
	}
	s.cachePut(testKey(1), body)
	s.cachePut(testKey(2), body)
	s.cachePut(testKey(3), body) // overflows: evicts testKey(0)
	if got := s.mCacheEvict.Value(); got != 1 {
		t.Fatalf("eviction metric %d after budget overflow, want 1", got)
	}
	if got := s.gEntries.Value(); got != 3 {
		t.Errorf("entries gauge %d, want 3", got)
	}
}
