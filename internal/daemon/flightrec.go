package daemon

import (
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// This file is the daemon's flight recorder: a fixed-size ring of
// recent request records — key, stages, status, cache disposition —
// plus full obs.Recorder trace capture for the requests worth a deep
// look (errors and latency outliers), exposed as GET /debug/requests
// and GET /debug/requests/{id}. The ring answers "what just happened";
// a captured trace answers "what did the compiler decide, event by
// event" through the same Chrome-trace exporter and schema the csched
// CLI uses.

// durationMS renders a duration as fractional milliseconds for logs
// and records.
func durationMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// flightRecorder is the bounded store behind /debug/requests. A nil
// recorder is the disabled state: record and capture no-op, lookups
// miss.
type flightRecorder struct {
	mu      sync.Mutex
	seq     uint64
	ring    []RequestRecord // circular, len == cap once warm
	next    int             // ring slot the next record lands in
	entries int

	// traces holds the captured full traces by (leader) request ID,
	// evicted FIFO once traceKeep deep: traces of hard kernels run to
	// millions of events, so only a handful stay resident.
	traces     map[string]*obs.Recorder
	traceOrder []string
	traceKeep  int
}

// newFlightRecorder sizes a recorder; entries <= 0 disables it (nil).
func newFlightRecorder(entries, traceKeep int) *flightRecorder {
	if entries <= 0 {
		return nil
	}
	if traceKeep <= 0 {
		traceKeep = 8
	}
	return &flightRecorder{
		ring:      make([]RequestRecord, 0, entries),
		entries:   entries,
		traces:    make(map[string]*obs.Recorder),
		traceKeep: traceKeep,
	}
}

// record appends one finished request to the ring, evicting the oldest
// record (and its captured trace, if any) once full.
func (fr *flightRecorder) record(rm *reqMeta, total time.Duration) {
	if fr == nil {
		return
	}
	spans := rm.tl.Spans()
	rec := RequestRecord{
		ID:            rm.id,
		LeaderID:      rm.leaderID,
		Kernel:        rm.kernel,
		Machine:       rm.machine,
		Key:           rm.key,
		Status:        rm.status,
		Cache:         rm.cache,
		ErrorKind:     rm.errKind,
		Start:         rm.tl.Origin().UTC().Format(time.RFC3339Nano),
		DurationMS:    durationMS(total),
		MemoHits:      rm.memoHits,
		SpecCancelled: rm.specCanc,
		Trace:         rm.traced,
	}
	if len(spans) > 0 {
		rec.Stages = make([]StageSpan, len(spans))
		for i, sp := range spans {
			rec.Stages[i] = StageSpan{
				Name:       sp.Name,
				StartMS:    durationMS(sp.Start),
				DurationMS: durationMS(sp.Duration()),
			}
		}
	}

	fr.mu.Lock()
	fr.seq++
	rec.Seq = fr.seq
	if len(fr.ring) < fr.entries {
		fr.ring = append(fr.ring, rec)
	} else {
		if old := &fr.ring[fr.next]; old.Trace {
			fr.dropTrace(old.ID)
		}
		fr.ring[fr.next] = rec
	}
	fr.next = (fr.next + 1) % fr.entries
	fr.mu.Unlock()
}

// capture retains the full event trace of one backing compilation under
// the leader's request ID, evicting the oldest capture beyond the keep
// budget.
func (fr *flightRecorder) capture(id string, rec *obs.Recorder) {
	if fr == nil || rec == nil {
		return
	}
	fr.mu.Lock()
	if _, dup := fr.traces[id]; !dup {
		fr.traces[id] = rec
		fr.traceOrder = append(fr.traceOrder, id)
		for len(fr.traceOrder) > fr.traceKeep {
			delete(fr.traces, fr.traceOrder[0])
			fr.traceOrder = fr.traceOrder[1:]
		}
	}
	fr.mu.Unlock()
}

// dropTrace removes a capture evicted with its ring record. Caller
// holds fr.mu.
func (fr *flightRecorder) dropTrace(id string) {
	if _, ok := fr.traces[id]; !ok {
		return
	}
	delete(fr.traces, id)
	for i, tid := range fr.traceOrder {
		if tid == id {
			fr.traceOrder = append(fr.traceOrder[:i], fr.traceOrder[i+1:]...)
			break
		}
	}
}

// records returns the ring newest-first.
func (fr *flightRecorder) records() []RequestRecord {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]RequestRecord, 0, len(fr.ring))
	for i := 0; i < len(fr.ring); i++ {
		// Newest is the slot before next, walking backwards.
		idx := fr.next - 1 - i
		for idx < 0 {
			idx += len(fr.ring)
		}
		out = append(out, fr.ring[idx%len(fr.ring)])
	}
	return out
}

// trace resolves a request ID to its captured trace: directly for a
// leader, through the recorded leader ID for a follower that collapsed
// onto it.
func (fr *flightRecorder) trace(id string) *obs.Recorder {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	if rec, ok := fr.traces[id]; ok {
		return rec
	}
	for i := range fr.ring {
		if fr.ring[i].ID == id && fr.ring[i].LeaderID != "" {
			return fr.traces[fr.ring[i].LeaderID]
		}
	}
	return nil
}

// handleDebugRequests serves the flight-recorder ring as JSON, newest
// first.
func (s *Server) handleDebugRequests(w http.ResponseWriter) {
	if s.recorder == nil {
		s.jsonError(w, http.StatusNotFound, "recorder-disabled",
			"the flight recorder is disabled (RecorderEntries < 0)")
		return
	}
	writeJSON(w, http.StatusOK, RequestsResponse{Requests: s.recorder.records()}, "")
}

// handleDebugTrace serves the captured Chrome trace for one request ID
// (the path suffix after /debug/requests/).
func (s *Server) handleDebugTrace(w http.ResponseWriter, path string) {
	id := strings.TrimPrefix(path, "/debug/requests/")
	if s.recorder == nil {
		s.jsonError(w, http.StatusNotFound, "recorder-disabled",
			"the flight recorder is disabled (RecorderEntries < 0)")
		return
	}
	rec := s.recorder.trace(id)
	if rec == nil {
		s.jsonError(w, http.StatusNotFound, "no-trace",
			"no captured trace for request "+id+" (only errored or slow requests are captured; see -trace-slow / -trace-errors)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	obs.WriteChromeTrace(w, rec.Events())
}
