package daemon

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"

	"repro/internal/obs"
)

// This file is the request-identity and structured-logging side of the
// daemon: every compile request carries an ID that lives in the
// X-Cschedd-Request-Id header and the JSON access log — never in a
// response body, which stays byte-deterministic — and is threaded
// through the singleflight layer so one backing compilation's log lines
// correlate across every request collapsed onto it.

// RequestIDHeader carries the request ID on compile responses. A
// client may supply its own (valid IDs are honored verbatim, so an edge
// proxy's ID survives end to end); otherwise the server mints one.
const RequestIDHeader = "X-Cschedd-Request-Id"

// CacheStateHeader reports the schedule-cache disposition of a compile
// request: hit (in-memory), disk (served from the persistent tier after
// a memory miss), miss, or join (collapsed onto another request's
// in-flight compilation). The header is emitted on error outcomes too —
// a failed join and a failed miss are different operational situations.
const CacheStateHeader = "X-Cschedd-Cache"

// newBootID mints the per-process prefix of generated request IDs, so
// IDs from different daemon instances cannot collide in shared logs.
func newBootID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a fixed
		// prefix only weakens cross-instance uniqueness, not correctness.
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

// validRequestID accepts client-supplied IDs that are safe to echo into
// headers and logs: 1–128 bytes of [A-Za-z0-9._-].
func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// requestID returns the ID for one compile request: the client's own
// X-Cschedd-Request-Id when it is well-formed, else a freshly minted
// bootID-seq pair.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get(RequestIDHeader); validRequestID(id) {
		return id
	}
	return fmt.Sprintf("%s-%08x", s.bootID, s.reqSeq.Add(1))
}

// reqMeta accumulates everything one compile request contributes to the
// observability plane: identity, the stage timeline, and the outcome
// fields the access log and the flight recorder share. It lives on the
// handler's stack and is only ever touched by the request's own
// goroutine.
type reqMeta struct {
	id       string
	leaderID string // set on followers: the flight leader's request ID
	kernel   string
	machine  string
	key      string
	status   int
	cache    string // hit / disk / miss / join; empty before a key exists
	errKind  string
	memoHits int
	specCanc int
	traced   bool // full trace captured into the flight recorder
	tl       *obs.Timeline
}

// finishRequest closes out one compile request: per-stage and
// end-to-end latency observations, the flight-recorder ring record, and
// exactly one structured access-log line. Called deferred from
// handleCompile, after the response bytes are on the wire.
func (s *Server) finishRequest(rm *reqMeta) {
	total := rm.tl.Elapsed()
	s.hRequest.Observe(total.Seconds())
	spans := rm.tl.Spans()
	for _, sp := range spans {
		if h, ok := s.hStages[sp.Name]; ok {
			h.Observe(sp.Duration().Seconds())
		}
	}

	s.recorder.record(rm, total)

	if s.logger == nil {
		return
	}
	level := slog.LevelInfo
	switch {
	case rm.status >= 500:
		level = slog.LevelError
	case rm.status >= 400:
		level = slog.LevelWarn
	}
	attrs := make([]slog.Attr, 0, 16)
	attrs = append(attrs, slog.String("id", rm.id))
	if rm.leaderID != "" {
		attrs = append(attrs, slog.String("leader_id", rm.leaderID))
	}
	if rm.kernel != "" {
		attrs = append(attrs, slog.String("kernel", rm.kernel))
	}
	if rm.machine != "" {
		attrs = append(attrs, slog.String("machine", rm.machine))
	}
	if rm.key != "" {
		attrs = append(attrs, slog.String("key", rm.key))
	}
	attrs = append(attrs, slog.Int("status", rm.status))
	if rm.cache != "" {
		attrs = append(attrs, slog.String("cache", rm.cache))
	}
	if rm.errKind != "" {
		attrs = append(attrs, slog.String("error_kind", rm.errKind))
	}
	attrs = append(attrs, slog.Float64("duration_ms", durationMS(total)))
	if len(spans) > 0 {
		stages := make([]any, 0, len(spans))
		for _, sp := range spans {
			stages = append(stages, slog.Float64(sp.Name, durationMS(sp.Duration())))
		}
		attrs = append(attrs, slog.Group("stages", stages...))
	}
	if rm.memoHits > 0 {
		attrs = append(attrs, slog.Int("memo_hits", rm.memoHits))
	}
	if rm.specCanc > 0 {
		attrs = append(attrs, slog.Int("spec_cancelled", rm.specCanc))
	}
	if rm.traced {
		attrs = append(attrs, slog.Bool("trace", true))
	}
	s.logger.LogAttrs(s.baseCtx, level, "request", attrs...)
}
