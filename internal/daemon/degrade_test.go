package daemon

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// failBase cannot schedule fig4 on fig5: one placement attempt per
// operation is never enough there, so the ladder always gets a turn.
var failBase = &OptionsSpec{AttemptBudget: 1}

// crippled is a rung that fails the same way the base options do.
func crippled(name string) RungSpec { return RungSpec{Name: name, AttemptBudget: 1} }

// rungLadders mirrors the stock ladder rung by rung: for each rung,
// a request ladder in which every earlier rung is crippled so exactly
// the rung under test can win.
func rungLadders() map[string][]RungSpec {
	fast := RungSpec{Name: "fast-search", PermBudget: 512, AttemptBudget: 32}
	relaxed := RungSpec{Name: "relaxed-ii", MaxIIBoost: 64, PermBudget: 1024, AttemptBudget: 128}
	greedy := RungSpec{Name: "greedy", Greedy: true, PermBudget: 256, AttemptBudget: 128}
	return map[string][]RungSpec{
		"fast-search": {fast},
		"relaxed-ii":  {crippled("fast-search"), relaxed},
		"greedy":      {crippled("fast-search"), crippled("relaxed-ii"), greedy},
	}
}

// TestDegradePerRungSuccess drives each ladder rung to be the one that
// rescues a failing compilation, and pins the response's degraded
// marker to the winning rung's name.
func TestDegradePerRungSuccess(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, rungs := range rungLadders() {
		t.Run(name, func(t *testing.T) {
			req := CompileRequest{Kernel: "fig4", Machine: "fig5", Options: failBase, Ladder: rungs}
			status, _, body := postCompile(t, ts, req)
			if status != http.StatusOK {
				t.Fatalf("compile: %d\n%s", status, body)
			}
			var cr CompileResponse
			if err := json.Unmarshal(body, &cr); err != nil {
				t.Fatal(err)
			}
			if cr.Degraded != name {
				t.Errorf("degraded = %q, want %q", cr.Degraded, name)
			}
			if cr.II <= 0 {
				t.Errorf("rung %s produced no schedule (ii %d)", name, cr.II)
			}
		})
	}
}

// TestDegradePerRungDeadline runs each rung configuration against a
// deadline it cannot meet (a delay fault stretches every solver step)
// and requires the daemon to surface 504 deadline-exceeded, not hang
// or mislabel the failure.
func TestDegradePerRungDeadline(t *testing.T) {
	for name, rungs := range rungLadders() {
		t.Run(name, func(t *testing.T) {
			plane := faultinject.New(1, faultinject.Rule{
				Site: faultinject.SiteSolver,
				Nth:  1, Every: 1, Action: faultinject.Delay, Sleep: 10 * time.Millisecond,
			})
			_, ts := newTestServer(t, Config{Faults: plane})
			req := CompileRequest{Kernel: "fig4", Machine: "fig5",
				Options: failBase, Ladder: rungs, TimeoutMS: 5}
			status, _, body := postCompile(t, ts, req)
			if status != http.StatusGatewayTimeout {
				t.Fatalf("deadline compile: %d\n%s", status, body)
			}
			d := decodeError(t, status, body)
			if d.Kind != "deadline-exceeded" {
				t.Errorf("kind = %q, want deadline-exceeded", d.Kind)
			}
		})
	}
}

// TestDegradePerRungCancellation drains the server mid-compilation for
// each rung configuration: the cooperative cancellation must cut the
// ladder short and report 499 client-closed-request with the cancelled
// kind.
func TestDegradePerRungCancellation(t *testing.T) {
	for name, rungs := range rungLadders() {
		t.Run(name, func(t *testing.T) {
			plane := faultinject.New(1, faultinject.Rule{
				Site: faultinject.SiteSolver,
				Nth:  1, Every: 1, Action: faultinject.Delay, Sleep: 10 * time.Millisecond,
			})
			s := mustNew(t, Config{Workers: 1, Faults: plane})
			ts := newLeakCheckedServer(t, s)

			type result struct {
				status int
				body   []byte
			}
			res := make(chan result, 1)
			go func() {
				req := CompileRequest{Kernel: "fig4", Machine: "fig5", Options: failBase, Ladder: rungs}
				status, _, body := postCompile(t, ts, req)
				res <- result{status, body}
			}()
			waitFor(t, 2*time.Second, func() bool { return s.gInflight.Value() == 1 })

			graceCtx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			defer cancel()
			s.Drain(graceCtx)

			r := <-res
			if r.status != StatusClientClosedRequest {
				t.Fatalf("cancelled compile: %d\n%s", r.status, r.body)
			}
			d := decodeError(t, r.status, r.body)
			if d.Kind != "cancelled" {
				t.Errorf("kind = %q, want cancelled", d.Kind)
			}
		})
	}
}
