package daemon

import (
	"errors"
	"net/http"

	"repro/internal/core"
)

// This file is the single error-mapping table shared by the daemon and
// cmd/csched: a core.CompileError kind determines both the HTTP status
// the daemon serves and the exit code the CLI returns, so scripts
// driving either surface see the same classification.
//
//	kind               HTTP  exit
//	invalid-input      400   1
//	schedule           422   1
//	cancelled          499   3
//	deadline-exceeded  504   3
//	internal           500   4
//	(other errors)     500   1

// StatusClientClosedRequest is the de-facto (nginx) status for a
// request abandoned by cancellation; net/http defines no constant for
// it.
const StatusClientClosedRequest = 499

// CLI exit codes beyond the conventional 0/1/2, as documented by
// cmd/csched: cancellation and internal errors are distinguishable to
// scripts driving fleets of compiles.
const (
	ExitCancelled = 3
	ExitInternal  = 4
)

// HTTPStatus maps a compilation failure to the HTTP status the daemon
// serves for it.
func HTTPStatus(err error) int {
	var ce *core.CompileError
	if !errors.As(err, &ce) {
		return http.StatusInternalServerError
	}
	switch ce.Kind {
	case core.KindInvalidInput:
		return http.StatusBadRequest
	case core.KindSchedule:
		return http.StatusUnprocessableEntity
	case core.KindCancelled:
		return StatusClientClosedRequest
	case core.KindDeadlineExceeded:
		return http.StatusGatewayTimeout
	case core.KindInternal:
		return http.StatusInternalServerError
	}
	return http.StatusInternalServerError
}

// ExitCode maps a compilation failure to the CLI exit code documented
// by cmd/csched.
func ExitCode(err error) int {
	var ce *core.CompileError
	if !errors.As(err, &ce) {
		return 1
	}
	switch ce.Kind {
	case core.KindCancelled, core.KindDeadlineExceeded:
		return ExitCancelled
	case core.KindInternal:
		return ExitInternal
	}
	return 1
}

// ExitCodeForStatus maps a daemon HTTP status back onto the CLI exit
// code for the same failure class — the bridge a script wrapping both
// surfaces uses: 499 and 504 are exit 3, 500 is exit 4, every other
// failure status is exit 1.
func ExitCodeForStatus(status int) int {
	switch status {
	case StatusClientClosedRequest, http.StatusGatewayTimeout:
		return ExitCancelled
	case http.StatusInternalServerError:
		return ExitInternal
	}
	if status >= 200 && status < 300 {
		return 0
	}
	return 1
}
