package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// The serving-plane chaos suite: seeded IO faults against the disk
// cache tier, proved harmless by byte-identity against a faultless
// reference run. The trace runs in segments, each segment a fresh
// server over the same cache directory — a restart: the memory tier
// starts cold, so every warm key crosses the disk tier, which is where
// the faults live.

const chaosSeed = 0xc4a05

// chaosTrace derives a compile-heavy request trace from the seed. The
// key space is small on purpose (fig4 × three machines × two budgets),
// so later segments re-request keys earlier segments compiled and the
// disk tier actually serves.
func chaosTrace(seed uint64, n int) []any {
	machines := []string{"fig5", "central", "distributed"}
	perms := []int{0, 512}
	trace := make([]any, 0, n)
	for i := 0; i < n; i++ {
		switch r := splitmix64(&seed) % 8; {
		case r < 6:
			trace = append(trace, CompileRequest{
				Kernel:  "fig4",
				Machine: machines[splitmix64(&seed)%3],
				Options: &OptionsSpec{PermBudget: perms[splitmix64(&seed)%2]},
			})
		case r < 7: // invalid input -> 400; never touches the disk tier
			trace = append(trace, CompileRequest{Kernel: "no-such-kernel"})
		default: // schedule failure -> 422; errors are not cached
			trace = append(trace, CompileRequest{
				Kernel: "fig4", Machine: "fig5",
				Options: &OptionsSpec{AttemptBudget: 1},
			})
		}
	}
	return trace
}

// chaosPlane arms the serving-plane IO faults for one chaos segment:
// erroring, torn, and corrupt reads and writes, plus a delay, all on
// deterministic counters.
func chaosPlane(segment int) *faultinject.Plane {
	return faultinject.New(int64(chaosSeed+segment),
		faultinject.Rule{Site: faultinject.SiteCacheRead, Nth: 2, Every: 5, Action: faultinject.Err},
		faultinject.Rule{Site: faultinject.SiteCacheRead, Nth: 3, Every: 7, Action: faultinject.Torn},
		faultinject.Rule{Site: faultinject.SiteCacheRead, Nth: 1, Every: 3, Action: faultinject.Delay, Sleep: time.Millisecond},
		faultinject.Rule{Site: faultinject.SiteCacheWrite, Nth: 2, Every: 4, Action: faultinject.Corrupt},
		faultinject.Rule{Site: faultinject.SiteCacheWrite, Nth: 3, Every: 6, Action: faultinject.Err},
	)
}

// chaosDiskTotals accumulates the disk-tier counters across segments.
type chaosDiskTotals struct {
	hits, corrupt, writeErrs int64
}

// replayChaos runs the trace in segments over one cache directory,
// restarting the server between segments, and returns the (status,
// body) stream. planeFor selects the segment's fault plane (nil for
// the faultless reference run).
func replayChaos(t *testing.T, dir string, segments int, planeFor func(int) *faultinject.Plane) ([]soakResult, chaosDiskTotals) {
	t.Helper()
	trace := chaosTrace(chaosSeed, 25*segments)
	per := len(trace) / segments
	var out []soakResult
	var totals chaosDiskTotals
	for seg := 0; seg < segments; seg++ {
		s := mustNew(t, Config{
			Workers:  2,
			CacheDir: dir,
			Faults:   planeFor(seg),
			Logger:   slog.New(slog.NewJSONHandler(io.Discard, nil)),
		})
		ts := newLeakCheckedServer(t, s)
		for _, req := range trace[seg*per : (seg+1)*per] {
			status, hdr, body := postCompile(t, ts, req)
			if cs := hdr.Get(CacheStateHeader); status == http.StatusOK && cs == "" {
				t.Errorf("segment %d: 200 with no %s header", seg, CacheStateHeader)
			}
			out = append(out, soakResult{status, body})
		}
		totals.hits += s.disk.hits.Value()
		totals.corrupt += s.disk.corrupt.Value()
		totals.writeErrs += s.disk.writeErrs.Value()
		s.Drain(context.Background())
		ts.Close()
	}
	return out, totals
}

// TestChaosDiskFaults is the chaos gate: a segmented replay with
// erroring, torn, and corrupt disk IO produces exactly the (status,
// body) stream of the faultless replay — the disk tier may only change
// where bytes come from, never which bytes — while the fault and
// quarantine counters prove the faults actually fired and the disk
// actually served.
func TestChaosDiskFaults(t *testing.T) {
	before := runtime.NumGoroutine()
	const segments = 4

	clean, cleanTotals := replayChaos(t, t.TempDir(), segments, func(int) *faultinject.Plane { return nil })
	chaos, chaosTotals := replayChaos(t, t.TempDir(), segments, chaosPlane)

	if len(clean) != len(chaos) {
		t.Fatalf("stream lengths differ: %d clean vs %d chaos", len(clean), len(chaos))
	}
	for i := range clean {
		if clean[i].status != chaos[i].status {
			t.Fatalf("request %d: status %d clean vs %d chaos\nclean: %s\nchaos: %s",
				i, clean[i].status, chaos[i].status, clean[i].body, chaos[i].body)
		}
		if !bytes.Equal(clean[i].body, chaos[i].body) {
			t.Fatalf("request %d (status %d): bodies diverge under disk faults\nclean: %s\nchaos: %s",
				i, clean[i].status, clean[i].body, chaos[i].body)
		}
	}

	// The suite must prove what it claims: the faultless run exercised
	// the disk tier, and the chaos run both served from disk and hit
	// every degradation path.
	if cleanTotals.hits == 0 {
		t.Error("faultless run never served from disk — the trace does not exercise restarts")
	}
	if chaosTotals.hits == 0 {
		t.Error("chaos run never served from disk")
	}
	if chaosTotals.corrupt == 0 {
		t.Error("chaos run never quarantined a corrupt entry")
	}
	if chaosTotals.writeErrs == 0 {
		t.Error("chaos run never failed a disk write")
	}
	t.Logf("disk totals: clean hits=%d; chaos hits=%d corrupt=%d writeErrs=%d",
		cleanTotals.hits, chaosTotals.hits, chaosTotals.corrupt, chaosTotals.writeErrs)

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked across chaos drains: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDiskTierServesAcrossRestart pins the tentpole end to end: a key
// compiled before a restart is served after it from the disk tier —
// X-Cschedd-Cache: disk, byte-identical body — and the serve promotes
// it back into memory.
func TestDiskTierServesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	req := CompileRequest{Source: tinySource, Machine: "central"}

	s1, ts1 := newTestServer(t, Config{CacheDir: dir})
	status, hdr, cold := postCompile(t, ts1, req)
	if status != http.StatusOK {
		t.Fatalf("cold compile: %d\n%s", status, cold)
	}
	if cs := hdr.Get(CacheStateHeader); cs != "miss" {
		t.Fatalf("cold compile cache state %q, want miss", cs)
	}
	s1.Drain(context.Background()) // waits for the async disk write
	ts1.Close()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var scheds int
	for _, de := range entries {
		if strings.HasSuffix(de.Name(), diskEntrySuffix) {
			scheds++
		}
	}
	if scheds != 1 {
		t.Fatalf("%d .sched files after drain, want 1", scheds)
	}

	s2, ts2 := newTestServer(t, Config{CacheDir: dir})
	status, hdr, warm := postCompile(t, ts2, req)
	if status != http.StatusOK {
		t.Fatalf("warm compile: %d\n%s", status, warm)
	}
	if cs := hdr.Get(CacheStateHeader); cs != "disk" {
		t.Fatalf("restart cache state %q, want disk", cs)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("disk-served body differs from the compile that filled it\ncold: %s\nwarm: %s", cold, warm)
	}
	if s2.mCompiles.Value() != 0 {
		t.Errorf("restart recompiled %d times for a disk-resident key", s2.mCompiles.Value())
	}

	// The disk hit was promoted: the next probe is a memory hit.
	status, hdr, again := postCompile(t, ts2, req)
	if status != http.StatusOK || hdr.Get(CacheStateHeader) != "hit" {
		t.Fatalf("post-promotion probe: status %d, cache %q, want 200 hit", status, hdr.Get(CacheStateHeader))
	}
	if !bytes.Equal(cold, again) {
		t.Fatal("promoted body differs")
	}
}

// TestKillRestartMidWrite pins crash recovery: the on-disk states a
// kill can leave — a temp file that never got renamed, and a torn frame
// renamed into place without its tail — never surface a partial entry.
// The temp file is swept at boot; the torn frame is quarantined on
// first read and the key recompiles to the exact reference bytes.
func TestKillRestartMidWrite(t *testing.T) {
	dir := t.TempDir()
	req := CompileRequest{Source: tinySource, Machine: "central"}

	// Reference bytes from an undisturbed server.
	_, tsRef := newTestServer(t, Config{})
	_, _, want := postCompile(t, tsRef, req)

	// The torn frame needs the key the server would probe; derive it by
	// compiling once into the directory, then truncating the entry —
	// exactly what a kill between write and fsync leaves behind.
	s0, ts0 := newTestServer(t, Config{CacheDir: dir})
	if status, _, body := postCompile(t, ts0, req); status != http.StatusOK {
		t.Fatalf("seed compile: %d\n%s", status, body)
	}
	s0.Drain(context.Background())
	ts0.Close()
	des, err := os.ReadDir(dir)
	if err != nil || len(des) != 1 {
		t.Fatalf("seed dir: %v entries, err %v", len(des), err)
	}
	entry := filepath.Join(dir, des[0].Name())
	frame, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entry, frame[:len(frame)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// And the other kill artifact: an orphaned temp file.
	tmp := filepath.Join(dir, strings.TrimSuffix(des[0].Name(), diskEntrySuffix)+".99"+diskTempSuffix)
	if err := os.WriteFile(tmp, frame[:10], 0o644); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, Config{CacheDir: dir})
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("boot scan left the orphaned temp file (err=%v)", err)
	}
	status, hdr, body := postCompile(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("compile over torn entry: %d\n%s", status, body)
	}
	if cs := hdr.Get(CacheStateHeader); cs != "miss" {
		t.Errorf("torn entry served as %q, want miss (recompile)", cs)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("recompiled body differs from reference\ngot:  %s\nwant: %s", body, want)
	}
	if s.disk.corrupt.Value() != 1 {
		t.Errorf("corrupt counter %d, want 1", s.disk.corrupt.Value())
	}
	if _, err := os.Stat(entry + diskQuarantineExt); err != nil {
		t.Errorf("torn entry not quarantined: %v", err)
	}
}

// TestDrainWaitsForDiskWrites pins the drain-ladder overlap with the
// disk tier: a SIGTERM (Drain) landing while an asynchronous cache
// write is in flight waits for the write, leaks no goroutine, and
// leaves a complete, servable entry on disk.
func TestDrainWaitsForDiskWrites(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	const stall = 150 * time.Millisecond
	plane := faultinject.New(1, faultinject.Rule{
		Site: faultinject.SiteCacheWrite, Nth: 1, Action: faultinject.Delay, Sleep: stall,
	})
	s := mustNew(t, Config{CacheDir: dir, Faults: plane})
	ts := newLeakCheckedServer(t, s)

	if status, _, body := postCompile(t, ts, CompileRequest{Source: tinySource, Machine: "central"}); status != http.StatusOK {
		t.Fatalf("compile: %d\n%s", status, body)
	}
	// The response is on the wire but the disk write is still inside its
	// injected stall: Drain must wait it out.
	start := time.Now()
	s.Drain(context.Background())
	if waited := time.Since(start); waited < stall/2 {
		t.Errorf("Drain returned in %v — it did not wait for the in-flight disk write (stall %v)", waited, stall)
	}
	ts.Close()

	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var entry string
	for _, de := range des {
		if strings.HasSuffix(de.Name(), diskEntrySuffix) {
			entry = filepath.Join(dir, de.Name())
		}
		if strings.HasSuffix(de.Name(), diskTempSuffix) {
			t.Errorf("drain left a temp file: %s", de.Name())
		}
	}
	if entry == "" {
		t.Fatal("no .sched entry on disk after drain")
	}
	data, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeDiskEntry(data); err != nil {
		t.Fatalf("entry written across drain does not verify: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked across drain: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStatusReportsDiskTier pins the /v1/status disk fields and the
// disk metrics names operators alert on.
func TestStatusReportsDiskTier(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{CacheDir: dir})
	if status, _, body := postCompile(t, ts, CompileRequest{Source: tinySource, Machine: "central"}); status != http.StatusOK {
		t.Fatalf("compile: %d\n%s", status, body)
	}
	s.diskWG.Wait() // the status snapshot below wants the write landed

	_, stBody := get(t, ts, "/v1/status")
	var st StatusResponse
	if err := json.Unmarshal(stBody, &st); err != nil {
		t.Fatal(err)
	}
	if st.DiskDir != dir {
		t.Errorf("status disk_dir %q, want %q", st.DiskDir, dir)
	}
	if st.DiskEntries != 1 || st.DiskBytes == 0 || st.DiskBudget != 256<<20 {
		t.Errorf("status disk snapshot: entries=%d bytes=%d budget=%d", st.DiskEntries, st.DiskBytes, st.DiskBudget)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"cschedd_disk_hits_total", "cschedd_disk_misses_total",
		"cschedd_disk_corrupt_total", "cschedd_disk_evictions_total",
		"cschedd_disk_write_errors_total", "cschedd_disk_entries", "cschedd_disk_bytes",
	} {
		if !bytes.Contains(text, []byte(name)) {
			t.Errorf("/metrics missing %s", name)
		}
	}

	// Memory-only servers must not grow disk fields.
	_, ts2 := newTestServer(t, Config{})
	_, st2Body := get(t, ts2, "/v1/status")
	var st2 StatusResponse
	if err := json.Unmarshal(st2Body, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.DiskDir != "" || st2.DiskEntries != 0 {
		t.Errorf("memory-only status carries disk fields: %+v", st2)
	}
}

// TestNewRejectsBadDiskConfig pins the only two New failure modes.
func TestNewRejectsBadDiskConfig(t *testing.T) {
	if _, err := New(Config{CacheFsync: "sometimes"}); err == nil {
		t.Error("unknown fsync policy accepted")
	}
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{CacheDir: file}); err == nil {
		t.Error("cache dir colliding with a file accepted")
	}
}

// TestRetryAfterFor pins the backlog → Retry-After mapping satellite:
// ceil(admitted/workers), clamped to [1, 30].
func TestRetryAfterFor(t *testing.T) {
	cases := []struct {
		admitted, workers, want int
	}{
		{0, 4, 1},    // empty backlog still asks for a beat
		{1, 4, 1},    // less than one generation
		{4, 4, 1},    // exactly one generation
		{5, 4, 2},    // one full generation plus one
		{8, 4, 2},    // two generations
		{9, 4, 3},    // ceil, not floor
		{120, 4, 30}, // clamped at the ceiling
		{500, 4, 30}, // stays clamped
		{3, 0, 3},    // zero workers defends as one
		{3, -2, 3},   // negative too
	}
	for _, c := range cases {
		if got := retryAfterFor(c.admitted, c.workers); got != c.want {
			t.Errorf("retryAfterFor(%d, %d) = %d, want %d", c.admitted, c.workers, got, c.want)
		}
	}
}
