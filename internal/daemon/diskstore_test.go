package daemon

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// testKey builds a distinct, well-formed (64 hex chars) cache key.
func testKey(n int) string { return fmt.Sprintf("%064x", n) }

// newTestDisk builds a disk store over a fresh temp directory.
func newTestDisk(t *testing.T, budget int64, faults *faultinject.Plane) *diskStore {
	t.Helper()
	d, err := newDiskStore(t.TempDir(), budget, false, faults, obs.NewMetrics())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// reopen builds a second store over an existing directory, simulating a
// daemon restart.
func reopen(t *testing.T, d *diskStore, faults *faultinject.Plane) *diskStore {
	t.Helper()
	nd, err := newDiskStore(d.dir, d.budget, d.fsync, faults, obs.NewMetrics())
	if err != nil {
		t.Fatal(err)
	}
	return nd
}

func TestDiskEntryRoundTrip(t *testing.T) {
	for _, body := range [][]byte{nil, []byte{}, []byte("x"), bytes.Repeat([]byte("schedule"), 1000)} {
		frame := encodeDiskEntry(body)
		got, err := decodeDiskEntry(frame)
		if err != nil {
			t.Fatalf("decode(encode(%d bytes)): %v", len(body), err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("round trip of %d bytes mutated the body", len(body))
		}
	}
}

func TestDiskEntryRejectsDamage(t *testing.T) {
	frame := encodeDiskEntry([]byte(`{"ii":3}` + "\n"))
	damage := map[string][]byte{
		"empty":        {},
		"short-header": frame[:diskHeaderLen-1],
		"torn-body":    frame[:len(frame)-3],
		"bad-magic":    append([]byte("XXXX"), frame[4:]...),
		"extra-bytes":  append(append([]byte{}, frame...), 'z'),
	}
	flipped := append([]byte{}, frame...)
	flipped[len(flipped)-1] ^= 1
	damage["flipped-body-byte"] = flipped
	flippedSum := append([]byte{}, frame...)
	flippedSum[20] ^= 1
	damage["flipped-checksum-byte"] = flippedSum

	for name, data := range damage {
		if body, err := decodeDiskEntry(data); err == nil {
			t.Errorf("%s: decoded %d body bytes, want error", name, len(body))
		} else if !errors.Is(err, errDiskFrame) {
			t.Errorf("%s: error %v does not wrap errDiskFrame", name, err)
		}
	}
}

// FuzzDiskEntry drives the frame decoder with arbitrary bytes (it must
// never panic and never accept a frame whose checksum disagrees with
// the body) and round-trips the input through the encoder.
func FuzzDiskEntry(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("CSD1"))
	f.Add(encodeDiskEntry([]byte(`{"ii":3}` + "\n")))
	f.Add(encodeDiskEntry(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		if body, err := decodeDiskEntry(data); err == nil {
			// Anything the decoder accepts must re-encode to the exact
			// input frame: accepted frames are canonical.
			if !bytes.Equal(encodeDiskEntry(body), data) {
				t.Fatalf("accepted frame is not canonical (%d bytes)", len(data))
			}
		}
		frame := encodeDiskEntry(data)
		body, err := decodeDiskEntry(frame)
		if err != nil {
			t.Fatalf("decode(encode(...)): %v", err)
		}
		if !bytes.Equal(body, data) {
			t.Fatal("round trip mutated the body")
		}
	})
}

func TestDiskStoreWriteReadRestart(t *testing.T) {
	d := newTestDisk(t, 1<<20, nil)
	key, body := testKey(1), []byte(`{"ii":3}`+"\n")

	if _, ok := d.get(key); ok {
		t.Fatal("hit on an empty store")
	}
	d.put(key, body)
	got, ok := d.get(key)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("get after put: ok=%v body=%q", ok, got)
	}
	if d.hits.Value() != 1 || d.misses.Value() != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", d.hits.Value(), d.misses.Value())
	}

	// A restart (fresh store, same directory) must serve the same bytes.
	nd := reopen(t, d, nil)
	got, ok = nd.get(key)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("get after restart: ok=%v body=%q", ok, got)
	}
	if entries, bytes_ := nd.stats(); entries != 1 || bytes_ != int64(len(encodeDiskEntry(body))) {
		t.Errorf("restart stats: %d entries, %d bytes", entries, bytes_)
	}
}

func TestDiskStoreQuarantine(t *testing.T) {
	d := newTestDisk(t, 1<<20, nil)
	key, body := testKey(2), []byte(`{"ii":4}`+"\n")
	d.put(key, body)

	// Corrupt the file on disk behind the store's back.
	path := d.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := d.get(key); ok {
		t.Fatal("served a corrupt entry")
	}
	if d.corrupt.Value() != 1 {
		t.Errorf("corrupt counter %d, want 1", d.corrupt.Value())
	}
	if _, err := os.Stat(path + diskQuarantineExt); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt entry still at its serving path (err=%v)", err)
	}
	// The entry is gone from the index: further probes are plain misses.
	if _, ok := d.get(key); ok {
		t.Fatal("hit after quarantine")
	}
	if d.corrupt.Value() != 1 {
		t.Errorf("second probe re-quarantined: corrupt=%d", d.corrupt.Value())
	}

	// A restart must not index the .bad file.
	nd := reopen(t, d, nil)
	if entries, _ := nd.stats(); entries != 0 {
		t.Errorf("restart indexed %d entries over a quarantined dir", entries)
	}
}

func TestDiskStoreInjectedFaults(t *testing.T) {
	key, body := testKey(3), []byte(`{"ii":5}`+"\n")

	t.Run("read-err-is-transient", func(t *testing.T) {
		plane := faultinject.New(1, faultinject.Rule{
			Site: faultinject.SiteCacheRead, Nth: 1, Action: faultinject.Err,
		})
		d := newTestDisk(t, 1<<20, plane)
		d.put(key, body)
		if _, ok := d.get(key); ok {
			t.Fatal("hit through an injected read error")
		}
		// The rule fired only once (every=0): the entry survived and the
		// next probe hits.
		if got, ok := d.get(key); !ok || !bytes.Equal(got, body) {
			t.Fatalf("entry did not survive a transient read error: ok=%v", ok)
		}
	})

	t.Run("read-torn-quarantines", func(t *testing.T) {
		plane := faultinject.New(1, faultinject.Rule{
			Site: faultinject.SiteCacheRead, Nth: 1, Action: faultinject.Torn,
		})
		d := newTestDisk(t, 1<<20, plane)
		d.put(key, body)
		if _, ok := d.get(key); ok {
			t.Fatal("served a torn read")
		}
		if d.corrupt.Value() != 1 {
			t.Errorf("corrupt counter %d, want 1", d.corrupt.Value())
		}
	})

	t.Run("write-err-drops-entry", func(t *testing.T) {
		plane := faultinject.New(1, faultinject.Rule{
			Site: faultinject.SiteCacheWrite, Nth: 1, Action: faultinject.Err,
		})
		d := newTestDisk(t, 1<<20, plane)
		d.put(key, body)
		if d.writeErrs.Value() != 1 {
			t.Errorf("write error counter %d, want 1", d.writeErrs.Value())
		}
		if _, err := os.Stat(d.path(key)); !os.IsNotExist(err) {
			t.Errorf("failed write left a file (err=%v)", err)
		}
		// The store still works after the transient: the next put lands.
		d.put(key, body)
		if got, ok := d.get(key); !ok || !bytes.Equal(got, body) {
			t.Fatalf("put after write error: ok=%v", ok)
		}
	})

	t.Run("write-torn-never-serves", func(t *testing.T) {
		plane := faultinject.New(1, faultinject.Rule{
			Site: faultinject.SiteCacheWrite, Nth: 1, Action: faultinject.Torn,
		})
		d := newTestDisk(t, 1<<20, plane)
		d.put(key, body)
		if _, ok := d.get(key); ok {
			t.Fatal("served a torn write")
		}
		if d.corrupt.Value() != 1 {
			t.Errorf("corrupt counter %d, want 1", d.corrupt.Value())
		}
		// A restart over the torn directory must also refuse it.
		nd := reopen(t, d, nil)
		if _, ok := nd.get(key); ok {
			t.Fatal("restart served a torn write")
		}
	})

	t.Run("write-corrupt-never-serves", func(t *testing.T) {
		plane := faultinject.New(1, faultinject.Rule{
			Site: faultinject.SiteCacheWrite, Nth: 1, Action: faultinject.Corrupt,
		})
		d := newTestDisk(t, 1<<20, plane)
		d.put(key, body)
		if _, ok := d.get(key); ok {
			t.Fatal("served a corrupt write")
		}
		if d.corrupt.Value() != 1 {
			t.Errorf("corrupt counter %d, want 1", d.corrupt.Value())
		}
	})
}

func TestDiskStoreEvictionAndReplacement(t *testing.T) {
	body := []byte(strings.Repeat("x", 100))
	frameSize := int64(len(encodeDiskEntry(body)))
	d := newTestDisk(t, 3*frameSize, nil)

	for i := 0; i < 3; i++ {
		d.put(testKey(i), body)
	}
	if entries, _ := d.stats(); entries != 3 {
		t.Fatalf("%d entries resident, want 3", entries)
	}

	// Replacing a resident key charges the delta, evicts nothing.
	d.put(testKey(1), body)
	if d.evictions.Value() != 0 {
		t.Fatalf("replacement counted as eviction: %d", d.evictions.Value())
	}
	if entries, bytes_ := d.stats(); entries != 3 || bytes_ != 3*frameSize {
		t.Fatalf("after replacement: %d entries, %d bytes", entries, bytes_)
	}

	// A fourth key exceeds the budget: the least-recently-used entry
	// (key 0 — keys 1 and 2 were touched more recently) is evicted.
	d.put(testKey(3), body)
	if d.evictions.Value() != 1 {
		t.Fatalf("evictions %d, want 1", d.evictions.Value())
	}
	if _, ok := d.get(testKey(0)); ok {
		t.Error("evicted key still readable")
	}
	if _, err := os.Stat(d.path(testKey(0))); !os.IsNotExist(err) {
		t.Errorf("evicted entry's file survived (err=%v)", err)
	}
	for _, k := range []int{1, 2, 3} {
		if _, ok := d.get(testKey(k)); !ok {
			t.Errorf("key %d missing after eviction of key 0", k)
		}
	}

	// An over-budget body is refused outright.
	d.put(testKey(9), bytes.Repeat(body, 10))
	if _, ok := d.get(testKey(9)); ok {
		t.Error("over-budget body was cached")
	}
}

func TestDiskStoreScan(t *testing.T) {
	d := newTestDisk(t, 1<<20, nil)
	body := []byte(`{"ii":6}` + "\n")
	d.put(testKey(1), body)

	// Plant crash residue and stray files the scan must not index.
	mustWrite := func(name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(d.dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mustWrite(testKey(2)+".12"+diskTempSuffix, []byte("partial"))
	mustWrite(testKey(3)+diskEntrySuffix+diskQuarantineExt, []byte("quarantined"))
	mustWrite("README.txt", []byte("not a cache entry"))
	mustWrite("nothex"+strings.Repeat("0", 58)+diskEntrySuffix, encodeDiskEntry(body))

	nd := reopen(t, d, nil)
	if entries, _ := nd.stats(); entries != 1 {
		t.Fatalf("scan indexed %d entries, want 1", entries)
	}
	if _, err := os.Stat(filepath.Join(d.dir, testKey(2)+".12"+diskTempSuffix)); !os.IsNotExist(err) {
		t.Errorf("scan left crash residue behind (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(d.dir, testKey(3)+diskEntrySuffix+diskQuarantineExt)); err != nil {
		t.Errorf("scan deleted quarantine evidence: %v", err)
	}
	if got, ok := nd.get(testKey(1)); !ok || !bytes.Equal(got, body) {
		t.Fatalf("scanned entry unreadable: ok=%v", ok)
	}
}

func TestDiskStoreScanEvictsOldestFirst(t *testing.T) {
	d := newTestDisk(t, 1<<20, nil)
	body := []byte(strings.Repeat("y", 100))
	frameSize := int64(len(encodeDiskEntry(body)))
	for i := 0; i < 4; i++ {
		d.put(testKey(i), body)
		// Distinct mtimes, oldest first: the filesystem clock may be
		// coarse, so stamp them explicitly.
		mt := time.Unix(int64(1700000000+i*10), 0)
		if err := os.Chtimes(d.path(testKey(i)), mt, mt); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen with room for only two frames: the two oldest go.
	nd, err := newDiskStore(d.dir, 2*frameSize, false, nil, obs.NewMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if nd.evictions.Value() != 2 {
		t.Fatalf("scan evicted %d, want 2", nd.evictions.Value())
	}
	for _, k := range []int{0, 1} {
		if _, ok := nd.get(testKey(k)); ok {
			t.Errorf("old key %d survived the scan eviction", k)
		}
	}
	for _, k := range []int{2, 3} {
		if _, ok := nd.get(testKey(k)); !ok {
			t.Errorf("recent key %d was evicted", k)
		}
	}
}

func TestValidCacheKey(t *testing.T) {
	if !validCacheKey(testKey(7)) {
		t.Error("rejected a well-formed key")
	}
	for _, bad := range []string{
		"", "short", strings.Repeat("0", 63), strings.Repeat("0", 65),
		strings.Repeat("G", 64), strings.Repeat("A", 64), // upper hex is not canonical
		strings.Repeat("0", 63) + "/",
	} {
		if validCacheKey(bad) {
			t.Errorf("accepted %q", bad)
		}
	}
}
