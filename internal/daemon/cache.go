package daemon

import (
	"container/list"
	"sync"
)

// cache is the in-memory schedule cache: finished response bodies keyed
// by the content-addressed Key, held under an LRU byte budget. Bodies
// are immutable once stored (get returns the stored slice; callers only
// write it to the wire), so a hit costs one map lookup and a list move.
type cache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used
	byKey  map[string]*list.Element
}

type centry struct {
	key  string
	body []byte
}

func newCache(budget int64) *cache {
	return &cache{budget: budget, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// entrySize charges an entry for its body and key bytes.
func entrySize(key string, body []byte) int64 { return int64(len(key) + len(body)) }

// get returns the cached body for key, refreshing its recency.
func (c *cache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*centry).body, true
}

// put stores body under key and returns how many entries the byte
// budget evicted to make room. Storing over an existing key replaces
// its body and charges only the size delta — a replacement is not an
// eviction (the key never left the cache), so it contributes nothing to
// the returned count. A body larger than the whole budget is not cached
// at all (it would only evict everything and then miss anyway).
func (c *cache) put(key string, body []byte) (evicted int) {
	size := entrySize(key, body)
	if size > c.budget {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		// Identical keys normally carry identical bodies; when they do
		// not (a disk-tier promotion racing a fresh fill, say), the
		// replacement adjusts the accounting by the delta.
		e := el.Value.(*centry)
		c.bytes += size - entrySize(e.key, e.body)
		e.body = body
		c.ll.MoveToFront(el)
	} else {
		c.byKey[key] = c.ll.PushFront(&centry{key: key, body: body})
		c.bytes += size
	}
	for c.bytes > c.budget {
		back := c.ll.Back()
		e := back.Value.(*centry)
		c.ll.Remove(back)
		delete(c.byKey, e.key)
		c.bytes -= entrySize(e.key, e.body)
		evicted++
	}
	return evicted
}

// stats reports entry count and resident bytes.
func (c *cache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey), c.bytes
}
