package daemon

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
)

// Key is the content-addressed schedule-cache key: the hex sha256 of
//
//	lowered IR × machine fingerprint × canonical scheduling config.
//
// The three sections are length-framed so no concatenation of one can
// masquerade as another. The IR section is the kernel's canonical dump
// (operations, operands, blocks, source lines); the machine section is
// FormatText, whose ParseText round-trip reconstructs the same stub
// tables; the config section is canonicalConfig below.
//
// Two requests collide on a key iff the compiler would make identical
// decisions for both — which is exactly when serving one's cached
// response for the other is sound.
func Key(k *ir.Kernel, m *machine.Machine, opts core.Options, portfolio bool) string {
	h := sha256.New()
	for _, section := range []string{k.Dump(), m.FormatText(), canonicalConfig(opts, portfolio)} {
		fmt.Fprintf(h, "%d\n", len(section))
		io.WriteString(h, section)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// fingerprintHex is the hex sha256 of the schedule's canonical
// fingerprint — the compact bit-identity witness served in responses.
func fingerprintHex(s *core.Schedule) string {
	sum := sha256.Sum256([]byte(s.Fingerprint()))
	return hex.EncodeToString(sum[:])
}

// canonicalConfig renders every schedule-affecting configuration field
// in a fixed order with statically defaulted zero fields resolved
// (Options.Canonical), so the encoding — and therefore the cache key —
// is insensitive to how a request spelled its options: field order
// cannot matter (the fields are emitted here, not echoed from the
// request) and a zero value hashes identically to its spelled-out
// default. The passive fields (Tracer) and the test-only fault plane
// are excluded: they never change the schedule. The degradation ladder
// and the portfolio switch are included: both can change which schedule
// wins.
func canonicalConfig(opts core.Options, portfolio bool) string {
	o := opts.Canonical()
	pc := o.Pipeline()
	var b strings.Builder
	fmt.Fprintf(&b, "order=%s preassign=%t cost=%t regaware=%t\n",
		pc.Order, pc.Preassign, pc.CostHeuristic, pc.RegisterAware)
	fmt.Fprintf(&b, "maxii=%d perm=%d cand=%d scan=%d attempt=%d\n",
		o.MaxII, o.PermBudget, o.MaxCandidates, o.ScanWindow, o.AttemptBudget)
	fmt.Fprintf(&b, "portfolio=%t\n", portfolio)
	if o.Degrade != nil {
		for _, r := range o.Degrade.Rungs {
			fmt.Fprintf(&b, "rung name=%s maxii=%d boost=%d perm=%d attempt=%d scan=%d",
				r.Name, r.MaxII, r.MaxIIBoost, r.PermBudget, r.AttemptBudget, r.ScanWindow)
			if r.Pipeline != nil {
				fmt.Fprintf(&b, " order=%s preassign=%t cost=%t regaware=%t",
					r.Pipeline.Order, r.Pipeline.Preassign, r.Pipeline.CostHeuristic, r.Pipeline.RegisterAware)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
