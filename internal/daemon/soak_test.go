package daemon

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// soakSeed pins the whole soak trace: the request mix, the option
// variations, and (via the plane's own seed) where faults land.
const soakSeed = 0x5eedc5ced

// splitmix64 is the trace PRNG — tiny, seedable, and stable across Go
// releases, unlike math/rand's shuffling.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// soakTrace derives a mixed request trace from the seed: cache-hitting
// repeats, distinct-key variants, malformed requests, schedule
// failures, and degradation rescues, in a deterministic shuffle.
func soakTrace(seed uint64) []any {
	machines := []string{"fig5", "central", "distributed"}
	perms := []int{0, 512, 1024}
	trace := make([]any, 0, 120)
	for i := 0; i < 120; i++ {
		switch r := splitmix64(&seed) % 10; {
		case r < 5: // plain compiles; repeats hit the cache
			trace = append(trace, CompileRequest{
				Kernel:  "fig4",
				Machine: machines[splitmix64(&seed)%3],
				Options: &OptionsSpec{PermBudget: perms[splitmix64(&seed)%3]},
			})
		case r < 6: // invalid input -> 400
			trace = append(trace, CompileRequest{Kernel: "no-such-kernel"})
		case r < 7: // malformed body -> 400
			trace = append(trace, `{"kernel": "fig4", "unknown_field": 1}`)
		case r < 8: // schedule failure -> 422
			trace = append(trace, CompileRequest{
				Kernel: "fig4", Machine: "fig5",
				Options: &OptionsSpec{AttemptBudget: 1},
			})
		default: // degradation-ladder rescue -> 200 degraded
			trace = append(trace, CompileRequest{
				Kernel: "fig4", Machine: "fig5",
				Options: &OptionsSpec{AttemptBudget: 1}, Degrade: true,
			})
		}
	}
	return trace
}

// soakPlane arms the fault plane the trace replays through: every 7th
// pass run panics (recovered into structured 500s), and every 11th
// solver window exhausts its budget (more schedule failures). Both
// rules advance deterministically with the backing-compile stream, so
// two replays see identical faults.
func soakPlane() *faultinject.Plane {
	return faultinject.New(soakSeed,
		faultinject.Rule{Site: faultinject.SitePass, Label: "place", Nth: 5, Every: 7, Action: faultinject.Panic},
		faultinject.Rule{Site: faultinject.SiteSolver, Nth: 3, Every: 11, Action: faultinject.Exhaust},
	)
}

type soakResult struct {
	status int
	body   []byte
}

// replaySoak runs the full trace sequentially against a fresh server
// and returns the (status, body) stream plus the server for draining.
// The whole observability plane is armed — access logging, the flight
// recorder, trace capture for errors and every compile — so the
// byte-identity the soak proves is proved with the plane on.
func replaySoak(t *testing.T) []soakResult {
	t.Helper()
	s := mustNew(t, Config{
		Workers:     2,
		Faults:      soakPlane(),
		Logger:      slog.New(slog.NewJSONHandler(io.Discard, nil)),
		TraceSlow:   time.Nanosecond,
		TraceErrors: true,
	})
	ts := newLeakCheckedServer(t, s)
	var out []soakResult
	for _, req := range soakTrace(soakSeed) {
		status, hdr, body := postCompile(t, ts, req)
		if hdr.Get(RequestIDHeader) == "" {
			t.Errorf("soak response (status %d) missing %s", status, RequestIDHeader)
		}
		out = append(out, soakResult{status, body})
	}
	s.Drain(context.Background())
	ts.Close()
	return out
}

// TestSoakDeterministic is the soak gate: the same seed replayed on two
// fresh servers — faults, panics, cache hits and all — produces
// byte-identical (status, body) streams, and neither replay leaks a
// goroutine past its drain.
func TestSoakDeterministic(t *testing.T) {
	before := runtime.NumGoroutine()

	run1 := replaySoak(t)
	run2 := replaySoak(t)

	if len(run1) != len(run2) {
		t.Fatalf("replay lengths differ: %d vs %d", len(run1), len(run2))
	}
	var statuses [6]int
	for i := range run1 {
		statuses[run1[i].status/100]++
		if run1[i].status != run2[i].status {
			t.Fatalf("request %d: status %d vs %d", i, run1[i].status, run2[i].status)
		}
		if !bytes.Equal(run1[i].body, run2[i].body) {
			t.Fatalf("request %d: bodies differ across replays\nrun1: %s\nrun2: %s",
				i, run1[i].body, run2[i].body)
		}
	}
	// The trace must actually be mixed: successes, client errors, and
	// fault-injected server errors all present, or the soak proves less
	// than it claims.
	var mix []string
	for class, n := range statuses {
		if n > 0 {
			mix = append(mix, fmt.Sprintf("%dxx:%d", class, n))
		}
	}
	t.Logf("soak status mix: %v", mix)
	for _, class := range []int{2, 4, 5} {
		if statuses[class] == 0 {
			t.Errorf("trace exercised no %dxx responses", class)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked across soak drains: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
