package daemon

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/machine"
)

// TestKeyCanonicalizesOptionDefaults is the satellite contract: two
// option structs that differ only in spelling a default as zero — or in
// the order their JSON fields arrived — address the same cache entry.
func TestKeyCanonicalizesOptionDefaults(t *testing.T) {
	k := kernels.Motivating()
	m := machine.MotivatingExample()

	zero := core.Options{}
	spelled := core.Options{
		PermBudget:    core.DefaultPermBudget,
		MaxCandidates: core.DefaultMaxCandidates,
		AttemptBudget: core.DefaultAttemptBudget,
	}
	if Key(k, m, zero, false) != Key(k, m, spelled, false) {
		t.Error("zero options and spelled-out defaults produce different keys")
	}

	// JSON field order cannot matter: the canonical encoding emits
	// fields in its own fixed order, so two orderings of the same
	// request options decode to the same key.
	var a, b OptionsSpec
	if err := json.Unmarshal([]byte(`{"perm_budget": 512, "max_ii": 8, "two_phase": true}`), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(`{"two_phase": true, "max_ii": 8, "perm_budget": 512}`), &b); err != nil {
		t.Fatal(err)
	}
	if Key(k, m, a.options(), false) != Key(k, m, b.options(), false) {
		t.Error("JSON field order changed the key")
	}
}

// TestKeyIgnoresSpeculation pins the speculative ladder's cache
// contract: Speculate is a latency knob whose schedules are
// bit-identical to the sequential ladder's, so no worker count — and no
// shared pool — may ever split the cache key.
func TestKeyIgnoresSpeculation(t *testing.T) {
	k := kernels.Motivating()
	m := machine.MotivatingExample()
	base := Key(k, m, core.Options{}, false)
	for _, n := range []int{1, 2, 8} {
		if Key(k, m, core.Options{Speculate: n}, false) != base {
			t.Errorf("Speculate=%d changed the key", n)
		}
	}
	if Key(k, m, core.Options{Speculate: 8, Pool: core.NewPool(8)}, false) != base {
		t.Error("a shared pool changed the key")
	}
}

// TestKeySensitivity pins that every schedule-affecting input moves the
// key, and that the excluded passive fields do not.
func TestKeySensitivity(t *testing.T) {
	k := kernels.Motivating()
	m := machine.MotivatingExample()
	base := Key(k, m, core.Options{}, false)

	for name, variant := range map[string]string{
		"kernel":    Key(kernels.ByName("DCT").MustKernel(), m, core.Options{}, false),
		"machine":   Key(k, machine.Central(), core.Options{}, false),
		"budget":    Key(k, m, core.Options{PermBudget: 512}, false),
		"pipeline":  Key(k, m, core.Options{CycleOrder: true}, false),
		"portfolio": Key(k, m, core.Options{}, true),
		"ladder":    Key(k, m, core.Options{Degrade: core.DefaultDegradeLadder()}, false),
	} {
		if variant == base {
			t.Errorf("changing %s did not change the key", name)
		}
	}

	// The fault plane is test-only and never changes a schedule's
	// identity; it must not split the cache.
	withFaults := core.Options{}
	withFaults.Faults = nil // explicit: planes are excluded by construction
	if Key(k, m, withFaults, false) != base {
		t.Error("fault plane changed the key")
	}

	// Distinct rung configurations are distinct keys.
	l1 := &core.DegradeLadder{Rungs: []core.DegradeRung{{Name: "a", PermBudget: 1}}}
	l2 := &core.DegradeLadder{Rungs: []core.DegradeRung{{Name: "a", PermBudget: 2}}}
	if Key(k, m, core.Options{Degrade: l1}, false) == Key(k, m, core.Options{Degrade: l2}, false) {
		t.Error("different ladders share a key")
	}
}

// TestCanonicalOptionsScheduleIdentically pins that Canonical is
// behavior-preserving: the canonicalized options compile to a
// bit-identical schedule.
func TestCanonicalOptionsScheduleIdentically(t *testing.T) {
	k := kernels.Motivating()
	m := machine.MotivatingExample()
	s1, err := core.Compile(k, m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := core.Compile(k, m, core.Options{}.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Error("canonicalized options changed the schedule")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(100)
	big := make([]byte, 40)
	c.put("a", big) // 41 bytes
	c.put("b", big) // 82 bytes
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted prematurely")
	}
	// a is now most recent; inserting c (41 bytes) must evict b.
	c.put("c", big)
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a (recently used) was evicted instead")
	}
	entries, bytes := c.stats()
	if entries != 2 || bytes != 82 {
		t.Errorf("stats after eviction: %d entries %d bytes", entries, bytes)
	}
	// An entry larger than the whole budget is refused outright.
	c.put("huge", make([]byte, 200))
	if _, ok := c.get("huge"); ok {
		t.Error("over-budget entry was cached")
	}
}
