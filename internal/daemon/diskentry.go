package daemon

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// The on-disk frame of one schedule-cache entry. Every entry is a
// single self-verifying file:
//
//	offset  0: magic "CSD1" (4 bytes)
//	offset  4: body length, big-endian uint64 (8 bytes)
//	offset 12: sha256 of the body (32 bytes)
//	offset 44: body (a served response, newline included)
//
// The length frame and the checksum are redundant on purpose: a torn
// write (crash mid-flush) fails the length check without hashing
// anything, and silent media corruption fails the checksum. Either
// failure quarantines the file — a frame that does not verify is never
// served.

const (
	diskMagic         = "CSD1"
	diskHeaderLen     = 4 + 8 + sha256.Size
	diskEntrySuffix   = ".sched"
	diskQuarantineExt = ".bad"
	diskTempSuffix    = ".tmp"
)

// errDiskFrame distinguishes structural decode failures from the
// filesystem errors around them.
var errDiskFrame = errors.New("disk cache frame does not verify")

// encodeDiskEntry frames body for disk. The returned buffer is freshly
// allocated; body is not retained.
func encodeDiskEntry(body []byte) []byte {
	out := make([]byte, diskHeaderLen+len(body))
	copy(out, diskMagic)
	binary.BigEndian.PutUint64(out[4:12], uint64(len(body)))
	sum := sha256.Sum256(body)
	copy(out[12:diskHeaderLen], sum[:])
	copy(out[diskHeaderLen:], body)
	return out
}

// decodeDiskEntry verifies a frame and returns its body (aliasing
// data). It never panics and never accepts a frame whose length or
// checksum disagrees with the body — corrupt-accepted would mean
// serving a damaged schedule, the one failure mode the disk tier must
// exclude. Errors wrap errDiskFrame and say which check failed.
func decodeDiskEntry(data []byte) ([]byte, error) {
	if len(data) < diskHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the %d-byte header", errDiskFrame, len(data), diskHeaderLen)
	}
	if string(data[:4]) != diskMagic {
		return nil, fmt.Errorf("%w: bad magic %q", errDiskFrame, data[:4])
	}
	bodyLen := binary.BigEndian.Uint64(data[4:12])
	if bodyLen != uint64(len(data)-diskHeaderLen) {
		return nil, fmt.Errorf("%w: frame says %d body bytes, file holds %d (torn write?)", errDiskFrame, bodyLen, len(data)-diskHeaderLen)
	}
	body := data[diskHeaderLen:]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(data[12:diskHeaderLen]) {
		return nil, fmt.Errorf("%w: checksum mismatch", errDiskFrame)
	}
	return body, nil
}
