package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// tinySource is a minimal kasm kernel that schedules in microseconds on
// every catalog machine.
const tinySource = `kernel tiny {
  stream out @ 512;
  loop i = 0 .. 8 {
    out[i] = i * 3;
  }
}
`

// mustNew builds a Server from cfg, failing the test on config errors.
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newTestServer starts an httptest server around a daemon built from
// cfg and registers cleanup: drain, then close.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := mustNew(t, cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
		ts.Close()
	})
	return s, ts
}

// postCompile marshals req and POSTs it, returning the response status,
// headers, and body.
func postCompile(t *testing.T, ts *httptest.Server, req any) (int, http.Header, []byte) {
	t.Helper()
	var body []byte
	switch v := req.(type) {
	case string:
		body = []byte(v)
	default:
		var err error
		body, err = json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// get fetches a path, returning status and body.
func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// decodeError unmarshals an error body, failing the test on mismatch
// between the embedded status and the transport status.
func decodeError(t *testing.T, status int, body []byte) ErrorDetail {
	t.Helper()
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body is not the ErrorBody shape: %v\n%s", err, body)
	}
	if eb.Error.Status != status {
		t.Errorf("body status %d != transport status %d", eb.Error.Status, status)
	}
	if eb.Error.Kind == "" || eb.Error.Reason == "" {
		t.Errorf("error body missing kind/reason: %+v", eb.Error)
	}
	return eb.Error
}

func TestHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if status, body := get(t, ts, "/healthz"); status != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("healthz: %d %q", status, body)
	}
	s.Drain(context.Background())
	if status, _ := get(t, ts, "/healthz"); status != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", status)
	}
	// Compile requests are refused during drain with the error shape.
	status, _, body := postCompile(t, ts, CompileRequest{Kernel: "fig4", Machine: "fig5"})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("compile while draining: %d, want 503", status)
	}
	if d := decodeError(t, status, body); d.Kind != "draining" {
		t.Errorf("drain error kind %q", d.Kind)
	}
	// Status and metrics keep serving during drain (the shutdown path
	// scrapes a final snapshot).
	if status, _ := get(t, ts, "/v1/status"); status != http.StatusOK {
		t.Errorf("status while draining: %d", status)
	}
	if status, _ := get(t, ts, "/metrics"); status != http.StatusOK {
		t.Errorf("metrics while draining: %d", status)
	}
}

func TestCompileNamedKernelAndCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, hdr, body := postCompile(t, ts, CompileRequest{Kernel: "fig4", Machine: "fig5"})
	if status != http.StatusOK {
		t.Fatalf("compile: %d\n%s", status, body)
	}
	if got := hdr.Get("X-Cschedd-Cache"); got != "miss" {
		t.Errorf("cold compile cache header %q, want miss", got)
	}
	var resp CompileResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.II != 1 || resp.Kernel != "fig4" || resp.Machine != "fig5" {
		t.Errorf("unexpected summary: %+v", resp)
	}
	if len(resp.Key) != 64 || len(resp.Fingerprint) != 64 {
		t.Errorf("key/fingerprint not hex sha256: %q %q", resp.Key, resp.Fingerprint)
	}
	if !strings.Contains(resp.Schedule, "schedule fig4 on fig5") {
		t.Errorf("schedule dump missing banner:\n%s", resp.Schedule)
	}
	if len(resp.Passes) == 0 || resp.Utilization == nil || len(resp.Utilization.Resources) == 0 {
		t.Error("response missing passes/utilization")
	}

	status2, hdr2, body2 := postCompile(t, ts, CompileRequest{Kernel: "fig4", Machine: "fig5"})
	if status2 != http.StatusOK || hdr2.Get("X-Cschedd-Cache") != "hit" {
		t.Fatalf("second compile: %d cache=%q", status2, hdr2.Get("X-Cschedd-Cache"))
	}
	if !bytes.Equal(body, body2) {
		t.Error("cache hit body differs from the cold compile body")
	}

	// A speculative request addresses the same entry: the schedule is
	// bit-identical, so the worker count never splits the cache.
	status3, hdr3, body3 := postCompile(t, ts, CompileRequest{
		Kernel: "fig4", Machine: "fig5", Options: &OptionsSpec{Speculate: 8},
	})
	if status3 != http.StatusOK || hdr3.Get("X-Cschedd-Cache") != "hit" {
		t.Fatalf("speculative compile: %d cache=%q", status3, hdr3.Get("X-Cschedd-Cache"))
	}
	if !bytes.Equal(body, body3) {
		t.Error("speculative request body differs from the sequential body")
	}
}

func TestCompileSourceKernel(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _, body := postCompile(t, ts, CompileRequest{Source: tinySource, Machine: "central"})
	if status != http.StatusOK {
		t.Fatalf("compile: %d\n%s", status, body)
	}
	var resp CompileResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Kernel != "tiny" || resp.II < 1 {
		t.Errorf("unexpected summary: %+v", resp)
	}
}

func TestCompilePortfolio(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	status, _, body := postCompile(t, ts, CompileRequest{Kernel: "fig4", Machine: "fig5", Portfolio: true})
	if status != http.StatusOK {
		t.Fatalf("portfolio compile: %d\n%s", status, body)
	}
	var resp CompileResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	// The portfolio switch is part of the cache key: the sequential
	// compile of the same inputs must not collide with it.
	status2, _, body2 := postCompile(t, ts, CompileRequest{Kernel: "fig4", Machine: "fig5"})
	if status2 != http.StatusOK {
		t.Fatalf("sequential compile: %d", status2)
	}
	var resp2 CompileResponse
	if err := json.Unmarshal(body2, &resp2); err != nil {
		t.Fatal(err)
	}
	if resp.Key == resp2.Key {
		t.Error("portfolio and sequential requests share a cache key")
	}
}

// TestCompileErrorShapes walks every 4xx/5xx error shape of the compile
// endpoint.
func TestCompileErrorShapes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name       string
		req        any
		wantStatus int
		wantKind   string
	}{
		{"malformed JSON", `{"kernel": `, http.StatusBadRequest, "bad-request"},
		{"unknown field", `{"kernle": "fig4"}`, http.StatusBadRequest, "bad-request"},
		{"no kernel", CompileRequest{Machine: "fig5"}, http.StatusBadRequest, "bad-request"},
		{"kernel and source", CompileRequest{Kernel: "fig4", Source: tinySource}, http.StatusBadRequest, "bad-request"},
		{"unknown kernel", CompileRequest{Kernel: "NoSuchKernel"}, http.StatusBadRequest, "invalid-input"},
		{"bad source", CompileRequest{Source: "kernel oops {"}, http.StatusBadRequest, "invalid-input"},
		{"unknown machine", CompileRequest{Kernel: "fig4", Machine: "hexagonal"}, http.StatusBadRequest, "invalid-input"},
		{"machine and machine_text", CompileRequest{Kernel: "fig4", Machine: "fig5", MachineText: "machine m"}, http.StatusBadRequest, "bad-request"},
		{"bad machine_text", CompileRequest{Kernel: "fig4", MachineText: "not a machine"}, http.StatusBadRequest, "invalid-input"},
		{"negative option", CompileRequest{Kernel: "fig4", Machine: "fig5", Options: &OptionsSpec{MaxII: -1}}, http.StatusBadRequest, "invalid-input"},
		{"candidate cap below floor", CompileRequest{Kernel: "fig4", Machine: "distributed", Options: &OptionsSpec{MaxCandidates: 1}}, http.StatusBadRequest, "invalid-input"},
		{"schedule failure", CompileRequest{Kernel: "fig4", Machine: "fig5", Options: &OptionsSpec{AttemptBudget: 1}}, http.StatusUnprocessableEntity, "schedule"},
		{"deadline exceeded", CompileRequest{Kernel: "FIR-FP", Machine: "distributed", TimeoutMS: 1}, http.StatusGatewayTimeout, "deadline-exceeded"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, _, body := postCompile(t, ts, tc.req)
			if status != tc.wantStatus {
				t.Fatalf("status %d, want %d\n%s", status, tc.wantStatus, body)
			}
			d := decodeError(t, status, body)
			if d.Kind != tc.wantKind {
				t.Errorf("kind %q, want %q (reason: %s)", d.Kind, tc.wantKind, d.Reason)
			}
			// The shared mapping holds on every compile failure: the
			// HTTP status corresponds to the CLI exit code class.
			if tc.wantKind == "schedule" && ExitCodeForStatus(status) != 1 {
				t.Errorf("exit mapping for %d: %d", status, ExitCodeForStatus(status))
			}
			if tc.wantKind == "deadline-exceeded" && ExitCodeForStatus(status) != ExitCancelled {
				t.Errorf("exit mapping for %d: %d", status, ExitCodeForStatus(status))
			}
		})
	}
	// A schedule failure carries the failing pass and machine identity.
	status, _, body := postCompile(t, ts, CompileRequest{Kernel: "fig4", Machine: "fig5", Options: &OptionsSpec{AttemptBudget: 1}})
	d := decodeError(t, status, body)
	if d.Pass == "" || d.Kernel != "fig4" || d.Machine != "fig5" {
		t.Errorf("schedule failure not localized: %+v", d)
	}
}

func TestRouteAndMethodErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if status, body := get(t, ts, "/v1/compile"); status != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/compile: %d\n%s", status, body)
	} else {
		decodeError(t, status, body)
	}
	if status, body := get(t, ts, "/v1/nope"); status != http.StatusNotFound {
		t.Errorf("GET /v1/nope: %d", status)
	} else {
		decodeError(t, status, body)
	}
}

func TestStatusEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3, QueueDepth: 5})
	postCompile(t, ts, CompileRequest{Kernel: "fig4", Machine: "fig5"})
	postCompile(t, ts, CompileRequest{Kernel: "fig4", Machine: "fig5"})
	status, body := get(t, ts, "/v1/status")
	if status != http.StatusOK {
		t.Fatalf("status: %d", status)
	}
	var st StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 3 || st.QueueDepth != 5 {
		t.Errorf("pool shape: %+v", st)
	}
	if st.Requests != 2 || st.Compilations != 1 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("counters: %+v", st)
	}
	if st.CacheEntries != 1 || st.CacheBytes <= 0 || st.CacheBudget <= 0 {
		t.Errorf("cache stats: %+v", st)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postCompile(t, ts, CompileRequest{Kernel: "fig4", Machine: "fig5"})
	status, body := get(t, ts, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: %d", status)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE cschedd_requests_total counter",
		"cschedd_requests_total 1",
		"cschedd_compilations_total 1",
		"cschedd_cache_entries 1",
		"# TYPE cschedd_compile_seconds histogram",
		"cschedd_compile_seconds_count 1",
		"# TYPE cschedd_memo_hits_total counter",
		"cschedd_memo_hits_total",
		"# TYPE cschedd_spec_cancelled_total counter",
		"cschedd_spec_cancelled_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestDegradedResponse pins that a ladder win is reported in the body
// and that degraded and primary results have distinct cache keys only
// when their configurations differ (the ladder is part of the key).
func TestDegradedResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := CompileRequest{
		Kernel: "fig4", Machine: "fig5",
		Options: &OptionsSpec{AttemptBudget: 1},
		Degrade: true,
	}
	status, _, body := postCompile(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("degraded compile: %d\n%s", status, body)
	}
	var resp CompileResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Degraded != "fast-search" {
		t.Errorf("degraded rung %q, want fast-search", resp.Degraded)
	}
	// Identical request without the ladder fails instead — and must not
	// have been served from the degraded entry.
	status2, _, body2 := postCompile(t, ts, CompileRequest{Kernel: "fig4", Machine: "fig5", Options: &OptionsSpec{AttemptBudget: 1}})
	if status2 != http.StatusUnprocessableEntity {
		t.Errorf("ladderless request: %d\n%s", status2, body2)
	}
}

// TestServerDefaultTimeout pins that the config-level default deadline
// applies when the request names none.
func TestServerDefaultTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultTimeout: time.Nanosecond})
	status, _, body := postCompile(t, ts, CompileRequest{Kernel: "fig4", Machine: "fig5"})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("default-timeout compile: %d\n%s", status, body)
	}
	if d := decodeError(t, status, body); d.Kind != "deadline-exceeded" {
		t.Errorf("kind %q", d.Kind)
	}
}
