package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/ir"
	"repro/internal/kasm"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/obs"
)

// Config tunes a Server. The zero value is serviceable: GOMAXPROCS
// workers, a queue twice that deep, a 64 MiB cache, no default
// deadline.
type Config struct {
	// Workers bounds concurrent backing compilations; 0 means
	// GOMAXPROCS (the same convention as portfolio racing, which shares
	// this budget when a request asks for it).
	Workers int
	// QueueDepth bounds admitted-but-not-yet-running compilations
	// beyond the worker pool; 0 means 2×Workers, negative means no
	// queue at all (overflow as soon as every worker is busy).
	QueueDepth int
	// CacheBytes is the in-memory schedule cache's LRU byte budget; 0
	// means 64 MiB.
	CacheBytes int64
	// CacheDir, when non-empty, arms the persistent disk cache tier in
	// that directory: compiled response bodies are written as
	// checksummed frames via temp-file + atomic rename, survive
	// restarts, and serve with X-Cschedd-Cache: disk. Empty keeps the
	// daemon memory-only.
	CacheDir string
	// CacheDiskBudget is the disk tier's byte budget; 0 means 256 MiB.
	// The startup scan evicts oldest-first down to the budget, so
	// shrinking it across a restart is safe.
	CacheDiskBudget int64
	// CacheFsync is the disk tier's durability policy: "always" (the
	// default; fsync the entry file and the directory on every write)
	// or "none" (leave flushing to the OS — entries can be lost on
	// power failure but can never be served torn: the frame checksum
	// quarantines partial flushes).
	CacheFsync string
	// DefaultTimeout bounds compilations whose request names no
	// timeout_ms; 0 means unbounded (drain can still cancel).
	DefaultTimeout time.Duration
	// MaxBodyBytes bounds request bodies; 0 means 1 MiB.
	MaxBodyBytes int64
	// Degrade arms the stock degradation ladder for requests that do
	// not choose one themselves.
	Degrade bool
	// Faults arms the deterministic fault-injection plane on every
	// compilation — testing only, never exposed over the API.
	Faults *faultinject.Plane
	// Metrics is the registry to instrument into; nil builds a fresh
	// one (Server.Metrics returns it).
	Metrics *obs.Metrics
	// Logger receives the structured access/error log: exactly one line
	// per compile request, carrying the request ID, stage timeline, and
	// outcome. nil disables logging (the library default; cmd/cschedd
	// installs a JSON logger on stderr).
	Logger *slog.Logger
	// RecorderEntries sizes the flight-recorder ring behind
	// GET /debug/requests; 0 means 512, negative disables the recorder
	// entirely (the debug endpoints then 404).
	RecorderEntries int
	// TraceKeep caps how many captured full event traces stay resident
	// (hard kernels trace millions of events); 0 means 8.
	TraceKeep int
	// TraceSlow, when positive, arms full obs.Recorder trace capture
	// for backing compilations at least this slow; the trace is served
	// by GET /debug/requests/{id} as Chrome trace JSON.
	TraceSlow time.Duration
	// TraceErrors arms full trace capture for backing compilations that
	// fail. Tracing is passive (nil-Tracer zero-alloc and byte-identity
	// guarantees hold with capture armed); the cost is memory while a
	// traced compilation runs.
	TraceErrors bool
}

// Server is the compilation service. Create with New, serve via
// ServeHTTP (it implements http.Handler), and shut down with Drain.
type Server struct {
	cfg        Config
	workersN   int
	queueDepth int

	cache   *cache
	disk    *diskStore // nil when CacheDir is empty
	flights flightGroup
	// diskWG tracks in-flight asynchronous disk-cache writes; Drain
	// waits for it after the last request retires, so a SIGTERM racing
	// a fill never tears an entry and never leaks the writer goroutine.
	diskWG sync.WaitGroup
	// queue is a token bucket: sending acquires, receiving releases; it
	// caps admitted compilations (running + waiting). pool caps running
	// ones — and is shared with portfolio races and speculative interval
	// searches, so a compilation that fans out internally draws its
	// extra workers from the same machine-wide budget.
	queue chan struct{}
	pool  *core.Pool

	// baseCtx parents every backing compilation; Drain cancels it when
	// the grace period expires, unwinding in-flight compiles through
	// the cooperative cancellation machinery.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup // in-flight compile *requests* (not compiles)

	metrics   *obs.Metrics
	mRequests *obs.Counter
	mHits     *obs.Counter
	mMisses   *obs.Counter
	mCompiles *obs.Counter
	mErrors   *obs.Counter
	mRejected *obs.Counter
	// mMemoHits/mSpecCancel aggregate the search-effort counters of
	// every backing compilation: §4.4 solves short-circuited by the
	// infeasibility memo, and speculative interval rungs cancelled by
	// lowest-II-wins. Effort telemetry only — cache hits (which run no
	// search) contribute nothing.
	mMemoHits   *obs.Counter
	mSpecCancel *obs.Counter
	mTraces     *obs.Counter
	// mCacheEvict counts in-memory LRU evictions; same-key replacements
	// are deliberately not evictions (the key never left the cache).
	mCacheEvict *obs.Counter
	gInflight   *obs.Gauge
	gQueued     *obs.Gauge
	gEntries    *obs.Gauge
	gBytes      *obs.Gauge
	hLatency    *obs.Histogram
	// hRequest is the end-to-end request latency; hStages holds one
	// histogram per request-pipeline stage, keyed by span name.
	hRequest *obs.Histogram
	hStages  map[string]*obs.Histogram

	// Request-scoped observability: the access logger, the flight
	// recorder behind /debug/requests, and the request-ID mint.
	logger   *slog.Logger
	recorder *flightRecorder
	bootID   string
	reqSeq   atomic.Uint64
}

// The stage names of the request timeline, in pipeline order. Each has
// a matching cschedd_stage_<name>_seconds histogram.
const (
	stageResolve     = "resolve"
	stageCacheProbe  = "cache-probe"
	stageDiskProbe   = "disk-probe"
	stageSFWait      = "singleflight-wait"
	stageQueueWait   = "queue-wait"
	stagePoolAcquire = "pool-acquire"
	stageCompile     = "compile"
	stageSerialize   = "serialize"
)

// requestStages lists every stage for metric registration and the
// DESIGN.md taxonomy. disk-probe is only recorded when the disk tier is
// armed.
var requestStages = []string{
	stageResolve, stageCacheProbe, stageDiskProbe, stageSFWait,
	stageQueueWait, stagePoolAcquire, stageCompile, stageSerialize,
}

// retryAfterFor maps the admission backlog at rejection time to the
// Retry-After hint on a 429: the number of admitted compilations
// (running + queued) divided by the worker pool width, rounded up, is
// how many "generations" of work stand between the client and a free
// worker. Clamped to [1, maxRetryAfterS] — a hint, not a forecast.
func retryAfterFor(admitted, workers int) int {
	if workers < 1 {
		workers = 1
	}
	s := (admitted + workers - 1) / workers
	if s < 1 {
		s = 1
	}
	if s > maxRetryAfterS {
		s = maxRetryAfterS
	}
	return s
}

// maxRetryAfterS caps the Retry-After hint; past this the client should
// be balancing onto another replica, not sleeping longer.
const maxRetryAfterS = 30

// New builds a Server from cfg. It fails only on configuration that
// cannot be defaulted: an unusable cache directory or an unknown fsync
// policy.
func New(cfg Config) (*Server, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	switch {
	case depth == 0:
		depth = 2 * workers
	case depth < 0:
		depth = 0
	}
	budget := cfg.CacheBytes
	if budget <= 0 {
		budget = 64 << 20
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	m := cfg.Metrics
	if m == nil {
		m = obs.NewMetrics()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		workersN:   workers,
		queueDepth: depth,
		cache:      newCache(budget),
		queue:      make(chan struct{}, workers+depth),
		pool:       core.NewPool(workers),
		baseCtx:    ctx,
		cancel:     cancel,
		metrics:    m,
	}
	s.mRequests = m.Counter("cschedd_requests_total", "compile requests received")
	s.mHits = m.Counter("cschedd_cache_hits_total", "compile requests served from the schedule cache")
	s.mMisses = m.Counter("cschedd_cache_misses_total", "compile requests that missed the schedule cache")
	s.mCompiles = m.Counter("cschedd_compilations_total", "backing compilations run (cache and singleflight collapse the rest)")
	s.mErrors = m.Counter("cschedd_compile_errors_total", "backing compilations that failed")
	s.mRejected = m.Counter("cschedd_rejected_total", "compile requests rejected by admission control (429)")
	s.mMemoHits = m.Counter("cschedd_memo_hits_total", "permutation solves short-circuited by the infeasibility memo")
	s.mSpecCancel = m.Counter("cschedd_spec_cancelled_total", "speculative interval rungs cancelled by lowest-II-wins")
	s.mTraces = m.Counter("cschedd_traces_captured_total", "full event traces captured by the flight recorder")
	s.mCacheEvict = m.Counter("cschedd_cache_evictions_total", "in-memory schedule cache entries evicted by the byte budget (replacements excluded)")
	s.gInflight = m.Gauge("cschedd_inflight", "backing compilations running now")
	s.gQueued = m.Gauge("cschedd_queued", "admitted compilations waiting for a worker")
	s.gEntries = m.Gauge("cschedd_cache_entries", "schedule cache entries resident")
	s.gBytes = m.Gauge("cschedd_cache_bytes", "schedule cache bytes resident")
	s.hLatency = m.Histogram("cschedd_compile_seconds", "backing compilation latency",
		[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30})
	s.hRequest = m.Histogram("cschedd_request_duration_seconds", "end-to-end compile request latency, cache hits and errors included",
		[]float64{0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 30})
	s.hStages = make(map[string]*obs.Histogram, len(requestStages))
	for _, st := range requestStages {
		name := "cschedd_stage_" + strings.ReplaceAll(st, "-", "_") + "_seconds"
		s.hStages[st] = m.Histogram(name, "time spent in the "+st+" stage of the request pipeline",
			[]float64{1e-6, 1e-5, 1e-4, 0.001, 0.01, 0.1, 0.5, 1, 5, 30})
	}

	switch cfg.CacheFsync {
	case "", "always", "none":
	default:
		return nil, fmt.Errorf("daemon: unknown cache fsync policy %q (want always or none)", cfg.CacheFsync)
	}
	if cfg.CacheDir != "" {
		diskBudget := cfg.CacheDiskBudget
		if diskBudget <= 0 {
			diskBudget = 256 << 20
		}
		disk, err := newDiskStore(cfg.CacheDir, diskBudget, cfg.CacheFsync != "none", cfg.Faults, m)
		if err != nil {
			return nil, err
		}
		s.disk = disk
	}

	s.logger = cfg.Logger
	entries := cfg.RecorderEntries
	if entries == 0 {
		entries = 512
	}
	s.recorder = newFlightRecorder(entries, cfg.TraceKeep)
	s.bootID = newBootID()
	return s, nil
}

// Metrics returns the server's registry (for /metrics siblings and
// shutdown snapshots).
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// cachePut stores body in the in-memory tier and refreshes the cache
// gauges and eviction counter. Replacing an existing key is not an
// eviction and bumps nothing.
func (s *Server) cachePut(key string, body []byte) {
	if evicted := s.cache.put(key, body); evicted > 0 {
		s.mCacheEvict.Add(int64(evicted))
	}
	entries, bytes := s.cache.stats()
	s.gEntries.Set(int64(entries))
	s.gBytes.Set(bytes)
}

// diskPut persists body asynchronously when the disk tier is armed. The
// write is tracked by diskWG so Drain retires it before returning; it
// is never cancelled — a frame is small and already has its bytes, so
// finishing is both cheaper and safer than tearing.
func (s *Server) diskPut(key string, body []byte) {
	if s.disk == nil {
		return
	}
	s.diskWG.Add(1)
	go func() {
		defer s.diskWG.Done()
		s.disk.put(key, body)
	}()
}

// enter admits one compile request into the drain-tracked set; it
// fails once draining started.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain shuts the server down gracefully: new compile requests are
// refused (503; /healthz flips unhealthy), in-flight compilations get
// until ctx is done to finish, then are cancelled cooperatively
// through the compiler's context machinery and reported as 499s.
// Drain returns when the last compile request has been answered; the
// status, metrics, and health endpoints keep serving throughout (and
// after), so a final metrics snapshot can still be scraped.
func (s *Server) Drain(ctx context.Context) {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.cancel()
		<-done
	}
	s.cancel()
	// Disk fills are asynchronous but never cancelled: a write in
	// flight when the signal lands completes (it is small and already
	// has its bytes), so a drain leaves every entry whole on disk. No
	// new writes can start — the last request already retired.
	s.diskWG.Wait()
}

// ServeHTTP routes the server's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/compile":
		if r.Method != http.MethodPost {
			s.jsonError(w, http.StatusMethodNotAllowed, "method-not-allowed",
				fmt.Sprintf("%s not allowed; POST a compile request", r.Method))
			return
		}
		s.handleCompile(w, r)
	case "/v1/status":
		s.handleStatus(w)
	case "/metrics":
		s.metricsText(w)
	case "/healthz":
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok\n")
	case "/debug/requests":
		s.handleDebugRequests(w)
	default:
		if strings.HasPrefix(r.URL.Path, "/debug/requests/") {
			s.handleDebugTrace(w, r.URL.Path)
			return
		}
		s.jsonError(w, http.StatusNotFound, "not-found", fmt.Sprintf("no handler for %s", r.URL.Path))
	}
}

func (s *Server) metricsText(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteText(w)
}

func (s *Server) handleStatus(w http.ResponseWriter) {
	entries, bytes := s.cache.stats()
	resp := StatusResponse{
		Draining:     s.Draining(),
		Inflight:     s.gInflight.Value(),
		Queued:       s.gQueued.Value(),
		Workers:      s.workersN,
		QueueDepth:   s.queueDepth,
		Requests:     s.mRequests.Value(),
		Compilations: s.mCompiles.Value(),
		CacheHits:    s.mHits.Value(),
		CacheMisses:  s.mMisses.Value(),
		Rejected:     s.mRejected.Value(),
		Errors:       s.mErrors.Value(),
		CacheEntries: int64(entries),
		CacheBytes:   bytes,
		CacheBudget:  s.cache.budget,
	}
	if s.disk != nil {
		dentries, dbytes := s.disk.stats()
		resp.DiskDir = s.disk.dir
		resp.DiskEntries = int64(dentries)
		resp.DiskBytes = dbytes
		resp.DiskBudget = s.disk.budget
		resp.DiskHits = s.disk.hits.Value()
		resp.DiskMisses = s.disk.misses.Value()
		resp.DiskCorrupt = s.disk.corrupt.Value()
		resp.DiskEvictions = s.disk.evictions.Value()
	}
	writeJSON(w, http.StatusOK, resp, "")
}

// handleCompile is the serving pipeline described in the package
// comment: resolve, key, cache, singleflight, admission, compile —
// every step span-stamped into the request's timeline, finished with
// one access-log line and one flight-recorder record.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	rm := &reqMeta{id: s.requestID(r), tl: obs.NewTimeline()}
	w.Header().Set(RequestIDHeader, rm.id)
	defer s.finishRequest(rm)

	if !s.enter() {
		s.serveError(w, rm, ErrorDetail{Status: http.StatusServiceUnavailable,
			Kind: "draining", Reason: "server is draining; retry against a live replica"}, "")
		return
	}
	defer s.inflight.Done()
	s.mRequests.Inc()

	sp := rm.tl.Begin(stageResolve)
	req, k, m, opts, derr := s.resolve(r)
	rm.tl.End(sp)
	if derr != nil {
		s.serveError(w, rm, *derr, "")
		return
	}
	rm.kernel, rm.machine = k.Name, m.Name

	sp = rm.tl.Begin(stageCacheProbe)
	key := Key(k, m, opts, req.Portfolio)
	body, hit := s.cache.get(key)
	rm.tl.End(sp)
	rm.key = key
	if hit {
		s.mHits.Inc()
		s.serveOutcome(w, rm, outcome{status: http.StatusOK, body: body}, "hit")
		return
	}
	if s.disk != nil {
		// Second tier: a disk hit is promoted into memory (the next
		// probe for this key is a memory hit) and served with the
		// "disk" disposition so operators can see warm restarts work.
		sp = rm.tl.Begin(stageDiskProbe)
		dbody, dhit := s.disk.get(key)
		rm.tl.End(sp)
		if dhit {
			s.cachePut(key, dbody)
			s.serveOutcome(w, rm, outcome{status: http.StatusOK, body: dbody}, "disk")
			return
		}
	}
	s.mMisses.Inc()

	f, leader := s.flights.join(key, rm.id)
	if !leader {
		rm.leaderID = f.leaderID
		sp = rm.tl.Begin(stageSFWait)
		out, err := f.wait(r.Context())
		rm.tl.End(sp)
		if err != nil {
			// The follower gave up before the leader published; it was
			// still a join — a failed join and a failed miss are
			// different situations, and the header says which.
			s.serveError(w, rm, ctxDetail(err), "join")
			return
		}
		s.serveOutcome(w, rm, out, "join")
		return
	}
	out, state := s.lead(r, rm, key, f, req, k, m, opts)
	s.serveOutcome(w, rm, out, state)
}

// lead runs the flight-leader side: admission control, the backing
// compilation, cache fill, and flight completion. Whatever outcome it
// returns has already been published to the flight's followers. The
// second result is the cache disposition the leader serves: "hit" when
// the double-checked probe found a concurrently finished flight's fill,
// else "miss" — on error outcomes too, so operators can tell a failed
// miss from a failed join.
func (s *Server) lead(r *http.Request, rm *reqMeta, key string, f *flight, req *CompileRequest, k *ir.Kernel, m *machine.Machine, opts core.Options) (outcome, string) {
	// A flight for this key may have completed between the cache probe
	// and leadership: its leader fills the cache before retiring the
	// flight, so re-probing here keeps "one compilation per key"
	// airtight.
	if body, ok := s.cache.get(key); ok {
		out := outcome{status: http.StatusOK, body: body}
		s.flights.finish(key, f, out)
		return out, "hit"
	}

	// Admission: a queue token covers the compilation from here to
	// completion; none free means the backlog is full — shed load now,
	// with a Retry-After hint scaled to the backlog actually in front
	// of the client.
	sp := rm.tl.Begin(stageQueueWait)
	select {
	case s.queue <- struct{}{}:
		rm.tl.End(sp)
	default:
		rm.tl.End(sp)
		s.mRejected.Inc()
		retryAfter := retryAfterFor(len(s.queue), s.workersN)
		out := s.errorOutcome(http.StatusTooManyRequests, ErrorDetail{
			Kind:        "overloaded",
			Reason:      fmt.Sprintf("admission queue full (%d workers, depth %d); retry after %ds", s.workersN, s.queueDepth, retryAfter),
			RetryAfterS: retryAfter,
		})
		s.flights.finish(key, f, out)
		return out, "miss"
	}
	defer func() { <-s.queue }()

	// Wait for a worker slot; the request context and drain can both
	// abandon the wait.
	s.gQueued.Add(1)
	sp = rm.tl.Begin(stagePoolAcquire)
	wctx, wcancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.baseCtx, wcancel)
	acqErr := s.pool.Acquire(wctx)
	stop()
	wcancel()
	rm.tl.End(sp)
	s.gQueued.Add(-1)
	if acqErr != nil {
		cancelledWaiting := r.Context().Err()
		if cancelledWaiting == nil {
			cancelledWaiting = context.Canceled // drain struck first
		}
		out := s.errorOutcome(0, ctxDetail(cancelledWaiting))
		s.flights.finish(key, f, out)
		return out, "miss"
	}
	defer s.pool.Release()

	// The backing compilation runs under the server's lifetime, not
	// the leader's connection: a disconnecting client must not starve
	// the followers sharing this flight. The request deadline (or the
	// server default) propagates into CompileContext.
	ctx := s.baseCtx
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		tctx, tcancel := context.WithTimeout(ctx, timeout)
		defer tcancel()
		ctx = tctx
	}

	s.mCompiles.Inc()
	s.gInflight.Add(1)
	// Arm full trace capture when the flight recorder wants it: the
	// Recorder is passive (byte-identity and determinism hold), and it
	// is only retained when the compile errs or crosses the latency
	// threshold — otherwise it is garbage the moment this frame returns.
	var rec *obs.Recorder
	if s.recorder != nil && (s.cfg.TraceErrors || s.cfg.TraceSlow > 0) {
		rec = obs.NewRecorder()
		opts.Tracer = rec
	}
	start := time.Now()
	sp = rm.tl.Begin(stageCompile)
	var (
		sched *core.Schedule
		err   error
	)
	// Internal fan-out — portfolio racing and speculative interval
	// ladders — draws extra workers from the server's own pool: the
	// leader's held slot covers worker zero, extras are try-acquired,
	// so nested parallelism can never deadlock admission.
	opts.Pool = s.pool
	if req.Portfolio {
		sched, _, err = core.CompilePortfolio(ctx, k, m, opts, core.PortfolioOptions{Workers: s.workersN, Pool: s.pool})
	} else {
		sched, err = core.CompileContext(ctx, k, m, opts)
	}
	compileDur := time.Since(start)
	rm.tl.End(sp)
	s.hLatency.Observe(compileDur.Seconds())
	s.gInflight.Add(-1)
	if rec != nil && ((err != nil && s.cfg.TraceErrors) || (s.cfg.TraceSlow > 0 && compileDur >= s.cfg.TraceSlow)) {
		s.recorder.capture(rm.id, rec)
		rm.traced = true
		s.mTraces.Inc()
	}

	var out outcome
	if err != nil {
		s.mErrors.Inc()
		out = s.errorOutcome(HTTPStatus(err), compileDetail(err))
	} else {
		rm.memoHits = sched.Stats.MemoHits
		rm.specCanc = sched.Stats.SpecCancelled
		s.mMemoHits.Add(int64(sched.Stats.MemoHits))
		s.mSpecCancel.Add(int64(sched.Stats.SpecCancelled))
		sp = rm.tl.Begin(stageSerialize)
		body, merr := json.Marshal(buildResponse(key, k, sched))
		rm.tl.End(sp)
		if merr != nil {
			out = s.errorOutcome(http.StatusInternalServerError, ErrorDetail{Kind: "internal", Reason: merr.Error()})
		} else {
			body = append(body, '\n')
			s.cachePut(key, body)
			s.diskPut(key, body)
			out = outcome{status: http.StatusOK, body: body}
		}
	}
	s.flights.finish(key, f, out)
	return out, "miss"
}

// resolve parses and validates a compile request into its kernel,
// machine, and options. A non-nil ErrorDetail is a 4xx the caller
// serves verbatim.
func (s *Server) resolve(r *http.Request) (*CompileRequest, *ir.Kernel, *machine.Machine, core.Options, *ErrorDetail) {
	fail := func(status int, kind, reason string) (*CompileRequest, *ir.Kernel, *machine.Machine, core.Options, *ErrorDetail) {
		return nil, nil, nil, core.Options{}, &ErrorDetail{Status: status, Kind: kind, Reason: reason}
	}

	dec := json.NewDecoder(io.LimitReader(r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	var req CompileRequest
	if err := dec.Decode(&req); err != nil {
		return fail(http.StatusBadRequest, "bad-request", "malformed request body: "+err.Error())
	}

	var k *ir.Kernel
	switch {
	case req.Kernel != "" && req.Source != "":
		return fail(http.StatusBadRequest, "bad-request", "kernel and source are mutually exclusive")
	case req.Kernel == "fig4":
		k = kernels.Motivating()
	case req.Kernel != "":
		spec := kernels.ByName(req.Kernel)
		if spec == nil {
			return fail(http.StatusBadRequest, "invalid-input", fmt.Sprintf("unknown kernel %q (Table 1 names or \"fig4\")", req.Kernel))
		}
		var err error
		if k, err = spec.Kernel(); err != nil {
			return fail(http.StatusInternalServerError, "internal", "built-in kernel failed to compile: "+err.Error())
		}
	case req.Source != "":
		var err error
		if k, err = kasm.Compile(req.Source); err != nil {
			return fail(http.StatusBadRequest, "invalid-input", "kernel source: "+err.Error())
		}
	default:
		return fail(http.StatusBadRequest, "bad-request", "need kernel (a built-in name) or source (kasm text)")
	}

	var m *machine.Machine
	switch {
	case req.Machine != "" && req.MachineText != "":
		return fail(http.StatusBadRequest, "bad-request", "machine and machine_text are mutually exclusive")
	case req.MachineText != "":
		var err error
		if m, err = machine.ParseText(req.MachineText); err != nil {
			return fail(http.StatusBadRequest, "invalid-input", "machine_text: "+err.Error())
		}
	default:
		name := req.Machine
		if name == "" {
			name = "distributed"
		}
		if m = machine.ByName(name); m == nil {
			return fail(http.StatusBadRequest, "invalid-input", fmt.Sprintf("unknown machine %q", name))
		}
	}

	opts := req.Options.options()
	opts.Faults = s.cfg.Faults
	if l := ladder(req.Ladder); l != nil {
		opts.Degrade = l
	} else if req.Degrade || s.cfg.Degrade {
		opts.Degrade = core.DefaultDegradeLadder()
	}
	if err := opts.ValidateFor(m); err != nil {
		d := compileDetail(err)
		d.Status = HTTPStatus(err)
		return nil, nil, nil, core.Options{}, &d
	}
	return &req, k, m, opts, nil
}

// buildResponse projects a finished schedule into the deterministic
// response body.
func buildResponse(key string, k *ir.Kernel, sched *core.Schedule) CompileResponse {
	return CompileResponse{
		Key:         key,
		Kernel:      k.Name,
		Machine:     sched.Machine.Name,
		II:          sched.II,
		Preamble:    sched.PreambleLen,
		LoopSpan:    sched.LoopSpan,
		Copies:      len(sched.Ops) - len(k.Ops),
		Degraded:    sched.Degraded,
		Fingerprint: fingerprintHex(sched),
		Schedule:    sched.Dump(),
		Passes:      passBodies(sched.Passes),
		Utilization: sched.InterconnectUtilization(),
	}
}

// compileDetail projects a compilation error into the wire shape.
func compileDetail(err error) ErrorDetail {
	d := ErrorDetail{Status: HTTPStatus(err), Kind: "internal", Reason: err.Error()}
	var ce *core.CompileError
	if errors.As(err, &ce) {
		d.Kind = ce.Kind.String()
		d.Reason = ce.Reason
		d.Pass = ce.Pass
		d.Kernel = ce.Kernel
		d.Machine = ce.Machine
		d.II = ce.II
		if ce.Op != core.NoOp {
			d.Op = int(ce.Op)
		}
		d.Line = ce.Line
	}
	return d
}

// ctxDetail maps a context error on a request's own wait (a follower
// abandoning a flight, a leader abandoning the worker queue) to the
// wire shape.
func ctxDetail(err error) ErrorDetail {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrorDetail{Status: http.StatusGatewayTimeout, Kind: core.KindDeadlineExceeded.String(), Reason: "deadline expired before a result was available"}
	}
	return ErrorDetail{Status: StatusClientClosedRequest, Kind: core.KindCancelled.String(), Reason: "request cancelled before a result was available"}
}

// errorOutcome marshals an error detail as a servable outcome. status
// overrides d.Status when non-zero.
func (s *Server) errorOutcome(status int, d ErrorDetail) outcome {
	if status != 0 {
		d.Status = status
	}
	body, err := json.Marshal(ErrorBody{Error: d})
	if err != nil { // unreachable: ErrorDetail is plain data
		d = ErrorDetail{Status: http.StatusInternalServerError, Kind: "internal", Reason: err.Error()}
		body, _ = json.Marshal(ErrorBody{Error: d})
	}
	return outcome{status: d.Status, body: append(body, '\n'), kind: d.Kind, retryAfter: d.RetryAfterS}
}

// serveOutcome stamps a finished outcome into the request's meta and
// writes it to the wire.
func (s *Server) serveOutcome(w http.ResponseWriter, rm *reqMeta, out outcome, cacheState string) {
	rm.status = out.status
	rm.cache = cacheState
	rm.errKind = out.kind
	s.serveBody(w, out, cacheState)
}

// serveError is serveOutcome for a bare error detail.
func (s *Server) serveError(w http.ResponseWriter, rm *reqMeta, d ErrorDetail, cacheState string) {
	s.serveOutcome(w, rm, s.errorOutcome(0, d), cacheState)
}

// jsonError writes a transport-level error shape (routing and method
// errors; requests that never reached the compile pipeline).
func (s *Server) jsonError(w http.ResponseWriter, status int, kind, reason string) {
	s.serveBody(w, s.errorOutcome(0, ErrorDetail{Status: status, Kind: kind, Reason: reason}), "")
}

// serveBody writes a finished outcome: JSON content type, the
// schedule-cache disposition header on compile responses, and the
// Retry-After hint on 429s (from the outcome, so followers repeat the
// leader's backlog-derived hint).
func (s *Server) serveBody(w http.ResponseWriter, out outcome, cacheState string) {
	w.Header().Set("Content-Type", "application/json")
	if cacheState != "" {
		w.Header().Set(CacheStateHeader, cacheState)
	}
	if out.status == http.StatusTooManyRequests {
		ra := out.retryAfter
		if ra < 1 {
			ra = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(ra))
	}
	w.WriteHeader(out.status)
	w.Write(out.body)
}

// writeJSON marshals v as the response body.
func writeJSON(w http.ResponseWriter, status int, v any, cacheState string) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if cacheState != "" {
		w.Header().Set(CacheStateHeader, cacheState)
	}
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}
