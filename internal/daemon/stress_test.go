package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestSingleflightCollapse is the acceptance criterion of the issue:
// 64 concurrent identical requests cause exactly one backing
// compilation, and all 64 bodies are byte-identical to a cold-cache
// compile of the same key on a fresh server.
func TestSingleflightCollapse(t *testing.T) {
	// The cold reference body, from its own server.
	_, coldTS := newTestServer(t, Config{})
	req := CompileRequest{Kernel: "fig4", Machine: "fig5"}
	coldStatus, _, coldBody := postCompile(t, coldTS, req)
	if coldStatus != http.StatusOK {
		t.Fatalf("cold compile: %d\n%s", coldStatus, coldBody)
	}

	s, ts := newTestServer(t, Config{Workers: 4})
	const clients = 64
	var (
		start  = make(chan struct{})
		wg     sync.WaitGroup
		mu     sync.Mutex
		bodies [][]byte
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			status, _, body := postCompile(t, ts, req)
			if status != http.StatusOK {
				t.Errorf("concurrent compile: %d\n%s", status, body)
				return
			}
			mu.Lock()
			bodies = append(bodies, body)
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()

	if got := s.mCompiles.Value(); got != 1 {
		t.Errorf("%d backing compilations for %d identical requests, want exactly 1", got, clients)
	}
	if len(bodies) != clients {
		t.Fatalf("only %d/%d responses succeeded", len(bodies), clients)
	}
	for i, b := range bodies {
		if !bytes.Equal(b, coldBody) {
			t.Fatalf("response %d differs from the cold-cache compile body", i)
		}
	}
}

// TestSingleflightDistinctKeys pins the inverse: concurrent requests
// with M distinct keys run M backing compilations — dedup never
// conflates distinct configurations.
func TestSingleflightDistinctKeys(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	perms := []int{256, 512, 1024, 2048}
	const perKey = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < perKey*len(perms); i++ {
		req := CompileRequest{Kernel: "fig4", Machine: "fig5",
			Options: &OptionsSpec{PermBudget: perms[i%len(perms)]}}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if status, _, body := postCompile(t, ts, req); status != http.StatusOK {
				t.Errorf("compile: %d\n%s", status, body)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := s.mCompiles.Value(); got != int64(len(perms)) {
		t.Errorf("%d backing compilations, want %d (one per distinct key)", got, len(perms))
	}
}

// TestAdmissionOverflow fills the worker pool and queue with slow
// compilations (delay faults), then asserts the next distinct request
// is shed with 429 + Retry-After while an identical request joins the
// in-flight flight instead of consuming admission.
func TestAdmissionOverflow(t *testing.T) {
	plane := faultinject.New(1, faultinject.Rule{
		Site: faultinject.SitePass, Label: "place",
		Nth: 1, Every: 1, Action: faultinject.Delay, Sleep: 50 * time.Millisecond,
	})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1, Faults: plane})

	slow := CompileRequest{Kernel: "fig4", Machine: "fig5"}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if status, _, body := postCompile(t, ts, slow); status != http.StatusOK {
			t.Errorf("slow compile: %d\n%s", status, body)
		}
	}()
	// Wait until the slow compile holds the only admission token.
	waitFor(t, time.Second, func() bool { return s.gInflight.Value() == 1 })

	// A distinct key cannot be admitted.
	status, hdr, body := postCompile(t, ts, CompileRequest{Kernel: "fig4", Machine: "central"})
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow request: %d\n%s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	d := decodeError(t, status, body)
	if d.Kind != "overloaded" || d.RetryAfterS <= 0 {
		t.Errorf("429 shape: %+v", d)
	}
	if s.mRejected.Value() != 1 {
		t.Errorf("rejected counter %d, want 1", s.mRejected.Value())
	}

	// The identical request needs no admission: it joins the flight and
	// is served the same result.
	if status, _, body := postCompile(t, ts, slow); status != http.StatusOK {
		t.Errorf("identical request during slow compile: %d\n%s", status, body)
	}
	<-done
}

// TestDrainCancelsInflight pins the drain ladder: a compilation still
// running when the grace period expires is cancelled cooperatively and
// reported as 499, and Drain returns.
func TestDrainCancelsInflight(t *testing.T) {
	plane := faultinject.New(1, faultinject.Rule{
		Site: faultinject.SiteSolver,
		Nth:  1, Every: 1, Action: faultinject.Delay, Sleep: 5 * time.Millisecond,
	})
	s := mustNew(t, Config{Workers: 1, Faults: plane})
	ts := newLeakCheckedServer(t, s)

	type result struct {
		status int
		body   []byte
	}
	res := make(chan result, 1)
	go func() {
		// FIR-FP takes thousands of solver steps; with 5ms per step it
		// cannot finish inside the drain grace below.
		status, _, body := postCompile(t, ts, CompileRequest{Kernel: "FIR-FP", Machine: "distributed"})
		res <- result{status, body}
	}()
	waitFor(t, 2*time.Second, func() bool { return s.gInflight.Value() == 1 })

	graceCtx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	drained := make(chan struct{})
	go func() {
		s.Drain(graceCtx)
		close(drained)
	}()

	r := <-res
	if r.status != StatusClientClosedRequest {
		t.Fatalf("drained compile: %d\n%s", r.status, r.body)
	}
	var eb ErrorBody
	if err := json.Unmarshal(r.body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Kind != "cancelled" {
		t.Errorf("drained compile kind %q, want cancelled", eb.Error.Kind)
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after cancelling in-flight work")
	}
}

// TestDrainLeaksNoGoroutines is the leak gate: a server that compiled,
// collapsed concurrent flights, shed load, and drained leaves no
// goroutines behind.
func TestDrainLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	s := mustNew(t, Config{Workers: 2})
	ts := newLeakCheckedServer(t, s)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postCompile(t, ts, CompileRequest{Kernel: "fig4", Machine: "fig5"})
		}()
	}
	wg.Wait()
	s.Drain(context.Background())
	ts.Close()

	// Give the runtime a moment to retire handler goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked across drain: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// newLeakCheckedServer wraps s in an httptest server WITHOUT the
// cleanup Drain of newTestServer: the caller drains explicitly as part
// of the scenario under test. Close is idempotent, so tests that close
// early are still covered by the cleanup.
func newLeakCheckedServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
