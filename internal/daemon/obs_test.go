package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// This file tests the request-scoped observability plane: request-ID
// propagation, the structured access log across a singleflight
// collapse, the cache-disposition header on error paths, the flight
// recorder, and the byte-determinism guarantees that must survive all
// of it.

// postWithHeaders is postCompile with request headers, returning the
// response status, headers, and body.
func postWithHeaders(t *testing.T, ts *httptest.Server, req any, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/compile", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hr.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// mintedID matches server-generated request IDs: bootID "-" sequence.
var mintedID = regexp.MustCompile(`^[0-9a-f]{8}-[0-9a-f]{8}$`)

// TestRequestIDHeader pins the ID contract: every compile response
// carries X-Cschedd-Request-Id; well-formed client IDs are honored
// verbatim; hostile ones are replaced with a minted ID.
func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := CompileRequest{Kernel: "fig4", Machine: "fig5"}

	_, hdr, _ := postCompile(t, ts, req)
	if id := hdr.Get(RequestIDHeader); !mintedID.MatchString(id) {
		t.Errorf("minted ID %q does not match bootid-seq shape", id)
	}

	_, hdr, _ = postWithHeaders(t, ts, req, map[string]string{RequestIDHeader: "edge-proxy.42_a"})
	if id := hdr.Get(RequestIDHeader); id != "edge-proxy.42_a" {
		t.Errorf("valid client ID not honored: got %q", id)
	}

	for _, bad := range []string{"has space", "semi;colon", strings.Repeat("x", 129), "ünïcode"} {
		_, hdr, _ = postWithHeaders(t, ts, req, map[string]string{RequestIDHeader: bad})
		if id := hdr.Get(RequestIDHeader); !mintedID.MatchString(id) {
			t.Errorf("invalid client ID %q echoed back as %q, want a minted ID", bad, id)
		}
	}
	// Bytes the HTTP client would refuse to send still must not pass the
	// validator (defense against hand-rolled clients).
	for _, bad := range []string{"", "nul\x00byte", "new\nline"} {
		if validRequestID(bad) {
			t.Errorf("validRequestID(%q) = true", bad)
		}
	}

	// Errored requests carry the ID too — that is when it matters most.
	_, hdr, _ = postCompile(t, ts, CompileRequest{Kernel: "no-such-kernel"})
	if id := hdr.Get(RequestIDHeader); !mintedID.MatchString(id) {
		t.Errorf("error response ID %q, want a minted ID", id)
	}
}

// logLine is the decoded shape of one access-log line.
type logLine struct {
	Msg        string             `json:"msg"`
	Level      string             `json:"level"`
	ID         string             `json:"id"`
	LeaderID   string             `json:"leader_id"`
	Kernel     string             `json:"kernel"`
	Machine    string             `json:"machine"`
	Key        string             `json:"key"`
	Status     int                `json:"status"`
	Cache      string             `json:"cache"`
	ErrorKind  string             `json:"error_kind"`
	DurationMS float64            `json:"duration_ms"`
	Stages     map[string]float64 `json:"stages"`
	Trace      bool               `json:"trace"`
}

// parseLog decodes every access-log line in buf.
func parseLog(t *testing.T, data []byte) []logLine {
	t.Helper()
	var out []logLine
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		var ll logLine
		if err := json.Unmarshal([]byte(line), &ll); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		out = append(out, ll)
	}
	return out
}

// TestAccessLogSingleflightCollapse is the correlation contract: N
// identical concurrent requests collapse onto one backing compilation
// and produce exactly N log lines — one "miss" (the leader) and N-1
// "join" lines whose leader_id names the miss line — so one compile's
// story is reassembled from the log with a single grep. With TraceSlow
// armed, every collapsed request resolves to the leader's trace via
// /debug/requests/{id}.
func TestAccessLogSingleflightCollapse(t *testing.T) {
	// Each place-pass run sleeps, giving followers a wide window to join
	// the leader's flight.
	plane := faultinject.New(1, faultinject.Rule{
		Site: faultinject.SitePass, Label: "place",
		Nth: 1, Every: 1, Action: faultinject.Delay, Sleep: 300 * time.Millisecond,
	})
	var buf syncLogBuffer
	s, ts := newTestServer(t, Config{
		Workers:   2,
		Faults:    plane,
		Logger:    slog.New(slog.NewJSONHandler(&buf, nil)),
		TraceSlow: time.Nanosecond,
	})

	req := CompileRequest{Kernel: "fig4", Machine: "fig5"}
	var wg sync.WaitGroup
	bodies := make([][]byte, 4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, _, body := postCompile(t, ts, req)
		if status != http.StatusOK {
			t.Errorf("leader: %d\n%s", status, body)
		}
		bodies[0] = body
	}()
	waitFor(t, 2*time.Second, func() bool { return s.gInflight.Value() == 1 })
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, body := postCompile(t, ts, req)
			if status != http.StatusOK {
				t.Errorf("follower %d: %d\n%s", i, status, body)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()

	for i := 1; i < 4; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Errorf("follower %d body differs from the leader's", i)
		}
	}

	lines := parseLog(t, buf.Bytes())
	if len(lines) != 4 {
		t.Fatalf("%d access-log lines, want exactly 4:\n%s", len(lines), buf.Bytes())
	}
	var leader logLine
	var joins []logLine
	for _, ll := range lines {
		if ll.Msg != "request" {
			t.Fatalf("unexpected log message %q", ll.Msg)
		}
		switch ll.Cache {
		case "miss":
			leader = ll
		case "join":
			joins = append(joins, ll)
		default:
			t.Errorf("unexpected cache disposition %q", ll.Cache)
		}
	}
	if leader.ID == "" || len(joins) != 3 {
		t.Fatalf("want 1 miss + 3 joins, got leader %+v joins %d", leader, len(joins))
	}
	if leader.Kernel != "fig4" || leader.Machine != "fig5" || len(leader.Key) != 64 ||
		leader.Status != 200 || leader.DurationMS <= 0 || !leader.Trace {
		t.Errorf("leader line %+v", leader)
	}
	if _, ok := leader.Stages[stageCompile]; !ok {
		t.Errorf("leader stages missing %q: %v", stageCompile, leader.Stages)
	}
	for _, j := range joins {
		if j.LeaderID != leader.ID {
			t.Errorf("join %s leader_id %q, want %q", j.ID, j.LeaderID, leader.ID)
		}
		if j.Key != leader.Key || j.Status != 200 {
			t.Errorf("join line %+v", j)
		}
		if _, ok := j.Stages[stageSFWait]; !ok {
			t.Errorf("join stages missing %q: %v", stageSFWait, j.Stages)
		}
		// A follower's ID resolves to the leader's captured trace.
		status, body := get(t, ts, "/debug/requests/"+j.ID)
		if status != http.StatusOK || !bytes.Contains(body, []byte("traceEvents")) {
			t.Errorf("follower trace lookup %s: %d %.80s", j.ID, status, body)
		}
	}
}

// syncLogBuffer is a bytes.Buffer safe for concurrent handler writes.
type syncLogBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncLogBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncLogBuffer) Bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.b.Bytes()...)
}

// TestCacheHeaderOnErrorPaths pins the fixed error-path header
// semantics: a leader whose backing compilation fails reports "miss",
// and a follower that gives up waiting reports "join" — previously both
// dropped the header entirely.
func TestCacheHeaderOnErrorPaths(t *testing.T) {
	t.Run("leader failure is a miss", func(t *testing.T) {
		plane := faultinject.New(1, faultinject.Rule{
			Site: faultinject.SiteSolver, Nth: 1, Every: 1, Action: faultinject.Exhaust,
		})
		_, ts := newTestServer(t, Config{Faults: plane})
		status, hdr, body := postCompile(t, ts, CompileRequest{Kernel: "fig4", Machine: "fig5"})
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("exhausted compile: %d\n%s", status, body)
		}
		if got := hdr.Get(CacheStateHeader); got != "miss" {
			t.Errorf("failed leader %s = %q, want miss", CacheStateHeader, got)
		}
	})

	t.Run("abandoned follower is a join", func(t *testing.T) {
		plane := faultinject.New(1, faultinject.Rule{
			Site: faultinject.SitePass, Label: "place",
			Nth: 1, Every: 1, Action: faultinject.Delay, Sleep: 300 * time.Millisecond,
		})
		s, ts := newTestServer(t, Config{Faults: plane})
		req := CompileRequest{Kernel: "fig4", Machine: "fig5"}
		done := make(chan struct{})
		go func() {
			defer close(done)
			postCompile(t, ts, req)
		}()
		waitFor(t, 2*time.Second, func() bool { return s.gInflight.Value() == 1 })

		// The follower joins the slow flight, then its own deadline
		// expires long before the leader publishes.
		body, _ := json.Marshal(req)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		hr, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/compile", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hr.Header.Set("Content-Type", "application/json")
		resp, err := ts.Client().Do(hr)
		if err == nil {
			// The server may win the race and write the 504 before the
			// transport drops; both shapes are acceptable.
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusGatewayTimeout {
				t.Fatalf("abandoned follower: %d", resp.StatusCode)
			}
			if got := resp.Header.Get(CacheStateHeader); got != "join" {
				t.Errorf("abandoned follower %s = %q, want join", CacheStateHeader, got)
			}
		}
		<-done
	})
}

// TestDebugRequestsRing exercises the flight-recorder ring: records are
// newest-first, carry the request identity and stage timeline, and the
// disabled state 404s.
func TestDebugRequestsRing(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, _, _ := postCompile(t, ts, CompileRequest{Kernel: "fig4", Machine: "fig5"})
	if status != http.StatusOK {
		t.Fatalf("compile: %d", status)
	}
	status, hdr, _ := postCompile(t, ts, CompileRequest{Kernel: "no-such-kernel"})
	if status != http.StatusBadRequest {
		t.Fatalf("bad compile: %d", status)
	}
	badID := hdr.Get(RequestIDHeader)

	status, body := get(t, ts, "/debug/requests")
	if status != http.StatusOK {
		t.Fatalf("/debug/requests: %d\n%s", status, body)
	}
	var rr RequestsResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Requests) != 2 {
		t.Fatalf("%d records, want 2", len(rr.Requests))
	}
	newest, older := rr.Requests[0], rr.Requests[1]
	if newest.ID != badID || newest.Status != 400 || newest.ErrorKind != "invalid-input" {
		t.Errorf("newest record %+v, want the 400 for %s", newest, badID)
	}
	if newest.Seq <= older.Seq {
		t.Errorf("records not newest-first: seq %d then %d", newest.Seq, older.Seq)
	}
	if older.Status != 200 || older.Cache != "miss" || older.Kernel != "fig4" ||
		len(older.Key) != 64 || older.DurationMS <= 0 {
		t.Errorf("compile record %+v", older)
	}
	var stages []string
	for _, sp := range older.Stages {
		stages = append(stages, sp.Name)
	}
	for _, want := range []string{stageResolve, stageCacheProbe, stageCompile, stageSerialize} {
		found := false
		for _, got := range stages {
			found = found || got == want
		}
		if !found {
			t.Errorf("compile record stages %v missing %q", stages, want)
		}
	}

	// Ring eviction: a 3-entry recorder holds only the last 3.
	s2, ts2 := newTestServer(t, Config{RecorderEntries: 3})
	for i := 0; i < 5; i++ {
		postCompile(t, ts2, CompileRequest{Kernel: "fig4", Machine: "fig5"})
	}
	if recs := s2.recorder.records(); len(recs) != 3 || recs[0].Seq != 5 || recs[2].Seq != 3 {
		t.Errorf("ring after 5 requests: %d records, seqs %v", len(recs),
			[]uint64{recs[0].Seq, recs[1].Seq, recs[2].Seq})
	}

	// Disabled recorder: both debug endpoints 404.
	_, ts3 := newTestServer(t, Config{RecorderEntries: -1})
	if status, _ := get(t, ts3, "/debug/requests"); status != http.StatusNotFound {
		t.Errorf("disabled recorder list: %d, want 404", status)
	}
	if status, _ := get(t, ts3, "/debug/requests/xyz"); status != http.StatusNotFound {
		t.Errorf("disabled recorder trace: %d, want 404", status)
	}
}

// TestDebugTraceCapture pins automatic trace capture: with TraceSlow
// armed at a threshold every compile crosses, the request's trace is
// served as schema-valid Chrome trace JSON; untraced and unknown IDs
// 404 with the no-trace kind.
func TestDebugTraceCapture(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceSlow: time.Nanosecond})

	status, hdr, _ := postCompile(t, ts, CompileRequest{Kernel: "fig4", Machine: "fig5"})
	if status != http.StatusOK {
		t.Fatalf("compile: %d", status)
	}
	id := hdr.Get(RequestIDHeader)

	status, trace := get(t, ts, "/debug/requests/"+id)
	if status != http.StatusOK {
		t.Fatalf("/debug/requests/%s: %d\n%s", id, status, trace)
	}
	if err := obs.ValidateChromeTrace(trace); err != nil {
		t.Errorf("captured trace fails schema validation: %v", err)
	}

	// A cache hit runs no backing compilation and captures nothing new;
	// its own ID has no trace.
	status, hdr, _ = postCompile(t, ts, CompileRequest{Kernel: "fig4", Machine: "fig5"})
	if status != http.StatusOK || hdr.Get(CacheStateHeader) != "hit" {
		t.Fatalf("second compile: %d %s", status, hdr.Get(CacheStateHeader))
	}
	status, body := get(t, ts, "/debug/requests/"+hdr.Get(RequestIDHeader))
	if status != http.StatusNotFound {
		t.Errorf("cache-hit trace: %d, want 404\n%s", status, body)
	}
	if d := decodeError(t, http.StatusNotFound, body); d.Kind != "no-trace" {
		t.Errorf("cache-hit trace kind %q, want no-trace", d.Kind)
	}

	// TraceErrors captures failing compilations.
	plane := faultinject.New(1, faultinject.Rule{
		Site: faultinject.SiteSolver, Nth: 1, Every: 1, Action: faultinject.Exhaust,
	})
	_, ts2 := newTestServer(t, Config{TraceErrors: true, Faults: plane})
	status, hdr, _ = postCompile(t, ts2, CompileRequest{Kernel: "fig4", Machine: "fig5"})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("exhausted compile: %d", status)
	}
	status, trace = get(t, ts2, "/debug/requests/"+hdr.Get(RequestIDHeader))
	if status != http.StatusOK {
		t.Fatalf("errored-compile trace: %d", status)
	}
	if err := obs.ValidateChromeTrace(trace); err != nil {
		t.Errorf("errored-compile trace fails schema validation: %v", err)
	}
}

// TestTraceKeepEviction pins the FIFO cap on resident traces: captures
// beyond TraceKeep evict the oldest.
func TestTraceKeepEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{TraceSlow: time.Nanosecond, TraceKeep: 2})
	machines := []string{"fig5", "central", "distributed"}
	ids := make([]string, len(machines))
	for i, m := range machines {
		status, hdr, body := postCompile(t, ts, CompileRequest{Kernel: "fig4", Machine: m})
		if status != http.StatusOK {
			t.Fatalf("compile on %s: %d\n%s", m, status, body)
		}
		ids[i] = hdr.Get(RequestIDHeader)
	}
	if s.recorder.trace(ids[0]) != nil {
		t.Error("oldest trace survived past the keep budget")
	}
	for _, id := range ids[1:] {
		if s.recorder.trace(id) == nil {
			t.Errorf("trace %s evicted within the keep budget", id)
		}
	}
}

// TestObservabilityByteIdentity is the determinism gate for the whole
// plane: with logging, the flight recorder, and trace capture all
// armed, compile response bodies are byte-identical to a bare server's
// — and a traced miss is byte-identical to the hit that follows it.
func TestObservabilityByteIdentity(t *testing.T) {
	var buf syncLogBuffer
	_, bare := newTestServer(t, Config{RecorderEntries: -1})
	_, armed := newTestServer(t, Config{
		Logger:      slog.New(slog.NewJSONHandler(&buf, nil)),
		TraceSlow:   time.Nanosecond,
		TraceErrors: true,
	})

	for _, req := range []CompileRequest{
		{Kernel: "fig4", Machine: "fig5"},
		{Kernel: "DCT", Machine: "clustered4"},
		{Kernel: "no-such-kernel"},
	} {
		s1, _, b1 := postCompile(t, bare, req)
		s2, _, b2 := postCompile(t, armed, req)
		if s1 != s2 || !bytes.Equal(b1, b2) {
			t.Errorf("%+v: bare (%d) and armed (%d) bodies differ:\n%s\n%s", req, s1, s2, b1, b2)
		}
		s3, hdr, b3 := postCompile(t, armed, req)
		if s3 != s2 || !bytes.Equal(b2, b3) {
			t.Errorf("%+v: miss and replay bodies differ", req)
		}
		if s3 == http.StatusOK && hdr.Get(CacheStateHeader) != "hit" {
			t.Errorf("%+v: replay not served from cache (%s)", req, hdr.Get(CacheStateHeader))
		}
	}

	// The request ID must never leak into a body.
	if lines := parseLog(t, buf.Bytes()); len(lines) == 0 {
		t.Error("armed server logged nothing")
	} else {
		for _, ll := range lines {
			_, _, body := postCompile(t, armed, CompileRequest{Kernel: "fig4", Machine: "fig5"})
			if ll.ID != "" && bytes.Contains(body, []byte(ll.ID)) {
				t.Errorf("request ID %s leaked into a response body", ll.ID)
			}
		}
	}
}
