package daemon

import (
	"context"
	"sync"
)

// Singleflight dedup: concurrent requests for the same cache key share
// one backing compilation. The leader — the first request in — runs the
// work function and publishes its outcome; followers block on the
// flight's done channel (or their own context) without consuming a
// worker slot or an admission token. Outcomes are complete HTTP
// responses (status + body), so followers serve exactly the leader's
// bytes.

// outcome is one finished compile attempt as it will be served. kind
// names the error kind on non-2xx outcomes — logs and records want it
// without re-parsing the marshalled body. retryAfter carries the
// Retry-After header seconds on 429s (computed from the backlog at
// rejection time), so followers serve the same hint as the leader.
type outcome struct {
	status     int
	body       []byte // marshalled CompileResponse or ErrorBody
	kind       string
	retryAfter int
}

// flight is one in-progress compilation; done is closed after out is
// set. leaderID is the leader request's X-Cschedd-Request-Id, recorded
// at registration so every follower can correlate its own log line and
// flight-recorder record with the one backing compilation.
type flight struct {
	done     chan struct{}
	leaderID string
	out      outcome
}

// flightGroup tracks in-progress flights by cache key.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// join returns the in-progress flight for key (leader false), or
// registers a new one the caller must lead (leader true), stamping the
// caller's request ID as the flight's leader identity.
func (g *flightGroup) join(key, requestID string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{}), leaderID: requestID}
	g.m[key] = f
	return f, true
}

// finish publishes the leader's outcome and retires the flight. The
// cache is populated by the caller before finish, so a request that
// misses the flight map afterwards hits the cache instead of
// recompiling.
func (g *flightGroup) finish(key string, f *flight, out outcome) {
	f.out = out
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
}

// wait blocks until the flight completes or ctx is done, reporting
// which.
func (f *flight) wait(ctx context.Context) (outcome, error) {
	select {
	case <-f.done:
		return f.out, nil
	case <-ctx.Done():
		return outcome{}, ctx.Err()
	}
}
