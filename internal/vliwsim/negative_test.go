package vliwsim

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
)

// These tests corrupt finished schedules and check that the simulator
// — which re-derives every §4.2 rule dynamically — rejects them. They
// guard the oracle itself: a simulator that accepts broken schedules
// would validate nothing.

func freshSchedule(t *testing.T) (*core.Schedule, map[int64]int64) {
	t.Helper()
	b := ir.NewBuilder("victim")
	iv, _ := b.InductionVar("i", 0, 1)
	c1 := b.Emit(ir.MovI, "c1", b.Const(3))
	b.Loop()
	x := b.Emit(ir.Load, "x", iv, b.Const(0))
	p := b.Emit(ir.Mul, "p", b.Val(x), b.Val(c1))
	q := b.Emit(ir.Add, "q", b.Val(p), b.Const(7))
	b.Emit(ir.Store, "", b.Val(q), iv, b.Const(100))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	k.TripCount = 8
	s, err := core.Compile(k, machine.Distributed(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mem := map[int64]int64{}
	for i := int64(0); i < 8; i++ {
		mem[i] = i + 1
	}
	return s, mem
}

func mustFail(t *testing.T, s *core.Schedule, mem map[int64]int64, wantSub string) {
	t.Helper()
	_, err := Run(s, Config{InitMem: mem})
	if err == nil {
		t.Fatalf("simulator accepted a corrupted schedule (want error containing %q)", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error = %v, want substring %q", err, wantSub)
	}
}

func TestSimRejectsDoubleIssue(t *testing.T) {
	s, mem := freshSchedule(t)
	// Force two loop ops onto the same unit and cycle.
	var first ir.OpID = ir.NoOp
	for _, op := range s.Ops {
		if op.Block != ir.LoopBlock || !op.Opcode.HasResult() {
			continue
		}
		if first == ir.NoOp {
			first = op.ID
			continue
		}
		if s.Machine.FU(s.Assignments[first].FU).Executes(op.Opcode.Class()) {
			s.Assignments[op.ID] = s.Assignments[first]
			mustFail(t, s, mem, "issues")
			return
		}
	}
	t.Skip("no colliding pair found")
}

func TestSimRejectsBusConflict(t *testing.T) {
	s, mem := freshSchedule(t)
	// Give two different values' write stubs the same bus on the same
	// cycle by forcing one route's bus to another's.
	for i := range s.Routes {
		for j := range s.Routes {
			ri, rj := &s.Routes[i], &s.Routes[j]
			if ri.Value == rj.Value || ri.W.Bus == rj.W.Bus {
				continue
			}
			ci := s.Assignments[ri.Def].Cycle + s.Machine.Latency(s.Ops[ri.Def].Opcode)
			cj := s.Assignments[rj.Def].Cycle + s.Machine.Latency(s.Ops[rj.Def].Opcode)
			sameBlock := s.Ops[ri.Def].Block == s.Ops[rj.Def].Block
			if !sameBlock || s.Ops[ri.Def].Block != ir.LoopBlock {
				continue
			}
			if (ci-cj)%s.II != 0 {
				continue
			}
			ri.W.Bus = rj.W.Bus
			mustFail(t, s, mem, "bus")
			return
		}
	}
	t.Skip("no same-cycle pair found")
}

func TestSimRejectsMissingRoute(t *testing.T) {
	s, mem := freshSchedule(t)
	// Drop a route: its consumer's operand read must fail.
	if len(s.Routes) == 0 {
		t.Fatal("no routes")
	}
	s.Routes = s.Routes[1:]
	_, err := Run(s, Config{InitMem: mem})
	if err == nil {
		t.Fatal("simulator accepted a schedule with a missing route")
	}
}

func TestSimRejectsPrematureRead(t *testing.T) {
	s, mem := freshSchedule(t)
	// Pull a consumer before its producer's completion.
	for _, r := range s.Routes {
		defOp, useOp := s.Ops[r.Def], s.Ops[r.Use]
		if defOp.Block != useOp.Block || r.Distance != 0 {
			continue
		}
		if defOp.Opcode == ir.MovI {
			continue
		}
		a := s.Assignments[r.Use]
		a.Cycle = s.Assignments[r.Def].Cycle
		s.Assignments[r.Use] = a
		_, err := Run(s, Config{InitMem: mem})
		if err == nil {
			t.Fatal("simulator accepted a read at the producer's issue cycle")
		}
		return
	}
	t.Skip("no same-block route found")
}

func TestVerifierRejectsSameCorruptions(t *testing.T) {
	// The static verifier must catch the same premature-read corruption.
	s, _ := freshSchedule(t)
	for _, r := range s.Routes {
		defOp, useOp := s.Ops[r.Def], s.Ops[r.Use]
		if defOp.Block != useOp.Block || r.Distance != 0 || defOp.Opcode == ir.MovI {
			continue
		}
		a := s.Assignments[r.Use]
		a.Cycle = s.Assignments[r.Def].Cycle
		s.Assignments[r.Use] = a
		if err := core.VerifySchedule(s); err == nil {
			t.Fatal("verifier accepted a premature read")
		}
		return
	}
	t.Skip("no same-block route found")
}

func TestSimChecksLeafStubAgreement(t *testing.T) {
	s, mem := freshSchedule(t)
	// Desynchronize the operand read-stub table from the routes.
	for key, stub := range s.Reads {
		stub.Port++
		s.Reads[key] = stub
		mustFail(t, s, mem, "stub")
		return
	}
}
