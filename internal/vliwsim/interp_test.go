package vliwsim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
)

// TestOpcodeSemantics drives every opcode through the interpreter and
// checks its arithmetic against Go-native computation.
func TestOpcodeSemantics(t *testing.T) {
	fb := func(f float64) int64 { return int64(math.Float64bits(f)) }
	ff := func(b int64) float64 { return math.Float64frombits(uint64(b)) }

	type tc struct {
		name string
		op   ir.Opcode
		args []int64
		want int64
	}
	bigA, bigB := int64(0x123456789abcdef0), int64(0x0fedcba987654321)
	wantHi := func(a, b int64) int64 {
		// Reference 128-bit high word via math/bits-free computation:
		// split into 32-bit halves using big-integer-free arithmetic.
		neg := (a < 0) != (b < 0)
		ua, ub := uint64(a), uint64(b)
		if a < 0 {
			ua = uint64(-a)
		}
		if b < 0 {
			ub = uint64(-b)
		}
		alo, ahi := ua&0xffffffff, ua>>32
		blo, bhi := ub&0xffffffff, ub>>32
		t0 := alo * blo
		t1 := ahi*blo + t0>>32
		t2 := alo*bhi + t1&0xffffffff
		hi := ahi*bhi + t1>>32 + t2>>32
		lo := t2<<32 | t0&0xffffffff
		if neg {
			// two's complement negate the 128-bit value
			lo = ^lo + 1
			hi = ^hi
			if lo == 0 {
				hi++
			}
		}
		return int64(hi)
	}
	cases := []tc{
		{"add", ir.Add, []int64{5, -3}, 2},
		{"sub", ir.Sub, []int64{5, 9}, -4},
		{"neg", ir.Neg, []int64{7}, -7},
		{"and", ir.And, []int64{12, 10}, 8},
		{"or", ir.Or, []int64{12, 10}, 14},
		{"xor", ir.Xor, []int64{12, 10}, 6},
		{"not", ir.Not, []int64{0}, -1},
		{"shl", ir.Shl, []int64{3, 4}, 48},
		{"shr", ir.Shr, []int64{-8, 1}, int64(uint64(0xfffffffffffffff8) >> 1)},
		{"asr", ir.Asr, []int64{-8, 1}, -4},
		{"min", ir.Min, []int64{4, -2}, -2},
		{"max", ir.Max, []int64{4, -2}, 4},
		{"abs", ir.Abs, []int64{-11}, 11},
		{"cmplt", ir.CmpLT, []int64{1, 2}, 1},
		{"cmple", ir.CmpLE, []int64{2, 2}, 1},
		{"cmpeq", ir.CmpEQ, []int64{2, 3}, 0},
		{"cmpne", ir.CmpNE, []int64{2, 3}, 1},
		{"select-taken", ir.Select, []int64{5, 9}, 5},
		{"select-alt", ir.Select, []int64{0, 9}, 9},
		{"fadd", ir.FAdd, []int64{fb(1.5), fb(2.25)}, fb(3.75)},
		{"fsub", ir.FSub, []int64{fb(1.5), fb(2.25)}, fb(-0.75)},
		{"fneg", ir.FNeg, []int64{fb(1.5)}, fb(-1.5)},
		{"fmin", ir.FMin, []int64{fb(1.5), fb(-2)}, fb(-2)},
		{"fmax", ir.FMax, []int64{fb(1.5), fb(-2)}, fb(1.5)},
		{"fcmplt", ir.FCmpLT, []int64{fb(1), fb(2)}, 1},
		{"fabs", ir.FAbs, []int64{fb(-3.5)}, fb(3.5)},
		{"itof", ir.ItoF, []int64{7}, fb(7)},
		{"ftoi", ir.FtoI, []int64{fb(7.9)}, 7},
		{"mul", ir.Mul, []int64{-6, 7}, -42},
		{"mulhi-small", ir.MulHi, []int64{3, 4}, 0},
		{"mulhi-big", ir.MulHi, []int64{bigA, bigB}, wantHi(bigA, bigB)},
		{"mulq", ir.MulQ, []int64{300, 500, 8}, (300 * 500) >> 8},
		{"fmul", ir.FMul, []int64{fb(1.5), fb(-2)}, fb(-3)},
		{"div", ir.Div, []int64{17, 5}, 3},
		{"div-zero", ir.Div, []int64{17, 0}, 0},
		{"rem", ir.Rem, []int64{17, 5}, 2},
		{"rem-zero", ir.Rem, []int64{17, 0}, 0},
		{"fdiv", ir.FDiv, []int64{fb(3), fb(2)}, fb(1.5)},
		{"fsqrt", ir.FSqrt, []int64{fb(6.25)}, fb(2.5)},
		{"copy", ir.Copy, []int64{42}, 42},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := ir.NewBuilder("sem")
			args := make([]ir.Operand, len(c.args))
			for i, a := range c.args {
				args[i] = b.Const(a)
			}
			// Pad MulQ's shift and Load-style extras already included.
			v := b.Emit(c.op, "v", args...)
			b.Emit(ir.Store, "", b.Val(v), b.Const(0), b.Const(0))
			k, err := b.Finish()
			if err != nil {
				t.Fatal(err)
			}
			k.TripCount = 0
			mem, err := Interpret(k, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got := mem[0]; got != c.want {
				t.Errorf("%s%v = %d (%v), want %d (%v)",
					c.op, c.args, got, ff(got), c.want, ff(c.want))
			}
		})
	}
}

func TestPermAndShuffleSemantics(t *testing.T) {
	b := ir.NewBuilder("perm")
	// perm: rearrange bytes of 0x0807060504030201 with the identity
	// selector 0x76543210 picks bytes 0..7 in order.
	v := b.Emit(ir.Perm, "p", b.Const(0x0807060504030201), b.Const(0x76543210))
	b.Emit(ir.Store, "", b.Val(v), b.Const(0), b.Const(0))
	// shuffle interleaves low halves.
	s := b.Emit(ir.Shuffle, "s", b.Const(0x11112222), b.Const(0x33334444))
	b.Emit(ir.Store, "", b.Val(s), b.Const(1), b.Const(0))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Interpret(k, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mem[0] != 0x0807060504030201 {
		t.Errorf("perm identity = %#x", mem[0])
	}
	if mem[1] != 0x3333444411112222 {
		t.Errorf("shuffle = %#x", mem[1])
	}
}

func TestInterpretScratchBounds(t *testing.T) {
	b := ir.NewBuilder("oob")
	b.Emit(ir.SPWrite, "", b.Const(1), b.Const(99999))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Interpret(k, nil, 16); err == nil {
		t.Error("out-of-range scratchpad write accepted")
	}
}

func TestInterpretMatchesSimulatorOnSuiteKernel(t *testing.T) {
	// Identity between the two oracles is exercised broadly by the
	// property tests; spot-check a phi-carrying kernel here.
	b := ir.NewBuilder("spot")
	acc0 := b.Emit(ir.MovI, "acc0", b.Const(100))
	b.Loop()
	iv, _ := b.InductionVar("i", 0, 1)
	acc := b.Accumulator(ir.Add, "acc", acc0, iv)
	b.Emit(ir.Store, "", ir.ValueOperand(acc), b.Const(7), b.Const(0))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	k.TripCount = 6
	want, err := Interpret(k, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 100 + 0+1+2+3+4+5 = 115.
	if want[7] != 115 {
		t.Fatalf("interpreter result = %d, want 115", want[7])
	}
}

func TestTraceOutput(t *testing.T) {
	b := ir.NewBuilder("trace")
	iv, _ := b.InductionVar("i", 0, 1)
	b.Loop()
	x := b.Emit(ir.Load, "x", iv, b.Const(0))
	p := b.Emit(ir.Mul, "p", b.Val(x), b.Const(2))
	b.Emit(ir.Store, "", b.Val(p), iv, b.Const(10))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	k.TripCount = 3
	s, err := core.Compile(k, machine.Distributed(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if _, err := Run(s, Config{InitMem: map[int64]int64{0: 5, 1: 6, 2: 7}, Trace: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cycle", "iter", "load", "mul", "store", "writeback", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// Iterations overlap: the trace must show iteration 1 issuing
	// before iteration 0 has fully drained when II < loop span.
	if s.II < s.LoopSpan && !strings.Contains(out, "iter   1") {
		t.Errorf("trace shows no overlapped iteration:\n%s", out)
	}
}
