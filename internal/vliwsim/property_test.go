package vliwsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
)

// This file holds the randomized properties the scheduler must uphold
// on every input:
//
//   - any well-formed kernel schedules on any of the paper machines;
//   - the schedule passes the independent structural verifier;
//   - executing the schedule cycle-accurately produces exactly the
//     memory image a direct program-order interpretation produces;
//   - compilation is deterministic.

// randomKernel generates a well-formed kernel from a seed: a preamble
// of constants, a loop of random arithmetic over loads, loop-carried
// accumulators, and stores of live results.
func randomKernel(seed int64, aluOnly bool) *ir.Kernel {
	rng := rand.New(rand.NewSource(seed))
	b := ir.NewBuilder("rand")
	iv, _ := b.InductionVar("i", 0, 1)

	nconst := 1 + rng.Intn(3)
	var pool []ir.ValueID // int-typed values usable as operands
	for i := 0; i < nconst; i++ {
		pool = append(pool, b.Emit(ir.MovI, "c", b.Const(int64(rng.Intn(64)+1))))
	}
	var accs []ir.ValueID
	naccs := rng.Intn(3)
	accInit := make([]ir.ValueID, naccs)
	for i := 0; i < naccs; i++ {
		accInit[i] = b.Emit(ir.MovI, "acc0", b.Const(int64(rng.Intn(16))))
	}

	b.Loop()
	// Loads from distinct input regions.
	nloads := 1 + rng.Intn(3)
	for i := 0; i < nloads; i++ {
		pool = append(pool, b.Emit(ir.Load, "x", iv, b.Const(int64(i*128))))
	}
	operand := func() ir.Operand {
		if rng.Intn(4) == 0 {
			return b.Const(int64(rng.Intn(32) + 1))
		}
		return b.Val(pool[rng.Intn(len(pool))])
	}
	opcodes := []ir.Opcode{ir.Add, ir.Sub, ir.Mul, ir.Min, ir.Max, ir.Xor, ir.And, ir.Or}
	if aluOnly {
		// The Fig. 5 machine has no multiplier.
		opcodes = []ir.Opcode{ir.Add, ir.Sub, ir.Min, ir.Max, ir.Xor, ir.And, ir.Or}
	}
	nops := 2 + rng.Intn(10)
	for i := 0; i < nops; i++ {
		opc := opcodes[rng.Intn(len(opcodes))]
		pool = append(pool, b.Emit(opc, "t", operand(), operand()))
	}
	for i := 0; i < naccs; i++ {
		accs = append(accs, b.Accumulator(ir.Add, "acc", accInit[i], operand()))
	}
	// Store a handful of live values to distinct output regions.
	nstores := 1 + rng.Intn(3)
	for i := 0; i < nstores; i++ {
		v := pool[len(pool)-1-rng.Intn(minInt(4, len(pool)))]
		if len(accs) > 0 && rng.Intn(2) == 0 {
			v = accs[rng.Intn(len(accs))]
		}
		b.Emit(ir.Store, "", ir.ValueOperand(v), iv, b.Const(int64(2048+i*128)))
	}
	b.SetTripCount(5 + rng.Intn(8))
	return b.MustFinish()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func randomMem(seed int64) map[int64]int64 {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	mem := make(map[int64]int64)
	for a := int64(0); a < 512; a++ {
		mem[a] = int64(rng.Intn(1000) - 500)
	}
	return mem
}

// TestPropertyScheduleAndSimulate is the main end-to-end property: for
// random kernels and every paper machine, scheduling succeeds, the
// verifier passes, and cycle-accurate execution matches the direct
// interpreter exactly.
func TestPropertyScheduleAndSimulate(t *testing.T) {
	machines := allMachines()
	machines = append(machines, machine.MotivatingExample())
	n := 40
	if testing.Short() {
		n = 10
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		m := machines[int(seed)%len(machines)]
		k := randomKernel(seed, m.Name == "fig5")
		mem := randomMem(seed)
		want, err := Interpret(k, mem, 0)
		if err != nil {
			t.Fatalf("seed %d: interpret: %v\n%s", seed, err, k.Dump())
		}
		s, err := core.Compile(k, m, core.Options{})
		if err != nil {
			t.Fatalf("seed %d on %s: %v\n%s", seed, m.Name, err, k.Dump())
		}
		if err := core.VerifySchedule(s); err != nil {
			t.Fatalf("seed %d on %s: verify: %v\n%s", seed, m.Name, err, s.Dump())
		}
		res, err := Run(s, Config{InitMem: mem})
		if err != nil {
			t.Fatalf("seed %d on %s: simulate: %v\n%s", seed, m.Name, err, s.Dump())
		}
		for addr, wv := range want {
			if res.Mem[addr] != wv {
				t.Fatalf("seed %d on %s: mem[%d] = %d, want %d",
					seed, m.Name, addr, res.Mem[addr], wv)
			}
		}
	}
}

// TestPropertyDeterminism: compiling the same kernel twice yields
// identical placements.
func TestPropertyDeterminism(t *testing.T) {
	k := randomKernel(7, false)
	m := machine.Distributed()
	a, err := core.Compile(k, m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Compile(k, m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.II != b.II || len(a.Ops) != len(b.Ops) {
		t.Fatalf("nondeterministic: II %d vs %d, ops %d vs %d", a.II, b.II, len(a.Ops), len(b.Ops))
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatalf("nondeterministic placement of op %d: %+v vs %+v",
				i, a.Assignments[i], b.Assignments[i])
		}
	}
}

// TestQuickRouteInvariants uses testing/quick to fuzz seeds and check
// that every route of a compiled schedule meets the §4.2 structure: the
// stubs meet in one register file and belong to the endpoint units.
func TestQuickRouteInvariants(t *testing.T) {
	f := func(seed int64, archIdx uint8) bool {
		if seed < 0 {
			seed = -seed
		}
		k := randomKernel(seed%1000+1, false)
		m := allMachines()[int(archIdx)%4]
		s, err := core.Compile(k, m, core.Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, r := range s.Routes {
			if r.W.RF != r.R.RF {
				return false
			}
			if r.W.FU != s.Assignments[r.Def].FU || r.R.FU != s.Assignments[r.Use].FU {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
