// Package vliwsim executes finished schedules cycle by cycle on a
// software model of the target machine, serving as an oracle that is
// independent of the scheduler's own bookkeeping.
//
// The simulator software-pipelines the loop exactly as the hardware
// would: iteration k issues its operations at preambleLength + k·II +
// cycle, so consecutive iterations overlap. Every cycle it fires
// functional-unit issues, drives buses, reads and writes register-file
// ports, and checks that
//
//   - no functional unit issues two operations in one cycle,
//   - every §4.2 interconnect-sharing rule holds on the dynamic value
//     instances actually moved (checked through the shared rules
//     engine, internal/rules — the same table the scheduler and the
//     structural verifier use),
//   - every operand read finds the exact dynamic value instance the
//     program semantics require, already present in the register file
//     the read stub names.
//
// Because it also computes concrete results (including memory and
// scratchpad state), comparing the final memory against a reference
// implementation validates end-to-end correctness of both the schedule
// and the routing.
package vliwsim

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/rules"
)

// Config controls one simulation run.
type Config struct {
	// TripCount overrides the kernel's nominal trip count when > 0.
	TripCount int
	// InitMem seeds data memory (word addressed).
	InitMem map[int64]int64
	// ScratchSize is the scratchpad size in words (default 1024).
	ScratchSize int
	// Trace, when non-nil, receives a per-cycle execution log: every
	// issue with its resolved operand values and every register-file
	// write with its bus — the overlapped-iteration view a pipeline
	// debugger needs (iteration indices included). Internally the log is
	// one rendering of the structured event stream (see Tracer); the
	// text format is pinned by a golden test.
	Trace io.Writer
	// Tracer, when non-nil, receives the same issue/writeback stream as
	// structured internal/obs events (KindSimIssue, KindSimWriteback),
	// e.g. an *obs.Recorder feeding obs.WriteChromeTrace. Trace and
	// Tracer compose: both may be set.
	Tracer obs.Tracer
}

// Result is the outcome of a simulation.
type Result struct {
	Cycles        int
	Mem           map[int64]int64
	Reads         int // operand reads checked
	Writes        int // register-file writes performed
	BusTransfers  int
	StoresDone    int
	IterationsRun int
}

// instance identifies one dynamic value: an SSA value produced in one
// iteration. Preamble definitions use iteration -1.
type instance struct {
	value ir.ValueID
	iter  int
}

// ruleValue maps a dynamic instance onto the shared §4.2 rules
// engine's value-instance identity: the producing iteration plays the
// role the flat cycle plays for the static checks. Two dynamic claims
// compare equal exactly when they move the same instance.
func ruleValue(inst instance) rules.Value {
	return rules.Value{ID: inst.value, Flat: int32(inst.iter)}
}

type sim struct {
	s      *core.Schedule
	cfg    Config
	tracer obs.Tracer // effective sink: cfg.Tracer + text renderer for cfg.Trace
	trip   int
	base   int // global cycle the loop's iteration 0 starts at

	// leafRoute maps (operand, original source value) to the final
	// route delivering it, which names the (possibly copy-renamed)
	// value actually deposited in the read stub's register file.
	leafRoute map[core.OperandKey]map[ir.ValueID]core.Route

	vals    map[instance]int64
	rf      map[machine.RFID]map[instance]int // instance → global write cycle
	mem     map[int64]int64
	scratch []int64

	res Result
}

// Run executes the schedule and returns the result, or an error
// describing the first structural or semantic violation.
func Run(s *core.Schedule, cfg Config) (*Result, error) {
	trip := s.Kernel.TripCount
	if cfg.TripCount > 0 {
		trip = cfg.TripCount
	}
	scratchSize := cfg.ScratchSize
	if scratchSize == 0 {
		scratchSize = 1024
	}
	sm := &sim{
		s:       s,
		cfg:     cfg,
		trip:    trip,
		base:    s.PreambleLen,
		vals:    make(map[instance]int64),
		rf:      make(map[machine.RFID]map[instance]int),
		mem:     make(map[int64]int64),
		scratch: make([]int64, scratchSize),
	}
	for a, v := range cfg.InitMem {
		sm.mem[a] = v
	}
	sm.tracer = cfg.Tracer
	if cfg.Trace != nil {
		sm.tracer = obs.Multi(sm.tracer, &textSink{w: cfg.Trace, s: s})
	}
	sm.buildLeafRoutes()
	if err := sm.run(); err != nil {
		return nil, err
	}
	sm.res.Mem = sm.mem
	sm.res.IterationsRun = trip
	return &sm.res, nil
}

// event is one operation issue at a global cycle.
type event struct {
	op   ir.OpID
	iter int // -1 for preamble
}

func (sm *sim) run() error {
	s := sm.s
	// Build the global issue timetable.
	lastCycle := 0
	events := make(map[int][]event)
	addEvent := func(cycle int, ev event) {
		events[cycle] = append(events[cycle], ev)
		lat := s.Machine.Latency(s.Ops[ev.op].Opcode)
		if end := cycle + lat; end > lastCycle {
			lastCycle = end
		}
	}
	for _, op := range s.Ops {
		a := s.Assignments[op.ID]
		if op.Block == ir.PreambleBlock {
			addEvent(a.Cycle, event{op: op.ID, iter: -1})
			continue
		}
		for k := 0; k < sm.trip; k++ {
			addEvent(sm.base+k*s.II+a.Cycle, event{op: op.ID, iter: k})
		}
	}
	// Routes grouped by def op (write side) and operand (read side).
	writesByDef := make(map[ir.OpID][]core.Route)
	for _, r := range s.Routes {
		writesByDef[r.Def] = append(writesByDef[r.Def], r)
	}

	type pendingWrite struct {
		cycle int
		ev    event
	}
	completions := make(map[int][]event)

	// One CycleState, machine-sized, reset per cycle: the epoch-stamped
	// bitset reset is O(1), so the per-cycle rules check allocates
	// nothing once the entry list has grown to its high-water mark.
	cs := rules.NewCycleStateFor(s.Machine)

	for cycle := 0; cycle <= lastCycle; cycle++ {
		// One rules-engine cycle checks every §4.2 sharing rule across
		// this cycle's reads (issue phase) and writes (completion phase).
		cs.Reset()
		fuUse := make(map[machine.FUID]ir.OpID)
		var stores []event

		// Issue phase: operand reads and functional-unit occupancy.
		for _, ev := range events[cycle] {
			op := s.Ops[ev.op]
			a := s.Assignments[ev.op]
			if prev, busy := fuUse[a.FU]; busy {
				return fmt.Errorf("vliwsim: cycle %d: unit %s issues op%d and op%d",
					cycle, s.Machine.FU(a.FU).Name, prev, ev.op)
			}
			fuUse[a.FU] = ev.op

			args, err := sm.readOperands(ev, cycle, cs)
			if err != nil {
				return err
			}
			result, isStore, err := sm.execute(ev, op, args)
			if err != nil {
				return err
			}
			if sm.tracer != nil {
				sm.emitIssue(cycle, ev, op, a.FU, args, result)
			}
			if isStore {
				stores = append(stores, ev)
				_ = result
			} else if op.Result != ir.NoValue {
				sm.vals[instance{op.Result, ev.iter}] = result
			}
			lat := s.Machine.Latency(op.Opcode)
			completions[cycle+lat-1] = append(completions[cycle+lat-1], ev)
		}

		// Completion phase: drive write stubs.
		for _, ev := range completions[cycle] {
			op := s.Ops[ev.op]
			if op.Result == ir.NoValue {
				continue
			}
			inst := instance{op.Result, ev.iter}
			seen := make(map[machine.WriteStub]bool)
			for _, r := range writesByDef[ev.op] {
				if seen[r.W] {
					continue
				}
				seen[r.W] = true
				if err := sm.driveWrite(cycle, ev, r.W, inst, cs); err != nil {
					return err
				}
				if sm.tracer != nil {
					sm.emitWriteback(cycle, ev, r.W, inst)
				}
			}
		}
		delete(completions, cycle)

		// Memory updates become visible to later cycles.
		for range stores {
			sm.res.StoresDone++
		}
	}
	sm.res.Cycles = lastCycle + 1
	return nil
}

// rootOf resolves a (possibly copy-produced) value to the original
// kernel value it carries.
func (sm *sim) rootOf(v ir.ValueID) ir.ValueID {
	for {
		def := sm.s.Ops[sm.s.Values[v].Def]
		if def.Opcode == ir.Copy && int(def.ID) >= len(sm.s.Kernel.Ops) {
			v = def.Args[0].Srcs[0].Value
			continue
		}
		return v
	}
}

// buildLeafRoutes indexes, for every operand, the final delivering
// route per original source value.
func (sm *sim) buildLeafRoutes() {
	sm.leafRoute = make(map[core.OperandKey]map[ir.ValueID]core.Route)
	for _, r := range sm.s.Routes {
		key := core.OperandKey{Op: r.Use, Slot: r.Slot}
		if sm.leafRoute[key] == nil {
			sm.leafRoute[key] = make(map[ir.ValueID]core.Route)
		}
		sm.leafRoute[key][sm.rootOf(r.Value)] = r
	}
}

// emitIssue reports one operation issue as a structured event. The
// per-cycle text log is rendered from this same event by textSink.
func (sm *sim) emitIssue(cycle int, ev event, op *ir.Op, fu machine.FUID, args []int64, result int64) {
	e := obs.Event{
		Kind:  obs.KindSimIssue,
		Track: sm.s.Machine.FU(fu).Name,
		Name:  op.Name,
		Op:    int32(ev.op),
		Cycle: int32(cycle),
		Iter:  int32(ev.iter),
		FU:    int32(fu),
		Args:  args,
	}
	if op.Result != ir.NoValue {
		e.Value = result
		e.HasValue = true
	}
	sm.tracer.Emit(e)
}

// emitWriteback reports one register-file delivery as a structured
// event.
func (sm *sim) emitWriteback(cycle int, ev event, w machine.WriteStub, inst instance) {
	sm.tracer.Emit(obs.Event{
		Kind:     obs.KindSimWriteback,
		Track:    sm.s.Machine.Buses[w.Bus].Name,
		Name:     sm.s.Values[inst.value].Name,
		Op:       int32(ev.op),
		Cycle:    int32(cycle),
		Iter:     int32(ev.iter),
		RF:       int32(w.RF),
		Bus:      int32(w.Bus),
		Port:     int32(w.Port),
		Value:    sm.vals[inst],
		HasValue: true,
	})
}

// textSink renders KindSimIssue / KindSimWriteback events in the
// simulator's classic per-cycle text format. The format is pinned by
// TestTraceTextGolden: tools parse these lines.
type textSink struct {
	w io.Writer
	s *core.Schedule
}

func (t *textSink) Emit(ev obs.Event) {
	switch ev.Kind {
	case obs.KindSimIssue:
		op := t.s.Ops[ir.OpID(ev.Op)]
		name := ev.Name
		if name == "" {
			name = op.Opcode.String()
		}
		fmt.Fprintf(t.w, "cycle %4d | %-6s iter %3d  %-8s %s args=%v",
			ev.Cycle, ev.Track, ev.Iter, op.Opcode, name, ev.Args)
		if ev.HasValue {
			fmt.Fprintf(t.w, " -> %d", ev.Value)
		}
		fmt.Fprintln(t.w)
	case obs.KindSimWriteback:
		fmt.Fprintf(t.w, "cycle %4d | writeback %s=%d (iter %d) via %s -> %s\n",
			ev.Cycle, ev.Name, ev.Value, ev.Iter,
			ev.Track, t.s.Machine.RegFiles[machine.RFID(ev.RF)].Name)
	}
}

// readOperands resolves, checks, and fetches every operand of an
// issuing operation through its read stub.
func (sm *sim) readOperands(ev event, cycle int, cs *rules.CycleState) ([]int64, error) {
	s := sm.s
	op := s.Ops[ev.op]
	args := make([]int64, len(op.Args))
	for slot, arg := range op.Args {
		switch arg.Kind {
		case ir.OperandConst:
			args[slot] = arg.Const
			continue
		case ir.OperandValue:
		default:
			return nil, fmt.Errorf("vliwsim: op%d slot %d: bad operand", ev.op, slot)
		}
		orig, err := sm.resolveInstance(ev, arg)
		if err != nil {
			return nil, err
		}
		key := core.OperandKey{Op: ev.op, Slot: slot}
		stub, ok := s.Reads[key]
		if !ok {
			return nil, fmt.Errorf("vliwsim: op%d slot %d has no read stub", ev.op, slot)
		}
		// Copies rename values along the route; the register file holds
		// the leaf route's value, produced in the original definition's
		// iteration (in-loop copies run in their source's iteration,
		// cross-block copies in the preamble).
		// Normalize through copy chains: a copy's own operand names its
		// immediate source, which may itself be a copy result.
		leaf, ok := sm.leafRoute[key][sm.rootOf(orig.value)]
		if !ok {
			return nil, fmt.Errorf("vliwsim: op%d slot %d: no route delivers v%d", ev.op, slot, orig.value)
		}
		if leaf.R != stub {
			return nil, fmt.Errorf("vliwsim: op%d slot %d: leaf route stub %v disagrees with operand stub %v",
				ev.op, slot, leaf.R, stub)
		}
		inst := instance{leaf.Value, orig.iter}
		if s.Ops[leaf.Def].Block == ir.PreambleBlock {
			inst.iter = -1
		}
		// The instance must already be present in the stub's file.
		wcycle, present := sm.rf[stub.RF][inst]
		if !present {
			return nil, fmt.Errorf("vliwsim: cycle %d: op%d slot %d reads v%d(iter %d) absent from %s",
				cycle, ev.op, slot, inst.value, inst.iter, s.Machine.RegFiles[stub.RF].Name)
		}
		if wcycle >= cycle {
			return nil, fmt.Errorf("vliwsim: cycle %d: op%d slot %d reads v%d(iter %d) written only at %d",
				cycle, ev.op, slot, inst.value, inst.iter, wcycle)
		}
		// The §4.2 sharing rules, checked by the shared rules engine on
		// the dynamic instance actually moved this cycle.
		desc := fmt.Sprintf("read op%d.%d of v%d(iter %d)", ev.op, slot, inst.value, inst.iter)
		opnd := int32(ev.op)*8 + int32(slot) + 1
		if cf := cs.Read(stub, ruleValue(inst), opnd, desc); cf != nil {
			return nil, fmt.Errorf("vliwsim: cycle %d: %w", cycle, cf)
		}
		sm.res.Reads++
		sm.res.BusTransfers++
		v, ok := sm.vals[inst]
		if !ok {
			return nil, fmt.Errorf("vliwsim: cycle %d: v%d(iter %d) has no computed value", cycle, inst.value, inst.iter)
		}
		args[slot] = v
	}
	return args, nil
}

// resolveInstance maps an operand to the dynamic instance program
// semantics require at this iteration.
func (sm *sim) resolveInstance(ev event, arg ir.Operand) (instance, error) {
	s := sm.s
	if len(arg.Srcs) == 1 {
		src := arg.Srcs[0]
		defIter := ev.iter
		if s.Ops[s.Values[src.Value].Def].Block == ir.PreambleBlock {
			defIter = -1
		} else {
			defIter -= src.Distance
			if defIter < 0 {
				return instance{}, fmt.Errorf("vliwsim: op%d reads v%d before first definition", ev.op, src.Value)
			}
		}
		return instance{src.Value, defIter}, nil
	}
	// Phi: the initial (preamble) source covers the first iterations,
	// the loop-carried source the rest.
	var init ir.Src
	var carried ir.Src
	for _, src := range arg.Srcs {
		if s.Ops[s.Values[src.Value].Def].Block == ir.PreambleBlock {
			init = src
		} else {
			carried = src
		}
	}
	if ev.iter < carried.Distance {
		return instance{init.Value, -1}, nil
	}
	return instance{carried.Value, ev.iter - carried.Distance}, nil
}

// driveWrite sends a completed result through one write stub, checking
// the §4.2 rules through the shared rules engine.
func (sm *sim) driveWrite(cycle int, ev event, w machine.WriteStub, inst instance, cs *rules.CycleState) error {
	desc := fmt.Sprintf("write v%d(iter %d) by op%d", inst.value, inst.iter, ev.op)
	if cf := cs.Write(w, ruleValue(inst), desc); cf != nil {
		return fmt.Errorf("vliwsim: cycle %d: %w", cycle, cf)
	}
	if sm.rf[w.RF] == nil {
		sm.rf[w.RF] = make(map[instance]int)
	}
	if _, dup := sm.rf[w.RF][inst]; !dup {
		sm.rf[w.RF][inst] = cycle
	}
	sm.res.Writes++
	sm.res.BusTransfers++
	return nil
}

// execute evaluates one operation's semantics.
func (sm *sim) execute(ev event, op *ir.Op, args []int64) (int64, bool, error) {
	f := func(x int64) float64 { return math.Float64frombits(uint64(x)) }
	fi := func(x float64) int64 { return int64(math.Float64bits(x)) }
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op.Opcode {
	case ir.MovI:
		return args[0], false, nil
	case ir.Add:
		return args[0] + args[1], false, nil
	case ir.Sub:
		return args[0] - args[1], false, nil
	case ir.Neg:
		return -args[0], false, nil
	case ir.And:
		return args[0] & args[1], false, nil
	case ir.Or:
		return args[0] | args[1], false, nil
	case ir.Xor:
		return args[0] ^ args[1], false, nil
	case ir.Not:
		return ^args[0], false, nil
	case ir.Shl:
		return args[0] << uint(args[1]&63), false, nil
	case ir.Shr:
		return int64(uint64(args[0]) >> uint(args[1]&63)), false, nil
	case ir.Asr:
		return args[0] >> uint(args[1]&63), false, nil
	case ir.Min:
		if args[0] < args[1] {
			return args[0], false, nil
		}
		return args[1], false, nil
	case ir.Max:
		if args[0] > args[1] {
			return args[0], false, nil
		}
		return args[1], false, nil
	case ir.Abs:
		if args[0] < 0 {
			return -args[0], false, nil
		}
		return args[0], false, nil
	case ir.CmpLT:
		return b2i(args[0] < args[1]), false, nil
	case ir.CmpLE:
		return b2i(args[0] <= args[1]), false, nil
	case ir.CmpEQ:
		return b2i(args[0] == args[1]), false, nil
	case ir.CmpNE:
		return b2i(args[0] != args[1]), false, nil
	case ir.Select:
		if args[0] != 0 {
			return args[0], false, nil
		}
		return args[1], false, nil
	case ir.FAdd:
		return fi(f(args[0]) + f(args[1])), false, nil
	case ir.FSub:
		return fi(f(args[0]) - f(args[1])), false, nil
	case ir.FNeg:
		return fi(-f(args[0])), false, nil
	case ir.FMin:
		return fi(math.Min(f(args[0]), f(args[1]))), false, nil
	case ir.FMax:
		return fi(math.Max(f(args[0]), f(args[1]))), false, nil
	case ir.FCmpLT:
		return b2i(f(args[0]) < f(args[1])), false, nil
	case ir.FAbs:
		return fi(math.Abs(f(args[0]))), false, nil
	case ir.ItoF:
		return fi(float64(args[0])), false, nil
	case ir.FtoI:
		return int64(f(args[0])), false, nil
	case ir.Mul:
		return args[0] * args[1], false, nil
	case ir.MulHi:
		hi, _ := mul128(args[0], args[1])
		return hi, false, nil
	case ir.MulQ:
		return (args[0] * args[1]) >> uint(args[2]&63), false, nil
	case ir.FMul:
		return fi(f(args[0]) * f(args[1])), false, nil
	case ir.Div:
		if args[1] == 0 {
			return 0, false, nil
		}
		return args[0] / args[1], false, nil
	case ir.Rem:
		if args[1] == 0 {
			return 0, false, nil
		}
		return args[0] % args[1], false, nil
	case ir.FDiv:
		return fi(f(args[0]) / f(args[1])), false, nil
	case ir.FSqrt:
		return fi(math.Sqrt(f(args[0]))), false, nil
	case ir.Load:
		return sm.mem[args[0]+args[1]], false, nil
	case ir.Store:
		sm.mem[args[1]+args[2]] = args[0]
		return 0, true, nil
	case ir.SPRead:
		idx := args[0]
		if idx < 0 || idx >= int64(len(sm.scratch)) {
			return 0, false, fmt.Errorf("vliwsim: scratchpad read out of range: %d", idx)
		}
		return sm.scratch[idx], false, nil
	case ir.SPWrite:
		idx := args[1]
		if idx < 0 || idx >= int64(len(sm.scratch)) {
			return 0, true, fmt.Errorf("vliwsim: scratchpad write out of range: %d", idx)
		}
		sm.scratch[idx] = args[0]
		return 0, true, nil
	case ir.Perm:
		// Byte permutation: rearrange args[0]'s bytes per args[1]'s
		// nibble selectors.
		var out int64
		for i := 0; i < 8; i++ {
			sel := (args[1] >> (4 * i)) & 0xf
			byteVal := (args[0] >> (8 * (sel & 7))) & 0xff
			out |= byteVal << (8 * i)
		}
		return out, false, nil
	case ir.Shuffle:
		// Half-word interleave of the two operands.
		lo := args[0] & 0xffffffff
		hi := args[1] & 0xffffffff
		return lo | hi<<32, false, nil
	case ir.Copy:
		return args[0], false, nil
	}
	return 0, false, fmt.Errorf("vliwsim: op%d: unimplemented opcode %v", op.ID, op.Opcode)
}

func mul128(a, b int64) (hi, lo int64) {
	// 64×64→128 signed multiply via unsigned pieces.
	au, bu := uint64(a), uint64(b)
	alo, ahi := au&0xffffffff, au>>32
	blo, bhi := bu&0xffffffff, bu>>32
	t := alo * blo
	w0 := t & 0xffffffff
	k := t >> 32
	t = ahi*blo + k
	w1 := t & 0xffffffff
	w2 := t >> 32
	t = alo*bhi + w1
	k = t >> 32
	hiU := ahi*bhi + w2 + k
	loU := (t << 32) + w0
	hi = int64(hiU)
	if a < 0 {
		hi -= b
	}
	if b < 0 {
		hi -= a
	}
	return hi, int64(loU)
}
