package vliwsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
)

// TestFig6IncorrectScheduleRejected reconstructs the paper's Fig. 6:
// the schedule a conventional scheduler produces for the Fig. 4
// fragment on the Fig. 5 machine — operations 1 and 2 both on cycle 1,
// operation 4 on cycle 2 — is "incorrect ... because operation 1 and
// operation 2 both need to write to the same register file using the
// same bus in order to allow operation 4 to occur on the next cycle"
// (§2). We build that placement by hand, force the implied conflicting
// interconnect allocation, and check both oracles reject it while the
// communication-scheduled Fig. 7 equivalent passes.
func TestFig6IncorrectScheduleRejected(t *testing.T) {
	m := machine.MotivatingExample()

	// The Fig. 4 fragment.
	b := ir.NewBuilder("fig4")
	a := b.Emit(ir.Load, "a", b.Const(100), b.Const(0))
	bb := b.Emit(ir.Add, "b", b.Const(1), b.Const(2))
	b.Emit(ir.Add, "c", b.Const(3), b.Const(4))
	b.Emit(ir.Add, "d", b.Val(a), b.Val(bb)) // op 3
	k := b.MustFinish()

	// First, the honest path: communication scheduling succeeds and
	// both oracles accept its result.
	good, err := core.Compile(k, m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySchedule(good); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(good, Config{InitMem: map[int64]int64{100: 40}}); err != nil {
		t.Fatal(err)
	}

	// Now corrupt it into the Fig. 6 shape: force d (op 3) onto add0 at
	// the cycle right after a and b, with both a's and b's routes
	// claiming the same bus into the same register file on the same
	// cycle — the allocation Fig. 6 implicitly requires.
	bad := *good
	bad.Assignments = append([]core.Assignment(nil), good.Assignments...)
	bad.Routes = append([]core.Route(nil), good.Routes...)

	// Place a and b on cycle 0 (they already are, on ls and add0) and d
	// on cycle 1 reading both from the left file rf0 through add0.
	var add0 machine.FUID
	for _, fu := range m.FUs {
		if fu.Name == "add0" {
			add0 = fu.ID
		}
	}
	bad.Assignments[3] = core.Assignment{FU: add0, Cycle: 1, Scheduled: true}
	// Both inputs of add0 read rf0; so both a and b must be written
	// into rf0 on cycle 0 — over the single bus that feeds it.
	rf0 := machine.RFID(0)
	var busA machine.BusID = -1
	var wp0 machine.WPID = -1
	for _, ws := range m.WriteStubs(add0) {
		if ws.RF == rf0 {
			busA, wp0 = ws.Bus, ws.Port
		}
	}
	if busA < 0 {
		t.Fatal("no write stub into rf0")
	}
	var lsID machine.FUID
	for _, fu := range m.FUs {
		if fu.Name == "ls" {
			lsID = fu.ID
		}
	}
	reads := make(map[core.OperandKey]machine.ReadStub)
	for key, stub := range good.Reads {
		reads[key] = stub
	}
	rs0 := m.ReadStubs(add0, 0)[0]
	rs1 := m.ReadStubs(add0, 1)[0]
	for i := range bad.Routes {
		r := &bad.Routes[i]
		switch {
		case r.Value == 0 && r.Use == 3: // a -> d
			r.W = machine.WriteStub{FU: lsID, Bus: busA, Port: wp0, RF: rf0}
			r.R = rs0
			reads[core.OperandKey{Op: 3, Slot: 0}] = rs0
		case r.Value == 1 && r.Use == 3: // b -> d
			r.W = machine.WriteStub{FU: add0, Bus: busA, Port: wp0, RF: rf0}
			r.R = rs1
			reads[core.OperandKey{Op: 3, Slot: 1}] = rs1
		}
	}
	bad.Reads = reads

	if err := core.VerifySchedule(&bad); err == nil {
		t.Error("verifier accepted the Fig. 6 schedule (two values on one bus)")
	}
	if _, err := Run(&bad, Config{InitMem: map[int64]int64{100: 40}}); err == nil {
		t.Error("simulator accepted the Fig. 6 schedule")
	}
}
