package vliwsim

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
)

var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata golden files")

func fig4Kernel(t *testing.T) *ir.Kernel {
	t.Helper()
	b := ir.NewBuilder("fig4")
	a := b.Emit(ir.Load, "a", b.Const(100), b.Const(0))
	bb := b.Emit(ir.Add, "b", b.Const(1), b.Const(2))
	c := b.Emit(ir.Add, "c", b.Const(3), b.Const(4))
	d := b.Emit(ir.Add, "d", b.Val(a), b.Val(bb))
	e := b.Emit(ir.Add, "e", b.Val(a), b.Val(c))
	b.Emit(ir.Store, "", b.Val(d), b.Const(200), b.Const(0))
	b.Emit(ir.Store, "", b.Val(e), b.Const(201), b.Const(0))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestTraceTextGolden pins the simulator's per-cycle text log: the
// format is rendered from the structured event stream by textSink and
// must stay byte-identical — tools parse these lines.
func TestTraceTextGolden(t *testing.T) {
	s := compile(t, fig4Kernel(t), machine.MotivatingExample())
	var buf bytes.Buffer
	if _, err := Run(s, Config{InitMem: map[int64]int64{100: 40}, Trace: &buf}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_fig4.golden")
	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace text drifted from %s (run with -update-goldens to accept):\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestTraceStructuredEvents pins the structured side of the same
// stream: Config.Tracer receives KindSimIssue/KindSimWriteback events
// that agree with the Result counters, and text + structured sinks
// compose without interfering.
func TestTraceStructuredEvents(t *testing.T) {
	s := compile(t, fig4Kernel(t), machine.MotivatingExample())
	rec := obs.NewRecorder()
	var buf bytes.Buffer
	res, err := Run(s, Config{InitMem: map[int64]int64{100: 40}, Trace: &buf, Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	issues, writebacks := 0, 0
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case obs.KindSimIssue:
			issues++
		case obs.KindSimWriteback:
			writebacks++
		default:
			t.Errorf("unexpected event kind %v in simulator stream", ev.Kind)
		}
	}
	if issues != len(s.Ops) {
		t.Errorf("%d issue events, want %d (one per op)", issues, len(s.Ops))
	}
	if writebacks != res.Writes {
		t.Errorf("%d writeback events, want %d (Result.Writes)", writebacks, res.Writes)
	}
	if buf.Len() == 0 {
		t.Error("text sink produced no output alongside the recorder")
	}
	// The structured stream must export cleanly.
	var trace bytes.Buffer
	if err := obs.WriteChromeTrace(&trace, rec.Events()); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(trace.Bytes()); err != nil {
		t.Fatalf("simulator trace fails schema validation: %v", err)
	}
}
