package vliwsim

import (
	"fmt"

	"repro/internal/ir"
)

// Interpret evaluates a kernel directly — program order, no machine
// model — and returns the final memory image. It is the semantic
// reference the cycle-accurate simulation is compared against in
// property tests: for every kernel and machine, executing the schedule
// must produce exactly the memory an order-faithful interpretation
// produces.
func Interpret(k *ir.Kernel, initMem map[int64]int64, scratchSize int) (map[int64]int64, error) {
	if scratchSize == 0 {
		scratchSize = 1024
	}
	st := &sim{
		s:       nil,
		mem:     make(map[int64]int64),
		scratch: make([]int64, scratchSize),
	}
	for a, v := range initMem {
		st.mem[a] = v
	}
	vals := make(map[instance]int64)

	evalOp := func(op *ir.Op, iter int) error {
		args := make([]int64, len(op.Args))
		for slot, arg := range op.Args {
			switch arg.Kind {
			case ir.OperandConst:
				args[slot] = arg.Const
			case ir.OperandValue:
				inst, err := resolveStatic(k, arg, iter, op.ID)
				if err != nil {
					return err
				}
				v, ok := vals[inst]
				if !ok {
					return fmt.Errorf("vliwsim: interpret: op%d reads undefined v%d(iter %d)",
						op.ID, inst.value, inst.iter)
				}
				args[slot] = v
			default:
				return fmt.Errorf("vliwsim: interpret: op%d slot %d unset", op.ID, slot)
			}
		}
		res, _, err := st.execute(event{op: op.ID, iter: iter}, op, args)
		if err != nil {
			return err
		}
		if op.Result != ir.NoValue {
			vals[instance{op.Result, iter}] = res
		}
		return nil
	}

	for _, id := range k.Preamble {
		if err := evalOp(k.Ops[id], -1); err != nil {
			return nil, err
		}
	}
	for iter := 0; iter < k.TripCount; iter++ {
		for _, id := range k.Loop {
			if err := evalOp(k.Ops[id], iter); err != nil {
				return nil, err
			}
		}
	}
	return st.mem, nil
}

// resolveStatic is resolveInstance against a bare kernel.
func resolveStatic(k *ir.Kernel, arg ir.Operand, iter int, op ir.OpID) (instance, error) {
	if len(arg.Srcs) == 1 {
		src := arg.Srcs[0]
		defIter := iter
		if k.Ops[k.Values[src.Value].Def].Block == ir.PreambleBlock {
			defIter = -1
		} else {
			defIter -= src.Distance
			if defIter < 0 {
				return instance{}, fmt.Errorf("vliwsim: interpret: op%d reads v%d before definition", op, src.Value)
			}
		}
		return instance{src.Value, defIter}, nil
	}
	var init, carried ir.Src
	for _, src := range arg.Srcs {
		if k.Ops[k.Values[src.Value].Def].Block == ir.PreambleBlock {
			init = src
		} else {
			carried = src
		}
	}
	if iter < carried.Distance {
		return instance{init.Value, -1}, nil
	}
	return instance{carried.Value, iter - carried.Distance}, nil
}
