package vliwsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
)

// fanoutPortMachine has one register file whose single read port feeds
// a bus fanning out to inputs of two different adders — so two
// operations reading the same value on the same cycle must share the
// port with identical stubs, the sharing rule of §4.2 that the four
// paper machines (dedicated read ports) never exercise.
func fanoutPortMachine(t *testing.T) *machine.Machine {
	t.Helper()
	b := machine.NewBuilder("fanport")
	rf := b.AddRF("rf", -1, 32)
	a0 := b.AddFU("a0", machine.Adder, -1, 2)
	a1 := b.AddFU("a1", machine.Adder, -1, 2)
	ls := b.AddFU("ls0", machine.LoadStore, -1, 2)
	b.SetCanCopy(ls, true)

	// The shared read path: one port, one bus, four inputs.
	rp := b.AddReadPort(rf, "shared.r")
	bus := b.AddBus("readnet", false)
	b.ConnectRPBus(rp, bus)
	b.ConnectBusIn(bus, a0, 0)
	b.ConnectBusIn(bus, a1, 0)
	b.ConnectBusIn(bus, a0, 1)
	b.ConnectBusIn(bus, a1, 1)
	// The load/store unit gets its own dedicated reads.
	b.DedicatedRead(rf, ls, 0)
	b.DedicatedRead(rf, ls, 1)
	// Everyone writes the file directly.
	b.DedicatedWrite(a0, rf)
	b.DedicatedWrite(a1, rf)
	b.DedicatedWrite(ls, rf)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSharedReadPortFanout(t *testing.T) {
	m := fanoutPortMachine(t)
	// Two adds of the same loaded value must be able to issue on the
	// same cycle, sharing the single read port (identical stubs do not
	// conflict, §4.2).
	b := ir.NewBuilder("fan")
	b.Loop()
	iv, _ := b.InductionVar("i", 0, 1)
	x := b.Emit(ir.Load, "x", iv, b.Const(0))
	p := b.Emit(ir.Add, "p", b.Val(x), b.Const(1))
	q := b.Emit(ir.Add, "q", b.Val(x), b.Const(2))
	b.Emit(ir.Store, "", b.Val(p), iv, b.Const(64))
	b.Emit(ir.Store, "", b.Val(q), iv, b.Const(128))
	k := b.MustFinish()
	k.TripCount = 4

	s, err := core.Compile(k, m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySchedule(s); err != nil {
		t.Fatal(err)
	}
	// Both adds read x through the one shared port.
	pID, qID := k.Loop[2], k.Loop[3]
	sp, okP := s.Reads[core.OperandKey{Op: pID, Slot: 0}]
	sq, okQ := s.Reads[core.OperandKey{Op: qID, Slot: 0}]
	if !okP || !okQ {
		t.Fatal("read stubs missing")
	}
	if sp.Port != sq.Port {
		t.Errorf("adds use different ports %d vs %d; expected the shared port", sp.Port, sq.Port)
	}
	// On a shared cycle, the shared resources (file, port, bus) must be
	// identical — the bus fans out to each consumer's input.
	if s.Assignments[pID].Cycle == s.Assignments[qID].Cycle &&
		(sp.RF != sq.RF || sp.Port != sq.Port || sp.Bus != sq.Bus) {
		t.Errorf("same-cycle reads with conflicting stubs: %v vs %v", sp, sq)
	}
	res, err := Run(s, Config{InitMem: map[int64]int64{0: 10, 1: 20, 2: 30, 3: 40}})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		base := (i + 1) * 10
		if res.Mem[64+i] != base+1 || res.Mem[128+i] != base+2 {
			t.Errorf("outputs[%d] = %d/%d, want %d/%d",
				i, res.Mem[64+i], res.Mem[128+i], base+1, base+2)
		}
	}
}

// TestSharedPortConflictOnDifferentValues: on the same machine, two
// DIFFERENT values cannot cross the one read port on one cycle — the
// scheduler must serialize (or reject II=1 outright when both adds
// carry distinct inputs).
func TestSharedPortConflictOnDifferentValues(t *testing.T) {
	m := fanoutPortMachine(t)
	b := ir.NewBuilder("conflict")
	b.Loop()
	iv, _ := b.InductionVar("i", 0, 1)
	x := b.Emit(ir.Load, "x", iv, b.Const(0))
	y := b.Emit(ir.Load, "y", iv, b.Const(64))
	p := b.Emit(ir.Add, "p", b.Val(x), b.Const(1))
	q := b.Emit(ir.Add, "q", b.Val(y), b.Const(2))
	b.Emit(ir.Store, "", b.Val(p), iv, b.Const(128))
	b.Emit(ir.Store, "", b.Val(q), iv, b.Const(192))
	k := b.MustFinish()
	k.TripCount = 3

	s, err := core.Compile(k, m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySchedule(s); err != nil {
		t.Fatal(err)
	}
	// One load/store unit and the port bottleneck: the two adds cannot
	// share a cycle slot, so II >= 2 at minimum from the memory system
	// alone (2 loads + 2 stores on one unit => II >= 4).
	if s.II < 4 {
		t.Errorf("II = %d; the single ls unit alone requires >= 4", s.II)
	}
	pID, qID := k.Loop[3], k.Loop[4]
	if s.II > 0 {
		sp := s.Assignments[pID].Cycle % s.II
		sq := s.Assignments[qID].Cycle % s.II
		if sp == sq {
			t.Errorf("different values read through the shared port on one slot (%d)", sp)
		}
	}
	res, err := Run(s, Config{InitMem: map[int64]int64{
		0: 1, 1: 2, 2: 3, 64: 100, 65: 200, 66: 300,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem[128] != 2 || res.Mem[192] != 102 {
		t.Errorf("results %d/%d, want 2/102", res.Mem[128], res.Mem[192])
	}
}
