package vliwsim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
)

func allMachines() []*machine.Machine {
	return []*machine.Machine{
		machine.Central(), machine.Clustered(2), machine.Clustered(4), machine.Distributed(),
	}
}

func compile(t *testing.T, k *ir.Kernel, m *machine.Machine) *core.Schedule {
	t.Helper()
	s, err := core.Compile(k, m, core.Options{})
	if err != nil {
		t.Fatalf("%s: %v", m.Name, err)
	}
	if err := core.VerifySchedule(s); err != nil {
		t.Fatalf("%s: %v", m.Name, err)
	}
	return s
}

// TestDotProductEndToEnd schedules a multiply-accumulate loop on every
// architecture, simulates it, and compares the stored result with a
// pure-Go reference.
func TestDotProductEndToEnd(t *testing.T) {
	const n = 24
	b := ir.NewBuilder("dot")
	iv, _ := b.InductionVar("i", 0, 1)
	acc0 := b.Emit(ir.MovI, "acc0", b.Const(0))
	outAddr := b.Emit(ir.MovI, "out", b.Const(1000))
	b.Loop()
	x := b.Emit(ir.Load, "x", iv, b.Const(0))
	xoff := b.Emit(ir.Add, "i2", iv, b.Const(100))
	y := b.Emit(ir.Load, "y", b.Val(xoff), b.Const(0))
	p := b.Emit(ir.Mul, "p", b.Val(x), b.Val(y))
	acc := b.Accumulator(ir.Add, "acc", acc0, b.Val(p))
	b.Emit(ir.Store, "", ir.ValueOperand(acc), b.Val(outAddr), b.Const(0))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	k.TripCount = n

	mem := map[int64]int64{}
	want := int64(0)
	acc2 := int64(0)
	for i := int64(0); i < n; i++ {
		mem[i] = i + 1
		mem[100+i] = 2*i + 3
		acc2 += (i + 1) * (2*i + 3)
	}
	want = acc2

	for _, m := range allMachines() {
		s := compile(t, k, m)
		res, err := Run(s, Config{InitMem: mem})
		if err != nil {
			t.Fatalf("%s: %v\n%s", m.Name, err, s.Dump())
		}
		if got := res.Mem[1000]; got != want {
			t.Errorf("%s: dot product = %d, want %d", m.Name, got, want)
		}
		if res.IterationsRun != n {
			t.Errorf("%s: ran %d iterations, want %d", m.Name, res.IterationsRun, n)
		}
		t.Logf("%s: II=%d cycles=%d reads=%d writes=%d bus=%d",
			m.Name, s.II, res.Cycles, res.Reads, res.Writes, res.BusTransfers)
	}
}

// TestElementwiseEndToEnd checks a streaming kernel: out[i] = 3*in[i]+7.
func TestElementwiseEndToEnd(t *testing.T) {
	const n = 16
	b := ir.NewBuilder("axpb")
	iv, _ := b.InductionVar("i", 0, 1)
	c3 := b.Emit(ir.MovI, "c3", b.Const(3))
	b.Loop()
	x := b.Emit(ir.Load, "x", iv, b.Const(0))
	p := b.Emit(ir.Mul, "p", b.Val(x), b.Val(c3))
	q := b.Emit(ir.Add, "q", b.Val(p), b.Const(7))
	dst := b.Emit(ir.Add, "dst", iv, b.Const(500))
	b.Emit(ir.Store, "", b.Val(q), b.Val(dst), b.Const(0))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	k.TripCount = n
	mem := map[int64]int64{}
	for i := int64(0); i < n; i++ {
		mem[i] = 10 * i
	}
	for _, m := range allMachines() {
		s := compile(t, k, m)
		res, err := Run(s, Config{InitMem: mem})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for i := int64(0); i < n; i++ {
			if got, want := res.Mem[500+i], 3*(10*i)+7; got != want {
				t.Errorf("%s: out[%d] = %d, want %d", m.Name, i, got, want)
			}
		}
	}
}

// TestFloatingPointEndToEnd exercises the float opcode path: out[i] =
// sqrt(a[i]) * 2.5 using bit-carried float64 values.
func TestFloatingPointEndToEnd(t *testing.T) {
	const n = 8
	b := ir.NewBuilder("fsqrt")
	iv, _ := b.InductionVar("i", 0, 1)
	scale := b.Emit(ir.MovI, "scale", b.Const(int64(math.Float64bits(2.5))))
	b.Loop()
	x := b.Emit(ir.Load, "x", iv, b.Const(0))
	r := b.Emit(ir.FSqrt, "r", b.Val(x))
	pr := b.Emit(ir.FMul, "pr", b.Val(r), b.Val(scale))
	dst := b.Emit(ir.Add, "dst", iv, b.Const(300))
	b.Emit(ir.Store, "", b.Val(pr), b.Val(dst), b.Const(0))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	k.TripCount = n
	mem := map[int64]int64{}
	for i := int64(0); i < n; i++ {
		mem[i] = int64(math.Float64bits(float64(i * i)))
	}
	for _, m := range allMachines() {
		s := compile(t, k, m)
		res, err := Run(s, Config{InitMem: mem})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for i := int64(0); i < n; i++ {
			got := math.Float64frombits(uint64(res.Mem[300+i]))
			want := float64(i) * 2.5
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("%s: out[%d] = %v, want %v", m.Name, i, got, want)
			}
		}
	}
}

// TestScratchpadRoundTrip stores into the scratchpad and reads back
// with memory-order dependences.
func TestScratchpadRoundTrip(t *testing.T) {
	const n = 8
	b := ir.NewBuilder("spad")
	iv, _ := b.InductionVar("i", 0, 1)
	b.Loop()
	x := b.Emit(ir.Load, "x", iv, b.Const(0))
	d := b.Emit(ir.Mul, "d", b.Val(x), b.Const(5))
	b.EmitMem(ir.SPWrite, "", 1, b.Val(d), iv)
	y := b.EmitMem(ir.SPRead, "y", 1, iv)
	dst := b.Emit(ir.Add, "dst", iv, b.Const(700))
	b.Emit(ir.Store, "", b.Val(y), b.Val(dst), b.Const(0))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	k.TripCount = n
	mem := map[int64]int64{}
	for i := int64(0); i < n; i++ {
		mem[i] = i + 2
	}
	for _, m := range allMachines() {
		s := compile(t, k, m)
		res, err := Run(s, Config{InitMem: mem})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for i := int64(0); i < n; i++ {
			if got, want := res.Mem[700+i], 5*(i+2); got != want {
				t.Errorf("%s: out[%d] = %d, want %d", m.Name, i, got, want)
			}
		}
	}
}

// TestMotivatingExampleSimulates runs the Fig. 4/7 example end to end
// on the Fig. 5 machine.
func TestMotivatingExampleSimulates(t *testing.T) {
	b := ir.NewBuilder("fig4")
	a := b.Emit(ir.Load, "a", b.Const(100), b.Const(0))
	bb := b.Emit(ir.Add, "b", b.Const(1), b.Const(2))
	c := b.Emit(ir.Add, "c", b.Const(3), b.Const(4))
	d := b.Emit(ir.Add, "d", b.Val(a), b.Val(bb))
	e := b.Emit(ir.Add, "e", b.Val(a), b.Val(c))
	b.Emit(ir.Store, "", b.Val(d), b.Const(200), b.Const(0))
	b.Emit(ir.Store, "", b.Val(e), b.Const(201), b.Const(0))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := machine.MotivatingExample()
	s := compile(t, k, m)
	res, err := Run(s, Config{InitMem: map[int64]int64{100: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem[200] != 43 || res.Mem[201] != 47 {
		t.Errorf("results = %d, %d; want 43, 47", res.Mem[200], res.Mem[201])
	}
}
