package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the counter side of the observability layer. The event
// schema above answers "what did one compilation decide"; a Metrics
// registry answers "what is the process doing over time" — request and
// cache counters, queue-depth gauges, latency histograms — and renders
// them in the Prometheus text exposition format for scrape endpoints
// (the daemon's GET /metrics) or as a plain snapshot map for JSON
// flushes on shutdown.
//
// The registry is deliberately tiny: three instrument kinds, no labels,
// no dependency beyond the standard library. Counters and gauges are a
// single atomic word, so instrumented hot paths pay one uncontended
// atomic add; histograms take a mutex and are meant for request-grained
// observations, not the scheduler's inner loops.

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must not be negative; counters only grow).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative buckets, keeping
// the total count and sum alongside (the Prometheus histogram shape).
type Histogram struct {
	mu     sync.Mutex
	uppers []float64 // bucket upper bounds, ascending; +Inf implicit
	counts []int64   // len(uppers)+1, last is the overflow bucket
	sum    float64
	total  int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.uppers, v)
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count reads the total number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// metric is one registered instrument.
type metric struct {
	name string
	help string
	kind string // "counter", "gauge", "histogram"
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Metrics is a registry of named instruments. Registration order is
// preserved in every export, so two exports of the same registry are
// diffable line by line. The zero value is not usable; call NewMetrics.
type Metrics struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{byName: make(map[string]*metric)} }

// register adds m under its name, panicking on a duplicate: metric
// names are program constants, so a collision is a programming error.
func (r *Metrics) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name))
	}
	r.byName[m.name] = m
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a counter.
func (r *Metrics) Counter(name, help string) *Counter {
	c := new(Counter)
	r.register(&metric{name: name, help: help, kind: "counter", c: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Metrics) Gauge(name, help string) *Gauge {
	g := new(Gauge)
	r.register(&metric{name: name, help: help, kind: "gauge", g: g})
	return g
}

// Histogram registers and returns a histogram over the given ascending
// bucket upper bounds (a final +Inf bucket is implicit).
func (r *Metrics) Histogram(name, help string, uppers []float64) *Histogram {
	for i := 1; i < len(uppers); i++ {
		if uppers[i] <= uppers[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	h := &Histogram{uppers: append([]float64(nil), uppers...)}
	h.counts = make([]int64, len(h.uppers)+1)
	r.register(&metric{name: name, help: help, kind: "histogram", h: h})
	return h
}

// helpEscaper escapes HELP text per the Prometheus text exposition
// format: backslash and line feed are the only characters with escape
// sequences in HELP (label values additionally escape quotes, but this
// registry has no labels beyond histogram le).
var helpEscaper = strings.NewReplacer("\\", `\\`, "\n", `\n`)

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): HELP and TYPE comments, then one sample line
// per instrument — histograms as cumulative _bucket series plus _sum
// and _count.
func (r *Metrics) WriteText(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, helpEscaper.Replace(m.help), m.name, m.kind); err != nil {
			return err
		}
		var err error
		switch m.kind {
		case "counter":
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value())
		case "gauge":
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.g.Value())
		case "histogram":
			err = m.h.writeText(w, m.name)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (h *Histogram) writeText(w io.Writer, name string) error {
	h.mu.Lock()
	uppers := h.uppers
	counts := append([]int64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()
	cum := int64(0)
	for i, up := range uppers {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, up, cum); err != nil {
			return err
		}
	}
	cum += counts[len(uppers)]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, sum, name, total)
	return err
}

// Snapshot returns the registry as a flat name → value map for JSON
// flushes: counters and gauges by value, histograms as their count and
// sum under name_count / name_sum plus the full cumulative bucket
// series under name_bucket (keyed by upper bound, "+Inf" last, the same
// values the text exposition renders) — so a shutdown flush loses
// nothing a live scrape would have had.
func (r *Metrics) Snapshot() map[string]any {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	out := make(map[string]any, len(metrics))
	for _, m := range metrics {
		switch m.kind {
		case "counter":
			out[m.name] = m.c.Value()
		case "gauge":
			out[m.name] = m.g.Value()
		case "histogram":
			m.h.mu.Lock()
			buckets := make(map[string]int64, len(m.h.uppers)+1)
			cum := int64(0)
			for i, up := range m.h.uppers {
				cum += m.h.counts[i]
				buckets[strconv.FormatFloat(up, 'g', -1, 64)] = cum
			}
			buckets["+Inf"] = cum + m.h.counts[len(m.h.uppers)]
			out[m.name+"_bucket"] = buckets
			out[m.name+"_count"] = m.h.total
			out[m.name+"_sum"] = m.h.sum
			m.h.mu.Unlock()
		}
	}
	return out
}
