// Package obs is the compiler's structured observability layer: a
// zero-overhead-when-disabled event schema that the scheduling engine,
// the portfolio racer, and the cycle-accurate simulator all emit into
// at their decision points — pass begin/end, communication open/close,
// stub placement, stub-permutation search steps, copy-insertion
// recursion, journal rollbacks, and portfolio variant lifecycle.
//
// The layer is deliberately passive: a Tracer only observes, so
// enabling one cannot perturb scheduling decisions (the differential
// goldens pin this). Event identity comes from a logical clock, not
// wall time, so a recorded stream — and every export derived from it —
// is deterministic and bit-identical across runs of a deterministic
// compilation.
//
// Disabled means nil: every emit site in the compiler guards on a nil
// Tracer before an Event is even constructed, so the no-op path costs
// one pointer compare and allocates nothing (pinned by an
// AllocsPerRun test in internal/core).
package obs

import "sync"

// Kind enumerates the event types of the schema. The scheduler kinds
// map onto the Fig. 11 decision states of the paper (see DESIGN.md §4.8
// for the full taxonomy).
type Kind uint8

const (
	// KindPassBegin/KindPassEnd bracket one run of a named pipeline
	// pass (or nested stage: close-comms, insert-copies). Ok on the end
	// event reports whether the pass succeeded.
	KindPassBegin Kind = iota
	KindPassEnd
	// KindIIBegin/KindIIEnd bracket one initiation-interval attempt.
	KindIIBegin
	KindIIEnd
	// KindOpPlace is a tentative operation placement on a (unit, cycle)
	// — the top of the Fig. 11 flow. Rejections surface as a later
	// KindRollback.
	KindOpPlace
	// KindCommOpen marks a communication acquiring its first tentative
	// write stub; KindCommClose marks a route being frozen (§4.2
	// "closed"); KindCommSplit marks replacement by two children around
	// an inserted copy (Fig. 22).
	KindCommOpen
	KindCommClose
	KindCommSplit
	// KindStubWrite/KindStubRead record a write- or read-stub
	// placement; Final distinguishes pinned (frozen) placements from
	// tentative ones that may still be re-chosen.
	KindStubWrite
	KindStubRead
	// KindPermAttempt/Reject/Accept are the §4.4 bounded
	// stub-permutation search steps: one candidate stub tried at one
	// DFS depth, and whether it fit.
	KindPermAttempt
	KindPermReject
	KindPermAccept
	// KindCopyInsert marks one copy operation materialized to bridge a
	// route (§4.3 step 5); Depth is the splitting recursion depth.
	KindCopyInsert
	// KindRollback marks a journal rollback; Value is the number of
	// journal entries undone.
	KindRollback
	// Portfolio variant lifecycle (CompilePortfolio).
	KindVariantBegin
	KindVariantCancel
	KindVariantWin
	// Simulator events: one operation issue and one register-file
	// writeback, re-emitted by internal/vliwsim through this schema.
	KindSimIssue
	KindSimWriteback
	// Robustness lifecycle. KindCancel marks a compilation observing
	// cancellation (II is the interval being abandoned); KindDegrade
	// marks one degradation-ladder rung starting (Name is the rung);
	// KindRecover marks a pass panic converted into a structured
	// internal error (Track/Name are the recovering pass).
	KindCancel
	KindDegrade
	KindRecover
	// KindPermMemo marks a §4.4 solve short-circuited by the
	// infeasibility memo: the solve's signature matched a permutation
	// state already proven unsatisfiable, so no search ran. Value is
	// the engine's running memo-hit count.
	KindPermMemo
	// Speculative initiation-interval ladder lifecycle
	// (core.Options.Speculate). KindSpecRung marks a rung evaluated
	// speculatively ahead of the search walk (II is the rung's
	// interval); KindSpecCancel marks a speculative rung cancelled
	// because the walk proved it could no longer be consumed.
	KindSpecRung
	KindSpecCancel
)

var kindNames = [...]string{
	KindPassBegin:     "pass-begin",
	KindPassEnd:       "pass-end",
	KindIIBegin:       "ii-begin",
	KindIIEnd:         "ii-end",
	KindOpPlace:       "op-place",
	KindCommOpen:      "comm-open",
	KindCommClose:     "comm-close",
	KindCommSplit:     "comm-split",
	KindStubWrite:     "stub-write",
	KindStubRead:      "stub-read",
	KindPermAttempt:   "perm-attempt",
	KindPermReject:    "perm-reject",
	KindPermAccept:    "perm-accept",
	KindCopyInsert:    "copy-insert",
	KindRollback:      "rollback",
	KindVariantBegin:  "variant-begin",
	KindVariantCancel: "variant-cancel",
	KindVariantWin:    "variant-win",
	KindSimIssue:      "sim-issue",
	KindSimWriteback:  "sim-writeback",
	KindCancel:        "cancel",
	KindDegrade:       "degrade",
	KindRecover:       "recover",
	KindPermMemo:      "perm-memo",
	KindSpecRung:      "spec-rung",
	KindSpecCancel:    "spec-cancel",
}

// String names the kind for exports and diagnostics.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one observation. Only the fields meaningful for the Kind
// are set; identifier fields hold machine/IR ids (resolvable against
// the Machine and Schedule), not display strings, so an Event stays
// small and the hot emit path stays allocation-free. Seq is the
// logical clock stamped by the Recorder: a total order that stands in
// for time, making recorded streams deterministic.
type Event struct {
	Seq uint64
	// Value is a small payload: rollback length, cancel count, or the
	// simulator's computed result; HasValue marks it meaningful. Args
	// carries the simulator's resolved operand values.
	Value int64
	Args  []int64
	// Track names the trace track the event belongs to: the pass name
	// for pass events, the contended resource (bus name, unit name) for
	// placement events, "interval", "permute", "copies", "journal",
	// "comms", or "portfolio".
	Track string
	// Name is a display label: pass name, operation or variant name.
	Name string

	Op    int32 // operation id (-0 when n/a; see Kind docs)
	Comm  int32 // communication id
	Cycle int32 // flat cycle within the op's block timeline
	Iter  int32 // simulator: loop iteration (-1 preamble)
	Depth int32 // DFS / copy-recursion depth
	II    int32 // initiation interval in effect
	FU    int32 // functional unit id
	RF    int32 // register file id
	Bus   int32 // bus id
	Port  int32 // read- or write-port id
	Slot  int32 // operand slot

	Kind     Kind
	Final    bool // stub events: pinned (final) vs tentative
	Ok       bool // end events: success
	HasValue bool
}

// Tracer receives events. Implementations must be safe for concurrent
// Emit calls when handed to CompilePortfolio. A nil Tracer means
// tracing is disabled: every emit site checks for nil before
// constructing an Event, so nil is the zero-overhead default.
type Tracer interface {
	Emit(Event)
}

// Recorder is the standard Tracer: it stamps each event with the next
// logical-clock value and keeps the stream in memory for export.
//
// Storage is chunked, not one growing slice: a traced compilation of a
// hard kernel records millions of permutation-search events, and
// slice-doubling would copy (and fault in) each of them several times
// over. Chunks of geometrically increasing capacity touch every event
// exactly once on the emit path.
type Recorder struct {
	mu     sync.Mutex
	seq    uint64
	chunks [][]Event
	flat   []Event // cached Events() result, invalidated by Emit
}

// Chunk capacities: geometric from first to max, so small traces stay
// small and large ones amortize chunk bookkeeping.
const (
	firstChunkCap = 1 << 9
	maxChunkCap   = 1 << 16
)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit stamps and stores one event.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	n := len(r.chunks)
	if n == 0 || len(r.chunks[n-1]) == cap(r.chunks[n-1]) {
		size := firstChunkCap
		if n > 0 {
			if size = 2 * cap(r.chunks[n-1]); size > maxChunkCap {
				size = maxChunkCap
			}
		}
		r.chunks = append(r.chunks, make([]Event, 0, size))
		n++
	}
	r.chunks[n-1] = append(r.chunks[n-1], ev)
	r.flat = nil
	r.mu.Unlock()
}

// Events returns the recorded stream in logical-clock order. The
// flattened slice is built on first call and cached until the next
// Emit; do not Emit concurrently with reading it.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.flat == nil {
		total := 0
		for _, c := range r.chunks {
			total += len(c)
		}
		r.flat = make([]Event, 0, total)
		for _, c := range r.chunks {
			r.flat = append(r.flat, c...)
		}
	}
	return r.flat
}

// Len reports how many events have been recorded.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, c := range r.chunks {
		n += len(c)
	}
	return n
}

// multi fans one stream out to several tracers.
type multi []Tracer

func (m multi) Emit(ev Event) {
	for _, t := range m {
		t.Emit(ev)
	}
}

// Multi combines tracers into one; nil entries are dropped. It returns
// nil when nothing remains, so the result composes with the nil-means-
// disabled convention.
func Multi(tracers ...Tracer) Tracer {
	var out multi
	for _, t := range tracers {
		if t != nil {
			out = append(out, t)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
