package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestRecorderStampsLogicalClock(t *testing.T) {
	rec := NewRecorder()
	rec.Emit(Event{Kind: KindPassBegin, Name: "lower"})
	rec.Emit(Event{Kind: KindOpPlace, Op: 3})
	rec.Emit(Event{Kind: KindPassEnd, Name: "lower", Ok: true})
	evs := rec.Events()
	if len(evs) != 3 || rec.Len() != 3 {
		t.Fatalf("recorded %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
}

func TestKindString(t *testing.T) {
	for k := KindPassBegin; k <= KindSimWriteback; k++ {
		if s := k.String(); s == "" || s == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Errorf("out-of-range kind should be unknown")
	}
}

func TestMultiDropsNilAndFansOut(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of nothing should be nil (tracing disabled)")
	}
	a, b := NewRecorder(), NewRecorder()
	if got := Multi(nil, a); got != Tracer(a) {
		t.Fatal("Multi of one tracer should return it unwrapped")
	}
	m := Multi(a, nil, b)
	m.Emit(Event{Kind: KindRollback, Value: 7, HasValue: true})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out reached a=%d b=%d, want 1/1", a.Len(), b.Len())
	}
}

func sampleStream() []Event {
	rec := NewRecorder()
	rec.Emit(Event{Kind: KindPassBegin, Track: "place", Name: "place", II: 2})
	rec.Emit(Event{Kind: KindIIBegin, Track: "interval", II: 2})
	rec.Emit(Event{Kind: KindOpPlace, Track: "alu0", Name: "t0", Op: 0, FU: 1, Cycle: 4})
	rec.Emit(Event{Kind: KindStubWrite, Track: "bus0", Op: 0, Comm: 2, FU: 1, Bus: 0, RF: 1, Port: 0})
	rec.Emit(Event{Kind: KindPermAttempt, Track: "permute", Depth: 1, Comm: 2})
	rec.Emit(Event{Kind: KindPermAccept, Track: "permute", Depth: 1, Comm: 2})
	rec.Emit(Event{Kind: KindRollback, Track: "journal", Value: 12, HasValue: true})
	rec.Emit(Event{Kind: KindIIEnd, Track: "interval", II: 2, Ok: true})
	rec.Emit(Event{Kind: KindPassEnd, Track: "place", Name: "place", II: 2, Ok: true})
	return rec.Events()
}

func TestWriteChromeTraceValidatesAndIsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, sampleStream()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, sampleStream()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same stream rendered differently across runs")
	}
	if err := ValidateChromeTrace(a.Bytes()); err != nil {
		t.Fatalf("export fails own schema check: %v", err)
	}
	out := a.String()
	for _, want := range []string{
		`"thread_name"`, `"ph":"M"`, `"ph":"B"`, `"ph":"E"`, `"ph":"i"`,
		`"name":"place"`, `"II=2"`, `"perm-accept"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s:\n%s", want, out)
		}
	}
}

func TestValidateChromeTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":       `{"traceEvents":[`,
		"no array":       `{"events":[]}`,
		"nameless":       `{"traceEvents":[{"ph":"i","ts":1,"pid":1,"tid":1}]}`,
		"no phase":       `{"traceEvents":[{"name":"x","ts":1,"pid":1,"tid":1}]}`,
		"no pid":         `{"traceEvents":[{"name":"x","ph":"i","ts":1,"tid":1}]}`,
		"bad phase":      `{"traceEvents":[{"name":"x","ph":"X","ts":1,"pid":1,"tid":1}]}`,
		"no ts":          `{"traceEvents":[{"name":"x","ph":"i","pid":1,"tid":1}]}`,
		"time reversal":  `{"traceEvents":[{"name":"x","ph":"i","ts":2,"pid":1,"tid":1},{"name":"y","ph":"i","ts":1,"pid":1,"tid":1}]}`,
		"stray end":      `{"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":1,"tid":1}]}`,
		"unclosed begin": `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":1}]}`,
	}
	for name, doc := range cases {
		if err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: validator accepted malformed trace", name)
		}
	}
	ok := `{"traceEvents":[{"name":"t","ph":"M","pid":1,"tid":1},{"name":"x","ph":"B","ts":1,"pid":1,"tid":1},{"name":"x","ph":"E","ts":2,"pid":1,"tid":1}]}`
	if err := ValidateChromeTrace([]byte(ok)); err != nil {
		t.Errorf("validator rejected well-formed trace: %v", err)
	}
}
