package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestMetricsTextExposition(t *testing.T) {
	r := NewMetrics()
	c := r.Counter("reqs_total", "requests served")
	g := r.Gauge("inflight", "compilations running")
	h := r.Histogram("latency_seconds", "request latency", []float64{0.01, 0.1, 1})

	c.Add(3)
	g.Set(2)
	g.Add(-1)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		"reqs_total 3",
		"# TYPE inflight gauge",
		"inflight 1",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.01"} 1`,
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Registration order is export order: two renders are identical.
	var b2 strings.Builder
	if err := r.WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("two exports of an unchanged registry differ")
	}
}

func TestMetricsSnapshot(t *testing.T) {
	r := NewMetrics()
	r.Counter("hits", "h").Inc()
	r.Gauge("depth", "d").Set(7)
	r.Histogram("lat", "l", []float64{1}).Observe(0.5)

	snap := r.Snapshot()
	if snap["hits"] != int64(1) || snap["depth"] != int64(7) {
		t.Errorf("snapshot counters wrong: %v", snap)
	}
	if snap["lat_count"] != int64(1) || snap["lat_sum"] != 0.5 {
		t.Errorf("snapshot histogram wrong: %v", snap)
	}
}

func TestMetricsDuplicatePanics(t *testing.T) {
	r := NewMetrics()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("x", "")
}

func TestMetricsConcurrentUse(t *testing.T) {
	r := NewMetrics()
	c := r.Counter("n", "")
	h := r.Histogram("lat", "", []float64{0.1, 1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.05)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("lost updates: counter=%d histogram=%d", c.Value(), h.Count())
	}
}
