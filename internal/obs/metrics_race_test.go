package obs

import (
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
)

// TestMetricsExpositionGolden pins the full text exposition of a
// populated registry byte for byte: ordering, HELP escaping, bucket
// cumulation, and number formatting are all part of the scrape
// contract.
func TestMetricsExpositionGolden(t *testing.T) {
	r := NewMetrics()
	c := r.Counter("requests_total", "requests served")
	g := r.Gauge("queue_depth", "admitted\nwaiting (path C:\\tmp)")
	h := r.Histogram("latency_seconds", "request latency", []float64{0.005, 0.25, 1})

	c.Add(41)
	c.Inc()
	g.Set(3)
	h.Observe(0.001)
	h.Observe(0.1)
	h.Observe(0.1)
	h.Observe(2.5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	const golden = `# HELP requests_total requests served
# TYPE requests_total counter
requests_total 42
# HELP queue_depth admitted\nwaiting (path C:\\tmp)
# TYPE queue_depth gauge
queue_depth 3
# HELP latency_seconds request latency
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.005"} 1
latency_seconds_bucket{le="0.25"} 3
latency_seconds_bucket{le="1"} 3
latency_seconds_bucket{le="+Inf"} 4
latency_seconds_sum 2.701
latency_seconds_count 4
`
	if b.String() != golden {
		t.Errorf("exposition differs from golden:\n--- got ---\n%s--- want ---\n%s", b.String(), golden)
	}
}

// TestSnapshotBuckets pins that Snapshot carries the full cumulative
// bucket series — the -metrics-snapshot shutdown flush must be lossless
// against a live scrape — and that the whole snapshot survives a JSON
// round-trip.
func TestSnapshotBuckets(t *testing.T) {
	r := NewMetrics()
	h := r.Histogram("lat", "l", []float64{0.5, 2})
	h.Observe(0.1)
	h.Observe(1)
	h.Observe(10)

	snap := r.Snapshot()
	buckets, ok := snap["lat_bucket"].(map[string]int64)
	if !ok {
		t.Fatalf("lat_bucket is %T, want map[string]int64", snap["lat_bucket"])
	}
	want := map[string]int64{"0.5": 1, "2": 2, "+Inf": 3}
	for le, n := range want {
		if buckets[le] != n {
			t.Errorf("bucket le=%q = %d, want %d", le, buckets[le], n)
		}
	}
	if len(buckets) != len(want) {
		t.Errorf("bucket count %d, want %d: %v", len(buckets), len(want), buckets)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Errorf("snapshot not JSON-marshalable: %v", err)
	}
}

// TestMetricsObserveWriteTextRace hammers Histogram.Observe from many
// goroutines while others render the registry and take snapshots; run
// under -race this pins the locking discipline of the registry, and the
// final render must account for every observation.
func TestMetricsObserveWriteTextRace(t *testing.T) {
	r := NewMetrics()
	h := r.Histogram("lat", "request latency", []float64{0.001, 0.01, 0.1, 1})
	c := r.Counter("reqs", "requests")
	g := r.Gauge("depth", "queue depth")

	const (
		writers      = 8
		perWriter    = 5000
		readerPasses = 200
	)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				h.Observe(float64(seed*j%7) / 50)
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}(i + 1)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < readerPasses; j++ {
				if err := r.WriteText(io.Discard); err != nil {
					t.Errorf("WriteText: %v", err)
					return
				}
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()

	if got := h.Count(); got != writers*perWriter {
		t.Errorf("histogram lost observations: %d, want %d", got, writers*perWriter)
	}
	snap := r.Snapshot()
	if snap["lat_bucket"].(map[string]int64)["+Inf"] != writers*perWriter {
		t.Errorf("+Inf bucket %v, want %d", snap["lat_bucket"], writers*perWriter)
	}
	if snap["reqs"] != int64(writers*perWriter) {
		t.Errorf("counter %v, want %d", snap["reqs"], writers*perWriter)
	}
}
