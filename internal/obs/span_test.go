package obs

import (
	"testing"
	"time"
)

func TestTimelineSpans(t *testing.T) {
	tl := NewTimeline()
	a := tl.Begin("resolve")
	tl.End(a)
	b := tl.Begin("compile")
	time.Sleep(time.Millisecond)
	tl.End(b)
	open := tl.Begin("serialize") // never closed

	spans := tl.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "resolve" || spans[1].Name != "compile" || spans[2].Name != "serialize" {
		t.Errorf("span names: %+v", spans)
	}
	if spans[1].Duration() < time.Millisecond {
		t.Errorf("compile span duration %v, want >= 1ms", spans[1].Duration())
	}
	if spans[2].Duration() != 0 {
		t.Errorf("open span duration %v, want 0", spans[2].Duration())
	}
	if spans[1].Start < spans[0].Start {
		t.Errorf("spans out of order: %+v", spans)
	}
	if tl.Elapsed() < time.Millisecond {
		t.Errorf("elapsed %v, want >= 1ms", tl.Elapsed())
	}
	if tl.Origin().IsZero() {
		t.Error("origin is zero")
	}
	_ = open
}

// TestTimelineNilDisabled pins the nil-means-disabled convention: every
// method on a nil timeline no-ops, and Begin's -1 feeds back into End
// harmlessly.
func TestTimelineNilDisabled(t *testing.T) {
	var tl *Timeline
	i := tl.Begin("anything")
	if i != -1 {
		t.Errorf("nil Begin = %d, want -1", i)
	}
	tl.End(i)
	tl.End(99)
	if tl.Spans() != nil {
		t.Error("nil Spans not nil")
	}
	if tl.Elapsed() != 0 {
		t.Error("nil Elapsed not 0")
	}
	if !tl.Origin().IsZero() {
		t.Error("nil Origin not zero")
	}
}

// TestTimelineEndOutOfRange pins that stray indices cannot corrupt the
// timeline.
func TestTimelineEndOutOfRange(t *testing.T) {
	tl := NewTimeline()
	i := tl.Begin("only")
	tl.End(i + 7)
	tl.End(-3)
	if got := tl.Spans()[0].End; got != 0 {
		t.Errorf("out-of-range End closed a span: %v", got)
	}
}

// TestTimelineInlineStorage pins that the common stage count stays in
// the inline backing array (one allocation for the Timeline itself).
func TestTimelineInlineStorage(t *testing.T) {
	tl := NewTimeline()
	allocs := testing.AllocsPerRun(100, func() {
		tl.spans = tl.backing[:0]
		for i := 0; i < 7; i++ {
			tl.End(tl.Begin("stage"))
		}
	})
	if allocs != 0 {
		t.Errorf("7-stage timeline allocates %v times per request, want 0", allocs)
	}
}
