package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"unicode/utf8"
)

// This file exports recorded event streams in the Chrome trace-event
// JSON format (the "JSON Array Format" with a traceEvents wrapper),
// loadable in Perfetto or chrome://tracing. Tracks map to thread
// lanes: one lane per pipeline pass plus one per contended resource
// (bus, unit), named through thread_name metadata events. Timestamps
// are the logical clock, not wall time — one microsecond per event —
// so exports of a deterministic compilation are byte-identical across
// runs.
//
// The writer builds each record by hand into a reused buffer instead
// of going through encoding/json: a traced compilation of a hard
// kernel exports millions of records, and per-record Marshal (plus an
// args map per record) dominates the export wall time.

// phase maps an event kind onto its trace-event phase: duration
// begin/end for the bracketing kinds, instant for the rest.
func (k Kind) phase() byte {
	switch k {
	case KindPassBegin, KindIIBegin:
		return 'B'
	case KindPassEnd, KindIIEnd:
		return 'E'
	default:
		return 'i'
	}
}

// displayName renders the trace-event name for one event.
func displayName(ev Event) string {
	switch ev.Kind {
	case KindPassBegin, KindPassEnd:
		return ev.Name
	case KindIIBegin, KindIIEnd:
		return "II=" + strconv.Itoa(int(ev.II))
	case KindVariantBegin, KindVariantCancel, KindVariantWin:
		return ev.Kind.String() + " " + ev.Name
	case KindOpPlace, KindSimIssue:
		if ev.Name != "" {
			return ev.Kind.String() + " " + ev.Name
		}
	}
	return ev.Kind.String()
}

// appendString appends s as a JSON string. The fast path covers the
// plain-ASCII names the compiler produces; anything needing escapes
// falls back to encoding/json.
func appendString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= utf8.RuneSelf {
			esc, _ := json.Marshal(s)
			return append(b, esc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// argAppender accumulates the ,"args":{...} suffix of one record.
type argAppender struct {
	b     []byte
	first bool
}

func (a *argAppender) key(k string) {
	if a.first {
		a.b = append(a.b, `,"args":{`...)
		a.first = false
	} else {
		a.b = append(a.b, ',')
	}
	a.b = append(a.b, '"')
	a.b = append(a.b, k...)
	a.b = append(a.b, `":`...)
}

func (a *argAppender) num(k string, v int64) {
	a.key(k)
	a.b = strconv.AppendInt(a.b, v, 10)
}

func (a *argAppender) boolean(k string, v bool) {
	a.key(k)
	a.b = strconv.AppendBool(a.b, v)
}

func (a *argAppender) str(k, v string) {
	a.key(k)
	a.b = appendString(a.b, v)
}

func (a *argAppender) close() []byte {
	if !a.first {
		a.b = append(a.b, '}')
	}
	return a.b
}

// appendArgs appends the identifier fields meaningful for the kind as
// the record's args object (nothing when the kind carries none). Keys
// are written in a fixed per-kind order, keeping the output canonical.
func appendArgs(b []byte, ev Event) []byte {
	a := argAppender{b: b, first: true}
	switch ev.Kind {
	case KindPassBegin, KindIIBegin:
		a.num("ii", int64(ev.II))
	case KindPassEnd, KindIIEnd:
		a.num("ii", int64(ev.II))
		a.boolean("ok", ev.Ok)
	case KindOpPlace:
		a.num("op", int64(ev.Op))
		a.num("fu", int64(ev.FU))
		a.num("cycle", int64(ev.Cycle))
	case KindCommOpen, KindCommClose, KindCommSplit:
		a.num("comm", int64(ev.Comm))
		a.num("op", int64(ev.Op))
	case KindStubWrite:
		a.num("comm", int64(ev.Comm))
		a.num("op", int64(ev.Op))
		a.num("fu", int64(ev.FU))
		a.num("bus", int64(ev.Bus))
		a.num("rf", int64(ev.RF))
		a.num("port", int64(ev.Port))
		a.boolean("final", ev.Final)
	case KindStubRead:
		a.num("op", int64(ev.Op))
		a.num("slot", int64(ev.Slot))
		a.num("rf", int64(ev.RF))
		a.num("port", int64(ev.Port))
		a.num("bus", int64(ev.Bus))
		a.num("fu", int64(ev.FU))
		a.boolean("final", ev.Final)
	case KindPermAttempt, KindPermReject, KindPermAccept:
		a.num("depth", int64(ev.Depth))
		a.num("item", int64(ev.Comm))
	case KindCopyInsert:
		a.num("comm", int64(ev.Comm))
		a.num("depth", int64(ev.Depth))
		a.num("op", int64(ev.Op))
	case KindRollback:
		a.num("undone", ev.Value)
	case KindVariantBegin, KindVariantWin:
		a.str("variant", ev.Name)
		a.num("ii", int64(ev.II))
	case KindVariantCancel:
		a.str("variant", ev.Name)
		a.num("cancelled", ev.Value)
	case KindSimIssue:
		a.num("op", int64(ev.Op))
		a.num("cycle", int64(ev.Cycle))
		a.num("iter", int64(ev.Iter))
		a.num("fu", int64(ev.FU))
		if ev.HasValue {
			a.num("result", ev.Value)
		}
	case KindSimWriteback:
		a.num("op", int64(ev.Op))
		a.num("cycle", int64(ev.Cycle))
		a.num("iter", int64(ev.Iter))
		a.num("rf", int64(ev.RF))
		a.num("bus", int64(ev.Bus))
		a.num("value", ev.Value)
	}
	return a.close()
}

// WriteChromeTrace renders an event stream as Chrome trace-event JSON.
// Events are written in slice order with ts = Seq; tracks are assigned
// thread ids in first-appearance order and named via thread_name
// metadata, so equal streams produce byte-identical output.
func WriteChromeTrace(w io.Writer, events []Event) error {
	tids := make(map[string]int)
	var order []string
	tidOf := func(track string) int {
		if track == "" {
			track = "events"
		}
		id, ok := tids[track]
		if !ok {
			id = len(tids) + 1
			tids[track] = id
			order = append(order, track)
		}
		return id
	}
	// First pass assigns tids so the metadata block can lead the file.
	for i := range events {
		tidOf(events[i].Track)
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 256)
	first := true
	for _, track := range order {
		buf = buf[:0]
		if !first {
			buf = append(buf, ",\n"...)
		}
		first = false
		buf = append(buf, `{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":`...)
		buf = strconv.AppendInt(buf, int64(tids[track]), 10)
		buf = append(buf, `,"args":{"name":`...)
		buf = appendString(buf, track)
		buf = append(buf, "}}"...)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	for i := range events {
		ev := &events[i]
		ph := ev.Kind.phase()
		buf = buf[:0]
		if !first {
			buf = append(buf, ",\n"...)
		}
		first = false
		buf = append(buf, `{"name":`...)
		buf = appendString(buf, displayName(*ev))
		buf = append(buf, `,"ph":"`...)
		buf = append(buf, ph)
		buf = append(buf, `","ts":`...)
		buf = strconv.AppendUint(buf, ev.Seq, 10)
		buf = append(buf, `,"pid":1,"tid":`...)
		buf = strconv.AppendInt(buf, int64(tidOf(ev.Track)), 10)
		if ph == 'i' {
			buf = append(buf, `,"s":"t"`...)
		}
		buf = appendArgs(buf, *ev)
		buf = append(buf, '}')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ValidateChromeTrace checks data against the trace-event schema: a
// traceEvents array whose records carry name/ph/pid/tid (plus ts on
// non-metadata records), with phases drawn from the B/E/i/M set,
// duration events balanced per track, and timestamps non-decreasing.
// CI runs it over the trace csched emits for the motivating kernel.
func ValidateChromeTrace(data []byte) error {
	return ValidateChromeTraceReader(bytes.NewReader(data))
}

// ValidateChromeTraceReader is ValidateChromeTrace over a stream.
// Records are decoded one at a time, so multi-hundred-megabyte traces
// validate without materializing the whole document — it can sit on
// the far end of an io.Pipe fed by WriteChromeTrace.
func ValidateChromeTraceReader(r io.Reader) error {
	dec := json.NewDecoder(r)
	if err := expectDelim(dec, '{'); err != nil {
		return fmt.Errorf("obs: trace is not a JSON object: %w", err)
	}
	sawEvents := false
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return fmt.Errorf("obs: trace is not valid JSON: %w", err)
		}
		key, _ := keyTok.(string)
		if key != "traceEvents" {
			// Skip other top-level members (displayTimeUnit, ...).
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return fmt.Errorf("obs: trace is not valid JSON: %w", err)
			}
			continue
		}
		sawEvents = true
		if err := validateEventArray(dec); err != nil {
			return err
		}
	}
	if !sawEvents {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	return nil
}

func expectDelim(dec *json.Decoder, want json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != want {
		return fmt.Errorf("got %v, want %v", tok, want)
	}
	return nil
}

func validateEventArray(dec *json.Decoder) error {
	if err := expectDelim(dec, '['); err != nil {
		return fmt.Errorf("obs: traceEvents is not an array: %w", err)
	}
	depth := make(map[int]int)
	lastTs := -1.0
	for i := 0; dec.More(); i++ {
		var ev struct {
			Name *string  `json:"name"`
			Ph   *string  `json:"ph"`
			Ts   *float64 `json:"ts"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
		}
		if err := dec.Decode(&ev); err != nil {
			return fmt.Errorf("obs: event %d is not valid JSON: %w", i, err)
		}
		switch {
		case ev.Name == nil || *ev.Name == "":
			return fmt.Errorf("obs: event %d has no name", i)
		case ev.Ph == nil:
			return fmt.Errorf("obs: event %d (%s) has no ph", i, *ev.Name)
		case ev.Pid == nil || ev.Tid == nil:
			return fmt.Errorf("obs: event %d (%s) has no pid/tid", i, *ev.Name)
		}
		switch *ev.Ph {
		case "M":
			continue // metadata carries no meaningful timestamp
		case "B", "E", "i":
		default:
			return fmt.Errorf("obs: event %d (%s) has unsupported phase %q", i, *ev.Name, *ev.Ph)
		}
		if ev.Ts == nil {
			return fmt.Errorf("obs: event %d (%s) has no ts", i, *ev.Name)
		}
		if *ev.Ts < lastTs {
			return fmt.Errorf("obs: event %d (%s) goes back in time (%v < %v)", i, *ev.Name, *ev.Ts, lastTs)
		}
		lastTs = *ev.Ts
		switch *ev.Ph {
		case "B":
			depth[*ev.Tid]++
		case "E":
			if depth[*ev.Tid]--; depth[*ev.Tid] < 0 {
				return fmt.Errorf("obs: event %d (%s) ends a span that never began on tid %d", i, *ev.Name, *ev.Tid)
			}
		}
	}
	if err := expectDelim(dec, ']'); err != nil {
		return fmt.Errorf("obs: traceEvents array truncated: %w", err)
	}
	for tid, d := range depth {
		if d != 0 {
			return fmt.Errorf("obs: tid %d has %d unclosed spans", tid, d)
		}
	}
	return nil
}
