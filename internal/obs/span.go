package obs

import "time"

// This file is the request-scoped side of the observability layer: a
// Timeline of named stage Spans stamped by a serving path (the daemon's
// resolve → cache probe → singleflight wait → queue wait → pool acquire
// → compile → serialize pipeline) so one request's latency can be
// decomposed after the fact. Unlike the event schema above, spans use
// wall time — they describe the serving process, not the deterministic
// compilation, and they never enter a response body.
//
// A Timeline is deliberately tiny: no locking (one request is handled
// by one goroutine at a time; hand-offs must synchronize externally),
// no map, one slice that grows only past eight stages. A nil *Timeline
// is the disabled state — every method no-ops — mirroring the
// nil-Tracer convention, so instrumented paths need no branches beyond
// the receiver check the method call already is.

// Span is one named stage of a request timeline. Start and End are
// offsets from the timeline's origin; End is zero while the span is
// still open (and for the degenerate instant span, which Duration
// reports as 0).
type Span struct {
	Name  string
	Start time.Duration
	End   time.Duration
}

// Duration is the span's extent, 0 for a span never closed.
func (s Span) Duration() time.Duration {
	if s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// Timeline records the stage spans of one request against a fixed
// origin. The zero value is not usable; NewTimeline stamps the origin.
type Timeline struct {
	origin time.Time
	spans  []Span
	// backing is the initial inline storage: the daemon's request
	// pipeline has eight stages (at most seven on any one path), so the
	// common case never allocates a second time.
	backing [8]Span
}

// NewTimeline starts a timeline whose origin is now.
func NewTimeline() *Timeline {
	tl := &Timeline{origin: time.Now()}
	tl.spans = tl.backing[:0]
	return tl
}

// Begin opens a named span and returns its index (pass it to End).
// On a nil timeline it returns -1, which End ignores.
func (tl *Timeline) Begin(name string) int {
	if tl == nil {
		return -1
	}
	tl.spans = append(tl.spans, Span{Name: name, Start: time.Since(tl.origin)})
	return len(tl.spans) - 1
}

// End closes the span at index i (as returned by Begin). Out-of-range
// indices — including Begin's -1 on a disabled timeline — are ignored,
// so Begin/End pairs need no nil checks of their own.
func (tl *Timeline) End(i int) {
	if tl == nil || i < 0 || i >= len(tl.spans) {
		return
	}
	tl.spans[i].End = time.Since(tl.origin)
}

// Spans returns the recorded spans in Begin order. The slice aliases
// the timeline's storage: read it only after the request finished.
func (tl *Timeline) Spans() []Span {
	if tl == nil {
		return nil
	}
	return tl.spans
}

// Origin is the timeline's zero point in wall time.
func (tl *Timeline) Origin() time.Time {
	if tl == nil {
		return time.Time{}
	}
	return tl.origin
}

// Elapsed is the time since the origin — the request's running total.
func (tl *Timeline) Elapsed() time.Duration {
	if tl == nil {
		return 0
	}
	return time.Since(tl.origin)
}
