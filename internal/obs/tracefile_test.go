package obs

import (
	"flag"
	"os"
	"testing"
)

// traceFile points this test at an externally produced Chrome trace —
// CI exports one with `csched -trace` and gates it on the schema
// validator here, so the exporter and the validator are exercised
// against each other end to end, not just in-process.
var traceFile = flag.String("trace-file", "", "validate this Chrome trace-event JSON file and exit")

func TestValidateTraceFile(t *testing.T) {
	if *traceFile == "" {
		t.Skip("no -trace-file given (CI passes one produced by csched -trace)")
	}
	f, err := os.Open(*traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ValidateChromeTraceReader(f); err != nil {
		t.Errorf("%s fails trace-event schema validation: %v", *traceFile, err)
	}
}
