// Package rules is the single implementation of the paper's §4.2
// interconnect-sharing rules. Three clients consume it: the scheduler's
// permutation solver (internal/core, via Occupancy — an epoch-stamped,
// allocation-free occupancy with O(1) reset and DFS undo), the
// structural verifier (core.VerifySchedule, via CycleState), and the
// cycle-accurate simulator (internal/vliwsim, via CycleState on dynamic
// value instances). A rule change made here changes all three in
// lockstep; no other package may re-encode a sharing rule.
//
// The rules are table-driven: every stub placement expands — through
// WriteClaims/ReadClaims, the one encoding of which resources a stub
// touches — into claims on resource cells, one per applicable rule in
// Table. A resource cell may be claimed twice only when the two claims
// compare equal; each Rule row documents which §4.2 sentence that
// equality realizes.
package rules

import (
	"repro/internal/ir"
	"repro/internal/machine"
)

// Kind enumerates the resource classes the sharing rules guard. The
// first four index the Occupancy's flat cell arrays; RFWrite cells are
// keyed by value instance and live in a map.
type Kind int8

const (
	Bus       Kind = iota // shared bus
	ReadPort              // register-file read port
	WritePort             // register-file write port
	FUInput               // functional-unit input latch
	RFWrite               // per-(register file, value instance) write identity
	numKinds
)

// MaxInputs bounds per-unit operand inputs for FUInput cell indexing.
const MaxInputs = 4

// String names the resource class for reports and exports.
func (k Kind) String() string {
	switch k {
	case Bus:
		return "bus"
	case ReadPort:
		return "read-port"
	case WritePort:
		return "write-port"
	case FUInput:
		return "fu-input"
	case RFWrite:
		return "rf-write"
	}
	return "unknown"
}

// Rule is one row of the sharing-rule table.
type Rule struct {
	Kind     Kind
	Name     string // short identifier for diagnostics
	Resource string // display noun for the guarded resource
	Text     string // the §4.2 sentence the rule realizes
}

// Table is the complete §4.2 rule set (plus the structural FU-input
// rule the permutation solver needs). Indexed by Kind.
var Table = [numKinds]Rule{
	Bus: {
		Kind:     Bus,
		Name:     "bus-single-driver",
		Resource: "bus",
		Text: "a bus carries one value from one driver per cycle; stubs share it " +
			"only when the driving unit or port and the value instance agree exactly",
	},
	ReadPort: {
		Kind:     ReadPort,
		Name:     "read-port-single-value",
		Resource: "read port",
		Text: "a read port reads one value instance per cycle (fan-out onto several " +
			"buses is allowed); multi-source operands never share",
	},
	WritePort: {
		Kind:     WritePort,
		Name:     "write-port-single-delivery",
		Resource: "write port",
		Text:     "a write port accepts one value instance per cycle, delivered over one bus",
	},
	FUInput: {
		Kind:     FUInput,
		Name:     "input-single-operand",
		Resource: "unit input",
		Text:     "a functional-unit input latches exactly one operand per cycle",
	},
	RFWrite: {
		Kind:     RFWrite,
		Name:     "rf-write-identity",
		Resource: "register file",
		Text: "one value instance enters one register file through exactly one " +
			"(bus, write port) pair: two write stubs for the same result conflict " +
			"only if they write the same file using different buses or ports",
	},
}

// Value identifies a value instance for sharing comparisons. Flat is
// the normalized cycle of the instance: for writes, the flat completion
// cycle; for reads, the read cycle minus distance·II, so reads landing
// on one cycle compare equal exactly when they fetch the same dynamic
// instance; for the simulator's dynamic checks, the producing
// iteration. Inv marks loop-invariant instances (defined in the
// preamble, read in the loop): every iteration reads the same one.
// Uniq, when non-zero, makes the instance unshareable — the scheduler
// stamps multi-source (phi) operands with a per-operand nonce.
type Value struct {
	ID   ir.ValueID
	Flat int32
	Inv  bool
	Uniq int32
}

// Claim is one resource occupation. Two claims may share a cell iff
// they are equal (Go struct equality); the per-rule cell and claim
// construction in WriteClaims/ReadClaims is what gives that equality
// its §4.2 meaning.
type Claim struct {
	DriverKind byte  // bus cells: 'o' unit output, 'p' read port
	Driver     int32 // bus cells: driving unit or port; write-port and RF cells: delivering bus
	Aux        int32 // RF cells: delivering write port; input cells: operand nonce
	Val        Value
}

// ClaimRef names one (rule, resource cell, claim) assertion. Key
// sub-keys the cell by value instance for RFWrite (zero elsewhere).
type ClaimRef struct {
	Rule  Kind
	Res   int32
	Key   Value
	Claim Claim
}

// WriteClaims expands a write stub delivering value instance v into its
// resource claims, in check order: bus, then write port, then the
// per-RF write identity.
func WriteClaims(stub machine.WriteStub, v Value) [3]ClaimRef {
	return [3]ClaimRef{
		{Rule: Bus, Res: int32(stub.Bus),
			Claim: Claim{DriverKind: 'o', Driver: int32(stub.FU), Val: v}},
		{Rule: WritePort, Res: int32(stub.Port),
			Claim: Claim{Driver: int32(stub.Bus), Val: v}},
		{Rule: RFWrite, Res: int32(stub.RF), Key: v,
			Claim: Claim{Driver: int32(stub.Bus), Aux: int32(stub.Port)}},
	}
}

// ReadClaims expands a read stub fetching value instance v into its
// resource claims, in check order: read port, then bus, then the unit
// input latch. opnd is the consuming operand's nonce (two operands
// never share an input); pass 0 to skip the input rule when operands
// are checked structurally elsewhere.
func ReadClaims(stub machine.ReadStub, v Value, opnd int32) [3]ClaimRef {
	return [3]ClaimRef{
		{Rule: ReadPort, Res: int32(stub.Port), Claim: Claim{Val: v}},
		{Rule: Bus, Res: int32(stub.Bus),
			Claim: Claim{DriverKind: 'p', Driver: int32(stub.Port), Val: v}},
		{Rule: FUInput, Res: int32(stub.FU)*MaxInputs + int32(stub.Slot),
			Claim: Claim{Aux: opnd}},
	}
}
