package rules

import (
	"fmt"

	"repro/internal/machine"
)

// Conflict explains one sharing-rule violation: which rule, on which
// resource, and the two claims that collided. It satisfies error.
type Conflict struct {
	Rule Rule
	Res  int32  // resource index within the rule's class
	Old  string // description of the established claim
	New  string // description of the rejected claim
}

func (c *Conflict) Error() string {
	return fmt.Sprintf("%s %d: %s conflicts with %s [%s]",
		c.Rule.Resource, c.Res, c.New, c.Old, c.Rule.Name)
}

// CycleState checks the sharing rules over one cycle (or one modulo
// slot) with full bookkeeping: unlike Occupancy it never undoes, and a
// violation comes back as a Conflict naming the rule and both
// claimants. The structural verifier and the cycle-accurate simulator
// drive their checks through it.
//
// The bookkeeping mirrors Occupancy's epoch-stamped bitset layout: the
// array-backed rules keep one claimed bit per resource (64 to a word,
// each word epoch-stamped so Reset is O(1)) with the claim and its
// description in parallel payload arrays, and the value-keyed RFWrite
// rule keeps a live entry list truncated on Reset. Construct with
// NewCycleStateFor to size the arrays for a machine up front;
// NewCycleState grows them on demand.
type CycleState struct {
	epoch int32
	bits  [RFWrite][]uint64
	wordE [RFWrite][]int32
	cells [RFWrite][]heldCell
	rfw   []rfwHeld
}

type heldCell struct {
	c    Claim
	desc string
}

type rfwHeld struct {
	rf   int32
	key  Value
	c    Claim
	desc string
}

// NewCycleState returns an empty cycle whose cell arrays grow on
// demand (for callers without a machine at hand, e.g. rule unit tests).
func NewCycleState() *CycleState { return &CycleState{epoch: 1} }

// NewCycleStateFor returns an empty cycle with the cell arrays sized
// for one machine, so checking allocates nothing beyond the RFWrite
// entries it records.
func NewCycleStateFor(m *machine.Machine) *CycleState {
	cs := NewCycleState()
	cs.size(Bus, len(m.Buses))
	cs.size(ReadPort, len(m.ReadPorts))
	cs.size(WritePort, len(m.WritePorts))
	cs.size(FUInput, len(m.FUs)*MaxInputs)
	return cs
}

// Reset clears the cycle in O(1): the epoch bump invalidates every
// bitset word, and the RFWrite entry list is truncated.
func (cs *CycleState) Reset() {
	cs.epoch++
	cs.rfw = cs.rfw[:0]
}

func (cs *CycleState) size(k Kind, n int) {
	words := (n + 63) / 64
	cs.bits[k] = make([]uint64, words)
	cs.wordE[k] = make([]int32, words)
	cs.cells[k] = make([]heldCell, n)
}

// ensure grows rule class k to cover resource index res (demand-grown
// construction only; NewCycleStateFor sizes everything up front).
func (cs *CycleState) ensure(k Kind, res int32) {
	if int(res) < len(cs.cells[k]) {
		return
	}
	n := int(res) + 1
	cells := make([]heldCell, n)
	copy(cells, cs.cells[k])
	cs.cells[k] = cells
	words := (n + 63) / 64
	if words > len(cs.bits[k]) {
		bits := make([]uint64, words)
		copy(bits, cs.bits[k])
		cs.bits[k] = bits
		wordE := make([]int32, words)
		copy(wordE, cs.wordE[k])
		cs.wordE[k] = wordE
	}
}

// add asserts one claim described by desc.
func (cs *CycleState) add(cr ClaimRef, desc string) *Conflict {
	if cr.Rule == RFWrite {
		for i := range cs.rfw {
			e := &cs.rfw[i]
			if e.rf == cr.Res && e.key == cr.Key {
				if e.c == cr.Claim {
					return nil
				}
				return &Conflict{Rule: Table[cr.Rule], Res: cr.Res, Old: e.desc, New: desc}
			}
		}
		cs.rfw = append(cs.rfw, rfwHeld{rf: cr.Res, key: cr.Key, c: cr.Claim, desc: desc})
		return nil
	}
	cs.ensure(cr.Rule, cr.Res)
	w, b := cr.Res>>6, uint64(1)<<uint(cr.Res&63)
	if cs.wordE[cr.Rule][w] != cs.epoch {
		cs.wordE[cr.Rule][w] = cs.epoch
		cs.bits[cr.Rule][w] = 0
	}
	cell := &cs.cells[cr.Rule][cr.Res]
	if cs.bits[cr.Rule][w]&b != 0 {
		if cell.c == cr.Claim {
			return nil
		}
		return &Conflict{Rule: Table[cr.Rule], Res: cr.Res, Old: cell.desc, New: desc}
	}
	cs.bits[cr.Rule][w] |= b
	*cell = heldCell{c: cr.Claim, desc: desc}
	return nil
}

// Write checks a write stub delivering value instance v, described by
// desc for diagnostics.
func (cs *CycleState) Write(stub machine.WriteStub, v Value, desc string) *Conflict {
	for _, cr := range WriteClaims(stub, v) {
		if cf := cs.add(cr, desc); cf != nil {
			return cf
		}
	}
	return nil
}

// Read checks a read stub fetching value instance v. opnd is the
// consuming operand's nonce; pass 0 to skip the unit-input rule.
func (cs *CycleState) Read(stub machine.ReadStub, v Value, opnd int32, desc string) *Conflict {
	for _, cr := range ReadClaims(stub, v, opnd) {
		if cr.Rule == FUInput && opnd == 0 {
			continue
		}
		if cf := cs.add(cr, desc); cf != nil {
			return cf
		}
	}
	return nil
}
