package rules

import (
	"fmt"

	"repro/internal/machine"
)

// Conflict explains one sharing-rule violation: which rule, on which
// resource, and the two claims that collided. It satisfies error.
type Conflict struct {
	Rule Rule
	Res  int32  // resource index within the rule's class
	Old  string // description of the established claim
	New  string // description of the rejected claim
}

func (c *Conflict) Error() string {
	return fmt.Sprintf("%s %d: %s conflicts with %s [%s]",
		c.Rule.Resource, c.Res, c.New, c.Old, c.Rule.Name)
}

// CycleState checks the sharing rules over one cycle (or one modulo
// slot) with full bookkeeping: unlike Occupancy it never undoes, and a
// violation comes back as a Conflict naming the rule and both
// claimants. The structural verifier and the cycle-accurate simulator
// drive their checks through it.
type CycleState struct {
	claims map[cellKey]held
}

type cellKey struct {
	rule Kind
	res  int32
	key  Value // RFWrite cells are per value instance
}

type held struct {
	c    Claim
	desc string
}

// NewCycleState returns an empty cycle.
func NewCycleState() *CycleState {
	return &CycleState{claims: make(map[cellKey]held)}
}

// add asserts one claim described by desc.
func (cs *CycleState) add(cr ClaimRef, desc string) *Conflict {
	key := cellKey{rule: cr.Rule, res: cr.Res, key: cr.Key}
	if prev, busy := cs.claims[key]; busy {
		if prev.c == cr.Claim {
			return nil
		}
		return &Conflict{Rule: Table[cr.Rule], Res: cr.Res, Old: prev.desc, New: desc}
	}
	cs.claims[key] = held{c: cr.Claim, desc: desc}
	return nil
}

// Write checks a write stub delivering value instance v, described by
// desc for diagnostics.
func (cs *CycleState) Write(stub machine.WriteStub, v Value, desc string) *Conflict {
	for _, cr := range WriteClaims(stub, v) {
		if cf := cs.add(cr, desc); cf != nil {
			return cf
		}
	}
	return nil
}

// Read checks a read stub fetching value instance v. opnd is the
// consuming operand's nonce; pass 0 to skip the unit-input rule.
func (cs *CycleState) Read(stub machine.ReadStub, v Value, opnd int32, desc string) *Conflict {
	for _, cr := range ReadClaims(stub, v, opnd) {
		if cr.Rule == FUInput && opnd == 0 {
			continue
		}
		if cf := cs.add(cr, desc); cf != nil {
			return cf
		}
	}
	return nil
}
