package rules

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/machine"
)

// TestQuickWriteSharing fuzzes the occupancy write rules directly:
// identical write stubs for the same value instance always share;
// different value instances on one bus or one port never do.
func TestQuickWriteSharing(t *testing.T) {
	m := machine.Distributed()
	stubs := m.WriteStubs(0)
	f := func(a, b uint16, v1, v2 uint8, f1, f2 uint8) bool {
		o := NewOccupancy(m)
		o.Reset()
		s1 := stubs[int(a)%len(stubs)]
		s2 := stubs[int(b)%len(stubs)]
		var undo []Undo
		undo, ok1 := o.PlaceWrite(s1, Value{ID: ir.ValueID(v1), Flat: int32(f1)}, undo)
		if !ok1 {
			return false // empty occupancy must accept any stub
		}
		_, ok2 := o.PlaceWrite(s2, Value{ID: ir.ValueID(v2), Flat: int32(f2)}, undo)
		sameInstance := v1 == v2 && f1 == f2
		switch {
		case s1 == s2 && sameInstance:
			return ok2 // identical sharing allowed
		case s1.Bus == s2.Bus && !sameInstance:
			return !ok2 // one bus, two values: conflict
		case s1.RF == s2.RF && s1.Port == s2.Port && !sameInstance:
			return !ok2 // one port, two values: conflict
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestOccupancyUndo checks that undoing a placement frees every claimed
// resource, including the per-RF write-identity map entry.
func TestOccupancyUndo(t *testing.T) {
	m := machine.Distributed()
	stubs := m.WriteStubs(0)
	o := NewOccupancy(m)
	o.Reset()
	v := Value{ID: 7, Flat: 3}
	undo, ok := o.PlaceWrite(stubs[0], v, nil)
	if !ok {
		t.Fatal("first placement rejected")
	}
	other := Value{ID: 8, Flat: 3}
	if _, ok := o.PlaceWrite(stubs[0], other, nil); ok {
		t.Fatal("conflicting value accepted on occupied stub")
	}
	o.Undo(undo)
	if _, ok := o.PlaceWrite(stubs[0], other, nil); !ok {
		t.Fatal("stub still occupied after undo")
	}
}

// TestOccupancyEpochReset checks the O(1) reset: claims from a prior
// solve never constrain the next one.
func TestOccupancyEpochReset(t *testing.T) {
	m := machine.Distributed()
	stubs := m.WriteStubs(0)
	o := NewOccupancy(m)
	o.Reset()
	if _, ok := o.PlaceWrite(stubs[0], Value{ID: 1}, nil); !ok {
		t.Fatal("placement rejected")
	}
	o.Reset()
	if _, ok := o.PlaceWrite(stubs[0], Value{ID: 2}, nil); !ok {
		t.Fatal("stale epoch constrained a fresh solve")
	}
}

// TestUniqNeverShares checks the phi rule: a non-zero Uniq stamp makes
// otherwise-identical read instances conflict.
func TestUniqNeverShares(t *testing.T) {
	m := machine.Distributed()
	stub := m.ReadStubs(0, 0)[0]
	o := NewOccupancy(m)
	o.Reset()
	v := Value{ID: 4, Flat: 2, Uniq: 9}
	if _, ok := o.PlaceRead(stub, v, 1, nil); !ok {
		t.Fatal("placement rejected")
	}
	w := v
	w.Uniq = 10
	if _, ok := o.PlaceRead(stub, w, 2, nil); ok {
		t.Fatal("distinct phi operands shared a read port")
	}
}

// TestCycleStateConflictNamesRule checks the explained-conflict path
// used by the verifier and the simulator.
func TestCycleStateConflictNamesRule(t *testing.T) {
	m := machine.Distributed()
	stubs := m.WriteStubs(0)
	cs := NewCycleState()
	if cf := cs.Write(stubs[0], Value{ID: 1}, "write v1 by op0"); cf != nil {
		t.Fatalf("first write conflicted: %v", cf)
	}
	cf := cs.Write(stubs[0], Value{ID: 2}, "write v2 by op1")
	if cf == nil {
		t.Fatal("two values on one bus not rejected")
	}
	if cf.Rule.Kind != Bus {
		t.Fatalf("conflict on %v, want bus rule", cf.Rule.Kind)
	}
	msg := cf.Error()
	for _, want := range []string{"bus", "write v2 by op1", "write v1 by op0", Table[Bus].Name} {
		if !strings.Contains(msg, want) {
			t.Fatalf("conflict message %q missing %q", msg, want)
		}
	}
}

// TestCycleStateIdenticalSharing checks that equal claims share in the
// checker exactly as they do in the occupancy.
func TestCycleStateIdenticalSharing(t *testing.T) {
	m := machine.Distributed()
	stubs := m.WriteStubs(0)
	cs := NewCycleState()
	v := Value{ID: 3, Flat: 5}
	if cf := cs.Write(stubs[0], v, "a"); cf != nil {
		t.Fatal(cf)
	}
	if cf := cs.Write(stubs[0], v, "b"); cf != nil {
		t.Fatalf("identical write stub did not share: %v", cf)
	}
}

// TestRFWriteIdentity checks the fourth §4.2 rule end to end: the same
// instance may not enter one register file through two different
// (bus, port) pairs, but distinct instances may use distinct ports.
func TestRFWriteIdentity(t *testing.T) {
	m := machine.Central()
	stubs := m.WriteStubs(0)
	// Find two stubs into the same RF with different ports.
	var s1, s2 machine.WriteStub
	found := false
	for i := range stubs {
		for j := range stubs {
			if stubs[i].RF == stubs[j].RF && stubs[i].Port != stubs[j].Port {
				s1, s2, found = stubs[i], stubs[j], true
			}
		}
	}
	if !found {
		t.Skip("machine has no multi-port register file")
	}
	v := Value{ID: 6, Flat: 1}
	cs := NewCycleState()
	if cf := cs.Write(s1, v, "a"); cf != nil {
		t.Fatal(cf)
	}
	cf := cs.Write(s2, v, "b")
	if cf == nil {
		t.Fatal("same instance entered one RF through two ports")
	}
	if cf.Rule.Kind != RFWrite && cf.Rule.Kind != Bus {
		t.Fatalf("conflict on %v, want rf-write or bus rule", cf.Rule.Kind)
	}
}

// TestTableComplete pins the table layout: every Kind has a named row.
func TestTableComplete(t *testing.T) {
	for k, r := range Table {
		if r.Name == "" || r.Text == "" || r.Resource == "" {
			t.Fatalf("rule %d incomplete: %+v", k, r)
		}
		if r.Kind != Kind(k) {
			t.Fatalf("rule %d indexed under wrong kind %v", k, r.Kind)
		}
	}
}
