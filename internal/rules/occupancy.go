package rules

import "repro/internal/machine"

// Occupancy is the reusable occupancy state behind one cycle-permutation
// solve. Cell bookkeeping is epoch-stamped bitset words sized per
// machine: each rule class keeps one claimed bit per resource, packed
// 64 to a word, with a per-word epoch stamp — bumping the epoch on
// Reset invalidates every word in O(1), and the first touch of a word
// in a new epoch clears it. Claim payloads live in parallel flat
// arrays, valid only while the resource's bit is set. The per-(register
// file, value instance) write-identity rule — whose key space is value
// instances, not a machine resource — uses a lazily grown append-only
// entry list scanned linearly (a solve places only a handful of
// writes), truncated on undo and on Reset; no map, no hashing, and no
// allocation until the first RFWrite claim ever made through this
// Occupancy. The DFS search undoes placements through the Undo lists
// the place calls return. The placement path allocates nothing in
// steady state and reports plain booleans; clients that want explained
// conflicts use CycleState instead.
type Occupancy struct {
	epoch  int32
	bits   [RFWrite][]uint64 // claimed bit per resource, packed per word
	wordE  [RFWrite][]int32  // epoch stamp per bits word
	claims [RFWrite][]Claim  // payload per resource, live iff bit set
	rfw    []rfwEntry        // live write-identity entries: rfw[:rfwLen]
	rfwLen int
}

// rfwEntry is one live RFWrite claim: value instance val entered
// register file rf through the (bus, port) pair recorded in c.
type rfwEntry struct {
	rf  int32
	val Value
	c   Claim
}

// Undo records one undoable placement: the rule class and, for the
// array-backed rules, the resource whose bit to clear — for RFWrite,
// the entry's index in the live list. Undo lists must be released in
// stack order (each list a suffix of the placements made since it
// started), which every solver path already observes; RFWrite undo
// truncates the live list back past the entry.
type Undo struct {
	rule Kind
	res  int32
}

// NewOccupancy sizes the cell arrays for one machine. The rfw list is
// deliberately not preallocated: it grows on the first write-identity
// claim, so occupancies that only ever check reads cost nothing for it.
func NewOccupancy(m *machine.Machine) *Occupancy {
	o := &Occupancy{}
	o.size(Bus, len(m.Buses))
	o.size(ReadPort, len(m.ReadPorts))
	o.size(WritePort, len(m.WritePorts))
	o.size(FUInput, len(m.FUs)*MaxInputs)
	return o
}

// size shapes one rule class for n resources.
func (o *Occupancy) size(k Kind, n int) {
	words := (n + 63) / 64
	o.bits[k] = make([]uint64, words)
	o.wordE[k] = make([]int32, words)
	o.claims[k] = make([]Claim, n)
}

// Reset prepares the occupancy for a new solve.
func (o *Occupancy) Reset() {
	o.epoch++
	o.rfwLen = 0
}

// claimCell asserts a claim described by its scalar parts on one
// array-backed cell. It reports whether the stub fits (the cell was
// free or identically shared) and whether this call newly claimed the
// cell (so the caller appends the releasing undo record).
func (o *Occupancy) claimCell(rule Kind, res int32, dk byte, driver, aux int32, v Value) (fresh, ok bool) {
	w, b := res>>6, uint64(1)<<uint(res&63)
	if o.wordE[rule][w] != o.epoch {
		o.wordE[rule][w] = o.epoch
		o.bits[rule][w] = 0
	}
	if o.bits[rule][w]&b != 0 {
		c := &o.claims[rule][res]
		return false, c.DriverKind == dk && c.Driver == driver && c.Aux == aux && c.Val == v
	}
	o.bits[rule][w] |= b
	o.claims[rule][res] = Claim{DriverKind: dk, Driver: driver, Aux: aux, Val: v}
	return true, true
}

// claimRFW asserts the per-(register file, value instance) write
// identity: bus and port must agree exactly with any live entry for the
// same (rf, val). The second result is the new entry's index, valid
// only when fresh.
func (o *Occupancy) claimRFW(rf int32, val Value, bus, port int32) (fresh bool, idx int32, ok bool) {
	live := o.rfw[:o.rfwLen]
	for i := range live {
		e := &live[i]
		if e.rf == rf && e.val == val {
			return false, 0, e.c.Driver == bus && e.c.Aux == port
		}
	}
	idx = int32(o.rfwLen)
	if o.rfwLen < len(o.rfw) {
		o.rfw[o.rfwLen] = rfwEntry{rf: rf, val: val, c: Claim{Driver: bus, Aux: port}}
	} else {
		o.rfw = append(o.rfw, rfwEntry{rf: rf, val: val, c: Claim{Driver: bus, Aux: port}})
	}
	o.rfwLen++
	return true, idx, true
}

// PlaceWrite claims a write stub's resources for value instance v, in
// check order: bus, then write port, then the per-RF write identity. It
// returns the extended undo list and whether the stub fits; on conflict
// it releases what this call claimed.
func (o *Occupancy) PlaceWrite(stub machine.WriteStub, v Value, undo []Undo) ([]Undo, bool) {
	start := len(undo)
	if fresh, ok := o.claimCell(Bus, int32(stub.Bus), 'o', int32(stub.FU), 0, v); !ok {
		return undo, false
	} else if fresh {
		undo = append(undo, Undo{rule: Bus, res: int32(stub.Bus)})
	}
	if fresh, ok := o.claimCell(WritePort, int32(stub.Port), 0, int32(stub.Bus), 0, v); !ok {
		o.Undo(undo[start:])
		return undo[:start], false
	} else if fresh {
		undo = append(undo, Undo{rule: WritePort, res: int32(stub.Port)})
	}
	if fresh, idx, ok := o.claimRFW(int32(stub.RF), v, int32(stub.Bus), int32(stub.Port)); !ok {
		o.Undo(undo[start:])
		return undo[:start], false
	} else if fresh {
		undo = append(undo, Undo{rule: RFWrite, res: idx})
	}
	return undo, true
}

// PlaceRead claims a read stub's resources, including the unit input it
// delivers into (opnd uniquely identifies the consuming operand), in
// check order: read port, then bus, then the unit input latch.
func (o *Occupancy) PlaceRead(stub machine.ReadStub, v Value, opnd int32, undo []Undo) ([]Undo, bool) {
	start := len(undo)
	if fresh, ok := o.claimCell(ReadPort, int32(stub.Port), 0, 0, 0, v); !ok {
		return undo, false
	} else if fresh {
		undo = append(undo, Undo{rule: ReadPort, res: int32(stub.Port)})
	}
	if fresh, ok := o.claimCell(Bus, int32(stub.Bus), 'p', int32(stub.Port), 0, v); !ok {
		o.Undo(undo[start:])
		return undo[:start], false
	} else if fresh {
		undo = append(undo, Undo{rule: Bus, res: int32(stub.Bus)})
	}
	res := int32(stub.FU)*MaxInputs + int32(stub.Slot)
	if fresh, ok := o.claimCell(FUInput, res, 0, 0, opnd, Value{}); !ok {
		o.Undo(undo[start:])
		return undo[:start], false
	} else if fresh {
		undo = append(undo, Undo{rule: FUInput, res: res})
	}
	return undo, true
}

// Undo releases the listed placements. The list must be a suffix of the
// placements made since it began (stack discipline): array-backed cells
// release independently by clearing their bit, and RFWrite records
// truncate the live entry list back to the smallest released index.
func (o *Occupancy) Undo(list []Undo) {
	for _, u := range list {
		if u.rule == RFWrite {
			if int(u.res) < o.rfwLen {
				o.rfwLen = int(u.res)
			}
			continue
		}
		o.bits[u.rule][u.res>>6] &^= uint64(1) << uint(u.res&63)
	}
}
