package rules

import "repro/internal/machine"

// Occupancy is the reusable occupancy state behind one cycle-permutation
// solve. The array-backed rules (Bus, ReadPort, WritePort, FUInput) use
// flat cells stamped with an epoch — bumped per solve, so resets are
// O(1) — and the per-(register file, value instance) write-identity
// rule uses a small map with epoch-stamped values. The DFS search
// undoes placements through the Undo lists the place calls return. The
// placement path allocates nothing and reports plain booleans; clients
// that want explained conflicts use CycleState instead.
type Occupancy struct {
	epoch int32
	cells [RFWrite][]cell // indexed by Kind for the array-backed rules
	rfw   map[rfwKey]rfwVal
}

type cell struct {
	epoch int32
	c     Claim
}

type rfwKey struct {
	rf  int32
	val Value
}

type rfwVal struct {
	epoch int32
	c     Claim
}

// Undo records one undoable placement.
type Undo struct {
	rule Kind
	res  int32
	key  rfwKey
	old  rfwVal
	had  bool
}

// NewOccupancy sizes the cell arrays for one machine.
func NewOccupancy(m *machine.Machine) *Occupancy {
	o := &Occupancy{rfw: make(map[rfwKey]rfwVal)}
	o.cells[Bus] = make([]cell, len(m.Buses))
	o.cells[ReadPort] = make([]cell, len(m.ReadPorts))
	o.cells[WritePort] = make([]cell, len(m.WritePorts))
	o.cells[FUInput] = make([]cell, len(m.FUs)*MaxInputs)
	return o
}

// Reset prepares the occupancy for a new solve.
func (o *Occupancy) Reset() { o.epoch++ }

// claim asserts one ClaimRef; it reports whether the stub fits (the
// cell was free or identically shared) and, when this call newly
// claimed the cell, the undo record releasing it on backtrack.
func (o *Occupancy) claim(cr ClaimRef) (u Undo, fresh, ok bool) {
	if cr.Rule == RFWrite {
		key := rfwKey{rf: cr.Res, val: cr.Key}
		cur, had := o.rfw[key]
		if had && cur.epoch == o.epoch {
			return u, false, cur.c == cr.Claim
		}
		o.rfw[key] = rfwVal{epoch: o.epoch, c: cr.Claim}
		return Undo{rule: RFWrite, key: key, old: cur, had: had}, true, true
	}
	c := &o.cells[cr.Rule][cr.Res]
	if c.epoch == o.epoch {
		return u, false, c.c == cr.Claim
	}
	c.epoch = o.epoch
	c.c = cr.Claim
	return Undo{rule: cr.Rule, res: cr.Res}, true, true
}

// place asserts a claim list in order, appending to undo. On conflict
// it releases what this call claimed and reports failure.
func (o *Occupancy) place(claims [3]ClaimRef, undo []Undo) ([]Undo, bool) {
	start := len(undo)
	for _, cr := range claims {
		u, fresh, ok := o.claim(cr)
		if !ok {
			o.Undo(undo[start:])
			return undo[:start], false
		}
		if fresh {
			undo = append(undo, u)
		}
	}
	return undo, true
}

// PlaceWrite claims a write stub's resources for value instance v. It
// returns the extended undo list and whether the stub fits.
func (o *Occupancy) PlaceWrite(stub machine.WriteStub, v Value, undo []Undo) ([]Undo, bool) {
	return o.place(WriteClaims(stub, v), undo)
}

// PlaceRead claims a read stub's resources, including the unit input it
// delivers into (opnd uniquely identifies the consuming operand).
func (o *Occupancy) PlaceRead(stub machine.ReadStub, v Value, opnd int32, undo []Undo) ([]Undo, bool) {
	return o.place(ReadClaims(stub, v, opnd), undo)
}

// Undo releases the listed placements (in any order; cells are
// independent).
func (o *Occupancy) Undo(list []Undo) {
	for _, u := range list {
		if u.rule == RFWrite {
			if u.had {
				o.rfw[u.key] = u.old
			} else {
				delete(o.rfw, u.key)
			}
			continue
		}
		o.cells[u.rule][u.res].epoch = 0
	}
}
