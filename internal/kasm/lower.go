package kasm

import (
	"fmt"
	"math"

	"repro/internal/ir"
)

// Compile parses and lowers kernel-language source to IR.
func Compile(src string) (*ir.Kernel, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(f)
}

// MustCompile is Compile for statically known-good sources (the
// built-in kernel suite); it panics on error.
func MustCompile(src string) *ir.Kernel {
	k, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return k
}

type typ int

const (
	tInt typ = iota
	tFloat
)

// String names the type for diagnostics.
func (t typ) String() string {
	if t == tFloat {
		return "float"
	}
	return "int"
}

// val is a lowered expression: either a compile-time constant (carried
// as a raw bit pattern) or an SSA value.
type val struct {
	isConst bool
	bits    int64
	v       ir.ValueID
	t       typ
}

func cInt(i int64) val     { return val{isConst: true, bits: i, t: tInt} }
func cFloat(f float64) val { return val{isConst: true, bits: int64(math.Float64bits(f)), t: tFloat} }

// asFloat interprets a constant's bits as float64.
func (v val) asFloat() float64 { return math.Float64frombits(uint64(v.bits)) }

type streamInfo struct {
	base    int64
	isFloat bool
	tag     int // non-zero when the stream is also written
}

type varState struct {
	t typ
	// cur is the variable's current definition in the block being
	// lowered.
	cur val
	// preDef is the definition live at the end of the preamble.
	preDef val
	// loopAssigned marks variables redefined inside the loop; reads of
	// such a variable before its first in-loop assignment become a phi
	// of preDef and the final in-loop definition.
	loopAssigned bool
	// lastLoopDef is the final in-loop definition, patched into the
	// recorded phi back edges after the body is lowered.
	lastLoopDef ir.ValueID
	assignedYet bool // an in-loop assignment has been lowered already
	// declaredInLoop marks loop-local temporaries, which always read
	// their current definition (no cross-iteration carry).
	declaredInLoop bool
}

type patch struct {
	op       ir.OpID
	slot     int
	srcIndex int
	name     string
}

type lowerer struct {
	f        *File
	b        *ir.Builder
	streams  map[string]*streamInfo
	vars     map[string]*varState
	consts   map[string]val
	inLoop   bool
	ivName   string
	iv       ir.Operand // phi operand of the induction variable
	patches  []patch
	backRefs []string // names behind placeholder back-edge sources
	spTag    int
	nextTag  int
}

// Lower converts a parsed kernel to IR.
func Lower(f *File) (*ir.Kernel, error) {
	lw := &lowerer{
		f:       f,
		b:       ir.NewBuilder(f.Name),
		streams: make(map[string]*streamInfo),
		vars:    make(map[string]*varState),
		consts:  make(map[string]val),
		nextTag: 1,
	}
	if err := lw.lower(); err != nil {
		return nil, err
	}
	return lw.b.Finish()
}

func (lw *lowerer) errf(line int, format string, args ...any) error {
	return fmt.Errorf("kasm:%d: %s", line, fmt.Sprintf(format, args...))
}

func (lw *lowerer) lower() error {
	// Pre-scan: which streams are written, which variables the loop
	// reassigns (they need materialized preamble definitions for their
	// phis).
	var body []Stmt
	if lw.f.Loop != nil {
		body = unrollBody(lw.f.Loop)
	}
	writtenStreams := make(map[string]bool)
	loopAssigns := make(map[string]bool)
	for _, s := range body {
		switch s := s.(type) {
		case *StoreStmt:
			writtenStreams[s.Target] = true
		case *AssignStmt:
			loopAssigns[s.Name] = true
		}
	}
	spUsed := writtenStreams["sp"] || writtenStreams["spf"] || usesScratch(lw.f.Preamble) || usesScratch(body)
	if spUsed {
		lw.spTag = lw.nextTag
		lw.nextTag++
	}

	// Preamble.
	for _, s := range lw.f.Preamble {
		lw.b.SetLine(stmtLine(s))
		switch s := s.(type) {
		case *StreamDecl:
			if s.Name == "sp" || s.Name == "spf" {
				return lw.errf(s.Line, "stream name %q is reserved", s.Name)
			}
			if lw.streams[s.Name] != nil {
				return lw.errf(s.Line, "stream %s redeclared", s.Name)
			}
			info := &streamInfo{base: s.Base, isFloat: s.IsFloat}
			if writtenStreams[s.Name] {
				info.tag = lw.nextTag
				lw.nextTag++
			}
			lw.streams[s.Name] = info
		case *DeclStmt:
			v, err := lw.expr(s.Init)
			if err != nil {
				return err
			}
			if s.IsConst {
				if !v.isConst {
					return lw.errf(s.Line, "const %s initializer is not constant", s.Name)
				}
				lw.consts[s.Name] = v
				continue
			}
			if lw.vars[s.Name] != nil || lw.consts[s.Name].isConst {
				return lw.errf(s.Line, "variable %s redeclared", s.Name)
			}
			// Loop-reassigned variables need a real preamble value for
			// the phi's initial source.
			if loopAssigns[s.Name] && v.isConst {
				v = lw.materialize(v, s.Name)
			}
			lw.vars[s.Name] = &varState{t: v.t, cur: v, preDef: v, loopAssigned: loopAssigns[s.Name]}
		case *AssignStmt:
			if err := lw.assign(s); err != nil {
				return err
			}
			// Keep the preamble definition in sync and materialized.
			st := lw.vars[s.Name]
			if st != nil {
				if loopAssigns[s.Name] && st.cur.isConst {
					st.cur = lw.materialize(st.cur, s.Name)
				}
				st.preDef = st.cur
			}
		case *StoreStmt:
			if err := lw.store(s); err != nil {
				return err
			}
		}
	}
	for _, st := range lw.vars {
		st.preDef = st.cur
	}

	if lw.f.Loop == nil {
		lw.b.SetTripCount(1)
		return lw.b.Err()
	}

	// Loop.
	lw.b.Loop()
	lw.inLoop = true
	loop := lw.f.Loop
	step := loop.Step * int64(loop.Unroll)
	lw.b.SetLine(loop.Line)
	iv, _ := lw.b.InductionVar(loop.Var, loop.Lo, step)
	lw.ivName = loop.Var
	lw.iv = iv
	if lw.vars[loop.Var] != nil || lw.consts[loop.Var].isConst {
		return lw.errf(loop.Line, "induction variable %s shadows a declaration", loop.Var)
	}
	for _, s := range body {
		lw.b.SetLine(stmtLine(s))
		switch s := s.(type) {
		case *AssignStmt:
			if err := lw.assign(s); err != nil {
				return err
			}
		case *StoreStmt:
			if err := lw.store(s); err != nil {
				return err
			}
		case *DeclStmt:
			// Loop-local temporary.
			v, err := lw.expr(s.Init)
			if err != nil {
				return err
			}
			if s.IsConst {
				if !v.isConst {
					return lw.errf(s.Line, "const %s initializer is not constant", s.Name)
				}
				lw.consts[s.Name] = v
				continue
			}
			if lw.vars[s.Name] != nil {
				return lw.errf(s.Line, "variable %s redeclared", s.Name)
			}
			lw.vars[s.Name] = &varState{t: v.t, cur: v, declaredInLoop: true}
		default:
			return lw.errf(loop.Line, "unsupported statement in loop")
		}
	}

	// Patch phi back edges with the final in-loop definitions.
	for _, p := range lw.patches {
		st := lw.vars[p.name]
		if st == nil || st.lastLoopDef == ir.NoValue {
			return fmt.Errorf("kasm: internal: unresolved back edge for %s", p.name)
		}
		lw.b.PatchSource(p.op, p.slot, p.srcIndex, st.lastLoopDef)
	}

	trips := loop.Trips() / int64(loop.Unroll)
	if trips < 1 {
		trips = 1
	}
	lw.b.SetTripCount(int(trips))
	return lw.b.Err()
}

// usesScratch reports whether any statement touches the scratchpad.
func usesScratch(stmts []Stmt) bool {
	found := false
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch e := e.(type) {
		case *IndexExpr:
			if e.Target == "sp" || e.Target == "spf" {
				found = true
			}
			walkExpr(e.Index)
		case *UnaryExpr:
			walkExpr(e.X)
		case *BinExpr:
			walkExpr(e.X)
			walkExpr(e.Y)
		case *CallExpr:
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *CondExpr:
			walkExpr(e.Cond)
			walkExpr(e.Then)
			walkExpr(e.Else)
		}
	}
	for _, s := range stmts {
		switch s := s.(type) {
		case *DeclStmt:
			walkExpr(s.Init)
		case *AssignStmt:
			walkExpr(s.Value)
		case *StoreStmt:
			if s.Target == "sp" || s.Target == "spf" {
				found = true
			}
			walkExpr(s.Index)
			walkExpr(s.Value)
		}
	}
	return found
}

// unrollBody replicates the loop body Unroll times, substituting
// iv → (iv + j·step) in replica j and renaming loop-local declarations
// so the replicas do not collide.
func unrollBody(l *LoopStmt) []Stmt {
	if l.Unroll <= 1 {
		return l.Body
	}
	var out []Stmt
	for j := 0; j < l.Unroll; j++ {
		off := int64(j) * l.Step
		renames := make(map[string]string)
		for _, s := range l.Body {
			out = append(out, cloneStmt(s, l.Var, off, j, renames))
		}
	}
	return out
}

func cloneStmt(s Stmt, iv string, off int64, replica int, renames map[string]string) Stmt {
	switch s := s.(type) {
	case *DeclStmt:
		c := *s
		c.Init = cloneExpr(s.Init, iv, off, renames)
		if replica > 0 {
			renamed := fmt.Sprintf("%s$u%d", s.Name, replica)
			renames[s.Name] = renamed
			c.Name = renamed
		}
		return &c
	case *AssignStmt:
		c := *s
		if r, ok := renames[s.Name]; ok {
			c.Name = r
		}
		c.Value = cloneExpr(s.Value, iv, off, renames)
		return &c
	case *StoreStmt:
		c := *s
		c.Index = cloneExpr(s.Index, iv, off, renames)
		c.Value = cloneExpr(s.Value, iv, off, renames)
		return &c
	}
	return s
}

func cloneExpr(e Expr, iv string, off int64, renames map[string]string) Expr {
	switch e := e.(type) {
	case *NumLit:
		return e
	case *Ident:
		if e.Name == iv && off != 0 {
			return &BinExpr{Op: "+", X: e, Y: &NumLit{I: off, Line: e.Line}, Line: e.Line}
		}
		if r, ok := renames[e.Name]; ok {
			return &Ident{Name: r, Line: e.Line}
		}
		return e
	case *IndexExpr:
		return &IndexExpr{Target: e.Target, Index: cloneExpr(e.Index, iv, off, renames), Line: e.Line}
	case *UnaryExpr:
		return &UnaryExpr{Op: e.Op, X: cloneExpr(e.X, iv, off, renames), Line: e.Line}
	case *BinExpr:
		return &BinExpr{Op: e.Op, X: cloneExpr(e.X, iv, off, renames), Y: cloneExpr(e.Y, iv, off, renames), Line: e.Line}
	case *CallExpr:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = cloneExpr(a, iv, off, renames)
		}
		return &CallExpr{Fn: e.Fn, Args: args, Line: e.Line}
	case *CondExpr:
		return &CondExpr{
			Cond: cloneExpr(e.Cond, iv, off, renames),
			Then: cloneExpr(e.Then, iv, off, renames),
			Else: cloneExpr(e.Else, iv, off, renames),
			Line: e.Line,
		}
	}
	return e
}

// materialize turns a constant into a MovI-produced value.
func (lw *lowerer) materialize(v val, name string) val {
	id := lw.b.Emit(ir.MovI, name+"0", ir.ConstOperand(v.bits))
	return val{v: id, t: v.t}
}

// operand converts a val to an IR operand, reading loop-carried
// variables through a phi when necessary.
func (lw *lowerer) operand(v val) ir.Operand {
	if v.isConst {
		return ir.ConstOperand(v.bits)
	}
	return ir.ValueOperand(v.v)
}

// assign lowers an assignment statement.
func (lw *lowerer) assign(s *AssignStmt) error {
	if lw.consts[s.Name].isConst {
		return lw.errf(s.Line, "cannot assign to const %s", s.Name)
	}
	rhs := s.Value
	if s.Op != "=" {
		op := map[string]string{"+=": "+", "-=": "-", "*=": "*"}[s.Op]
		rhs = &BinExpr{Op: op, X: &Ident{Name: s.Name, Line: s.Line}, Y: s.Value, Line: s.Line}
	}
	v, err := lw.expr(rhs)
	if err != nil {
		return err
	}
	st := lw.vars[s.Name]
	if st == nil {
		if lw.inLoop {
			return lw.errf(s.Line, "variable %s not declared (declare it in the preamble with var)", s.Name)
		}
		lw.vars[s.Name] = &varState{t: v.t, cur: v}
		return nil
	}
	if st.t != v.t {
		return lw.errf(s.Line, "assigning %v to %v variable %s", v.t, st.t, s.Name)
	}
	if lw.inLoop && st.loopAssigned {
		// The back edge needs a value; materialize constants.
		if v.isConst {
			v = val{v: lw.b.Emit(ir.MovI, s.Name, ir.ConstOperand(v.bits)), t: v.t}
		}
		st.lastLoopDef = v.v
		st.assignedYet = true
	}
	st.cur = v
	return nil
}

// store lowers a memory or scratchpad store.
func (lw *lowerer) store(s *StoreStmt) error {
	v, err := lw.exprFull(s.Value)
	if err != nil {
		return err
	}
	if s.Target == "sp" || s.Target == "spf" {
		idx, err := lw.exprFull(s.Index)
		if err != nil {
			return err
		}
		if idx.t != tInt {
			return lw.errf(s.Line, "index must be int")
		}
		want := tInt
		if s.Target == "spf" {
			want = tFloat
		}
		if v.t != want {
			return lw.errf(s.Line, "storing %v value through %s", v.t, s.Target)
		}
		lw.emit(ir.SPWrite, "", lw.spTag, lw.operandOf(v), lw.operandOf(idx))
		return lw.b.Err()
	}
	info := lw.streams[s.Target]
	if info == nil {
		return lw.errf(s.Line, "unknown stream %s", s.Target)
	}
	if info.isFloat != (v.t == tFloat) {
		return lw.errf(s.Line, "storing %v value to stream %s", v.t, s.Target)
	}
	base, off, err := lw.address(info, s.Index)
	if err != nil {
		return err
	}
	lw.emit(ir.Store, "", info.tag, lw.operandOf(v), base, off)
	return lw.b.Err()
}

// address lowers an index expression into a base operand and an
// immediate offset (absorbing constant addends and the stream base),
// matching the load/store units' base+offset address generators.
func (lw *lowerer) address(info *streamInfo, index Expr) (base, offset ir.Operand, err error) {
	baseExpr, off := splitIndex(index)
	off += info.base
	if baseExpr == nil {
		return ir.ConstOperand(off), ir.ConstOperand(0), nil
	}
	idx, err := lw.exprFull(baseExpr)
	if err != nil {
		return ir.Operand{}, ir.Operand{}, err
	}
	if idx.t != tInt {
		return ir.Operand{}, ir.Operand{}, lw.errf(exprLine(index), "index must be int")
	}
	if !idx.isOpnd && idx.val.isConst {
		return ir.ConstOperand(idx.val.bits + off), ir.ConstOperand(0), nil
	}
	return lw.operandOf(idx), ir.ConstOperand(off), nil
}

// splitIndex peels constant addends off an index expression, returning
// the residual expression (nil when fully constant) and the constant
// part.
func splitIndex(e Expr) (Expr, int64) {
	switch e := e.(type) {
	case *NumLit:
		if !e.IsFloat {
			return nil, e.I
		}
	case *BinExpr:
		if e.Op == "+" || e.Op == "-" {
			if n, ok := e.Y.(*NumLit); ok && !n.IsFloat {
				base, off := splitIndex(e.X)
				if e.Op == "+" {
					return base, off + n.I
				}
				return base, off - n.I
			}
			if n, ok := e.X.(*NumLit); ok && !n.IsFloat && e.Op == "+" {
				base, off := splitIndex(e.Y)
				return base, off + n.I
			}
		}
	}
	return e, 0
}

// stmtLine returns the source line of a statement, 0 for synthetic
// statements.
func stmtLine(s Stmt) int {
	switch s := s.(type) {
	case *StreamDecl:
		return s.Line
	case *DeclStmt:
		return s.Line
	case *AssignStmt:
		return s.Line
	case *StoreStmt:
		return s.Line
	}
	return 0
}

func exprLine(e Expr) int {
	switch e := e.(type) {
	case *NumLit:
		return e.Line
	case *Ident:
		return e.Line
	case *IndexExpr:
		return e.Line
	case *UnaryExpr:
		return e.Line
	case *BinExpr:
		return e.Line
	case *CallExpr:
		return e.Line
	}
	return 0
}
