package kasm_test

import (
	"testing"

	"repro/internal/kasm"
	"repro/internal/kernels"
)

// FuzzParseKernel drives the kernel-language frontend with arbitrary
// source. Compile must never panic: it either produces a kernel whose
// IR passes the structural verifier or returns an error. The corpus is
// seeded with the whole Table 1 suite plus small degenerate programs.
func FuzzParseKernel(f *testing.F) {
	for _, spec := range kernels.All() {
		f.Add(spec.Source)
	}
	for _, seed := range []string{
		"",
		"kernel empty() {}",
		"kernel k() { int x = 1; }",
		"kernel k() { loop 4 { } }",
		"kernel k() { int a = 1 + 2; loop 8 { store(a, 100); } }",
		"kernel k() { float f = 1.5; loop 2 { float g = f * 2.0; store(g, 0); } }",
		"kernel k() { loop 1 { int i = i@1 + 1; } }",
		"kernel 模块() { loop 1 { } }",
		"kernel k() { int x = load(0); loop 3 { int y = x + 1; store(y, x); } }",
		// Unroll-factor seeds: the cap (maxUnroll) keeps lowering from
		// replicating a tiny body into gigabytes of IR.
		"kernel k { stream o @ 0; loop i = 0 .. 8 unroll 2 { o[i] = i + 1; } }",
		"kernel k { stream o @ 0; loop i = 0 .. 512 unroll 256 { o[i] = i + 1; } }",
		"kernel k { stream o @ 0; loop i = 0 .. 536870912 unroll 536870912 { o[i] = i + 1; } }",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		k, err := kasm.Compile(src)
		if err != nil {
			return
		}
		if k == nil {
			t.Fatal("Compile returned nil kernel without error")
		}
		if verr := k.Verify(); verr != nil {
			t.Fatalf("Compile accepted source but produced invalid IR: %v\nsource:\n%s", verr, src)
		}
	})
}
