package kasm

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/vliwsim"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("kernel k { var x = 1.5f; y = x << 2; } # comment")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	if toks[0].Kind != TokKeyword || toks[0].Text != "kernel" {
		t.Errorf("first token = %v %q", toks[0].Kind, toks[0].Text)
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == TokFloat && tok.Flt == 1.5 {
			found = true
		}
	}
	if !found {
		t.Errorf("float literal not lexed: %v %v", kinds, texts)
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("stream does not end with EOF")
	}
}

func TestLexRangeVsFloat(t *testing.T) {
	toks, err := Lex("0 .. 5 1..3 2.5")
	if err != nil {
		t.Fatal(err)
	}
	// Expect: INT(0) ".." INT(5) INT(1) ".." INT(3) FLOAT(2.5) EOF
	wantKinds := []TokKind{TokInt, TokPunct, TokInt, TokInt, TokPunct, TokInt, TokFloat, TokEOF}
	if len(toks) != len(wantKinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(wantKinds), toks)
	}
	for i, k := range wantKinds {
		if toks[i].Kind != k {
			t.Errorf("token %d kind = %v, want %v (%v)", i, toks[i].Kind, k, toks[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("a $ b"); err == nil {
		t.Error("lexer accepted '$'")
	}
	if _, err := Lex("/* unterminated"); err == nil {
		t.Error("lexer accepted unterminated comment")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"kernel { }",
		"kernel k { loop i = 0 .. 4 { } loop j = 0 .. 4 {} }", // two loops
		"kernel k { loop i = 0 .. 4 { } var x = 1; }",         // stmt after loop
		"kernel k { var x = ; loop i = 0 .. 4 { } }",
		"kernel k { loop i = 0 .. 5 unroll 2 { } }", // 5 % 2 != 0
		"kernel k { loop i = 0 .. 4 { stream s @ 0; } }",
		"kernel k { x = 1; loop i = 0 .. 4 { } } trailing",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("parser accepted %q", src)
		}
	}
}

func TestLowerErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"kernel k { var x = 1; loop i = 0 .. 4 { y = x; } }", "not declared"},
		{"kernel k { var x = 1.5; loop i = 0 .. 4 { x = x + 1; } }", "different types"},
		{"kernel k { loop i = 0 .. 4 { z[i] = 1; } }", "unknown stream"},
		{"kernel k { const c = 1; loop i = 0 .. 4 { c = 2; } }", "assign to const"},
		{"kernel k { var x = 1; loop i = 0 .. 4 { x = sqrt(2); } }", "float"},
		{"kernel k { stream a @ 0 float; loop i = 0 .. 4 { a[i] = 1; } }", "storing int"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil {
			t.Errorf("lowering accepted %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error for %q = %q, want substring %q", c.src, err, c.want)
		}
	}
}

const firSrc = `
kernel fir {
  stream x @ 0;
  stream out @ 256;
  var acc = 0;
  loop i = 0 .. 16 {
    acc = acc + x[i] * (i + 1);
    out[i] = acc;
  }
}
`

func TestLowerFIRShape(t *testing.T) {
	k, err := Compile(firSrc)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "fir" {
		t.Errorf("kernel name = %q", k.Name)
	}
	if k.TripCount != 16 {
		t.Errorf("trip count = %d, want 16", k.TripCount)
	}
	stats := k.LoopStats()
	if stats[ir.ClsMem] != 2 {
		t.Errorf("loop has %d memory ops, want 2 (load + store): %v", stats[ir.ClsMem], stats)
	}
	if stats[ir.ClsMul] != 1 {
		t.Errorf("loop has %d multiplies, want 1", stats[ir.ClsMul])
	}
	// The accumulator must be a loop-carried phi.
	foundPhi := false
	for _, id := range k.Loop {
		for _, arg := range k.Ops[id].Args {
			if arg.Kind == ir.OperandValue && len(arg.Srcs) > 1 {
				foundPhi = true
			}
		}
	}
	if !foundPhi {
		t.Error("no phi operand lowered for the accumulator")
	}
}

func TestFIREndToEnd(t *testing.T) {
	k, err := Compile(firSrc)
	if err != nil {
		t.Fatal(err)
	}
	mem := map[int64]int64{}
	for i := int64(0); i < 16; i++ {
		mem[i] = i + 2
	}
	// Reference.
	want := make([]int64, 16)
	acc := int64(0)
	for i := int64(0); i < 16; i++ {
		acc += (i + 2) * (i + 1)
		want[i] = acc
	}
	for _, m := range []*machine.Machine{machine.Central(), machine.Distributed()} {
		s, err := core.Compile(k, m, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		res, err := vliwsim.Run(s, vliwsim.Config{InitMem: mem})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for i := int64(0); i < 16; i++ {
			if res.Mem[256+i] != want[i] {
				t.Errorf("%s: out[%d] = %d, want %d", m.Name, i, res.Mem[256+i], want[i])
			}
		}
	}
}

func TestUnrollEndToEnd(t *testing.T) {
	src := `
kernel scale {
  stream x @ 0;
  stream out @ 100;
  loop i = 0 .. 8 unroll 4 {
    out[i] = x[i] * 3 + 1;
  }
}
`
	k, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if k.TripCount != 2 {
		t.Errorf("unrolled trip count = %d, want 2", k.TripCount)
	}
	stats := k.LoopStats()
	if stats[ir.ClsMul] != 4 {
		t.Errorf("unrolled loop has %d multiplies, want 4", stats[ir.ClsMul])
	}
	mem := map[int64]int64{}
	for i := int64(0); i < 8; i++ {
		mem[i] = 10 + i
	}
	s, err := core.Compile(k, machine.Distributed(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vliwsim.Run(s, vliwsim.Config{InitMem: mem})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		if got, want := res.Mem[100+i], (10+i)*3+1; got != want {
			t.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestFloatKernelEndToEnd(t *testing.T) {
	src := `
kernel norm {
  stream a @ 0 float;
  stream b @ 50 float;
  stream out @ 100 float;
  loop i = 0 .. 8 {
    out[i] = sqrt(a[i] * a[i] + b[i] * b[i]);
  }
}
`
	k, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := map[int64]int64{}
	for i := int64(0); i < 8; i++ {
		mem[i] = int64(math.Float64bits(float64(3 * (i + 1))))
		mem[50+i] = int64(math.Float64bits(float64(4 * (i + 1))))
	}
	s, err := core.Compile(k, machine.Clustered(4), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vliwsim.Run(s, vliwsim.Config{InitMem: mem})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		got := math.Float64frombits(uint64(res.Mem[100+i]))
		want := float64(5 * (i + 1))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("out[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestConstFolding(t *testing.T) {
	src := `
kernel fold {
  stream out @ 0;
  const a = 6;
  const b = 7;
  var c = a * b + 1;
  loop i = 0 .. 4 {
    out[i] = c + i * 0;
  }
}
`
	k, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	// c folds to 43; i*0 folds away; the loop should be a single store
	// (of a constant) — no arithmetic ops at all.
	stats := k.LoopStats()
	if stats[ir.ClsAdd] > 1 {
		t.Errorf("loop has %d ALU ops, want <= 1 (folded): %s", stats[ir.ClsAdd], k.Dump())
	}
	s, err := core.Compile(k, machine.Central(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vliwsim.Run(s, vliwsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		if res.Mem[i] != 43 {
			t.Errorf("out[%d] = %d, want 43", i, res.Mem[i])
		}
	}
}

func TestScratchpadKernel(t *testing.T) {
	src := `
kernel sptest {
  stream x @ 0;
  stream out @ 64;
  loop i = 0 .. 8 {
    sp[i] = x[i] * 2;
    out[i] = sp[i] + 1;
  }
}
`
	k, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := map[int64]int64{}
	for i := int64(0); i < 8; i++ {
		mem[i] = i * i
	}
	s, err := core.Compile(k, machine.Central(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vliwsim.Run(s, vliwsim.Config{InitMem: mem})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		if got, want := res.Mem[64+i], i*i*2+1; got != want {
			t.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestBuiltinsLower(t *testing.T) {
	src := `
kernel blt {
  stream out @ 0;
  loop i = 0 .. 4 {
    out[i] = min(max(i, 2), 3) + abs(i - 2) + select(i & 1, 7) + mulhi(i, 1);
  }
}
`
	k, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Compile(k, machine.Central(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vliwsim.Run(s, vliwsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ref := func(i int64) int64 {
		mn := i
		if mn < 2 {
			mn = 2
		}
		if mn > 3 {
			mn = 3
		}
		ab := i - 2
		if ab < 0 {
			ab = -ab
		}
		sel := i & 1
		if sel == 0 {
			sel = 7
		}
		return mn + ab + sel
	}
	for i := int64(0); i < 4; i++ {
		if got, want := res.Mem[i], ref(i); got != want {
			t.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}
}
