package kasm

// File is a parsed kernel: preamble statements and one loop.
type File struct {
	Name     string
	Preamble []Stmt
	Loop     *LoopStmt
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// StreamDecl names a region of word-addressed memory: stream x @ 64;
// A trailing "float" types the stream's elements as floats:
// stream a @ 0 float;
type StreamDecl struct {
	Name    string
	Base    int64
	IsFloat bool
	Line    int
}

// DeclStmt declares and initializes a scalar: var acc = 0;
// Const declarations fold away entirely.
type DeclStmt struct {
	Name    string
	Init    Expr
	IsConst bool
	Line    int
}

// AssignStmt assigns to a declared scalar: acc = acc + x; acc += x;
type AssignStmt struct {
	Name  string
	Op    string // "=", "+=", "-=", "*="
	Value Expr
	Line  int
}

// StoreStmt writes memory or scratchpad: out[i] = v; sp[i] = v;
type StoreStmt struct {
	Target string // stream name, or "sp"
	Index  Expr
	Value  Expr
	Line   int
}

func (*StreamDecl) stmt() {}
func (*DeclStmt) stmt()   {}
func (*AssignStmt) stmt() {}
func (*StoreStmt) stmt()  {}

// LoopStmt is the kernel's single software-pipelined loop.
type LoopStmt struct {
	Var    string
	Lo     int64
	Hi     int64
	Step   int64
	Unroll int
	Body   []Stmt
	Line   int
}

// Trips returns the number of iterations the loop executes (before
// unrolling is applied).
func (l *LoopStmt) Trips() int64 {
	if l.Step <= 0 {
		return 0
	}
	n := (l.Hi - l.Lo + l.Step - 1) / l.Step
	if n < 0 {
		return 0
	}
	return n
}

// Expr is an expression node.
type Expr interface{ expr() }

// NumLit is an integer or floating-point literal.
type NumLit struct {
	IsFloat bool
	I       int64
	F       float64
	Line    int
}

// Ident references a scalar variable or the loop induction variable.
type Ident struct {
	Name string
	Line int
}

// IndexExpr loads from a stream or the scratchpad: x[i], sp[j].
type IndexExpr struct {
	Target string
	Index  Expr
	Line   int
}

// UnaryExpr is -x, ~x, or !x.
type UnaryExpr struct {
	Op   string
	X    Expr
	Line int
}

// BinExpr is a binary operation with C-like precedence.
type BinExpr struct {
	Op   string
	X    Expr
	Y    Expr
	Line int
}

// CallExpr invokes a builtin: min, max, abs, sqrt, select, perm,
// shuffle, mulhi, itof, ftoi, float, int.
type CallExpr struct {
	Fn   string
	Args []Expr
	Line int
}

// CondExpr is the branch-free ternary cond ? then : else, lowered to
// mask arithmetic (media kernels have no branches; clipping and
// saturation use selects).
type CondExpr struct {
	Cond Expr
	Then Expr
	Else Expr
	Line int
}

func (*NumLit) expr()    {}
func (*Ident) expr()     {}
func (*IndexExpr) expr() {}
func (*UnaryExpr) expr() {}
func (*BinExpr) expr()   {}
func (*CallExpr) expr()  {}
func (*CondExpr) expr()  {}
