package kasm

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/vliwsim"
)

// evalExpr compiles "out[0] = <expr>;" and returns the interpreted
// result, exercising the whole lexer/parser/lowering pipeline on one
// expression.
func evalExpr(t *testing.T, expr string, mem map[int64]int64) int64 {
	t.Helper()
	src := fmt.Sprintf(`
kernel e {
  stream m @ 100;
  stream out @ 0;
  loop i = 0 .. 1 {
    out[0] = %s;
  }
}`, expr)
	k, err := Compile(src)
	if err != nil {
		t.Fatalf("%s: %v", expr, err)
	}
	res, err := vliwsim.Interpret(k, mem, 0)
	if err != nil {
		t.Fatalf("%s: %v", expr, err)
	}
	return res[0]
}

func TestExpressionSemantics(t *testing.T) {
	mem := map[int64]int64{100: 10, 101: 3, 102: -4}
	cases := []struct {
		expr string
		want int64
	}{
		{"1 + 2 * 3", 7},           // precedence
		{"(1 + 2) * 3", 9},         // parens
		{"10 - 3 - 2", 5},          // left assoc
		{"1 << 4 | 2", 18},         // shift binds tighter than or
		{"7 & 3 ^ 1", 2},           // & tighter than ^
		{"5 < 6", 1},               // comparison
		{"6 <= 5", 0},              //
		{"-m[0]", -10},             // unary on load
		{"~0", -1},                 //
		{"!m[1]", 0},               //
		{"m[0] % 4", 2},            //
		{"m[0] / m[1]", 3},         //
		{"min(m[0], m[1])", 3},     //
		{"max(m[2], 0 - 2)", -2},   //
		{"abs(m[2])", 4},           //
		{"select(m[1] > 5, 9)", 9}, // cond 0 -> alternative
		{"select(m[1] < 5, 9)", 1}, // cond 1 -> itself
		{"mulhi(m[0], 1)", 0},      // high word of small product
		{"(m[0] * m[1]) >> 1", 15}, // fused mulq
		{"m[0] >= 10", 1},          //
		{"m[0] != 10", 0},          //
		{"m[0] == 10", 1},          //
		{"0x1f + 1", 32},           // hex literal
	}
	for _, c := range cases {
		if got := evalExpr(t, c.expr, mem); got != c.want {
			t.Errorf("%s = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestFloatConversionRoundTrip(t *testing.T) {
	src := `
kernel conv {
  stream out @ 0;
  loop i = 0 .. 4 {
    out[i] = int(float(i * 3) / 2.0 + 0.5);
  }
}`
	k, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vliwsim.Interpret(k, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		want := int64(float64(i*3)/2.0 + 0.5)
		if res[i] != want {
			t.Errorf("out[%d] = %d, want %d", i, res[i], want)
		}
	}
}

// TestUnrollWithCarriedVar checks that unrolling chains a loop-carried
// accumulator through the replicas correctly.
func TestUnrollWithCarriedVar(t *testing.T) {
	src := `
kernel usum {
  stream x @ 0;
  stream out @ 100;
  var acc = 0;
  loop i = 0 .. 8 unroll 2 {
    var v = x[i] * 2;
    acc += v;
    out[i] = acc;
  }
}`
	k, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if k.TripCount != 4 {
		t.Fatalf("trips = %d, want 4", k.TripCount)
	}
	mem := map[int64]int64{}
	for i := int64(0); i < 8; i++ {
		mem[i] = i + 1
	}
	// Check through the full scheduler + simulator too.
	s, err := core.Compile(k, machine.Distributed(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vliwsim.Run(s, vliwsim.Config{InitMem: mem})
	if err != nil {
		t.Fatal(err)
	}
	acc := int64(0)
	for i := int64(0); i < 8; i++ {
		acc += (i + 1) * 2
		if res.Mem[100+i] != acc {
			t.Errorf("out[%d] = %d, want %d", i, res.Mem[100+i], acc)
		}
	}
}

func TestLoopLessKernel(t *testing.T) {
	src := `
kernel straight {
  stream m @ 0;
  stream out @ 10;
  var a = m[0] + m[1];
  var b = a * a;
  out[0] = b - a;
}`
	k, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Loop) != 0 {
		t.Errorf("loop ops = %d, want 0", len(k.Loop))
	}
	res, err := vliwsim.Interpret(k, map[int64]int64{0: 4, 1: 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res[10] != 81-9 {
		t.Errorf("out = %d, want 72", res[10])
	}
}

func TestAddressSplitting(t *testing.T) {
	// Constant indices fold entirely into the address immediate; no
	// Add op may appear for them.
	src := `
kernel addr {
  stream x @ 50;
  stream out @ 200;
  loop i = 0 .. 2 {
    out[i + 3] = x[7] + x[i + 1 + 2];
  }
}`
	k, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range k.Loop {
		op := k.Ops[id]
		if op.Opcode == ir.Add && op.Name == "addr" {
			t.Errorf("address add emitted; splitIndex failed:\n%s", k.Dump())
		}
		if op.Opcode == ir.Load {
			off := op.Args[1]
			if off.Kind != ir.OperandConst {
				t.Errorf("load offset not an immediate")
			}
		}
	}
	res, err := vliwsim.Interpret(k, map[int64]int64{57: 9, 53: 2, 54: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// i=0: out[3] = x[7] + x[3] -> mem[203] = mem[57] + mem[53].
	if res[203] != 11 {
		t.Errorf("out[3] = %d, want 11", res[203])
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
// line comment
kernel c { /* block
comment */ stream out @ 0; # hash comment
  loop i = 0 .. 2 { out[i] = i; }
}`
	k, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "c" {
		t.Errorf("name = %q", k.Name)
	}
}

func TestInductionStep(t *testing.T) {
	src := `
kernel bystep {
  stream out @ 0;
  loop i = 4 .. 20 step 4 {
    out[i >> 2] = i;
  }
}`
	k, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if k.TripCount != 4 {
		t.Fatalf("trips = %d, want 4", k.TripCount)
	}
	res, err := vliwsim.Interpret(k, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := int64(1); j <= 4; j++ {
		if res[j] != 4*j {
			t.Errorf("out[%d] = %d, want %d", j, res[j], 4*j)
		}
	}
}

func TestSpfFloatScratchpad(t *testing.T) {
	src := `
kernel fsp {
  stream a @ 0 float;
  stream out @ 50 float;
  loop i = 0 .. 4 {
    spf[i] = a[i] * 2.0;
    out[i] = spf[i] + 1.0;
  }
}`
	k, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := map[int64]int64{}
	for i := int64(0); i < 4; i++ {
		mem[i] = int64(floatBits(float64(i) + 0.5))
	}
	res, err := vliwsim.Interpret(k, mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		want := (float64(i)+0.5)*2.0 + 1.0
		if got := floatFrom(res[50+i]); got != want {
			t.Errorf("out[%d] = %v, want %v", i, got, want)
		}
	}
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func floatFrom(b int64) float64  { return math.Float64frombits(uint64(b)) }

func TestTernarySemantics(t *testing.T) {
	mem := map[int64]int64{100: 10, 101: 3, 102: -4}
	cases := []struct {
		expr string
		want int64
	}{
		{"m[0] > 5 ? 111 : 222", 111},
		{"m[0] < 5 ? 111 : 222", 222},
		{"m[2] < 0 ? 0 - m[2] : m[2]", 4},        // abs via ternary
		{"m[1] ? m[0] : m[2]", 10},               // truthiness
		{"0 ? m[0] : m[2]", -4},                  // constant cond folds
		{"1 ? 7 : 9", 7},                         //
		{"m[0] > 5 ? (m[1] > 5 ? 1 : 2) : 3", 2}, // nesting
		{"m[0] > 15 ? 1 : m[1] > 1 ? 2 : 3", 2},  // right assoc
		{"(m[0] > 100 ? m[0] : 100) - 90", 10},   // clamp idiom
	}
	for _, c := range cases {
		if got := evalExpr(t, c.expr, mem); got != c.want {
			t.Errorf("%s = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestTernaryFloatSelection(t *testing.T) {
	src := `
kernel clampf {
  stream a @ 0 float;
  stream out @ 32 float;
  loop i = 0 .. 4 {
    var x = a[i];
    out[i] = x > 1.0 ? 1.0 : x;   # saturate to 1.0
  }
}`
	k, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := map[int64]int64{}
	in := []float64{0.25, 1.5, -0.5, 3.0}
	for i, f := range in {
		mem[int64(i)] = int64(floatBits(f))
	}
	s, err := core.Compile(k, machine.Distributed(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vliwsim.Run(s, vliwsim.Config{InitMem: mem})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range in {
		want := f
		if want > 1.0 {
			want = 1.0
		}
		if got := floatFrom(res.Mem[32+int64(i)]); got != want {
			t.Errorf("out[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestTernaryErrors(t *testing.T) {
	cases := []string{
		"kernel k { stream o @ 0 float; var c = 1.5; loop i = 0 .. 2 { o[i] = c ? 1.0 : 2.0; } }", // float cond
		"kernel k { stream o @ 0; loop i = 0 .. 2 { o[i] = i ? 1 : 2.0; } }",                      // mixed branches
		"kernel k { stream o @ 0; loop i = 0 .. 2 { o[i] = i ? 1; } }",                            // missing colon
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestConstantFoldingAllOperators(t *testing.T) {
	// Every foldable operator with constant operands must produce zero
	// loop arithmetic — the store writes an immediate-derived value.
	exprs := map[string]int64{
		"3 + 4":           7,
		"3 - 4":           -1,
		"3 * 4":           12,
		"12 / 4":          3,
		"14 % 4":          2,
		"12 & 10":         8,
		"12 | 10":         14,
		"12 ^ 10":         6,
		"3 << 2":          12,
		"12 >> 2":         3,
		"3 < 4":           1,
		"3 <= 3":          1,
		"3 > 4":           0,
		"4 >= 4":          1,
		"3 == 3":          1,
		"3 != 3":          0,
		"-(5)":            -5,
		"~0":              -1,
		"!7":              0,
		"!0":              1,
		"1.5 + 2.5 > 3.5": 1,
		"3.0 - 1.0 < 1.0": 0,
		"2.0 * 2.0 > 3.0": 1,
		"9.0 / 3.0 < 4.0": 1,
		"-(1.5) < 0.0":    1,
	}
	for expr, want := range exprs {
		src := fmt.Sprintf(`kernel f { stream o @ 0; loop i = 0 .. 2 { o[i] = %s; } }`, expr)
		k, err := Compile(src)
		if err != nil {
			t.Errorf("%s: %v", expr, err)
			continue
		}
		res, err := vliwsim.Interpret(k, nil, 0)
		if err != nil {
			t.Errorf("%s: %v", expr, err)
			continue
		}
		if res[0] != want {
			t.Errorf("%s = %d, want %d", expr, res[0], want)
		}
		// Folded: the loop should contain at most the induction add and
		// the store.
		if n := len(k.Loop); n > 2 {
			t.Errorf("%s: loop has %d ops, want <= 2 (constant folding): %s", expr, n, k.Dump())
		}
	}
}

func TestMustCompile(t *testing.T) {
	k := MustCompile(`kernel m { stream o @ 0; loop i = 0 .. 2 { o[i] = i; } }`)
	if k.Name != "m" {
		t.Errorf("name = %q", k.Name)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic on bad source")
		}
	}()
	MustCompile("kernel {")
}

func TestUnrollClonesAllExprKinds(t *testing.T) {
	// The unroller must clone every expression form correctly; run the
	// unrolled kernel and compare with the rolled version.
	body := `
  stream x @ 0;
  stream out @ 64;
  var acc = 0;
  loop i = 0 .. 4 %s {
    var v = min(x[i], 100) + (i > 1 ? -x[i] : x[i] * 2) - (~i & 3);
    acc += v;
    out[i] = acc;
  }
`
	rolled := MustCompile("kernel r {" + fmt.Sprintf(body, "") + "}")
	unrolled := MustCompile("kernel u {" + fmt.Sprintf(body, "unroll 2") + "}")
	mem := map[int64]int64{0: 9, 1: 200, 2: 7, 3: 50}
	a, err := vliwsim.Interpret(rolled, mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := vliwsim.Interpret(unrolled, mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(64); i < 68; i++ {
		if a[i] != b[i] {
			t.Errorf("out[%d]: rolled %d vs unrolled %d", i-64, a[i], b[i])
		}
	}
}
