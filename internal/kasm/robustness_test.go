package kasm

import (
	"math/rand"
	"strings"
	"testing"
)

// The language frontend must never panic: arbitrary and mutated inputs
// either compile or return an error.

// corpus seeds the mutation fuzzing with realistic sources.
var corpus = []string{
	firSrc,
	`kernel a { stream x @ 0; loop i = 0 .. 4 { x[i] = i * 3 + 1; } }`,
	`kernel b { stream o @ 0 float; var a = 1.5; loop i = 0 .. 2 unroll 2 { o[i] = a * 2.0; } }`,
	`kernel c { const n = 8; stream o @ 0; var s = 0; loop i = 0 .. 8 { s += i; o[i] = s; } }`,
	`kernel d { stream o @ 0; loop i = 0 .. 4 { sp[i] = i; o[i] = sp[i] + min(i, 2); } }`,
}

func TestCompileNeverPanicsOnMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bytesOf := "{}[]()+-*/%<>=!&|^~;,.@# \n\tabcdefgxyz0123456789\"'\\"
	n := 4000
	if testing.Short() {
		n = 500
	}
	for trial := 0; trial < n; trial++ {
		src := []byte(corpus[rng.Intn(len(corpus))])
		for edits := rng.Intn(8) + 1; edits > 0; edits-- {
			switch rng.Intn(3) {
			case 0: // substitute
				if len(src) > 0 {
					src[rng.Intn(len(src))] = bytesOf[rng.Intn(len(bytesOf))]
				}
			case 1: // delete a span
				if len(src) > 2 {
					i := rng.Intn(len(src) - 1)
					j := i + 1 + rng.Intn(minInt2(8, len(src)-i-1))
					src = append(src[:i], src[j:]...)
				}
			case 2: // insert
				i := rng.Intn(len(src) + 1)
				ins := bytesOf[rng.Intn(len(bytesOf))]
				src = append(src[:i], append([]byte{ins}, src[i:]...)...)
			}
		}
		// Must not panic; errors are fine and expected.
		_, _ = Compile(string(src))
	}
}

func minInt2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestCompileNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(200)
		b := make([]byte, n)
		rng.Read(b)
		_, _ = Compile(string(b))
	}
	// Pathological structured inputs.
	for _, src := range []string{
		strings.Repeat("(", 10000),
		"kernel k { loop i = 0 .. 4 { x = " + strings.Repeat("1+", 5000) + "1; } }",
		"kernel " + strings.Repeat("a", 100000) + " { }",
		"kernel k { var x = 0x; }",
		"kernel k { var x = 1e; }",
		"kernel k { var x = ..; }",
		"kernel k { loop i = 0 .. 9223372036854775807 { } }",
	} {
		_, _ = Compile(src)
	}
}

// TestUnrollFactorCapped pins the parser's unroll cap: a huge factor on
// a tiny body must be rejected up front instead of letting lowering
// replicate the body into gigabytes of IR (fuzz-derived OOM shape).
func TestUnrollFactorCapped(t *testing.T) {
	if _, err := Compile("kernel k { stream o @ 0; loop i = 0 .. 536870912 unroll 536870912 { o[i] = i + 1; } }"); err == nil {
		t.Fatal("over-cap unroll factor compiled")
	} else if !strings.Contains(err.Error(), "unroll factor") {
		t.Fatalf("wrong error for over-cap unroll: %v", err)
	}
	// The cap itself is accepted (trip count kept divisible).
	if _, err := Compile("kernel k { stream o @ 0; loop i = 0 .. 512 unroll 256 { o[i] = i + 1; } }"); err != nil {
		t.Fatalf("unroll at the cap rejected: %v", err)
	}
}

// TestDeepExpressionNoStackOverflow guards the recursive-descent parser
// against pathological nesting (bounded by input length, but the parse
// must return, not crash, for plausible depths).
func TestDeepExpressionNoStackOverflow(t *testing.T) {
	depth := 2000
	expr := strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
	src := "kernel k { stream o @ 0; loop i = 0 .. 2 { o[i] = " + expr + "; } }"
	if _, err := Compile(src); err != nil {
		t.Fatalf("deep parens: %v", err)
	}
}
