// Package kasm compiles a small C-like kernel language to the
// scheduler's IR. The paper's evaluation kernels "were written in a
// limited subset of C. Each kernel consists of a short preamble
// followed by a single software-pipelined loop" (§5); kasm mirrors that
// shape: declarations and simple statements form the preamble, one
// loop statement forms the loop body, and assignments to preamble
// variables inside the loop become loop-carried dependences.
//
// Example:
//
//	kernel fir {
//	  stream x @ 0;
//	  stream out @ 1024;
//	  var acc = 0;
//	  loop i = 0 .. 56 {
//	    acc = acc + x[i] * (i + 1);
//	    out[i] = acc;
//	  }
//	}
//
// The language has int and float scalars (floats are IEEE-754 doubles
// carried in 64-bit registers), streams (named regions of word-
// addressed memory), scratchpad access sp[...], a small builtin set
// (min, max, abs, sqrt, select, perm, shuffle, mulhi, itof, ftoi), and
// loop unrolling (loop ... unroll N { ... }) used by the FFT-U4 and
// Block Warp-U2 kernels.
package kasm

import "fmt"

// TokKind enumerates token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokPunct   // single/multi-char operators and delimiters
	TokKeyword // kernel, var, stream, loop, unroll, step, const
)

// Token is one lexeme with position information for error reporting.
type Token struct {
	Kind TokKind
	Text string
	Int  int64
	Flt  float64
	Line int
	Col  int
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokInt:
		return fmt.Sprintf("%d", t.Int)
	case TokFloat:
		return fmt.Sprintf("%g", t.Flt)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"kernel": true,
	"var":    true,
	"stream": true,
	"loop":   true,
	"unroll": true,
	"step":   true,
	"const":  true,
	"trip":   true,
}

// punctuators ordered longest-first for maximal-munch scanning.
var punctuators = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "+=", "-=", "*=", "..",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ";", ",", "@", "!", "?", ":",
}
