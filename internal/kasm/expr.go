package kasm

import "repro/internal/ir"

// This file lowers expressions. Values flow as `val`s: compile-time
// constants fold away; SSA values become operands; reads of the
// induction variable and of loop-carried variables become phi operands
// (an operand with one preamble source and one loop-carried source),
// matching the paper's treatment of control-flow merges: "If an
// operation could use one of several results as an operand due to
// different control flows then a separate communication exists for
// each such result" (§3).

// backEdgeBase encodes unresolved loop back edges in placeholder value
// ids; emit() records a patch for every source below it.
const backEdgeBase = -1000

// fullVal is a val that may also be a prebuilt operand.
type fullVal struct {
	val
	isOpnd bool
	opnd   ir.Operand
}

func (lw *lowerer) operandOf(v fullVal) ir.Operand {
	if v.isOpnd {
		return v.opnd
	}
	return lw.operand(v.val)
}

// emit wraps the builder, recording back-edge patches for placeholder
// sources.
func (lw *lowerer) emit(opc ir.Opcode, name string, tag int, args ...ir.Operand) ir.ValueID {
	var id ir.ValueID
	if tag != 0 {
		id = lw.b.EmitMem(opc, name, tag, args...)
	} else {
		id = lw.b.Emit(opc, name, args...)
	}
	op := lw.b.LastOpID()
	for slot, arg := range args {
		if arg.Kind != ir.OperandValue {
			continue
		}
		for si, src := range arg.Srcs {
			if src.Value <= ir.ValueID(backEdgeBase) {
				idx := int(ir.ValueID(backEdgeBase) - src.Value)
				lw.patches = append(lw.patches, patch{op: op, slot: slot, srcIndex: si, name: lw.backRefs[idx]})
			}
		}
	}
	return id
}

// expr lowers an expression to a val (possibly constant). Phi reads
// are forced through this wrapper so constants fold wherever possible.
func (lw *lowerer) expr(e Expr) (val, error) {
	fv, err := lw.exprFull(e)
	if err != nil {
		return val{}, err
	}
	if !fv.isOpnd {
		return fv.val, nil
	}
	// A bare phi operand used as a statement value (x = acc;) needs no
	// new operation — but our val representation requires a ValueID or
	// constant, so route it through a copy-free identity: reuse the
	// operand by emitting the consuming op directly where possible.
	// Here we must materialize: an Add with 0 keeps semantics.
	id := lw.emit(ir.Add, "phi", 0, fv.opnd, ir.ConstOperand(0))
	return val{v: id, t: fv.t}, nil
}

// exprFull lowers an expression, allowing a prebuilt-operand result so
// consuming operations embed phi reads directly.
func (lw *lowerer) exprFull(e Expr) (fullVal, error) {
	switch e := e.(type) {
	case *NumLit:
		if e.IsFloat {
			return fullVal{val: cFloat(e.F)}, nil
		}
		return fullVal{val: cInt(e.I)}, nil

	case *Ident:
		return lw.identRead(e)

	case *IndexExpr:
		return lw.indexRead(e)

	case *UnaryExpr:
		return lw.unary(e)

	case *BinExpr:
		return lw.binary(e)

	case *CallExpr:
		return lw.call(e)

	case *CondExpr:
		return lw.cond(e)
	}
	return fullVal{}, lw.errf(0, "unsupported expression")
}

// cond lowers the branch-free ternary: with mask = -(cond != 0), the
// result is else ^ ((then ^ else) & mask) — bitwise selection, which is
// exact for both integer and (bit-carried) float values.
func (lw *lowerer) cond(e *CondExpr) (fullVal, error) {
	c, err := lw.exprFull(e.Cond)
	if err != nil {
		return fullVal{}, err
	}
	if c.t != tInt {
		return fullVal{}, lw.errf(e.Line, "ternary condition must be int")
	}
	// Constant condition: lower only the taken branch.
	if !c.isOpnd && c.val.isConst {
		if c.val.bits != 0 {
			return lw.exprFull(e.Then)
		}
		return lw.exprFull(e.Else)
	}
	th, err := lw.exprFull(e.Then)
	if err != nil {
		return fullVal{}, err
	}
	el, err := lw.exprFull(e.Else)
	if err != nil {
		return fullVal{}, err
	}
	if th.t != el.t {
		return fullVal{}, lw.errf(e.Line, "ternary branches have different types (%v vs %v)", th.t, el.t)
	}
	nz := lw.emit(ir.CmpNE, "t?", 0, lw.operandOf(c), ir.ConstOperand(0))
	mask := lw.emit(ir.Neg, "t?m", 0, ir.ValueOperand(nz))
	diff := lw.emit(ir.Xor, "t?d", 0, lw.operandOf(th), lw.operandOf(el))
	sel := lw.emit(ir.And, "t?s", 0, ir.ValueOperand(diff), ir.ValueOperand(mask))
	out := lw.emit(ir.Xor, "t?r", 0, lw.operandOf(el), ir.ValueOperand(sel))
	return fullVal{val: val{v: out, t: th.t}}, nil
}

func (lw *lowerer) identRead(e *Ident) (fullVal, error) {
	if lw.inLoop && e.Name == lw.ivName {
		return fullVal{isOpnd: true, opnd: lw.iv, val: val{t: tInt}}, nil
	}
	if c, ok := lw.consts[e.Name]; ok {
		return fullVal{val: c}, nil
	}
	st := lw.vars[e.Name]
	if st == nil {
		return fullVal{}, lw.errf(e.Line, "unknown variable %s", e.Name)
	}
	if lw.inLoop && st.loopAssigned && !st.assignedYet {
		// Read of the previous iteration's value (or the preamble's on
		// the first iteration): a phi with an unresolved back edge.
		idx := len(lw.backRefs)
		lw.backRefs = append(lw.backRefs, e.Name)
		ph := ir.PhiOperand(st.preDef.v, ir.ValueID(backEdgeBase-idx), 1)
		return fullVal{isOpnd: true, opnd: ph, val: val{t: st.t}}, nil
	}
	if lw.inLoop && !st.loopAssigned && !st.declaredInLoop {
		return fullVal{val: st.preDef}, nil
	}
	return fullVal{val: st.cur}, nil
}

func (lw *lowerer) indexRead(e *IndexExpr) (fullVal, error) {
	if e.Target == "sp" || e.Target == "spf" {
		idx, err := lw.exprFull(e.Index)
		if err != nil {
			return fullVal{}, err
		}
		if idx.t != tInt {
			return fullVal{}, lw.errf(e.Line, "index must be int")
		}
		t := tInt
		if e.Target == "spf" {
			t = tFloat
		}
		id := lw.emit(ir.SPRead, "sp", lw.spTag, lw.operandOf(idx))
		return fullVal{val: val{v: id, t: t}}, nil
	}
	info := lw.streams[e.Target]
	if info == nil {
		return fullVal{}, lw.errf(e.Line, "unknown stream %s", e.Target)
	}
	t := tInt
	if info.isFloat {
		t = tFloat
	}
	base, off, err := lw.address(info, e.Index)
	if err != nil {
		return fullVal{}, err
	}
	id := lw.emit(ir.Load, e.Target, info.tag, base, off)
	return fullVal{val: val{v: id, t: t}}, nil
}

func (lw *lowerer) unary(e *UnaryExpr) (fullVal, error) {
	x, err := lw.exprFull(e.X)
	if err != nil {
		return fullVal{}, err
	}
	if !x.isOpnd && x.val.isConst {
		switch {
		case e.Op == "-" && x.val.t == tInt:
			return fullVal{val: cInt(-x.val.bits)}, nil
		case e.Op == "-" && x.val.t == tFloat:
			return fullVal{val: cFloat(-x.val.asFloat())}, nil
		case e.Op == "~" && x.val.t == tInt:
			return fullVal{val: cInt(^x.val.bits)}, nil
		case e.Op == "!" && x.val.t == tInt:
			if x.val.bits == 0 {
				return fullVal{val: cInt(1)}, nil
			}
			return fullVal{val: cInt(0)}, nil
		}
	}
	switch e.Op {
	case "-":
		if x.t == tFloat {
			return lw.emit1(ir.FNeg, "neg", x, tFloat), nil
		}
		return lw.emit1(ir.Neg, "neg", x, tInt), nil
	case "~":
		if x.t != tInt {
			return fullVal{}, lw.errf(e.Line, "~ needs an int operand")
		}
		return lw.emit1(ir.Not, "not", x, tInt), nil
	case "!":
		if x.t != tInt {
			return fullVal{}, lw.errf(e.Line, "! needs an int operand")
		}
		id := lw.emit(ir.CmpEQ, "not", 0, lw.operandOf(x), ir.ConstOperand(0))
		return fullVal{val: val{v: id, t: tInt}}, nil
	}
	return fullVal{}, lw.errf(e.Line, "unsupported unary operator %q", e.Op)
}

func (lw *lowerer) emit1(opc ir.Opcode, name string, x fullVal, t typ) fullVal {
	id := lw.emit(opc, name, 0, lw.operandOf(x))
	return fullVal{val: val{v: id, t: t}}
}

func (lw *lowerer) binary(e *BinExpr) (fullVal, error) {
	// Fractional-multiply fusion: (a * b) >> n becomes a single MulQ on
	// the multiplier, the fixed-point idiom of DSP instruction sets.
	if e.Op == ">>" {
		if m, okm := e.X.(*BinExpr); okm && m.Op == "*" {
			if n, okn := e.Y.(*NumLit); okn && !n.IsFloat {
				a, err := lw.exprFull(m.X)
				if err != nil {
					return fullVal{}, err
				}
				bv, err := lw.exprFull(m.Y)
				if err != nil {
					return fullVal{}, err
				}
				if a.t == tInt && bv.t == tInt &&
					!(!a.isOpnd && a.val.isConst && !bv.isOpnd && bv.val.isConst) {
					id := lw.emit(ir.MulQ, "mulq", 0,
						lw.operandOf(a), lw.operandOf(bv), ir.ConstOperand(n.I))
					return fullVal{val: val{v: id, t: tInt}}, nil
				}
			}
		}
	}
	x, err := lw.exprFull(e.X)
	if err != nil {
		return fullVal{}, err
	}
	y, err := lw.exprFull(e.Y)
	if err != nil {
		return fullVal{}, err
	}
	tx, ty := x.t, y.t
	if tx != ty {
		return fullVal{}, lw.errf(e.Line, "operands of %q have different types (%v vs %v)", e.Op, tx, ty)
	}
	// Constant folding.
	if !x.isOpnd && !y.isOpnd && x.val.isConst && y.val.isConst {
		if v, ok := foldConst(e.Op, x.val, y.val); ok {
			return fullVal{val: v}, nil
		}
	}
	// Algebraic identities that remove whole operations.
	if tx == tInt && !y.isOpnd && y.val.isConst {
		switch {
		case y.val.bits == 0 && (e.Op == "+" || e.Op == "-" || e.Op == "|" || e.Op == "^" || e.Op == "<<" || e.Op == ">>"):
			return x, nil
		case y.val.bits == 1 && e.Op == "*":
			return x, nil
		case y.val.bits == 0 && (e.Op == "*" || e.Op == "&"):
			return fullVal{val: cInt(0)}, nil
		}
	}
	if tx == tInt && !x.isOpnd && x.val.isConst {
		switch {
		case x.val.bits == 0 && e.Op == "+":
			return y, nil
		case x.val.bits == 1 && e.Op == "*":
			return y, nil
		case x.val.bits == 0 && (e.Op == "*" || e.Op == "&"):
			return fullVal{val: cInt(0)}, nil
		}
	}

	if tx == tFloat {
		var opc ir.Opcode
		swap := false
		switch e.Op {
		case "+":
			opc = ir.FAdd
		case "-":
			opc = ir.FSub
		case "*":
			opc = ir.FMul
		case "/":
			opc = ir.FDiv
		case "<":
			opc = ir.FCmpLT
		case ">":
			opc, swap = ir.FCmpLT, true
		default:
			return fullVal{}, lw.errf(e.Line, "operator %q not defined for float", e.Op)
		}
		a, bb := lw.operandOf(x), lw.operandOf(y)
		if swap {
			a, bb = bb, a
		}
		t := tFloat
		if opc == ir.FCmpLT {
			t = tInt
		}
		id := lw.emit(opc, opName(e.Op), 0, a, bb)
		return fullVal{val: val{v: id, t: t}}, nil
	}

	var opc ir.Opcode
	swap := false
	t := tInt
	switch e.Op {
	case "+":
		opc = ir.Add
	case "-":
		opc = ir.Sub
	case "*":
		opc = ir.Mul
	case "/":
		opc = ir.Div
	case "%":
		opc = ir.Rem
	case "&":
		opc = ir.And
	case "|":
		opc = ir.Or
	case "^":
		opc = ir.Xor
	case "<<":
		opc = ir.Shl
	case ">>":
		opc = ir.Asr
	case "<":
		opc = ir.CmpLT
	case "<=":
		opc = ir.CmpLE
	case ">":
		opc, swap = ir.CmpLT, true
	case ">=":
		opc, swap = ir.CmpLE, true
	case "==":
		opc = ir.CmpEQ
	case "!=":
		opc = ir.CmpNE
	default:
		return fullVal{}, lw.errf(e.Line, "unsupported operator %q", e.Op)
	}
	a, bb := lw.operandOf(x), lw.operandOf(y)
	if swap {
		a, bb = bb, a
	}
	id := lw.emit(opc, opName(e.Op), 0, a, bb)
	return fullVal{val: val{v: id, t: t}}, nil
}

func opName(op string) string { return "t" + op }

func foldConst(op string, x, y val) (val, bool) {
	if x.t == tFloat {
		a, b := x.asFloat(), y.asFloat()
		switch op {
		case "+":
			return cFloat(a + b), true
		case "-":
			return cFloat(a - b), true
		case "*":
			return cFloat(a * b), true
		case "/":
			return cFloat(a / b), true
		case "<":
			return cInt(b2i(a < b)), true
		case ">":
			return cInt(b2i(a > b)), true
		}
		return val{}, false
	}
	a, b := x.bits, y.bits
	switch op {
	case "+":
		return cInt(a + b), true
	case "-":
		return cInt(a - b), true
	case "*":
		return cInt(a * b), true
	case "/":
		if b == 0 {
			return val{}, false
		}
		return cInt(a / b), true
	case "%":
		if b == 0 {
			return val{}, false
		}
		return cInt(a % b), true
	case "&":
		return cInt(a & b), true
	case "|":
		return cInt(a | b), true
	case "^":
		return cInt(a ^ b), true
	case "<<":
		return cInt(a << uint(b&63)), true
	case ">>":
		return cInt(a >> uint(b&63)), true
	case "<":
		return cInt(b2i(a < b)), true
	case "<=":
		return cInt(b2i(a <= b)), true
	case ">":
		return cInt(b2i(a > b)), true
	case ">=":
		return cInt(b2i(a >= b)), true
	case "==":
		return cInt(b2i(a == b)), true
	case "!=":
		return cInt(b2i(a != b)), true
	}
	return val{}, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (lw *lowerer) call(e *CallExpr) (fullVal, error) {
	want := map[string]int{
		"min": 2, "max": 2, "abs": 1, "sqrt": 1, "select": 2,
		"perm": 2, "shuffle": 2, "mulhi": 2, "itof": 1, "ftoi": 1,
		"float": 1, "int": 1,
	}
	n, ok := want[e.Fn]
	if !ok {
		return fullVal{}, lw.errf(e.Line, "unknown builtin %q", e.Fn)
	}
	if len(e.Args) != n {
		return fullVal{}, lw.errf(e.Line, "%s takes %d argument(s)", e.Fn, n)
	}
	args := make([]fullVal, len(e.Args))
	for i, a := range e.Args {
		v, err := lw.exprFull(a)
		if err != nil {
			return fullVal{}, err
		}
		args[i] = v
	}
	t0 := args[0].t
	sameTypes := func() error {
		for _, a := range args {
			if a.t != t0 {
				return lw.errf(e.Line, "%s arguments have mixed types", e.Fn)
			}
		}
		return nil
	}
	emit2 := func(opc ir.Opcode, t typ) (fullVal, error) {
		id := lw.emit(opc, e.Fn, 0, lw.operandOf(args[0]), lw.operandOf(args[1]))
		return fullVal{val: val{v: id, t: t}}, nil
	}
	switch e.Fn {
	case "min":
		if err := sameTypes(); err != nil {
			return fullVal{}, err
		}
		if t0 == tFloat {
			return emit2(ir.FMin, tFloat)
		}
		return emit2(ir.Min, tInt)
	case "max":
		if err := sameTypes(); err != nil {
			return fullVal{}, err
		}
		if t0 == tFloat {
			return emit2(ir.FMax, tFloat)
		}
		return emit2(ir.Max, tInt)
	case "abs":
		if t0 == tFloat {
			return lw.emit1(ir.FAbs, e.Fn, args[0], tFloat), nil
		}
		return lw.emit1(ir.Abs, e.Fn, args[0], tInt), nil
	case "sqrt":
		if t0 != tFloat {
			return fullVal{}, lw.errf(e.Line, "sqrt needs a float argument")
		}
		return lw.emit1(ir.FSqrt, e.Fn, args[0], tFloat), nil
	case "select":
		if err := sameTypes(); err != nil {
			return fullVal{}, err
		}
		if t0 != tInt {
			return fullVal{}, lw.errf(e.Line, "select needs int arguments")
		}
		return emit2(ir.Select, tInt)
	case "perm":
		if t0 != tInt || args[1].t != tInt {
			return fullVal{}, lw.errf(e.Line, "perm needs int arguments")
		}
		return emit2(ir.Perm, tInt)
	case "shuffle":
		if t0 != tInt || args[1].t != tInt {
			return fullVal{}, lw.errf(e.Line, "shuffle needs int arguments")
		}
		return emit2(ir.Shuffle, tInt)
	case "mulhi":
		if t0 != tInt || args[1].t != tInt {
			return fullVal{}, lw.errf(e.Line, "mulhi needs int arguments")
		}
		return emit2(ir.MulHi, tInt)
	case "itof", "float":
		if t0 != tInt {
			return fullVal{}, lw.errf(e.Line, "%s needs an int argument", e.Fn)
		}
		return lw.emit1(ir.ItoF, e.Fn, args[0], tFloat), nil
	case "ftoi", "int":
		if t0 != tFloat {
			return fullVal{}, lw.errf(e.Line, "%s needs a float argument", e.Fn)
		}
		return lw.emit1(ir.FtoI, e.Fn, args[0], tInt), nil
	}
	return fullVal{}, lw.errf(e.Line, "unknown builtin %q", e.Fn)
}
