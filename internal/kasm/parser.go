package kasm

import "fmt"

// Parser is a recursive-descent parser for the kernel language.
type Parser struct {
	toks []Token
	pos  int
}

// maxUnroll caps the loop unroll factor the parser accepts. The
// paper's kernels unroll by at most a few; 256 leaves generous
// headroom while keeping lowered IR size proportional to source size.
const maxUnroll = 256

// Parse parses one kernel file.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseFile()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("kasm:%d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *Parser) expectPunct(s string) error {
	if p.cur().Kind == TokPunct && p.cur().Text == s {
		p.next()
		return nil
	}
	return p.errf("expected %q, found %s", s, p.cur())
}

func (p *Parser) expectKeyword(s string) error {
	if p.cur().Kind == TokKeyword && p.cur().Text == s {
		p.next()
		return nil
	}
	return p.errf("expected %q, found %s", s, p.cur())
}

func (p *Parser) isPunct(s string) bool {
	return p.cur().Kind == TokPunct && p.cur().Text == s
}

func (p *Parser) isKeyword(s string) bool {
	return p.cur().Kind == TokKeyword && p.cur().Text == s
}

func (p *Parser) parseFile() (*File, error) {
	if err := p.expectKeyword("kernel"); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokIdent {
		return nil, p.errf("expected kernel name, found %s", p.cur())
	}
	f := &File{Name: p.next().Text}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.isPunct("}") {
		if p.cur().Kind == TokEOF {
			return nil, p.errf("unexpected end of input in kernel body")
		}
		if p.isKeyword("loop") {
			if f.Loop != nil {
				return nil, p.errf("kernels have exactly one loop")
			}
			loop, err := p.parseLoop()
			if err != nil {
				return nil, err
			}
			f.Loop = loop
			continue
		}
		if f.Loop != nil {
			return nil, p.errf("statements after the loop are not allowed (preamble + single loop)")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		f.Preamble = append(f.Preamble, s)
	}
	p.next() // }
	if p.cur().Kind != TokEOF {
		return nil, p.errf("trailing input after kernel")
	}
	// A kernel without a loop is a pure preamble (straight-line code),
	// like the paper's motivating example.
	return f, nil
}

func (p *Parser) parseLoop() (*LoopStmt, error) {
	line := p.cur().Line
	p.next() // loop
	if p.cur().Kind != TokIdent {
		return nil, p.errf("expected induction variable name")
	}
	l := &LoopStmt{Var: p.next().Text, Step: 1, Unroll: 1, Line: line}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	lo, err := p.parseIntConst()
	if err != nil {
		return nil, err
	}
	l.Lo = lo
	if err := p.expectPunct(".."); err != nil {
		return nil, err
	}
	hi, err := p.parseIntConst()
	if err != nil {
		return nil, err
	}
	l.Hi = hi
	if p.isKeyword("step") {
		p.next()
		s, err := p.parseIntConst()
		if err != nil {
			return nil, err
		}
		if s <= 0 {
			return nil, p.errf("step must be positive")
		}
		l.Step = s
	}
	if p.isKeyword("unroll") {
		p.next()
		u, err := p.parseIntConst()
		if err != nil {
			return nil, err
		}
		if u < 1 {
			return nil, p.errf("unroll factor must be >= 1")
		}
		// Lowering replicates the loop body once per unroll, so an
		// unbounded factor lets a few bytes of input demand gigabytes of
		// IR; cap it well above any schedulable kernel.
		if u > maxUnroll {
			return nil, p.errf("unroll factor %d exceeds the maximum %d", u, maxUnroll)
		}
		l.Unroll = int(u)
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.isPunct("}") {
		if p.cur().Kind == TokEOF {
			return nil, p.errf("unexpected end of input in loop body")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		switch s.(type) {
		case *StreamDecl:
			return nil, p.errf("stream declarations belong in the preamble")
		}
		l.Body = append(l.Body, s)
	}
	p.next() // }
	if l.Trips()%int64(l.Unroll) != 0 {
		return nil, fmt.Errorf("kasm: loop trip count %d not divisible by unroll %d", l.Trips(), l.Unroll)
	}
	return l, nil
}

func (p *Parser) parseIntConst() (int64, error) {
	neg := false
	if p.isPunct("-") {
		neg = true
		p.next()
	}
	if p.cur().Kind != TokInt {
		return 0, p.errf("expected integer constant, found %s", p.cur())
	}
	v := p.next().Int
	if neg {
		v = -v
	}
	return v, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	line := p.cur().Line
	switch {
	case p.isKeyword("stream"):
		p.next()
		if p.cur().Kind != TokIdent {
			return nil, p.errf("expected stream name")
		}
		name := p.next().Text
		if err := p.expectPunct("@"); err != nil {
			return nil, err
		}
		base, err := p.parseIntConst()
		if err != nil {
			return nil, err
		}
		isFloat := false
		if p.cur().Kind == TokIdent && p.cur().Text == "float" {
			isFloat = true
			p.next()
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &StreamDecl{Name: name, Base: base, IsFloat: isFloat, Line: line}, nil

	case p.isKeyword("var"), p.isKeyword("const"):
		isConst := p.cur().Text == "const"
		p.next()
		if p.cur().Kind != TokIdent {
			return nil, p.errf("expected variable name")
		}
		name := p.next().Text
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &DeclStmt{Name: name, Init: init, IsConst: isConst, Line: line}, nil

	case p.cur().Kind == TokIdent:
		name := p.next().Text
		if p.isPunct("[") {
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			return &StoreStmt{Target: name, Index: idx, Value: val, Line: line}, nil
		}
		op := ""
		for _, cand := range []string{"=", "+=", "-=", "*="} {
			if p.isPunct(cand) {
				op = cand
				break
			}
		}
		if op == "" {
			return nil, p.errf("expected assignment operator after %q", name)
		}
		p.next()
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &AssignStmt{Name: name, Op: op, Value: val, Line: line}, nil
	}
	return nil, p.errf("expected statement, found %s", p.cur())
}

// Binary operator precedence, C-like (higher binds tighter).
var precedence = map[string]int{
	"|":  1,
	"^":  2,
	"&":  3,
	"==": 4, "!=": 4,
	"<": 5, "<=": 5, ">": 5, ">=": 5,
	"<<": 6, ">>": 6,
	"+": 7, "-": 7,
	"*": 8, "/": 8, "%": 8,
}

func (p *Parser) parseExpr() (Expr, error) {
	// Ternary binds loosest and associates to the right.
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.isPunct("?") {
		return cond, nil
	}
	line := p.cur().Line
	p.next()
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	els, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: cond, Then: then, Else: els, Line: line}, nil
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		if p.cur().Kind != TokPunct {
			return lhs, nil
		}
		op := p.cur().Text
		prec, ok := precedence[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		line := p.cur().Line
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: op, X: lhs, Y: rhs, Line: line}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	line := p.cur().Line
	for _, op := range []string{"-", "~", "!"} {
		if p.isPunct(op) {
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: op, X: x, Line: line}, nil
		}
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokInt:
		p.next()
		return &NumLit{I: t.Int, Line: t.Line}, nil
	case t.Kind == TokFloat:
		p.next()
		return &NumLit{IsFloat: true, F: t.Flt, Line: t.Line}, nil
	case p.isPunct("("):
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		p.next()
		name := t.Text
		if p.isPunct("(") {
			p.next()
			var args []Expr
			for !p.isPunct(")") {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.isPunct(",") {
					p.next()
				} else if !p.isPunct(")") {
					return nil, p.errf("expected ',' or ')' in call")
				}
			}
			p.next()
			return &CallExpr{Fn: name, Args: args, Line: t.Line}, nil
		}
		if p.isPunct("[") {
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return &IndexExpr{Target: name, Index: idx, Line: t.Line}, nil
		}
		return &Ident{Name: name, Line: t.Line}, nil
	}
	return nil, p.errf("expected expression, found %s", t)
}
