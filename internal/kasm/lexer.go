package kasm

import (
	"fmt"
	"strconv"
	"strings"
)

// Lexer scans kernel-language source into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex returns the full token stream, ending with a TokEOF token.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '#':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.advance()
			lx.advance()
			for {
				if lx.pos+1 >= len(lx.src) {
					return fmt.Errorf("kasm:%d:%d: unterminated block comment", lx.line, lx.col)
				}
				if lx.peekByte() == '*' && lx.src[lx.pos+1] == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	c := lx.peekByte()

	if isIdentStart(c) {
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
	}

	if isDigit(c) || (c == '.' && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1])) {
		return lx.lexNumber(line, col)
	}

	rest := lx.src[lx.pos:]
	for _, p := range punctuators {
		if strings.HasPrefix(rest, p) {
			// ".." must not eat the dot of a float like "0..5" — the
			// number lexer already claimed leading digits, so this is
			// safe.
			for range p {
				lx.advance()
			}
			return Token{Kind: TokPunct, Text: p, Line: line, Col: col}, nil
		}
	}
	return Token{}, fmt.Errorf("kasm:%d:%d: unexpected character %q", line, col, string(c))
}

func (lx *Lexer) lexNumber(line, col int) (Token, error) {
	start := lx.pos
	isFloat := false
	seenDigits := false
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case isDigit(c):
			seenDigits = true
			lx.advance()
		case c == 'x' || c == 'X':
			if lx.pos == start+1 && lx.src[start] == '0' {
				lx.advance()
				for lx.pos < len(lx.src) && isHexDigit(lx.peekByte()) {
					lx.advance()
				}
				text := lx.src[start:lx.pos]
				v, err := strconv.ParseInt(text, 0, 64)
				if err != nil {
					return Token{}, fmt.Errorf("kasm:%d:%d: bad hex literal %q", line, col, text)
				}
				return Token{Kind: TokInt, Text: text, Int: v, Line: line, Col: col}, nil
			}
			goto done
		case c == '.':
			// Range operator ".." ends the number.
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '.' {
				goto done
			}
			if isFloat {
				goto done
			}
			isFloat = true
			lx.advance()
		case c == 'e' || c == 'E':
			if !isFloat && !seenDigits {
				goto done
			}
			isFloat = true
			lx.advance()
			if lx.pos < len(lx.src) && (lx.peekByte() == '+' || lx.peekByte() == '-') {
				lx.advance()
			}
		case c == 'f':
			isFloat = true
			lx.advance()
			goto done
		default:
			goto done
		}
	}
done:
	text := lx.src[start:lx.pos]
	clean := strings.TrimSuffix(text, "f")
	if isFloat {
		v, err := strconv.ParseFloat(clean, 64)
		if err != nil {
			return Token{}, fmt.Errorf("kasm:%d:%d: bad float literal %q", line, col, text)
		}
		return Token{Kind: TokFloat, Text: text, Flt: v, Line: line, Col: col}, nil
	}
	v, err := strconv.ParseInt(clean, 10, 64)
	if err != nil {
		return Token{}, fmt.Errorf("kasm:%d:%d: bad int literal %q", line, col, text)
	}
	return Token{Kind: TokInt, Text: text, Int: v, Line: line, Col: col}, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }
func isDigit(c byte) bool     { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
