package kernels

import (
	"fmt"
	"strings"
)

// DCT: "Discrete Cosine Transform: Transforms an 8x8 matrix of 16-bit
// fixed-point numbers" (Table 1). One loop iteration performs an
// 8-point one-dimensional DCT on one row using the even/odd butterfly
// decomposition in Q8 fixed point; the surrounding application applies
// it to rows then columns for the 2-D transform.

// dctBlocks is the number of 8×8 matrices the simulation transforms
// (the loop runs over 8·dctBlocks rows).
const dctBlocks = 4

// DCTIn and DCTOut are the DCT kernel's stream base addresses,
// exported so applications (the 2-D DCT example) can stage data.
const (
	DCTIn  = 0
	DCTOut = 4096
)

// Internal aliases keep the original names used throughout this file.
const (
	dctIn  = DCTIn
	dctOut = DCTOut
)

// DCTRow applies the kernel's 8-point one-dimensional fixed-point DCT —
// exactly the arithmetic the scheduled kernel performs — so
// applications can compose and validate multi-pass transforms.
func DCTRow(x [8]int64) [8]int64 { return dctRowRef(x) }

// Q8 cosine coefficients: round(256·cos(k·π/16)).
var dctC = [8]int64{256, 251, 237, 213, 181, 142, 98, 50}

// dctOddCoef[u][j] is the coefficient of d[j] in output X[2u+1].
var dctOddCoef = [4][4]int64{
	{dctC[1], dctC[3], dctC[5], dctC[7]},
	{dctC[3], -dctC[7], -dctC[1], -dctC[5]},
	{dctC[5], -dctC[1], dctC[7], dctC[3]},
	{dctC[7], -dctC[5], dctC[3], -dctC[1]},
}

func dctSource() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel dct {\n")
	fmt.Fprintf(&b, "  stream in @ %d;\n", dctIn)
	fmt.Fprintf(&b, "  stream out @ %d;\n", dctOut)
	fmt.Fprintf(&b, "  loop i = 0 .. %d {\n", 8*dctBlocks)
	fmt.Fprintf(&b, "    var r = i << 3;\n")
	for j := 0; j < 8; j++ {
		fmt.Fprintf(&b, "    var x%d = in[r + %d];\n", j, j)
	}
	// Even/odd split.
	for j := 0; j < 4; j++ {
		fmt.Fprintf(&b, "    var s%d = x%d + x%d;\n", j, j, 7-j)
		fmt.Fprintf(&b, "    var d%d = x%d - x%d;\n", j, j, 7-j)
	}
	// Even part: 4-point DCT on s0..s3.
	fmt.Fprintf(&b, "    var e0 = s0 + s3;\n")
	fmt.Fprintf(&b, "    var e1 = s1 + s2;\n")
	fmt.Fprintf(&b, "    var o0 = s0 - s3;\n")
	fmt.Fprintf(&b, "    var o1 = s1 - s2;\n")
	fmt.Fprintf(&b, "    var X0 = ((e0 + e1) * %d) >> 8;\n", dctC[4])
	fmt.Fprintf(&b, "    var X4 = ((e0 - e1) * %d) >> 8;\n", dctC[4])
	fmt.Fprintf(&b, "    var X2 = (o0 * %d + o1 * %d) >> 8;\n", dctC[2], dctC[6])
	fmt.Fprintf(&b, "    var X6 = (o0 * %d - o1 * %d) >> 8;\n", dctC[6], dctC[2])
	// Odd part.
	for u := 0; u < 4; u++ {
		terms := make([]string, 4)
		for j := 0; j < 4; j++ {
			c := dctOddCoef[u][j]
			if c >= 0 {
				terms[j] = fmt.Sprintf("+ d%d * %d", j, c)
			} else {
				terms[j] = fmt.Sprintf("- d%d * %d", j, -c)
			}
		}
		expr := strings.TrimPrefix(strings.Join(terms, " "), "+ ")
		fmt.Fprintf(&b, "    var X%d = (%s) >> 8;\n", 2*u+1, expr)
	}
	for u := 0; u < 8; u++ {
		fmt.Fprintf(&b, "    out[r + %d] = X%d;\n", u, u)
	}
	fmt.Fprintf(&b, "  }\n}\n")
	return b.String()
}

// dctRowRef mirrors the kernel arithmetic exactly.
func dctRowRef(x [8]int64) [8]int64 {
	var s, d [4]int64
	for j := 0; j < 4; j++ {
		s[j] = x[j] + x[7-j]
		d[j] = x[j] - x[7-j]
	}
	e0, e1 := s[0]+s[3], s[1]+s[2]
	o0, o1 := s[0]-s[3], s[1]-s[2]
	var out [8]int64
	out[0] = ((e0 + e1) * dctC[4]) >> 8
	out[4] = ((e0 - e1) * dctC[4]) >> 8
	out[2] = (o0*dctC[2] + o1*dctC[6]) >> 8
	out[6] = (o0*dctC[6] - o1*dctC[2]) >> 8
	for u := 0; u < 4; u++ {
		acc := int64(0)
		for j := 0; j < 4; j++ {
			acc += d[j] * dctOddCoef[u][j]
		}
		out[2*u+1] = acc >> 8
	}
	return out
}

func dctInput() map[int64]int64 {
	mem := make(map[int64]int64)
	for i := int64(0); i < 8*dctBlocks*8; i++ {
		// 16-bit fixed-point samples.
		mem[dctIn+i] = (i*37+11)%509 - 254
	}
	return mem
}

func dctCheck(mem map[int64]int64) error {
	in := dctInput()
	for row := int64(0); row < 8*dctBlocks; row++ {
		var x [8]int64
		for j := int64(0); j < 8; j++ {
			x[j] = in[dctIn+row*8+j]
		}
		want := dctRowRef(x)
		for u := int64(0); u < 8; u++ {
			if err := checkEq("dct out", dctOut+row*8+u, mem[dctOut+row*8+u], want[u]); err != nil {
				return err
			}
		}
	}
	return nil
}

// DCT returns the DCT kernel spec.
func DCT() *Spec {
	return &Spec{
		Name:   "DCT",
		Desc:   "Discrete Cosine Transform: Transforms an 8x8 matrix of 16-bit fixed-point numbers.",
		Source: dctSource(),
		Init:   dctInput,
		Check:  dctCheck,
	}
}
