package kernels

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

var updateGoldens = flag.Bool("update-goldens", false, "rewrite the schedule fingerprint goldens from the current compiler")

// differentialMachines are the four paper architectures the goldens
// cover (Table 2).
func differentialMachines() []*machine.Machine {
	return []*machine.Machine{
		machine.Central(),
		machine.Clustered(2),
		machine.Clustered(4),
		machine.Distributed(),
	}
}

func goldenFile(kernel, mach string) string {
	name := strings.ReplaceAll(strings.ToLower(kernel), " ", "_") + "__" + mach + ".golden"
	return filepath.Join("testdata", "schedules", name)
}

// TestScheduleGoldens is the differential gate for compiler refactors:
// every Table 1 kernel × architecture pair must compile to a schedule
// whose fingerprint (II, placements, routes, copies) is bit-identical
// to the golden captured from the pre-refactor compiler. Regenerate
// deliberately with -update-goldens after an intentional behavior
// change.
func TestScheduleGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping differential goldens in -short mode")
	}
	for _, spec := range All() {
		for _, m := range differentialMachines() {
			spec, m := spec, m
			t.Run(spec.Name+"/"+m.Name, func(t *testing.T) {
				t.Parallel()
				k := spec.MustKernel()
				s, err := core.Compile(k, m, core.Options{})
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				got := s.Fingerprint()
				path := goldenFile(spec.Name, m.Name)
				if *updateGoldens {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (run go test ./internal/kernels -run TestScheduleGoldens -update-goldens): %v", err)
				}
				if got != string(want) {
					t.Errorf("schedule fingerprint diverged from pre-refactor golden %s:\n%s",
						path, fingerprintDiff(string(want), got))
				}
			})
		}
	}
}

// fingerprintDiff reports the first few differing lines — enough to
// localize a divergence without dumping two full schedules.
func fingerprintDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		b.WriteString("  want: " + w + "\n  got:  " + g + "\n")
		if shown++; shown >= 8 {
			b.WriteString("  ...\n")
			break
		}
	}
	return b.String()
}
