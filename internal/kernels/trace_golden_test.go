package kernels

import (
	"crypto/sha256"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

func utilGoldenFile(kernel, mach string) string {
	name := strings.ReplaceAll(strings.ToLower(kernel), " ", "_") + "__" + mach + ".golden"
	return filepath.Join("testdata", "util", name)
}

// TestUtilizationGoldens fingerprints the utilization summary of every
// Table 1 kernel × architecture pair. Together with TestScheduleGoldens
// this pins not just where operations land but how hard each bus and
// port is driven — a resource-allocation regression shows up here even
// when the II does not move.
func TestUtilizationGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping differential goldens in -short mode")
	}
	for _, spec := range All() {
		for _, m := range differentialMachines() {
			spec, m := spec, m
			t.Run(spec.Name+"/"+m.Name, func(t *testing.T) {
				t.Parallel()
				s, err := core.Compile(spec.MustKernel(), m, core.Options{})
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				got := s.InterconnectUtilization().String() + "\n"
				path := utilGoldenFile(spec.Name, m.Name)
				if *updateGoldens {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (run go test ./internal/kernels -run TestUtilizationGoldens -update-goldens): %v", err)
				}
				if got != string(want) {
					t.Errorf("utilization diverged from golden %s:\n%s",
						path, fingerprintDiff(string(want), got))
				}
			})
		}
	}
}

// TestTracingDoesNotPerturb is the observability acceptance gate:
// compiling every Table 1 kernel × architecture pair with a tracer
// attached must (a) reproduce the exact schedule the goldens pin, (b)
// export valid Chrome trace-event JSON, and (c) produce byte-identical
// trace output across repeated runs. Traces of the hard pairs run to
// hundreds of megabytes, so the test streams each export into a hash
// (and, on the first run, through the schema validator via a pipe)
// rather than buffering the bytes.
func TestTracingDoesNotPerturb(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping traced differential sweep in -short mode")
	}
	for _, spec := range All() {
		for _, m := range differentialMachines() {
			spec, m := spec, m
			t.Run(spec.Name+"/"+m.Name, func(t *testing.T) {
				t.Parallel()
				compileTraced := func(validate bool) (string, [sha256.Size]byte) {
					rec := obs.NewRecorder()
					s, err := core.Compile(spec.MustKernel(), m, core.Options{Tracer: rec})
					if err != nil {
						t.Fatalf("traced compile: %v", err)
					}
					h := sha256.New()
					var sink io.Writer = h
					var pw *io.PipeWriter
					var done chan error
					if validate {
						var pr *io.PipeReader
						pr, pw = io.Pipe()
						done = make(chan error, 1)
						go func() { done <- obs.ValidateChromeTraceReader(pr) }()
						defer pr.Close()
						sink = io.MultiWriter(h, pw)
					}
					if err := obs.WriteChromeTrace(sink, rec.Events()); err != nil {
						t.Fatal(err)
					}
					if validate {
						// EOF the pipe, then collect the validator's verdict.
						pw.Close()
						if err := <-done; err != nil {
							t.Errorf("trace fails schema validation: %v", err)
						}
					}
					var sum [sha256.Size]byte
					h.Sum(sum[:0])
					return s.Fingerprint(), sum
				}
				fp, sum := compileTraced(true)
				want, err := os.ReadFile(goldenFile(spec.Name, m.Name))
				if err != nil {
					t.Fatalf("missing schedule golden: %v", err)
				}
				if fp != string(want) {
					t.Errorf("tracing perturbed the schedule:\n%s", fingerprintDiff(string(want), fp))
				}
				if _, again := compileTraced(false); again != sum {
					t.Error("trace differs across identical runs")
				}
			})
		}
	}
}
