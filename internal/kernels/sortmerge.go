package kernels

import (
	"fmt"
	"sort"
	"strings"
)

// Sort: "Sorts 32 elements into an ordered set" (Table 1). Each loop
// iteration sorts one 32-element block with Batcher's odd-even
// merge-sort network, expressed as straight-line compare-exchange
// (min/max) pairs — the branch-free formulation a VLIW media processor
// uses.
//
// Merge: "Merges two streams of sorted elements into a single sorted
// stream." Each iteration merges a sorted 16-element run from each
// input into one sorted 32-element run using Batcher's bitonic merge
// network.

const (
	sortN      = 32
	sortBlocks = 4
	sortIn     = 0
	sortOut    = 4096

	mergeRun    = 16
	mergeBlocks = 4
	mergeA      = 0
	mergeB      = 2048
	mergeOut    = 4096
)

// comparator is one compare-exchange: after it, element Lo holds the
// minimum and element Hi the maximum.
type comparator struct{ Lo, Hi int }

// oddEvenMergeSortNetwork returns Batcher's odd-even merge-sort
// network for n a power of two.
func oddEvenMergeSortNetwork(n int) []comparator {
	var cs []comparator
	var mergeRange func(lo, m, r int)
	mergeRange = func(lo, m, r int) {
		step := r * 2
		if step < m {
			mergeRange(lo, m, step)
			mergeRange(lo+r, m, step)
			for i := lo + r; i+r < lo+m; i += step {
				cs = append(cs, comparator{i, i + r})
			}
		} else {
			cs = append(cs, comparator{lo, lo + r})
		}
	}
	var sortRange func(lo, m int)
	sortRange = func(lo, m int) {
		if m > 1 {
			h := m / 2
			sortRange(lo, h)
			sortRange(lo+h, h)
			mergeRange(lo, m, 1)
		}
	}
	sortRange(0, n)
	return cs
}

// bitonicMergeNetwork returns the network merging two sorted runs of
// n/2 (the second reversed) into a sorted run of n.
func bitonicMergeNetwork(n int) []comparator {
	var cs []comparator
	var rec func(lo, m int)
	rec = func(lo, m int) {
		if m <= 1 {
			return
		}
		h := m / 2
		for i := lo; i < lo+h; i++ {
			cs = append(cs, comparator{i, i + h})
		}
		rec(lo, h)
		rec(lo+h, h)
	}
	rec(0, n)
	return cs
}

// networkSource emits a kernel that loads n elements per block, runs
// the comparator network, and stores the result. loadExpr emits the
// load statements for element j.
func networkSource(name string, n int, cs []comparator, loads func(b *strings.Builder)) string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s {\n", name)
	fmt.Fprintf(&b, "  stream a @ %d;\n", mergeA)
	fmt.Fprintf(&b, "  stream bb @ %d;\n", mergeB)
	fmt.Fprintf(&b, "  stream out @ %d;\n", sortOut)
	fmt.Fprintf(&b, "  loop i = 0 .. %d {\n", sortBlocks)
	fmt.Fprintf(&b, "    var base = i << 5;\n")
	loads(&b)
	// Compare-exchange stages; values are renamed SSA-style by
	// reassigning the element variables.
	for k, c := range cs {
		fmt.Fprintf(&b, "    var t%d = min(e%d, e%d);\n", k, c.Lo, c.Hi)
		fmt.Fprintf(&b, "    e%d = max(e%d, e%d);\n", c.Hi, c.Lo, c.Hi)
		fmt.Fprintf(&b, "    e%d = t%d;\n", c.Lo, k)
	}
	for j := 0; j < n; j++ {
		fmt.Fprintf(&b, "    out[base + %d] = e%d;\n", j, j)
	}
	fmt.Fprintf(&b, "  }\n}\n")
	return b.String()
}

func sortSource() string {
	cs := oddEvenMergeSortNetwork(sortN)
	return networkSource("sort32", sortN, cs, func(b *strings.Builder) {
		for j := 0; j < sortN; j++ {
			fmt.Fprintf(b, "    var e%d = a[base + %d];\n", j, j)
		}
	})
}

func mergeSource() string {
	cs := bitonicMergeNetwork(2 * mergeRun)
	return networkSource("merge", 2*mergeRun, cs, func(b *strings.Builder) {
		// First run ascending, second run loaded reversed to form a
		// bitonic sequence. The second stream uses a 16-element stride
		// per block (base2 = i << 4).
		fmt.Fprintf(b, "    var base2 = i << 4;\n")
		for j := 0; j < mergeRun; j++ {
			fmt.Fprintf(b, "    var e%d = a[base2 + %d];\n", j, j)
		}
		for j := 0; j < mergeRun; j++ {
			fmt.Fprintf(b, "    var e%d = bb[base2 + %d];\n", mergeRun+j, mergeRun-1-j)
		}
	})
}

// NOTE: merge writes 32 outputs per block but reads 16 from each input
// stream, so out blocks advance by 32 (base = i<<5) while inputs
// advance by 16 (base2 = i<<4).

func sortInput() map[int64]int64 {
	mem := make(map[int64]int64)
	for i := int64(0); i < sortN*sortBlocks; i++ {
		mem[mergeA+i] = (i*1103515245 + 12345) % 1000
	}
	return mem
}

func sortCheck(mem map[int64]int64) error {
	in := sortInput()
	for blk := int64(0); blk < sortBlocks; blk++ {
		vals := make([]int64, sortN)
		for j := int64(0); j < sortN; j++ {
			vals[j] = in[mergeA+blk*sortN+j]
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		for j := int64(0); j < sortN; j++ {
			if err := checkEq("sort out", sortOut+blk*sortN+j, mem[sortOut+blk*sortN+j], vals[j]); err != nil {
				return err
			}
		}
	}
	return nil
}

func mergeInput() map[int64]int64 {
	mem := make(map[int64]int64)
	for blk := int64(0); blk < mergeBlocks; blk++ {
		a := make([]int64, mergeRun)
		b := make([]int64, mergeRun)
		for j := int64(0); j < mergeRun; j++ {
			a[j] = (blk*131 + j*j*7 + 3) % 512
			b[j] = (blk*57 + j*13 + 1) % 512
		}
		sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
		sort.Slice(b, func(x, y int) bool { return b[x] < b[y] })
		for j := int64(0); j < mergeRun; j++ {
			mem[mergeA+blk*mergeRun+j] = a[j]
			mem[mergeB+blk*mergeRun+j] = b[j]
		}
	}
	return mem
}

func mergeCheck(mem map[int64]int64) error {
	in := mergeInput()
	for blk := int64(0); blk < mergeBlocks; blk++ {
		vals := make([]int64, 0, 2*mergeRun)
		for j := int64(0); j < mergeRun; j++ {
			vals = append(vals, in[mergeA+blk*mergeRun+j], in[mergeB+blk*mergeRun+j])
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		for j := int64(0); j < 2*mergeRun; j++ {
			addr := mergeOut + blk*2*mergeRun + j
			if err := checkEq("merge out", addr, mem[addr], vals[j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sort returns the 32-element sorting kernel spec.
func Sort() *Spec {
	return &Spec{
		Name:   "Sort",
		Desc:   "Sorts 32 elements into an ordered set.",
		Source: sortSource(),
		Init:   sortInput,
		Check:  sortCheck,
	}
}

// Merge returns the sorted-stream merging kernel spec.
func Merge() *Spec {
	return &Spec{
		Name:   "Merge",
		Desc:   "Merges two streams of sorted elements into a single sorted stream.",
		Source: mergeSource(),
		Init:   mergeInput,
		Check:  mergeCheck,
	}
}
