package kernels

import (
	"fmt"
	"math"
	"strings"
)

// Block Warp: "Performs a 3-D perspective transformation used for
// point-sample rendering" (Table 1, citing Grossman & Dally [8]). Each
// iteration transforms one point through a fixed-point 3×4 matrix,
// computes the perspective reciprocal with a divide, and stores screen
// coordinates and depth. Block Warp-U2 unrolls the loop twice.
//
// Triangle Transform: "Performs a 3-D perspective transformation on a
// stream of triangles" — three vertices per iteration in floating
// point, with one reciprocal per vertex.

const (
	warpPoints = 32
	warpX      = 0
	warpY      = 512
	warpZ      = 1024
	warpOutX   = 1536
	warpOutY   = 2048
	warpOutW   = 2560
)

// warpM is the fixed-point (Q8) transform matrix: rows produce eye x,
// eye y, and w.
var warpM = [3][4]int64{
	{243, -31, 57, 4096},
	{22, 251, -44, 2048},
	{13, 29, 247, 65536},
}

func warpSource(name string, unroll int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s {\n", name)
	fmt.Fprintf(&b, "  stream x @ %d;\n", warpX)
	fmt.Fprintf(&b, "  stream y @ %d;\n", warpY)
	fmt.Fprintf(&b, "  stream z @ %d;\n", warpZ)
	fmt.Fprintf(&b, "  stream ox @ %d;\n", warpOutX)
	fmt.Fprintf(&b, "  stream oy @ %d;\n", warpOutY)
	fmt.Fprintf(&b, "  stream ow @ %d;\n", warpOutW)
	unrollClause := ""
	if unroll > 1 {
		unrollClause = fmt.Sprintf(" unroll %d", unroll)
	}
	fmt.Fprintf(&b, "  loop i = 0 .. %d%s {\n", warpPoints, unrollClause)
	fmt.Fprintf(&b, "    var px = x[i];\n")
	fmt.Fprintf(&b, "    var py = y[i];\n")
	fmt.Fprintf(&b, "    var pz = z[i];\n")
	rows := []string{"ex", "ey", "ew"}
	for r, nm := range rows {
		fmt.Fprintf(&b, "    var %s = (px * %d + py * %d + pz * %d + %d) >> 8;\n",
			nm, warpM[r][0], warpM[r][1], warpM[r][2], warpM[r][3])
	}
	// Perspective divide via a Q16 reciprocal, then two multiplies.
	fmt.Fprintf(&b, "    var rw = %d / max(ew, 1);\n", int64(1)<<16)
	fmt.Fprintf(&b, "    ox[i] = (ex * rw) >> 16;\n")
	fmt.Fprintf(&b, "    oy[i] = (ey * rw) >> 16;\n")
	fmt.Fprintf(&b, "    ow[i] = ew;\n")
	fmt.Fprintf(&b, "  }\n}\n")
	return b.String()
}

func warpInput() map[int64]int64 {
	mem := make(map[int64]int64)
	for i := int64(0); i < warpPoints; i++ {
		mem[warpX+i] = (i*97+5)%777 - 300
		mem[warpY+i] = (i*61+29)%600 - 250
		mem[warpZ+i] = (i*41+400)%900 + 200 // positive depths
	}
	return mem
}

func warpRef(px, py, pz int64) (ox, oy, ow int64) {
	row := func(r int) int64 {
		return (px*warpM[r][0] + py*warpM[r][1] + pz*warpM[r][2] + warpM[r][3]) >> 8
	}
	ex, ey, ew := row(0), row(1), row(2)
	den := ew
	if den < 1 {
		den = 1
	}
	rw := int64(1<<16) / den
	return (ex * rw) >> 16, (ey * rw) >> 16, ew
}

func warpCheck(mem map[int64]int64) error {
	in := warpInput()
	for i := int64(0); i < warpPoints; i++ {
		ox, oy, ow := warpRef(in[warpX+i], in[warpY+i], in[warpZ+i])
		if err := checkEq("warp ox", warpOutX+i, mem[warpOutX+i], ox); err != nil {
			return err
		}
		if err := checkEq("warp oy", warpOutY+i, mem[warpOutY+i], oy); err != nil {
			return err
		}
		if err := checkEq("warp ow", warpOutW+i, mem[warpOutW+i], ow); err != nil {
			return err
		}
	}
	return nil
}

// BlockWarp returns the point-sample perspective-transform kernel spec.
func BlockWarp() *Spec {
	return &Spec{
		Name:   "Block Warp",
		Desc:   "Performs a 3-D perspective transformation used for point-sample rendering.",
		Source: warpSource("block_warp", 1),
		Init:   warpInput,
		Check:  warpCheck,
	}
}

// BlockWarpU2 returns the twice-unrolled Block Warp kernel spec.
func BlockWarpU2() *Spec {
	return &Spec{
		Name:   "Block Warp-U2",
		Desc:   "Block Warp with the inner loop unrolled twice.",
		Source: warpSource("block_warp_u2", 2),
		Init:   warpInput,
		Check:  warpCheck,
	}
}

// Triangle Transform layout: three vertex-component streams per axis.
const (
	triCount = 16
	triBase  = 0    // 9 streams of triCount each, laid out consecutively
	triOut   = 4096 // 9 output streams
)

func triStreamBase(v, axis int) int64 { return triBase + int64(3*v+axis)*triCount }
func triOutBase(v, axis int) int64    { return triOut + int64(3*v+axis)*triCount }

// triM is the floating-point view transform.
var triM = [3][4]float64{
	{0.92, -0.11, 0.21, 1.5},
	{0.08, 0.97, -0.17, 0.75},
	{0.05, 0.11, 0.96, 4.0},
}

func triangleSource() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel triangle {\n")
	axes := []string{"x", "y", "z"}
	for v := 0; v < 3; v++ {
		for a, ax := range axes {
			fmt.Fprintf(&b, "  stream v%d%s @ %d float;\n", v, ax, triStreamBase(v, a))
			fmt.Fprintf(&b, "  stream o%d%s @ %d float;\n", v, ax, triOutBase(v, a))
		}
	}
	fmt.Fprintf(&b, "  loop i = 0 .. %d {\n", triCount)
	for v := 0; v < 3; v++ {
		fmt.Fprintf(&b, "    var x%d = v%dx[i];\n", v, v)
		fmt.Fprintf(&b, "    var y%d = v%dy[i];\n", v, v)
		fmt.Fprintf(&b, "    var z%d = v%dz[i];\n", v, v)
		rows := []string{"ex", "ey", "ez"}
		for r, nm := range rows {
			fmt.Fprintf(&b, "    var %s%d = x%d * %s + y%d * %s + z%d * %s + %s;\n",
				nm, v, v, flit(triM[r][0]), v, flit(triM[r][1]), v, flit(triM[r][2]), flit(triM[r][3]))
		}
		fmt.Fprintf(&b, "    var rz%d = 1.0 / ez%d;\n", v, v)
		fmt.Fprintf(&b, "    o%dx[i] = ex%d * rz%d;\n", v, v, v)
		fmt.Fprintf(&b, "    o%dy[i] = ey%d * rz%d;\n", v, v, v)
		fmt.Fprintf(&b, "    o%dz[i] = ez%d;\n", v, v)
	}
	fmt.Fprintf(&b, "  }\n}\n")
	return b.String()
}

func triangleInput() map[int64]int64 {
	mem := make(map[int64]int64)
	fb := func(f float64) int64 { return int64(math.Float64bits(f)) }
	for v := 0; v < 3; v++ {
		for a := 0; a < 3; a++ {
			base := triStreamBase(v, a)
			for i := int64(0); i < triCount; i++ {
				f := math.Sin(float64(i)*0.31+float64(v)) + float64(a)*0.4 + 2.5
				mem[base+i] = fb(f)
			}
		}
	}
	return mem
}

func triangleCheck(mem map[int64]int64) error {
	in := triangleInput()
	ff := func(a int64) float64 { return math.Float64frombits(uint64(a)) }
	for v := 0; v < 3; v++ {
		for i := int64(0); i < triCount; i++ {
			x := ff(in[triStreamBase(v, 0)+i])
			y := ff(in[triStreamBase(v, 1)+i])
			z := ff(in[triStreamBase(v, 2)+i])
			row := func(r int) float64 {
				return x*triM[r][0] + y*triM[r][1] + z*triM[r][2] + triM[r][3]
			}
			ex, ey, ez := row(0), row(1), row(2)
			rz := 1.0 / ez
			want := [3]float64{ex * rz, ey * rz, ez}
			for a := 0; a < 3; a++ {
				got := ff(mem[triOutBase(v, a)+i])
				if got != want[a] {
					return fmt.Errorf("kernels: triangle v%d axis %d at %d = %v, want %v",
						v, a, i, got, want[a])
				}
			}
		}
	}
	return nil
}

// TriangleTransform returns the triangle perspective-transform kernel
// spec.
func TriangleTransform() *Spec {
	return &Spec{
		Name:   "Triangle Transform",
		Desc:   "Performs a 3-D perspective transformation on a stream of triangles.",
		Source: triangleSource(),
		Init:   triangleInput,
		Check:  triangleCheck,
	}
}
