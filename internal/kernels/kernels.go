// Package kernels provides the ten media-processing kernels of Table 1,
// written in the kasm kernel language ("All kernels were written in a
// limited subset of C. Each kernel consists of a short preamble
// followed by a single software-pipelined loop", §5), together with
// pure-Go reference implementations used to validate scheduled code end
// to end on the cycle-accurate simulator.
//
// The suite:
//
//	DCT                 8×8 fixed-point discrete cosine transform
//	FFT                 1024-point floating-point FFT (radix-2 stage)
//	FFT-U4              FFT with the inner loop unrolled four times
//	FIR-FP              56-tap floating-point FIR filter
//	FIR-INT             FIR with 16-bit integer coefficients and data
//	Block Warp          3-D perspective transform for point-sample rendering
//	Block Warp-U2       Block Warp with the inner loop unrolled twice
//	Triangle Transform  3-D perspective transform on a stream of triangles
//	Sort                sorts 32 elements into an ordered set
//	Merge               merges two sorted streams into one sorted stream
package kernels

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/ir"
	"repro/internal/kasm"
)

// Spec is one evaluation kernel: its kasm source, input generator, and
// output checker.
type Spec struct {
	// Name as reported in Table 1.
	Name string
	// Desc is the Table 1 description.
	Desc string
	// Source is the kasm program.
	Source string
	// Init builds the input memory image.
	Init func() map[int64]int64
	// Check validates the memory image after simulation against the
	// reference implementation.
	Check func(mem map[int64]int64) error

	once sync.Once
	k    *ir.Kernel
	err  error
}

// Kernel compiles (and caches) the kasm source to IR.
func (s *Spec) Kernel() (*ir.Kernel, error) {
	s.once.Do(func() { s.k, s.err = kasm.Compile(s.Source) })
	return s.k, s.err
}

// MustKernel is Kernel for the built-in suite; it panics on error.
func (s *Spec) MustKernel() *ir.Kernel {
	k, err := s.Kernel()
	if err != nil {
		panic(fmt.Sprintf("kernels: %s: %v", s.Name, err))
	}
	return k
}

// All returns the ten kernels in Table 1 order.
func All() []*Spec {
	return []*Spec{
		DCT(),
		FFT(),
		FFTU4(),
		FIRFP(),
		FIRINT(),
		BlockWarp(),
		BlockWarpU2(),
		TriangleTransform(),
		Sort(),
		Merge(),
	}
}

// ByName returns the kernel with the given Table 1 name, or nil.
func ByName(name string) *Spec {
	for _, s := range All() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Motivating builds the paper's Fig. 4 code fragment as IR: a load and
// two adds feeding two dependent adds, plus stores so the simulator can
// validate results. It is not a Table 1 kernel but is the canonical
// small trace — scheduling it on the Fig. 5 machine reproduces the
// shared-interconnect contention of §2 and the copy-completed schedule
// of Fig. 7.
func Motivating() *ir.Kernel {
	b := ir.NewBuilder("fig4")
	a := b.Emit(ir.Load, "a", b.Const(100), b.Const(0))
	bb := b.Emit(ir.Add, "b", b.Const(1), b.Const(2))
	c := b.Emit(ir.Add, "c", b.Const(3), b.Const(4))
	d := b.Emit(ir.Add, "d", b.Val(a), b.Val(bb))
	e := b.Emit(ir.Add, "e", b.Val(a), b.Val(c))
	b.Emit(ir.Store, "", b.Val(d), b.Const(200), b.Const(0))
	b.Emit(ir.Store, "", b.Val(e), b.Const(201), b.Const(0))
	return b.MustFinish()
}

// flit renders a float64 as a kasm float literal, guaranteeing the
// token lexes as a float (a bare "4" would lex as an int) while
// round-tripping to the identical float64.
func flit(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// checkEq is a helper for reference comparisons.
func checkEq(what string, addr int64, got, want int64) error {
	if got != want {
		return fmt.Errorf("kernels: %s at %d = %d, want %d", what, addr, got, want)
	}
	return nil
}
