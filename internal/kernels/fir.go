package kernels

import (
	"fmt"
	"math"
	"strings"
)

// FIR-FP: "Finite-Impulse-Response Filter: 56-tap floating-point FIR
// filter" (Table 1), and FIR-INT: "FIR with 16-bit integer coefficients
// and data". Each loop iteration produces one output sample as a
// 56-tap dot product; coefficients are baked into the instruction
// stream as immediates, as a DSP compiler would.

const (
	firTaps    = 56
	firOutputs = 32
	firIn      = 0
	firOut     = 8192
)

// firCoefFP returns tap t's floating-point coefficient (a decaying
// windowed response; the exact values only need to match the
// reference).
func firCoefFP(t int) float64 {
	return math.Sin(float64(t+1)*0.19) / float64(t+3)
}

// firCoefInt returns tap t's 16-bit integer coefficient.
func firCoefInt(t int) int64 {
	return int64(math.Round(firCoefFP(t) * (1 << 12)))
}

func firSourceFP() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel fir_fp {\n")
	fmt.Fprintf(&b, "  stream x @ %d float;\n", firIn)
	fmt.Fprintf(&b, "  stream out @ %d float;\n", firOut)
	fmt.Fprintf(&b, "  loop i = 0 .. %d {\n", firOutputs)
	// Pairwise accumulation tree keeps the critical path logarithmic,
	// as a real kernel would be written.
	for t := 0; t < firTaps; t++ {
		fmt.Fprintf(&b, "    var p%d = x[i + %d] * %s;\n", t, t, flit(firCoefFP(t)))
	}
	n := firTaps
	level := 0
	names := make([]string, n)
	for t := 0; t < n; t++ {
		names[t] = fmt.Sprintf("p%d", t)
	}
	for len(names) > 1 {
		var next []string
		for j := 0; j+1 < len(names); j += 2 {
			nm := fmt.Sprintf("s%d_%d", level, j/2)
			fmt.Fprintf(&b, "    var %s = %s + %s;\n", nm, names[j], names[j+1])
			next = append(next, nm)
		}
		if len(names)%2 == 1 {
			next = append(next, names[len(names)-1])
		}
		names = next
		level++
	}
	fmt.Fprintf(&b, "    out[i] = %s;\n", names[0])
	fmt.Fprintf(&b, "  }\n}\n")
	return b.String()
}

func firSourceInt() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel fir_int {\n")
	fmt.Fprintf(&b, "  stream x @ %d;\n", firIn)
	fmt.Fprintf(&b, "  stream out @ %d;\n", firOut)
	fmt.Fprintf(&b, "  loop i = 0 .. %d {\n", firOutputs)
	for t := 0; t < firTaps; t++ {
		fmt.Fprintf(&b, "    var p%d = x[i + %d] * %d;\n", t, t, firCoefInt(t))
	}
	names := make([]string, firTaps)
	for t := 0; t < firTaps; t++ {
		names[t] = fmt.Sprintf("p%d", t)
	}
	level := 0
	for len(names) > 1 {
		var next []string
		for j := 0; j+1 < len(names); j += 2 {
			nm := fmt.Sprintf("s%d_%d", level, j/2)
			fmt.Fprintf(&b, "    var %s = %s + %s;\n", nm, names[j], names[j+1])
			next = append(next, nm)
		}
		if len(names)%2 == 1 {
			next = append(next, names[len(names)-1])
		}
		names = next
		level++
	}
	fmt.Fprintf(&b, "    out[i] = %s >> 12;\n", names[0])
	fmt.Fprintf(&b, "  }\n}\n")
	return b.String()
}

func firInputFP() map[int64]int64 {
	mem := make(map[int64]int64)
	for i := int64(0); i < firOutputs+firTaps; i++ {
		mem[firIn+i] = int64(math.Float64bits(math.Cos(float64(i) * 0.37)))
	}
	return mem
}

// firRefFP mirrors the kernel's pairwise accumulation order exactly so
// floating-point rounding matches bit for bit.
func firRefFP(x []float64) []float64 {
	out := make([]float64, firOutputs)
	for i := 0; i < firOutputs; i++ {
		terms := make([]float64, firTaps)
		for t := 0; t < firTaps; t++ {
			terms[t] = x[i+t] * firCoefFP(t)
		}
		for len(terms) > 1 {
			var next []float64
			for j := 0; j+1 < len(terms); j += 2 {
				next = append(next, terms[j]+terms[j+1])
			}
			if len(terms)%2 == 1 {
				next = append(next, terms[len(terms)-1])
			}
			terms = next
		}
		out[i] = terms[0]
	}
	return out
}

func firCheckFP(mem map[int64]int64) error {
	in := firInputFP()
	x := make([]float64, firOutputs+firTaps)
	for i := range x {
		x[i] = math.Float64frombits(uint64(in[firIn+int64(i)]))
	}
	want := firRefFP(x)
	for i := int64(0); i < firOutputs; i++ {
		got := math.Float64frombits(uint64(mem[firOut+i]))
		if got != want[i] {
			return fmt.Errorf("kernels: fir_fp out[%d] = %v, want %v", i, got, want[i])
		}
	}
	return nil
}

func firInputInt() map[int64]int64 {
	mem := make(map[int64]int64)
	for i := int64(0); i < firOutputs+firTaps; i++ {
		mem[firIn+i] = (i*73+19)%1024 - 512 // 16-bit data
	}
	return mem
}

func firCheckInt(mem map[int64]int64) error {
	in := firInputInt()
	for i := int64(0); i < firOutputs; i++ {
		acc := int64(0)
		for t := int64(0); t < firTaps; t++ {
			acc += in[firIn+i+t] * firCoefInt(int(t))
		}
		if err := checkEq("fir_int out", firOut+i, mem[firOut+i], acc>>12); err != nil {
			return err
		}
	}
	return nil
}

// FIRFP returns the floating-point FIR kernel spec.
func FIRFP() *Spec {
	return &Spec{
		Name:   "FIR-FP",
		Desc:   "Finite-Impulse-Response Filter: 56-tap floating-point FIR filter.",
		Source: firSourceFP(),
		Init:   firInputFP,
		Check:  firCheckFP,
	}
}

// FIRINT returns the integer FIR kernel spec.
func FIRINT() *Spec {
	return &Spec{
		Name:   "FIR-INT",
		Desc:   "FIR with 16-bit integer coefficients and data.",
		Source: firSourceInt(),
		Init:   firInputInt,
		Check:  firCheckInt,
	}
}
