package kernels

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/vliwsim"
)

func TestAllKernelsCompile(t *testing.T) {
	specs := All()
	if len(specs) != 10 {
		t.Fatalf("suite has %d kernels, want 10 (Table 1)", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate kernel %s", s.Name)
		}
		names[s.Name] = true
		k, err := s.Kernel()
		if err != nil {
			t.Fatalf("%s: %v\nsource:\n%s", s.Name, err, s.Source)
		}
		if len(k.Loop) == 0 {
			t.Errorf("%s: empty loop", s.Name)
		}
		t.Logf("%-18s loop ops=%3d preamble ops=%2d trips=%d",
			s.Name, len(k.Loop), len(k.Preamble), k.TripCount)
	}
	if ByName("DCT") == nil || ByName("nope") != nil {
		t.Error("ByName misbehaves")
	}
}

func TestByNameDescriptions(t *testing.T) {
	for _, s := range All() {
		if s.Desc == "" {
			t.Errorf("%s: missing Table 1 description", s.Name)
		}
		if s.Init == nil || s.Check == nil {
			t.Errorf("%s: missing reference hooks", s.Name)
		}
	}
}

// TestKernelsEndToEndCentral schedules and simulates the full suite on
// the central machine, validating against the reference
// implementations.
func TestKernelsEndToEndCentral(t *testing.T) {
	runSuite(t, machine.Central())
}

func TestKernelsEndToEndDistributed(t *testing.T) {
	runSuite(t, machine.Distributed())
}

func TestKernelsEndToEndClustered4(t *testing.T) {
	if testing.Short() {
		t.Skip("clustered scheduling is the slow case; run without -short")
	}
	runSuite(t, machine.Clustered(4))
}

func TestKernelsEndToEndClustered2(t *testing.T) {
	if testing.Short() {
		t.Skip("clustered scheduling is the slow case; run without -short")
	}
	runSuite(t, machine.Clustered(2))
}

func runSuite(t *testing.T, m *machine.Machine) {
	t.Helper()
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			k, err := spec.Kernel()
			if err != nil {
				t.Fatal(err)
			}
			s, err := core.Compile(k, m, core.Options{})
			if err != nil {
				t.Fatalf("schedule: %v", err)
			}
			if err := core.VerifySchedule(s); err != nil {
				t.Fatalf("verify: %v", err)
			}
			res, err := vliwsim.Run(s, vliwsim.Config{InitMem: spec.Init()})
			if err != nil {
				t.Fatalf("simulate: %v", err)
			}
			if err := spec.Check(res.Mem); err != nil {
				t.Fatal(err)
			}
			t.Logf("%s on %s: II=%d copies=%d cycles=%d",
				spec.Name, m.Name, s.II, len(s.Ops)-len(k.Ops), res.Cycles)
		})
	}
}
