package kernels

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/vliwsim"
)

// TestPairedArchitecture evaluates the §8-style novel organization on
// the full suite: the same compiler schedules it with no retargeting,
// and every kernel still validates end to end.
func TestPairedArchitecture(t *testing.T) {
	m := machine.Paired()
	if err := m.CopyConnected(); err != nil {
		t.Fatal(err)
	}
	central := machine.Central()
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			k := spec.MustKernel()
			base, err := core.Compile(k, central, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			s, err := core.Compile(k, m, core.Options{})
			if err != nil {
				t.Fatalf("paired: %v", err)
			}
			if err := core.VerifySchedule(s); err != nil {
				t.Fatal(err)
			}
			res, err := vliwsim.Run(s, vliwsim.Config{InitMem: spec.Init()})
			if err != nil {
				t.Fatal(err)
			}
			if err := spec.Check(res.Mem); err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: paired II=%d (speedup %.2f) copies=%d",
				spec.Name, s.II, float64(base.II)/float64(s.II), s.Stats.CopiesInserted)
		})
	}
}
