package kernels

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

// Scheduling-throughput benchmarks over representative kernels: the
// mid-size FIR, the comparator-heavy Merge and Sort networks (the
// scheduler's stress cases), and Sort on the copy-bound clustered
// machine. Run with:
//
//	go test ./internal/kernels -bench Sched -benchmem

func benchCompile(b *testing.B, spec *Spec, m *machine.Machine) {
	b.Helper()
	k := spec.MustKernel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := core.Compile(k, m, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(s.II), "II")
			b.ReportMetric(float64(s.Stats.Attempts), "attempts")
		}
	}
}

func BenchmarkSchedFIRINTDistributed(b *testing.B) { benchCompile(b, FIRINT(), machine.Distributed()) }
func BenchmarkSchedMergeDistributed(b *testing.B)  { benchCompile(b, Merge(), machine.Distributed()) }
func BenchmarkSchedSortDistributed(b *testing.B)   { benchCompile(b, Sort(), machine.Distributed()) }
func BenchmarkSchedSortClustered4(b *testing.B)    { benchCompile(b, Sort(), machine.Clustered(4)) }
