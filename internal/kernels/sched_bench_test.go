package kernels

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
)

// Scheduling-throughput benchmarks over representative kernels: the
// mid-size FIR, the comparator-heavy Merge and Sort networks (the
// scheduler's stress cases), and Sort on the copy-bound clustered
// machine — each in sequential-ladder form and, for the stress cases,
// with the speculative parallel ladder racing 8 rungs (Sched...Spec8).
// The speculative schedules are bit-identical to the sequential ones;
// the memohits metric reports the infeasibility memo's work. Run with:
//
//	go test ./internal/kernels -bench Sched -benchmem

func benchCompile(b *testing.B, spec *Spec, m *machine.Machine, opts core.Options) {
	b.Helper()
	k := spec.MustKernel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := core.Compile(k, m, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(s.II), "II")
			b.ReportMetric(float64(s.Stats.Attempts), "attempts")
			b.ReportMetric(float64(s.Stats.MemoHits), "memohits")
		}
	}
}

func BenchmarkSchedFIRINTDistributed(b *testing.B) {
	benchCompile(b, FIRINT(), machine.Distributed(), core.Options{})
}
func BenchmarkSchedMergeDistributed(b *testing.B) {
	benchCompile(b, Merge(), machine.Distributed(), core.Options{})
}
func BenchmarkSchedSortDistributed(b *testing.B) {
	benchCompile(b, Sort(), machine.Distributed(), core.Options{})
}
func BenchmarkSchedSortClustered4(b *testing.B) {
	benchCompile(b, Sort(), machine.Clustered(4), core.Options{})
}
func BenchmarkSchedMergeDistributedSpec8(b *testing.B) {
	benchCompile(b, Merge(), machine.Distributed(), core.Options{Speculate: 8})
}
func BenchmarkSchedSortDistributedSpec8(b *testing.B) {
	benchCompile(b, Sort(), machine.Distributed(), core.Options{Speculate: 8})
}
