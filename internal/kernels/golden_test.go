package kernels

import (
	"testing"

	"repro/internal/core"
	"repro/internal/depgraph"
	"repro/internal/machine"
)

// TestCentralGoldenIIs locks the central-machine initiation intervals.
// On the central register file communication scheduling is trivial
// (every stub is forced and conflict-free), so these values are pure
// resource/recurrence properties of the kernels — the stable baseline
// every Fig. 28 speedup is normalized against. A change here means the
// kernels or the machine model changed, not the scheduler heuristics.
func TestCentralGoldenIIs(t *testing.T) {
	want := map[string]int{
		"DCT":                8,
		"FFT":                3,
		"FFT-U4":             10,
		"FIR-FP":             19,
		"FIR-INT":            19,
		"Block Warp":         4,
		"Block Warp-U2":      8,
		"Triangle Transform": 11,
		"Sort":               64,
		"Merge":              28,
	}
	m := machine.Central()
	for _, spec := range All() {
		k := spec.MustKernel()
		s, err := core.Compile(k, m, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if s.II != want[spec.Name] {
			t.Errorf("%s central II = %d, want %d", spec.Name, s.II, want[spec.Name])
		}
		// On central the II must equal the resource/recurrence bound:
		// the machine imposes no communication constraints.
		mii, err := depgraph.ResMII(k, m)
		if err != nil {
			t.Fatal(err)
		}
		g := depgraph.Build(k, m)
		rec := g.RecMII(256)
		lower := mii
		if rec > lower {
			lower = rec
		}
		if s.II != lower {
			t.Errorf("%s: central II %d above its lower bound %d — scheduling artifacts on the baseline",
				spec.Name, s.II, lower)
		}
	}
}

// TestDistributedIIBands locks loose bands for the distributed machine
// so heuristic regressions surface without over-constraining.
func TestDistributedIIBands(t *testing.T) {
	maxRatio := map[string]float64{
		"DCT": 1.3, "FFT": 1.05, "FFT-U4": 1.5, "FIR-FP": 1.05, "FIR-INT": 1.05,
		"Block Warp": 1.05, "Block Warp-U2": 1.15, "Triangle Transform": 1.15,
		"Sort": 1.2, "Merge": 1.4,
	}
	c := machine.Central()
	d := machine.Distributed()
	for _, spec := range All() {
		k := spec.MustKernel()
		base, err := core.Compile(k, c, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := core.Compile(k, d, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if ratio := float64(s.II) / float64(base.II); ratio > maxRatio[spec.Name] {
			t.Errorf("%s: distributed/central II ratio %.2f exceeds band %.2f",
				spec.Name, ratio, maxRatio[spec.Name])
		}
	}
}
