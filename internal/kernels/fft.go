package kernels

import (
	"fmt"
	"math"
	"strings"
)

// FFT: "Fast Fourier Transform: Performs a 1024-point floating-point
// FFT" (Table 1). The software-pipelined loop is the radix-2 butterfly
// loop of one decimation-in-time stage: each iteration loads one
// element pair and its twiddle factor, computes the butterfly, and
// stores the pair. FFT-U4 unrolls that loop four times.

const (
	fftN    = 1024
	fftHalf = fftN / 2

	fftRe    = 0    // input real parts
	fftIm    = 1024 // input imaginary parts
	fftTwRe  = 2048 // twiddle real parts
	fftTwIm  = 3072 // twiddle imaginary parts
	fftOutRe = 4096 // output real parts
	fftOutIm = 5120 // output imaginary parts
)

func fftSource(name string, unroll int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s {\n", name)
	fmt.Fprintf(&b, "  stream re @ %d float;\n", fftRe)
	fmt.Fprintf(&b, "  stream im @ %d float;\n", fftIm)
	fmt.Fprintf(&b, "  stream wre @ %d float;\n", fftTwRe)
	fmt.Fprintf(&b, "  stream wim @ %d float;\n", fftTwIm)
	fmt.Fprintf(&b, "  stream ore @ %d float;\n", fftOutRe)
	fmt.Fprintf(&b, "  stream oim @ %d float;\n", fftOutIm)
	unrollClause := ""
	if unroll > 1 {
		unrollClause = fmt.Sprintf(" unroll %d", unroll)
	}
	fmt.Fprintf(&b, "  loop i = 0 .. %d%s {\n", fftHalf, unrollClause)
	fmt.Fprintf(&b, "    var ar = re[i];\n")
	fmt.Fprintf(&b, "    var ai = im[i];\n")
	fmt.Fprintf(&b, "    var br = re[i + %d];\n", fftHalf)
	fmt.Fprintf(&b, "    var bi = im[i + %d];\n", fftHalf)
	fmt.Fprintf(&b, "    var wr = wre[i];\n")
	fmt.Fprintf(&b, "    var wi = wim[i];\n")
	fmt.Fprintf(&b, "    var tr = br * wr - bi * wi;\n")
	fmt.Fprintf(&b, "    var ti = br * wi + bi * wr;\n")
	fmt.Fprintf(&b, "    ore[i] = ar + tr;\n")
	fmt.Fprintf(&b, "    oim[i] = ai + ti;\n")
	fmt.Fprintf(&b, "    ore[i + %d] = ar - tr;\n", fftHalf)
	fmt.Fprintf(&b, "    oim[i + %d] = ai - ti;\n", fftHalf)
	fmt.Fprintf(&b, "  }\n}\n")
	return b.String()
}

func fftInput() map[int64]int64 {
	mem := make(map[int64]int64)
	fb := func(f float64) int64 { return int64(math.Float64bits(f)) }
	for i := int64(0); i < fftN; i++ {
		mem[fftRe+i] = fb(math.Sin(float64(i)*0.013) + 0.25*math.Cos(float64(i)*0.071))
		mem[fftIm+i] = fb(0.5 * math.Sin(float64(i)*0.029))
	}
	for i := int64(0); i < fftHalf; i++ {
		ang := -2 * math.Pi * float64(i) / float64(fftN)
		mem[fftTwRe+i] = fb(math.Cos(ang))
		mem[fftTwIm+i] = fb(math.Sin(ang))
	}
	return mem
}

func fftCheck(mem map[int64]int64) error {
	in := fftInput()
	ff := func(a int64) float64 { return math.Float64frombits(uint64(a)) }
	for i := int64(0); i < fftHalf; i++ {
		ar, ai := ff(in[fftRe+i]), ff(in[fftIm+i])
		br, bi := ff(in[fftRe+fftHalf+i]), ff(in[fftIm+fftHalf+i])
		wr, wi := ff(in[fftTwRe+i]), ff(in[fftTwIm+i])
		tr := br*wr - bi*wi
		ti := br*wi + bi*wr
		checks := []struct {
			addr int64
			want float64
		}{
			{fftOutRe + i, ar + tr},
			{fftOutIm + i, ai + ti},
			{fftOutRe + fftHalf + i, ar - tr},
			{fftOutIm + fftHalf + i, ai - ti},
		}
		for _, c := range checks {
			if got := ff(mem[c.addr]); got != c.want {
				return fmt.Errorf("kernels: fft out at %d = %v, want %v", c.addr, got, c.want)
			}
		}
	}
	return nil
}

// FFT returns the 1024-point FFT stage kernel spec.
func FFT() *Spec {
	return &Spec{
		Name:   "FFT",
		Desc:   "Fast Fourier Transform: Performs a 1024-point floating-point FFT.",
		Source: fftSource("fft", 1),
		Init:   fftInput,
		Check:  fftCheck,
	}
}

// FFTU4 returns the four-way-unrolled FFT kernel spec.
func FFTU4() *Spec {
	return &Spec{
		Name:   "FFT-U4",
		Desc:   "FFT with the inner loop unrolled four times.",
		Source: fftSource("fft_u4", 4),
		Init:   fftInput,
		Check:  fftCheck,
	}
}
