// Package vlsi estimates register-file area, power, and access delay
// for the machine descriptions, following the grid model of Rixner et
// al., "Register organization for media processing" (HPCA 2000) — the
// paper's reference [15] and the source of the bars in Figs. 25–27.
//
// Each register-file storage cell grows linearly in both dimensions
// with the port count (every port adds a wordline and a bitline), so a
// file with R registers of b bits and p ports occupies
//
//	area ≈ R·b·(w0 + Δ·p)·(h0 + Δ·p) + decoder and periphery ∝ p·R,
//
// access energy follows the wordline and bitline capacitances, and
// access delay is a fixed decode/sense term plus a wire term growing
// with the square root of the file's area. Shared buses contribute
// wiring area and switching energy proportional to their tap counts.
//
// With the central file's p ∝ N and R ∝ N this reproduces the paper's
// asymptotics — area and power growing as N³ and delay as N^(3/2) —
// while the distributed organization's fixed two-port files grow only
// as N² (bus wiring) with delay ∝ N (§1). Constants are calibrated so
// the 16-unit instance lands near the paper's reported ratios (9 %
// area, 6 % power, 37 % delay for distributed vs. central; roughly half
// the area and power of the four-cluster machine).
package vlsi

import (
	"fmt"
	"math"

	"repro/internal/machine"
)

// Params are the technology constants of the grid model, in normalized
// (unitless) technology-independent terms.
type Params struct {
	Bits float64 // datapath width in bits

	CellW  float64 // single-port cell width
	CellH  float64 // single-port cell height
	DeltaW float64 // width added per port (bitline pitch)
	DeltaH float64 // height added per port (wordline pitch)

	DecodeArea float64 // per port per register decoder/periphery area
	PeriphArea float64 // fixed per-file overhead (sense amps, control)
	PeriphPow  float64 // fixed per-file power overhead
	TapPitch   float64 // wiring area per bus tap per bit

	FixedDelay float64 // decode + sense delay per log2(R·b)
	WireDelay  float64 // delay per sqrt(file area)
	PortEnergy float64 // energy scale per port access
	TapEnergy  float64 // switching energy per bus tap
}

// DefaultParams returns the calibrated constants.
func DefaultParams() Params {
	return Params{
		Bits:       32,
		CellW:      2,
		CellH:      2,
		DeltaW:     1,
		DeltaH:     1,
		DecodeArea: 8,
		PeriphArea: 40000,
		PeriphPow:  120,
		TapPitch:   120,
		FixedDelay: 150,
		WireDelay:  0.3,
		PortEnergy: 1,
		TapEnergy:  50,
	}
}

// Cost is the estimate for one machine.
type Cost struct {
	Area  float64
	Power float64
	Delay float64 // worst-case register-file access delay

	// Breakdown for reporting.
	CellArea float64
	WireArea float64
	NumRFs   int
	MaxPorts int
}

// Analyze derives register-file geometry and bus tap counts from the
// machine description and evaluates the model.
func Analyze(m *machine.Machine, p Params) Cost {
	ports := make([]int, len(m.RegFiles))
	for _, rp := range m.ReadPorts {
		ports[rp.RF]++
	}
	for _, wp := range m.WritePorts {
		ports[wp.RF]++
	}

	var c Cost
	c.NumRFs = len(m.RegFiles)
	for i, rf := range m.RegFiles {
		pp := float64(ports[i])
		if ports[i] > c.MaxPorts {
			c.MaxPorts = ports[i]
		}
		r := float64(rf.NumRegs)
		cellArea := r * p.Bits * (p.CellW + p.DeltaW*pp) * (p.CellH + p.DeltaH*pp)
		periph := pp*r*p.DecodeArea + p.PeriphArea
		c.CellArea += cellArea + periph
		c.Power += p.PeriphPow

		// Worst access delay across files.
		delay := p.FixedDelay*math.Log2(math.Max(2, r*p.Bits)) + p.WireDelay*math.Sqrt(cellArea)
		if delay > c.Delay {
			c.Delay = delay
		}

		// All ports active every cycle (peak streaming rate).
		energy := (r*(p.CellH+p.DeltaH*pp) + p.Bits*(p.CellW+p.DeltaW*pp)) * p.PortEnergy
		c.Power += pp * energy
	}

	// Bus wiring: taps are drivers (outputs, read ports) plus sinks
	// (write ports, inputs).
	taps := make([]int, len(m.Buses))
	for _, buses := range m.OutToBus {
		for _, b := range buses {
			taps[b]++
		}
	}
	for _, buses := range m.RPToBus {
		for _, b := range buses {
			taps[b]++
		}
	}
	for b, wps := range m.BusToWP {
		taps[b] += len(wps)
	}
	for b, ins := range m.BusToIn {
		taps[b] += len(ins)
	}
	for _, t := range taps {
		c.WireArea += float64(t) * p.TapPitch
		c.Power += float64(t) * p.TapEnergy
	}
	c.Area = c.CellArea + c.WireArea
	return c
}

// Relative returns cost ratios of m against base (base = 1.0).
func Relative(mCost, base Cost) (area, power, delay float64) {
	return mCost.Area / base.Area, mCost.Power / base.Power, mCost.Delay / base.Delay
}

// Report renders the Figs. 25–27 style normalized bars for a set of
// machines, first entry as baseline.
func Report(ms []*machine.Machine) string {
	p := DefaultParams()
	base := Analyze(ms[0], p)
	out := fmt.Sprintf("%-14s %8s %8s %8s\n", "architecture", "area", "power", "delay")
	for _, m := range ms {
		c := Analyze(m, p)
		a, pw, d := Relative(c, base)
		out += fmt.Sprintf("%-14s %8.3f %8.3f %8.3f\n", m.Name, a, pw, d)
	}
	return out
}
