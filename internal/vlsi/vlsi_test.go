package vlsi

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

func costs(t *testing.T) (central, cl2, cl4, dist Cost) {
	t.Helper()
	p := DefaultParams()
	return Analyze(machine.Central(), p),
		Analyze(machine.Clustered(2), p),
		Analyze(machine.Clustered(4), p),
		Analyze(machine.Distributed(), p)
}

// TestFig25to27Ordering checks the qualitative result of Figs. 25–27:
// "more, smaller register files significantly reduce area, power
// consumption, and access delay" — distributed < clustered < central on
// every axis.
func TestFig25to27Ordering(t *testing.T) {
	central, cl2, cl4, dist := costs(t)
	check := func(name string, c, c2, c4, d float64) {
		if !(d < c4 && c4 < c && d < c2 && c2 < c) {
			t.Errorf("%s ordering violated: central=%.0f cl2=%.0f cl4=%.0f dist=%.0f",
				name, c, c2, c4, d)
		}
	}
	check("area", central.Area, cl2.Area, cl4.Area, dist.Area)
	check("power", central.Power, cl2.Power, cl4.Power, dist.Power)
	check("delay", central.Delay, cl2.Delay, cl4.Delay, dist.Delay)
}

// TestHeadlineRatios checks the paper's headline cost claims within a
// tolerance band: the distributed architecture needs roughly 9% of the
// central file's area, 6% of its power, and 37% of its access delay
// (§1, §8), and roughly half the area and power of the four-cluster
// machine (56% and 50%).
func TestHeadlineRatios(t *testing.T) {
	central, _, cl4, dist := costs(t)
	band := func(name string, got, want, tol float64) {
		if got < want/tol || got > want*tol {
			t.Errorf("%s = %.3f, want within %.1fx of %.3f", name, got, tol, want)
		}
	}
	band("dist/central area", dist.Area/central.Area, 0.09, 2.0)
	band("dist/central power", dist.Power/central.Power, 0.06, 2.0)
	band("dist/central delay", dist.Delay/central.Delay, 0.37, 1.6)
	band("dist/cl4 area", dist.Area/cl4.Area, 0.56, 1.8)
	band("dist/cl4 power", dist.Power/cl4.Power, 0.50, 1.8)
}

// TestAsymptotics verifies the scaling laws of §1: growing the
// arithmetic-unit count by 4x grows central area by ~64x (N³) but a
// distributed organization by far less (~N²).
func TestAsymptotics(t *testing.T) {
	p := DefaultParams()
	small := Analyze(scaledCentral(1), p)
	big := Analyze(scaledCentral(4), p)
	ratio := big.Area / small.Area
	if ratio < 30 || ratio > 90 {
		t.Errorf("central area scaling for 4x units = %.1fx, want ~64x (N^3)", ratio)
	}
	dsmall := Analyze(scaledDistributed(1), p)
	dbig := Analyze(scaledDistributed(4), p)
	dratio := dbig.Area / dsmall.Area
	if dratio > ratio/2 {
		t.Errorf("distributed area scaling %.1fx not much below central %.1fx", dratio, ratio)
	}
	// Delay: central ~N^1.5 vs distributed ~flat cell + N wires.
	if !(dbig.Delay/dsmall.Delay < big.Delay/small.Delay) {
		t.Errorf("distributed delay scaling not below central")
	}
}

// scaledCentral builds a central machine with s×16 units and s×256
// registers.
func scaledCentral(s int) *machine.Machine {
	b := machine.NewBuilder("central-scaled")
	rf := b.AddRF("crf", -1, 256*s)
	for i := 0; i < 16*s; i++ {
		fu := b.AddFU("add", machine.Adder, -1, 2)
		b.DedicatedRead(rf, fu, 0)
		b.DedicatedRead(rf, fu, 1)
		b.DedicatedWrite(fu, rf)
	}
	return b.MustBuild()
}

// scaledDistributed builds a distributed machine with s×16 units.
func scaledDistributed(s int) *machine.Machine {
	b := machine.NewBuilder("dist-scaled")
	nbus := 10 * s
	buses := make([]machine.BusID, nbus)
	for i := range buses {
		buses[i] = b.AddBus("g", true)
	}
	for i := 0; i < 16*s; i++ {
		fu := b.AddFU("add", machine.Adder, -1, 2)
		b.SetCanCopy(fu, true)
		for slot := 0; slot < 2; slot++ {
			rf := b.AddRF("rf", -1, 8)
			b.DedicatedRead(rf, fu, slot)
			wp := b.AddWritePort(rf, "w")
			for _, bus := range buses {
				b.ConnectBusWP(bus, wp)
			}
		}
		for _, bus := range buses {
			b.ConnectOutBus(fu, bus)
		}
	}
	return b.MustBuild()
}

func TestReportRenders(t *testing.T) {
	out := Report([]*machine.Machine{
		machine.Central(), machine.Clustered(2), machine.Clustered(4), machine.Distributed(),
	})
	for _, want := range []string{"central", "clustered2", "clustered4", "distributed", "area", "power", "delay"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "1.000") {
		t.Errorf("baseline row not normalized to 1.000:\n%s", out)
	}
}
