package vlsi

import (
	"testing"

	"repro/internal/machine"
)

// The model's qualitative behavior must follow the physics it encodes:
// port growth hurts many-ported files superlinearly, per-file overhead
// hurts many-filed organizations, bus taps charge shared interconnect.

func TestPortPitchSensitivity(t *testing.T) {
	base := DefaultParams()
	wide := base
	wide.DeltaW *= 2
	wide.DeltaH *= 2
	c0 := Analyze(machine.Central(), base)
	d0 := Analyze(machine.Distributed(), base)
	c1 := Analyze(machine.Central(), wide)
	d1 := Analyze(machine.Distributed(), wide)
	// Doubling the per-port pitch must hurt the 48-port central file
	// far more than the 2-port distributed files.
	cGrow := c1.Area / c0.Area
	dGrow := d1.Area / d0.Area
	if cGrow <= dGrow {
		t.Errorf("port pitch: central grew %.2fx vs distributed %.2fx; want central to grow more", cGrow, dGrow)
	}
}

func TestPeriphSensitivity(t *testing.T) {
	base := DefaultParams()
	heavy := base
	heavy.PeriphArea *= 2
	c0 := Analyze(machine.Central(), base)
	d0 := Analyze(machine.Distributed(), base)
	c1 := Analyze(machine.Central(), heavy)
	d1 := Analyze(machine.Distributed(), heavy)
	// Per-file overhead hits the 32-file organization hardest.
	if d1.Area/d0.Area <= c1.Area/c0.Area {
		t.Error("per-file overhead did not penalize the many-file organization more")
	}
}

func TestTapSensitivity(t *testing.T) {
	base := DefaultParams()
	wires := base
	wires.TapPitch *= 4
	d0 := Analyze(machine.Distributed(), base)
	d1 := Analyze(machine.Distributed(), wires)
	c0 := Analyze(machine.Central(), base)
	c1 := Analyze(machine.Central(), wires)
	if d1.Area/d0.Area <= c1.Area/c0.Area {
		t.Error("bus-tap pitch did not penalize the shared-bus organization more")
	}
}

func TestDelayMonotoneInSize(t *testing.T) {
	p := DefaultParams()
	small := Analyze(machine.ScaledCentral(8), p)
	big := Analyze(machine.ScaledCentral(32), p)
	if big.Delay <= small.Delay {
		t.Errorf("delay not monotone: %0.f -> %0.f", small.Delay, big.Delay)
	}
	if big.Power <= small.Power || big.Area <= small.Area {
		t.Error("area/power not monotone in machine size")
	}
}

func TestCostBreakdownConsistent(t *testing.T) {
	p := DefaultParams()
	for _, m := range []*machine.Machine{
		machine.Central(), machine.Clustered(2), machine.Clustered(4),
		machine.Distributed(), machine.Paired(),
	} {
		c := Analyze(m, p)
		if c.Area <= 0 || c.Power <= 0 || c.Delay <= 0 {
			t.Errorf("%s: non-positive cost %+v", m.Name, c)
		}
		if c.CellArea+c.WireArea != c.Area {
			t.Errorf("%s: breakdown does not sum: %v + %v != %v", m.Name, c.CellArea, c.WireArea, c.Area)
		}
		if c.NumRFs != len(m.RegFiles) {
			t.Errorf("%s: NumRFs = %d", m.Name, c.NumRFs)
		}
	}
}

func TestPairedCostBetween(t *testing.T) {
	p := DefaultParams()
	d := Analyze(machine.Distributed(), p)
	pr := Analyze(machine.Paired(), p)
	c := Analyze(machine.Central(), p)
	// Paired halves the file count: area at or below distributed (fewer
	// peripheries), delay still far below central.
	if pr.Area >= d.Area*1.2 {
		t.Errorf("paired area %.0f not competitive with distributed %.0f", pr.Area, d.Area)
	}
	if pr.Delay >= c.Delay/1.5 {
		t.Errorf("paired delay %.0f too close to central %.0f", pr.Delay, c.Delay)
	}
}
