package core

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

func allMachines() []*machine.Machine {
	return []*machine.Machine{
		machine.Central(), machine.Clustered(2), machine.Clustered(4), machine.Distributed(),
	}
}

func TestAccumulatorLoop(t *testing.T) {
	k := accLoopKernel(t)
	for _, m := range allMachines() {
		s, err := Compile(k, m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if err := VerifySchedule(s); err != nil {
			t.Errorf("%s: %v\n%s", m.Name, err, s.Dump())
			continue
		}
		// The recurrence is acc += p with a 1-cycle add: II can be 1 on
		// the central machine.
		if m.Name == "central" && s.II != 1 {
			t.Errorf("central II = %d, want 1", s.II)
		}
		if s.II < 1 || s.II > 4 {
			t.Errorf("%s: II = %d out of expected band [1,4]", m.Name, s.II)
		}
		t.Logf("%s: II=%d copies=%d preamble=%d", m.Name, s.II,
			len(s.Ops)-len(k.Ops), s.PreambleLen)
	}
}

// wideLoopKernel builds a loop with enough independent work to stress
// the write buses: w independent load→mul→add chains, each stored.
func wideLoopKernel(t *testing.T, w int) *ir.Kernel {
	t.Helper()
	b := ir.NewBuilder("wide")
	iv, _ := b.InductionVar("i", 0, 1)
	b.Loop()
	for j := 0; j < w; j++ {
		x := b.Emit(ir.Load, "x", iv, b.Const(0))
		p := b.Emit(ir.Mul, "p", b.Val(x), b.Const(int64(j+3)))
		y := b.Emit(ir.Add, "y", b.Val(p), b.Const(int64(j)))
		b.Emit(ir.Store, "", b.Val(y), iv, b.Const(0))
	}
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestWideLoop(t *testing.T) {
	k := wideLoopKernel(t, 4)
	for _, m := range allMachines() {
		s, err := Compile(k, m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if err := VerifySchedule(s); err != nil {
			t.Errorf("%s: %v", m.Name, err)
			continue
		}
		t.Logf("%s: II=%d copies=%d preamble=%d loopspan=%d", m.Name, s.II,
			len(s.Ops)-len(k.Ops), s.PreambleLen, s.LoopSpan)
	}
}

// crossKernel exercises loop-invariant values: constants defined in the
// preamble and consumed every iteration.
func TestLoopInvariantOperands(t *testing.T) {
	b := ir.NewBuilder("inv")
	iv, _ := b.InductionVar("i", 0, 1)
	c1 := b.Emit(ir.MovI, "c1", b.Const(7))
	c2 := b.Emit(ir.MovI, "c2", b.Const(9))
	b.Loop()
	x := b.Emit(ir.Load, "x", iv, b.Const(0))
	p := b.Emit(ir.Mul, "p", b.Val(x), b.Val(c1))
	q := b.Emit(ir.Add, "q", b.Val(p), b.Val(c2))
	b.Emit(ir.Store, "", b.Val(q), iv, b.Const(0))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range allMachines() {
		s, err := Compile(k, m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if err := VerifySchedule(s); err != nil {
			t.Errorf("%s: %v\n%s", m.Name, err, s.Dump())
		}
		// Central and distributed sustain one iteration per cycle. The
		// clustered machines cannot: the store needs both the induction
		// variable and the result from another cluster, and each
		// cluster's single copy unit moves only one value per cycle —
		// the degradation the paper measures (§5).
		switch m.Name {
		case "central", "distributed":
			if s.II != 1 {
				t.Errorf("%s: II = %d, want 1", m.Name, s.II)
			}
		default:
			if s.II > 2 {
				t.Errorf("%s: II = %d, want <= 2", m.Name, s.II)
			}
		}
	}
}

// TestSelfRecurrenceLatency checks that a multiply-accumulate
// recurrence with a 2-cycle multiplier forces II >= 2 when the product
// feeds back.
func TestSelfRecurrenceLatency(t *testing.T) {
	b := ir.NewBuilder("rec")
	s0 := b.Emit(ir.MovI, "s0", b.Const(1))
	b.Loop()
	// s = s*3 (2-cycle multiply feeding itself): recurrence MII = 2.
	b.Accumulator(ir.Mul, "s", s0, b.Const(3))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range allMachines() {
		sched, err := Compile(k, m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if sched.II < 2 {
			t.Errorf("%s: II = %d, want >= 2 (recurrence)", m.Name, sched.II)
		}
		if err := VerifySchedule(sched); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestBacktrackCounterOnDistributed(t *testing.T) {
	// §4.5: "Communication scheduling does not require backtracking to
	// schedule any of the evaluation kernels on the distributed
	// register file architecture." Simple kernels must not backtrack
	// either.
	k := accLoopKernel(t)
	s, err := Compile(k, machine.Distributed(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.Backtracks != 0 {
		t.Errorf("distributed backtracks = %d, want 0", s.Stats.Backtracks)
	}
}
