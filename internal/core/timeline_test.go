package core

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

func TestTimelineCompleteAndPeriodic(t *testing.T) {
	k := accLoopKernel(t)
	s, err := Compile(k, machine.Distributed(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	const trips = 9
	entries := s.Timeline(trips)

	// Every operation appears exactly once per relevant iteration.
	count := make(map[ir.OpID]map[int]int)
	for _, e := range entries {
		if count[e.Op] == nil {
			count[e.Op] = make(map[int]int)
		}
		count[e.Op][e.Iteration]++
	}
	for _, op := range s.Ops {
		if op.Block == ir.PreambleBlock {
			if count[op.ID][-1] != 1 {
				t.Errorf("preamble op %d appears %d times", op.ID, count[op.ID][-1])
			}
			continue
		}
		for k2 := 0; k2 < trips; k2++ {
			if count[op.ID][k2] != 1 {
				t.Errorf("loop op %d iteration %d appears %d times", op.ID, k2, count[op.ID][k2])
			}
		}
	}

	// Steady state repeats with period II: the multiset of (op, fu)
	// issued at cycle c equals that at c+II, well inside the pipeline.
	stages := s.PipelineStages()
	if stages < 1 {
		t.Fatal("no pipeline stages")
	}
	issueAt := make(map[int][]string)
	for _, e := range entries {
		issueAt[e.Cycle] = append(issueAt[e.Cycle],
			strings.Join([]string{s.Ops[e.Op].Opcode.String(), s.Machine.FU(e.FU).Name}, "@"))
	}
	start := s.PreambleLen + stages*s.II
	end := s.PreambleLen + (trips-stages)*s.II
	for c := start; c+s.II < end; c++ {
		a := append([]string(nil), issueAt[c]...)
		b := append([]string(nil), issueAt[c+s.II]...)
		if strings.Join(a, ";") != strings.Join(b, ";") {
			t.Fatalf("steady state not periodic at cycle %d: %v vs %v", c, a, b)
		}
	}
}

func TestFormatTimelinePhases(t *testing.T) {
	k := accLoopKernel(t)
	s, err := Compile(k, machine.Central(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := s.FormatTimeline(8)
	for _, want := range []string{"preamble", "steady state", "epilogue", "cycle"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	if s.PipelineStages() > 1 && !strings.Contains(out, "prologue") {
		t.Errorf("multi-stage pipeline shows no prologue:\n%s", out)
	}
}
