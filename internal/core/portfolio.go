package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/depgraph"
	"repro/internal/ir"
	"repro/internal/machine"
)

// This file implements portfolio compilation: the §4.6 ablations show
// that no single heuristic setting wins on every kernel/machine pair,
// so instead of committing to one configuration, CompilePortfolio races
// a portfolio of them and splits the initiation-interval search across
// a bounded pool of workers, cancelling attempts that can no longer
// win. Selection is deterministic — independent of worker count and
// scheduling order — so parallel runs are repeatable.

// Variant is one racing configuration of the portfolio.
type Variant struct {
	Name string
	Opts Options
}

// DefaultVariants is the standard racing lineup derived from a base
// configuration: the base itself plus the four ablation switches of
// §4.6/§6/§7, each flipped relative to the base. The base rides at
// index 0 so that on ties (same interval, same copies) the portfolio
// reproduces the sequential scheduler's choice.
func DefaultVariants(base Options) []Variant {
	flip := func(name string, f func(*Options)) Variant {
		o := base
		f(&o)
		return Variant{Name: name, Opts: o}
	}
	return []Variant{
		{Name: "base", Opts: base},
		flip("cost-heuristic", func(o *Options) { o.NoCostHeuristic = !o.NoCostHeuristic }),
		flip("cycle-order", func(o *Options) { o.CycleOrder = !o.CycleOrder }),
		flip("two-phase", func(o *Options) { o.TwoPhase = !o.TwoPhase }),
		flip("register-aware", func(o *Options) { o.RegisterAware = !o.RegisterAware }),
	}
}

// PortfolioOptions configure CompilePortfolio beyond the base scheduler
// options.
type PortfolioOptions struct {
	// Workers bounds the goroutine pool; 0 or less means GOMAXPROCS.
	Workers int
	// Variants overrides the racing lineup; nil means
	// DefaultVariants(base).
	Variants []Variant
}

// VariantStats instruments one configuration's share of a portfolio
// run. Wall times and cancellation counts depend on scheduling timing
// and vary between runs; everything derived from completed attempts
// (BestII, Copies) is deterministic.
type VariantStats struct {
	Name string
	// IIsTried counts single-interval attempts run to completion.
	IIsTried int
	// Cancelled counts attempts killed mid-flight because a smaller
	// interval had already been proven elsewhere.
	Cancelled int
	// BestII is the smallest interval this variant scheduled, 0 when it
	// never succeeded; Copies is its copy count at BestII.
	BestII int
	Copies int
	// Wall is the cumulative scheduling time across this variant's
	// attempts (concurrent attempts accumulate in parallel, so the sum
	// over variants can exceed the portfolio's wall clock).
	Wall time.Duration
}

// PortfolioStats records how a portfolio run unfolded.
type PortfolioStats struct {
	Workers int
	// MinII is the resource/recurrence lower bound on the interval.
	MinII int
	// Winner indexes Variants at the winning configuration, -1 when
	// nothing scheduled; WinnerII is the winning interval.
	Winner   int
	WinnerII int
	// IIsTried and Cancelled total the per-variant counters.
	IIsTried  int
	Cancelled int
	Wall      time.Duration
	Variants  []VariantStats
}

// WinnerName returns the winning variant's name, "" when none won.
func (p *PortfolioStats) WinnerName() string {
	if p.Winner < 0 || p.Winner >= len(p.Variants) {
		return ""
	}
	return p.Variants[p.Winner].Name
}

// String renders a one-line-per-variant summary.
func (p *PortfolioStats) String() string {
	s := fmt.Sprintf("portfolio: %d workers, minII=%d, winner=%s II=%d, %d attempts (%d cancelled), %v",
		p.Workers, p.MinII, p.WinnerName(), p.WinnerII, p.IIsTried, p.Cancelled, p.Wall.Round(time.Microsecond))
	for _, v := range p.Variants {
		s += fmt.Sprintf("\n  %-14s tried=%-3d cancelled=%-3d bestII=%-3d copies=%-3d %v",
			v.Name, v.IIsTried, v.Cancelled, v.BestII, v.Copies, v.Wall.Round(time.Microsecond))
	}
	return s
}

// task is one cell of the (interval, variant) search grid.
type task struct {
	ii int
	vi int
}

// won is one successful grid cell.
type won struct {
	sched  *Schedule
	copies int
}

// CompilePortfolio schedules kernel k onto machine m by racing a
// portfolio of scheduler configurations across a bounded worker pool.
// The search space is the grid of (initiation interval, variant) cells,
// explored in ascending interval order; a worker claims the next cell
// and runs a complete single-interval scheduling attempt for it. As
// soon as some cell schedules, cells at larger intervals are pruned and
// any attempts already running there are cancelled through ctx-style
// polling — including the moment a variant proves the ResMII lower
// bound, which cancels everything else in flight.
//
// The winner is chosen deterministically: smallest interval, then
// fewest inserted copies, then lowest variant index. Because every cell
// at an interval no larger than the winning one is always run to
// completion (cancellation only ever kills cells that cannot win), the
// result is bit-identical across runs and worker counts; only the
// PortfolioStats timing and cancellation counters vary.
//
// A nil or background ctx disables external cancellation. The zero
// Options value races the paper configuration against its four ablation
// flips (DefaultVariants); existing Compile call sites are unaffected.
func CompilePortfolio(ctx context.Context, k *ir.Kernel, m *machine.Machine, base Options, pf PortfolioOptions) (*Schedule, *PortfolioStats, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := k.Verify(); err != nil {
		return nil, nil, err
	}
	if err := checkUnits(k, m); err != nil {
		return nil, nil, err
	}
	g := depgraph.Build(k, m)
	minII, err := depgraph.ResMII(k, m)
	if err != nil {
		return nil, nil, err
	}
	maxII := base.MaxII
	if maxII == 0 {
		maxII = deriveMaxII(k, minII)
	}
	variants := pf.Variants
	if len(variants) == 0 {
		variants = DefaultVariants(base)
	}
	workers := pf.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	stats := &PortfolioStats{
		Workers:  workers,
		MinII:    minII,
		Winner:   -1,
		Variants: make([]VariantStats, len(variants)),
	}
	for i, v := range variants {
		stats.Variants[i].Name = v.Name
	}

	// best is the smallest interval proven schedulable so far (maxII+1
	// until one is); it only ever decreases. Attempts poll it locklessly
	// so cells above the best die quickly.
	var best atomic.Int64
	best.Store(int64(maxII) + 1)

	var (
		mu      sync.Mutex
		nextII  = minII
		nextVar = 0
		wins    = make(map[task]won)
	)
	// next claims the lexicographically next (interval, variant) cell.
	// Generation halts once the interval passes the current best: those
	// cells cannot improve the winner, and since best only decreases and
	// cells are claimed in ascending order, every cell at or below the
	// final winning interval is guaranteed to have been claimed.
	next := func() (task, bool) {
		mu.Lock()
		defer mu.Unlock()
		limit := int(best.Load())
		if limit > maxII {
			limit = maxII
		}
		if nextII > limit || ctx.Err() != nil {
			return task{}, false
		}
		t := task{ii: nextII, vi: nextVar}
		if nextVar++; nextVar == len(variants) {
			nextVar, nextII = 0, nextII+1
		}
		return t, true
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t, ok := next()
				if !ok {
					return
				}
				// A cell is cancellable only while a strictly smaller
				// interval has been proven: cells at the winning interval
				// always complete, keeping the winning set — and with it
				// the selection — deterministic.
				cancel := func() bool {
					return int(best.Load()) < t.ii || ctx.Err() != nil
				}
				var scratch Stats
				t0 := time.Now()
				e, aborted := tryII(k, m, g, variants[t.vi].Opts, t.ii, cancel, &scratch)
				elapsed := time.Since(t0)

				mu.Lock()
				vs := &stats.Variants[t.vi]
				vs.Wall += elapsed
				if aborted {
					vs.Cancelled++
					stats.Cancelled++
					mu.Unlock()
					continue
				}
				vs.IIsTried++
				stats.IIsTried++
				if e != nil {
					s := e.buildSchedule()
					copies := len(s.Ops) - len(k.Ops)
					wins[t] = won{sched: s, copies: copies}
					if vs.BestII == 0 || t.ii < vs.BestII {
						vs.BestII, vs.Copies = t.ii, copies
					}
					for {
						cur := best.Load()
						if int64(t.ii) >= cur || best.CompareAndSwap(cur, int64(t.ii)) {
							break
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	stats.Wall = time.Since(start)

	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	winII := int(best.Load())
	if winII > maxII {
		return nil, stats, fmt.Errorf("core: %s does not schedule on %s within II ≤ %d (portfolio of %d variants, %d attempts)",
			k.Name, m.Name, maxII, len(variants), stats.IIsTried)
	}
	// Deterministic selection among the cells at the winning interval:
	// fewest copies, then lowest variant index (the iteration order).
	winner, chosen := -1, won{}
	for vi := range variants {
		if r, ok := wins[task{ii: winII, vi: vi}]; ok {
			if winner < 0 || r.copies < chosen.copies {
				winner, chosen = vi, r
			}
		}
	}
	stats.Winner = winner
	stats.WinnerII = winII
	return chosen.sched, stats, nil
}
