package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
)

// This file implements portfolio compilation: the §4.6 ablations show
// that no single heuristic setting wins on every kernel/machine pair,
// so instead of committing to one configuration, CompilePortfolio races
// a portfolio of them and splits the initiation-interval search across
// a bounded pool of workers, cancelling attempts that can no longer
// win. Selection is deterministic — independent of worker count and
// scheduling order — so parallel runs are repeatable.

// Variant is one racing configuration of the portfolio: a named
// pipeline configuration realized as full scheduler options.
type Variant struct {
	Name string
	Opts Options
}

// DefaultVariants is the standard racing lineup derived from a base
// configuration: the base itself plus four pipeline reconfigurations —
// each §4.6/§6/§7 ablation switch of the base's PipelineConfig flipped,
// re-applied over the base's budgets and bounds. The base rides at
// index 0 so that on ties (same interval, same copies) the portfolio
// reproduces the sequential scheduler's choice.
func DefaultVariants(base Options) []Variant {
	pc := base.Pipeline()
	vary := func(name string, f func(*PipelineConfig)) Variant {
		v := pc
		f(&v)
		return Variant{Name: name, Opts: v.Apply(base)}
	}
	return []Variant{
		{Name: "base", Opts: base},
		vary("cost-heuristic", func(c *PipelineConfig) { c.CostHeuristic = !c.CostHeuristic }),
		vary("cycle-order", func(c *PipelineConfig) {
			if c.Order == OrderCycle {
				c.Order = OrderPriority
			} else {
				c.Order = OrderCycle
			}
		}),
		vary("two-phase", func(c *PipelineConfig) { c.Preassign = !c.Preassign }),
		vary("register-aware", func(c *PipelineConfig) { c.RegisterAware = !c.RegisterAware }),
	}
}

// PortfolioOptions configure CompilePortfolio beyond the base scheduler
// options.
type PortfolioOptions struct {
	// Workers bounds the goroutine pool; 0 or less means GOMAXPROCS.
	Workers int
	// Variants overrides the racing lineup; nil means
	// DefaultVariants(base).
	Variants []Variant
	// Pool, when non-nil, is the shared worker pool the race draws its
	// extra workers from (the caller's goroutine always races without a
	// slot). Share one Pool between the daemon, portfolio races, and
	// speculative interval searches to bound total parallelism
	// machine-wide; nil gives this race a private pool of Workers
	// slots. Like Workers, the pool never affects the result — only
	// how fast it arrives.
	Pool *Pool
}

// VariantStats instruments one configuration's share of a portfolio
// run. Wall times and cancellation counts depend on scheduling timing
// and vary between runs; everything derived from completed attempts
// (BestII, Copies) is deterministic.
type VariantStats struct {
	Name string
	// Pipeline is the variant's pipeline shape.
	Pipeline PipelineConfig
	// IIsTried counts single-interval attempts run to completion.
	IIsTried int
	// Cancelled counts attempts killed mid-flight because a smaller
	// interval had already been proven elsewhere.
	Cancelled int
	// BestII is the smallest interval this variant scheduled, 0 when it
	// never succeeded; Copies is its copy count at BestII.
	BestII int
	Copies int
	// Wall is the cumulative scheduling time across this variant's
	// attempts (concurrent attempts accumulate in parallel, so the sum
	// over variants can exceed the portfolio's wall clock).
	Wall time.Duration
}

// PortfolioStats records how a portfolio run unfolded.
type PortfolioStats struct {
	Workers int
	// MinII is the resource/recurrence lower bound on the interval.
	MinII int
	// Winner indexes Variants at the winning configuration, -1 when
	// nothing scheduled; WinnerII is the winning interval.
	Winner   int
	WinnerII int
	// IIsTried and Cancelled total the per-variant counters.
	IIsTried  int
	Cancelled int
	Wall      time.Duration
	Variants  []VariantStats
	// Passes aggregates per-pass counters and wall time across every
	// attempt of every variant (lower, regalloc, and verify run once,
	// on the parent compilation), in canonical pipeline order. Pass
	// wall sums across concurrent workers, so it can exceed Wall.
	Passes PassStats
}

// WinnerName returns the winning variant's name, "" when none won.
func (p *PortfolioStats) WinnerName() string {
	if p.Winner < 0 || p.Winner >= len(p.Variants) {
		return ""
	}
	return p.Variants[p.Winner].Name
}

// String renders a one-line-per-variant summary.
func (p *PortfolioStats) String() string {
	s := fmt.Sprintf("portfolio: %d workers, minII=%d, winner=%s II=%d, %d attempts (%d cancelled), %v",
		p.Workers, p.MinII, p.WinnerName(), p.WinnerII, p.IIsTried, p.Cancelled, p.Wall.Round(time.Microsecond))
	for _, v := range p.Variants {
		s += fmt.Sprintf("\n  %-14s %-40s tried=%-3d cancelled=%-3d bestII=%-3d copies=%-3d %v",
			v.Name, v.Pipeline, v.IIsTried, v.Cancelled, v.BestII, v.Copies, v.Wall.Round(time.Microsecond))
	}
	return s
}

// portfolioCtxError builds the structured report for a portfolio run
// abandoned by its context mid-race.
func portfolioCtxError(ctx context.Context, k *ir.Kernel, m *machine.Machine) *CompileError {
	kind, verb := KindCancelled, "cancelled"
	if ctx.Err() == context.DeadlineExceeded {
		kind, verb = KindDeadlineExceeded, "deadline exceeded"
	}
	ce := compileErrorf(PassPlace, "%s on %s: portfolio compilation %s", k.Name, m.Name, verb)
	ce.Kind = kind
	return ce
}

// task is one cell of the (interval, variant) search grid.
type task struct {
	ii int
	vi int
}

// won is one successful grid cell.
type won struct {
	eng    *engine
	copies int
}

// CompilePortfolio schedules kernel k onto machine m by racing a
// portfolio of scheduler configurations across a bounded worker pool.
// The search space is the grid of (initiation interval, variant) cells,
// explored in ascending interval order; a worker claims the next cell
// and runs a complete single-interval scheduling attempt for it. As
// soon as some cell schedules, cells at larger intervals are pruned and
// any attempts already running there are cancelled through ctx-style
// polling — including the moment a variant proves the ResMII lower
// bound, which cancels everything else in flight.
//
// The winner is chosen deterministically: smallest interval, then
// fewest inserted copies, then lowest variant index. Because every cell
// at an interval no larger than the winning one is always run to
// completion (cancellation only ever kills cells that cannot win), the
// result is bit-identical across runs and worker counts; only the
// PortfolioStats timing and cancellation counters vary.
//
// A nil or background ctx disables external cancellation. The zero
// Options value races the paper configuration against its four ablation
// flips (DefaultVariants); existing Compile call sites are unaffected.
func CompilePortfolio(ctx context.Context, k *ir.Kernel, m *machine.Machine, base Options, pf PortfolioOptions) (*Schedule, *PortfolioStats, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	c := &Compilation{Kernel: k, Machine: m, Opts: base, clock: new(passClock)}
	if err := base.ValidateFor(m); err != nil {
		return nil, nil, c.decorate(err)
	}
	variants := pf.Variants
	if len(variants) == 0 {
		variants = DefaultVariants(base)
	}
	for _, v := range variants {
		if err := v.Opts.ValidateFor(m); err != nil {
			if ce, ok := err.(*CompileError); ok {
				ce.Reason = fmt.Sprintf("variant %q: %s", v.Name, ce.Reason)
			}
			return nil, nil, c.decorate(err)
		}
	}
	if err := c.runPass(lowerPass{}); err != nil {
		return nil, nil, c.decorate(err)
	}
	g, minII, maxII := c.Graph, c.MinII, c.MaxII
	workers := pf.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Tracing a race: concurrent attempts would interleave in the shared
	// tracer nondeterministically, so each attempt records into a private
	// child recorder, and after the race the streams of every completed
	// cell at or below the winning interval — exactly the cells that are
	// always claimed and never cancelled, hence deterministic — are
	// spliced into the base tracer in (interval, variant) grid order.
	// Streams of cancelled or above-winner attempts are dropped; the only
	// timing-dependent residue is the per-variant cancel counts.
	tracer := base.Tracer
	if tracer != nil {
		for i, v := range variants {
			tracer.Emit(obs.Event{
				Kind: obs.KindVariantBegin, Track: "portfolio", Name: v.Name, Op: int32(i),
			})
		}
	}

	stats := &PortfolioStats{
		Workers:  workers,
		MinII:    minII,
		Winner:   -1,
		Variants: make([]VariantStats, len(variants)),
	}
	for i, v := range variants {
		stats.Variants[i].Name = v.Name
		stats.Variants[i].Pipeline = v.Opts.Pipeline()
	}

	// best is the smallest interval proven schedulable so far (maxII+1
	// until one is); it only ever decreases. Attempts poll it locklessly
	// so cells above the best die quickly.
	var best atomic.Int64
	best.Store(int64(maxII) + 1)

	var (
		mu      sync.Mutex
		nextII  = minII
		nextVar = 0
		wins    = make(map[task]won)
		recs    map[task]*obs.Recorder
		passes  PassStats
		// intErr is the first internal (recovered panic) error in grid
		// order; once one strikes, cell generation halts and the race
		// drains. Grid order keeps the reported error deterministic even
		// when several workers panic concurrently.
		intErr   error
		intErrAt task
	)
	if tracer != nil {
		recs = make(map[task]*obs.Recorder)
	}
	// next claims the lexicographically next (interval, variant) cell.
	// Generation halts once the interval passes the current best: those
	// cells cannot improve the winner, and since best only decreases and
	// cells are claimed in ascending order, every cell at or below the
	// final winning interval is guaranteed to have been claimed.
	next := func() (task, bool) {
		mu.Lock()
		defer mu.Unlock()
		limit := int(best.Load())
		if limit > maxII {
			limit = maxII
		}
		if nextII > limit || ctx.Err() != nil || intErr != nil {
			return task{}, false
		}
		t := task{ii: nextII, vi: nextVar}
		if nextVar++; nextVar == len(variants) {
			nextVar, nextII = 0, nextII+1
		}
		return t, true
	}

	// attempt runs one grid cell under panic isolation: a panic that
	// escapes tryII's per-pass recovery (or one injected at the
	// portfolio fault site) is converted into a structured internal
	// error instead of crashing the whole process from a bare worker
	// goroutine. An Exhaust rule at the portfolio site makes the cell
	// report infeasible, as if its budgets were spent.
	attempt := func(t task, opts Options, cancel func() bool, scratch *Stats, ps *PassStats) (e *engine, aborted bool, err error) {
		defer func() {
			if r := recover(); r != nil {
				e, aborted = nil, false
				err = &CompileError{
					Kind:   KindInternal,
					Pass:   PassPlace,
					Reason: fmt.Sprintf("internal error racing variant %q at II %d: %v", variants[t.vi].Name, t.ii, r),
					Op:     NoOp,
					II:     t.ii,
					Stack:  string(debug.Stack()),
				}
			}
		}()
		if base.Faults.Probe(faultinject.SitePortfolio, variants[t.vi].Name) {
			return nil, false, nil
		}
		// Fresh memo per grid cell: the portfolio's deterministic
		// trace-splicing and per-variant counters require each cell to
		// be a pure function of its configuration, which a memo shared
		// across concurrently racing cells would break.
		return tryII(k, m, g, opts, t.ii, cancel, newPermMemo(), scratch, ps, nil)
	}

	pool := pf.Pool
	if pool == nil {
		pool = NewPool(workers)
	}
	pool.Fan(workers, func(int) {
		for {
			t, ok := next()
			if !ok {
				return
			}
			// A cell is cancellable only while a strictly smaller
			// interval has been proven: cells at the winning interval
			// always complete, keeping the winning set — and with it
			// the selection — deterministic.
			cancel := func() bool {
				return int(best.Load()) < t.ii || ctx.Err() != nil
			}
			opts := variants[t.vi].Opts
			if tracer != nil {
				// Private recorder per attempt; spliced (or dropped)
				// after the race for a deterministic merged stream.
				rec := obs.NewRecorder()
				opts.Tracer = rec
				mu.Lock()
				recs[t] = rec
				mu.Unlock()
			}
			var scratch Stats
			var ps PassStats
			t0 := time.Now()
			e, aborted, aerr := attempt(t, opts, cancel, &scratch, &ps)
			elapsed := time.Since(t0)

			mu.Lock()
			passes.Merge(ps)
			vs := &stats.Variants[t.vi]
			vs.Wall += elapsed
			if aerr != nil {
				if intErr == nil || t.ii < intErrAt.ii || (t.ii == intErrAt.ii && t.vi < intErrAt.vi) {
					intErr, intErrAt = aerr, t
				}
				delete(recs, t) // partial stream of a dying attempt
				mu.Unlock()
				continue
			}
			if aborted {
				vs.Cancelled++
				stats.Cancelled++
				delete(recs, t) // cancelled stream: timing-dependent, dropped
				mu.Unlock()
				continue
			}
			vs.IIsTried++
			stats.IIsTried++
			if e != nil {
				copies := len(e.ops) - len(k.Ops)
				wins[t] = won{eng: e, copies: copies}
				if vs.BestII == 0 || t.ii < vs.BestII {
					vs.BestII, vs.Copies = t.ii, copies
				}
				for {
					cur := best.Load()
					if int64(t.ii) >= cur || best.CompareAndSwap(cur, int64(t.ii)) {
						break
					}
				}
			}
			mu.Unlock()
		}
	})

	finish := func() {
		stats.Passes = append(PassStats(nil), c.clock.stats...)
		stats.Passes.Merge(passes)
		stats.Passes.sortCanonical()
		stats.Wall = time.Since(start)
	}

	if intErr != nil {
		finish()
		return nil, stats, c.decorate(intErr)
	}
	if ctx.Err() != nil {
		finish()
		return nil, stats, c.decorate(portfolioCtxError(ctx, k, m))
	}
	winII := int(best.Load())
	if winII > maxII {
		finish()
		return nil, stats, c.decorate(compileErrorf(PassPlace,
			"%s does not schedule on %s within II ≤ %d (portfolio of %d variants, %d attempts)",
			k.Name, m.Name, maxII, len(variants), stats.IIsTried))
	}
	// Deterministic selection among the cells at the winning interval:
	// fewest copies, then lowest variant index (the iteration order).
	winner, chosen := -1, won{}
	for vi := range variants {
		if r, ok := wins[task{ii: winII, vi: vi}]; ok {
			if winner < 0 || r.copies < chosen.copies {
				winner, chosen = vi, r
			}
		}
	}
	stats.Winner = winner
	stats.WinnerII = winII
	if tracer != nil {
		// Splice the per-attempt streams in grid order. Every cell at an
		// interval ≤ the winning one ran to completion (best never drops
		// below winII, so those cells are never cancelled), making this
		// prefix of the merged trace deterministic.
		for ii := minII; ii <= winII; ii++ {
			for vi := range variants {
				rec := recs[task{ii: ii, vi: vi}]
				if rec == nil {
					continue
				}
				for _, ev := range rec.Events() {
					ev.Seq = 0
					tracer.Emit(ev)
				}
			}
		}
		for vi := range variants {
			tracer.Emit(obs.Event{
				Kind: obs.KindVariantCancel, Track: "portfolio", Name: variants[vi].Name,
				Op: int32(vi), Value: int64(stats.Variants[vi].Cancelled), HasValue: true,
			})
		}
		tracer.Emit(obs.Event{
			Kind: obs.KindVariantWin, Track: "portfolio", Name: variants[winner].Name,
			Op: int32(winner), II: int32(winII),
		})
	}
	c.eng = chosen.eng
	c.II = winII
	if err := c.runPass(regallocPass{}); err != nil {
		finish()
		return nil, stats, c.decorate(err)
	}
	if err := c.runPass(verifyPass{}); err != nil {
		finish()
		return nil, stats, c.decorate(err)
	}
	finish()
	c.sched.Passes = stats.Passes
	c.sched.Diags = c.Diags
	return c.sched, stats, nil
}
