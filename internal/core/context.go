package core

import (
	"context"
	"time"

	"repro/internal/ir"
	"repro/internal/machine"
)

// This file is the context-aware entry point of the compiler and the
// graceful-degradation ladder built on top of it. CompileContext wires
// the caller's context into the scheduler's hot loops (cooperative
// cancellation, amortized to one latched-flag check per solver step —
// see engine.solverStep) and, when Options.Degrade is set, retries a
// schedule-search failure with progressively cheaper configurations
// instead of failing outright.

// CompileContext is Compile observing a context: cancellation and
// deadlines propagate into the interval search, the place pass's
// per-operation loop, and the §4.4 permutation solver, which unwind
// through the existing rollback journal and return a structured
// CompileError of kind KindCancelled or KindDeadlineExceeded carrying
// the pass, interval, and operation in flight. With a background
// context and the default options, CompileContext is bit-identical to
// Compile (the cancellation hook is never armed).
//
// When opts.Degrade is non-nil, a schedule-search failure (and only
// that kind — invalid input, cancellation, and internal errors are
// returned as-is) is retried down the ladder's rungs; a schedule won
// by a rung reports which one in Schedule.Degraded. When the context
// carries a deadline, each attempt gets an even slice of the time
// remaining, so the primary configuration cannot starve the ladder.
func CompileContext(ctx context.Context, k *ir.Kernel, m *machine.Machine, opts Options) (*Schedule, error) {
	ladder := opts.Degrade
	if ladder == nil || len(ladder.Rungs) == 0 {
		return compileOnce(ctx, k, m, opts)
	}

	attemptsLeft := 1 + len(ladder.Rungs)
	sched, err := compileSlice(ctx, k, m, opts, attemptsLeft)
	if err == nil {
		return sched, nil
	}
	primary := err
	for _, rung := range ladder.Rungs {
		attemptsLeft--
		if !degradable(ctx, err) {
			return nil, err
		}
		traceDegrade(opts.Tracer, rung.Name)
		sched, err = compileSlice(ctx, k, m, rung.apply(opts), attemptsLeft)
		if err == nil {
			sched.Degraded = rung.Name
			return sched, nil
		}
	}
	if !degradable(ctx, err) {
		// The ladder's last rung was cancelled or died internally:
		// report that, not the older schedule failure.
		return nil, err
	}
	// Every rung failed to schedule too; the primary configuration's
	// report is the representative one (the rungs only search less).
	return nil, primary
}

// compileSlice runs one configuration under an even slice of the
// context's remaining deadline (the whole context when it carries no
// deadline, or when this is the last attempt).
func compileSlice(ctx context.Context, k *ir.Kernel, m *machine.Machine, opts Options, attemptsLeft int) (*Schedule, error) {
	if dl, ok := ctx.Deadline(); ok && attemptsLeft > 1 {
		if remaining := time.Until(dl); remaining > 0 {
			sliced, cancel := context.WithTimeout(ctx, remaining/time.Duration(attemptsLeft))
			defer cancel()
			ctx = sliced
		}
	}
	return compileOnce(ctx, k, m, opts)
}

// degradable reports whether err is a failure the ladder may retry: a
// schedule-search failure, or a deadline that was only the attempt's
// time slice expiring (the parent context is still live).
func degradable(ctx context.Context, err error) bool {
	ce, ok := err.(*CompileError)
	if !ok {
		return false
	}
	switch ce.Kind {
	case KindSchedule:
		return true
	case KindDeadlineExceeded:
		return ctx.Err() == nil
	}
	return false
}

// DegradeLadder is an ordered list of fallback configurations tried
// after the primary one fails to schedule: each rung trades schedule
// quality or search completeness for compile time. DefaultDegradeLadder
// is the stock ladder; callers can build their own.
type DegradeLadder struct {
	Rungs []DegradeRung
}

// DegradeRung is one fallback configuration: the fields that are set
// override the caller's options, the rest are inherited. A rung never
// recurses into the ladder (its options compile with Degrade cleared).
type DegradeRung struct {
	// Name identifies the rung in Schedule.Degraded, stats output, and
	// trace events.
	Name string
	// Pipeline, when non-nil, replaces the ablation switches with this
	// pipeline shape (e.g. greedy cycle order without the cost
	// heuristic).
	Pipeline *PipelineConfig
	// MaxII, when positive, replaces the interval cap outright.
	MaxII int
	// MaxIIBoost, when positive, raises a caller-set interval cap by
	// this much (ignored when the caller left MaxII 0, which already
	// derives a generous bound).
	MaxIIBoost int
	// PermBudget, when positive, replaces the §4.4 permutation budget
	// (typically shrinking it).
	PermBudget int
	// AttemptBudget, when positive, replaces the per-operation
	// placement budget.
	AttemptBudget int
	// ScanWindow, when positive, replaces the cycle scan window.
	ScanWindow int
}

// apply returns base reconfigured by the rung.
func (r DegradeRung) apply(base Options) Options {
	o := base
	if r.Pipeline != nil {
		o = r.Pipeline.Apply(o)
	}
	if r.MaxII > 0 {
		o.MaxII = r.MaxII
	} else if r.MaxIIBoost > 0 && base.MaxII > 0 {
		o.MaxII = base.MaxII + r.MaxIIBoost
	}
	if r.PermBudget > 0 {
		o.PermBudget = r.PermBudget
	}
	if r.AttemptBudget > 0 {
		o.AttemptBudget = r.AttemptBudget
	}
	if r.ScanWindow > 0 {
		o.ScanWindow = r.ScanWindow
	}
	o.Degrade = nil
	return o
}

// DefaultDegradeLadder is the stock three-rung ladder:
//
//  1. fast-search — the paper's configuration with sharply cut solver
//     budgets, for kernels where the full search burns its budget on
//     hopeless permutations;
//  2. relaxed-ii — a caller-set interval cap raised by 64 (moderate
//     budgets), trading initiation interval for feasibility;
//  3. greedy — cycle-order placement without the cost heuristic and
//     minimal budgets: the cheapest pipeline that still produces a
//     verified schedule.
func DefaultDegradeLadder() *DegradeLadder {
	return &DegradeLadder{Rungs: []DegradeRung{
		{Name: "fast-search", PermBudget: 512, AttemptBudget: 32},
		{Name: "relaxed-ii", MaxIIBoost: 64, PermBudget: 1024},
		{Name: "greedy", Pipeline: &PipelineConfig{Order: OrderCycle, Preassign: false, CostHeuristic: false}, PermBudget: 256, AttemptBudget: 16},
	}}
}
