package core

import (
	"repro/internal/faultinject"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/rules"
)

// This file implements the stub-permutation searches of §4.3 steps 2–3
// with the bounded backtracking of §4.4: "orders the communications,
// then finds the first stub for each communication that does not
// conflict with the stub found for a previous communication", falling
// back when a communication's candidates are exhausted, and giving up
// after a bounded number of partial permutations. Closed communications
// keep their stubs; open and closing communications may be reassigned
// ("communication scheduling may change the stub assigned to the open
// communication", §4.2). Closing communications go first, smallest copy
// range first.
//
// Conflict checking is the §4.2 rules engine in internal/rules. The
// whole path is allocation-free in steady state: candidate lists come
// interned from the machine's routing index (or are carved from the
// engine's reusable arena), the flex/choice working sets are engine
// scratch, dedup is an epoch-stamped array (the rules.Occupancy
// pattern), and the solver's sorts are manual stable insertion sorts.

// writeIdentity returns the value-instance identity of a communication's
// write event: the value and the flat cycle the write occurs on.
func (e *engine) writeIdentity(c *comm) rules.Value {
	return rules.Value{ID: c.value, Flat: int32(e.completionFlat(c.def))}
}

// readIdentity returns the value-instance identity of an operand's read
// event. Loop-invariant values (defined in the preamble, read in the
// loop) are identified by value alone: every iteration reads the same
// instance. Loop-carried reads are normalized by distance·II so that
// reads landing on the same absolute cycle compare equal exactly when
// they fetch the same dynamic instance. Multi-source (phi) operands are
// never shareable.
func (e *engine) readIdentity(key OperandKey) rules.Value {
	var only *comm
	n := 0
	for _, cid := range e.commsTo[key.Op] {
		c := e.comms[cid]
		if c.state == commSplit || c.slot != key.Slot {
			continue
		}
		only = c
		n++
	}
	rflat := e.place[key.Op].cycle
	if n != 1 {
		return rules.Value{ID: ir.NoValue, Flat: int32(rflat), Uniq: opndNonce(key)}
	}
	if e.crossBlock(only) {
		return rules.Value{ID: only.value, Inv: true}
	}
	return rules.Value{ID: only.value, Flat: int32(rflat - only.distance*e.blockII(e.ops[key.Op].Block))}
}

// flexWrite is one write-side item of a permutation problem. cands
// indexes into base (a shared machine stub slice).
type flexWrite struct {
	id      CommID
	base    []machine.WriteStub
	cands   []int32
	closing bool
	rangeW  int
	val     rules.Value
}

// flexRead is one read-side item.
type flexRead struct {
	key     OperandKey
	base    []machine.ReadStub
	cands   []int32
	closing bool
	rangeW  int
	val     rules.Value
}

// permBudgetDefault bounds the permutation search steps.
const permBudgetDefault = 4096

// noOperand is the absent-pin sentinel for solveReads.
var noOperand = OperandKey{Op: ir.NoOp}

// solveWrites finds a conflict-free permutation of write stubs for the
// communications whose write lands on cycle key (§4.3 step 3). A pin
// (pin != noComm) steers one communication onto register file pinRF,
// used when a closing communication is routed. On success the chosen
// stubs are recorded (journaled) and the function returns true; on
// failure no state changes.
func (e *engine) solveWrites(key tKey, pin CommID, pinRF machine.RFID) bool {
	o := e.occ
	o.Reset()
	undo := e.undoScratch[:0]
	defer func() { e.undoScratch = undo[:0] }()
	e.i32Arena = e.i32Arena[:0]

	// The infeasibility memo's problem signature accumulates alongside
	// the obstacle placements and flex-item construction below, so a
	// solve that fails before the search starts pays only the mixing of
	// what it had built so far.
	memo := e.memo
	var sig memoSig
	if memo != nil {
		sig = newMemoSig(1)
	}

	// Obstacles: read stubs assigned on the same cycle, then pinned
	// write stubs.
	for _, ok := range e.readsAt[key] {
		if or, have := e.operandStub[ok]; have {
			val := e.readIdentity(ok)
			var fits bool
			undo, fits = o.PlaceRead(or.stub, val, opndNonce(ok), undo)
			if !fits {
				o.Undo(undo)
				return false
			}
			if memo != nil {
				sig.mixReadStub(or.stub)
				sig.mixValue(val)
				sig.mix(uint64(uint32(opndNonce(ok))))
			}
		}
	}
	flex := e.flexW[:0]
	defer func() { e.flexW = flex[:0] }()
	for _, cid := range e.writesAt[key] {
		c := e.comms[cid]
		if c.state == commSplit {
			continue
		}
		val := e.writeIdentity(c)
		if c.state == commClosed || c.wPinned {
			var fits bool
			undo, fits = o.PlaceWrite(c.wstub, val, undo)
			if !fits {
				o.Undo(undo)
				return false
			}
			if memo != nil {
				sig.mixWriteStub(c.wstub)
				sig.mixValue(val)
			}
			continue
		}
		base, idx, wk := e.writeCandIndex(c)
		stable := cid != pin
		if cid == pin {
			idx = e.filterWriteIdx(base, idx, pinRF)
		}
		// Sibling-bus promotion applies only the first time each (unit,
		// target) list is requested over the engine's lifetime — the
		// semantics of the legacy candidate cache, which returned the
		// cached (unpartitioned) list on every later request. The goldens
		// pin this, and it is the cheap case: a promoted order matters
		// most before siblings have stubs to clash with.
		if _, served := e.wcServed[wk]; !served {
			e.wcServed[wk] = struct{}{}
			old := idx
			idx = e.preferSiblingBuses(c, base, idx)
			if len(idx) != len(old) || (len(idx) > 0 && &idx[0] != &old[0]) {
				stable = false // promotion built an arena copy
			}
		}
		if len(idx) == 0 {
			o.Undo(undo)
			return false
		}
		if memo != nil {
			sig.mixValue(val)
			sig.mix(e.writeListSig(base, idx, stable))
		}
		flex = append(flex, flexWrite{
			id:      cid,
			base:    base,
			cands:   idx,
			closing: e.place[c.use].ok,
			rangeW:  e.copyRange(c),
			val:     val,
		})
	}
	// Stable insertion sort: closing first, then smallest copy range.
	for i := 1; i < len(flex); i++ {
		for j := i; j > 0 && flexLess(flex[j].closing, flex[j].rangeW, flex[j-1].closing, flex[j-1].rangeW); j-- {
			flex[j], flex[j-1] = flex[j-1], flex[j]
		}
	}
	var mk memoKey
	if memo != nil {
		if mk = sig.key(); memo.hit(mk) {
			e.stats.MemoHits++
			e.tracePermMemo()
			o.Undo(undo)
			return false
		}
	}
	budget := e.solveBudget()
	choice := e.choiceScratch(len(flex))
	okAll, undoAll := e.dfsWrites(o, flex, choice, 0, &budget, undo)
	undo = undoAll
	o.Undo(undo)
	if !okAll {
		// Record only completed failures: a search abandoned by budget
		// exhaustion (real or fault-injected, both leave budget at 0) or
		// by cancellation proves nothing about the problem.
		if memo != nil && budget > 0 && !e.aborted {
			memo.record(mk)
		}
		return false
	}
	for i, f := range flex {
		e.setCommW(e.comms[f.id], f.base[f.cands[choice[i]]], false)
	}
	return true
}

// solveReads is the read-side analogue (§4.3 step 2): a conflict-free
// permutation of read stubs for the operands read on cycle key. A pin
// (pin != noOperand) steers one operand onto register file pinRF.
func (e *engine) solveReads(key tKey, pin OperandKey, pinRF machine.RFID) bool {
	o := e.occ
	o.Reset()
	undo := e.undoScratch[:0]
	defer func() { e.undoScratch = undo[:0] }()
	e.i32Arena = e.i32Arena[:0]

	memo := e.memo
	var sig memoSig
	if memo != nil {
		sig = newMemoSig(2)
	}
	for _, cid := range e.writesAt[key] {
		c := e.comms[cid]
		if c.state == commSplit || !c.hasW {
			continue
		}
		val := e.writeIdentity(c)
		var fits bool
		undo, fits = o.PlaceWrite(c.wstub, val, undo)
		if !fits {
			o.Undo(undo)
			return false
		}
		if memo != nil {
			sig.mixWriteStub(c.wstub)
			sig.mixValue(val)
		}
	}
	flex := e.flexR[:0]
	defer func() { e.flexR = flex[:0] }()
	e.opndEpoch++
	for _, ok := range e.readsAt[key] {
		if e.opndSeen(ok) {
			continue
		}
		val := e.readIdentity(ok)
		if or, have := e.operandStub[ok]; have && or.pinned {
			var fits bool
			undo, fits = o.PlaceRead(or.stub, val, opndNonce(ok), undo)
			if !fits {
				o.Undo(undo)
				return false
			}
			if memo != nil {
				sig.mixReadStub(or.stub)
				sig.mixValue(val)
				sig.mix(uint64(uint32(opndNonce(ok))))
			}
			continue
		}
		base, idx, stable := e.readCandIndex(ok)
		if ok == pin {
			idx = e.filterReadIdx(base, idx, pinRF)
			stable = false
		}
		if len(idx) == 0 {
			o.Undo(undo)
			return false
		}
		closing, rangeW := e.operandClosing(ok)
		if memo != nil {
			sig.mixValue(val)
			sig.mix(uint64(uint32(opndNonce(ok))))
			sig.mix(e.readListSig(base, idx, stable))
		}
		flex = append(flex, flexRead{
			key: ok, base: base, cands: idx, closing: closing, rangeW: rangeW, val: val,
		})
	}
	for i := 1; i < len(flex); i++ {
		for j := i; j > 0 && flexLess(flex[j].closing, flex[j].rangeW, flex[j-1].closing, flex[j-1].rangeW); j-- {
			flex[j], flex[j-1] = flex[j-1], flex[j]
		}
	}
	var mk memoKey
	if memo != nil {
		if mk = sig.key(); memo.hit(mk) {
			e.stats.MemoHits++
			e.tracePermMemo()
			o.Undo(undo)
			return false
		}
	}
	budget := e.solveBudget()
	choice := e.choiceScratch(len(flex))
	okAll, undoAll := e.dfsReads(o, flex, choice, 0, &budget, undo)
	undo = undoAll
	o.Undo(undo)
	if !okAll {
		// Record only completed failures (see solveWrites).
		if memo != nil && budget > 0 && !e.aborted {
			memo.record(mk)
		}
		return false
	}
	for i, f := range flex {
		e.setOperandStub(f.key, f.base[f.cands[choice[i]]], false, f.val.Uniq != 0)
	}
	return true
}

// flexLess is the permutation ordering: closing items first, then
// ascending copy range. Strict, so insertion sort on it is stable.
func flexLess(aClosing bool, aRange int, bClosing bool, bRange int) bool {
	if aClosing != bClosing {
		return aClosing
	}
	return aRange < bRange
}

// opndSeen dedups operands within one solve via the epoch-stamped mark
// array (the rules.Occupancy reset-free pattern): reports whether the
// operand was already visited this epoch and marks it.
func (e *engine) opndSeen(key OperandKey) bool {
	idx := int(key.Op)*8 + key.Slot
	if idx >= len(e.opndMark) {
		e.opndMark = append(e.opndMark, make([]int32, idx+64-len(e.opndMark))...)
	}
	if e.opndMark[idx] == e.opndEpoch {
		return true
	}
	e.opndMark[idx] = e.opndEpoch
	return false
}

func (e *engine) permBudget() int {
	if e.opts.PermBudget > 0 {
		return e.opts.PermBudget
	}
	return permBudgetDefault
}

// solveBudget starts a fresh per-solve step budget and forces the next
// solverStep to poll, so cancellation and injected exhaustion are
// observed at every solve boundary regardless of the amortized
// countdown's phase.
func (e *engine) solveBudget() int {
	if e.pollCountdown > 1 {
		e.pollCountdown = 1
	}
	return e.permBudget()
}

// cancelPollInterval amortizes cancellation polling in the solver hot
// loops: every search step pays only a latched-flag check, and a real
// poll of the cancellation hook (plus a fault-plane probe) runs every
// this many steps — so cancellation latency is bounded by the interval
// while the steady-state per-step cost stays one branch.
const cancelPollInterval = 64

// solverStep accounts one §4.4 permutation-search step and reports
// whether the search may continue: false on budget exhaustion, on
// observed cancellation, or when the fault plane injects a forced
// exhaustion. The countdown persists across solve calls, so the
// amortization bound holds globally, not per solve.
func (e *engine) solverStep(budget *int) bool {
	if *budget <= 0 || e.aborted {
		return false
	}
	*budget--
	e.stats.PermSteps++
	if e.pollCountdown--; e.pollCountdown <= 0 {
		e.pollCountdown = cancelPollInterval
		if e.cancelled() {
			return false
		}
		if e.faults != nil && e.faults.Probe(faultinject.SiteSolver, "") {
			*budget = 0
			return false
		}
	}
	return true
}

func (e *engine) dfsWrites(o *rules.Occupancy, flex []flexWrite, choice []int, i int, budget *int, undo []rules.Undo) (bool, []rules.Undo) {
	if i == len(flex) {
		return true, undo
	}
	f := &flex[i]
	traced := e.tracer != nil
	for ci, candIdx := range f.cands {
		cand := f.base[candIdx]
		if !e.solverStep(budget) {
			return false, undo
		}
		if traced {
			e.tracePerm(obs.KindPermAttempt, i, int32(f.id))
		}
		mark := len(undo)
		var fits bool
		undo, fits = o.PlaceWrite(cand, f.val, undo)
		if !fits {
			if traced {
				e.tracePerm(obs.KindPermReject, i, int32(f.id))
			}
			continue
		}
		choice[i] = ci
		var ok bool
		ok, undo = e.dfsWrites(o, flex, choice, i+1, budget, undo)
		if ok {
			if traced {
				e.tracePerm(obs.KindPermAccept, i, int32(f.id))
			}
			return true, undo
		}
		if traced {
			e.tracePerm(obs.KindPermReject, i, int32(f.id))
		}
		o.Undo(undo[mark:])
		undo = undo[:mark]
	}
	return false, undo
}

func (e *engine) dfsReads(o *rules.Occupancy, flex []flexRead, choice []int, i int, budget *int, undo []rules.Undo) (bool, []rules.Undo) {
	if i == len(flex) {
		return true, undo
	}
	f := &flex[i]
	traced := e.tracer != nil
	for ci, candIdx := range f.cands {
		cand := f.base[candIdx]
		if !e.solverStep(budget) {
			return false, undo
		}
		if traced {
			e.tracePerm(obs.KindPermAttempt, i, opndNonce(f.key))
		}
		mark := len(undo)
		var fits bool
		undo, fits = o.PlaceRead(cand, f.val, opndNonce(f.key), undo)
		if !fits {
			if traced {
				e.tracePerm(obs.KindPermReject, i, opndNonce(f.key))
			}
			continue
		}
		choice[i] = ci
		var ok bool
		ok, undo = e.dfsReads(o, flex, choice, i+1, budget, undo)
		if ok {
			if traced {
				e.tracePerm(obs.KindPermAccept, i, opndNonce(f.key))
			}
			return true, undo
		}
		if traced {
			e.tracePerm(obs.KindPermReject, i, opndNonce(f.key))
		}
		o.Undo(undo[mark:])
		undo = undo[:mark]
	}
	return false, undo
}

// opndNonce uniquely identifies an operand for input-exclusivity
// checks.
func opndNonce(key OperandKey) int32 { return int32(key.Op)*8 + int32(key.Slot) + 1 }

// operandClosing reports whether any communication into the operand is
// closing, and the smallest copy range among them.
func (e *engine) operandClosing(key OperandKey) (bool, int) {
	closing, rangeW := false, unboundedRange
	for _, cid := range e.commsTo[key.Op] {
		c := e.comms[cid]
		if c.state == commSplit || c.slot != key.Slot || c.state == commClosed {
			continue
		}
		if e.place[c.def].ok {
			closing = true
			if r := e.copyRange(c); r < rangeW {
				rangeW = r
			}
		}
	}
	return closing, rangeW
}
