package core

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

// chainKernel builds a preamble-only dependence chain of n adds.
func chainKernel(t *testing.T, n int) *ir.Kernel {
	t.Helper()
	b := ir.NewBuilder("chain")
	v := b.Emit(ir.MovI, "v0", b.Const(1))
	for i := 0; i < n; i++ {
		v = b.Emit(ir.Add, "v", b.Val(v), b.Const(1))
	}
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// motivatingKernel is the Fig. 4 code fragment: a load, two adds, and
// two dependent adds sharing the loaded value.
func motivatingKernel(t *testing.T) *ir.Kernel {
	t.Helper()
	b := ir.NewBuilder("fig4")
	a := b.Emit(ir.Load, "a", b.Const(100), b.Const(0))
	bb := b.Emit(ir.Add, "b", b.Const(1), b.Const(2))
	c := b.Emit(ir.Add, "c", b.Const(3), b.Const(4))
	b.Emit(ir.Add, "d", b.Val(a), b.Val(bb))
	b.Emit(ir.Add, "e", b.Val(a), b.Val(c))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// accLoopKernel builds a loop with a load feeding a multiply feeding an
// accumulator, the standard inner-product shape.
func accLoopKernel(t *testing.T) *ir.Kernel {
	t.Helper()
	b := ir.NewBuilder("acc")
	iv, _ := b.InductionVar("i", 0, 1)
	acc0 := b.Emit(ir.MovI, "acc0", b.Const(0))
	b.Loop()
	x := b.Emit(ir.Load, "x", iv, b.Const(0))
	p := b.Emit(ir.Mul, "p", b.Val(x), b.Const(3))
	b.Accumulator(ir.Add, "acc", acc0, b.Val(p))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestChainOnAllArchitectures(t *testing.T) {
	machines := []*machine.Machine{
		machine.Central(), machine.Clustered(2), machine.Clustered(4), machine.Distributed(),
	}
	k := chainKernel(t, 6)
	for _, m := range machines {
		s, err := Compile(k, m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		// Pure chain with unit-latency adds plus the initial movi:
		// preamble length is at least 7.
		if s.PreambleLen < 7 {
			t.Errorf("%s: preamble length %d < 7", m.Name, s.PreambleLen)
		}
		if err := checkScheduleInvariants(s); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestMotivatingExample(t *testing.T) {
	m := machine.MotivatingExample()
	k := motivatingKernel(t)
	s, err := Compile(k, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", s.Dump())
	if err := checkScheduleInvariants(s); err != nil {
		t.Error(err)
	}
	// The shared buses force at least one copy operation (the paper's
	// Fig. 7 shows one); the schedule must stay short.
	if got := len(s.Ops) - len(k.Ops); got < 1 {
		t.Errorf("no copies inserted; expected the shared interconnect to force at least one")
	}
	if s.PreambleLen > 5 {
		t.Errorf("schedule length %d, want <= 5", s.PreambleLen)
	}
}

// checkScheduleInvariants validates structural properties every
// schedule must have: placements on capable units, dependences
// respected, routes connected.
func checkScheduleInvariants(s *Schedule) error {
	return VerifySchedule(s)
}
