package core

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

func TestMaxIIExhaustion(t *testing.T) {
	// A multiply kernel on a machine whose only multiplier is missing
	// fails cleanly (class error), and an impossible II cap fails with
	// the attempts diagnostic.
	k := accLoopKernel(t)
	_, err := Compile(k, machine.Central(), Options{MaxII: 0})
	if err != nil {
		t.Fatalf("unrestricted compile failed: %v", err)
	}
	// The recurrence admits II=1, so MaxII=1 is satisfiable on central;
	// pick a machine where it is not: clustered needs II 2+ here.
	_, err = Compile(k, machine.Clustered(4), Options{MaxII: 1})
	if err == nil {
		t.Skip("clustered schedules this at II=1 after all")
	}
	if !strings.Contains(err.Error(), "does not schedule") {
		t.Errorf("error = %v, want schedule-failure diagnostic", err)
	}
}

func TestTinyPermBudgetStillCorrect(t *testing.T) {
	// Starving the permutation search may cost performance — or, when
	// starved below what a single cycle's communications need, fail to
	// schedule ("an arbitrary, relatively large, number", §4.4) — but
	// it must never produce an invalid schedule.
	k := wideLoopKernel(t, 4)
	base, err := Compile(k, machine.Distributed(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{4, 64, 512} {
		s, err := Compile(k, machine.Distributed(), Options{PermBudget: budget})
		if err != nil {
			t.Logf("budget %d: does not schedule (%v)", budget, err)
			continue
		}
		if err := VerifySchedule(s); err != nil {
			t.Fatalf("budget %d: invalid schedule: %v", budget, err)
		}
		if s.II < base.II {
			t.Errorf("budget %d beat the default: %d < %d", budget, s.II, base.II)
		}
	}
	// A healthy budget must schedule.
	if _, err := Compile(k, machine.Distributed(), Options{PermBudget: 4096}); err != nil {
		t.Fatalf("default-size budget failed: %v", err)
	}
}

func TestTinyAttemptBudget(t *testing.T) {
	k := wideLoopKernel(t, 4)
	s, err := Compile(k, machine.Clustered(4), Options{AttemptBudget: 4})
	if err != nil {
		t.Fatalf("tiny attempt budget: %v", err)
	}
	if err := VerifySchedule(s); err != nil {
		t.Fatal(err)
	}
}

func TestScanWindowOption(t *testing.T) {
	k := accLoopKernel(t)
	s, err := Compile(k, machine.Central(), Options{ScanWindow: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySchedule(s); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPhaseBaseline(t *testing.T) {
	k := wideLoopKernel(t, 4)
	for _, m := range allMachines() {
		base, err := Compile(k, m, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		two, err := Compile(k, m, Options{TwoPhase: true, MaxII: 16 * base.II})
		if err != nil {
			t.Logf("%s: two-phase fails to schedule (acceptable for the baseline): %v", m.Name, err)
			continue
		}
		if err := VerifySchedule(two); err != nil {
			t.Fatalf("%s: two-phase schedule invalid: %v", m.Name, err)
		}
		if two.II < base.II {
			t.Errorf("%s: two-phase beat unified scheduling: %d < %d", m.Name, two.II, base.II)
		}
		t.Logf("%s: unified II=%d two-phase II=%d", m.Name, base.II, two.II)
	}
}

func TestCycleOrderOption(t *testing.T) {
	k := wideLoopKernel(t, 3)
	for _, m := range allMachines() {
		s, err := Compile(k, m, Options{CycleOrder: true})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if err := VerifySchedule(s); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	k := accLoopKernel(t)
	s, err := Compile(k, machine.Clustered(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.Attempts == 0 {
		t.Error("no attempts recorded")
	}
	if s.Stats.PermSteps == 0 {
		t.Error("no permutation steps recorded")
	}
	if s.Stats.IIsTried == 0 {
		t.Error("no IIs recorded")
	}
	if s.Stats.CopiesInserted != len(s.Ops)-len(k.Ops) {
		t.Errorf("CopiesInserted=%d but %d copy ops present",
			s.Stats.CopiesInserted, len(s.Ops)-len(k.Ops))
	}
}

// TestCrossBlockCopiesLandInPreamble checks Fig. 23's "different block"
// rule: copies for preamble→loop communications are scheduled in the
// write operation's block (the preamble).
func TestCrossBlockCopiesLandInPreamble(t *testing.T) {
	// A constant produced in the preamble is consumed by an op that
	// lands in another cluster: the copy must go into the preamble.
	b := ir.NewBuilder("cross")
	c1 := b.Emit(ir.MovI, "c1", b.Const(7))
	c2 := b.Emit(ir.MovI, "c2", b.Const(9))
	c3 := b.Emit(ir.MovI, "c3", b.Const(11))
	c4 := b.Emit(ir.MovI, "c4", b.Const(13))
	c5 := b.Emit(ir.MovI, "c5", b.Const(15))
	b.Loop()
	iv, _ := b.InductionVar("i", 0, 1)
	_ = iv
	// Five multiplies of five different constants: the three multipliers
	// sit in three different clusters on clustered4, so some constants
	// must be copied across.
	for _, c := range []ir.ValueID{c1, c2, c3, c4, c5} {
		x := b.Emit(ir.Mul, "m", b.Val(c), b.Const(3))
		b.Emit(ir.Store, "", b.Val(x), iv, b.Const(0))
	}
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Compile(k, machine.Clustered(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySchedule(s); err != nil {
		t.Fatal(err)
	}
	for i := len(k.Ops); i < len(s.Ops); i++ {
		cp := s.Ops[i]
		if cp.Opcode != ir.Copy {
			continue
		}
		// A copy of a preamble value must live in the preamble.
		src := cp.Args[0].Srcs[0].Value
		if src < ir.ValueID(len(k.Values)) && s.Kernel.Ops[k.Values[src].Def].Block == ir.PreambleBlock {
			if cp.Block != ir.PreambleBlock {
				t.Errorf("copy of preamble value v%d scheduled in the loop", src)
			}
		}
	}
}

// TestDepositReuseBoundsCopies checks that a value consumed by many
// operations spread over every cluster needs at most one copy per
// destination register file, not one per consumer.
func TestDepositReuseBoundsCopies(t *testing.T) {
	b := ir.NewBuilder("fanout")
	b.Loop()
	iv, _ := b.InductionVar("i", 0, 1)
	x := b.Emit(ir.Load, "x", iv, b.Const(0))
	// Twelve consumers of x (two per adder on clustered4's six adders).
	for j := 0; j < 12; j++ {
		y := b.Emit(ir.Add, "y", b.Val(x), b.Const(int64(j)))
		b.Emit(ir.Store, "", b.Val(y), iv, b.Const(int64(64+j*64)))
	}
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := machine.Clustered(4)
	s, err := Compile(k, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	copies := 0
	for i := len(k.Ops); i < len(s.Ops); i++ {
		if s.Ops[i].Opcode == ir.Copy && s.Ops[i].Args[0].Srcs[0].Value == x {
			copies++
		}
	}
	// x can need at most one copy into each of the other 3 cluster
	// files (plus slack for re-copies under congestion).
	if copies > 2*len(m.RegFiles) {
		t.Errorf("%d copies of a single fanout value; deposit reuse broken", copies)
	}
	t.Logf("fanout value copied %d times across %d files", copies, len(m.RegFiles))
}

func TestAssemblyRendering(t *testing.T) {
	k := accLoopKernel(t)
	s, err := Compile(k, machine.Distributed(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	asm := s.Assembly()
	for _, want := range []string{"II=", "loop cycle", "=>", "load", "mul"} {
		if !strings.Contains(asm, want) {
			t.Errorf("assembly missing %q:\n%s", want, asm)
		}
	}
	// The accumulator's phi operand renders as a merge.
	if !strings.Contains(asm, "φ(") {
		t.Errorf("assembly does not render the phi operand:\n%s", asm)
	}
}

func TestCompileErrorPaths(t *testing.T) {
	// Invalid kernels are rejected by verification.
	badKernel := &ir.Kernel{Name: "bad"}
	badKernel.Ops = append(badKernel.Ops, &ir.Op{ID: 0, Opcode: ir.Add, Result: ir.NoValue})
	if _, err := Compile(badKernel, machine.Central(), Options{}); err == nil {
		t.Error("accepted invalid kernel")
	}
	// Kernels needing units the machine lacks fail with a class error.
	b := ir.NewBuilder("needsmul")
	b.Loop()
	b.Emit(ir.Mul, "m", b.Const(2), b.Const(3))
	k := b.MustFinish()
	if _, err := Compile(k, machine.MotivatingExample(), Options{}); err == nil {
		t.Error("accepted a multiply on a machine without multipliers")
	}
}

func TestEmptyLoopKernel(t *testing.T) {
	// Preamble-only kernels schedule with II reported but no loop span.
	b := ir.NewBuilder("flat")
	x := b.Emit(ir.Add, "x", b.Const(1), b.Const(2))
	b.Emit(ir.Store, "", b.Val(x), b.Const(0), b.Const(0))
	k := b.MustFinish()
	s, err := Compile(k, machine.Central(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.LoopSpan != 0 || s.PreambleLen < 2 {
		t.Errorf("flat kernel: span=%d preamble=%d", s.LoopSpan, s.PreambleLen)
	}
	if s.PipelineStages() != 0 {
		t.Errorf("flat kernel has %d stages", s.PipelineStages())
	}
}
