package core

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/rules"
)

// VerifySchedule re-derives the structural rules of §4.2 from a
// finished schedule and checks them independently of the scheduler's
// bookkeeping:
//
//   - every operation sits on a unit that executes its class, with
//     issue intervals respected;
//   - every same-block data dependence is satisfied in time, loop-
//     carried ones modulo the initiation interval;
//   - every route's write stub and read stub belong to the endpoint
//     units and meet in one register file;
//   - every original value use is covered by a chain of routes through
//     zero or more copies, each copy fitting inside its copy range;
//   - no two stubs conflict on any bus, read port, or write port.
//
// The cycle-accurate simulator provides a second, fully independent
// oracle by executing the schedule; this verifier catches structural
// breakage cheaply in unit tests.
func VerifySchedule(s *Schedule) error {
	if err := verifyPlacements(s); err != nil {
		return err
	}
	if err := verifyDependences(s); err != nil {
		return err
	}
	if err := verifyRoutes(s); err != nil {
		return err
	}
	if err := verifyCoverage(s); err != nil {
		return err
	}
	return verifyConflicts(s)
}

func verifyPlacements(s *Schedule) error {
	type slotKey struct {
		block ir.BlockKind
		fu    machine.FUID
		slot  int
	}
	used := make(map[slotKey]ir.OpID)
	for _, op := range s.Ops {
		a := s.Assignments[op.ID]
		if !a.Scheduled {
			return fmt.Errorf("verify: op %d unscheduled", op.ID)
		}
		fu := s.Machine.FU(a.FU)
		if !fu.Executes(op.Opcode.Class()) {
			return fmt.Errorf("verify: op %d (%v) on incapable unit %s", op.ID, op.Opcode, fu.Name)
		}
		if a.Cycle < 0 {
			return fmt.Errorf("verify: op %d at negative cycle %d", op.ID, a.Cycle)
		}
		for t := a.Cycle; t < a.Cycle+fu.IssueInterval; t++ {
			k := slotKey{op.Block, a.FU, moduloSlot(s, op.Block, t)}
			if prev, busy := used[k]; busy && prev != op.ID {
				return fmt.Errorf("verify: ops %d and %d share unit %s slot %d", prev, op.ID, fu.Name, k.slot)
			}
			used[k] = op.ID
		}
	}
	return nil
}

func moduloSlot(s *Schedule, b ir.BlockKind, cycle int) int {
	if b == ir.LoopBlock && s.II > 0 {
		return ((cycle % s.II) + s.II) % s.II
	}
	return cycle
}

func verifyDependences(s *Schedule) error {
	lat := func(id ir.OpID) int { return s.Machine.Latency(s.Ops[id].Opcode) }
	for _, op := range s.Ops {
		for _, arg := range op.Args {
			if arg.Kind != ir.OperandValue {
				continue
			}
			for _, src := range arg.Srcs {
				def := s.Values[src.Value].Def
				defOp := s.Ops[def]
				if defOp.Block != op.Block {
					continue // loop begins after the whole preamble
				}
				ii := 0
				if op.Block == ir.LoopBlock {
					ii = s.II
				}
				avail := s.Assignments[def].Cycle + lat(def)
				read := s.Assignments[op.ID].Cycle + src.Distance*ii
				if read < avail {
					return fmt.Errorf("verify: op %d reads v%d at %d before it completes at %d",
						op.ID, src.Value, read, avail)
				}
			}
		}
	}
	return nil
}

func verifyRoutes(s *Schedule) error {
	for _, r := range s.Routes {
		defA, useA := s.Assignments[r.Def], s.Assignments[r.Use]
		if r.W.FU != defA.FU {
			return fmt.Errorf("verify: route v%d write stub on %d, def on %d", r.Value, r.W.FU, defA.FU)
		}
		if r.R.FU != useA.FU {
			return fmt.Errorf("verify: route v%d read stub on %d, use on %d", r.Value, r.R.FU, useA.FU)
		}
		if r.W.RF != r.R.RF {
			return fmt.Errorf("verify: route v%d stubs in different register files (%d vs %d)",
				r.Value, r.W.RF, r.R.RF)
		}
		if s.Ops[r.Def].Result != r.Value {
			return fmt.Errorf("verify: route v%d not produced by its def op %d", r.Value, r.Def)
		}
	}
	return nil
}

// verifyCoverage checks that every original value use is fed by a route
// chain: either a direct route from the defining op, or a route from a
// copy whose transitive source is the defining op, with each hop
// strictly after the previous value is available.
func verifyCoverage(s *Schedule) error {
	// Routes indexed by consumer operand.
	byUse := make(map[OperandKey][]Route)
	for _, r := range s.Routes {
		byUse[OperandKey{Op: r.Use, Slot: r.Slot}] = append(byUse[OperandKey{Op: r.Use, Slot: r.Slot}], r)
	}
	// rootOf resolves a value through copy chains to the original
	// producing value.
	var rootOf func(v ir.ValueID) ir.ValueID
	rootOf = func(v ir.ValueID) ir.ValueID {
		def := s.Ops[s.Values[v].Def]
		if def.Opcode == ir.Copy && int(def.ID) >= len(s.Kernel.Ops) {
			return rootOf(def.Args[0].Srcs[0].Value)
		}
		return v
	}
	for _, op := range s.Kernel.Ops {
		for slot, arg := range op.Args {
			if arg.Kind != ir.OperandValue {
				continue
			}
			for _, src := range arg.Srcs {
				found := false
				for _, r := range byUse[OperandKey{Op: op.ID, Slot: slot}] {
					if rootOf(r.Value) == src.Value {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("verify: op %d slot %d use of v%d has no route", op.ID, slot, src.Value)
				}
			}
		}
	}
	// Same-block route timing, hop by hop.
	for _, r := range s.Routes {
		defOp, useOp := s.Ops[r.Def], s.Ops[r.Use]
		if defOp.Block != useOp.Block {
			continue
		}
		ii := 0
		if useOp.Block == ir.LoopBlock {
			ii = s.II
		}
		wflat := s.Assignments[r.Def].Cycle + s.Machine.Latency(defOp.Opcode) - 1
		rflat := s.Assignments[r.Use].Cycle + r.Distance*ii
		if rflat <= wflat {
			return fmt.Errorf("verify: route v%d read at %d not after write at %d", r.Value, rflat, wflat)
		}
	}
	return nil
}

// verifyConflicts re-runs the §4.2 sharing rules over the finished
// schedule with fresh bookkeeping: every write stub and read stub is
// replayed through the shared rules engine (internal/rules), one
// CycleState per (block, modulo slot).
func verifyConflicts(s *Schedule) error {
	type cellKey struct {
		block ir.BlockKind
		slot  int
	}
	cycles := make(map[cellKey]*rules.CycleState)
	at := func(block ir.BlockKind, slot int) *rules.CycleState {
		k := cellKey{block, slot}
		if cycles[k] == nil {
			cycles[k] = rules.NewCycleStateFor(s.Machine)
		}
		return cycles[k]
	}

	// writeIdentity mirrors the engine's: the value and its flat
	// completion cycle.
	writeIdentity := func(r Route) rules.Value {
		wflat := s.Assignments[r.Def].Cycle + s.Machine.Latency(s.Ops[r.Def].Opcode) - 1
		return rules.Value{ID: r.Value, Flat: int32(wflat)}
	}
	for _, r := range s.Routes {
		block := s.Ops[r.Def].Block
		wflat := s.Assignments[r.Def].Cycle + s.Machine.Latency(s.Ops[r.Def].Opcode) - 1
		wslot := moduloSlot(s, block, wflat)
		desc := fmt.Sprintf("write v%d by op%d", r.Value, r.Def)
		if cf := at(block, wslot).Write(r.W, writeIdentity(r), desc); cf != nil {
			return fmt.Errorf("verify: %v slot %d: %w", block, wslot, cf)
		}
	}
	// Reads: one stub per operand; identity follows the engine's rules
	// (multi-source operands unique, loop invariants per value,
	// loop-carried reads normalized by distance·II).
	readIdentity := func(key OperandKey) rules.Value {
		var comms []Route
		for _, r := range s.Routes {
			if r.Use == key.Op && r.Slot == key.Slot {
				comms = append(comms, r)
			}
		}
		if len(comms) != 1 {
			return rules.Value{ID: ir.NoValue, Flat: int32(s.Assignments[key.Op].Cycle),
				Uniq: int32(key.Op)*8 + int32(key.Slot) + 1}
		}
		r := comms[0]
		if s.Ops[r.Def].Block == ir.PreambleBlock && s.Ops[r.Use].Block == ir.LoopBlock {
			return rules.Value{ID: r.Value, Inv: true}
		}
		ii := 0
		if s.Ops[r.Use].Block == ir.LoopBlock {
			ii = s.II
		}
		return rules.Value{ID: r.Value, Flat: int32(s.Assignments[r.Use].Cycle - r.Distance*ii)}
	}
	for key, stub := range s.Reads {
		block := s.Ops[key.Op].Block
		rslot := moduloSlot(s, block, s.Assignments[key.Op].Cycle)
		desc := fmt.Sprintf("read op%d.%d", key.Op, key.Slot)
		opnd := int32(key.Op)*8 + int32(key.Slot) + 1
		if cf := at(block, rslot).Read(stub, readIdentity(key), opnd, desc); cf != nil {
			return fmt.Errorf("verify: %v slot %d: %w", block, rslot, cf)
		}
	}
	return nil
}
