package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// Fingerprint renders the schedule as a canonical, diff-stable text
// form covering everything the paper's output is judged on: the
// initiation interval, the per-operation (unit, cycle) placements, the
// full route allocation (write stub, read stub, distance), and the
// inserted copies. Two schedules are bit-identical — same II, same
// placements, same interconnect — iff their fingerprints are equal.
// The differential golden tests use this to pin the compiler's output
// across refactors.
func (s *Schedule) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s machine %s\n", s.Kernel.Name, s.Machine.Name)
	fmt.Fprintf(&b, "ii %d preamble %d loopspan %d copies %d\n",
		s.II, s.PreambleLen, s.LoopSpan, len(s.Ops)-len(s.Kernel.Ops))
	for _, blk := range []ir.BlockKind{ir.PreambleBlock, ir.LoopBlock} {
		for _, id := range s.OpsInBlock(blk) {
			op, a := s.Ops[id], s.Assignments[id]
			name := op.Name
			if name == "" {
				name = fmt.Sprintf("op%d", id)
			}
			fmt.Fprintf(&b, "op %v %d %s %s fu%d cycle %d\n",
				blk, id, op.Opcode, name, a.FU, a.Cycle)
		}
	}
	routes := make([]string, 0, len(s.Routes))
	for _, r := range s.Routes {
		routes = append(routes, fmt.Sprintf(
			"route v%d op%d->op%d.%d dist %d W fu%d-bus%d-rf%d.wp%d R rf%d.rp%d-bus%d-fu%d.in%d",
			r.Value, r.Def, r.Use, r.Slot, r.Distance,
			r.W.FU, r.W.Bus, r.W.RF, r.W.Port,
			r.R.RF, r.R.Port, r.R.Bus, r.R.FU, r.R.Slot))
	}
	sort.Strings(routes)
	for _, r := range routes {
		b.WriteString(r)
		b.WriteByte('\n')
	}
	return b.String()
}
