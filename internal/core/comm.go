// Package core implements communication scheduling (Mattson et al.,
// ASPLOS 2000) integrated with a unified assign-and-schedule VLIW
// scheduler, for machines in which functional units reach multiple
// register files over shared buses and shared register-file ports.
//
// A communication is the use of one operation's result as an operand of
// another operation (§3). Communication scheduling decomposes each
// communication into a write stub, zero or more copy operations, and a
// read stub (§4.2, Fig. 12), allocating them incrementally as the two
// endpoint operations are scheduled (Fig. 14): the communication opens
// with a tentative stub when the first endpoint is placed — and that
// stub may still be re-chosen while other operations are scheduled — and
// closes with a full route when the second endpoint is placed, inserting
// and scheduling copy operations if the two stubs do not share a
// register file (§4.3).
package core

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
)

// CommID identifies a communication within one scheduling session.
type CommID int

// noComm is the absent-communication sentinel.
const noComm CommID = -1

type commState int

const (
	// commDormant: neither endpoint scheduled yet.
	commDormant commState = iota
	// commOpen: exactly one endpoint scheduled; its stub is tentative
	// and may be re-chosen ("communication scheduling may change the
	// stub assigned to the open communication", §4.2).
	commOpen
	// commClosed: both endpoints scheduled and a route assigned; the
	// stubs "cannot be changed" (§4.2).
	commClosed
	// commSplit: replaced by two child communications around an
	// inserted copy operation (Fig. 22).
	commSplit
)

// String names the state for diagnostics.
func (s commState) String() string {
	switch s {
	case commDormant:
		return "dormant"
	case commOpen:
		return "open"
	case commClosed:
		return "closed"
	case commSplit:
		return "split"
	}
	return fmt.Sprintf("commState(%d)", int(s))
}

// OperandKey names one operand of one operation. All communications
// delivering a value to the same operand share a single read stub: "An
// operand can only be read from one register file, so two read stubs
// for the same operand conflict if they are not identical" (§4.2).
type OperandKey struct {
	Op   ir.OpID
	Slot int
}

// comm is one communication.
type comm struct {
	id       CommID
	def      ir.OpID // operation producing the value
	use      ir.OpID // operation consuming it
	slot     int     // operand slot in use
	srcIndex int     // index within the operand's source list
	value    ir.ValueID
	distance int // loop-carried iteration distance

	state commState

	// Write stub, valid once the def is scheduled. wPinned marks it
	// frozen (the communication closed or split through it).
	wstub   machine.WriteStub
	hasW    bool
	wPinned bool

	// Provenance for split communications.
	parent   CommID
	children [2]CommID
}

// operandRead is the shared read-stub assignment for one operand.
type operandRead struct {
	stub   machine.ReadStub
	pinned bool
	// multi reports whether several sources merge at this operand (a
	// control-flow phi); such reads are never shareable with another
	// operand's reads on the same port.
	multi bool
}

// crossBlock reports whether the communication's value crosses from the
// preamble into the loop, making it loop-invariant: it is written once
// and read on every iteration.
func (e *engine) crossBlock(c *comm) bool {
	return e.ops[c.def].Block == ir.PreambleBlock && e.ops[c.use].Block == ir.LoopBlock
}

// buildComms creates the communications of the kernel: one per
// (defining operation, use operand, source) triple (§3).
func (e *engine) buildComms() {
	for _, op := range e.kern.Ops {
		for slot, arg := range op.Args {
			if arg.Kind != ir.OperandValue {
				continue
			}
			for si, src := range arg.Srcs {
				def := e.kern.Values[src.Value].Def
				e.newComm(def, op.ID, slot, si, src.Value, src.Distance, noComm)
			}
		}
	}
}

// newComm allocates a communication and registers it in the per-op
// indices. It is journaled so attempts that create communications (copy
// insertion) can be rolled back.
func (e *engine) newComm(def, use ir.OpID, slot, srcIndex int, value ir.ValueID, distance int, parent CommID) CommID {
	c := &comm{
		id:       CommID(len(e.comms)),
		def:      def,
		use:      use,
		slot:     slot,
		srcIndex: srcIndex,
		value:    value,
		distance: distance,
		parent:   parent,
		children: [2]CommID{noComm, noComm},
	}
	e.comms = append(e.comms, c)
	e.commsFrom[def] = append(e.commsFrom[def], c.id)
	e.commsTo[use] = append(e.commsTo[use], c.id)
	e.log(func() {
		e.comms = e.comms[:len(e.comms)-1]
		e.commsFrom[def] = e.commsFrom[def][:len(e.commsFrom[def])-1]
		e.commsTo[use] = e.commsTo[use][:len(e.commsTo[use])-1]
	})
	return c.id
}

// activeCommsFrom returns the non-split communications whose def is op.
func (e *engine) activeCommsFrom(op ir.OpID) []CommID {
	var out []CommID
	for _, id := range e.commsFrom[op] {
		if e.comms[id].state != commSplit {
			out = append(out, id)
		}
	}
	return out
}

// activeCommsTo returns the non-split communications whose use is op.
func (e *engine) activeCommsTo(op ir.OpID) []CommID {
	var out []CommID
	for _, id := range e.commsTo[op] {
		if e.comms[id].state != commSplit {
			out = append(out, id)
		}
	}
	return out
}

// setCommState transitions a communication's state, journaled (typed
// record: this runs on the solver's allocation-free path).
func (e *engine) setCommState(c *comm, s commState) {
	e.traceCommState(c, s)
	e.journal = append(e.journal, undoRec{kind: undoCommState, c: c, state: c.state})
	c.state = s
}

// setCommW records a (tentative or final) write stub, journaled (typed
// record).
func (e *engine) setCommW(c *comm, stub machine.WriteStub, pinned bool) {
	e.traceCommW(c, stub, pinned, c.hasW)
	e.journal = append(e.journal, undoRec{
		kind: undoCommW, c: c, wstub: c.wstub, hasW: c.hasW, wPinned: c.wPinned,
	})
	c.wstub, c.hasW, c.wPinned = stub, true, pinned
}

// setOperandStub records the shared read stub for an operand, journaled
// (typed record).
func (e *engine) setOperandStub(key OperandKey, stub machine.ReadStub, pinned, multi bool) {
	e.traceStubRead(key, stub, pinned)
	old, existed := e.operandStub[key]
	e.journal = append(e.journal, undoRec{kind: undoOperandStub, key: key, or: old, existed: existed})
	e.operandStub[key] = operandRead{stub: stub, pinned: pinned, multi: multi}
}

// pinOperandStub freezes an existing operand read assignment.
func (e *engine) pinOperandStub(key OperandKey) {
	or, ok := e.operandStub[key]
	if !ok || or.pinned {
		return
	}
	e.traceStubRead(key, or.stub, true)
	or.pinned = true
	e.operandStub[key] = or
	e.journal = append(e.journal, undoRec{kind: undoOperandPin, key: key})
}

// copyRange returns the width of the copy range of a closing
// communication (Fig. 23): the number of cycles available for copy
// operations between the def's completion and the use's read. Cross-
// block communications have an effectively unbounded range because the
// preamble can always be extended ("the copy range is all cycles in the
// write operation's basic block after the write operation completes").
func (e *engine) copyRange(c *comm) int {
	if e.crossBlock(c) {
		return unboundedRange
	}
	def, use := e.place[c.def], e.place[c.use]
	if !def.ok || !use.ok {
		return unboundedRange
	}
	wflat := def.cycle + e.latOf(c.def) - 1
	rflat := use.cycle + c.distance*e.blockII(e.ops[c.use].Block)
	return rflat - 1 - wflat
}

// unboundedRange stands in for the preamble's extensible copy range.
const unboundedRange = 1 << 20
