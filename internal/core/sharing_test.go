package core

import (
	"testing"

	"repro/internal/depgraph"
	"repro/internal/ir"
	"repro/internal/machine"
)

// TestSeparateCommsPerOperand checks §3: "one operation could use the
// result as multiple operands, then a separate communication exists
// for each such read operand" — squaring a value produces two
// communications, one per operand slot.
func TestSeparateCommsPerOperand(t *testing.T) {
	b := ir.NewBuilder("square")
	b.Loop()
	iv, _ := b.InductionVar("i", 0, 1)
	x := b.Emit(ir.Load, "x", iv, b.Const(0))
	sq := b.Emit(ir.Mul, "sq", b.Val(x), b.Val(x))
	b.Emit(ir.Store, "", b.Val(sq), iv, b.Const(64))
	k := b.MustFinish()

	m := machine.Distributed()
	g := depgraph.Build(k, m)
	e := newEngine(k, m, g, Options{}, 4)
	mulID := k.Loop[2]
	n := 0
	slots := map[int]bool{}
	for _, cid := range e.activeCommsTo(mulID) {
		c := e.comms[cid]
		if c.value == x {
			n++
			slots[c.slot] = true
		}
	}
	if n != 2 || !slots[0] || !slots[1] {
		t.Fatalf("x->mul communications = %d (slots %v), want one per operand", n, slots)
	}
}
