package core

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/rules"
)

// This file folds a finished schedule's interconnect allocation into
// per-resource occupancy: which functional units, buses, and register-
// file ports the routes keep busy, per modulo slot in the loop and per
// cycle in the preamble. The claims come from the same rules-engine
// expansion the permutation solver schedules against (rules.WriteClaims
// / rules.ReadClaims), so the report counts exactly the cells the §4.2
// sharing rules guard. csched surfaces it as `-util` (text heatmap) and
// inside `-stats-json`.

// ResourceUtil is the occupancy of one resource: busy slot counts over
// the loop's II modulo slots and over the preamble's cycles. Distinct
// occupied cells are counted once — legal sharing (a bus fanning one
// value out, §4.2) does not inflate Busy.
type ResourceUtil struct {
	Kind string `json:"kind"` // "fu", "bus", "read-port", "write-port"
	Name string `json:"name"`
	// LoopBusy of LoopSlots modulo slots are occupied in the loop
	// (LoopSlots = II, or 0 for a loop-less kernel); PreBusy of PreSlots
	// cycles in the preamble.
	LoopBusy  int `json:"loop_busy"`
	LoopSlots int `json:"loop_slots"`
	PreBusy   int `json:"pre_busy"`
	PreSlots  int `json:"pre_slots"`
}

// UtilizationReport is the per-resource occupancy of one schedule, in
// machine declaration order: units, buses, read ports, write ports.
type UtilizationReport struct {
	Kernel    string         `json:"kernel"`
	Machine   string         `json:"machine"`
	II        int            `json:"ii"`
	Preamble  int            `json:"preamble"`
	Resources []ResourceUtil `json:"resources"`
}

// utilCell is one occupied (resource, block, slot) cell.
type utilCell struct {
	kind  rules.Kind
	res   int32
	block ir.BlockKind
	slot  int
}

// fuIssueKind tags functional-unit issue occupancy, which is not a
// rules.Kind (issue slots are guarded structurally by the scheduler,
// not by a sharing rule) but reports alongside them.
const fuIssueKind = rules.Kind(-1)

// InterconnectUtilization computes the per-resource interconnect
// utilization of the schedule. (Utilization in restab.go keeps its
// coarse per-class summary; this is the full per-bus/per-port/per-unit
// picture.) It needs no tracer: everything derives from the final
// placements and routes, so the report is deterministic and available
// on every compile.
func (s *Schedule) InterconnectUtilization() *UtilizationReport {
	occupied := make(map[utilCell]bool)
	slotOf := func(b ir.BlockKind, cycle int) int {
		if b == ir.LoopBlock && s.II > 0 {
			return ((cycle % s.II) + s.II) % s.II
		}
		return cycle
	}
	mark := func(kind rules.Kind, res int32, b ir.BlockKind, cycle int) {
		occupied[utilCell{kind: kind, res: res, block: b, slot: slotOf(b, cycle)}] = true
	}

	// Functional-unit issue occupancy: each operation holds its unit's
	// issue slot for IssueInterval cycles.
	for id, a := range s.Assignments {
		if !a.Scheduled {
			continue
		}
		b := s.Ops[id].Block
		for t := 0; t < s.Machine.FU(a.FU).IssueInterval; t++ {
			mark(fuIssueKind, int32(a.FU), b, a.Cycle+t)
		}
	}

	// Route claims: the write stub occupies its bus and write port on
	// the def's completion cycle; the read stub its read port, bus, and
	// unit input on the use's issue cycle. The value-identity payloads of
	// the claims are irrelevant here — only which cell each claim lands
	// on — so zero rules.Values are passed.
	for _, r := range s.Routes {
		defB := s.Ops[r.Def].Block
		wcycle := s.Assignments[r.Def].Cycle + s.Machine.Latency(s.Ops[r.Def].Opcode) - 1
		for _, cl := range rules.WriteClaims(r.W, rules.Value{}) {
			if cl.Rule == rules.RFWrite {
				continue // identity rule, not a physical resource
			}
			mark(cl.Rule, cl.Res, defB, wcycle)
		}
		useB := s.Ops[r.Use].Block
		rcycle := s.Assignments[r.Use].Cycle
		for _, cl := range rules.ReadClaims(r.R, rules.Value{}, 0) {
			if cl.Rule == rules.FUInput {
				continue // latch exclusivity, subsumed by issue occupancy
			}
			mark(cl.Rule, cl.Res, useB, rcycle)
		}
	}

	loopSlots := 0
	if len(s.OpsInBlock(ir.LoopBlock)) > 0 {
		loopSlots = s.II
	}
	rpt := &UtilizationReport{
		Kernel:   s.Kernel.Name,
		Machine:  s.Machine.Name,
		II:       s.II,
		Preamble: s.PreambleLen,
	}
	count := func(kind rules.Kind, res int32, b ir.BlockKind, slots int) int {
		n := 0
		for t := 0; t < slots; t++ {
			if occupied[utilCell{kind: kind, res: res, block: b, slot: t}] {
				n++
			}
		}
		return n
	}
	add := func(kindName string, kind rules.Kind, res int32, name string) {
		rpt.Resources = append(rpt.Resources, ResourceUtil{
			Kind:      kindName,
			Name:      name,
			LoopBusy:  count(kind, res, ir.LoopBlock, loopSlots),
			LoopSlots: loopSlots,
			PreBusy:   count(kind, res, ir.PreambleBlock, s.PreambleLen),
			PreSlots:  s.PreambleLen,
		})
	}
	for _, fu := range s.Machine.FUs {
		add("fu", fuIssueKind, int32(fu.ID), fu.Name)
	}
	for _, bus := range s.Machine.Buses {
		add(rules.Bus.String(), rules.Bus, int32(bus.ID), bus.Name)
	}
	for _, rp := range s.Machine.ReadPorts {
		add(rules.ReadPort.String(), rules.ReadPort, int32(rp.ID), rp.Name)
	}
	for _, wp := range s.Machine.WritePorts {
		add(rules.WritePort.String(), rules.WritePort, int32(wp.ID), wp.Name)
	}
	return rpt
}

// bar renders a 10-cell occupancy bar.
func bar(busy, slots int) string {
	const width = 10
	if slots <= 0 {
		return strings.Repeat("·", width)
	}
	filled := (busy*width + slots/2) / slots
	if filled > width {
		filled = width
	}
	if busy > 0 && filled == 0 {
		filled = 1
	}
	return strings.Repeat("█", filled) + strings.Repeat("░", width-filled)
}

// String renders the text heatmap csched -util prints: one row per
// resource in machine declaration order, loop and preamble occupancy
// side by side.
func (u *UtilizationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "utilization %s on %s: II=%d preamble=%d\n",
		u.Kernel, u.Machine, u.II, u.Preamble)
	fmt.Fprintf(&b, "%-11s %-8s %-10s %9s   %-10s %9s\n",
		"kind", "name", "loop", "busy", "preamble", "busy")
	for _, r := range u.Resources {
		fmt.Fprintf(&b, "%-11s %-8s %-10s %9s   %-10s %9s\n",
			r.Kind, r.Name,
			bar(r.LoopBusy, r.LoopSlots), fmt.Sprintf("%d/%d", r.LoopBusy, r.LoopSlots),
			bar(r.PreBusy, r.PreSlots), fmt.Sprintf("%d/%d", r.PreBusy, r.PreSlots))
	}
	return strings.TrimRight(b.String(), "\n")
}
