package core

import (
	"testing"

	"repro/internal/depgraph"
	"repro/internal/ir"
	"repro/internal/machine"
)

// engineFor builds an engine over a kernel/machine without running the
// II search, for direct inspection of the §4 machinery.
func engineFor(t *testing.T, k *ir.Kernel, m *machine.Machine, ii int) *engine {
	t.Helper()
	g := depgraph.Build(k, m)
	return newEngine(k, m, g, Options{}, ii)
}

func TestCopyRangeFormulas(t *testing.T) {
	// Same-block range: "all cycles between the cycle on which the
	// write operation completes and the cycle on which the read
	// operation issues" (Fig. 23).
	b := ir.NewBuilder("rng")
	c0 := b.Emit(ir.MovI, "c0", b.Const(1))
	b.Loop()
	iv, _ := b.InductionVar("i", 0, 1)
	x := b.Emit(ir.Mul, "x", iv, b.Val(c0)) // mul: latency 2
	b.Emit(ir.Store, "", b.Val(x), iv, b.Const(0))
	k := b.MustFinish()
	m := machine.Central()
	e := engineFor(t, k, m, 4)

	mulID := k.Loop[1]
	storeID := k.Loop[2]
	e.placeOp(mulID, e.mach.UnitsFor(ir.ClsMul)[0], 2)
	e.placeOp(storeID, e.mach.UnitsFor(ir.ClsMem)[0], 9)

	var c *comm
	for _, cc := range e.comms {
		if cc.def == mulID && cc.use == storeID {
			c = cc
		}
	}
	if c == nil {
		t.Fatal("mul->store comm not found")
	}
	// mul issues at 2, completes at 3; store reads at 9: copy range is
	// cycles 4..8 = width 5.
	if got := e.copyRange(c); got != 5 {
		t.Errorf("same-block copy range = %d, want 5", got)
	}

	// Cross-block (preamble def, loop use): unbounded.
	var cross *comm
	for _, cc := range e.comms {
		if cc.def == k.Preamble[1] && e.ops[cc.use].Block == ir.LoopBlock {
			cross = cc
		}
	}
	if cross == nil {
		t.Fatal("cross-block comm not found")
	}
	if got := e.copyRange(cross); got != unboundedRange {
		t.Errorf("cross-block copy range = %d, want unbounded", got)
	}
}

func TestLoopCarriedCopyRangeScalesWithII(t *testing.T) {
	b := ir.NewBuilder("carr")
	s0 := b.Emit(ir.MovI, "s0", b.Const(1))
	b.Loop()
	b.Accumulator(ir.Add, "s", s0, b.Const(1))
	k := b.MustFinish()
	m := machine.Central()
	for _, ii := range []int{2, 5} {
		e := engineFor(t, k, m, ii)
		addID := k.Loop[0]
		e.placeOp(addID, e.mach.UnitsFor(ir.ClsAdd)[0], 0)
		var c *comm
		for _, cc := range e.comms {
			if cc.def == addID && cc.use == addID && cc.distance == 1 {
				c = cc
			}
		}
		if c == nil {
			t.Fatal("self comm not found")
		}
		// Write completes at 0; read at 0 + 1·II: range = II - 1.
		if got := e.copyRange(c); got != ii-1 {
			t.Errorf("II=%d: carried copy range = %d, want %d", ii, got, ii-1)
		}
	}
}

func TestReadIdentityRules(t *testing.T) {
	b := ir.NewBuilder("ident")
	inv := b.Emit(ir.MovI, "inv", b.Const(5))
	b.Loop()
	iv, _ := b.InductionVar("i", 0, 1)
	p := b.Emit(ir.Mul, "p", iv, b.Val(inv))
	b.Emit(ir.Store, "", b.Val(p), iv, b.Const(0))
	k := b.MustFinish()
	e := engineFor(t, k, machine.Central(), 3)

	addID := k.Loop[0] // induction add: phi operand
	mulID := k.Loop[1]
	e.placeOp(addID, e.mach.UnitsFor(ir.ClsAdd)[0], 0)
	e.placeOp(mulID, e.mach.UnitsFor(ir.ClsMul)[0], 1)

	// The induction add's operand 0 is a phi: never shareable.
	if id := e.readIdentity(OperandKey{Op: addID, Slot: 0}); id.Uniq == 0 {
		t.Error("phi operand not marked unique")
	}
	// The mul's operand 1 reads a loop invariant: invariant identity.
	if id := e.readIdentity(OperandKey{Op: mulID, Slot: 1}); !id.Inv || id.Uniq != 0 {
		t.Errorf("invariant operand: inv=%v uniq=%d", id.Inv, id.Uniq)
	}
	// The mul's operand 0 reads the induction phi: also unique.
	if id := e.readIdentity(OperandKey{Op: mulID, Slot: 0}); id.Uniq == 0 {
		t.Error("induction phi operand not marked unique")
	}
	// The store's operand 0 reads p plainly: value identity, same
	// iteration, shareable.
	storeID := k.Loop[2]
	e.placeOp(storeID, e.mach.UnitsFor(ir.ClsMem)[0], 3)
	if id := e.readIdentity(OperandKey{Op: storeID, Slot: 0}); id.Inv || id.Uniq != 0 || id.ID == ir.NoValue {
		t.Errorf("plain operand: v=%d inv=%v uniq=%d", id.ID, id.Inv, id.Uniq)
	}
}

func TestSharedRouteRFsHonorsPins(t *testing.T) {
	// On the Fig. 5 machine, add0 writes {rfL, rfC} and ls reads rfC.
	m := machine.MotivatingExample()
	b := ir.NewBuilder("pins")
	x := b.Emit(ir.Add, "x", b.Const(1), b.Const(2))
	b.Emit(ir.Store, "", b.Val(x), b.Const(7), b.Const(0))
	k := b.MustFinish()
	e := engineFor(t, k, m, 1)

	var add0, ls machine.FUID
	for _, fu := range m.FUs {
		switch fu.Name {
		case "add0":
			add0 = fu.ID
		case "ls":
			ls = fu.ID
		}
	}
	e.placeOp(0, add0, 0)
	e.placeOp(1, ls, 2)
	c := e.comms[0]
	shared := e.sharedRouteRFs(c, nil)
	if len(shared) != 1 || m.RegFiles[shared[0]].Name != "rfC" {
		t.Fatalf("shared RFs = %v, want just rfC", shared)
	}
	// Pin the write stub to rfL: no shared file remains.
	for _, ws := range m.WriteStubs(add0) {
		if m.RegFiles[ws.RF].Name == "rfL" {
			e.setCommW(c, ws, true)
		}
	}
	if shared := e.sharedRouteRFs(c, nil); len(shared) != 0 {
		t.Errorf("pinned-away shared RFs = %v, want none", shared)
	}
}

func TestDepositInvariantReuse(t *testing.T) {
	// A preamble constant consumed by two loop ops placed on units
	// sharing an input file (paired machine) must produce at most one
	// write of the constant — the second close reuses the deposit.
	m := machine.Paired()
	b := ir.NewBuilder("dep")
	c0 := b.Emit(ir.MovI, "c0", b.Const(9))
	b.Loop()
	iv, _ := b.InductionVar("i", 0, 1)
	a := b.Emit(ir.Add, "a", iv, b.Val(c0))
	bb := b.Emit(ir.Sub, "b", iv, b.Val(c0))
	b.Emit(ir.Store, "", b.Val(a), iv, b.Const(0))
	b.Emit(ir.Store, "", b.Val(bb), iv, b.Const(64))
	k := b.MustFinish()
	s, err := Compile(k, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySchedule(s); err != nil {
		t.Fatal(err)
	}
	// Count distinct write stubs delivering c0 (or its copies).
	writes := make(map[machine.WriteStub]bool)
	for _, r := range s.Routes {
		root := r.Value
		for int(s.Values[root].Def) >= len(k.Ops) {
			root = s.Ops[s.Values[root].Def].Args[0].Srcs[0].Value
		}
		if root == c0 {
			writes[r.W] = true
		}
	}
	if len(writes) > 3 {
		t.Errorf("constant written through %d stubs; deposit reuse not consolidating", len(writes))
	}
}

func TestSolveWritesRequireFilter(t *testing.T) {
	// Requiring an unreachable file must fail the solve cleanly.
	m := machine.MotivatingExample()
	b := ir.NewBuilder("req")
	x := b.Emit(ir.Add, "x", b.Const(1), b.Const(2))
	b.Emit(ir.Store, "", b.Val(x), b.Const(7), b.Const(0))
	k := b.MustFinish()
	e := engineFor(t, k, m, 1)
	var add0 machine.FUID
	var rfR machine.RFID
	for _, fu := range m.FUs {
		if fu.Name == "add0" {
			add0 = fu.ID
		}
	}
	for _, rf := range m.RegFiles {
		if rf.Name == "rfR" {
			rfR = rf.ID
		}
	}
	e.placeOp(0, add0, 0)
	e.indexOpStubs(0)
	key := e.completionSlotKey(0)
	// add0 cannot write rfR directly.
	if e.solveWrites(key, 0, rfR) {
		t.Error("solveWrites satisfied an unreachable requirement")
	}
	// But it can write rfC.
	var rfC machine.RFID
	for _, rf := range m.RegFiles {
		if rf.Name == "rfC" {
			rfC = rf.ID
		}
	}
	if !e.solveWrites(key, 0, rfC) {
		t.Error("solveWrites failed a satisfiable requirement")
	}
	if !e.comms[0].hasW || e.comms[0].wstub.RF != rfC {
		t.Error("required stub not recorded")
	}
}
