package core

import (
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
)

// This file holds every emit site of the obs event layer: nil-guarded
// helper methods so that with tracing disabled (Options.Tracer nil) the
// cost is one pointer compare per decision point and no Event is ever
// constructed — TestDisabledTracerAllocatesNothing pins the
// zero-allocation property through these same helpers. Tracing is
// passive: no helper reads back tracer state, so enabling a tracer
// cannot perturb a scheduling decision (the differential goldens pin
// that too).

// tracePass brackets one pass run on the Compilation (track = pass
// name).
func (c *Compilation) tracePassBegin(name string) {
	if c.Opts.Tracer == nil {
		return
	}
	c.Opts.Tracer.Emit(obs.Event{
		Kind: obs.KindPassBegin, Track: name, Name: name, II: int32(c.II),
	})
}

func (c *Compilation) tracePassEnd(name string, ok bool) {
	if c.Opts.Tracer == nil {
		return
	}
	c.Opts.Tracer.Emit(obs.Event{
		Kind: obs.KindPassEnd, Track: name, Name: name, II: int32(c.II), Ok: ok,
	})
}

// traceIIBegin/traceIIEnd bracket one initiation-interval attempt on
// the "interval" track.
func (e *engine) traceIIBegin() {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(obs.Event{Kind: obs.KindIIBegin, Track: "interval", II: int32(e.ii)})
}

func (e *engine) traceIIEnd(ok bool) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(obs.Event{Kind: obs.KindIIEnd, Track: "interval", II: int32(e.ii), Ok: ok})
}

// traceOpPlace records a tentative operation placement on the unit's
// own track (one track per contended functional unit).
func (e *engine) traceOpPlace(id ir.OpID, fu machine.FUID, cycle int) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(obs.Event{
		Kind: obs.KindOpPlace, Track: e.mach.FU(fu).Name, Name: e.ops[id].Name,
		Op: int32(id), FU: int32(fu), Cycle: int32(cycle), II: int32(e.ii),
	})
}

// traceCommW records a write-stub choice on the bus's track, preceded
// by a comm-open event when this is the communication's first stub
// (the Fig. 14 "communication opens" transition).
func (e *engine) traceCommW(c *comm, stub machine.WriteStub, pinned, wasOpen bool) {
	if e.tracer == nil {
		return
	}
	if !wasOpen {
		e.tracer.Emit(obs.Event{
			Kind: obs.KindCommOpen, Track: "comms",
			Comm: int32(c.id), Op: int32(c.def),
		})
	}
	e.tracer.Emit(obs.Event{
		Kind: obs.KindStubWrite, Track: e.mach.Buses[stub.Bus].Name,
		Comm: int32(c.id), Op: int32(c.def), Final: pinned,
		FU: int32(stub.FU), Bus: int32(stub.Bus), Port: int32(stub.Port), RF: int32(stub.RF),
	})
}

// traceStubRead records a read-stub choice for an operand on the bus's
// track.
func (e *engine) traceStubRead(key OperandKey, stub machine.ReadStub, pinned bool) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(obs.Event{
		Kind: obs.KindStubRead, Track: e.mach.Buses[stub.Bus].Name,
		Op: int32(key.Op), Slot: int32(key.Slot), Final: pinned,
		RF: int32(stub.RF), Port: int32(stub.Port), Bus: int32(stub.Bus), FU: int32(stub.FU),
	})
}

// traceCommState records close and split transitions (dormant→open is
// covered by traceCommW's comm-open).
func (e *engine) traceCommState(c *comm, s commState) {
	if e.tracer == nil {
		return
	}
	var kind obs.Kind
	switch s {
	case commClosed:
		kind = obs.KindCommClose
	case commSplit:
		kind = obs.KindCommSplit
	default:
		return
	}
	e.tracer.Emit(obs.Event{
		Kind: kind, Track: "comms", Comm: int32(c.id), Op: int32(c.use),
	})
}

// tracePerm records one §4.4 stub-permutation search step on the
// "permute" track. The hot dfs loops call this through a hoisted
// traced flag, so the disabled path stays out of the loop body.
func (e *engine) tracePerm(kind obs.Kind, depth int, item int32) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(obs.Event{
		Kind: kind, Track: "permute", Depth: int32(depth), Comm: item, II: int32(e.ii),
	})
}

// tracePermMemo records one §4.4 solve short-circuited by the
// infeasibility memo, on the "permute" track alongside the search
// steps the hit replaced.
func (e *engine) tracePermMemo() {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(obs.Event{
		Kind: obs.KindPermMemo, Track: "permute", II: int32(e.ii),
		Value: int64(e.stats.MemoHits), HasValue: true,
	})
}

// traceCopy records one copy operation materialized to bridge a route,
// with the splitting recursion depth.
func (e *engine) traceCopy(c *comm, copyID ir.OpID) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(obs.Event{
		Kind: obs.KindCopyInsert, Track: "copies",
		Comm: int32(c.id), Op: int32(copyID), Depth: int32(e.depth),
	})
}

// traceRollback records a journal rollback of n entries; empty
// rollbacks are not events.
func (e *engine) traceRollback(n int) {
	if e.tracer == nil || n == 0 {
		return
	}
	e.tracer.Emit(obs.Event{
		Kind: obs.KindRollback, Track: "journal",
		Value: int64(n), HasValue: true,
	})
}

// traceCancel records a cooperative cancellation observed at an
// initiation interval, on the "interval" track.
func (c *Compilation) traceCancel(ii int) {
	if c.Opts.Tracer == nil {
		return
	}
	c.Opts.Tracer.Emit(obs.Event{Kind: obs.KindCancel, Track: "interval", II: int32(ii)})
}

// traceRecover records a panic recovered by the pass pipeline on the
// failing pass's own track.
func (c *Compilation) traceRecover(pass string) {
	if c.Opts.Tracer == nil {
		return
	}
	c.Opts.Tracer.Emit(obs.Event{Kind: obs.KindRecover, Track: pass, Name: pass, II: int32(c.II)})
}

// traceDegrade records one degradation-ladder rung being applied after
// a schedule failure, on the "degrade" track.
func traceDegrade(t obs.Tracer, rung string) {
	if t == nil {
		return
	}
	t.Emit(obs.Event{Kind: obs.KindDegrade, Track: "degrade", Name: rung})
}

// traceStageBegin/traceStageEnd bracket the nested close-comms and
// insert-copies stages, which run per tentative placement rather than
// once per interval (mirroring their passClock attribution).
func (e *engine) traceStageBegin(name string) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(obs.Event{Kind: obs.KindPassBegin, Track: name, Name: name, II: int32(e.ii)})
}

func (e *engine) traceStageEnd(name string, ok bool) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(obs.Event{Kind: obs.KindPassEnd, Track: name, Name: name, II: int32(e.ii), Ok: ok})
}
