package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/depgraph"
	"repro/internal/ir"
	"repro/internal/machine"
)

// fingerprint captures every piece of engine state the journal is
// responsible for restoring. Failed attempts must leave it unchanged —
// the transactional guarantee behind Fig. 11's reject edge and §4.4's
// repeatability requirement.
func (e *engine) fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ops=%d values=%d comms=%d journal=%d\n",
		len(e.ops), len(e.values), len(e.comms), len(e.journal))
	for i, pl := range e.place {
		if pl.ok {
			fmt.Fprintf(&b, "p%d=%d@%d\n", i, pl.fu, pl.cycle)
		}
	}
	for _, c := range e.comms {
		fmt.Fprintf(&b, "c%d=%v w=%v/%v/%v pin=%v\n", c.id, c.state, c.hasW, c.wstub, c.children, c.wPinned)
	}
	keys := make([]OperandKey, 0, len(e.operandStub))
	for k := range e.operandStub {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Op != keys[j].Op {
			return keys[i].Op < keys[j].Op
		}
		return keys[i].Slot < keys[j].Slot
	})
	for _, k := range keys {
		or := e.operandStub[k]
		fmt.Fprintf(&b, "r%v=%v pin=%v\n", k, or.stub, or.pinned)
	}
	var lines []string
	for k, v := range e.writesAt {
		lines = append(lines, fmt.Sprintf("w@%v=%d", k, len(v)))
	}
	for k, v := range e.readsAt {
		lines = append(lines, fmt.Sprintf("r@%v=%d", k, len(v)))
	}
	for rf, p := range e.rfPressure {
		if p != 0 {
			lines = append(lines, fmt.Sprintf("press%d=%d", rf, p))
		}
	}
	sort.Strings(lines)
	b.WriteString(strings.Join(lines, "\n"))
	fmt.Fprintf(&b, "\nfuAt=%d physSlot=%d deposits=%d intervals=%d\n",
		len(e.fuAt), len(e.physSlot), depositCount(e), len(e.intervals))
	return b.String()
}

func depositCount(e *engine) int {
	n := 0
	for _, d := range e.deposits {
		n += len(d)
	}
	return n
}

// TestRollbackLeavesNoTrace schedules a congested kernel at an
// infeasible initiation interval and checks that every operation
// failure restores the engine exactly.
func TestRollbackLeavesNoTrace(t *testing.T) {
	k := wideLoopKernel(t, 6)
	for _, m := range []*machine.Machine{machine.Clustered(4), machine.Distributed()} {
		for _, opts := range []Options{{}, {RegisterAware: true}} {
			g := depgraph.Build(k, m)
			e := newEngine(k, m, g, opts, 1) // II=1 is infeasible for 6 chains
			order := e.graph.PriorityOrder(ir.LoopBlock)
			failures := 0
			for _, id := range order {
				before := e.fingerprint()
				ok := e.scheduleOp(id)
				if !ok {
					failures++
					if after := e.fingerprint(); after != before {
						t.Fatalf("%s (aware=%v): failed scheduleOp left residue:\n--- before ---\n%s\n--- after ---\n%s",
							m.Name, opts.RegisterAware, before, after)
					}
					break
				}
			}
			if failures == 0 {
				t.Logf("%s: II=1 unexpectedly feasible; no failure to test", m.Name)
			}
		}
	}
}

// TestAttemptRollbackUnderConflict drives attempt directly into
// rejection on a crowded cycle and checks restoration, including the
// copy-insertion paths.
func TestAttemptRollbackUnderConflict(t *testing.T) {
	k := wideLoopKernel(t, 4)
	m := machine.Clustered(4)
	g := depgraph.Build(k, m)
	e := newEngine(k, m, g, Options{}, 2)
	order := e.graph.PriorityOrder(ir.LoopBlock)
	// Schedule as much as possible; at II=2 with 4 chains something
	// eventually rejects placements.
	rejections := 0
	for _, id := range order {
		lo, hi, ok := e.window(id)
		if !ok {
			break
		}
		if hi > lo+8 {
			hi = lo + 8
		}
		placed := false
		for cycle := lo; cycle <= hi && !placed; cycle++ {
			for _, fu := range e.fuCandidates(id, cycle) {
				if !e.fuFree(ir.LoopBlock, fu, cycle) {
					continue
				}
				before := e.fingerprint()
				if e.attempt(id, cycle, fu) {
					placed = true
					break
				}
				rejections++
				if after := e.fingerprint(); after != before {
					t.Fatalf("attempt rejection left residue for op %d:\n--- before ---\n%s\n--- after ---\n%s", id, before, after)
				}
			}
		}
		if !placed {
			break
		}
	}
	if rejections == 0 {
		t.Skip("no rejections triggered at this II; nothing exercised")
	}
	t.Logf("verified %d rejected attempts restored state exactly", rejections)
}
