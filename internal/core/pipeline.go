package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/depgraph"
	"repro/internal/faultinject"
	"repro/internal/ir"
	"repro/internal/machine"
)

// This file is the pass-pipeline spine of the compiler. Compile used to
// be one monolithic attempt loop; it is now a sequence of named passes
// over a shared *Compilation context, driven by a manager that records
// per-pass wall time, work and failure counters, and structured
// diagnostics:
//
//	lower → [ per candidate II: prioritize → (preassign) → place ] → regalloc → verify
//
// The close-comms and insert-copies stages run inside place (they are
// invoked per tentative operation placement, not once per interval) but
// are clocked as passes of their own through the engine's passClock, so
// `csched -passes` shows where scheduling time actually goes. Pass
// decomposition changes no decisions: the pipeline emits bit-identical
// schedules to the pre-pipeline compiler (pinned by the differential
// goldens under internal/kernels/testdata/schedules).

// Pass names, in canonical pipeline order.
const (
	PassOptions      = "options" // Options.Validate diagnostics
	PassLower        = "lower"
	PassPrioritize   = "prioritize"
	PassPreassign    = "preassign"
	PassPlace        = "place"
	PassCloseComms   = "close-comms"
	PassInsertCopies = "insert-copies"
	PassRegalloc     = "regalloc"
	PassVerify       = "verify"
)

// passRank orders pass stats canonically for reports.
var passRank = map[string]int{
	PassOptions:      0,
	PassLower:        1,
	PassPrioritize:   2,
	PassPreassign:    3,
	PassPlace:        4,
	PassCloseComms:   5,
	PassInsertCopies: 6,
	PassRegalloc:     7,
	PassVerify:       8,
}

// Pass is one named stage of the pipeline. Run mutates the shared
// Compilation; a non-nil error stops the pipeline (for the per-interval
// passes it fails only the current interval attempt).
type Pass interface {
	Name() string
	Run(c *Compilation) error
}

// Compilation is the context shared by every pass: the inputs, the
// products of earlier passes, and the instrumentation. Compile creates
// one per call; each initiation-interval attempt additionally gets a
// lightweight per-attempt Compilation wrapping its engine, whose pass
// stats are merged into the parent's.
type Compilation struct {
	Kernel  *ir.Kernel
	Machine *machine.Machine
	Opts    Options

	// Products of the lower pass.
	Graph *depgraph.Graph
	MinII int
	MaxII int

	// II is the initiation interval under trial (attempt contexts only).
	II int

	Diags []Diag

	eng   *engine
	sched *Schedule
	clock *passClock
}

// runPass drives one pass under the clock, counting a failure when it
// errors and bracketing it with trace events. The pass name is attached
// as a pprof label, so CPU and allocation profiles (csched -cpuprofile
// / -memprofile) attribute samples to pipeline stages.
//
// Every pass body runs under panic recovery: an invariant violation
// anywhere in the pass (the solver, copy insertion, buildSchedule's
// structural checks) is converted into a structured KindInternal
// CompileError carrying the pass, the operation in flight, and the
// recovered stack, so one bad kernel cannot take down a server or a
// portfolio race. The fault plane's pass site is probed here too: a
// firing Panic rule exercises exactly this recovery path, and a firing
// Exhaust rule fails the pass as if its search budget were spent.
func (c *Compilation) runPass(p Pass) error {
	c.clock.push(p.Name())
	c.tracePassBegin(p.Name())
	var err error
	pprof.Do(context.Background(), pprof.Labels("pass", p.Name()), func(context.Context) {
		defer func() {
			if r := recover(); r != nil {
				err = c.recoverPass(p.Name(), r)
			}
		}()
		if c.Opts.Faults.Probe(faultinject.SitePass, p.Name()) {
			err = passExhausted(p.Name())
			return
		}
		err = p.Run(c)
	})
	c.tracePassEnd(p.Name(), err == nil)
	c.clock.pop()
	if err != nil {
		c.clock.fail(p.Name())
	}
	return err
}

// passExhausted is the Exhaust fault action at the pass site: the
// per-interval passes fail the current interval attempt (the same
// shape a real budget exhaustion takes), other passes fail the
// compilation with a schedule-kind error.
func passExhausted(name string) error {
	switch name {
	case PassPrioritize, PassPreassign, PassPlace:
		return errInfeasible
	}
	return compileErrorf(name, "injected budget exhaustion in %s pass", name)
}

// recoverPass converts a recovered pass panic into the structured
// internal-error report: pass name, the operation the place pass was
// working on (when one was in flight), the interval under trial, and
// the recovered stack.
func (c *Compilation) recoverPass(pass string, r any) *CompileError {
	c.traceRecover(pass)
	ce := &CompileError{
		Kind:   KindInternal,
		Pass:   pass,
		Reason: fmt.Sprintf("internal error in %s pass: %v", pass, r),
		Op:     NoOp,
		II:     c.II,
		Stack:  string(debug.Stack()),
	}
	if e := c.eng; e != nil && e.failOp != NoOp {
		ce.Op = e.failOp
		if int(e.failOp) < len(c.Kernel.Ops) {
			ce.Line = c.Kernel.Ops[e.failOp].Line
		}
	}
	return ce
}

// PassStat instruments one pass: how often it ran, how many work items
// it processed (operations placed, communications closed, copies
// inserted — pass-specific), how often it failed, and its cumulative
// self wall time (nested stages are attributed to themselves, not their
// caller: place's Wall excludes the close-comms time spent under it).
type PassStat struct {
	Name  string
	Runs  int
	Steps int
	Fails int
	Wall  time.Duration
}

// PassStats aggregates per-pass counters across a whole compilation —
// every initiation-interval attempt, failed and winning alike.
type PassStats []PassStat

// Get returns the stat named, nil when the pass never ran. The pointer
// is into the slice: do not hold it across appends.
func (ps PassStats) Get(name string) *PassStat {
	for i := range ps {
		if ps[i].Name == name {
			return &ps[i]
		}
	}
	return nil
}

// Merge folds other into ps, summing matching passes.
func (ps *PassStats) Merge(other PassStats) {
	for _, st := range other {
		if mine := ps.Get(st.Name); mine != nil {
			mine.Runs += st.Runs
			mine.Steps += st.Steps
			mine.Fails += st.Fails
			mine.Wall += st.Wall
		} else {
			*ps = append(*ps, st)
		}
	}
}

// sortCanonical orders the stats in pipeline order.
func (ps PassStats) sortCanonical() {
	sort.SliceStable(ps, func(i, j int) bool {
		ri, iok := passRank[ps[i].Name]
		rj, jok := passRank[ps[j].Name]
		if iok != jok {
			return iok // known passes first
		}
		if ri != rj {
			return ri < rj
		}
		return ps[i].Name < ps[j].Name
	})
}

// String renders the per-pass table csched -passes prints.
func (ps PassStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-13s %6s %9s %6s %12s\n", "pass", "runs", "steps", "fails", "wall")
	for _, st := range ps {
		fmt.Fprintf(&b, "%-13s %6d %9d %6d %12v\n",
			st.Name, st.Runs, st.Steps, st.Fails, st.Wall.Round(time.Microsecond))
	}
	return strings.TrimRight(b.String(), "\n")
}

// passClock measures pass self-time on a stack: push suspends the
// caller's accumulation, pop resumes it, so recursive stages (place →
// close-comms → insert-copies → place again, through copy scheduling)
// attribute every nanosecond to exactly one pass.
type passClock struct {
	stats PassStats
	stack []clockFrame
}

type clockFrame struct {
	name  string
	start time.Time
}

func (pc *passClock) get(name string) *PassStat {
	if st := pc.stats.Get(name); st != nil {
		return st
	}
	pc.stats = append(pc.stats, PassStat{Name: name})
	return &pc.stats[len(pc.stats)-1]
}

func (pc *passClock) push(name string) {
	now := time.Now()
	if n := len(pc.stack); n > 0 {
		f := &pc.stack[n-1]
		pc.get(f.name).Wall += now.Sub(f.start)
		f.start = now
	}
	pc.get(name).Runs++
	pc.stack = append(pc.stack, clockFrame{name: name, start: now})
}

func (pc *passClock) pop() {
	now := time.Now()
	n := len(pc.stack) - 1
	f := pc.stack[n]
	pc.stack = pc.stack[:n]
	pc.get(f.name).Wall += now.Sub(f.start)
	if n > 0 {
		pc.stack[n-1].start = now
	}
}

func (pc *passClock) step(name string)            { pc.get(name).Steps++ }
func (pc *passClock) addSteps(name string, n int) { pc.get(name).Steps += n }
func (pc *passClock) fail(name string)            { pc.get(name).Fails++ }

// lowerPass readies the kernel for scheduling: IR verification, the
// unit-coverage check, dependence-graph construction, and the interval
// bounds (ResMII below, the derived or user-set cap above).
type lowerPass struct{}

func (lowerPass) Name() string { return PassLower }

func (lowerPass) Run(c *Compilation) error {
	if err := c.Kernel.Verify(); err != nil {
		return err
	}
	if err := checkUnits(c.Kernel, c.Machine); err != nil {
		return err
	}
	c.Graph = depgraph.Build(c.Kernel, c.Machine)
	minII, err := depgraph.ResMII(c.Kernel, c.Machine)
	if err != nil {
		return err
	}
	c.MinII = minII
	c.MaxII = c.Opts.MaxII
	if c.MaxII == 0 {
		c.MaxII = deriveMaxII(c.Kernel, c.MinII)
	}
	c.clock.addSteps(PassLower, len(c.Kernel.Ops))
	if c.MaxII < c.MinII {
		// Inverted interval bounds: the user cap is below the
		// resource/recurrence floor, so no interval can be tried.
		return compileErrorf(PassLower,
			"%s does not schedule on %s within II ≤ %d: Options.MaxII is below the resource/recurrence bound %d (inverted interval bounds)",
			c.Kernel.Name, c.Machine.Name, c.MaxII, c.MinII)
	}
	c.diag(PassLower, NoOp, "%d ops (%d loop), interval search [%d, %d]",
		len(c.Kernel.Ops), len(c.Kernel.Loop), c.MinII, c.MaxII)
	return nil
}

// errInfeasible fails an interval attempt; the engine's failBlock and
// failOp say where placement stopped.
var errInfeasible = fmt.Errorf("core: interval infeasible")

// attemptPasses is the per-interval pipeline realized from the options:
// the preassign pass participates only in the §6 two-phase baseline
// configuration (PipelineConfig.Preassign / Options.TwoPhase).
func attemptPasses(opts Options) []Pass {
	if opts.TwoPhase {
		return []Pass{prioritizePass{}, preassignPass{}, placePass{}}
	}
	return []Pass{prioritizePass{}, placePass{}}
}

// prioritizePass computes each block's scheduling order: the critical-
// path priority order of §4.6, or earliest-cycle order under the
// CycleOrder ablation. Orders depend only on the dependence graph, so
// both blocks are ordered up front.
type prioritizePass struct{}

func (prioritizePass) Name() string { return PassPrioritize }

func (prioritizePass) Run(c *Compilation) error {
	e := c.eng
	e.order = make(map[ir.BlockKind][]ir.OpID, 2)
	for _, block := range []ir.BlockKind{ir.LoopBlock, ir.PreambleBlock} {
		order := e.graph.PriorityOrder(block)
		if e.opts.CycleOrder {
			order = e.cycleOrder(block)
		}
		e.order[block] = order
		e.clock.addSteps(PassPrioritize, len(order))
	}
	return nil
}

// preassignPass binds every operation to one unit ahead of cycle
// scheduling (the §6 multi-phase baseline): class round-robin in
// priority order, per block.
type preassignPass struct{}

func (preassignPass) Name() string { return PassPreassign }

func (preassignPass) Run(c *Compilation) error {
	e := c.eng
	for _, block := range []ir.BlockKind{ir.LoopBlock, ir.PreambleBlock} {
		e.preassign(e.order[block])
		e.clock.addSteps(PassPreassign, len(e.order[block]))
	}
	return nil
}

// placePass runs the Fig. 11 unified assign-and-schedule loop over both
// blocks — the loop first (modulo scheduled at the candidate interval),
// then the preamble — with communication scheduling accepting or
// rejecting each tentative placement. A preamble failure after the loop
// placed is the §4.5 backtracking event; tryII counts it.
type placePass struct{}

func (placePass) Name() string { return PassPlace }

func (placePass) Run(c *Compilation) error {
	e := c.eng
	for _, block := range []ir.BlockKind{ir.LoopBlock, ir.PreambleBlock} {
		for _, id := range e.order[block] {
			// Record the operation in flight up front: on failure this is
			// the structured report's localization, and a recovered panic
			// mid-placement reads it for op context too.
			e.failBlock, e.failOp = block, id
			if e.cancelled() || !e.scheduleOp(id) {
				return errInfeasible
			}
			e.clock.step(PassPlace)
		}
	}
	return nil
}

// regallocPass freezes the winning engine into the final Schedule and
// computes the §7 implicit per-register-file demand ("When
// communication scheduling assigns a communication to a route through a
// specific register file, it implicitly allocates a register in that
// register file"), flagging files whose capacity the schedule exceeds —
// the overflows internal/regalloc's spill post-pass repairs.
type regallocPass struct{}

func (regallocPass) Name() string { return PassRegalloc }

func (regallocPass) Run(c *Compilation) error {
	c.sched = c.eng.buildSchedule()
	c.sched.RegDemand = implicitDemand(c.sched)
	for _, rf := range c.Machine.RegFiles {
		if d := c.sched.RegDemand[rf.ID]; d > rf.NumRegs {
			c.diag(PassRegalloc, NoOp, "register file %s: implicit demand %d exceeds %d registers (spill post-pass needed)",
				rf.Name, d, rf.NumRegs)
		}
	}
	c.clock.addSteps(PassRegalloc, len(c.sched.RegDemand))
	return nil
}

// implicitDemand computes the per-file implicit register demand of a
// finished schedule with the same modulo-variable-expansion accounting
// the §7 register-aware engine uses (pressure.go): a loop value live L
// cycles occupies ceil(L/II) registers, a loop invariant one register
// for the whole loop. (internal/regalloc refines this into a full spill
// plan; it imports core, so this summary lives core-side.)
func implicitDemand(s *Schedule) map[machine.RFID]int {
	type resKey struct {
		value ir.ValueID
		rf    machine.RFID
	}
	type span struct {
		wflat, lastRead int
		block           ir.BlockKind
		invariant       bool
	}
	res := make(map[resKey]*span)
	for _, r := range s.Routes {
		defOp, useOp := s.Ops[r.Def], s.Ops[r.Use]
		k := resKey{r.Value, r.W.RF}
		sp := res[k]
		if sp == nil {
			wflat := s.Assignments[r.Def].Cycle + s.Machine.Latency(defOp.Opcode) - 1
			sp = &span{wflat: wflat, lastRead: wflat, block: defOp.Block}
			res[k] = sp
		}
		if defOp.Block == ir.PreambleBlock && useOp.Block == ir.LoopBlock {
			sp.invariant = true
			continue
		}
		ii := 0
		if useOp.Block == ir.LoopBlock {
			ii = s.II
		}
		if read := s.Assignments[r.Use].Cycle + r.Distance*ii; read > sp.lastRead {
			sp.lastRead = read
		}
	}
	demand := make(map[machine.RFID]int)
	for k, sp := range res {
		regs := 1
		if !sp.invariant && sp.block == ir.LoopBlock && s.II > 0 {
			life := sp.lastRead - sp.wflat
			if life < 1 {
				life = 1
			}
			regs = (life + s.II - 1) / s.II
		}
		demand[k.rf] += regs
	}
	return demand
}

// verifyPass re-derives the §4.2 rules and the structural invariants
// from the finished schedule through the shared rules engine — the
// independent check that the pipeline's bookkeeping never leaks into
// its output.
type verifyPass struct{}

func (verifyPass) Name() string { return PassVerify }

func (verifyPass) Run(c *Compilation) error {
	if err := VerifySchedule(c.sched); err != nil {
		return &CompileError{Pass: PassVerify, Reason: err.Error(), Op: NoOp}
	}
	c.clock.addSteps(PassVerify, len(c.sched.Routes))
	return nil
}

// PipelineConfig names a pipeline shape: which ordering the prioritize
// pass uses, whether the preassign pass runs, and which place-stage
// heuristics are active. The §4.6/§6/§7 ablation switches scattered
// through Options are exactly pipeline reconfigurations, and the
// portfolio's racing variants are defined in these terms
// (DefaultVariants).
type PipelineConfig struct {
	// Order selects the prioritize pass's ordering: OrderPriority (the
	// paper's critical-path operation order) or OrderCycle (the greedy
	// ASAP ablation).
	Order string
	// Preassign inserts the preassign pass: the §6 two-phase baseline
	// that binds operations to units before cycle scheduling.
	Preassign bool
	// CostHeuristic enables the equation-1 communication-cost ordering
	// of candidate units in the place pass.
	CostHeuristic bool
	// RegisterAware enables §7 register-aware routing in the
	// close-comms stage.
	RegisterAware bool
}

// Prioritize-pass orderings.
const (
	OrderPriority = "priority"
	OrderCycle    = "cycle"
)

// Pipeline expresses the options' ablation switches as the pipeline
// configuration they select.
func (o Options) Pipeline() PipelineConfig {
	order := OrderPriority
	if o.CycleOrder {
		order = OrderCycle
	}
	return PipelineConfig{
		Order:         order,
		Preassign:     o.TwoPhase,
		CostHeuristic: !o.NoCostHeuristic,
		RegisterAware: o.RegisterAware,
	}
}

// Apply returns base with its ablation switches replaced by the
// configuration's; the budget and bound fields of base are kept.
// Options.Pipeline and Apply are inverses over the ablation switches.
func (pc PipelineConfig) Apply(base Options) Options {
	o := base
	o.CycleOrder = pc.Order == OrderCycle
	o.TwoPhase = pc.Preassign
	o.NoCostHeuristic = !pc.CostHeuristic
	o.RegisterAware = pc.RegisterAware
	return o
}

// String renders the pipeline shape, e.g.
// "prioritize(cycle)→preassign→place[cost,regaware]".
func (pc PipelineConfig) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "prioritize(%s)", pc.Order)
	if pc.Preassign {
		b.WriteString("→preassign")
	}
	b.WriteString("→place")
	var mods []string
	if pc.CostHeuristic {
		mods = append(mods, "cost")
	}
	if pc.RegisterAware {
		mods = append(mods, "regaware")
	}
	if len(mods) > 0 {
		fmt.Fprintf(&b, "[%s]", strings.Join(mods, ","))
	}
	return b.String()
}
