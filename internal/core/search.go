package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"strconv"
	"sync"

	"repro/internal/depgraph"
	"repro/internal/faultinject"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
)

// This file is the initiation-interval search engine: the ladder walk
// that used to live inline in compileOnce, factored behind a strategy
// seam so the sequential ladder (the default, bit-identical to the
// goldens) and the speculative parallel ladder (Options.Speculate)
// share one control flow.
//
// The walk itself — an escalating probe followed by binary refinement —
// is identical under both strategies; what differs is how one interval
// gets evaluated. The sequential evaluator calls tryII inline. The
// speculative evaluator races the walk's own future against a worker
// pool: the probe sequence is outcome-independent up to its first
// success, and each refinement step's candidate midpoints are computable
// ahead of the outcome, so idle workers evaluate upcoming rungs before
// the walk arrives. The walk consumes whatever is finished, computes
// inline whatever is not, and cancels rungs it can no longer consume
// (the lowest-II-wins protocol: proving an interval feasible obsoletes
// every speculative rung above the refinement bracket). Because the
// walk's decisions depend only on per-interval outcomes — and tryII's
// outcome for an interval is a pure function of the problem, unaffected
// by infeasibility-memo timing (a memo hit replaces a search with the
// failure it was bound to reach) — the schedule, its fingerprint, and
// the per-pass counters are bit-identical to the sequential ladder's
// regardless of worker count or finish order. Only the search-effort
// counters (Stats.PermSteps, Stats.MemoHits) may vary run to run in
// speculative mode; nothing derived from them feeds the schedule or
// the daemon's response bodies.

// iiEvaluator is the strategy seam of the interval search: one
// evaluation of tryII at a given interval, plus the walk's forecasts
// that let a speculative implementation run ahead.
type iiEvaluator interface {
	// eval returns tryII's outcome for interval ii, with all
	// cross-interval accounting (agg stats, pass stats, last failure)
	// already applied in walk order.
	eval(ii int) (eng *engine, aborted bool, err error)
	// probeHints forecasts the whole probe sequence before the probe
	// phase starts.
	probeHints(seq []int)
	// bracketHints forecasts one refinement step over the open-below
	// bracket (lo, hi): the walk will next evaluate (lo+hi)/2, and
	// after that a midpoint of whichever sub-bracket the outcome
	// selects. Intervals outside the bracket can no longer be consumed.
	bracketHints(lo, hi int)
	// finish releases evaluator resources; no eval may follow.
	finish()
}

// probeSequence reproduces the escalating probe ladder: when small
// intervals fail, the step grows so communication-bound kernels (whose
// feasible interval sits far above the resource bound) are found in
// logarithmically many probes. The sequence depends only on the search
// bounds — not on any attempt's outcome — which is what makes the probe
// phase speculable.
func probeSequence(minII, maxII int) []int {
	seq := make([]int, 0, 32)
	step := 1
	for ii := minII; ii <= maxII; {
		seq = append(seq, ii)
		ii += step
		if next := step + (step+1)/2; next <= maxII/8+1 {
			step = next
		}
	}
	return seq
}

// runLadder walks the interval search over an evaluator: probe upward
// until the first feasible interval, then refine back down to the
// smallest one that schedules. It returns the winning engine (nil when
// nothing scheduled), and on abort the interval the walk was consuming.
func runLadder(c *Compilation, ev iiEvaluator) (good *engine, abortII int, aborted bool, err error) {
	seq := probeSequence(c.MinII, c.MaxII)
	ev.probeHints(seq)
	failedBelow := c.MinII
	for _, ii := range seq {
		e, ab, evalErr := ev.eval(ii)
		if evalErr != nil {
			return nil, ii, false, evalErr
		}
		if ab {
			return nil, ii, true, nil
		}
		if e != nil {
			good = e
			break
		}
		failedBelow = ii + 1
	}
	if good == nil {
		return nil, 0, false, nil
	}
	for failedBelow < good.ii {
		ev.bracketHints(failedBelow, good.ii)
		mid := (failedBelow + good.ii) / 2
		e, ab, evalErr := ev.eval(mid)
		if evalErr != nil {
			return nil, mid, false, evalErr
		}
		if ab {
			return nil, mid, true, nil
		}
		if e != nil {
			good = e
		} else {
			failedBelow = mid + 1
		}
	}
	return good, 0, false, nil
}

// sequentialEval is the default strategy: every interval evaluates
// inline on the walk's goroutine, exactly the pre-extraction code path.
type sequentialEval struct {
	k      *ir.Kernel
	m      *machine.Machine
	g      *depgraph.Graph
	opts   Options
	cancel func() bool
	memo   *permMemo
	agg    *Stats
	ps     *PassStats
	fail   *placeFail
}

func (s *sequentialEval) eval(ii int) (*engine, bool, error) {
	return tryII(s.k, s.m, s.g, s.opts, ii, s.cancel, s.memo, s.agg, s.ps, s.fail)
}

func (s *sequentialEval) probeHints([]int)      {}
func (s *sequentialEval) bracketHints(int, int) {}
func (s *sequentialEval) finish()               {}

// cellState tracks one speculative rung through its lifecycle.
type cellState int8

const (
	cellPending cellState = iota // hinted, waiting for a worker
	cellRunning                  // a worker is evaluating it
	cellDone                     // outcome published
	cellTaken                    // claimed by the walk for inline evaluation
)

// specCell is one speculative rung: an interval hinted by the walk,
// evaluated by a pool worker into private scratch that the walk merges
// if and when it consumes the cell.
type specCell struct {
	ii       int
	state    cellState
	obsolete bool          // cancels the attempt through its poll hook
	done     chan struct{} // closed when state reaches cellDone

	eng     *engine
	aborted bool
	err     error
	stats   Stats
	ps      PassStats
	fail    placeFail
	rec     *obs.Recorder // private trace, spliced on consumption
}

// speculativeEval races the walk's forecast intervals over a shared
// worker pool. Workers claim the lowest pending interval first, so on a
// saturated pool the race degenerates gracefully toward the sequential
// evaluation order.
type speculativeEval struct {
	k    *ir.Kernel
	m    *machine.Machine
	g    *depgraph.Graph
	opts Options
	ctx  context.Context
	memo *permMemo

	agg  *Stats
	ps   *PassStats
	fail *placeFail

	tracer obs.Tracer // the compilation's tracer; cells get private ones

	mu        sync.Mutex
	cond      *sync.Cond
	cells     map[int]*specCell
	closed    bool
	cancelled int // rungs obsoleted before consumption
	wg        sync.WaitGroup
	ownSlot   *Pool // set when the search reserved the walk's own slot
}

// newSpeculativeEval starts the rung workers: up to opts.Speculate-1 of
// them, each holding a slot of the shared pool. An exhausted pool
// simply yields fewer workers — at zero the search runs sequentially
// through the same code path, bit-identical either way.
//
// Slot discipline: a caller handing in a shared pool (the daemon, a
// test) is expected to already hold the slot that admitted the walk,
// so only the extra workers acquire here. Without a shared pool the
// search builds a hardware-sized one (GOMAXPROCS) and reserves the
// walk's slot itself — racing rungs beyond the machine's parallelism
// would only steal cycles from the walk, so on a single hardware
// thread speculation degrades to the sequential path instead of
// oversubscribing it.
func newSpeculativeEval(ctx context.Context, k *ir.Kernel, m *machine.Machine, g *depgraph.Graph,
	opts Options, memo *permMemo, agg *Stats, ps *PassStats, fail *placeFail) *speculativeEval {
	s := &speculativeEval{
		k: k, m: m, g: g, opts: opts, ctx: ctx, memo: memo,
		agg: agg, ps: ps, fail: fail,
		tracer: opts.Tracer,
		cells:  make(map[int]*specCell),
	}
	s.cond = sync.NewCond(&s.mu)
	pool := opts.Pool
	if pool == nil {
		pool = NewPool(0)
		if pool.TryAcquire() { // fresh pool: the walk's slot
			s.ownSlot = pool
		}
	}
	for w := 1; w < opts.Speculate; w++ {
		if !pool.TryAcquire() {
			break
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer pool.Release()
			s.worker()
		}()
	}
	return s
}

// worker evaluates pending rungs, lowest interval first, until finish.
func (s *speculativeEval) worker() {
	for {
		s.mu.Lock()
		var cell *specCell
		for !s.closed {
			for _, c := range s.cells {
				if c.state == cellPending && !c.obsolete && (cell == nil || c.ii < cell.ii) {
					cell = c
				}
			}
			if cell != nil {
				break
			}
			s.cond.Wait()
		}
		if cell == nil {
			s.mu.Unlock()
			return
		}
		cell.state = cellRunning
		s.mu.Unlock()

		s.attempt(cell)

		s.mu.Lock()
		cell.state = cellDone
		s.mu.Unlock()
		close(cell.done)
	}
}

// attempt runs one rung into the cell's private scratch under panic
// isolation: a panic escaping tryII's per-pass recovery on a bare
// worker goroutine must become a structured internal error — consumed
// rungs report it exactly as the sequential ladder would, and rungs the
// walk never consumes discard it, so a crashing speculative rung cannot
// sink a search that never needed its answer.
func (s *speculativeEval) attempt(cell *specCell) {
	defer func() {
		if r := recover(); r != nil {
			cell.eng, cell.aborted = nil, false
			cell.err = &CompileError{
				Kind:   KindInternal,
				Pass:   PassPlace,
				Reason: fmt.Sprintf("internal error in speculative rung at II %d: %v", cell.ii, r),
				Op:     NoOp,
				II:     cell.ii,
				Stack:  string(debug.Stack()),
			}
		}
	}()
	if s.opts.Faults.Probe(faultinject.SiteSpeculate, strconv.Itoa(cell.ii)) {
		cell.aborted = true // forced exhaustion: the walk recomputes inline
		return
	}
	opts := s.opts
	if s.tracer != nil {
		cell.rec = obs.NewRecorder()
		opts.Tracer = cell.rec
	}
	cancel := func() bool {
		s.mu.Lock()
		obs := cell.obsolete
		s.mu.Unlock()
		return obs || s.ctx.Err() != nil
	}
	cell.eng, cell.aborted, cell.err = tryII(s.k, s.m, s.g, opts, cell.ii, cancel, s.memo, &cell.stats, &cell.ps, &cell.fail)
}

// eval consumes interval ii: a finished rung merges its scratch, a
// running rung is awaited, anything else evaluates inline on the walk's
// goroutine. Inline evaluation writes the shared accounting directly,
// exactly like the sequential strategy.
func (s *speculativeEval) eval(ii int) (*engine, bool, error) {
	s.mu.Lock()
	cell := s.cells[ii]
	if cell == nil || cell.state == cellPending {
		if cell != nil {
			cell.state = cellTaken
		}
		s.mu.Unlock()
		return s.inline(ii)
	}
	s.mu.Unlock()
	<-cell.done

	if cell.err != nil || (cell.aborted && s.ctx.Err() == nil) {
		// The cell's outcome is speculative residue, not the interval's
		// real answer: an abort here means the rung was obsoleted by a
		// narrowing race the walk then lost track of (or a worker-only
		// injected fault exhausted it), and an error means a panic
		// escaped onto the bare worker goroutine. Recomputing inline
		// restores sequential parity either way — a genuine engine panic
		// reproduces deterministically through runPass's recovery into
		// the same structured internal error the sequential ladder
		// reports, while faults targeting only the speculative plumbing
		// vanish without a trace in the schedule.
		return s.inline(ii)
	}
	s.merge(cell)
	return cell.eng, cell.aborted, nil
}

// inline evaluates ii on the walk's goroutine with ctx-only
// cancellation, identical to the sequential strategy.
func (s *speculativeEval) inline(ii int) (*engine, bool, error) {
	var cancel func() bool
	if s.ctx.Done() != nil {
		cancel = func() bool { return s.ctx.Err() != nil }
	}
	return tryII(s.k, s.m, s.g, s.opts, ii, cancel, s.memo, s.agg, s.ps, s.fail)
}

// merge folds a consumed rung's private scratch into the shared
// accounting, in consumption order — the same order the sequential
// ladder would have applied it.
func (s *speculativeEval) merge(cell *specCell) {
	s.agg.add(cell.stats)
	if s.ps != nil {
		s.ps.Merge(cell.ps)
	}
	if s.fail != nil && cell.fail.name != "" {
		*s.fail = cell.fail
	}
	if s.tracer != nil {
		s.tracer.Emit(obs.Event{Kind: obs.KindSpecRung, Track: "speculate", II: int32(cell.ii)})
		if cell.rec != nil {
			for _, ev := range cell.rec.Events() {
				ev.Seq = 0
				s.tracer.Emit(ev)
			}
		}
	}
	if cell.eng != nil {
		// The winning engine outlives the race: point it back at the
		// compilation's tracer (its private recorder is spliced and
		// done) and at plain context cancellation.
		cell.eng.tracer = s.tracer
		cell.eng.cancel = nil
		if s.ctx.Done() != nil {
			ctx := s.ctx
			cell.eng.cancel = func() bool { return ctx.Err() != nil }
		}
	}
}

// probeHints enqueues the whole probe ladder.
func (s *speculativeEval) probeHints(seq []int) {
	s.mu.Lock()
	for _, ii := range seq {
		s.hintLocked(ii)
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// bracketHints narrows the race to the refinement bracket (lo, hi) —
// rungs outside it are obsolete, lowest-II-wins — and enqueues the
// step's midpoint plus the midpoints of both possible sub-brackets.
func (s *speculativeEval) bracketHints(lo, hi int) {
	mid := (lo + hi) / 2
	s.mu.Lock()
	for _, c := range s.cells {
		if !c.obsolete && (c.state == cellPending || c.state == cellRunning) && (c.ii <= lo || c.ii >= hi) {
			c.obsolete = true
			s.cancelled++
		}
	}
	s.hintLocked(mid)
	if lo < mid {
		s.hintLocked((lo + mid) / 2) // next midpoint if mid proves feasible
	}
	if mid+1 < hi {
		s.hintLocked((mid + 1 + hi) / 2) // next midpoint if mid fails
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// hintLocked enqueues one interval unless it is already tracked.
func (s *speculativeEval) hintLocked(ii int) {
	if s.cells[ii] != nil {
		return
	}
	s.cells[ii] = &specCell{ii: ii, done: make(chan struct{})}
}

// finish obsoletes every unconsumed rung and waits the workers out.
func (s *speculativeEval) finish() {
	s.mu.Lock()
	s.closed = true
	for _, c := range s.cells {
		if !c.obsolete && (c.state == cellPending || c.state == cellRunning) {
			c.obsolete = true
			s.cancelled++
		}
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
	if s.ownSlot != nil {
		s.ownSlot.Release()
	}
	if s.tracer != nil && s.cancelled > 0 {
		s.tracer.Emit(obs.Event{
			Kind: obs.KindSpecCancel, Track: "speculate",
			Value: int64(s.cancelled), HasValue: true,
		})
	}
	s.agg.SpecCancelled += s.cancelled
}

// add folds another Stats into s (cross-interval aggregation).
func (s *Stats) add(o Stats) {
	s.Attempts += o.Attempts
	s.AttemptFailures += o.AttemptFailures
	s.CopiesInserted += o.CopiesInserted
	s.PermSteps += o.PermSteps
	s.Backtracks += o.Backtracks
	s.IIsTried += o.IIsTried
	s.PressureOverflows += o.PressureOverflows
	s.MemoHits += o.MemoHits
	s.SpecCancelled += o.SpecCancelled
}
