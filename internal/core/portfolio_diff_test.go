package core_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/vliwsim"
)

// TestPortfolioDifferential is the differential harness: for every
// Table 1 kernel on every paper architecture, the portfolio schedule
// must pass the independent structural verifier, simulate cleanly on
// the cycle-accurate machine model, match the kernel's reference
// outputs, and leave memory bit-identical to the sequential Compile
// schedule's simulation. The portfolio may pick a different (better)
// interval or variant than the sequential scheduler; the program
// semantics may not change.
func TestPortfolioDifferential(t *testing.T) {
	specs := kernels.All()
	if testing.Short() {
		// The fast representatives: one fixed-point, one floating-point,
		// one unrolled, one control-heavy kernel.
		var fast []*kernels.Spec
		for _, s := range specs {
			switch s.Name {
			case "DCT", "FFT", "Block Warp", "Merge":
				fast = append(fast, s)
			}
		}
		specs = fast
	}
	archs := []*machine.Machine{
		machine.Central(), machine.Clustered(2), machine.Clustered(4), machine.Distributed(),
	}
	for _, m := range archs {
		for _, spec := range specs {
			t.Run(m.Name+"/"+spec.Name, func(t *testing.T) {
				k, err := spec.Kernel()
				if err != nil {
					t.Fatal(err)
				}
				seq, err := core.Compile(k, m, core.Options{})
				if err != nil {
					t.Fatalf("sequential: %v", err)
				}
				pf, stats, err := core.CompilePortfolio(context.Background(), k, m, core.Options{}, core.PortfolioOptions{Workers: 4})
				if err != nil {
					t.Fatalf("portfolio: %v", err)
				}
				if err := core.VerifySchedule(pf); err != nil {
					t.Fatalf("portfolio schedule fails verification: %v", err)
				}
				if pf.II > seq.II {
					t.Errorf("portfolio II=%d (winner %s) worse than sequential II=%d",
						pf.II, stats.WinnerName(), seq.II)
				}

				cfg := vliwsim.Config{InitMem: spec.Init()}
				seqRes, err := vliwsim.Run(seq, cfg)
				if err != nil {
					t.Fatalf("sequential simulation: %v", err)
				}
				pfRes, err := vliwsim.Run(pf, vliwsim.Config{InitMem: spec.Init()})
				if err != nil {
					t.Fatalf("portfolio simulation: %v", err)
				}
				if err := spec.Check(pfRes.Mem); err != nil {
					t.Fatalf("portfolio outputs fail the reference check: %v", err)
				}
				if !reflect.DeepEqual(seqRes.Mem, pfRes.Mem) {
					t.Fatalf("portfolio simulation memory differs from sequential")
				}
				if seqRes.IterationsRun != pfRes.IterationsRun {
					t.Fatalf("iteration counts differ: sequential %d, portfolio %d",
						seqRes.IterationsRun, pfRes.IterationsRun)
				}
			})
		}
	}
}
