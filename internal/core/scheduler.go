package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/depgraph"
	"repro/internal/faultinject"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
)

// attemptBudgetDefault bounds (cycle, unit) placements tried per
// operation when Options.AttemptBudget is zero.
const attemptBudgetDefault = 128

// Options tune the scheduler. The zero value gives the configuration
// used for the paper's results; the ablation switches reproduce the
// §4.6 design-choice comparisons (Options.Pipeline expresses them as a
// pipeline configuration).
type Options struct {
	// MaxII caps the initiation-interval search; 0 derives a generous
	// bound from the loop size.
	MaxII int
	// PermBudget bounds each stub-permutation search (§4.4); 0 means
	// the default of 4096 steps.
	PermBudget int
	// MaxCandidates caps ordered stub-candidate lists; 0 means 1024. A
	// positive cap must be at least the machine's CandidateFloor — the
	// longest statically ordered stub list — or §4.4 completeness breaks;
	// ValidateFor rejects smaller caps.
	MaxCandidates int
	// ScanWindow bounds how many cycles past the dependence-earliest
	// cycle an operation is tried on, and how far cross-block copies
	// scan; 0 derives defaults (4·II in the loop, 256 in the preamble).
	ScanWindow int
	// NoCostHeuristic disables the equation-1 communication-cost
	// ordering of candidate functional units (§4.6 ablation); units are
	// then tried by load and id only.
	NoCostHeuristic bool
	// CycleOrder schedules operations in cycle order (greedy ASAP)
	// instead of the paper's operation order along the critical path
	// (§4.6 ablation).
	CycleOrder bool
	// AttemptBudget bounds how many (cycle, unit) placements are tried
	// per operation before the current initiation interval is declared
	// infeasible; 0 means 128.
	AttemptBudget int
	// RegisterAware enables §7's proposed improvement: per-file
	// implicit register demand influences routing, steering values away
	// from files whose capacity the close would exceed (soft — falls
	// back when no file fits; Stats.PressureOverflows counts those).
	RegisterAware bool
	// TwoPhase emulates the multi-phase schedulers of §6 ("Most
	// scheduling algorithms assign operations to functional units and
	// schedule operations on cycles using separate phases"): every
	// operation is bound to a unit up front (class round-robin in
	// priority order) and only cycles are searched afterwards. The
	// paper's unified approach normally wins because "the multi-phase
	// approach requires that an operation be delayed to a later cycle
	// if an assigned functional unit is occupied, even if another
	// suitable functional unit is available."
	TwoPhase bool
	// Tracer receives structured events at every scheduling decision
	// point (internal/obs). nil — the default — disables tracing at
	// zero cost: no event is constructed, nothing allocates. Tracing is
	// passive and never changes a scheduling decision; pass an
	// obs.Recorder and export with obs.WriteChromeTrace, or fold the
	// schedule's interconnect usage with Schedule.InterconnectUtilization
	// (which needs no tracer at all).
	Tracer obs.Tracer
	// Degrade arms the graceful-degradation ladder: when the primary
	// configuration exhausts its search bounds (or its slice of the
	// deadline), CompileContext retries with the ladder's cheaper rungs
	// instead of failing outright. nil — the default — disables
	// degradation; see DefaultDegradeLadder. Only schedule-search
	// failures degrade: invalid input, cancellation, and internal
	// errors never do.
	Degrade *DegradeLadder
	// Faults arms the deterministic fault-injection plane
	// (internal/faultinject) for robustness testing: forced pass
	// panics, forced budget exhaustion, artificial solver delays. nil —
	// the default — disables injection at zero cost (one pointer
	// compare per probe site, nothing allocates).
	Faults *faultinject.Plane
	// Speculate arms the speculative parallel interval ladder: values
	// above 1 let up to that many workers race the upcoming rungs of
	// the probe/refinement walk while the walk consumes outcomes in
	// sequential order. The schedule is bit-identical to the sequential
	// ladder's regardless of worker count or finish order (see
	// internal/core/search.go), which is why Canonical collapses this
	// field: it is a throughput knob, never a configuration. 0 and 1
	// run the classic sequential ladder.
	Speculate int
	// Pool bounds speculative workers across concurrent compilations —
	// share one Pool between the daemon, CompilePortfolio, and
	// speculative searches to cap total parallelism machine-wide. nil
	// gives each speculative search a private hardware-sized pool
	// (GOMAXPROCS slots, one reserved for the walk itself), so
	// speculation never oversubscribes the machine no matter how large
	// Speculate is. Runtime plumbing only: like Tracer, it never
	// affects the schedule and is excluded from canonicalization.
	Pool *Pool
}

// Validate rejects option values that cannot mean anything: negative
// budgets and bounds (zero always means "use the default"). Compile and
// CompilePortfolio call it up front so a bad configuration fails with a
// descriptive options-pass error instead of being silently clamped to a
// default mid-attempt.
func (o Options) Validate() error {
	var bad []string
	if o.MaxII < 0 {
		bad = append(bad, fmt.Sprintf("MaxII %d is negative (0 derives a bound; positive caps the interval search)", o.MaxII))
	}
	if o.PermBudget < 0 {
		bad = append(bad, fmt.Sprintf("PermBudget %d is negative (0 means the 4096-step default)", o.PermBudget))
	}
	if o.MaxCandidates < 0 {
		bad = append(bad, fmt.Sprintf("MaxCandidates %d is negative (0 means the default of %d)", o.MaxCandidates, maxCandidatesDefault))
	}
	if o.ScanWindow < 0 {
		bad = append(bad, fmt.Sprintf("ScanWindow %d is negative (0 derives per-block defaults)", o.ScanWindow))
	}
	if o.AttemptBudget < 0 {
		bad = append(bad, fmt.Sprintf("AttemptBudget %d is negative (0 means the default of 128)", o.AttemptBudget))
	}
	if o.Speculate < 0 {
		bad = append(bad, fmt.Sprintf("Speculate %d is negative (0 or 1 means the sequential ladder; N>1 races N workers)", o.Speculate))
	}
	if len(bad) == 0 {
		return nil
	}
	ce := compileErrorf(PassOptions, "invalid options: %s", strings.Join(bad, "; "))
	ce.Kind = KindInvalidInput
	return ce
}

// Statically defaulted budget values: the value the scheduler
// substitutes when the corresponding Options field is zero. Exported so
// layers that key on a configuration (the daemon's content-addressed
// schedule cache) can canonicalize an Options value instead of treating
// the zero form and the spelled-out default as distinct.
const (
	DefaultPermBudget    = permBudgetDefault
	DefaultMaxCandidates = maxCandidatesDefault
	DefaultAttemptBudget = attemptBudgetDefault
)

// Canonical resolves the statically defaulted budget fields to their
// documented defaults: the result schedules bit-identically to o, and
// two option values that differ only in spelling a default as zero
// canonicalize equal. MaxII and ScanWindow stay untouched — their zero
// forms derive from the kernel and the interval under trial, not from
// a constant — as do the pointer-valued fields (Tracer, Degrade,
// Faults). Speculate and Pool collapse entirely: the speculative
// ladder's result is bit-identical to the sequential ladder's at any
// worker count, so speculation is throughput plumbing — two requests
// differing only in it must share one cache entry.
func (o Options) Canonical() Options {
	if o.PermBudget == 0 {
		o.PermBudget = DefaultPermBudget
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = DefaultMaxCandidates
	}
	if o.AttemptBudget == 0 {
		o.AttemptBudget = DefaultAttemptBudget
	}
	o.Speculate = 0
	o.Pool = nil
	return o
}

// ValidateFor checks the options against a concrete machine: everything
// Validate checks, plus that a positive MaxCandidates does not truncate
// any of the machine's statically ordered stub lists. A cap below the
// machine's CandidateFloor can cut same-distance stubs, and in a
// crowded cycle the surviving prefix may cover only conflicting buses —
// silently breaking the §4.4 completeness requirement. Compile and
// CompilePortfolio call this up front so the misconfiguration fails
// with a structured options-pass error instead of an occasional
// mysterious does-not-schedule.
func (o Options) ValidateFor(m *machine.Machine) error {
	if err := o.Validate(); err != nil {
		return err
	}
	if floor := m.CandidateFloor(); o.MaxCandidates > 0 && o.MaxCandidates < floor {
		ce := compileErrorf(PassOptions,
			"invalid options: MaxCandidates %d is below %s's candidate floor %d (the longest statically ordered stub list); truncating it breaks §4.4 completeness",
			o.MaxCandidates, m.Name, floor)
		ce.Kind = KindInvalidInput
		return ce
	}
	return nil
}

// Compile schedules kernel k onto machine m by running the pass
// pipeline: lower readies the kernel, then for each candidate
// initiation interval the per-interval passes (prioritize, preassign
// under TwoPhase, place — with close-comms and insert-copies nested
// inside place) attempt a schedule, and regalloc + verify finish the
// winner. The loop block is modulo scheduled at the smallest feasible
// initiation interval, then the preamble is list scheduled, with
// communication scheduling allocating interconnect for every value
// moved. The returned Schedule contains placements for every operation
// (including inserted copies), the route of every communication,
// instrumentation counters, and the per-pass statistics.
func Compile(k *ir.Kernel, m *machine.Machine, opts Options) (*Schedule, error) {
	return CompileContext(context.Background(), k, m, opts)
}

// compileOnce runs one full compilation of the primary (or one rung's)
// configuration, observing ctx cooperatively: the cancellation hook is
// armed only when ctx can actually be cancelled, so a background
// context compiles on the exact pre-cancellation code path and
// schedules stay bit-identical to it.
func compileOnce(ctx context.Context, k *ir.Kernel, m *machine.Machine, opts Options) (*Schedule, error) {
	c := &Compilation{Kernel: k, Machine: m, Opts: opts, clock: new(passClock)}
	if err := opts.ValidateFor(m); err != nil {
		return nil, c.decorate(err)
	}
	if err := c.runPass(lowerPass{}); err != nil {
		return nil, c.decorate(err)
	}
	var cancel func() bool
	if ctx.Done() != nil {
		cancel = func() bool { return ctx.Err() != nil }
	}
	var agg Stats
	var lastFail placeFail
	// One infeasibility memo per compilation: dead ends proven at one
	// rung short-circuit every later rung that re-poses them.
	memo := newPermMemo()
	var ev iiEvaluator
	if opts.Speculate > 1 {
		ev = newSpeculativeEval(ctx, k, m, c.Graph, opts, memo, &agg, &c.clock.stats, &lastFail)
	} else {
		ev = &sequentialEval{
			k: k, m: m, g: c.Graph, opts: opts, cancel: cancel, memo: memo,
			agg: &agg, ps: &c.clock.stats, fail: &lastFail,
		}
	}
	good, abortII, aborted, searchErr := runLadder(c, ev)
	ev.finish()
	if searchErr != nil {
		return nil, c.decorate(searchErr)
	}
	if aborted {
		return nil, c.decorate(c.ctxError(ctx, abortII, lastFail))
	}
	if good == nil {
		return nil, c.decorate(scheduleFailure(c, agg, lastFail))
	}
	good.stats.IIsTried = agg.IIsTried
	good.stats.Backtracks += agg.Backtracks
	good.stats.MemoHits += agg.MemoHits
	good.stats.SpecCancelled = agg.SpecCancelled
	c.eng = good
	c.II = good.ii
	if err := c.runPass(regallocPass{}); err != nil {
		return nil, c.decorate(err)
	}
	if err := c.runPass(verifyPass{}); err != nil {
		return nil, c.decorate(err)
	}
	c.clock.stats.sortCanonical()
	c.sched.Passes = c.clock.stats
	c.sched.Diags = c.Diags
	return c.sched, nil
}

// ctxError builds the structured cancellation/deadline report for a
// compilation abandoned at interval ii, localized to the operation the
// place pass was working on when the poll struck. An abort with a live
// context (portfolio loser-pruning hooks do this) reports as cancelled.
func (c *Compilation) ctxError(ctx context.Context, ii int, lastFail placeFail) *CompileError {
	c.traceCancel(ii)
	kind := KindCancelled
	verb := "cancelled"
	if ctx.Err() == context.DeadlineExceeded {
		kind = KindDeadlineExceeded
		verb = "deadline exceeded"
	}
	ce := compileErrorf(PassPlace, "%s on %s: compilation %s at II %d",
		c.Kernel.Name, c.Machine.Name, verb, ii)
	ce.Kind = kind
	ce.II = ii
	if lastFail.name != "" && lastFail.ii == ii {
		ce.Op = lastFail.op
		ce.Line = lastFail.line
	}
	return ce
}

// scheduleFailure builds the structured does-not-schedule report,
// localized to the last operation the place pass gave up on.
func scheduleFailure(c *Compilation, agg Stats, lastFail placeFail) *CompileError {
	ce := compileErrorf(PassPlace,
		"%s does not schedule on %s within II ≤ %d (%d attempts)",
		c.Kernel.Name, c.Machine.Name, c.MaxII, agg.Attempts)
	if lastFail.name != "" {
		ce.Op = lastFail.op
		ce.Line = lastFail.line
		c.diag(PassPlace, lastFail.op, "II %d: %s rejected every placement in the %v block",
			lastFail.ii, lastFail.name, lastFail.block)
	}
	return ce
}

// placeFail records where the place pass last gave up, for the
// structured failure report.
type placeFail struct {
	ii    int
	block ir.BlockKind
	op    ir.OpID
	name  string
	line  int
}

// deriveMaxII is the default cap on the initiation-interval search: a
// generous bound above the resource/recurrence minimum.
func deriveMaxII(k *ir.Kernel, minII int) int {
	return minII + 8*len(k.Loop) + 64
}

// checkUnits verifies that every operation — preamble included — has at
// least one functional unit able to execute it. ResMII performs this
// check for loop operations only, so a preamble-only class with no unit
// used to slip through and either spin the interval search to
// exhaustion or, under Options.TwoPhase, panic preassign with a
// divide by zero on the empty unit list.
func checkUnits(k *ir.Kernel, m *machine.Machine) error {
	for _, op := range k.Ops {
		if cls := op.Opcode.Class(); len(m.UnitsFor(cls)) == 0 {
			return &CompileError{
				Kind: KindInvalidInput,
				Pass: PassLower,
				Reason: fmt.Sprintf("no unit on %s executes %v (op %d %s)",
					m.Name, cls, op.ID, op.Name),
				Op:   op.ID,
				Line: op.Line,
			}
		}
	}
	return nil
}

// tryII attempts to schedule the kernel at exactly one initiation
// interval by running the per-interval passes over a fresh engine,
// accumulating cross-interval counters into agg and per-pass stats into
// ps (nil to skip). It returns the successful engine, or nil plus
// whether the attempt was abandoned by the cancellation hook rather
// than proven infeasible; a non-nil error is an internal (recovered
// panic) failure that must stop the whole interval search. fail, when
// non-nil, records where placement stopped. memo, when non-nil, is the
// shared infeasibility memo consulted and grown by the §4.4 solver.
func tryII(k *ir.Kernel, m *machine.Machine, g *depgraph.Graph, opts Options, ii int, cancel func() bool, memo *permMemo, agg *Stats, ps *PassStats, fail *placeFail) (*engine, bool, error) {
	if len(k.Loop) > 0 && !g.RecMIIFeasible(ii) {
		return nil, false, nil
	}
	agg.IIsTried++
	ac := &Compilation{Kernel: k, Machine: m, Opts: opts, Graph: g, II: ii, clock: new(passClock)}
	e := newEngine(k, m, g, opts, ii)
	e.cancel = cancel
	e.memo = memo
	e.clock = ac.clock
	ac.eng = e
	e.traceIIBegin()
	var failed error
	for _, p := range attemptPasses(opts) {
		if err := ac.runPass(p); err != nil {
			failed = err
			break
		}
	}
	e.traceIIEnd(failed == nil)
	if ps != nil {
		ps.Merge(ac.clock.stats)
	}
	if failed == nil {
		return e, false, nil
	}
	// The loop was placed but a cross-block communication could not
	// complete in the preamble: the §4.5 backtracking case (the
	// already-scheduled block is reopened by restarting).
	if e.failBlock == ir.PreambleBlock && !e.aborted {
		agg.Backtracks++
	}
	agg.Attempts += e.stats.Attempts
	agg.AttemptFailures += e.stats.AttemptFailures
	agg.PermSteps += e.stats.PermSteps
	agg.MemoHits += e.stats.MemoHits
	if fail != nil && e.failOp != NoOp {
		*fail = placeFail{ii: ii, block: e.failBlock, op: e.failOp, name: e.opString(e.failOp)}
		if int(e.failOp) < len(k.Ops) {
			fail.line = k.Ops[e.failOp].Line
		}
	}
	if failed != errInfeasible {
		// A pass failed for a reason beyond interval infeasibility — a
		// recovered panic converted into a structured internal error.
		return nil, false, failed
	}
	return nil, e.aborted, nil
}

// scheduleBlock schedules one block's operations in priority order —
// the pre-pipeline entry point, kept for white-box tests that drive a
// single block directly; tryII runs the equivalent prioritize /
// preassign / place passes instead.
func (e *engine) scheduleBlock(block ir.BlockKind) bool {
	order := e.graph.PriorityOrder(block)
	if e.opts.CycleOrder {
		order = e.cycleOrder(block)
	}
	if e.opts.TwoPhase {
		e.preassign(order)
	}
	for _, id := range order {
		if e.cancelled() || !e.scheduleOp(id) {
			return false
		}
	}
	return true
}

// preassign binds each operation to one unit ahead of cycle scheduling
// (the §6 multi-phase baseline): class round-robin in priority order.
func (e *engine) preassign(order []ir.OpID) {
	if e.assigned == nil {
		e.assigned = make(map[ir.OpID]machine.FUID)
	}
	next := make(map[ir.Class]int)
	for _, id := range order {
		cls := e.ops[id].Opcode.Class()
		units := e.mach.UnitsFor(cls)
		if len(units) == 0 {
			// Unexecutable class (checkUnits rejects these up front);
			// leave the op unbound so scheduleOp fails cleanly instead
			// of dividing by zero here.
			continue
		}
		e.assigned[id] = units[next[cls]%len(units)]
		next[cls]++
	}
}

// cycleOrder is the §4.6 ablation ordering: earliest-possible cycle
// first (greedy per-cycle filling), heights only breaking ties.
func (e *engine) cycleOrder(block ir.BlockKind) []ir.OpID {
	src := e.kern.BlockOps(block)
	order := make([]ir.OpID, len(src))
	copy(order, src)
	sort.SliceStable(order, func(i, j int) bool {
		ai, aj := e.graph.ASAP(order[i]), e.graph.ASAP(order[j])
		if ai != aj {
			return ai < aj
		}
		return e.graph.Height(order[i]) > e.graph.Height(order[j])
	})
	return order
}

// scheduleOp realizes the Fig. 11 flow for one operation: first
// possible cycle, each available functional unit in communication-cost
// order, communication scheduling accepting or rejecting; on rejection
// the next unit, then the next cycle.
func (e *engine) scheduleOp(id ir.OpID) bool {
	lo, hi, ok := e.window(id)
	if !ok {
		return false
	}
	block := e.ops[id].Block
	scan := lo + e.scanLimit(block)
	if scan > hi {
		scan = hi
	}
	budget := e.opts.AttemptBudget
	if budget <= 0 {
		budget = attemptBudgetDefault
	}
	for cycle := lo; cycle <= scan; cycle++ {
		if e.cancelled() {
			return false
		}
		for _, fu := range e.fuCandidates(id, cycle) {
			if !e.fuFree(block, fu, cycle) {
				continue
			}
			if e.attempt(id, cycle, fu) {
				return true
			}
			if budget--; budget <= 0 {
				return false
			}
		}
	}
	return false
}

// scanLimit bounds how far past the earliest cycle an operation is
// delayed before the initiation interval is declared infeasible. In
// the loop, cycles past one full wrap of the modulo table revisit the
// same resources and only grow copy ranges, so a short tail past II
// suffices.
func (e *engine) scanLimit(block ir.BlockKind) int {
	if e.opts.ScanWindow > 0 {
		return e.opts.ScanWindow
	}
	if block == ir.LoopBlock {
		n := e.ii + 16
		if n < 24 {
			n = 24
		}
		return n
	}
	return 256
}

// fuCandidates returns the units able to execute op, ordered by the
// §4.6 heuristic: lowest communication cost first, then lightest
// current load, then unit id.
func (e *engine) fuCandidates(id ir.OpID, cycle int) []machine.FUID {
	if fu, ok := e.assigned[id]; ok {
		return []machine.FUID{fu}
	}
	units := e.mach.UnitsFor(e.ops[id].Opcode.Class())
	out := make([]machine.FUID, len(units))
	copy(out, units)
	type rank struct {
		cost float64
		dep  int
		load int
	}
	ranks := make(map[machine.FUID]rank, len(out))
	for _, fu := range out {
		r := rank{load: e.fuLoad[fu]}
		if !e.opts.NoCostHeuristic {
			r.cost = e.commCost(id, fu, cycle)
		}
		// Spread consumers away from congested input files: a unit
		// whose files already hold many deposits competes harder for
		// its single write ports.
		f := e.mach.FU(fu)
		for slot := 0; slot < f.NumInputs; slot++ {
			for _, rs := range e.mach.ReadStubs(fu, slot) {
				r.dep += e.depositLoad[rs.RF]
			}
		}
		ranks[fu] = r
	}
	sort.SliceStable(out, func(i, j int) bool {
		ri, rj := ranks[out[i]], ranks[out[j]]
		if ri.cost != rj.cost {
			return ri.cost < rj.cost
		}
		if ri.dep != rj.dep {
			return ri.dep < rj.dep
		}
		if ri.load != rj.load {
			return ri.load < rj.load
		}
		return out[i] < out[j]
	})
	return out
}
