package core

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/machine"
)

// This file implements the per-operation communication-scheduling
// procedure of §4.3: when the scheduler tentatively places an operation
// on a cycle and functional unit, communication scheduling either
// accepts the placement — allocating stubs and routes, possibly
// inserting copy operations — or rejects it, leaving no trace.

// attempt is the accept/reject entry point of Fig. 11. It places op and
// runs the five steps of §4.3:
//
//  1. valid stubs are enumerated (candidates.go);
//  2. a non-conflicting permutation of read stubs is found for the
//     issue cycle;
//  3. a non-conflicting permutation of write stubs is found for the
//     completion cycle;
//  4. each closing communication whose stubs share a register file is
//     assigned that route;
//  5. remaining closing communications get copy operations inserted and
//     scheduled (recursively, through this same function).
//
// Steps 2–4 are driven per closing communication by closeComm, which
// jointly steers the read- and write-side permutations toward a shared
// register file — the nested search the paper describes in step 2 —
// and the whole-cycle permutations at the end give the operation's
// remaining (opening) communications their tentative stubs. On failure
// every mutation is rolled back and false is returned so the scheduler
// can try another unit or cycle (Fig. 11's reject edge).
//
// attempt re-enters itself through copy insertion at e.depth+1, so its
// working lists live in per-depth engine scratch rather than per-call
// allocations.
func (e *engine) attempt(id ir.OpID, cycle int, fu machine.FUID) bool {
	if e.cancelled() {
		return false
	}
	e.stats.Attempts++
	mark := e.mark()
	e.placeOp(id, fu, cycle)
	e.indexOpStubs(id)

	ds := e.scratchAt(e.depth)
	closings := e.closingComms(id, ds)
	// Stable insertion sort by ascending copy range.
	ranges := ds.ranges[:0]
	for _, cid := range closings {
		ranges = append(ranges, e.copyRange(e.comms[cid]))
	}
	for i := 1; i < len(closings); i++ {
		for j := i; j > 0 && ranges[j] < ranges[j-1]; j-- {
			ranges[j], ranges[j-1] = ranges[j-1], ranges[j]
			closings[j], closings[j-1] = closings[j-1], closings[j]
		}
	}
	ds.ranges = ranges
	for _, cid := range closings {
		if e.comms[cid].state == commClosed || e.comms[cid].state == commSplit {
			continue // closed as a side effect of an earlier closing
		}
		if !e.closeComm(e.comms[cid]) {
			e.rollback(mark)
			e.stats.AttemptFailures++
			return false
		}
	}

	// Give the operation's opening communications tentative stubs and
	// re-validate the whole issue and completion cycles.
	if !e.solveReads(e.issueSlotKey(id), noOperand, 0) || !e.solveWrites(e.completionSlotKey(id), noComm, 0) {
		e.rollback(mark)
		e.stats.AttemptFailures++
		return false
	}
	return true
}

// closingComms collects into ds.closings the active communications
// touching op whose other endpoint is already scheduled — the
// communications that close with this placement. Self-recurrences (an
// operation reading its own previous-iteration result) appear once,
// deduplicated by the epoch-stamped comm mark array.
func (e *engine) closingComms(id ir.OpID, ds *depthScratch) []CommID {
	out := ds.closings[:0]
	e.commEpoch++
	for _, cid := range e.commsTo[id] {
		c := e.comms[cid]
		if c.state != commSplit && c.state != commClosed && e.place[c.def].ok && !e.commSeen(cid) {
			out = append(out, cid)
		}
	}
	for _, cid := range e.commsFrom[id] {
		c := e.comms[cid]
		if c.state != commSplit && c.state != commClosed && e.place[c.use].ok && !e.commSeen(cid) {
			out = append(out, cid)
		}
	}
	ds.closings = out
	return out
}

// commSeen reports whether the communication was already visited this
// epoch and marks it.
func (e *engine) commSeen(cid CommID) bool {
	if int(cid) >= len(e.commMark) {
		e.commMark = append(e.commMark, make([]int32, int(cid)+64-len(e.commMark))...)
	}
	if e.commMark[cid] == e.commEpoch {
		return true
	}
	e.commMark[cid] = e.commEpoch
	return false
}

// closeComm is the clocked close-comms pipeline stage: one routed
// communication is one step, one rejection one failure, with nested
// stages (insert-copies, and the place work of scheduling the copies)
// attributed to themselves.
func (e *engine) closeComm(c *comm) bool {
	e.clock.push(PassCloseComms)
	e.traceStageBegin(PassCloseComms)
	ok := e.routeComm(c)
	e.traceStageEnd(PassCloseComms, ok)
	e.clock.pop()
	if ok {
		e.clock.step(PassCloseComms)
	} else {
		e.clock.fail(PassCloseComms)
	}
	return ok
}

// routeComm assigns communication c to a route (§4.3 steps 2–5 for one
// communication). It first tries each register file both stubs can
// access directly, steering the read permutation of the use's issue
// cycle and the write permutation of the def's completion cycle onto
// it; if no shared file works, it lets both permutations choose freely
// and bridges the chosen stubs with copy operations.
func (e *engine) routeComm(c *comm) bool {
	useKey := OperandKey{Op: c.use, Slot: c.slot}
	readCycle := e.issueSlotKey(c.use)
	writeCycle := e.completionSlotKey(c.def)

	tryDirect := func(rfs []machine.RFID) bool {
		for _, rf := range rfs {
			mark := e.mark()
			if e.solveReads(readCycle, useKey, rf) &&
				e.solveWrites(writeCycle, c.id, rf) {
				e.finishRoute(c)
				return true
			}
			e.rollback(mark)
		}
		return false
	}

	ds := e.scratchAt(e.depth)
	shared := e.sharedRouteRFs(c, ds.shared[:0])
	ds.shared = shared
	// With §7 register-aware routing, files whose capacity the close
	// would exceed are deferred: copies staged in colder files (placed
	// late, shrinking the hot residence — the spill shape) are
	// preferred, and the overflowing direct route is the last resort.
	coolRFs, hotRFs := ds.cool[:0], ds.hot[:0]
	if e.opts.RegisterAware {
		for _, rf := range shared {
			if e.pressureAllows(c, rf) {
				coolRFs = append(coolRFs, rf)
			} else {
				hotRFs = append(hotRFs, rf)
			}
		}
	} else {
		coolRFs = shared
	}
	ds.cool, ds.hot = coolRFs, hotRFs
	if tryDirect(coolRFs) {
		return true
	}

	// Before inserting copies, reuse an existing deposit: if an earlier
	// route (possibly through copies) already placed this value in a
	// register file the operand can read, the communication closes on
	// the deposit's write stub at zero additional cost — one copy then
	// serves every consumer in reach of its file.
	if e.closeOnDeposit(c, useKey, readCycle) {
		return true
	}

	// No direct route available: choose stubs freely and connect them
	// with copies (step 5).
	mark := e.mark()
	if e.solveReads(readCycle, noOperand, 0) {
		if or, ok := e.operandStub[useKey]; ok {
			target := or.stub.RF
			if len(hotRFs) > 0 {
				// §7 staging: the direct file is hot, so write into a
				// cool reachable file and copy just before the read —
				// splitting the residence exactly as the spill post-
				// pass would.
				for _, ws := range e.stagingRFs(c, target) {
					m2 := e.mark()
					if e.solveWrites(writeCycle, c.id, ws) {
						e.pinOperandStub(useKey)
						e.setCommW(c, c.wstub, true)
						if e.insertCopies(c, true) {
							return true
						}
					}
					e.rollback(m2)
				}
			} else if e.solveWrites(writeCycle, noComm, 0) && c.hasW {
				if c.wstub.RF == target {
					// The free permutations happened to form a route.
					e.finishRoute(c)
					return true
				}
				e.pinOperandStub(useKey)
				e.setCommW(c, c.wstub, true)
				if e.insertCopies(c, false) {
					return true
				}
			}
		}
	}
	e.rollback(mark)

	// Last resort: accept the overflow and route directly; the spill
	// post-pass can still repair it.
	if len(ds.hot) > 0 {
		if tryDirect(ds.hot) {
			e.stats.PressureOverflows++
			return true
		}
	}
	return false
}

// stagingRFs lists register files the def could park the value in while
// it waits for a late copy into the (hot) target: writable directly,
// copy-reachable to the target, and with capacity headroom. The list is
// capped to the coolest few candidates to bound the search.
func (e *engine) stagingRFs(c *comm, target machine.RFID) []machine.RFID {
	const maxStaging = 4
	type cand struct {
		rf   machine.RFID
		head int
	}
	var cands []cand
	for _, rf := range e.mach.WritableRFs(e.place[c.def].fu) {
		if rf == target || e.mach.CopyDistance(rf, target) < 1 {
			continue
		}
		head := e.mach.RegFiles[rf].NumRegs - e.rfPressure[rf]
		if head < 1 {
			continue
		}
		cands = append(cands, cand{rf, head})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].head > cands[j].head })
	if len(cands) > maxStaging {
		cands = cands[:maxStaging]
	}
	out := make([]machine.RFID, len(cands))
	for i, c2 := range cands {
		out[i] = c2.rf
	}
	return out
}

// finishRoute pins both stubs and marks the communication closed:
// "Once a communication has been assigned to a route it is closed and
// the stubs and any copy operations that compose the route cannot be
// changed" (§4.2). The write side is recorded as a deposit for reuse
// by later communications of the same value.
func (e *engine) finishRoute(c *comm) {
	e.pinOperandStub(OperandKey{Op: c.use, Slot: c.slot})
	e.setCommW(c, c.wstub, true)
	e.setCommState(c, commClosed)
	e.recordDeposit(c)
	e.trackPressure(c)
}

// rootValue resolves a (possibly copy-produced) value to the original
// it carries.
func (e *engine) rootValue(v ir.ValueID) ir.ValueID {
	if r, ok := e.roots[v]; ok {
		return r
	}
	return v
}

// recordDeposit indexes the closed route's write stub under the value's
// root, journaled, and bumps the per-file congestion counter.
func (e *engine) recordDeposit(c *comm) {
	root := e.rootValue(c.value)
	e.deposits[root] = append(e.deposits[root], deposit{def: c.def, stub: c.wstub})
	rf := c.wstub.RF
	e.depositLoad[rf]++
	e.log(func() {
		e.deposits[root] = e.deposits[root][:len(e.deposits[root])-1]
		e.depositLoad[rf]--
	})
}

// closeOnDeposit tries to close c against an existing deposit of the
// same value. A deposit qualifies when its file is directly readable by
// the operand, the value instance is available before the read (same
// iteration frame: the whole copy chain runs in the original def's
// iteration), and the read permutation accepts the file.
func (e *engine) closeOnDeposit(c *comm, useKey OperandKey, readCycle tKey) bool {
	root := e.rootValue(c.value)
	useBlock := e.ops[c.use].Block
	rflat := e.place[c.use].cycle + c.distance*e.blockII(useBlock)
	useFU := e.place[c.use].fu
	useSel := e.slotSel(useKey, useFU)
	for _, dep := range e.deposits[root] {
		if or, ok := e.operandStub[useKey]; ok && or.pinned && or.stub.RF != dep.stub.RF {
			continue
		}
		if !e.pressureAllows(c, dep.stub.RF) {
			continue
		}
		depOp := e.ops[dep.def]
		if depOp.Block == useBlock {
			if e.completionFlat(dep.def) >= rflat {
				continue
			}
		} else if !(depOp.Block == ir.PreambleBlock && useBlock == ir.LoopBlock) {
			continue
		}
		// The operand must be able to read the deposit's file directly.
		if !e.routes.Readable(useFU, useSel, dep.stub.RF) {
			continue
		}
		mark := e.mark()
		if !e.solveReads(readCycle, useKey, dep.stub.RF) {
			e.rollback(mark)
			continue
		}
		if dep.def == c.def {
			// The def already writes this file for another consumer;
			// share the identical stub outright.
			e.setCommW(c, dep.stub, true)
			e.finishRoute(c)
			return true
		}
		// Retarget the communication onto the depositing operation: a
		// single child communication whose write stub is the existing
		// (identical, hence conflict-free) deposit stub.
		child := e.newComm(dep.def, c.use, c.slot, c.srcIndex, e.ops[dep.def].Result, c.distance, c.id)
		e.setCommState(c, commSplit)
		old := c.children
		c.children = [2]CommID{child, noComm}
		e.log(func() { c.children = old })
		cc := e.comms[child]
		e.setCommW(cc, dep.stub, true)
		e.appendWritesAt(e.completionSlotKey(dep.def), child)
		e.finishRoute(cc)
		return true
	}
	return false
}
