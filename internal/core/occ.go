package core

import (
	"repro/internal/ir"
	"repro/internal/machine"
)

// occ is the reusable occupancy state behind one cycle-permutation
// solve. Buses and ports are flat arrays stamped with an epoch (bumped
// per solve, so resets are O(1)); the per-(register file, value
// instance) write-identity rule uses a small map with epoch-stamped
// values. The DFS search undoes placements through the touched lists
// the place calls return.
//
// The sharing rules encoded here are §4.2's:
//
//   - a bus has one driver and one value per cycle; stubs may share it
//     only when driver and value instance agree exactly;
//   - a read port reads one value instance per cycle (fan-out to
//     several buses is fine); multi-source (phi) operands never share;
//   - a write port accepts one value instance per cycle through one
//     bus;
//   - one value instance enters one register file through exactly one
//     (bus, port) pair — "two write stubs for the same result only
//     conflict if they write to the same register file using different
//     buses or register file ports".
type occ struct {
	epoch int32
	bus   []occCell
	rp    []occCell
	wp    []occCell
	in    []occCell // functional-unit inputs: one operand per input
	rfw   map[rfwKey]rfwVal
}

// maxInputs bounds per-unit operand inputs for input-cell indexing.
const maxInputs = 4

// occEntry identifies a value movement for sharing comparisons.
type occEntry struct {
	driverKind int8 // bus: 'o' output, 'p' read port
	driver     int32
	value      ir.ValueID
	flat       int32
	inv        bool
	uniq       int32
	bus        int32 // wp cells: delivering bus
}

type occCell struct {
	epoch int32
	e     occEntry
}

type rfwKey struct {
	rf    machine.RFID
	value ir.ValueID
	flat  int32
	inv   bool
}

type rfwVal struct {
	epoch int32
	bus   machine.BusID
	port  machine.WPID
}

// touched records one undoable placement.
type touched struct {
	kind int8 // 0 bus, 1 rp, 2 wp, 3 rfw
	id   int32
	key  rfwKey
	old  rfwVal
	had  bool
}

func newOcc(m *machine.Machine) *occ {
	return &occ{
		bus: make([]occCell, len(m.Buses)),
		rp:  make([]occCell, len(m.ReadPorts)),
		wp:  make([]occCell, len(m.WritePorts)),
		in:  make([]occCell, len(m.FUs)*maxInputs),
		rfw: make(map[rfwKey]rfwVal),
	}
}

// reset prepares the occupancy for a new solve.
func (o *occ) reset() { o.epoch++ }

// claimCell attempts to occupy cells[id] with e; it reports whether the
// cell was free or identically shared, and whether this call newly
// claimed it (and so must be undone on backtrack).
func (o *occ) claimCell(cells []occCell, id int32, e occEntry) (fresh, ok bool) {
	c := &cells[id]
	if c.epoch == o.epoch {
		return false, c.e == e
	}
	c.epoch = o.epoch
	c.e = e
	return true, true
}

// placeWrite claims a write stub's resources. It returns the touched
// list to undo and whether the stub fits.
func (o *occ) placeWrite(stub machine.WriteStub, value ir.ValueID, flat int32, inv bool, undo []touched) ([]touched, bool) {
	start := len(undo)
	be := occEntry{driverKind: 'o', driver: int32(stub.FU), value: value, flat: flat, inv: inv}
	if fresh, ok := o.claimCell(o.bus, int32(stub.Bus), be); !ok {
		return undo, false
	} else if fresh {
		undo = append(undo, touched{kind: 0, id: int32(stub.Bus)})
	}
	we := occEntry{value: value, flat: flat, inv: inv, bus: int32(stub.Bus)}
	if fresh, ok := o.claimCell(o.wp, int32(stub.Port), we); !ok {
		o.undo(undo[start:])
		return undo[:start], false
	} else if fresh {
		undo = append(undo, touched{kind: 2, id: int32(stub.Port)})
	}
	key := rfwKey{rf: stub.RF, value: value, flat: flat, inv: inv}
	cur, had := o.rfw[key]
	if had && cur.epoch == o.epoch {
		if cur.bus != stub.Bus || cur.port != stub.Port {
			o.undo(undo[start:])
			return undo[:start], false
		}
		return undo, true
	}
	undo = append(undo, touched{kind: 3, key: key, old: cur, had: had})
	o.rfw[key] = rfwVal{epoch: o.epoch, bus: stub.Bus, port: stub.Port}
	return undo, true
}

// placeRead claims a read stub's resources, including the unit input it
// delivers into (opnd uniquely identifies the consuming operand: two
// operands never share an input).
func (o *occ) placeRead(stub machine.ReadStub, value ir.ValueID, flat int32, inv bool, uniq int32, opnd int32, undo []touched) ([]touched, bool) {
	start := len(undo)
	pe := occEntry{value: value, flat: flat, inv: inv, uniq: uniq}
	if fresh, ok := o.claimCell(o.rp, int32(stub.Port), pe); !ok {
		return undo, false
	} else if fresh {
		undo = append(undo, touched{kind: 1, id: int32(stub.Port)})
	}
	be := occEntry{driverKind: 'p', driver: int32(stub.Port), value: value, flat: flat, inv: inv, uniq: uniq}
	if fresh, ok := o.claimCell(o.bus, int32(stub.Bus), be); !ok {
		o.undo(undo[start:])
		return undo[:start], false
	} else if fresh {
		undo = append(undo, touched{kind: 0, id: int32(stub.Bus)})
	}
	inID := int32(stub.FU)*maxInputs + int32(stub.Slot)
	ie := occEntry{uniq: opnd}
	if fresh, ok := o.claimCell(o.in, inID, ie); !ok {
		o.undo(undo[start:])
		return undo[:start], false
	} else if fresh {
		undo = append(undo, touched{kind: 4, id: inID})
	}
	return undo, true
}

// undo releases the listed placements (in any order; cells are
// independent).
func (o *occ) undo(list []touched) {
	for _, t := range list {
		switch t.kind {
		case 0:
			o.bus[t.id].epoch = 0
		case 1:
			o.rp[t.id].epoch = 0
		case 2:
			o.wp[t.id].epoch = 0
		case 4:
			o.in[t.id].epoch = 0
		case 3:
			if t.had {
				o.rfw[t.key] = t.old
			} else {
				delete(o.rfw, t.key)
			}
		}
	}
}
