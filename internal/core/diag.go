package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/ir"
)

// NoOp marks a diagnostic that is not tied to a particular operation.
const NoOp = ir.OpID(-1)

// Diag is one structured diagnostic emitted by a compiler pass. Op and
// Line localize it: Op is the kernel operation involved (NoOp when the
// diagnostic is not op-specific) and Line is the kernel-language source
// line that produced the operation (0 when the kernel was built
// directly in IR and carries no positions).
type Diag struct {
	Pass string
	Op   ir.OpID
	Line int
	Msg  string
}

func (d Diag) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s]", d.Pass)
	if d.Op != NoOp {
		fmt.Fprintf(&b, " op %d", d.Op)
	}
	if d.Line > 0 {
		fmt.Fprintf(&b, " (line %d)", d.Line)
	}
	b.WriteByte(' ')
	b.WriteString(d.Msg)
	return b.String()
}

// ErrorKind classifies a CompileError for programmatic handling: which
// failures are the kernel's fault, which are the caller's, which are
// the environment's (cancellation, deadlines), and which are ours
// (recovered internal panics). See DESIGN.md §4.10 for the taxonomy.
type ErrorKind uint8

const (
	// KindSchedule is the default: the kernel does not schedule within
	// the configured bounds (interval cap, permutation budget, attempt
	// budget). The only kind the degradation ladder retries.
	KindSchedule ErrorKind = iota
	// KindInvalidInput marks caller mistakes caught up front: negative
	// budgets, candidate caps below the machine's floor, unexecutable
	// opcode classes.
	KindInvalidInput
	// KindCancelled means the caller's context was cancelled and the
	// compilation unwound cooperatively.
	KindCancelled
	// KindDeadlineExceeded means the caller's deadline expired
	// mid-compilation.
	KindDeadlineExceeded
	// KindInternal marks an invariant violation (a panic) recovered by
	// the pass pipeline: the error carries the pass, the operation in
	// flight, and the stack.
	KindInternal
)

var errorKindNames = [...]string{
	KindSchedule:         "schedule",
	KindInvalidInput:     "invalid-input",
	KindCancelled:        "cancelled",
	KindDeadlineExceeded: "deadline-exceeded",
	KindInternal:         "internal",
}

// String names the kind for reports.
func (k ErrorKind) String() string {
	if int(k) < len(errorKindNames) {
		return errorKindNames[k]
	}
	return "unknown"
}

// CompileError is the structured failure report of the pass pipeline:
// which kernel on which machine failed, in which pass, and why. Kind
// classifies the failure; II is the initiation interval in flight when
// it struck (0 outside the per-interval passes); Stack holds the
// recovered goroutine stack for KindInternal errors. Op and Line
// localize op-specific failures the way Diag does; Diags carries the
// informational diagnostics accumulated before the failure, so a
// caller can show how far compilation got.
//
// The rendered message keeps the historical "core: ..." diagnostics
// (e.g. "does not schedule", "no unit") so existing callers matching on
// substrings keep working; the structured fields are for tools that
// want to present the failure properly (cmd/csched does).
type CompileError struct {
	Kind    ErrorKind
	Kernel  string
	Machine string
	Pass    string
	Reason  string
	Op      ir.OpID
	Line    int
	II      int
	Stack   string
	Diags   []Diag
}

func (e *CompileError) Error() string { return "core: " + e.Reason }

// Unwrap maps the cancellation kinds onto the standard context
// sentinels, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) work on compile errors.
func (e *CompileError) Unwrap() error {
	switch e.Kind {
	case KindCancelled:
		return context.Canceled
	case KindDeadlineExceeded:
		return context.DeadlineExceeded
	}
	return nil
}

// compileErrorf builds an op-unspecific CompileError.
func compileErrorf(pass, format string, args ...any) *CompileError {
	return &CompileError{Pass: pass, Reason: fmt.Sprintf(format, args...), Op: NoOp}
}

// decorate fills a pass error's kernel/machine identity and attaches
// the accumulated diagnostics; non-CompileError errors (malformed IR
// from Kernel.Verify, ResMII failures) pass through untouched.
func (c *Compilation) decorate(err error) error {
	if ce, ok := err.(*CompileError); ok {
		if ce.Kernel == "" {
			ce.Kernel = c.Kernel.Name
		}
		if ce.Machine == "" {
			ce.Machine = c.Machine.Name
		}
		ce.Diags = append(ce.Diags, c.Diags...)
	}
	return err
}

// diag records an informational diagnostic on the compilation.
func (c *Compilation) diag(pass string, op ir.OpID, format string, args ...any) {
	line := 0
	if op != NoOp && int(op) < len(c.Kernel.Ops) {
		line = c.Kernel.Ops[op].Line
	}
	c.Diags = append(c.Diags, Diag{Pass: pass, Op: op, Line: line, Msg: fmt.Sprintf(format, args...)})
}
