package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/machine"
)

func TestDefaultVariants(t *testing.T) {
	vs := DefaultVariants(Options{})
	if len(vs) != 5 {
		t.Fatalf("got %d variants, want 5", len(vs))
	}
	if vs[0].Name != "base" || vs[0].Opts != (Options{}) {
		t.Fatalf("variant 0 must be the untouched base, got %+v", vs[0])
	}
	if !vs[1].Opts.NoCostHeuristic || !vs[2].Opts.CycleOrder || !vs[3].Opts.TwoPhase || !vs[4].Opts.RegisterAware {
		t.Fatalf("ablation flips missing: %+v", vs)
	}
	// Flips are relative to the base: a base with cycle-order on races a
	// variant with it off.
	vs = DefaultVariants(Options{CycleOrder: true})
	if vs[2].Opts.CycleOrder {
		t.Fatalf("cycle-order flip not relative to base: %+v", vs[2].Opts)
	}
	if !vs[1].Opts.CycleOrder {
		t.Fatalf("other variants must inherit the base: %+v", vs[1].Opts)
	}
}

func TestPortfolioBasic(t *testing.T) {
	k := kernels.ByName("DCT").MustKernel()
	m := machine.Distributed()
	seq, err := Compile(k, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, stats, err := CompilePortfolio(context.Background(), k, m, Options{}, PortfolioOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySchedule(s); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if s.II > seq.II {
		t.Fatalf("portfolio II=%d worse than sequential II=%d", s.II, seq.II)
	}
	if stats.Winner < 0 || stats.WinnerII != s.II {
		t.Fatalf("stats inconsistent with schedule: %+v vs II=%d", stats, s.II)
	}
	if stats.WinnerName() != stats.Variants[stats.Winner].Name {
		t.Fatalf("WinnerName mismatch: %q", stats.WinnerName())
	}
	if stats.IIsTried == 0 {
		t.Fatal("no attempts recorded")
	}
	if got := len(stats.Variants); got != 5 {
		t.Fatalf("got %d variant stats, want 5", got)
	}
}

func TestPortfolioCustomVariants(t *testing.T) {
	k := kernels.ByName("FFT").MustKernel()
	m := machine.Central()
	s, stats, err := CompilePortfolio(context.Background(), k, m, Options{}, PortfolioOptions{
		Workers: 2,
		Variants: []Variant{
			{Name: "only", Opts: Options{}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySchedule(s); err != nil {
		t.Fatal(err)
	}
	if stats.Winner != 0 || stats.WinnerName() != "only" {
		t.Fatalf("single-variant portfolio must pick it: %+v", stats)
	}
}

func TestPortfolioContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	k := kernels.ByName("Sort").MustKernel()
	_, _, err := CompilePortfolio(ctx, k, machine.Clustered(4), Options{}, PortfolioOptions{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want a context.Canceled-wrapping error, got %v", err)
	}
	var ce *CompileError
	if !errors.As(err, &ce) || ce.Kind != KindCancelled {
		t.Fatalf("want a KindCancelled CompileError, got %v", err)
	}
}

// schedKey projects the deterministic parts of a Schedule: the interval,
// block spans, every placement, and every stub assignment. Stats and
// timings are excluded by construction.
type schedKey struct {
	II, PreambleLen, LoopSpan int
	Assignments               []Assignment
	Routes                    []Route
	Reads                     map[OperandKey]machine.ReadStub
	Dump                      string
}

func keyOf(s *Schedule) schedKey {
	return schedKey{
		II: s.II, PreambleLen: s.PreambleLen, LoopSpan: s.LoopSpan,
		Assignments: s.Assignments, Routes: s.Routes, Reads: s.Reads,
		Dump: s.Dump(),
	}
}

// TestPortfolioDeterminism runs the portfolio 20 times at worker counts
// 1, 2, and 8 and requires bit-identical schedules: same interval, same
// stub placements, same routes. The grid search guarantees every cell
// at or below the winning interval completes, so neither goroutine
// interleaving nor pool width may change the winner.
func TestPortfolioDeterminism(t *testing.T) {
	pairs := []struct {
		kernel string
		mach   *machine.Machine
	}{
		{"FFT", machine.Distributed()},
		{"DCT", machine.Central()},
	}
	const runs = 20
	for _, p := range pairs {
		k := kernels.ByName(p.kernel).MustKernel()
		var want schedKey
		var have bool
		for _, workers := range []int{1, 2, 8} {
			for run := 0; run < runs; run++ {
				s, _, err := CompilePortfolio(context.Background(), k, p.mach, Options{}, PortfolioOptions{Workers: workers})
				if err != nil {
					t.Fatalf("%s on %s workers=%d run=%d: %v", p.kernel, p.mach.Name, workers, run, err)
				}
				got := keyOf(s)
				if !have {
					want, have = got, true
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s on %s workers=%d run=%d: schedule differs from first run\nfirst:\n%s\nthis:\n%s",
						p.kernel, p.mach.Name, workers, run, want.Dump, got.Dump)
				}
			}
		}
	}
}

// TestPortfolioBeatsSequentialSomewhere pins the quality property that
// motivates the portfolio: on at least one paper pair an ablation
// variant reaches a smaller interval than the sequential base
// configuration (DCT on the distributed machine schedules at the ResMII
// bound of 8 under register-aware routing; sequential base needs 10).
func TestPortfolioBeatsSequentialSomewhere(t *testing.T) {
	k := kernels.ByName("DCT").MustKernel()
	m := machine.Distributed()
	seq, err := Compile(k, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, stats, err := CompilePortfolio(context.Background(), k, m, Options{}, PortfolioOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.II >= seq.II {
		t.Fatalf("portfolio II=%d (winner %s) does not beat sequential II=%d",
			s.II, stats.WinnerName(), seq.II)
	}
}

// TestPortfolioSelectionTieBreak pins the deterministic tie-break:
// identical variants tie on interval and copies, so the lowest index
// must win.
func TestPortfolioSelectionTieBreak(t *testing.T) {
	b := ir.NewBuilder("tiny")
	b.Loop()
	v := b.Emit(ir.Add, "x", b.Const(1), b.Const(2))
	b.Emit(ir.Store, "", b.Val(v), b.Const(10), b.Const(0))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := CompilePortfolio(context.Background(), k, machine.Central(), Options{}, PortfolioOptions{
		Workers: 8,
		Variants: []Variant{
			{Name: "a", Opts: Options{}},
			{Name: "b", Opts: Options{}},
			{Name: "c", Opts: Options{}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Winner != 0 {
		t.Fatalf("tie must break to the lowest index, got winner %d (%s)", stats.Winner, stats.WinnerName())
	}
}
