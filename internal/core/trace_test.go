package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/depgraph"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/obs"
)

// TestCompileEmitsTraceEvents pins the tentpole contract: a traced
// compilation emits events at every decision-point family, the stream
// is balanced and exportable, and — crucially — tracing does not change
// the schedule.
func TestCompileEmitsTraceEvents(t *testing.T) {
	// FFT on the distributed machine exercises every event family:
	// placements are rejected (rollbacks) and copies are inserted.
	k := kernels.ByName("FFT").MustKernel()
	m := machine.Distributed()

	plain, err := Compile(k, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	traced, err := Compile(k, m, Options{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Fingerprint() != traced.Fingerprint() {
		t.Fatal("tracing perturbed the schedule")
	}
	if rec.Len() == 0 {
		t.Fatal("no events recorded")
	}

	byKind := make(map[obs.Kind]int)
	for _, ev := range rec.Events() {
		byKind[ev.Kind]++
	}
	for _, kind := range []obs.Kind{
		obs.KindPassBegin, obs.KindPassEnd,
		obs.KindIIBegin, obs.KindIIEnd,
		obs.KindOpPlace,
		obs.KindCommOpen, obs.KindCommClose,
		obs.KindStubWrite, obs.KindStubRead,
		obs.KindPermAttempt, obs.KindPermAccept,
		obs.KindCopyInsert, obs.KindRollback,
	} {
		if byKind[kind] == 0 {
			t.Errorf("no %v events emitted", kind)
		}
	}
	// Begin/end kinds must balance — the Chrome export depends on it.
	if byKind[obs.KindPassBegin] != byKind[obs.KindPassEnd] {
		t.Errorf("pass begin/end unbalanced: %d vs %d",
			byKind[obs.KindPassBegin], byKind[obs.KindPassEnd])
	}
	if byKind[obs.KindIIBegin] != byKind[obs.KindIIEnd] {
		t.Errorf("II begin/end unbalanced: %d vs %d",
			byKind[obs.KindIIBegin], byKind[obs.KindIIEnd])
	}
	// Permutation steps in the trace must agree with the Stats counter.
	steps := byKind[obs.KindPermAttempt]
	if steps != traced.Stats.PermSteps {
		t.Errorf("trace has %d perm attempts, Stats.PermSteps=%d", steps, traced.Stats.PermSteps)
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("compile trace fails schema validation: %v", err)
	}
}

// TestTraceDeterministic pins bit-identical traces across repeated
// sequential compilations.
func TestTraceDeterministic(t *testing.T) {
	k := accLoopKernel(t)
	m := machine.Clustered(2)
	export := func() []byte {
		rec := obs.NewRecorder()
		if _, err := Compile(k, m, Options{Tracer: rec}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := obs.WriteChromeTrace(&buf, rec.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatal("trace differs across identical sequential compilations")
	}
}

// TestPortfolioTraceSplice pins the portfolio's trace contract: the
// merged stream contains the variant lifecycle plus the spliced
// per-attempt streams, is schema-valid, and tracing does not change
// the winner.
func TestPortfolioTraceSplice(t *testing.T) {
	k := accLoopKernel(t)
	m := machine.Clustered(2)
	plain, _, err := CompilePortfolio(context.Background(), k, m, Options{}, PortfolioOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	traced, _, err := CompilePortfolio(context.Background(), k, m, Options{Tracer: rec}, PortfolioOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Fingerprint() != traced.Fingerprint() {
		t.Fatal("tracing perturbed the portfolio winner")
	}
	var begins, wins int
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case obs.KindVariantBegin:
			begins++
		case obs.KindVariantWin:
			wins++
		}
	}
	if begins != 5 || wins != 1 {
		t.Fatalf("variant lifecycle wrong: %d begins, %d wins", begins, wins)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("portfolio trace fails schema validation: %v", err)
	}
}

// TestDisabledTracerAllocatesNothing is the satellite CI guard: with a
// nil tracer, no emit helper may construct an event or allocate. The
// helpers are exactly the ones on the hot scheduling path.
func TestDisabledTracerAllocatesNothing(t *testing.T) {
	k := accLoopKernel(t)
	m := machine.Central()
	g := depgraph.Build(k, m)
	e := newEngine(k, m, g, Options{}, 4)
	if e.tracer != nil {
		t.Fatal("tracer unexpectedly set")
	}
	c := &comm{id: 1}
	key := OperandKey{Op: 0, Slot: 0}
	allocs := testing.AllocsPerRun(100, func() {
		e.traceIIBegin()
		e.traceIIEnd(true)
		e.traceOpPlace(0, 0, 3)
		e.traceCommW(c, machine.WriteStub{}, false, false)
		e.traceStubRead(key, machine.ReadStub{}, false)
		e.traceCommState(c, commClosed)
		e.tracePerm(obs.KindPermAttempt, 0, 1)
		e.traceCopy(c, 0)
		e.traceRollback(5)
		e.traceStageBegin(PassCloseComms)
		e.traceStageEnd(PassCloseComms, true)
	})
	if allocs != 0 {
		t.Fatalf("disabled-tracer path allocates %v times per run, want 0", allocs)
	}
	comp := &Compilation{Kernel: k, Machine: m}
	allocs = testing.AllocsPerRun(100, func() {
		comp.tracePassBegin(PassPlace)
		comp.tracePassEnd(PassPlace, true)
	})
	if allocs != 0 {
		t.Fatalf("disabled pass-trace path allocates %v times per run, want 0", allocs)
	}
}

// TestUtilizationReport pins the utilization reporter: totals match
// the machine's resource inventory, occupancy stays within bounds, the
// scheduled units show up busy, and the text heatmap renders.
func TestUtilizationReport(t *testing.T) {
	k := accLoopKernel(t)
	m := machine.Distributed()
	s, err := Compile(k, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := s.InterconnectUtilization()
	wantRows := len(m.FUs) + len(m.Buses) + len(m.ReadPorts) + len(m.WritePorts)
	if len(u.Resources) != wantRows {
		t.Fatalf("%d resource rows, want %d", len(u.Resources), wantRows)
	}
	busyFUs, busyBuses := 0, 0
	for _, r := range u.Resources {
		if r.LoopBusy < 0 || r.LoopBusy > r.LoopSlots || r.PreBusy < 0 || r.PreBusy > r.PreSlots {
			t.Errorf("%s %s: occupancy out of bounds: %+v", r.Kind, r.Name, r)
		}
		if r.LoopSlots != s.II {
			t.Errorf("%s %s: loop slots %d, want II=%d", r.Kind, r.Name, r.LoopSlots, s.II)
		}
		if r.PreSlots != s.PreambleLen {
			t.Errorf("%s %s: preamble slots %d, want %d", r.Kind, r.Name, r.PreSlots, s.PreambleLen)
		}
		if r.Kind == "fu" && r.LoopBusy+r.PreBusy > 0 {
			busyFUs++
		}
		if r.Kind == "bus" && r.LoopBusy+r.PreBusy > 0 {
			busyBuses++
		}
	}
	if busyFUs == 0 {
		t.Error("no functional unit reported busy")
	}
	if busyBuses == 0 {
		t.Error("no bus reported busy (every route crosses one)")
	}
	text := u.String()
	for _, want := range []string{"utilization", "fu", "bus", "read-port", "write-port", "█"} {
		if !strings.Contains(text, want) {
			t.Errorf("heatmap missing %q:\n%s", want, text)
		}
	}
	// Deterministic: same schedule, same report.
	if s.InterconnectUtilization().String() != text {
		t.Error("utilization report not deterministic")
	}
}
