package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

// Degenerate kernel shapes the differential harness surfaced: the
// scheduler must return errors on unschedulable inputs — never panic —
// and must handle empty and near-empty blocks.

// degenerateKernels builds the edge-case kernel shapes.
func degenerateKernels(t *testing.T) map[string]*ir.Kernel {
	t.Helper()
	out := make(map[string]*ir.Kernel)
	finish := func(name string, b *ir.Builder) {
		k, err := b.Finish()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = k
	}

	b := ir.NewBuilder("empty")
	finish("empty", b)

	b = ir.NewBuilder("single-op-preamble")
	b.Emit(ir.Add, "x", b.Const(1), b.Const(2))
	finish("single-op-preamble", b)

	b = ir.NewBuilder("preamble-only")
	v := b.Emit(ir.Add, "x", b.Const(1), b.Const(2))
	b.Emit(ir.Store, "", b.Val(v), b.Const(100), b.Const(0))
	finish("preamble-only", b)

	b = ir.NewBuilder("loop-only")
	b.Loop()
	lv := b.Emit(ir.Add, "y", b.Const(1), b.Const(2))
	b.Emit(ir.Store, "", b.Val(lv), b.Const(101), b.Const(0))
	finish("loop-only", b)

	b = ir.NewBuilder("single-op-loop")
	b.Loop()
	b.Emit(ir.Add, "y", b.Const(1), b.Const(2))
	finish("single-op-loop", b)

	return out
}

// allOptionVariants exercises every ablation switch on top of the base.
func allOptionVariants() []Options {
	return []Options{
		{},
		{NoCostHeuristic: true},
		{CycleOrder: true},
		{TwoPhase: true},
		{RegisterAware: true},
	}
}

func TestCompileDegenerateKernels(t *testing.T) {
	for name, k := range degenerateKernels(t) {
		for _, opts := range allOptionVariants() {
			s, err := Compile(k, machine.Distributed(), opts)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opts, err)
			}
			if err := VerifySchedule(s); err != nil {
				t.Fatalf("%s %+v: verify: %v", name, opts, err)
			}
		}
	}
}

func TestCompilePortfolioDegenerateKernels(t *testing.T) {
	for name, k := range degenerateKernels(t) {
		s, stats, err := CompilePortfolio(context.Background(), k, machine.Distributed(), Options{}, PortfolioOptions{Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := VerifySchedule(s); err != nil {
			t.Fatalf("%s: verify: %v", name, err)
		}
		if stats.Winner < 0 {
			t.Fatalf("%s: no winner recorded", name)
		}
	}
}

// missingUnitKernel uses a multiplier in the preamble; the fig5
// motivating-example machine has no multiplier. ResMII only validates
// loop operations, so before checkUnits this slipped through — and with
// TwoPhase the round-robin preassignment panicked with a divide by zero
// on the empty unit list.
func missingUnitKernel(t *testing.T) *ir.Kernel {
	t.Helper()
	b := ir.NewBuilder("premul")
	v := b.Emit(ir.Mul, "x", b.Const(3), b.Const(4))
	b.Emit(ir.Store, "", b.Val(v), b.Const(100), b.Const(0))
	b.Loop()
	lv := b.Emit(ir.Add, "y", b.Const(1), b.Const(2))
	b.Emit(ir.Store, "", b.Val(lv), b.Const(101), b.Const(0))
	k, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestCompileMissingUnitReturnsError(t *testing.T) {
	k := missingUnitKernel(t)
	for _, opts := range allOptionVariants() {
		s, err := Compile(k, machine.MotivatingExample(), opts)
		if err == nil {
			t.Fatalf("%+v: want error for unexecutable class, got schedule II=%d", opts, s.II)
		}
		if !strings.Contains(err.Error(), "no unit") {
			t.Fatalf("%+v: unexpected error: %v", opts, err)
		}
	}
}

func TestCompilePortfolioMissingUnitReturnsError(t *testing.T) {
	k := missingUnitKernel(t)
	_, _, err := CompilePortfolio(context.Background(), k, machine.MotivatingExample(), Options{}, PortfolioOptions{Workers: 4})
	if err == nil {
		t.Fatal("want error for unexecutable class")
	}
	if !strings.Contains(err.Error(), "no unit") {
		t.Fatalf("unexpected error: %v", err)
	}
}
