package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kernels"
	"repro/internal/machine"
)

// trippingContext is a context whose Err starts returning Canceled
// after the poll counter reaches trip — a deterministic stand-in for a
// context cancelled mid-compilation. Done is inherited non-nil from
// the embedded context so the scheduler arms its cancellation hook.
type trippingContext struct {
	context.Context
	polls atomic.Int64
	trip  int64
}

func newTrippingContext(trip int64) *trippingContext {
	ctx, cancel := context.WithCancel(context.Background())
	_ = cancel // never called: Err below drives cancellation
	return &trippingContext{Context: ctx, trip: trip}
}

func (c *trippingContext) Err() error {
	if c.polls.Add(1) >= c.trip {
		return context.Canceled
	}
	return nil
}

// TestCompileContextPreCancelled pins the simplest unwind: an already
// cancelled context fails fast with a structured cancelled error that
// unwraps to context.Canceled.
func TestCompileContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	k := kernels.ByName("DCT").MustKernel()
	_, err := CompileContext(ctx, k, machine.Distributed(), Options{})
	var ce *CompileError
	if !errors.As(err, &ce) || ce.Kind != KindCancelled {
		t.Fatalf("want KindCancelled CompileError, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not unwrap to context.Canceled: %v", err)
	}
	if ce.II <= 0 {
		t.Errorf("cancelled error missing the interval in flight: %+v", ce)
	}
	if ce.Pass != PassPlace {
		t.Errorf("cancelled error pass = %q, want %q", ce.Pass, PassPlace)
	}
}

// TestCompileContextExpiredDeadline pins the deadline flavor: the
// structured error reports KindDeadlineExceeded and unwraps to
// context.DeadlineExceeded.
func TestCompileContextExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	k := kernels.ByName("DCT").MustKernel()
	_, err := CompileContext(ctx, k, machine.Distributed(), Options{})
	var ce *CompileError
	if !errors.As(err, &ce) || ce.Kind != KindDeadlineExceeded {
		t.Fatalf("want KindDeadlineExceeded CompileError, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not unwrap to context.DeadlineExceeded: %v", err)
	}
}

// TestBackgroundContextIdentical pins the zero-overhead contract: with
// a background context (Done nil) the hook is never armed and the
// schedule is bit-identical to plain Compile's.
func TestBackgroundContextIdentical(t *testing.T) {
	k := kernels.ByName("FIR-INT").MustKernel()
	m := machine.Distributed()
	a, err := Compile(k, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileContext(context.Background(), k, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Dump() != b.Dump() {
		t.Fatal("CompileContext(background) diverges from Compile")
	}
}

// TestSolverStepCancellationLatency pins the amortized-polling bound:
// once the cancellation hook reports true, the §4.4 solver observes it
// within cancelPollInterval steps and latches the abort.
func TestSolverStepCancellationLatency(t *testing.T) {
	polls := 0
	e := &engine{cancel: func() bool { polls++; return polls >= 2 }}
	budget := 1 << 20
	steps := 0
	for e.solverStep(&budget) {
		steps++
		if steps > 10*cancelPollInterval {
			t.Fatalf("cancellation unobserved after %d steps", steps)
		}
	}
	if !e.aborted {
		t.Fatal("abort not latched")
	}
	// First poll happens on the first step (countdown starts at zero),
	// the hook trips on the second poll, one full interval later.
	if steps > 2*cancelPollInterval {
		t.Fatalf("cancellation took %d solver steps, bound is %d", steps, 2*cancelPollInterval)
	}
}

// TestMidCompileCancellationBounded cancels mid-compilation via a
// deterministic tripping context and checks both the structured error
// and that polling stops promptly after the trip — the scheduler must
// not keep grinding (and polling) long after cancellation.
func TestMidCompileCancellationBounded(t *testing.T) {
	const trip = 100
	ctx := newTrippingContext(trip)
	k := kernels.ByName("DCT").MustKernel()
	_, err := CompileContext(ctx, k, machine.Distributed(), Options{})
	var ce *CompileError
	if !errors.As(err, &ce) || ce.Kind != KindCancelled {
		t.Fatalf("want KindCancelled CompileError, got %v", err)
	}
	// After the trip, the in-flight attempt latches the abort on its
	// next poll and every layer unwinds; only a handful of further
	// polls (attempt boundaries, the final ctxError inspection) are
	// tolerable.
	if polls := ctx.polls.Load(); polls > trip+32 {
		t.Fatalf("%d polls after the hook tripped at %d: cancellation not prompt", polls-trip, trip)
	}
}

// TestPortfolioMidCompileCancellation cancels a portfolio race mid-
// flight: the run returns a structured cancelled error, stops claiming
// cells promptly, and leaks no goroutines.
func TestPortfolioMidCompileCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	const trip = 200
	ctx := newTrippingContext(trip)
	k := kernels.ByName("Sort").MustKernel()
	_, _, err := CompilePortfolio(ctx, k, machine.Clustered(4), Options{}, PortfolioOptions{Workers: 4})
	var ce *CompileError
	if !errors.As(err, &ce) || ce.Kind != KindCancelled {
		t.Fatalf("want KindCancelled CompileError, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not unwrap to context.Canceled: %v", err)
	}
	// The worker pool must have fully drained: CompilePortfolio only
	// returns after wg.Wait, so any surviving goroutine is a leak.
	// Allow unrelated runtime goroutines a moment to settle.
	for i := 0; ; i++ {
		if after := runtime.NumGoroutine(); after <= before {
			break
		} else if i >= 50 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentCancelCompileStress races many compilations against
// staggered cancellations under -race: every outcome must be either a
// verified schedule or a structured error, never a panic or a data
// race.
func TestConcurrentCancelCompileStress(t *testing.T) {
	k := kernels.ByName("FIR-INT").MustKernel()
	m := machine.Distributed()
	n := 16
	if testing.Short() {
		n = 4
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(trip int64) {
			defer wg.Done()
			ctx := newTrippingContext(trip)
			s, err := CompileContext(ctx, k, m, Options{})
			if err == nil {
				if verr := VerifySchedule(s); verr != nil {
					t.Errorf("trip %d: schedule fails verification: %v", trip, verr)
				}
				return
			}
			var ce *CompileError
			if !errors.As(err, &ce) || ce.Kind != KindCancelled {
				t.Errorf("trip %d: want KindCancelled, got %v", trip, err)
			}
		}(int64(1 + i*37))
	}
	wg.Wait()
}
