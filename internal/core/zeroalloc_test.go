package core

import (
	"testing"

	"repro/internal/depgraph"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/rules"
)

// TestSolverHotPathZeroAlloc pins the zero-allocation contract of the
// §4.3/§4.4 solver hot path: once an engine's scratch state is warm,
// solveWrites and solveReads allocate nothing. Candidate lists come
// interned from the machine's routing index or carved from the reused
// arena, the flex/choice working sets and the undo journal reuse their
// capacity, and the per-solve dedup is epoch-stamped rather than a
// fresh map. Each measured solve is bracketed by mark/rollback, the
// same discipline attempt uses, so the journal never grows past its
// warmed capacity.
func TestSolverHotPathZeroAlloc(t *testing.T) {
	k := wideLoopKernel(t, 4)
	for _, m := range []*machine.Machine{machine.Central(), machine.Clustered(4), machine.Distributed()} {
		g := depgraph.Build(k, m)
		var e *engine
		for ii := 1; ii < 64 && e == nil; ii++ {
			if !g.RecMIIFeasible(ii) {
				continue
			}
			cand := newEngine(k, m, g, Options{}, ii)
			if cand.scheduleBlock(ir.LoopBlock) && cand.scheduleBlock(ir.PreambleBlock) {
				e = cand
			}
		}
		if e == nil {
			t.Fatalf("%s: did not schedule", m.Name)
		}
		wkeys := make([]tKey, 0, len(e.writesAt))
		for key := range e.writesAt {
			wkeys = append(wkeys, key)
		}
		rkeys := make([]tKey, 0, len(e.readsAt))
		for key := range e.readsAt {
			rkeys = append(rkeys, key)
		}
		resolve := func() {
			for _, key := range wkeys {
				mk := e.mark()
				if !e.solveWrites(key, noComm, 0) {
					t.Fatalf("%s: write solve for %v failed", m.Name, key)
				}
				e.rollback(mk)
			}
			for _, key := range rkeys {
				mk := e.mark()
				if !e.solveReads(key, noOperand, 0) {
					t.Fatalf("%s: read solve for %v failed", m.Name, key)
				}
				e.rollback(mk)
			}
		}
		// Warm the scratch capacities (arena, flex, journal, marks) and
		// the first-request promotion set.
		for i := 0; i < 3; i++ {
			resolve()
		}
		if avg := testing.AllocsPerRun(10, resolve); avg != 0 {
			t.Errorf("%s: solver hot path allocates %.1f times per full re-solve, want 0", m.Name, avg)
		}
	}
}

// TestOccupancyBitsetZeroAlloc pins the epoch-stamped bitset path of
// rules.Occupancy directly: once the undo journal and the rfw entry
// list are warm, a full Reset / PlaceWrite / PlaceRead / Undo cycle —
// including epoch-lazy word clearing and conflicting re-claims —
// allocates nothing.
func TestOccupancyBitsetZeroAlloc(t *testing.T) {
	m := machine.Distributed()
	o := rules.NewOccupancy(m)
	// Greedily pick resource-disjoint stubs so every fresh-epoch claim
	// succeeds deterministically; conflicts are then provoked on purpose.
	usedBus := map[machine.BusID]bool{}
	usedWP := map[machine.WPID]bool{}
	wstubs := make([]machine.WriteStub, 0, 8)
	for fu := 0; fu < len(m.FUs) && len(wstubs) < cap(wstubs); fu++ {
		for _, s := range m.WriteStubs(machine.FUID(fu)) {
			if !usedBus[s.Bus] && !usedWP[s.Port] {
				usedBus[s.Bus], usedWP[s.Port] = true, true
				wstubs = append(wstubs, s)
				break
			}
		}
	}
	usedRP := map[machine.RPID]bool{}
	rstubs := make([]machine.ReadStub, 0, 8)
	for fu := 0; fu < len(m.FUs) && len(rstubs) < cap(rstubs); fu++ {
		for _, s := range m.ReadStubs(machine.FUID(fu), 0) {
			if !usedBus[s.Bus] && !usedRP[s.Port] {
				usedBus[s.Bus], usedRP[s.Port] = true, true
				rstubs = append(rstubs, s)
				break
			}
		}
	}
	if len(wstubs) == 0 || len(rstubs) == 0 {
		t.Fatal("distributed machine yields no routing stubs")
	}
	undo := make([]rules.Undo, 0, 64)
	cycle := func() {
		o.Reset()
		undo = undo[:0]
		ok := true
		for i, s := range wstubs {
			v := rules.Value{ID: ir.ValueID(i), Uniq: int32(i)}
			undo, ok = o.PlaceWrite(s, v, undo)
			if !ok {
				t.Fatalf("write stub %d rejected on a fresh epoch", i)
			}
			// An identical re-claim shares; a different value conflicts
			// and must roll back cleanly — both on the claimed-bit path.
			if undo, ok = o.PlaceWrite(s, v, undo); !ok {
				t.Fatalf("identical write re-claim %d rejected", i)
			}
			if undo, ok = o.PlaceWrite(s, rules.Value{ID: ir.ValueID(i + 100)}, undo); ok {
				t.Fatalf("conflicting write claim %d accepted", i)
			}
		}
		for i, s := range rstubs {
			v := rules.Value{ID: ir.ValueID(i), Uniq: int32(i)}
			if undo, ok = o.PlaceRead(s, v, int32(i+1), undo); !ok {
				t.Fatalf("read stub %d rejected on a fresh epoch", i)
			}
		}
		o.Undo(undo)
	}
	for i := 0; i < 3; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(10, cycle); avg != 0 {
		t.Errorf("bitset occupancy cycle allocates %.1f times, want 0", avg)
	}
}
