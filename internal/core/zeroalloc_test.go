package core

import (
	"testing"

	"repro/internal/depgraph"
	"repro/internal/ir"
	"repro/internal/machine"
)

// TestSolverHotPathZeroAlloc pins the zero-allocation contract of the
// §4.3/§4.4 solver hot path: once an engine's scratch state is warm,
// solveWrites and solveReads allocate nothing. Candidate lists come
// interned from the machine's routing index or carved from the reused
// arena, the flex/choice working sets and the undo journal reuse their
// capacity, and the per-solve dedup is epoch-stamped rather than a
// fresh map. Each measured solve is bracketed by mark/rollback, the
// same discipline attempt uses, so the journal never grows past its
// warmed capacity.
func TestSolverHotPathZeroAlloc(t *testing.T) {
	k := wideLoopKernel(t, 4)
	for _, m := range []*machine.Machine{machine.Central(), machine.Clustered(4), machine.Distributed()} {
		g := depgraph.Build(k, m)
		var e *engine
		for ii := 1; ii < 64 && e == nil; ii++ {
			if !g.RecMIIFeasible(ii) {
				continue
			}
			cand := newEngine(k, m, g, Options{}, ii)
			if cand.scheduleBlock(ir.LoopBlock) && cand.scheduleBlock(ir.PreambleBlock) {
				e = cand
			}
		}
		if e == nil {
			t.Fatalf("%s: did not schedule", m.Name)
		}
		wkeys := make([]tKey, 0, len(e.writesAt))
		for key := range e.writesAt {
			wkeys = append(wkeys, key)
		}
		rkeys := make([]tKey, 0, len(e.readsAt))
		for key := range e.readsAt {
			rkeys = append(rkeys, key)
		}
		resolve := func() {
			for _, key := range wkeys {
				mk := e.mark()
				if !e.solveWrites(key, noComm, 0) {
					t.Fatalf("%s: write solve for %v failed", m.Name, key)
				}
				e.rollback(mk)
			}
			for _, key := range rkeys {
				mk := e.mark()
				if !e.solveReads(key, noOperand, 0) {
					t.Fatalf("%s: read solve for %v failed", m.Name, key)
				}
				e.rollback(mk)
			}
		}
		// Warm the scratch capacities (arena, flex, journal, marks) and
		// the first-request promotion set.
		for i := 0; i < 3; i++ {
			resolve()
		}
		if avg := testing.AllocsPerRun(10, resolve); avg != 0 {
			t.Errorf("%s: solver hot path allocates %.1f times per full re-solve, want 0", m.Name, avg)
		}
	}
}
