package core

import (
	"fmt"

	"repro/internal/depgraph"
	"repro/internal/faultinject"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/rules"
)

// tKey addresses one resource cycle: preamble cycles are absolute, loop
// cycles are taken modulo the initiation interval (the modulo resource
// table of software pipelining).
type tKey struct {
	block ir.BlockKind
	slot  int
}

// fuKey addresses one functional unit's issue slot on one cycle.
type fuKey struct {
	block ir.BlockKind
	fu    machine.FUID
	slot  int
}

// placement is the scheduler's decision for one operation.
type placement struct {
	fu    machine.FUID
	cycle int // flat issue cycle within the op's block timeline
	ok    bool
}

// Stats counts scheduling work, exposed on the final Schedule. The
// paper reports one of these directly: backtracking events (§4.5,
// "Communication scheduling does not require backtracking to schedule
// any of the evaluation kernels on the distributed register file
// architecture").
type Stats struct {
	Attempts        int // operation placements tried
	AttemptFailures int // placements rejected by communication scheduling
	CopiesInserted  int // copy operations in the final schedule
	PermSteps       int // stub-permutation search steps
	// Backtracks counts §4.5 backtracking events: a scheduled block had
	// to be reopened because a cross-block communication could not
	// complete (the preamble failed after the loop was placed).
	// Initiation-interval retries are ordinary modulo scheduling and
	// are counted separately in IIsTried.
	Backtracks int
	IIsTried   int // initiation intervals attempted
	// PressureOverflows counts route closes where §7 register-aware
	// routing (Options.RegisterAware) found no capacity-respecting
	// file and fell back to unrestricted choice.
	PressureOverflows int
	// MemoHits counts §4.4 solves short-circuited by the infeasibility
	// memo: permutation problems whose signature matched a dead end
	// already proven this compilation. In speculative mode
	// (Options.Speculate) rungs share the memo concurrently, so this
	// counter — unlike the schedule itself — may vary run to run.
	MemoHits int
	// SpecCancelled counts speculative rungs obsoleted before the walk
	// consumed them (lowest-II-wins cancellations). Zero in sequential
	// mode; timing-dependent in speculative mode.
	SpecCancelled int
}

// engine is the scheduling state for one (kernel, machine) pair at one
// candidate initiation interval.
type engine struct {
	mach  *machine.Machine
	kern  *ir.Kernel
	graph *depgraph.Graph
	opts  Options

	// ops holds the kernel's operations plus inserted copies; indices
	// continue past the kernel's own ids. values likewise extends the
	// kernel's value table with copy results.
	ops    []*ir.Op
	values []*ir.Value

	place  []placement
	fuLoad map[machine.FUID]int // scheduled-op count per unit

	// physSlot overrides the physical input slot an operand is read
	// through; copies may be steered through any input of their unit.
	physSlot map[OperandKey]int

	comms     []*comm
	commsFrom [][]CommID
	commsTo   [][]CommID

	operandStub map[OperandKey]operandRead

	ii int // loop initiation interval under trial

	// Cycle indices. writesAt lists communications whose write stub
	// lands on the key's cycle (their def completes there); readsAt
	// lists operands read on the key's cycle. fuAt reserves issue slots.
	writesAt map[tKey][]CommID
	readsAt  map[tKey][]OperandKey
	fuAt     map[fuKey]ir.OpID

	journal []undoRec
	stats   Stats

	// routes is the machine's interned routing index: candidate stub
	// lists precomputed once per *Machine and shared by every engine
	// (see internal/machine/route.go).
	routes *machine.RouteIndex

	// occ and undoScratch are the reusable permutation-solver state;
	// the sharing rules themselves live in internal/rules.
	occ         *rules.Occupancy
	undoScratch []rules.Undo

	// memo is the compilation-wide infeasibility memo (nil disables
	// it): solve signatures proven unsatisfiable, shared across every
	// interval this compilation tries — and, under Options.Speculate,
	// across concurrently racing rungs.
	memo *permMemo
	// wListSig/rListSig cache candidate-list content hashes by slice
	// identity (see memo.go); engine-private, grown lazily, nil until
	// the memo first hashes a stable list.
	wListSig map[wListKey]uint64
	rListSig map[rListKey]uint64

	// Solver scratch, reused across solveWrites/solveReads calls so the
	// steady-state hot path allocates nothing. i32Arena backs candidate
	// lists built dynamically (pin filters, sibling-bus partitions, phi
	// scores); carved sub-slices stay valid across later growth because
	// their values are never rewritten. flexW/flexR/choiceBuf are the
	// permutation working sets. The epoch-stamped mark arrays replace
	// per-call seen maps (the rules.Occupancy reset pattern): bumping
	// the epoch invalidates every mark in O(1).
	i32Arena     []int32
	scoreScratch []int32
	flexW        []flexWrite
	flexR        []flexRead
	choiceBuf    []int
	opndEpoch    int32
	opndMark     []int32
	commEpoch    int32
	commMark     []int32

	// wcServed marks (unit, target) write-candidate lists already served
	// once, after which sibling-bus promotion no longer applies (see
	// solveWrites). Never rolled back: "first request" means first over
	// the engine's lifetime.
	wcServed map[wcKey]struct{}

	// dscratch holds per-recursion-depth working lists for attempt and
	// routeComm, which re-enter themselves through copy insertion (at
	// e.depth+1) while their own lists are still live. Elements are
	// pointers so growth never invalidates a frame's handle.
	dscratch []*depthScratch

	// roots maps copy results to the original value they carry;
	// deposits records, per original value, every register file a
	// closed route has already placed it in — later communications of
	// the same value reuse those deposits instead of inserting further
	// copies (one copy serves every consumer in its cluster).
	// depositLoad counts deposits per file, a light congestion signal
	// used to spread consumers across units.
	roots       map[ir.ValueID]ir.ValueID
	deposits    map[ir.ValueID][]deposit
	depositLoad map[machine.RFID]int

	// assigned holds the two-phase baseline's up-front unit bindings
	// (Options.TwoPhase); empty for the unified scheduler. Copies
	// inserted by communication scheduling stay free to pick units.
	assigned map[ir.OpID]machine.FUID

	// order holds each block's scheduling order, computed by the
	// prioritize pass and consumed by the preassign and place passes.
	order map[ir.BlockKind][]ir.OpID

	// clock attributes wall time and work counters to the pipeline's
	// passes; the nested close-comms and insert-copies stages push onto
	// it from inside place.
	clock *passClock

	// tracer receives structured events at every decision point (nil =
	// tracing disabled; see trace.go for the emit sites).
	tracer obs.Tracer

	// failBlock and failOp record where the place pass gave up, for
	// backtrack accounting and the structured failure report.
	failBlock ir.BlockKind
	failOp    ir.OpID

	// cancel, when non-nil, is polled during scheduling; once it returns
	// true the engine abandons the current interval (CompilePortfolio
	// uses it to kill attempts that can no longer win the race, and
	// CompileContext to observe ctx cancellation mid-solve). aborted
	// latches the first true poll so callers can tell a cancelled
	// attempt from an infeasible one. The solver's hot loops amortize
	// the poll: each §4.4 search step checks only the latched aborted
	// flag, and pollCountdown triggers a real poll (and a fault-plane
	// probe) every cancelPollInterval steps, bounding both the per-step
	// cost and the cancellation latency.
	cancel        func() bool
	aborted       bool
	pollCountdown int

	// faults is the armed fault-injection plane (Options.Faults); nil —
	// the default — keeps every probe site a single pointer compare.
	faults *faultinject.Plane

	// intervals and rfPressure implement §7's register-aware routing
	// (Options.RegisterAware): implicit register demand per file.
	intervals  map[livKey]liveInterval
	rfPressure map[machine.RFID]int

	depth int // copy-insertion recursion depth
}

// deposit is one register-file residence of a value.
type deposit struct {
	def  ir.OpID // operation whose write stub put the value there
	stub machine.WriteStub
}

// depthScratch is the reusable working state of one attempt/routeComm
// recursion depth.
type depthScratch struct {
	closings []CommID
	ranges   []int
	shared   []machine.RFID
	cool     []machine.RFID
	hot      []machine.RFID
}

// scratchAt returns the scratch frame for recursion depth d, growing
// the table on first descent.
func (e *engine) scratchAt(d int) *depthScratch {
	for len(e.dscratch) <= d {
		e.dscratch = append(e.dscratch, new(depthScratch))
	}
	return e.dscratch[d]
}

// choiceScratch returns the reusable permutation-choice buffer, sized
// to n.
func (e *engine) choiceScratch(n int) []int {
	if cap(e.choiceBuf) < n {
		e.choiceBuf = make([]int, n)
	}
	return e.choiceBuf[:n]
}

// undoKind discriminates journal records. The frequent solver-path
// mutations get typed records so recording them allocates nothing;
// cold-path mutations journal an arbitrary closure.
type undoKind uint8

const (
	undoFn undoKind = iota
	undoCommW
	undoCommState
	undoOperandStub
	undoOperandPin
	undoWritesAt
	undoReadsAt
)

// undoRec is one journal entry: a small union of the state needed to
// reverse each mutation kind.
type undoRec struct {
	kind    undoKind
	fn      func() // undoFn
	c       *comm  // undoCommW, undoCommState
	key     OperandKey
	t       tKey
	or      operandRead // undoOperandStub: previous assignment
	existed bool
	wstub   machine.WriteStub // undoCommW: previous stub
	hasW    bool
	wPinned bool
	state   commState // undoCommState: previous state
}

func newEngine(k *ir.Kernel, m *machine.Machine, g *depgraph.Graph, opts Options, ii int) *engine {
	e := &engine{
		mach:        m,
		kern:        k,
		graph:       g,
		opts:        opts,
		ii:          ii,
		operandStub: make(map[OperandKey]operandRead),
		writesAt:    make(map[tKey][]CommID),
		readsAt:     make(map[tKey][]OperandKey),
		fuAt:        make(map[fuKey]ir.OpID),
		fuLoad:      make(map[machine.FUID]int),
		physSlot:    make(map[OperandKey]int),
		routes:      m.Routes(),
		wcServed:    make(map[wcKey]struct{}),
		occ:         rules.NewOccupancy(m),
		roots:       make(map[ir.ValueID]ir.ValueID),
		deposits:    make(map[ir.ValueID][]deposit),
		depositLoad: make(map[machine.RFID]int),
		intervals:   make(map[livKey]liveInterval),
		rfPressure:  make(map[machine.RFID]int),
		clock:       new(passClock),
		tracer:      opts.Tracer,
		faults:      opts.Faults,
		failOp:      NoOp,
	}
	e.ops = make([]*ir.Op, len(k.Ops))
	copy(e.ops, k.Ops)
	e.values = make([]*ir.Value, len(k.Values))
	copy(e.values, k.Values)
	e.place = make([]placement, len(k.Ops))
	e.commsFrom = make([][]CommID, len(k.Ops))
	e.commsTo = make([][]CommID, len(k.Ops))
	e.buildComms()
	return e
}

// cancelled polls the engine's cancellation hook, latching the result.
func (e *engine) cancelled() bool {
	if !e.aborted && e.cancel != nil && e.cancel() {
		e.aborted = true
	}
	return e.aborted
}

// log appends an arbitrary undo action to the journal (cold paths; hot
// mutations append typed records directly).
func (e *engine) log(undo func()) { e.journal = append(e.journal, undoRec{kind: undoFn, fn: undo}) }

// mark returns a journal position for later rollback.
func (e *engine) mark() int { return len(e.journal) }

// rollback undoes every mutation after the mark, in reverse order.
func (e *engine) rollback(mark int) {
	e.traceRollback(len(e.journal) - mark)
	for i := len(e.journal) - 1; i >= mark; i-- {
		r := &e.journal[i]
		switch r.kind {
		case undoFn:
			r.fn()
			r.fn = nil
		case undoCommW:
			r.c.wstub, r.c.hasW, r.c.wPinned = r.wstub, r.hasW, r.wPinned
		case undoCommState:
			r.c.state = r.state
		case undoOperandStub:
			if r.existed {
				e.operandStub[r.key] = r.or
			} else {
				delete(e.operandStub, r.key)
			}
		case undoOperandPin:
			or := e.operandStub[r.key]
			or.pinned = false
			e.operandStub[r.key] = or
		case undoWritesAt:
			e.writesAt[r.t] = e.writesAt[r.t][:len(e.writesAt[r.t])-1]
		case undoReadsAt:
			e.readsAt[r.t] = e.readsAt[r.t][:len(e.readsAt[r.t])-1]
		}
		r.c = nil
	}
	e.journal = e.journal[:mark]
}

// latOf returns the result latency of op id.
func (e *engine) latOf(id ir.OpID) int { return e.mach.Latency(e.ops[id].Opcode) }

// blockII returns the modulo period of a block's resource table: the
// initiation interval for the loop, 0 (no wrap) for the preamble.
func (e *engine) blockII(b ir.BlockKind) int {
	if b == ir.LoopBlock {
		return e.ii
	}
	return 0
}

// slotOf maps a flat cycle to its resource-table slot.
func (e *engine) slotOf(b ir.BlockKind, cycle int) int {
	if b == ir.LoopBlock && e.ii > 0 {
		return ((cycle % e.ii) + e.ii) % e.ii
	}
	return cycle
}

// issueSlotKey returns the resource key of op's issue cycle.
func (e *engine) issueSlotKey(id ir.OpID) tKey {
	b := e.ops[id].Block
	return tKey{b, e.slotOf(b, e.place[id].cycle)}
}

// completionSlotKey returns the resource key of op's completion cycle.
func (e *engine) completionSlotKey(id ir.OpID) tKey {
	b := e.ops[id].Block
	return tKey{b, e.slotOf(b, e.place[id].cycle+e.latOf(id)-1)}
}

// completionFlat returns op's flat completion cycle.
func (e *engine) completionFlat(id ir.OpID) int {
	return e.place[id].cycle + e.latOf(id) - 1
}

// fuFree reports whether fu can accept an issue at the given flat cycle
// (respecting the unit's issue interval) in the block's table.
func (e *engine) fuFree(b ir.BlockKind, fu machine.FUID, cycle int) bool {
	interval := e.mach.FU(fu).IssueInterval
	if b == ir.LoopBlock && interval > e.ii {
		return false
	}
	for t := cycle; t < cycle+interval; t++ {
		if _, busy := e.fuAt[fuKey{b, fu, e.slotOf(b, t)}]; busy {
			return false
		}
	}
	return true
}

// placeOp records op's placement and reserves its functional unit,
// journaled. The caller must have checked fuFree.
func (e *engine) placeOp(id ir.OpID, fu machine.FUID, cycle int) {
	e.traceOpPlace(id, fu, cycle)
	b := e.ops[id].Block
	old := e.place[id]
	e.place[id] = placement{fu: fu, cycle: cycle, ok: true}
	e.fuLoad[fu]++
	e.log(func() { e.place[id] = old; e.fuLoad[fu]-- })
	interval := e.mach.FU(fu).IssueInterval
	for t := cycle; t < cycle+interval; t++ {
		k := fuKey{b, fu, e.slotOf(b, t)}
		e.fuAt[k] = id
		e.log(func() { delete(e.fuAt, k) })
	}
}

// indexOpStubs registers the stub cycle positions implied by op's
// placement: every active outgoing communication acquires a write-stub
// position on op's completion cycle, and every value operand acquires a
// read position on op's issue cycle.
func (e *engine) indexOpStubs(id ir.OpID) {
	op := e.ops[id]
	wk := e.completionSlotKey(id)
	for _, cid := range e.activeCommsFrom(id) {
		e.appendWritesAt(wk, cid)
	}
	rk := e.issueSlotKey(id)
	for slot, arg := range op.Args {
		if arg.Kind != ir.OperandValue {
			continue
		}
		e.appendReadsAt(rk, OperandKey{Op: id, Slot: slot})
	}
}

func (e *engine) appendWritesAt(k tKey, c CommID) {
	e.writesAt[k] = append(e.writesAt[k], c)
	e.journal = append(e.journal, undoRec{kind: undoWritesAt, t: k})
}

func (e *engine) appendReadsAt(k tKey, ok OperandKey) {
	e.readsAt[k] = append(e.readsAt[k], ok)
	e.journal = append(e.journal, undoRec{kind: undoReadsAt, t: k})
}

// window computes the feasible issue-cycle interval [lo, hi] for op
// from its scheduled neighbors in the dependence graph. hi may be
// math-huge when unconstrained. The second result is false when the
// window is empty.
func (e *engine) window(id ir.OpID) (int, int, bool) {
	lo, hi := 0, int(1)<<30
	ii := e.blockII(e.ops[id].Block)
	for _, edge := range e.graph.In[id] {
		if !e.place[edge.From].ok {
			continue
		}
		// Cross-block edges impose no cycle constraint: the loop begins
		// after the whole preamble, copies included.
		if e.ops[edge.From].Block != e.ops[id].Block {
			continue
		}
		if t := e.place[edge.From].cycle + edge.Latency - edge.Distance*ii; t > lo {
			lo = t
		}
	}
	for _, edge := range e.graph.Out[id] {
		if !e.place[edge.To].ok {
			continue
		}
		if e.ops[edge.To].Block != e.ops[id].Block {
			continue
		}
		if t := e.place[edge.To].cycle - edge.Latency + edge.Distance*ii; t < hi {
			hi = t
		}
	}
	return lo, hi, lo <= hi
}

// opString renders an op for error messages.
func (e *engine) opString(id ir.OpID) string {
	op := e.ops[id]
	name := op.Name
	if name == "" {
		name = fmt.Sprintf("op%d", id)
	}
	return fmt.Sprintf("%s(%v)", name, op.Opcode)
}
