package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/machine"
)

// Assembly renders the schedule as VLIW instruction words: one line per
// cycle per block, listing every functional unit's operation with its
// operand sources (register file and read bus) and its result's
// writeback routing (bus and destination files) — the explicit
// interconnect control a shared-interconnect machine executes. The
// format mirrors what a microcode listing for the machine would look
// like:
//
//	loop cycle   2 | mul0: p = mul x[v4 rf12], #3 => bus2{mul0.rf1, add0.rf0}
//
// Registers are not named (register allocation is the §7 post-pass);
// values appear by SSA name.
func (s *Schedule) Assembly() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; kernel %s on %s — II=%d, preamble=%d cycles\n",
		s.Kernel.Name, s.Machine.Name, s.II, s.PreambleLen)

	// Index routes by def for writeback rendering and by operand for
	// source rendering.
	writes := make(map[ir.OpID][]Route)
	for _, r := range s.Routes {
		writes[r.Def] = append(writes[r.Def], r)
	}

	for _, blk := range []ir.BlockKind{ir.PreambleBlock, ir.LoopBlock} {
		ids := s.OpsInBlock(blk)
		if len(ids) == 0 {
			continue
		}
		byCycle := make(map[int][]ir.OpID)
		maxCycle := 0
		for _, id := range ids {
			c := s.Assignments[id].Cycle
			byCycle[c] = append(byCycle[c], id)
			if c > maxCycle {
				maxCycle = c
			}
		}
		fmt.Fprintf(&b, "%s:\n", blk)
		for c := 0; c <= maxCycle; c++ {
			ops := byCycle[c]
			if len(ops) == 0 {
				continue
			}
			sort.Slice(ops, func(i, j int) bool {
				return s.Assignments[ops[i]].FU < s.Assignments[ops[j]].FU
			})
			var cols []string
			for _, id := range ops {
				cols = append(cols, s.renderOp(id, writes[id]))
			}
			fmt.Fprintf(&b, "  %s cycle %3d | %s\n", blk, c, strings.Join(cols, " | "))
		}
	}
	return b.String()
}

// renderOp renders one operation column.
func (s *Schedule) renderOp(id ir.OpID, outRoutes []Route) string {
	op := s.Ops[id]
	fu := s.Machine.FU(s.Assignments[id].FU)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: ", fu.Name)
	if op.Result != ir.NoValue {
		fmt.Fprintf(&sb, "%s = ", s.valueName(op.Result))
	}
	sb.WriteString(op.Opcode.String())
	for i, arg := range op.Args {
		if i == 0 {
			sb.WriteByte(' ')
		} else {
			sb.WriteString(", ")
		}
		switch arg.Kind {
		case ir.OperandConst:
			fmt.Fprintf(&sb, "#%d", arg.Const)
		case ir.OperandValue:
			name := s.valueName(arg.Srcs[0].Value)
			if len(arg.Srcs) > 1 {
				// Control-flow merge: initial and loop-carried sources
				// share the read stub.
				name = fmt.Sprintf("φ(%s,%s@%d)", name,
					s.valueName(arg.Srcs[1].Value), arg.Srcs[1].Distance)
			}
			if stub, ok := s.Reads[OperandKey{Op: id, Slot: i}]; ok {
				fmt.Fprintf(&sb, "%s[%s]", name, s.Machine.RegFiles[stub.RF].Name)
			} else {
				sb.WriteString(name)
			}
		}
	}
	if len(outRoutes) > 0 {
		// Group destinations per bus (one drive fans out to many files).
		perBus := make(map[machine.BusID][]string)
		seen := make(map[machine.WriteStub]bool)
		for _, r := range outRoutes {
			if seen[r.W] {
				continue
			}
			seen[r.W] = true
			perBus[r.W.Bus] = append(perBus[r.W.Bus], s.Machine.RegFiles[r.W.RF].Name)
		}
		var buses []machine.BusID
		for bus := range perBus {
			buses = append(buses, bus)
		}
		sort.Slice(buses, func(i, j int) bool { return buses[i] < buses[j] })
		var parts []string
		for _, bus := range buses {
			dsts := perBus[bus]
			sort.Strings(dsts)
			parts = append(parts, fmt.Sprintf("%s{%s}",
				s.Machine.Buses[bus].Name, strings.Join(dsts, ",")))
		}
		fmt.Fprintf(&sb, " => %s", strings.Join(parts, " "))
	}
	return sb.String()
}

func (s *Schedule) valueName(v ir.ValueID) string {
	if name := s.Values[v].Name; name != "" {
		return name + fmt.Sprintf("(v%d)", v)
	}
	return fmt.Sprintf("v%d", v)
}
