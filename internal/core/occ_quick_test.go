package core

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/machine"
)

// TestQuickIdentityRules fuzzes the occupancy sharing rules directly:
// identical write stubs for the same value instance always share;
// different value instances on one bus never do.
func TestQuickIdentityRules(t *testing.T) {
	m := machine.Distributed()
	stubs := m.WriteStubs(0)
	f := func(a, b uint16, v1, v2 uint8, f1, f2 uint8) bool {
		o := newOcc(m)
		o.reset()
		s1 := stubs[int(a)%len(stubs)]
		s2 := stubs[int(b)%len(stubs)]
		var undo []touched
		undo, ok1 := o.placeWrite(s1, ir.ValueID(v1), int32(f1), false, undo)
		if !ok1 {
			return false // empty occupancy must accept any stub
		}
		_, ok2 := o.placeWrite(s2, ir.ValueID(v2), int32(f2), false, undo)
		sameInstance := v1 == v2 && f1 == f2
		switch {
		case s1 == s2 && sameInstance:
			return ok2 // identical sharing allowed
		case s1.Bus == s2.Bus && !sameInstance:
			return !ok2 // one bus, two values: conflict
		case s1.RF == s2.RF && s1.Port == s2.Port && !sameInstance:
			return !ok2 // one port, two values: conflict
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
