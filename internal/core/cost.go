package core

import (
	"repro/internal/ir"
	"repro/internal/machine"
)

// This file implements the communication-cost heuristic of §4.6
// (equation 1):
//
//	cost = Σ over open communications  requiredCopies / (1 + copyRange)
//
// "Communication cost reflects the likelihood that assigning an
// operation to a specific functional unit will require copy operations,
// and the likelihood that those copy operations will increase schedule
// length." The scheduler orders candidate functional units by this
// cost; ties break toward less-loaded units.

// commCost evaluates equation 1 for placing op on fu at the given
// cycle. requiredCopies is the minimum copies needed regardless of
// where unscheduled partners land; copyRange is the actual range for
// scheduled partners and an ASAP-based estimate otherwise ("the copy
// range for each open communication is estimated by assuming that all
// unscheduled operations are scheduled on the earliest possible
// cycle").
func (e *engine) commCost(id ir.OpID, fu machine.FUID, cycle int) float64 {
	cost := 0.0
	for _, cid := range e.activeCommsTo(id) {
		c := e.comms[cid]
		if c.state == commClosed {
			continue
		}
		req := e.requiredCopiesTo(c, fu)
		if req <= 0 {
			// Even a zero-copy pairing needs a free write-port slot on
			// the def's completion cycle; a congested target behaves
			// like one forced copy.
			if e.place[c.def].ok && e.targetPortsBusy(c, fu) {
				req = 1
			} else {
				continue
			}
		}
		cost += float64(req) / float64(1+e.rangeEstimateTo(c, id, cycle))
	}
	for _, cid := range e.activeCommsFrom(id) {
		c := e.comms[cid]
		if c.state == commClosed || c.def == c.use {
			continue // self-recurrences were counted above
		}
		req := e.requiredCopiesFrom(c, fu)
		if req <= 0 {
			continue
		}
		cost += float64(req) / float64(1+e.rangeEstimateFrom(c, id, cycle))
	}
	return cost
}

// requiredCopiesTo estimates the copies needed for communication c if
// its use runs on fu.
func (e *engine) requiredCopiesTo(c *comm, fu machine.FUID) int {
	key := OperandKey{Op: c.use, Slot: c.slot}
	best := -1
	for _, slot := range e.allowedSlots(key, fu) {
		var d int
		if e.place[c.def].ok {
			d = e.mach.MinCopies(e.place[c.def].fu, fu, slot)
		} else {
			d = -1
			for _, dfu := range e.mach.UnitsFor(e.ops[c.def].Opcode.Class()) {
				if dd := e.mach.MinCopies(dfu, fu, slot); dd >= 0 && (d < 0 || dd < d) {
					d = dd
				}
			}
		}
		if d >= 0 && (best < 0 || d < best) {
			best = d
		}
	}
	return clampNonNeg(best)
}

// requiredCopiesFrom estimates the copies needed for communication c if
// its def runs on fu.
func (e *engine) requiredCopiesFrom(c *comm, fu machine.FUID) int {
	if e.place[c.use].ok {
		key := OperandKey{Op: c.use, Slot: c.slot}
		ufu := e.place[c.use].fu
		best := -1
		for _, slot := range e.allowedSlots(key, ufu) {
			if d := e.mach.MinCopies(fu, ufu, slot); d >= 0 && (best < 0 || d < best) {
				best = d
			}
		}
		return clampNonNeg(best)
	}
	best := -1
	for _, u := range e.mach.UnitsFor(e.ops[c.use].Opcode.Class()) {
		for s := 0; s < e.mach.FU(u).NumInputs; s++ {
			if d := e.mach.MinCopies(fu, u, s); d >= 0 && (best < 0 || d < best) {
				best = d
			}
		}
	}
	return clampNonNeg(best)
}

func clampNonNeg(v int) int {
	if v < 0 {
		return 0 // unreachable pairings are rejected elsewhere
	}
	return v
}

// rangeEstimateTo estimates the copy range of a communication into op,
// with op tentatively issuing at cycle.
func (e *engine) rangeEstimateTo(c *comm, id ir.OpID, cycle int) int {
	ii := e.blockII(e.ops[id].Block)
	rflat := cycle + c.distance*ii
	if e.place[c.def].ok {
		return maxInt(0, rflat-1-e.completionFlat(c.def))
	}
	if int(c.def) < len(e.graph.In) {
		est := rflat - 1 - (e.graph.ASAP(c.def) + e.latOf(c.def) - 1)
		return maxInt(0, est)
	}
	return 0
}

// rangeEstimateFrom estimates the copy range of a communication out of
// op, with op tentatively issuing at cycle.
func (e *engine) rangeEstimateFrom(c *comm, id ir.OpID, cycle int) int {
	ii := e.blockII(e.ops[id].Block)
	wflat := cycle + e.latOf(id) - 1
	if e.place[c.use].ok {
		return maxInt(0, e.place[c.use].cycle+c.distance*ii-1-wflat)
	}
	if int(c.use) < len(e.graph.In) {
		return maxInt(0, e.graph.ASAP(c.use)+c.distance*ii-1-wflat)
	}
	return 0
}

// targetPortsBusy reports whether every register file that candidate
// unit fu could read communication c's value from is already receiving
// a different value on the def's completion cycle. The scheduler uses
// this to steer consumers toward units whose input files still have a
// free write slot, which matters on machines with single shared write
// ports (the distributed architecture).
func (e *engine) targetPortsBusy(c *comm, fu machine.FUID) bool {
	wk := e.completionSlotKey(c.def)
	claims := e.writesAt[wk]
	if len(claims) == 0 {
		return false
	}
	key := OperandKey{Op: c.use, Slot: c.slot}
	for _, slot := range e.allowedSlots(key, fu) {
		for _, rs := range e.mach.ReadStubs(fu, slot) {
			// The file is busy only when competing distinct values
			// already fill every write port on the completion cycle.
			ports := e.mach.NumWritePorts(rs.RF)
			var competing [8]ir.ValueID
			n := 0
			for _, cid2 := range claims {
				c2 := e.comms[cid2]
				if c2.state == commSplit || !c2.hasW || c2.wstub.RF != rs.RF || c2.value == c.value {
					continue
				}
				dup := false
				for i := 0; i < n; i++ {
					if competing[i] == c2.value {
						dup = true
						break
					}
				}
				if !dup && n < len(competing) {
					competing[n] = c2.value
					n++
				}
				if n >= ports {
					break
				}
			}
			if n < ports {
				return false // a free (or same-value) slot exists
			}
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
