package core

import (
	"sync"

	"repro/internal/machine"
	"repro/internal/rules"
)

// This file implements the per-compilation infeasibility memo: hashed
// signatures of §4.4 stub-permutation problems already proven
// unsatisfiable, so the solver never re-proves a dead end. The same
// permutation state recurs constantly — across the placement retries of
// one interval attempt (an operation rejected at one cycle re-poses
// many of the same per-cycle solves at the next), across initiation
// intervals of the sequential ladder, and across the rungs of the
// speculative ladder — and a failed solve may burn thousands of DFS
// steps re-deriving the same exhaustion each time.
//
// Soundness rests on two rules. First, the signature covers the
// complete solve problem: a domain tag (writes vs reads), every
// obstacle placement (stub identity plus value instance plus, for
// reads, the operand nonce), and every flex item with its value
// instance and the full contents of its ordered candidate list — pin
// filters and sibling-bus promotion reshape those lists, so two solves
// with equal obstacles but different candidate sets hash apart. Second,
// only completed failures are recorded: a search abandoned by budget
// exhaustion, by cooperative cancellation, or by an injected fault
// proves nothing and must not poison the memo. A hit therefore
// short-circuits exactly the searches that were going to fail anyway,
// which is why schedules stay bit-identical with the memo on: the
// success path never changes, and a failure returns false either way.
//
// The memo key is 128 bits (two independently mixed 64-bit lanes), so
// at the memo's size cap a colliding pair is vanishingly improbable;
// a collision could only suppress a search that would have failed or
// — the harmful case — misreport a satisfiable state, which the
// differential goldens would surface as a schedule change.

// memoKey is a 128-bit problem signature.
type memoKey struct{ a, b uint64 }

// memoSig accumulates a signature incrementally, allocation-free. The
// two lanes mix every word with different full-period multipliers and
// different pre-mix operators, so they act as independent hashes.
type memoSig struct{ a, b uint64 }

// newMemoSig seeds a signature with a domain tag separating write-side
// from read-side problems.
func newMemoSig(tag uint64) memoSig {
	s := memoSig{a: 0x243F6A8885A308D3, b: 0x13198A2E03707344}
	s.mix(tag)
	return s
}

// mix folds one word into both lanes.
func (s *memoSig) mix(x uint64) {
	a := (s.a ^ x) * 0x9E3779B97F4A7C15
	s.a = a ^ (a >> 29)
	b := (s.b + x) * 0xBF58476D1CE4E5B9
	s.b = b ^ (b >> 31)
}

// mixValue folds a value instance.
func (s *memoSig) mixValue(v rules.Value) {
	inv := uint64(0)
	if v.Inv {
		inv = 1
	}
	s.mix(uint64(uint32(v.ID)) | uint64(uint32(v.Flat))<<32)
	s.mix(uint64(uint32(v.Uniq)) | inv<<32)
}

// mixWriteStub folds a write stub's full path identity.
func (s *memoSig) mixWriteStub(w machine.WriteStub) {
	s.mix(uint64(uint16(w.FU)) | uint64(uint16(w.Bus))<<16 |
		uint64(uint16(w.Port))<<32 | uint64(uint16(w.RF))<<48)
}

// mixReadStub folds a read stub's full path identity.
func (s *memoSig) mixReadStub(r machine.ReadStub) {
	s.mix(uint64(uint16(r.RF)) | uint64(uint16(r.Port))<<16 |
		uint64(uint16(r.Bus))<<32 | uint64(uint16(r.FU))<<48)
	s.mix(uint64(uint32(r.Slot)))
}

// key finalizes the signature.
func (s *memoSig) key() memoKey {
	t := *s
	t.mix(0x2545F4914F6CDD1D)
	return memoKey{a: t.a, b: t.b}
}

// memoEntryCap bounds the memo's size: past the cap, lookups keep
// serving hits but new failures are no longer recorded. The cap is a
// safety valve, not a tuning knob — at 16 bytes an entry it bounds the
// memo near 32 MiB on a degenerate compilation.
const memoEntryCap = 1 << 21

// permMemo is the shared infeasibility memo of one compilation. It is
// safe for concurrent use: the sequential ladder pays one uncontended
// lock per failed or memoized solve, and the speculative ladder's rungs
// share dead ends across worker goroutines. Sharing across rungs never
// changes any rung's outcome — an entry only ever replaces a search
// with the failure it was bound to reach — so schedules stay
// bit-identical no matter which rungs raced or when they published.
type permMemo struct {
	mu   sync.Mutex
	seen map[memoKey]struct{}
}

func newPermMemo() *permMemo {
	return &permMemo{seen: make(map[memoKey]struct{})}
}

// hit reports whether k is a recorded dead end.
func (m *permMemo) hit(k memoKey) bool {
	m.mu.Lock()
	_, ok := m.seen[k]
	m.mu.Unlock()
	return ok
}

// record marks k as a proven dead end.
func (m *permMemo) record(k memoKey) {
	m.mu.Lock()
	if len(m.seen) < memoEntryCap {
		m.seen[k] = struct{}{}
	}
	m.mu.Unlock()
}

// entries reports the number of recorded dead ends.
func (m *permMemo) entries() int {
	m.mu.Lock()
	n := len(m.seen)
	m.mu.Unlock()
	return n
}

// Candidate-list hashing. A flex item's signature must cover the full
// ordered contents of its candidate list, but mixing every stub on
// every solve would make the signature cost scale with list length —
// and the §5 distributed machines have class-wide write lists hundreds
// of stubs long. Almost every list, however, is an interned
// routing-table slice (or a truncated prefix of one): immutable for the
// engine's lifetime and reused across thousands of solves. Those hash
// once into a per-engine cache keyed by slice identity — base pointer,
// index pointer, length; the base pointer matters because routing-table
// interning can share one index slice between tables whose base stubs
// differ. Arena-backed lists (pin filters, first-serve sibling
// promotion, phi scoring) are rebuilt into reused scratch each solve,
// so pointer identity means nothing there and the caller passes
// stable=false to hash contents directly — they are the rare case.

type wListKey struct {
	b *machine.WriteStub
	p *int32
	n int
}

type rListKey struct {
	b *machine.ReadStub
	p *int32
	n int
}

// writeListHash folds one ordered write-candidate list to a word.
func writeListHash(base []machine.WriteStub, idx []int32) uint64 {
	s := newMemoSig(3)
	for _, ci := range idx {
		s.mixWriteStub(base[ci])
	}
	return s.key().a
}

// readListHash folds one ordered read-candidate list to a word.
func readListHash(base []machine.ReadStub, idx []int32) uint64 {
	s := newMemoSig(4)
	for _, ci := range idx {
		s.mixReadStub(base[ci])
	}
	return s.key().a
}

// writeListSig returns the content hash of a write-candidate list,
// cached under its slice identity when the list is an immutable
// routing-table slice. Callers guarantee len(idx) > 0.
func (e *engine) writeListSig(base []machine.WriteStub, idx []int32, stable bool) uint64 {
	if !stable {
		return writeListHash(base, idx)
	}
	k := wListKey{b: &base[0], p: &idx[0], n: len(idx)}
	if h, ok := e.wListSig[k]; ok {
		return h
	}
	h := writeListHash(base, idx)
	if e.wListSig == nil {
		e.wListSig = make(map[wListKey]uint64, 64)
	}
	e.wListSig[k] = h
	return h
}

// readListSig is the read-side analogue of writeListSig.
func (e *engine) readListSig(base []machine.ReadStub, idx []int32, stable bool) uint64 {
	if !stable {
		return readListHash(base, idx)
	}
	k := rListKey{b: &base[0], p: &idx[0], n: len(idx)}
	if h, ok := e.rListSig[k]; ok {
		return h
	}
	h := readListHash(base, idx)
	if e.rListSig == nil {
		e.rListSig = make(map[rListKey]uint64, 64)
	}
	e.rListSig[k] = h
	return h
}
