package core

import (
	"context"
	"sort"
	"sync"
	"testing"
)

// TestPoolSemantics pins the counting-semaphore contract: n slots,
// TryAcquire fails when full, Release frees exactly one.
func TestPoolSemantics(t *testing.T) {
	p := NewPool(2)
	if p.Size() != 2 {
		t.Fatalf("Size = %d, want 2", p.Size())
	}
	if !p.TryAcquire() || !p.TryAcquire() {
		t.Fatal("fresh pool refused its slots")
	}
	if p.TryAcquire() {
		t.Fatal("full pool granted a third slot")
	}
	p.Release()
	if !p.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
}

// TestPoolAcquireHonoursContext pins the blocking path: Acquire on a
// full pool returns the context's error instead of wedging.
func TestPoolAcquireHonoursContext(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Acquire(ctx); err != context.Canceled {
		t.Fatalf("Acquire on full pool = %v, want context.Canceled", err)
	}
}

// TestPoolFan pins the nesting discipline: worker 0 always runs on the
// caller without a slot, extras join only as TryAcquire admits them,
// and every slot is back when Fan returns.
func TestPoolFan(t *testing.T) {
	p := NewPool(3)
	var mu sync.Mutex
	var seen []int
	p.Fan(4, func(w int) {
		mu.Lock()
		seen = append(seen, w)
		mu.Unlock()
	})
	sort.Ints(seen)
	if len(seen) != 4 {
		t.Fatalf("Fan ran %d workers, want 4: %v", len(seen), seen)
	}
	for i, w := range seen {
		if w != i {
			t.Fatalf("worker ids %v, want 0..3", seen)
		}
	}
	for i := 0; i < 3; i++ {
		if !p.TryAcquire() {
			t.Fatalf("Fan leaked slot %d", i)
		}
	}
}

// TestPoolFanExhausted pins graceful degradation: with no free slot,
// Fan still runs worker 0 on the caller — nested fan-out can never
// deadlock, at worst it goes sequential.
func TestPoolFanExhausted(t *testing.T) {
	p := NewPool(1)
	if !p.TryAcquire() {
		t.Fatal("fresh pool refused its slot")
	}
	ran := 0
	p.Fan(8, func(w int) {
		if w != 0 {
			t.Errorf("worker %d ran on an exhausted pool", w)
		}
		ran++
	})
	if ran != 1 {
		t.Fatalf("Fan ran %d workers on an exhausted pool, want 1", ran)
	}
}
