package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/kernels"
	"repro/internal/machine"
)

// TestInjectedPassPanicIsInternal pins the pass-pipeline recovery: a
// panic injected at a pass boundary surfaces as a structured
// KindInternal error carrying the pass name and the recovered stack —
// never a crash.
func TestInjectedPassPanicIsInternal(t *testing.T) {
	for _, pass := range []string{PassLower, PassPrioritize, PassPlace, PassRegalloc} {
		t.Run(pass, func(t *testing.T) {
			plane := faultinject.New(1, faultinject.Rule{
				Site: faultinject.SitePass, Label: pass, Nth: 1, Action: faultinject.Panic,
			})
			k := kernels.ByName("FIR-INT").MustKernel()
			_, err := Compile(k, machine.Distributed(), Options{Faults: plane})
			var ce *CompileError
			if !errors.As(err, &ce) || ce.Kind != KindInternal {
				t.Fatalf("want KindInternal CompileError, got %v", err)
			}
			if ce.Pass != pass {
				t.Errorf("pass = %q, want %q", ce.Pass, pass)
			}
			if !strings.Contains(ce.Reason, "injected panic") {
				t.Errorf("reason does not carry the panic value: %q", ce.Reason)
			}
			if ce.Stack == "" {
				t.Error("recovered stack missing")
			}
			if ce.Kernel != k.Name {
				t.Errorf("kernel identity %q not filled", ce.Kernel)
			}
		})
	}
}

// TestInjectedSolverPanicCarriesOpContext pins the deepest recovery
// path: a panic in the middle of the §4.4 permutation search (under
// the place pass) is recovered with the operation in flight attached.
func TestInjectedSolverPanicCarriesOpContext(t *testing.T) {
	plane := faultinject.New(1, faultinject.Rule{
		Site: faultinject.SiteSolver, Nth: 50, Action: faultinject.Panic,
	})
	k := kernels.ByName("DCT").MustKernel()
	_, err := Compile(k, machine.Distributed(), Options{Faults: plane})
	var ce *CompileError
	if !errors.As(err, &ce) || ce.Kind != KindInternal {
		t.Fatalf("want KindInternal CompileError, got %v", err)
	}
	if ce.Pass != PassPlace {
		t.Errorf("pass = %q, want %q", ce.Pass, PassPlace)
	}
	if ce.Op == NoOp {
		t.Error("internal error missing the operation in flight")
	}
	if ce.II <= 0 {
		t.Errorf("internal error missing the interval in flight: %+v", ce)
	}
}

// TestInjectedPortfolioPanicContained pins worker-goroutine isolation:
// a panic on a portfolio worker becomes a structured internal error
// naming the variant — a bare goroutine panic would kill the process.
func TestInjectedPortfolioPanicContained(t *testing.T) {
	plane := faultinject.New(1, faultinject.Rule{
		Site: faultinject.SitePortfolio, Nth: 1, Action: faultinject.Panic,
	})
	k := kernels.ByName("FIR-INT").MustKernel()
	_, _, err := CompilePortfolio(nil, k, machine.Distributed(), Options{Faults: plane},
		PortfolioOptions{Workers: 2})
	var ce *CompileError
	if !errors.As(err, &ce) || ce.Kind != KindInternal {
		t.Fatalf("want KindInternal CompileError, got %v", err)
	}
	if !strings.Contains(ce.Reason, "variant") {
		t.Errorf("reason does not name the variant: %q", ce.Reason)
	}
	if ce.Stack == "" {
		t.Error("recovered stack missing")
	}
}

// TestInjectedSolverExhaustFailsSchedule pins the Exhaust action at the
// solver site: with every permutation budget forced to zero, kernels
// needing real permutation work stop scheduling, and the failure stays
// the ordinary structured schedule kind.
func TestInjectedSolverExhaustFailsSchedule(t *testing.T) {
	plane := faultinject.New(1, faultinject.Rule{
		Site: faultinject.SiteSolver, Nth: 1, Every: 1, Action: faultinject.Exhaust,
	})
	k := kernels.ByName("DCT").MustKernel()
	_, err := Compile(k, machine.Distributed(), Options{Faults: plane, MaxII: 40})
	var ce *CompileError
	if !errors.As(err, &ce) || ce.Kind != KindSchedule {
		t.Fatalf("want KindSchedule CompileError, got %v", err)
	}
}

// TestDegradationLadderRecoversBudgetExhaustion pins the ladder end to
// end on a forced-budget-exhaustion case: a permutation budget of 1
// step cannot schedule DCT's communications, the fast-search rung
// restores a workable budget, and the resulting schedule names the
// rung and passes independent verification.
func TestDegradationLadderRecoversBudgetExhaustion(t *testing.T) {
	k := kernels.ByName("DCT").MustKernel()
	m := machine.Distributed()
	base := Options{PermBudget: 1, MaxII: 40}
	if _, err := Compile(k, m, base); err == nil {
		t.Skip("PermBudget 1 unexpectedly schedules DCT; exhaustion case gone")
	}
	opts := base
	opts.Degrade = &DegradeLadder{Rungs: []DegradeRung{
		{Name: "fast-search", PermBudget: 512, AttemptBudget: 32},
	}}
	s, err := CompileContext(t.Context(), k, m, opts)
	if err != nil {
		t.Fatalf("ladder did not recover: %v", err)
	}
	if s.Degraded != "fast-search" {
		t.Fatalf("Degraded = %q, want fast-search", s.Degraded)
	}
	if err := VerifySchedule(s); err != nil {
		t.Fatalf("degraded schedule fails verification: %v", err)
	}
}

// TestDegradationLadderRelaxesInterval pins the MaxIIBoost rung: an
// interval cap below feasibility fails the primary configuration, the
// relaxed-ii rung raises it, and the winner schedules at the natural
// interval.
func TestDegradationLadderRelaxesInterval(t *testing.T) {
	k := kernels.ByName("FIR-INT").MustKernel()
	m := machine.Distributed()
	ref, err := Compile(k, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	base := Options{MaxII: ref.II - 1}
	if base.MaxII < 1 {
		t.Skip("kernel schedules at II 1; no infeasible cap exists")
	}
	if _, err := Compile(k, m, base); err == nil {
		t.Fatal("capped compile unexpectedly scheduled")
	}
	opts := base
	opts.Degrade = &DegradeLadder{Rungs: []DegradeRung{
		{Name: "relaxed-ii", MaxIIBoost: 64},
	}}
	s, err := CompileContext(t.Context(), k, m, opts)
	if err != nil {
		t.Fatalf("ladder did not recover: %v", err)
	}
	if s.Degraded != "relaxed-ii" {
		t.Fatalf("Degraded = %q, want relaxed-ii", s.Degraded)
	}
	if s.II != ref.II {
		t.Errorf("degraded II %d, natural II %d", s.II, ref.II)
	}
	if err := VerifySchedule(s); err != nil {
		t.Fatalf("degraded schedule fails verification: %v", err)
	}
}

// TestDegradationNeverRetriesNonScheduleErrors pins the ladder's
// scope: invalid input and internal errors return as-is, without
// walking the rungs.
func TestDegradationNeverRetriesNonScheduleErrors(t *testing.T) {
	k := kernels.ByName("FIR-INT").MustKernel()
	m := machine.Distributed()
	ladder := DefaultDegradeLadder()

	// Invalid input: a negative budget fails validation.
	_, err := CompileContext(t.Context(), k, m, Options{PermBudget: -1, Degrade: ladder})
	var ce *CompileError
	if !errors.As(err, &ce) || ce.Kind != KindInvalidInput {
		t.Fatalf("want KindInvalidInput, got %v", err)
	}

	// Internal: an injected pass panic must not be retried (the rungs
	// would panic again; more importantly, internal errors must never
	// be masked by a cheaper rung's result). The Nth=1 rule fires once,
	// so a retried compile would NOT panic — surviving as KindInternal
	// proves the ladder returned immediately.
	plane := faultinject.New(1, faultinject.Rule{
		Site: faultinject.SitePass, Label: PassPlace, Nth: 1, Action: faultinject.Panic,
	})
	_, err = CompileContext(t.Context(), k, m, Options{Faults: plane, Degrade: ladder})
	if !errors.As(err, &ce) || ce.Kind != KindInternal {
		t.Fatalf("want KindInternal, got %v", err)
	}
}

// TestDisabledFaultPlaneBitIdentical pins the differential contract:
// an armed-but-never-firing plane (and the probe plumbing itself) must
// not perturb a single scheduling decision.
func TestDisabledFaultPlaneBitIdentical(t *testing.T) {
	k := kernels.ByName("FIR-INT").MustKernel()
	m := machine.Distributed()
	a, err := Compile(k, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	never := faultinject.New(9, faultinject.Rule{
		Site: faultinject.SitePass, Label: "no-such-pass", Nth: 1, Action: faultinject.Panic,
	})
	b, err := Compile(k, m, Options{Faults: never})
	if err != nil {
		t.Fatal(err)
	}
	if a.Dump() != b.Dump() {
		t.Fatal("armed-but-idle fault plane changed the schedule")
	}
}
