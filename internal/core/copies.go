package core

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
)

// This file implements copy insertion (§4.3 step 5): when a closing
// communication's write stub and read stub do not access the same
// register file, a copy operation is inserted — splitting the original
// communication into two (Fig. 21/22) — and scheduled like any other
// operation, restricted to the communication's copy range (Fig. 23).
// Because the copy's own communications close through the normal
// machinery, additional copies are inserted recursively as needed.

// maxCopyDepth bounds the recursive splitting; the deepest chain a
// sane machine needs equals its register-file copy diameter.
const maxCopyDepth = 6

// insertCopies is the clocked insert-copies pipeline stage: each copy
// chain bridged is one step, each range or depth exhaustion one
// failure.
func (e *engine) insertCopies(c *comm, preferLate bool) bool {
	e.clock.push(PassInsertCopies)
	e.traceStageBegin(PassInsertCopies)
	ok := e.insertCopyChain(c, preferLate)
	e.traceStageEnd(PassInsertCopies, ok)
	e.clock.pop()
	if ok {
		e.clock.step(PassInsertCopies)
	} else {
		e.clock.fail(PassInsertCopies)
	}
	return ok
}

// insertCopyChain bridges communication c's pinned stubs. The value
// sits in c.wstub.RF and must reach the operand's pinned read file.
// preferLate places copies as late as their range allows instead of as
// early as possible — the §7 spill shape, shrinking the value's
// residence in the destination file when register-aware routing found
// it hot.
func (e *engine) insertCopyChain(c *comm, preferLate bool) bool {
	if e.depth >= maxCopyDepth {
		return false
	}
	e.depth++
	defer func() { e.depth-- }()

	useKey := OperandKey{Op: c.use, Slot: c.slot}
	rfW := c.wstub.RF
	rfR := e.operandStub[useKey].stub.RF
	if rfW == rfR {
		e.setCommState(c, commClosed)
		return true
	}

	// The copy range (Fig. 23): the copy must issue after the write
	// completes and early enough for its own result to reach the read.
	// Cross-block communications place copies in the write operation's
	// block — the preamble — whose end is extensible ("the copy range
	// is all cycles in the write operation's basic block after the
	// write operation completes").
	lo := e.completionFlat(c.def) + 1
	var hi int
	if e.crossBlock(c) {
		hi = lo + e.copyScanLimit()
	} else {
		block := e.ops[c.use].Block
		rflat := e.place[c.use].cycle + c.distance*e.blockII(block)
		hi = rflat - e.mach.Latency(ir.Copy)
	}
	if hi < lo {
		return false
	}

	for _, choice := range e.mach.CopyStepFUs(rfW, rfR) {
		mark := e.mark()
		copyID := e.addCopy(c, choice)
		if e.scheduleCopy(copyID, choice, lo, hi, preferLate) {
			e.stats.CopiesInserted++
			e.traceCopy(c, copyID)
			return true
		}
		e.rollback(mark)
	}
	return false
}

// copyScanLimit bounds how far into the preamble's extensible tail a
// cross-block copy is searched for.
func (e *engine) copyScanLimit() int {
	if e.opts.ScanWindow > 0 {
		return e.opts.ScanWindow
	}
	return 256
}

// addCopy materializes the Fig. 21 transformation: a copy operation in
// the def's block, reading the communicated value through input
// choice.Slot of choice.FU, plus the two child communications, with the
// parent marked split. The parent's pinned write stub is inherited by
// the def→copy child; the copy→use child inherits the operand (and its
// pinned read stub) and the loop distance.
func (e *engine) addCopy(c *comm, choice machine.CopyChoice) ir.OpID {
	defOp := e.ops[c.def]
	id := ir.OpID(len(e.ops))
	newVal := ir.ValueID(len(e.values))
	name := fmt.Sprintf("copy%d.v%d", id, c.value)
	op := &ir.Op{
		ID:     id,
		Opcode: ir.Copy,
		Args: []ir.Operand{{
			Kind: ir.OperandValue,
			Srcs: []ir.Src{{Value: c.value, Distance: 0}},
		}},
		Result: newVal,
		Block:  defOp.Block,
		Name:   name,
	}
	e.ops = append(e.ops, op)
	e.values = append(e.values, &ir.Value{ID: newVal, Name: name, Def: id})
	e.place = append(e.place, placement{})
	e.commsFrom = append(e.commsFrom, nil)
	e.commsTo = append(e.commsTo, nil)
	e.log(func() {
		e.ops = e.ops[:id]
		e.values = e.values[:newVal]
		e.place = e.place[:id]
		e.commsFrom = e.commsFrom[:id]
		e.commsTo = e.commsTo[:id]
	})

	// Steer the copy's operand through the chosen physical input.
	opnd := OperandKey{Op: id, Slot: 0}
	e.physSlot[opnd] = choice.Slot
	e.log(func() { delete(e.physSlot, opnd) })

	// The copy's result carries the same original value; deposits of it
	// serve other consumers of that value.
	e.roots[newVal] = e.rootValue(c.value)
	e.log(func() { delete(e.roots, newVal) })

	c1 := e.newComm(c.def, id, 0, 0, c.value, 0, c.id)
	c2 := e.newComm(id, c.use, c.slot, c.srcIndex, newVal, c.distance, c.id)
	e.setCommState(c, commSplit)
	old := c.children
	c.children = [2]CommID{c1, c2}
	e.log(func() { c.children = old })

	// The def is scheduled, so the def→copy child's write stub position
	// is already fixed; it inherits the parent's pinned stub.
	e.setCommW(e.comms[c1], c.wstub, true)
	e.appendWritesAt(e.completionSlotKey(c.def), c1)
	return id
}

// scheduleCopy places the copy within its range on the chosen unit,
// calling the normal accept/reject attempt: "The copy operation is
// scheduled just like any other operation, except that it must be
// scheduled on a cycle in the copy range" (§4.3). Both child
// communications close inside the attempt. preferLate reverses the
// scan so the copy lands as close to the reader as possible.
func (e *engine) scheduleCopy(id ir.OpID, choice machine.CopyChoice, lo, hi int, preferLate bool) bool {
	block := e.ops[id].Block
	tryCycle := func(cycle int) bool {
		return e.fuFree(block, choice.FU, cycle) && e.attempt(id, cycle, choice.FU)
	}
	if preferLate {
		for cycle := hi; cycle >= lo; cycle-- {
			if e.cancelled() {
				return false
			}
			if tryCycle(cycle) {
				return true
			}
		}
		return false
	}
	for cycle := lo; cycle <= hi; cycle++ {
		if e.cancelled() {
			return false
		}
		if tryCycle(cycle) {
			return true
		}
	}
	return false
}
