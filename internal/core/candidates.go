package core

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/rules"
)

// This file enumerates the valid stubs for a communication (§4.3 step 1)
// and orders them so that route-forming choices come first: "Zero or
// more copy operations can be used to move a value from any register
// file written to by a valid write stub for o1 to any register file read
// from by a valid read stub for o2" — a stub is valid only when such a
// copy path exists, and stubs needing fewer copies are preferred.

// maxCandidatesDefault caps candidate lists. It must comfortably exceed
// the zero-copy stub count of the largest machine (the distributed
// architecture exposes 120 zero-copy write stubs per unit): truncating
// below that breaks the §4.4 completeness requirement in crowded
// cycles, because the surviving prefix may cover only conflicting
// buses.
const maxCandidatesDefault = 1024

func (e *engine) maxCandidates() int {
	if e.opts.MaxCandidates > 0 {
		return e.opts.MaxCandidates
	}
	return maxCandidatesDefault
}

// allowedSlots returns the physical inputs of fu that may deliver the
// operand. Copies are steered to a specific input by copy insertion;
// an operation with a single value operand may read it through any
// input (the immediate operands travel in the instruction word); a
// commutative operation's two value operands may swap inputs (the
// per-cycle solver keeps them on distinct inputs). Everything else is
// fixed to its argument position.
func (e *engine) allowedSlots(key OperandKey, fu machine.FUID) []int {
	if s, ok := e.physSlot[key]; ok {
		return []int{s}
	}
	op := e.ops[key.Op]
	nIn := e.mach.FU(fu).NumInputs
	values := 0
	for _, a := range op.Args {
		if a.Kind == ir.OperandValue {
			values++
		}
	}
	if values == 1 || (values == 2 && op.Opcode.Commutative() && len(op.Args) >= 2 &&
		op.Args[0].Kind == ir.OperandValue && op.Args[1].Kind == ir.OperandValue) {
		slots := make([]int, 0, nIn)
		for i := 0; i < nIn; i++ {
			slots = append(slots, i)
		}
		return slots
	}
	if key.Slot >= nIn {
		return nil
	}
	return []int{key.Slot}
}

// defDistTo returns the minimum copies needed to deliver communication
// c's value into register file rf, considering how much of the write
// side is already decided: a pinned write stub fixes the source file, a
// placed def fixes the unit, an unplaced def ranges over every unit of
// its class. Returns -1 when rf is unreachable.
func (e *engine) defDistTo(c *comm, rf machine.RFID) int {
	if c.wPinned {
		return e.mach.CopyDistance(c.wstub.RF, rf)
	}
	if e.place[c.def].ok {
		return e.mach.DistFUToRF(e.place[c.def].fu, rf)
	}
	best := -1
	cls := e.ops[c.def].Opcode.Class()
	for _, fu := range e.mach.UnitsFor(cls) {
		if d := e.mach.DistFUToRF(fu, rf); d >= 0 && (best < 0 || d < best) {
			best = d
		}
	}
	return best
}

// useTarget describes what is known about a communication's read side,
// used both for scoring and as a candidate-cache key.
type useTarget struct {
	kind     int8 // 0 pinned rf, 1 placed use, 2 class only
	rf       machine.RFID
	fu       machine.FUID
	slotMask int8 // kind 1: bitmask of allowed physical inputs
	cls      ir.Class
}

func (e *engine) useTargetOf(c *comm) useTarget {
	key := OperandKey{Op: c.use, Slot: c.slot}
	if or := e.operandStub[key]; or != nil && or.pinned {
		return useTarget{kind: 0, rf: or.stub.RF}
	}
	if e.place[c.use].ok {
		fu := e.place[c.use].fu
		var mask int8
		for _, s := range e.allowedSlots(key, fu) {
			mask |= 1 << s
		}
		return useTarget{kind: 1, fu: fu, slotMask: mask}
	}
	return useTarget{kind: 2, cls: e.ops[c.use].Opcode.Class()}
}

// useDistFrom returns the minimum copies needed to move a value from
// register file rf to the communication's read target.
func (e *engine) useDistFrom(t useTarget, rf machine.RFID) int {
	switch t.kind {
	case 0:
		return e.mach.CopyDistance(rf, t.rf)
	case 1:
		best := -1
		for slot := 0; slot < rules.MaxInputs; slot++ {
			if t.slotMask&(1<<slot) == 0 {
				continue
			}
			if d := e.mach.DistRFToInput(rf, t.fu, slot); d >= 0 && (best < 0 || d < best) {
				best = d
			}
		}
		return best
	}
	best := -1
	for _, fu := range e.mach.UnitsFor(t.cls) {
		f := e.mach.FU(fu)
		for slot := 0; slot < f.NumInputs; slot++ {
			if d := e.mach.DistRFToInput(rf, fu, slot); d >= 0 && (best < 0 || d < best) {
				best = d
			}
		}
	}
	return best
}

// wcKey caches ordered write-candidate lists: the ordering depends only
// on the producing unit and the read-side target, both static givens.
type wcKey struct {
	fu     machine.FUID
	target useTarget
}

// writeCandidates enumerates and orders the valid write stubs for
// communication c, whose def is placed. Stubs landing fewer copies from
// the reader come first. Lists are cached per (unit, read target).
func (e *engine) writeCandidates(c *comm) []machine.WriteStub {
	key := wcKey{fu: e.place[c.def].fu, target: e.useTargetOf(c)}
	if cached, ok := e.wcCache[key]; ok {
		return cached
	}
	base := e.mach.WriteStubs(key.fu)
	type scored struct {
		stub machine.WriteStub
		dist int
	}
	var list []scored
	for _, stub := range base {
		d := e.useDistFrom(key.target, stub.RF)
		if d < 0 {
			continue
		}
		list = append(list, scored{stub, d})
	}
	sort.SliceStable(list, func(i, j int) bool { return list[i].dist < list[j].dist })
	n := len(list)
	if max := e.maxCandidates(); n > max {
		n = max
	}
	out := make([]machine.WriteStub, n)
	for i := 0; i < n; i++ {
		out[i] = list[i].stub
	}
	e.wcCache[key] = out
	return e.preferSiblingBuses(c, out)
}

// preferSiblingBuses stably reorders candidates so stubs on a bus that
// already carries the same result come first: a value fanning out to
// several register files on one cycle should ride one bus ("A result
// can be written to multiple register files", §4.2 — and a bus fans out
// to several write ports), leaving the other buses for other values.
func (e *engine) preferSiblingBuses(c *comm, cands []machine.WriteStub) []machine.WriteStub {
	var sibBuses [4]machine.BusID
	nSib := 0
	for _, cid := range e.commsFrom[c.def] {
		sib := e.comms[cid]
		if sib.id == c.id || sib.state == commSplit || !sib.hasW || nSib == len(sibBuses) {
			continue
		}
		dup := false
		for i := 0; i < nSib; i++ {
			if sibBuses[i] == sib.wstub.Bus {
				dup = true
				break
			}
		}
		if !dup {
			sibBuses[nSib] = sib.wstub.Bus
			nSib++
		}
	}
	if nSib == 0 {
		return cands
	}
	onSib := func(b machine.BusID) bool {
		for i := 0; i < nSib; i++ {
			if sibBuses[i] == b {
				return true
			}
		}
		return false
	}
	out := make([]machine.WriteStub, 0, len(cands))
	for _, s := range cands {
		if onSib(s.Bus) {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return cands
	}
	for _, s := range cands {
		if !onSib(s.Bus) {
			out = append(out, s)
		}
	}
	return out
}

// readCandidates enumerates and orders the valid read stubs for an
// operand of a placed operation, across every physical input the
// operand may use. A stub is valid only if every active communication
// into the operand can deliver its value to the stub's register file
// (all sources of a control-flow merge must reach the one read stub);
// stubs minimizing the total copies come first.
func (e *engine) readCandidates(key OperandKey) []machine.ReadStub {
	fu := e.place[key.Op].fu
	var comms []*comm
	for _, cid := range e.activeCommsTo(key.Op) {
		if c := e.comms[cid]; c.slot == key.Slot {
			comms = append(comms, c)
		}
	}
	type scored struct {
		stub machine.ReadStub
		dist int
	}
	var list []scored
	for _, slot := range e.allowedSlots(key, fu) {
		for _, stub := range e.mach.ReadStubs(fu, slot) {
			total, valid := 0, true
			for _, c := range comms {
				d := e.defDistTo(c, stub.RF)
				if d < 0 {
					valid = false
					break
				}
				total += d
			}
			if !valid {
				continue
			}
			list = append(list, scored{stub, total})
		}
	}
	sort.SliceStable(list, func(i, j int) bool { return list[i].dist < list[j].dist })
	n := len(list)
	if max := e.maxCandidates(); n > max {
		n = max
	}
	out := make([]machine.ReadStub, n)
	for i := 0; i < n; i++ {
		out[i] = list[i].stub
	}
	return out
}

// sharedRouteRFs returns, in preference order, the register files
// through which communication c could form a direct route: files
// writable by the def (zero copies) and readable by the use's operand
// (zero copies), honoring any pins already in force.
func (e *engine) sharedRouteRFs(c *comm) []machine.RFID {
	key := OperandKey{Op: c.use, Slot: c.slot}

	var writable []machine.RFID
	if c.wPinned {
		writable = append(writable, c.wstub.RF)
	} else {
		writable = e.mach.WritableRFs(e.place[c.def].fu)
	}

	readable := make(map[machine.RFID]bool)
	if or := e.operandStub[key]; or != nil && or.pinned {
		readable[or.stub.RF] = true
	} else {
		fu := e.place[key.Op].fu
		for _, slot := range e.allowedSlots(key, fu) {
			for _, stub := range e.mach.ReadStubs(fu, slot) {
				readable[stub.RF] = true
			}
		}
	}

	var shared []machine.RFID
	for _, rf := range writable {
		if readable[rf] {
			shared = append(shared, rf)
		}
	}
	// For a phi operand every other source must also reach the file;
	// otherwise pinning the operand there would strand a sibling
	// communication.
	if len(shared) > 1 || len(shared) == 1 {
		var ok []machine.RFID
		for _, rf := range shared {
			good := true
			for _, cid := range e.activeCommsTo(key.Op) {
				sib := e.comms[cid]
				if sib.slot != key.Slot || sib.id == c.id {
					continue
				}
				if e.defDistTo(sib, rf) < 0 {
					good = false
					break
				}
			}
			if good {
				ok = append(ok, rf)
			}
		}
		shared = ok
	}
	return shared
}
