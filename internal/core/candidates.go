package core

import (
	"repro/internal/ir"
	"repro/internal/machine"
)

// This file selects the valid stubs for a communication (§4.3 step 1)
// ordered so that route-forming choices come first: "Zero or more copy
// operations can be used to move a value from any register file written
// to by a valid write stub for o1 to any register file read from by a
// valid read stub for o2" — a stub is valid only when such a copy path
// exists, and stubs needing fewer copies are preferred.
//
// The enumeration itself is interned per machine: candidate lists are
// slices of int32 indices into the machine's base stub slices, fetched
// from machine.RouteIndex — computed once per *Machine and shared by
// every compilation (see internal/machine/route.go). The only dynamic
// case left is the multi-source (phi) operand, whose score sums over a
// set of producers only the engine knows; it is scored into a reusable
// arena below.

// maxCandidatesDefault caps candidate lists. It must comfortably exceed
// the zero-copy stub count of the largest machine (the distributed
// architecture exposes 320 zero-copy write stubs per unit): truncating
// below that breaks the §4.4 completeness requirement in crowded
// cycles, because the surviving prefix may cover only conflicting
// buses. Options.ValidateFor enforces the machine's actual floor.
const maxCandidatesDefault = 1024

func (e *engine) maxCandidates() int {
	if e.opts.MaxCandidates > 0 {
		return e.opts.MaxCandidates
	}
	return maxCandidatesDefault
}

// Shared slot lists backing allowedSlots; callers only range over them.
// Units have at most four inputs (machine.Builder enforces it).
var (
	slotsSingle = [...][]int{{0}, {1}, {2}, {3}}
	slotsAny    = [...][]int{nil, {0}, {0, 1}, {0, 1, 2}, {0, 1, 2, 3}}
)

// slotSel classifies which physical inputs of fu may deliver the
// operand, as a routing-index slot selector: a specific slot, NumInputs
// ("any input"), or -1 (none). Copies are steered to a specific input
// by copy insertion; an operation with a single value operand may read
// it through any input (the immediate operands travel in the
// instruction word); a commutative operation's two value operands may
// swap inputs (the per-cycle solver keeps them on distinct inputs).
// Everything else is fixed to its argument position.
func (e *engine) slotSel(key OperandKey, fu machine.FUID) int {
	if s, ok := e.physSlot[key]; ok {
		return s
	}
	op := e.ops[key.Op]
	nIn := e.mach.FU(fu).NumInputs
	values := 0
	for _, a := range op.Args {
		if a.Kind == ir.OperandValue {
			values++
		}
	}
	if values == 1 || (values == 2 && op.Opcode.Commutative() && len(op.Args) >= 2 &&
		op.Args[0].Kind == ir.OperandValue && op.Args[1].Kind == ir.OperandValue) {
		return nIn
	}
	if key.Slot >= nIn {
		return -1
	}
	return key.Slot
}

// allowedSlots returns the physical inputs of fu that may deliver the
// operand, as a shared slice callers must only range over. The
// communication-cost heuristic (cost.go) still consumes the expanded
// form; the hot path uses slotSel directly.
func (e *engine) allowedSlots(key OperandKey, fu machine.FUID) []int {
	sel := e.slotSel(key, fu)
	switch {
	case sel < 0:
		return nil
	case sel == e.mach.FU(fu).NumInputs:
		return slotsAny[sel]
	default:
		return slotsSingle[sel]
	}
}

// defDistTo returns the minimum copies needed to deliver communication
// c's value into register file rf, considering how much of the write
// side is already decided: a pinned write stub fixes the source file, a
// placed def fixes the unit, an unplaced def ranges over every unit of
// its class. Returns -1 when rf is unreachable.
func (e *engine) defDistTo(c *comm, rf machine.RFID) int {
	if c.wPinned {
		return e.mach.CopyDistance(c.wstub.RF, rf)
	}
	if e.place[c.def].ok {
		return e.mach.DistFUToRF(e.place[c.def].fu, rf)
	}
	best := -1
	cls := e.ops[c.def].Opcode.Class()
	for _, fu := range e.mach.UnitsFor(cls) {
		if d := e.mach.DistFUToRF(fu, rf); d >= 0 && (best < 0 || d < best) {
			best = d
		}
	}
	return best
}

// wcKey names one (producing unit, read-side target) pair — the full
// static description a write-candidate ordering depends on. It keys the
// first-request set behind sibling-bus promotion.
type wcKey struct {
	fu   machine.FUID
	kind int8 // 0 pinned rf, 1 placed use, 2 class only
	rf   machine.RFID
	ufu  machine.FUID
	sel  int8
	cls  ir.Class
}

// writeCandIndex returns the ordered, truncated write-stub candidates
// for communication c (whose def is placed) as indices into base, both
// shared and immutable: stubs landing fewer copies from the reader come
// first. The returned key identifies the (unit, target) pair the list
// was derived from.
func (e *engine) writeCandIndex(c *comm) (base []machine.WriteStub, idx []int32, wk wcKey) {
	fu := e.place[c.def].fu
	base = e.mach.WriteStubs(fu)
	key := OperandKey{Op: c.use, Slot: c.slot}
	rt := e.routes
	switch {
	case e.operandPinned(key):
		rf := e.operandStub[key].stub.RF
		idx = rt.WriteToRF(fu, rf)
		wk = wcKey{fu: fu, kind: 0, rf: rf}
	case e.place[c.use].ok:
		ufu := e.place[c.use].fu
		sel := e.slotSel(key, ufu)
		switch {
		case sel < 0:
			idx = nil
		case sel == e.mach.FU(ufu).NumInputs:
			idx = rt.WriteToAnyInput(fu, ufu)
		default:
			idx = rt.WriteToInput(fu, ufu, sel)
		}
		wk = wcKey{fu: fu, kind: 1, ufu: ufu, sel: int8(sel)}
	default:
		cls := e.ops[c.use].Opcode.Class()
		idx = rt.WriteToClass(fu, cls)
		wk = wcKey{fu: fu, kind: 2, cls: cls}
	}
	if max := e.maxCandidates(); len(idx) > max {
		idx = idx[:max]
	}
	return base, idx, wk
}

// operandPinned reports whether the operand's read stub is frozen.
func (e *engine) operandPinned(key OperandKey) bool {
	or, ok := e.operandStub[key]
	return ok && or.pinned
}

// preferSiblingBuses stably reorders candidates so stubs on a bus that
// already carries the same result come first: a value fanning out to
// several register files on one cycle should ride one bus ("A result
// can be written to multiple register files", §4.2 — and a bus fans out
// to several write ports), leaving the other buses for other values.
// The reorder, when needed, is materialized in the solve arena; the
// common no-sibling case returns idx unchanged.
func (e *engine) preferSiblingBuses(c *comm, base []machine.WriteStub, idx []int32) []int32 {
	var sibBuses [4]machine.BusID
	nSib := 0
	for _, cid := range e.commsFrom[c.def] {
		sib := e.comms[cid]
		if sib.id == c.id || sib.state == commSplit || !sib.hasW || nSib == len(sibBuses) {
			continue
		}
		dup := false
		for i := 0; i < nSib; i++ {
			if sibBuses[i] == sib.wstub.Bus {
				dup = true
				break
			}
		}
		if !dup {
			sibBuses[nSib] = sib.wstub.Bus
			nSib++
		}
	}
	if nSib == 0 {
		return idx
	}
	onSib := func(b machine.BusID) bool {
		for i := 0; i < nSib; i++ {
			if sibBuses[i] == b {
				return true
			}
		}
		return false
	}
	start := len(e.i32Arena)
	for _, i := range idx {
		if onSib(base[i].Bus) {
			e.i32Arena = append(e.i32Arena, i)
		}
	}
	if len(e.i32Arena) == start {
		return idx
	}
	for _, i := range idx {
		if !onSib(base[i].Bus) {
			e.i32Arena = append(e.i32Arena, i)
		}
	}
	return e.i32Arena[start:len(e.i32Arena):len(e.i32Arena)]
}

// readCandIndex returns the ordered, truncated read-stub candidates for
// an operand of a placed operation, across every physical input the
// operand may use, as indices into base. A stub is valid only if every
// active communication into the operand can deliver its value to the
// stub's register file (all sources of a control-flow merge must reach
// the one read stub); stubs minimizing the total copies come first.
// Single-producer operands hit the interned index; multi-source (phi)
// operands are scored into the solve arena.
func (e *engine) readCandIndex(key OperandKey) (base []machine.ReadStub, idx []int32, stable bool) {
	fu := e.place[key.Op].fu
	sel := e.slotSel(key, fu)
	if sel < 0 {
		return nil, nil, false
	}
	rt := e.routes
	base = rt.ReadBase(fu, sel)
	stable = true

	var single *comm
	n := 0
	for _, cid := range e.commsTo[key.Op] {
		c := e.comms[cid]
		if c.state == commSplit || c.slot != key.Slot {
			continue
		}
		single = c
		n++
	}
	switch {
	case n == 0:
		idx = rt.ReadUnconstrained(fu, sel)
	case n == 1:
		c := single
		switch {
		case c.wPinned:
			idx = rt.ReadFromRF(fu, sel, c.wstub.RF)
		case e.place[c.def].ok:
			idx = rt.ReadFromFU(fu, sel, e.place[c.def].fu)
		default:
			idx = rt.ReadFromClass(fu, sel, e.ops[c.def].Opcode.Class())
		}
	default:
		idx = e.scoreMultiRead(key, base)
		stable = false // arena-backed, rebuilt every solve
	}
	if max := e.maxCandidates(); len(idx) > max {
		idx = idx[:max]
	}
	return base, idx, stable
}

// scoreMultiRead orders base read stubs for a phi operand: total copies
// over every active producing communication, invalid stubs dropped,
// stable by enumeration order — the arena-backed equivalent of the
// legacy enumerate-filter-stable-sort.
func (e *engine) scoreMultiRead(key OperandKey, base []machine.ReadStub) []int32 {
	start := len(e.i32Arena)
	scores := e.scoreScratch[:0]
	for i, stub := range base {
		total, valid := 0, true
		for _, cid := range e.commsTo[key.Op] {
			c := e.comms[cid]
			if c.state == commSplit || c.slot != key.Slot {
				continue
			}
			d := e.defDistTo(c, stub.RF)
			if d < 0 {
				valid = false
				break
			}
			total += d
		}
		if !valid {
			continue
		}
		e.i32Arena = append(e.i32Arena, int32(i))
		scores = append(scores, int32(total))
	}
	idx := e.i32Arena[start:len(e.i32Arena):len(e.i32Arena)]
	// Stable insertion sort by score (lists are short; §4.3's order must
	// match sort.SliceStable exactly).
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && scores[j] < scores[j-1]; j-- {
			scores[j], scores[j-1] = scores[j-1], scores[j]
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	e.scoreScratch = scores[:0]
	return idx
}

// filterWriteIdx narrows write candidates to one register file, into
// the solve arena.
func (e *engine) filterWriteIdx(base []machine.WriteStub, idx []int32, rf machine.RFID) []int32 {
	start := len(e.i32Arena)
	for _, i := range idx {
		if base[i].RF == rf {
			e.i32Arena = append(e.i32Arena, i)
		}
	}
	return e.i32Arena[start:len(e.i32Arena):len(e.i32Arena)]
}

// filterReadIdx narrows read candidates to one register file, into the
// solve arena.
func (e *engine) filterReadIdx(base []machine.ReadStub, idx []int32, rf machine.RFID) []int32 {
	start := len(e.i32Arena)
	for _, i := range idx {
		if base[i].RF == rf {
			e.i32Arena = append(e.i32Arena, i)
		}
	}
	return e.i32Arena[start:len(e.i32Arena):len(e.i32Arena)]
}

// sharedRouteRFs fills the depth-local scratch with, in preference
// order, the register files through which communication c could form a
// direct route: files writable by the def (zero copies) and readable by
// the use's operand (zero copies), honoring any pins already in force.
func (e *engine) sharedRouteRFs(c *comm, out []machine.RFID) []machine.RFID {
	key := OperandKey{Op: c.use, Slot: c.slot}

	var writable []machine.RFID
	var pinnedW [1]machine.RFID
	if c.wPinned {
		pinnedW[0] = c.wstub.RF
		writable = pinnedW[:]
	} else {
		writable = e.mach.WritableRFs(e.place[c.def].fu)
	}

	out = out[:0]
	if or, ok := e.operandStub[key]; ok && or.pinned {
		for _, rf := range writable {
			if rf == or.stub.RF {
				out = append(out, rf)
			}
		}
	} else {
		fu := e.place[key.Op].fu
		sel := e.slotSel(key, fu)
		for _, rf := range writable {
			if e.routes.Readable(fu, sel, rf) {
				out = append(out, rf)
			}
		}
	}

	// For a phi operand every other source must also reach the file;
	// otherwise pinning the operand there would strand a sibling
	// communication.
	kept := out[:0]
	for _, rf := range out {
		good := true
		for _, cid := range e.commsTo[key.Op] {
			sib := e.comms[cid]
			if sib.state == commSplit || sib.slot != key.Slot || sib.id == c.id {
				continue
			}
			if e.defDistTo(sib, rf) < 0 {
				good = false
				break
			}
		}
		if good {
			kept = append(kept, rf)
		}
	}
	return kept
}
