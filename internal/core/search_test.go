package core

import (
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/kernels"
	"repro/internal/machine"
)

// TestProbeSequenceShape pins the probe ladder's contract: it starts at
// the minimum interval, is strictly increasing, never leaves the search
// bounds, and depends only on the bounds — the property that makes the
// probe phase speculable ahead of any outcome.
func TestProbeSequenceShape(t *testing.T) {
	for _, tc := range []struct{ min, max int }{
		{1, 1}, {1, 8}, {1, 64}, {3, 64}, {1, 1024}, {17, 23},
	} {
		seq := probeSequence(tc.min, tc.max)
		if len(seq) == 0 || seq[0] != tc.min {
			t.Fatalf("probeSequence(%d,%d) = %v: must start at min", tc.min, tc.max, seq)
		}
		for i := 1; i < len(seq); i++ {
			if seq[i] <= seq[i-1] {
				t.Fatalf("probeSequence(%d,%d) = %v: not strictly increasing", tc.min, tc.max, seq)
			}
		}
		if last := seq[len(seq)-1]; last > tc.max {
			t.Fatalf("probeSequence(%d,%d) ends at %d past max", tc.min, tc.max, last)
		}
	}
}

// TestSpeculativeBitIdentical is the repeatability suite of the
// speculative ladder: for every worker count, the speculative search
// must return a schedule byte-identical to the sequential ladder's —
// same dump, same fingerprint, same interval — regardless of rung
// finish order. Sort-on-distributed exercises a deep probe-and-refine
// walk; FIR-INT and DCT cover the short ladders.
func TestSpeculativeBitIdentical(t *testing.T) {
	cases := []struct {
		kernel string
		m      *machine.Machine
	}{
		{"FIR-INT", machine.Distributed()},
		{"DCT", machine.Clustered(4)},
		{"Sort", machine.Distributed()},
	}
	for _, tc := range cases {
		t.Run(tc.kernel, func(t *testing.T) {
			k := kernels.ByName(tc.kernel).MustKernel()
			ref, err := Compile(k, tc.m, Options{})
			if err != nil {
				t.Fatal(err)
			}
			refDump, refFP := ref.Dump(), ref.Fingerprint()
			for _, workers := range []int{1, 2, 8} {
				// The explicit pool forces real rung racing even when
				// GOMAXPROCS is 1 (a nil pool sizes itself to hardware).
				spec, err := Compile(k, tc.m, Options{Speculate: workers, Pool: NewPool(workers)})
				if err != nil {
					t.Fatalf("speculate=%d: %v", workers, err)
				}
				if spec.II != ref.II {
					t.Fatalf("speculate=%d: II %d, sequential II %d", workers, spec.II, ref.II)
				}
				if spec.Fingerprint() != refFP {
					t.Errorf("speculate=%d: fingerprint diverges from sequential", workers)
				}
				if spec.Dump() != refDump {
					t.Errorf("speculate=%d: schedule dump diverges from sequential", workers)
				}
			}
		})
	}
}

// TestSpeculativeSharedPool pins speculation drawing from an explicit
// shared pool — the daemon's configuration — including a pool too small
// to grant any extra worker, which must degrade to the sequential code
// path, not deadlock.
func TestSpeculativeSharedPool(t *testing.T) {
	k := kernels.ByName("FIR-INT").MustKernel()
	m := machine.Distributed()
	ref, err := Compile(k, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, slots := range []int{1, 4} {
		pool := NewPool(slots)
		s, err := Compile(k, m, Options{Speculate: 8, Pool: pool})
		if err != nil {
			t.Fatalf("pool=%d: %v", slots, err)
		}
		if s.Dump() != ref.Dump() {
			t.Errorf("pool=%d: schedule diverges from sequential", slots)
		}
		// Every slot must come back: the pool drains to empty.
		for i := 0; i < slots; i++ {
			if !pool.TryAcquire() {
				t.Fatalf("pool=%d: slot %d leaked by the speculative search", slots, i)
			}
		}
	}
}

// TestMemoHitsNonzero pins the infeasibility memo doing real work on a
// hard kernel: the deep Sort-on-distributed search must report memo
// hits, and the memo (active by default) must not change the schedule —
// the differential goldens in internal/kernels pin that globally; here
// we pin the counter so a silently disabled memo fails loudly.
func TestMemoHitsNonzero(t *testing.T) {
	k := kernels.ByName("Sort").MustKernel()
	s, err := Compile(k, machine.Distributed(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.MemoHits == 0 {
		t.Fatal("infeasibility memo recorded zero hits on Sort/distributed")
	}
}

// TestInjectedSpeculatePanicRecomputed pins rung isolation end to end:
// with EVERY speculative pickup panicking, every consumed rung carries
// an injected error, the walk recomputes each one inline, and the
// search completes with the exact sequential schedule — a bare worker
// panic neither kills the process nor perturbs a single decision.
func TestInjectedSpeculatePanicRecomputed(t *testing.T) {
	k := kernels.ByName("FIR-INT").MustKernel()
	m := machine.Distributed()
	ref, err := Compile(k, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plane := faultinject.New(1, faultinject.Rule{
		Site: faultinject.SiteSpeculate, Nth: 1, Every: 1, Action: faultinject.Panic,
	})
	s, err := Compile(k, m, Options{Speculate: 4, Pool: NewPool(4), Faults: plane})
	if err != nil {
		t.Fatalf("search did not survive speculative rung panics: %v", err)
	}
	if s.II != ref.II {
		t.Fatalf("II %d after rung panics, want %d", s.II, ref.II)
	}
	if s.Dump() != ref.Dump() {
		t.Error("schedule diverges from sequential after rung panics")
	}
}

// TestInjectedSpeculateExhaustRecomputed pins the forced-exhaustion
// path: an Exhaust rule at the speculate site marks every rung aborted
// before it runs, the walk treats each as speculative residue and
// recomputes inline, and the schedule stays sequential-identical.
func TestInjectedSpeculateExhaustRecomputed(t *testing.T) {
	k := kernels.ByName("DCT").MustKernel()
	m := machine.Clustered(4)
	ref, err := Compile(k, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plane := faultinject.New(1, faultinject.Rule{
		Site: faultinject.SiteSpeculate, Nth: 1, Every: 1, Action: faultinject.Exhaust,
	})
	s, err := Compile(k, m, Options{Speculate: 4, Pool: NewPool(4), Faults: plane})
	if err != nil {
		t.Fatalf("search did not survive exhausted rungs: %v", err)
	}
	if s.Dump() != ref.Dump() {
		t.Error("schedule diverges from sequential after exhausted rungs")
	}
}

// TestSpeculativeRepeatable runs the same speculative compile several
// times under one pool and demands identical fingerprints every time —
// finish-order nondeterminism must never reach the result. (Run with
// -race, this doubles as the data-race suite for the rung scratch.)
func TestSpeculativeRepeatable(t *testing.T) {
	k := kernels.ByName("DCT").MustKernel()
	m := machine.Distributed()
	pool := NewPool(8)
	var first string
	for i := 0; i < 4; i++ {
		s, err := Compile(k, m, Options{Speculate: 8, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		fp := s.Fingerprint()
		if i == 0 {
			first = fp
		} else if fp != first {
			t.Fatalf("run %d: fingerprint %s, first run %s", i, fp, first)
		}
	}
}

// TestSpeculateValidation pins option validation: a negative worker
// count is invalid input, never a crash or a silent fallback.
func TestSpeculateValidation(t *testing.T) {
	k := kernels.ByName("FIR-INT").MustKernel()
	_, err := Compile(k, machine.Distributed(), Options{Speculate: -2})
	if err == nil {
		t.Fatal("Speculate -2 accepted")
	}
	var ce *CompileError
	if !errors.As(err, &ce) || ce.Kind != KindInvalidInput {
		t.Fatalf("want KindInvalidInput, got %v", err)
	}
}
