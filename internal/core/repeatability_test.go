package core

import (
	"testing"

	"repro/internal/depgraph"
	"repro/internal/ir"
)

// TestPermutationRepeatability checks the second §4.4 requirement on
// the stub-permutation search: "It can always find a permutation of
// stubs for a given set of communications if it ever finds a
// permutation of stubs for that set of communications (i.e. it is
// repeatable)." After a block schedules, re-solving every cycle must
// succeed — the search may pick different stubs, but never paint itself
// into failure on a set it already solved.
func TestPermutationRepeatability(t *testing.T) {
	kernels := []*ir.Kernel{accLoopKernel(t), wideLoopKernel(t, 4)}
	for _, k := range kernels {
		for _, m := range allMachines() {
			g := depgraph.Build(k, m)
			// Use the engine directly so the solver state stays alive.
			var e *engine
			for ii := 1; ii < 64; ii++ {
				if !g.RecMIIFeasible(ii) {
					continue
				}
				cand := newEngine(k, m, g, Options{}, ii)
				if cand.scheduleBlock(ir.LoopBlock) && cand.scheduleBlock(ir.PreambleBlock) {
					e = cand
					break
				}
			}
			if e == nil {
				t.Fatalf("%s/%s: did not schedule", k.Name, m.Name)
			}
			for key := range e.writesAt {
				if !e.solveWrites(key, noComm, 0) {
					t.Errorf("%s/%s: write permutation for %v not repeatable", k.Name, m.Name, key)
				}
			}
			for key := range e.readsAt {
				if !e.solveReads(key, noOperand, 0) {
					t.Errorf("%s/%s: read permutation for %v not repeatable", k.Name, m.Name, key)
				}
			}
		}
	}
}

// TestFirstRequirement checks §4.4's first requirement: "It can find a
// read/write stub for all communications to/from an operation in the
// absence of other communications" — an operation placed alone on an
// empty machine always passes communication scheduling.
func TestFirstRequirement(t *testing.T) {
	for _, m := range allMachines() {
		for _, cls := range []ir.Opcode{ir.Add, ir.Mul, ir.Load} {
			b := ir.NewBuilder("solo")
			b.Loop()
			var v ir.ValueID
			switch cls {
			case ir.Load:
				v = b.Emit(ir.Load, "x", b.Const(0), b.Const(0))
			default:
				v = b.Emit(cls, "x", b.Const(1), b.Const(2))
			}
			b.Emit(ir.Store, "", b.Val(v), b.Const(9), b.Const(0))
			k := b.MustFinish()
			g := depgraph.Build(k, m)
			e := newEngine(k, m, g, Options{}, 8)
			id := k.Loop[0]
			units := m.UnitsFor(k.Ops[id].Opcode.Class())
			placed := false
			for _, fu := range units {
				if e.attempt(id, 0, fu) {
					placed = true
					break
				}
			}
			if !placed {
				t.Errorf("%s: solo %v rejected on an empty machine", m.Name, cls)
			}
		}
	}
}
